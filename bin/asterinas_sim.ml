(* The Asterinas simulator CLI: boot a kernel under a profile and run a
   workload, print ABI/syscall information, or drop into a scripted
   shell-style session.

     asterinas_sim boot --profile asterinas
     asterinas_sim run nginx --profile linux --requests 3000
     asterinas_sim syscalls *)

open Cmdliner

let profile_conv =
  let parse = function
    | "linux" -> Ok Sim.Profile.linux
    | "asterinas" | "aster" -> Ok Sim.Profile.asterinas
    | "asterinas-no-iommu" | "no-iommu" -> Ok Sim.Profile.asterinas_no_iommu
    | s -> Error (`Msg ("unknown profile " ^ s))
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt p.Sim.Profile.name)

let profile_arg =
  Arg.(
    value
    & opt profile_conv Sim.Profile.asterinas
    & info [ "p"; "profile" ] ~docv:"PROFILE" ~doc:"Kernel profile: linux, asterinas, no-iommu.")

let requests_arg =
  Arg.(value & opt int 2000 & info [ "n"; "requests" ] ~docv:"N" ~doc:"Request count.")

let boot_summary profile =
  let k = Apps.Runner.boot ~profile in
  Apps.Libc.install_child_resolver ();
  (k, Aster.Kernel.attach_host k)

let cmd_boot =
  let run profile =
    let _k, _host = boot_summary profile in
    Printf.printf "booted %s: %d frames of RAM, %d-sector disk, %d syscalls implemented\n"
      profile.Sim.Profile.name (Ostd.Frame.total_frames ())
      (Aster.Block.capacity_sectors ())
      (Aster.Syscalls.implemented_count ());
    Printf.printf "mounts:\n";
    List.iter
      (fun (path, inode) -> Printf.printf "  %-8s %s\n" path inode.Aster.Vfs.fsname)
      (List.sort compare (Aster.Vfs.mounts ()));
    (* Run a smoke workload so the boot is exercised end to end. *)
    let ok = ref false in
    Apps.Runner.spawn ~name:"smoke" (fun c ->
        let fd = Apps.Libc.openf c "/tmp/boot.txt" ~flags:0o101 ~mode:0o644 in
        ignore (Apps.Libc.write_str c ~fd "boot ok");
        ignore (Apps.Libc.close c fd);
        ok := Apps.Libc.access c "/tmp/boot.txt" = 0;
        0);
    Apps.Runner.run ();
    Printf.printf "smoke user program: %s\n" (if !ok then "ok" else "FAILED")
  in
  Cmd.v (Cmd.info "boot" ~doc:"Boot a kernel and print a summary.")
    Term.(const run $ profile_arg)

(* --- Workload runner table ---

   One dispatch table shared by `run`, `trace run` and `prof run` (and
   feeding the chaos soak in as just another workload), so adding a
   workload is one entry here, not three copies of a match. *)

let workload_table : (string * (Sim.Profile.t -> int -> unit)) list =
  [
    ( "nginx",
      fun profile requests ->
        let _k, host = boot_summary profile in
        Apps.Mini_nginx.spawn ~requests ~sizes:[ ("f4k", 4096); ("f64k", 65536) ] ();
        let out = ref None in
        Apps.Ab.run ~host ~path:"/f4k" ~concurrency:32 ~requests ~on_done:(fun r ->
            out := Some r);
        Apps.Runner.run ();
        match !out with
        | Some r ->
          Printf.printf "%s nginx 4k: %.0f requests/s\n" profile.Sim.Profile.name r.Apps.Ab.rps
        | None -> print_endline "no result" );
    ( "redis",
      fun profile requests ->
        let _k, host = boot_summary profile in
        Apps.Mini_redis.spawn ();
        let out = ref None in
        Apps.Redis_bench.run_op ~host ~op:"GET" ~clients:16 ~requests ~on_done:(fun r ->
            out := Some r);
        Apps.Runner.run ();
        match !out with
        | Some r ->
          Printf.printf "%s redis GET: %.0f requests/s\n" profile.Sim.Profile.name
            r.Apps.Redis_bench.rps
        | None -> print_endline "no result" );
    ( "sqlite",
      fun profile _requests ->
        let _ = boot_summary profile in
        let out = ref [] in
        Apps.Runner.spawn ~name:"speedtest1" (fun c ->
            out := Apps.Speedtest1.run ~size:10 c;
            0);
        Apps.Runner.run ();
        let total = List.fold_left (fun a r -> a +. r.Apps.Speedtest1.seconds) 0. !out in
        Printf.printf "%s speedtest1 total: %.4f virtual seconds over %d tests\n"
          profile.Sim.Profile.name total (List.length !out) );
    ( "fio",
      fun profile _requests ->
        let _ = boot_summary profile in
        let out = ref { Apps.Fio.write_mb_s = nan; read_cold_mb_s = nan; read_mb_s = nan } in
        Apps.Runner.spawn ~name:"fio" (fun c ->
            out := Apps.Fio.run c ~file:"/ext2/fio.dat" ~mbytes:8;
            0);
        Apps.Runner.run ();
        Printf.printf "%s fio: write %.0f MB/s, cold read %.0f MB/s, warm read %.0f MB/s\n"
          profile.Sim.Profile.name !out.Apps.Fio.write_mb_s !out.Apps.Fio.read_cold_mb_s
          !out.Apps.Fio.read_mb_s );
    ( "lmbench",
      fun profile _requests ->
        List.iter
          (fun (row : Apps.Lmbench.row) ->
            Printf.printf "%-24s %10.3f %s\n" row.name (row.run profile) row.unit_)
          Apps.Lmbench.rows );
    ( "chaos",
      fun profile _requests ->
        let o = Apps.Chaos.run ~profile ~seed:42L () in
        Printf.printf "%s chaos: %d completed, %d errno, %d hung, %d panics\n"
          profile.Sim.Profile.name o.Apps.Chaos.completed o.Apps.Chaos.failed_errno
          o.Apps.Chaos.hung o.Apps.Chaos.panics );
  ]

let workload_names = String.concat ", " (List.map fst workload_table)

(* Returns false for an unknown workload so callers can report it. *)
let run_workload workload profile requests =
  match List.assoc_opt workload workload_table with
  | Some f ->
    f profile requests;
    true
  | None ->
    Printf.printf "unknown workload %s (try: %s)\n" workload workload_names;
    false

let workload_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"WORKLOAD" ~doc:(Printf.sprintf "One of: %s." workload_names))

let cmd_run =
  let run workload profile requests = ignore (run_workload workload profile requests) in
  Cmd.v (Cmd.info "run" ~doc:"Run a workload on the simulated kernel.")
    Term.(const run $ workload_arg $ profile_arg $ requests_arg)

(* --- ktrace: run a workload with tracing on, dump timeline + latency --- *)

let cats_conv =
  let parse s =
    if s = "all" then Ok Sim.Trace.all_categories
    else begin
      let names = String.split_on_char ',' s in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | n :: rest -> (
          match Sim.Trace.category_of_string (String.trim n) with
          | Some c -> go (c :: acc) rest
          | None -> Error (`Msg ("unknown trace category " ^ n)))
      in
      go [] names
    end
  in
  let print fmt cs =
    Format.pp_print_string fmt
      (String.concat "," (List.map Sim.Trace.category_name cs))
  in
  Arg.conv (parse, print)

let cmd_trace =
  let cats_arg =
    Arg.(
      value
      & opt cats_conv Sim.Trace.all_categories
      & info [ "c"; "categories" ] ~docv:"CATS"
          ~doc:
            "Comma-separated tracepoint categories (syscall, sched, irq, softirq, pgfault, \
             blk, net, dma, lock, chaos) or 'all'.")
  in
  let tail_arg =
    Arg.(
      value & opt int 40
      & info [ "tail" ] ~docv:"N" ~doc:"Print only the newest N trace records.")
  in
  let run workload profile requests cats tail =
    Sim.Trace.disable_all ();
    List.iter Sim.Trace.enable cats;
    if not (run_workload workload profile requests) then exit 2;
    Printf.printf "\n--- ktrace: newest %d of %d records (%d dropped, %d total) ---\n" tail
      (Sim.Trace.length ()) (Sim.Trace.dropped ()) (Sim.Trace.total ());
    print_endline (Sim.Trace.render ~limit:tail ());
    let hists = Sim.Hist.by_prefix "syscall" in
    if hists <> [] then begin
      Printf.printf "\n--- syscall latency (us) ---\n%s\n" Sim.Hist.summary_header;
      (* Overall first, then per-syscall by descending count. *)
      let overall, per = List.partition (fun (n, _) -> n = "syscall") hists in
      let per =
        List.sort (fun (_, a) (_, b) -> compare (Sim.Hist.count b) (Sim.Hist.count a)) per
      in
      List.iter (fun (n, h) -> print_endline (Sim.Hist.summary_line n h)) (overall @ per)
    end;
    (match Sim.Hist.find "blk.bio" with
    | Some h ->
      Printf.printf "\n--- block I/O latency (us) ---\n%s\n%s\n" Sim.Hist.summary_header
        (Sim.Hist.summary_line "blk.bio" h)
    | None -> ())
  in
  let sub =
    Cmd.v
      (Cmd.info "run" ~doc:"Run a workload with tracing enabled, print timeline + percentiles.")
      Term.(const run $ workload_arg $ profile_arg $ requests_arg $ cats_arg $ tail_arg)
  in
  (* trace export --chrome: run with tracing (and spans) on, then emit a
     Chrome trace-event JSON document — ktrace records as instant events
     on the same timeline as the kspan reservoir's span tracks — for
     chrome://tracing / Perfetto. *)
  let export =
    let chrome_arg =
      Arg.(value & flag & info [ "chrome" ] ~doc:"Emit Chrome trace-event JSON (Perfetto).")
    in
    let out_arg =
      Arg.(
        value & opt string "-"
        & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file ('-' for stdout).")
    in
    let run workload profile requests cats chrome out =
      if not chrome then begin
        prerr_endline "trace export: only --chrome is supported";
        exit 2
      end;
      Sim.Trace.disable_all ();
      List.iter Sim.Trace.enable cats;
      Sim.Span.enable ();
      Sim.Span.set_auto true;
      if not (run_workload workload profile requests) then exit 2;
      let instants =
        List.map
          (fun (r : Sim.Trace.record) ->
            Sim.Span.chrome_instant
              ~ts_us:(Sim.Clock.to_us r.Sim.Trace.cycles)
              ~name:r.Sim.Trace.name
              ~cat:(Sim.Trace.category_name r.Sim.Trace.cat)
              ~args:[ ("task", r.Sim.Trace.task); ("args", r.Sim.Trace.args) ])
          (Sim.Trace.records ())
      in
      let doc = Sim.Span.chrome_wrap (Sim.Span.chrome_events () @ instants) in
      if out = "-" then print_string doc
      else begin
        let oc = open_out out in
        output_string oc doc;
        close_out oc;
        Printf.printf "wrote %d trace events + %d span tracks to %s\n"
          (List.length instants) (Sim.Span.finished_count ()) out
      end
    in
    Cmd.v
      (Cmd.info "export"
         ~doc:
           "Run a workload, then export the ktrace ring (as instant events) plus the kspan \
            reservoir (as span tracks) in Chrome trace-event JSON.")
      Term.(const run $ workload_arg $ profile_arg $ requests_arg $ cats_arg $ chrome_arg
            $ out_arg)
  in
  Cmd.group (Cmd.info "trace" ~doc:"ktrace: deterministic kernel tracing.") [ sub; export ]

(* --- kspan: run a workload with request-span tracking on --- *)

let cmd_span =
  let top_arg =
    Arg.(
      value & opt int 5
      & info [ "top" ] ~docv:"K" ~doc:"Waterfalls for the K slowest spans.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Exit nonzero unless spans were recorded and every reservoir span attributes \
             at least 95% of its wall time to named segments.")
  in
  let chrome_arg =
    Arg.(
      value & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:"Also write the reservoir as Chrome trace-event JSON to FILE.")
  in
  let run workload profile requests top check chrome =
    Sim.Span.enable ();
    Sim.Span.set_auto true;
    if not (run_workload workload profile requests) then exit 2;
    print_newline ();
    print_string (Sim.Span.render_top ~k:top);
    (match chrome with
    | None -> ()
    | Some file ->
      let oc = open_out file in
      output_string oc (Sim.Span.chrome_wrap (Sim.Span.chrome_events ()));
      close_out oc;
      Printf.printf "\nwrote span tracks to %s\n" file);
    let residual = Sim.Span.max_residual_frac () in
    Printf.printf "\nspans: %d finished, %d still live; worst unattributed fraction %.4f\n"
      (Sim.Span.finished_count ()) (Sim.Span.live_count ()) residual;
    if check then begin
      if Sim.Span.finished_count () = 0 then begin
        prerr_endline "kspan: no spans recorded";
        exit 1
      end;
      if residual >= 0.05 then begin
        Printf.eprintf "kspan: unattributed fraction %.4f >= 0.05\n" residual;
        exit 1
      end
    end
  in
  let sub =
    Cmd.v
      (Cmd.info "run"
         ~doc:
           "Run a workload with kspan on: per-request spans, top-K waterfalls, and the \
            per-class critical-path histogram.")
      Term.(const run $ workload_arg $ profile_arg $ requests_arg $ top_arg $ check_arg
            $ chrome_arg)
  in
  Cmd.group
    (Cmd.info "span" ~doc:"kspan: causal request spans with critical-path analysis.")
    [ sub ]

(* --- kprof: run a workload under the cycle-attribution profiler --- *)

let cmd_prof =
  let top_arg =
    Arg.(
      value & opt int 20
      & info [ "top" ] ~docv:"N" ~doc:"Print the top N frames by total cycles.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:"Exit nonzero unless folded output is non-empty and sums exactly to elapsed \
                virtual cycles.")
  in
  let run workload profile requests top check =
    Sim.Prof.enable ();
    if not (run_workload workload profile requests) then exit 2;
    let elapsed = Sim.Prof.elapsed () in
    let attributed = Sim.Prof.total_attributed () in
    let conserved = Sim.Prof.conserved () in
    let nonempty = Sim.Prof.folded () <> [] in
    Printf.printf "\n--- kprof folded stacks (flamegraph.pl-compatible, cycles) ---\n";
    print_endline (Sim.Prof.render_folded ());
    Printf.printf "\n--- kprof top frames ---\n";
    print_endline (Sim.Prof.render_top ~limit:top ());
    Printf.printf "\nconservation: elapsed=%Ld attributed=%Ld -> %s\n" elapsed attributed
      (if conserved then "EXACT" else "VIOLATED");
    if check && not (conserved && nonempty) then begin
      prerr_endline
        (if not nonempty then "kprof: no folded output" else "kprof: conservation violated");
      exit 1
    end
  in
  let sub =
    Cmd.v
      (Cmd.info "run"
         ~doc:"Run a workload under kprof, print folded stacks + top table + conservation.")
      Term.(const run $ workload_arg $ profile_arg $ requests_arg $ top_arg $ check_arg)
  in
  Cmd.group (Cmd.info "prof" ~doc:"kprof: deterministic cycle-attribution profiling.") [ sub ]

let cmd_chaos =
  let seed_arg =
    Arg.(
      value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Fault-plane RNG seed.")
  in
  let log_arg =
    Arg.(value & flag & info [ "log" ] ~doc:"Print the full deterministic fault log.")
  in
  let run profile seed show_log =
    let o = Apps.Chaos.run ~profile ~seed:(Int64.of_int seed) () in
    Printf.printf "chaos soak (profile %s, seed %d):\n" profile.Sim.Profile.name seed;
    Printf.printf "  workloads: %d completed, %d failed with errno, %d hung\n" o.Apps.Chaos.completed
      o.Apps.Chaos.failed_errno o.Apps.Chaos.hung;
    Printf.printf "  containment: %d kernel panics, %d corrupt reads\n" o.Apps.Chaos.panics
      o.Apps.Chaos.corrupt;
    Printf.printf "  durability: sync %s, %d/%d blocks match the device\n"
      (if o.Apps.Chaos.sync_ok then "ok" else "FAILED")
      (o.Apps.Chaos.blocks_checked - o.Apps.Chaos.mismatches)
      o.Apps.Chaos.blocks_checked;
    Printf.printf "  faults: %s\n"
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "%s %d" k v) o.Apps.Chaos.report));
    let injected = List.sort compare (Sim.Fault.summary ()) in
    List.iter (fun (site, n) -> Printf.printf "    %-16s %d\n" site n) injected;
    Printf.printf "  top syscalls under fault:\n";
    List.iter
      (fun (name, n) -> Printf.printf "    %-16s %d\n" name n)
      (Aster.Strace.top 6);
    if show_log then List.iter print_endline o.Apps.Chaos.fault_log;
    let healthy =
      o.Apps.Chaos.hung = 0 && o.Apps.Chaos.panics = 0 && o.Apps.Chaos.corrupt = 0
      && (not o.Apps.Chaos.sync_ok || o.Apps.Chaos.mismatches = 0)
    in
    Printf.printf "verdict: %s\n" (if healthy then "graceful" else "DEGRADED BADLY");
    if not healthy then exit 1
  in
  let soak =
    Cmd.v
      (Cmd.info "soak"
         ~doc:"Run the chaos soak: workloads under a seeded fault schedule, then audit.")
      Term.(const run $ profile_arg $ seed_arg $ log_arg)
  in
  let points_arg =
    Arg.(
      value & opt string "all"
      & info [ "points" ] ~docv:"all|N"
          ~doc:
            "Crash points to sweep: 'all' cuts power at every write boundary; N samples \
             about N evenly-spaced boundaries.")
  in
  let seeds_arg =
    Arg.(
      value & opt int 3
      & info [ "seeds" ] ~docv:"N" ~doc:"How many seeds to sweep (42, 7, 1234, …).")
  in
  let journal_off_arg =
    Arg.(
      value & flag
      & info [ "journal-off" ]
          ~doc:
            "Sweep with the ext2 journal disabled: the sweep must FIND corruption \
             (sensitivity check; the verdict inverts).")
  in
  let crash points nseeds journal_off =
    let all_seeds = [ 42L; 7L; 1234L; 99L; 2718L; 31415L ] in
    let seeds = List.filteri (fun i _ -> i < nseeds) all_seeds in
    let journal = not journal_off in
    let total_bad = ref 0 in
    let total_nondet = ref 0 in
    let total_panics = ref 0 in
    let total_points = ref 0 in
    List.iter
      (fun seed ->
        List.iter
          (fun workload ->
            let stride =
              match points with
              | "all" -> 1
              | n -> (
                match int_of_string_opt n with
                | Some n when n > 0 ->
                  let b = Apps.Crash.boundaries ~seed ~journal ~workload in
                  max 1 (b / n)
                | _ ->
                  prerr_endline "chaos crash: --points must be 'all' or a positive integer";
                  exit 2)
            in
            let r = Apps.Crash.sweep ~stride ~seed ~journal ~workload () in
            Printf.printf
              "crash %s seed %Ld (journal %s): %d boundaries, %d swept, %d bad, %d \
               nondeterministic, %d panics\n%!"
              (Apps.Crash.workload_name workload)
              seed
              (if journal then "on" else "off")
              r.Apps.Crash.total_boundaries r.Apps.Crash.swept
              (List.length r.Apps.Crash.bad_points)
              (List.length r.Apps.Crash.nondet_points)
              r.Apps.Crash.spanics;
            (match r.Apps.Crash.bad_points with
            | (k, msgs) :: _ when journal ->
              Printf.printf "  first bad point k=%d:\n" k;
              List.iter (fun m -> Printf.printf "    %s\n" m) msgs
            | _ -> ());
            total_bad := !total_bad + List.length r.Apps.Crash.bad_points;
            total_nondet := !total_nondet + List.length r.Apps.Crash.nondet_points;
            total_panics := !total_panics + r.Apps.Crash.spanics;
            total_points := !total_points + r.Apps.Crash.swept)
          [ Apps.Crash.Fs; Apps.Crash.Sqlite ])
      seeds;
    (* Same-seed recovery logs byte-identical is part of every sweep
       (each image is recovered twice); a journaled sweep must also be
       violation-free, while an unjournaled one must find corruption. *)
    let ok =
      !total_nondet = 0 && !total_panics = 0
      && if journal then !total_bad = 0 else !total_bad > 0
    in
    Printf.printf "verdict: %s (%d crash points, %d bad, %d nondeterministic)\n"
      (if ok then
         if journal then "crash-consistent" else "corruption detected (as it must be)"
       else "FAILED")
      !total_points !total_bad !total_nondet;
    if not ok then exit 1
  in
  let crash_cmd =
    Cmd.v
      (Cmd.info "crash"
         ~doc:
           "Deterministic crash-point sweep: power-cut the device at every write boundary, \
            remount (journal replay), fsck, and verify every fsync'd byte. Recovery logs \
            must be byte-identical for the same seed.")
      Term.(const crash $ points_arg $ seeds_arg $ journal_off_arg)
  in
  Cmd.group
    ~default:Term.(const run $ profile_arg $ seed_arg $ log_arg)
    (Cmd.info "chaos" ~doc:"Fault injection: chaos soak and crash-point replay sweeps.")
    [ soak; crash_cmd ]

(* --- kprobe: run a workload with probe programs attached --- *)

let cmd_probe =
  let prog_arg =
    Arg.(
      value & opt_all string []
      & info [ "prog" ] ~docv:"PROG"
          ~doc:
            (Printf.sprintf
               "Probe program template to load at boot (repeatable). One of: %s."
               (String.concat ", " Kprobe.Templates.names)))
  in
  let run_sub =
    let run workload profile requests progs =
      let texts =
        List.map
          (fun n ->
            match Kprobe.Templates.by_name n with
            | Some t -> t
            | None ->
              Printf.printf "unknown probe program %s (try: %s)\n" n
                (String.concat ", " Kprobe.Templates.names);
              exit 2)
          progs
      in
      Aster.Kernel.boot_probes := texts;
      if not (run_workload workload profile requests) then exit 2;
      Printf.printf "--- /proc/kprobe/programs ---\n%s" (Kprobe.Registry.render_list ());
      List.iter
        (fun name ->
          match Kprobe.Registry.render_maps name with
          | None -> ()
          | Some maps -> Printf.printf "\n--- %s maps ---\n%s" name maps)
        (Kprobe.Registry.list ());
      (match Sim.Stats.by_prefix "watchdog." with
      | [] -> ()
      | wd ->
        Printf.printf "\n--- watchdog stats ---\n";
        List.iter (fun (n, c) -> Printf.printf "%-40s %d\n" n c) wd)
    in
    Cmd.v
      (Cmd.info "run"
         ~doc:
           "Run a workload with the always-on watchdogs (plus any --prog templates) \
            attached; print program listings, rendered maps, and watchdog stats.")
      Term.(const run $ workload_arg $ profile_arg $ requests_arg $ prog_arg)
  in
  let list_sub =
    let run () =
      Printf.printf "probe program templates (load with probe run --prog, or feed your \
                     own text to probe_load(2)):\n";
      List.iter (fun n -> Printf.printf "  %s\n" n) Kprobe.Templates.names
    in
    Cmd.v
      (Cmd.info "list" ~doc:"List the built-in probe program templates.")
      Term.(const run $ const ())
  in
  let hang_sub =
    let run profile hog_ms =
      let o = Apps.Chaos.hang_run ~profile ~hog_ms () in
      Printf.printf "hang injection: %dms non-yielding hog, victim rc %d\n"
        o.Apps.Chaos.hog_ms o.Apps.Chaos.victim_rc;
      Printf.printf "watchdog.hung_task.fired: %d\n" o.Apps.Chaos.wd_fired;
      print_string o.Apps.Chaos.wd_maps;
      if o.Apps.Chaos.wd_fired = 0 then begin
        prerr_endline "hung-task watchdog missed the injected hang";
        exit 1
      end
    in
    let hog_arg =
      Arg.(
        value & opt int 100
        & info [ "hog-ms" ] ~docv:"MS"
            ~doc:"How long the injected hog runs without yielding.")
    in
    Cmd.v
      (Cmd.info "hang"
         ~doc:
           "Inject a non-yielding CPU hog and verify the always-on hung-task watchdog \
            catches the starved victim.")
      Term.(const run $ profile_arg $ hog_arg)
  in
  Cmd.group
    (Cmd.info "probe" ~doc:"kprobe: verified programmable probes with maps and watchdogs.")
    [ run_sub; list_sub; hang_sub ]

let cmd_syscalls =
  let run () =
    Printf.printf "advertised ABI surface: %d syscalls\n" Aster.Syscall_nr.registered_count;
    Printf.printf "implemented with real semantics: %d\n" (Aster.Syscalls.implemented_count ());
    List.iter
      (fun nr -> Printf.printf "  %4d %s\n" nr (Aster.Syscall_nr.name nr))
      (Aster.Syscalls.implemented_numbers ())
  in
  Cmd.v
    (Cmd.info "syscalls" ~doc:"List the syscall surface (implemented vs ENOSYS-stubbed).")
    Term.(const run $ const ())

let () =
  (* Make sure the dispatch table exists for `syscalls` without a boot. *)
  Aster.Syscalls.install ();
  let info = Cmd.info "asterinas_sim" ~doc:"Asterinas framekernel simulator." in
  exit
    (Cmd.eval
       (Cmd.group info
          [ cmd_boot; cmd_run; cmd_trace; cmd_prof; cmd_span; cmd_chaos; cmd_probe;
            cmd_syscalls ]))
