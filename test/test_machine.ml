let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let setup ?(profile = Sim.Profile.linux) () =
  Sim.Profile.set profile;
  Machine.Board.reset ~frames:1024 ()

let test_phys_roundtrip () =
  setup ();
  let data = Bytes.of_string "hello physical memory" in
  Machine.Phys.write ~paddr:5000 data ~off:0 ~len:(Bytes.length data);
  let out = Bytes.create (Bytes.length data) in
  Machine.Phys.read ~paddr:5000 out ~off:0 ~len:(Bytes.length out);
  check "roundtrip" true (Bytes.equal data out)

let test_phys_cross_page () =
  setup ();
  let len = 10000 in
  let data = Bytes.init len (fun i -> Char.chr (i mod 256)) in
  Machine.Phys.write ~paddr:4090 data ~off:0 ~len;
  let out = Bytes.create len in
  Machine.Phys.read ~paddr:4090 out ~off:0 ~len;
  check "cross-page roundtrip" true (Bytes.equal data out)

let test_phys_zero_fill () =
  setup ();
  check_int "fresh ram reads zero" 0 (Machine.Phys.read_u8 123456)

let test_phys_out_of_range () =
  setup ();
  Alcotest.check_raises "oob"
    (Invalid_argument
       (Printf.sprintf "Phys: access [%#x, %#x) outside memory" (1024 * 4096) ((1024 * 4096) + 4)))
    (fun () -> ignore (Machine.Phys.read_u32 (1024 * 4096)))

let test_phys_scalars () =
  setup ();
  Machine.Phys.write_u32 100 0xCAFEBABE;
  check_int "u32" 0xCAFEBABE (Machine.Phys.read_u32 100);
  Machine.Phys.write_u64 200 0x1122334455667788L;
  Alcotest.(check int64) "u64" 0x1122334455667788L (Machine.Phys.read_u64 200)

let test_mmio_dispatch () =
  setup ();
  let written = ref 0L in
  Machine.Mmio.register
    {
      base = 0x9000_0000;
      size = 0x10;
      name = "testdev";
      sensitive = false;
      read = (fun ~off ~len:_ -> Int64.of_int (off * 2));
      write = (fun ~off:_ ~len:_ v -> written := v);
    };
  Alcotest.(check int64) "read" 8L (Machine.Mmio.read ~addr:0x9000_0004 ~len:4);
  Machine.Mmio.write ~addr:0x9000_0000 ~len:4 77L;
  Alcotest.(check int64) "write" 77L !written;
  Alcotest.(check int64) "unclaimed reads ones" (-1L) (Machine.Mmio.read ~addr:0x1 ~len:4)

let test_mmio_overlap_rejected () =
  setup ();
  let mk base =
    {
      Machine.Mmio.base;
      size = 0x100;
      name = "a";
      sensitive = false;
      read = (fun ~off:_ ~len:_ -> 0L);
      write = (fun ~off:_ ~len:_ _ -> ());
    }
  in
  Machine.Mmio.register (mk 0x9000_0000);
  check "overlap raises" true
    (try
       Machine.Mmio.register (mk 0x9000_0080);
       false
     with Invalid_argument _ -> true)

let test_board_sensitive_labels () =
  setup ();
  (match Machine.Mmio.find Machine.Board.lapic_base with
  | Some r -> check "lapic sensitive" true r.Machine.Mmio.sensitive
  | None -> Alcotest.fail "lapic missing");
  match Machine.Pio.find 0x20 with
  | Some r -> check "pic sensitive" true r.Machine.Pio.sensitive
  | None -> Alcotest.fail "pic missing"

let test_irq_remapping () =
  setup ();
  let got = ref [] in
  Machine.Irq_chip.set_dispatcher (fun v -> got := v :: !got);
  Machine.Irq_chip.enable_remapping ();
  Machine.Irq_chip.remap_allow ~dev:1 ~vector:40;
  Machine.Irq_chip.raise_irq (Machine.Irq_chip.Device 1) ~vector:40;
  Machine.Irq_chip.raise_irq (Machine.Irq_chip.Device 2) ~vector:40;
  Machine.Irq_chip.raise_irq Machine.Irq_chip.Core ~vector:32;
  while Sim.Events.run_next () do
    ()
  done;
  Alcotest.(check (list int)) "delivered" [ 40; 32 ] (List.rev !got);
  check_int "spoofs" 1 (Machine.Irq_chip.blocked_spoofs ())

let test_iommu_fault_and_grant () =
  setup ();
  Machine.Iommu.set_enabled true;
  (match Machine.Iommu.access ~dev:3 ~paddr:0x8000 ~len:16 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unmapped access passed");
  Machine.Iommu.map ~dev:3 ~paddr:0x8000 ~len:4096;
  (match Machine.Iommu.access ~dev:3 ~paddr:0x8000 ~len:16 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Machine.Iommu.unmap ~dev:3 ~paddr:0x8000 ~len:4096;
  match Machine.Iommu.access ~dev:3 ~paddr:0x8000 ~len:16 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "access after unmap passed"

let test_iotlb_hit_miss () =
  setup ();
  Machine.Iommu.set_enabled true;
  Machine.Iommu.map ~dev:3 ~paddr:0x8000 ~len:4096;
  let m0 = Machine.Iommu.misses () in
  ignore (Machine.Iommu.access ~dev:3 ~paddr:0x8000 ~len:8);
  check_int "first access misses" (m0 + 1) (Machine.Iommu.misses ());
  let h0 = Machine.Iommu.hits () in
  ignore (Machine.Iommu.access ~dev:3 ~paddr:0x8000 ~len:8);
  check_int "second access hits" (h0 + 1) (Machine.Iommu.hits ())

let test_wire_delivery () =
  setup ();
  let a, b = Machine.Wire.create_pair ~latency_us:5.0 ~bytes_per_cycle:2. in
  let got = ref [] in
  Machine.Wire.on_receive b (fun pkt -> got := Bytes.to_string pkt :: !got);
  Machine.Wire.send a (Bytes.of_string "one");
  Machine.Wire.send a (Bytes.of_string "two");
  while Sim.Events.run_next () do
    ()
  done;
  Alcotest.(check (list string)) "in order" [ "one"; "two" ] (List.rev !got);
  check "latency applied" true (Sim.Clock.now () >= Int64.of_int (Sim.Clock.us 5.0))

let run_all_events () =
  while Sim.Events.run_next () do
    ()
  done

(* Drive the block device exactly as a driver would, but with the IOMMU
   off and raw physical writes: descriptor at 0x40000, data at 0x41000. *)
let test_virtio_blk_write_read () =
  setup ();
  let blk =
    Machine.Virtio_blk.create ~capacity_sectors:1024 ~mmio_base:Machine.Board.pci_hole_base
      ~dev_id:1 ~vector:40 ()
  in
  let irqs = ref 0 in
  Machine.Irq_chip.set_dispatcher (fun _ -> incr irqs);
  let desc = 0x40000 and data = 0x41000 in
  let payload = Bytes.make 512 'Z' in
  Machine.Phys.write ~paddr:data payload ~off:0 ~len:512;
  (* write request: type=1 len=512 sector=10 *)
  Machine.Phys.write_u32 desc 1;
  Machine.Phys.write_u32 (desc + 4) 512;
  Machine.Phys.write_u64 (desc + 8) 10L;
  Machine.Phys.write_u64 (desc + 16) (Int64.of_int data);
  Machine.Phys.write_u32 (desc + 24) 0xff;
  Machine.Mmio.write
    ~addr:(Machine.Board.pci_hole_base + Machine.Virtio_blk.reg_queue_notify)
    ~len:8 (Int64.of_int desc);
  run_all_events ();
  check_int "status ok" 0 (Machine.Phys.read_u32 (desc + 24));
  check_int "irq raised" 1 !irqs;
  check "backing updated" true
    (Bytes.equal payload (Machine.Virtio_blk.read_backing blk ~sector:10 ~len:512));
  (* read it back into a different buffer *)
  let data2 = 0x42000 in
  Machine.Phys.write_u32 desc 0;
  Machine.Phys.write_u64 (desc + 16) (Int64.of_int data2);
  Machine.Phys.write_u32 (desc + 24) 0xff;
  Machine.Mmio.write
    ~addr:(Machine.Board.pci_hole_base + Machine.Virtio_blk.reg_queue_notify)
    ~len:8 (Int64.of_int desc);
  run_all_events ();
  let out = Bytes.create 512 in
  Machine.Phys.read ~paddr:data2 out ~off:0 ~len:512;
  check "read returns written data" true (Bytes.equal payload out);
  check_int "two requests completed" 2 (Machine.Virtio_blk.requests_completed blk)

let test_virtio_blk_iommu_blocks_dma () =
  setup ();
  Machine.Iommu.set_enabled true;
  let blk =
    Machine.Virtio_blk.create ~capacity_sectors:64 ~mmio_base:Machine.Board.pci_hole_base
      ~dev_id:1 ~vector:40 ()
  in
  let desc = 0x40000 in
  Machine.Phys.write_u32 desc 0;
  Machine.Phys.write_u32 (desc + 4) 512;
  Machine.Phys.write_u64 (desc + 8) 0L;
  Machine.Phys.write_u64 (desc + 16) 0x41000L;
  Machine.Mmio.write
    ~addr:(Machine.Board.pci_hole_base + Machine.Virtio_blk.reg_queue_notify)
    ~len:8 (Int64.of_int desc);
  run_all_events ();
  check_int "request dropped" 0 (Machine.Virtio_blk.requests_completed blk);
  check "fault recorded" true (Sim.Stats.get "iommu.fault" > 0)

let test_virtio_net_tx_rx () =
  setup ();
  let guest, host = Machine.Wire.create_pair ~latency_us:2.0 ~bytes_per_cycle:4. in
  let net =
    Machine.Virtio_net.create ~mmio_base:(Machine.Board.pci_hole_base + 0x1000) ~dev_id:2
      ~vector:41 ~endpoint:guest
  in
  let host_got = ref [] in
  Machine.Wire.on_receive host (fun pkt -> host_got := Bytes.to_string pkt :: !host_got);
  (* TX: descriptor 0x40000, payload "ping" at 0x41000 *)
  Machine.Phys.write ~paddr:0x41000 (Bytes.of_string "ping") ~off:0 ~len:4;
  Machine.Phys.write_u32 0x40000 4;
  Machine.Phys.write_u64 (0x40000 + 8) 0x41000L;
  Machine.Mmio.write
    ~addr:(Machine.Board.pci_hole_base + 0x1000 + Machine.Virtio_net.reg_queue_tx)
    ~len:8 0x40000L;
  run_all_events ();
  Alcotest.(check (list string)) "host received" [ "ping" ] !host_got;
  check_int "tx count" 1 (Machine.Virtio_net.tx_count net);
  (* RX: post a buffer, then host sends *)
  Machine.Phys.write_u32 0x50000 2048;
  Machine.Phys.write_u32 (0x50000 + 4) 0xFFFF;
  Machine.Phys.write_u64 (0x50000 + 8) 0x51000L;
  Machine.Mmio.write
    ~addr:(Machine.Board.pci_hole_base + 0x1000 + Machine.Virtio_net.reg_queue_rx)
    ~len:8 0x50000L;
  Machine.Wire.send host (Bytes.of_string "pong!");
  run_all_events ();
  check_int "used length" 5 (Machine.Phys.read_u32 (0x50000 + 4));
  let out = Bytes.create 5 in
  Machine.Phys.read ~paddr:0x51000 out ~off:0 ~len:5;
  Alcotest.(check string) "payload" "pong!" (Bytes.to_string out)

let test_virtio_net_backlog () =
  setup ();
  let guest, host = Machine.Wire.create_pair ~latency_us:1.0 ~bytes_per_cycle:4. in
  ignore
    (Machine.Virtio_net.create ~mmio_base:(Machine.Board.pci_hole_base + 0x1000) ~dev_id:2
       ~vector:41 ~endpoint:guest);
  (* Packet arrives before any buffer is posted: held in backlog. *)
  Machine.Wire.send host (Bytes.of_string "early");
  run_all_events ();
  Machine.Phys.write_u32 0x50000 2048;
  Machine.Phys.write_u64 (0x50000 + 8) 0x51000L;
  Machine.Mmio.write
    ~addr:(Machine.Board.pci_hole_base + 0x1000 + Machine.Virtio_net.reg_queue_rx)
    ~len:8 0x50000L;
  run_all_events ();
  check_int "delivered from backlog" 5 (Machine.Phys.read_u32 (0x50000 + 4))

(* --- Fault-injection plane at the device models --- *)

let submit_blk_write ~desc ~data ~sector =
  Machine.Phys.write_u32 desc 1;
  Machine.Phys.write_u32 (desc + 4) 512;
  Machine.Phys.write_u64 (desc + 8) (Int64.of_int sector);
  Machine.Phys.write_u64 (desc + 16) (Int64.of_int data);
  Machine.Phys.write_u32 (desc + 24) 0xff;
  Machine.Mmio.write
    ~addr:(Machine.Board.pci_hole_base + Machine.Virtio_blk.reg_queue_notify)
    ~len:8 (Int64.of_int desc)

let test_fault_blk_error_status () =
  setup ();
  ignore
    (Machine.Virtio_blk.create ~capacity_sectors:64 ~mmio_base:Machine.Board.pci_hole_base
       ~dev_id:1 ~vector:40 ());
  let irqs = ref 0 in
  Machine.Irq_chip.set_dispatcher (fun _ -> incr irqs);
  Sim.Fault.configure ~seed:1L [ ("blk.io_error", 1.0) ];
  submit_blk_write ~desc:0x40000 ~data:0x41000 ~sector:3;
  run_all_events ();
  check_int "error status written" 1 (Machine.Phys.read_u32 (0x40000 + 24));
  check_int "completion irq still raised" 1 !irqs;
  check "injection recorded" true (Sim.Fault.total_injected () > 0);
  Sim.Fault.disable ()

let test_fault_blk_dropped_completion () =
  setup ();
  ignore
    (Machine.Virtio_blk.create ~capacity_sectors:64 ~mmio_base:Machine.Board.pci_hole_base
       ~dev_id:1 ~vector:40 ());
  let irqs = ref 0 in
  Machine.Irq_chip.set_dispatcher (fun _ -> incr irqs);
  Sim.Fault.configure ~seed:1L [ ("blk.drop", 1.0) ];
  submit_blk_write ~desc:0x40000 ~data:0x41000 ~sector:3;
  run_all_events ();
  check_int "status stays pending" 0xff (Machine.Phys.read_u32 (0x40000 + 24));
  check_int "no completion irq" 0 !irqs;
  check "drop counted" true (Sim.Stats.get "virtio_blk.dropped_completion" > 0);
  Sim.Fault.disable ()

let test_fault_iommu_injected () =
  setup ();
  Machine.Iommu.set_enabled true;
  Machine.Iommu.map ~dev:1 ~paddr:0x40000 ~len:4096;
  check "mapped access passes clean" true (Machine.Iommu.access ~dev:1 ~paddr:0x40000 ~len:64 = Ok ());
  Sim.Fault.configure ~seed:1L [ ("iommu.fault", 1.0) ];
  (match Machine.Iommu.access ~dev:1 ~paddr:0x40000 ~len:64 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "injected translation fault passed");
  check "fault counted" true (Sim.Stats.get "iommu.injected_fault" > 0);
  Sim.Fault.disable ()

let test_fault_spurious_vector () =
  setup ();
  let got = ref [] in
  Machine.Irq_chip.set_dispatcher (fun v -> got := v :: !got);
  Sim.Fault.configure ~seed:1L [ ("irq.spurious", 1.0) ];
  Machine.Irq_chip.raise_irq (Machine.Irq_chip.Device 1) ~vector:40;
  run_all_events ();
  check "real vector delivered" true (List.mem 40 !got);
  check "spurious vector injected" true (List.mem Machine.Irq_chip.spurious_vector !got);
  Sim.Fault.disable ()

let test_fault_irq_storm_burst () =
  setup ();
  let got = ref 0 in
  Machine.Irq_chip.set_dispatcher (fun _ -> incr got);
  Sim.Fault.configure ~seed:1L [ ("irq.storm", 1.0) ];
  Machine.Irq_chip.raise_irq (Machine.Irq_chip.Device 1) ~vector:40;
  run_all_events ();
  check "burst multiplied the delivery" true (!got > 1);
  Sim.Fault.disable ()

let test_fault_determinism_and_isolation () =
  (* Same seed, same sequence of rolls; and unconfigured sites consume
     no randomness, so arming new sites later cannot shift old ones. *)
  setup ();
  Sim.Fault.configure ~seed:99L [ ("blk.io_error", 0.5) ];
  let a = List.init 64 (fun _ -> Sim.Fault.roll "blk.io_error") in
  let a' = List.init 64 (fun _ -> Sim.Fault.roll "net.drop") in
  Sim.Fault.configure ~seed:99L [ ("blk.io_error", 0.5) ];
  let b = List.init 64 (fun _ -> Sim.Fault.roll "blk.io_error") in
  check "same seed, same rolls" true (a = b);
  check "unconfigured sites never fire" true (List.for_all not a');
  Sim.Fault.disable ()

let prop_phys_roundtrip =
  QCheck.Test.make ~name:"phys_random_roundtrips" ~count:200
    QCheck.(pair (int_range 0 100000) (string_of_size (QCheck.Gen.int_range 1 9000)))
    (fun (paddr, s) ->
      setup ();
      let len = String.length s in
      let data = Bytes.of_string s in
      Machine.Phys.write ~paddr data ~off:0 ~len;
      let out = Bytes.create len in
      Machine.Phys.read ~paddr out ~off:0 ~len;
      Bytes.equal data out)

let prop_iommu_pages =
  QCheck.Test.make ~name:"iommu_grant_covers_exact_pages" ~count:100
    QCheck.(pair (int_range 0 200) (int_range 1 16384))
    (fun (pageno, len) ->
      setup ();
      Machine.Iommu.set_enabled true;
      let paddr = pageno * 4096 in
      Machine.Iommu.map ~dev:1 ~paddr ~len;
      let ok_inside = Machine.Iommu.access ~dev:1 ~paddr ~len = Ok () in
      let after = paddr + (((len + 4095) / 4096) * 4096) in
      let fails_after =
        match Machine.Iommu.access ~dev:1 ~paddr:after ~len:1 with
        | Error _ -> true
        | Ok () -> false
      in
      ok_inside && fails_after)

let () =
  Alcotest.run "machine"
    [
      ( "phys",
        [
          Alcotest.test_case "roundtrip" `Quick test_phys_roundtrip;
          Alcotest.test_case "cross_page" `Quick test_phys_cross_page;
          Alcotest.test_case "zero_fill" `Quick test_phys_zero_fill;
          Alcotest.test_case "out_of_range" `Quick test_phys_out_of_range;
          Alcotest.test_case "scalars" `Quick test_phys_scalars;
        ] );
      ( "mmio",
        [
          Alcotest.test_case "dispatch" `Quick test_mmio_dispatch;
          Alcotest.test_case "overlap" `Quick test_mmio_overlap_rejected;
          Alcotest.test_case "sensitive_labels" `Quick test_board_sensitive_labels;
        ] );
      ( "irq_iommu",
        [
          Alcotest.test_case "remapping" `Quick test_irq_remapping;
          Alcotest.test_case "fault_and_grant" `Quick test_iommu_fault_and_grant;
          Alcotest.test_case "iotlb" `Quick test_iotlb_hit_miss;
        ] );
      ( "devices",
        [
          Alcotest.test_case "wire" `Quick test_wire_delivery;
          Alcotest.test_case "virtio_blk_rw" `Quick test_virtio_blk_write_read;
          Alcotest.test_case "virtio_blk_iommu" `Quick test_virtio_blk_iommu_blocks_dma;
          Alcotest.test_case "virtio_net_tx_rx" `Quick test_virtio_net_tx_rx;
          Alcotest.test_case "virtio_net_backlog" `Quick test_virtio_net_backlog;
        ] );
      ( "fault_plane",
        [
          Alcotest.test_case "blk_error_status" `Quick test_fault_blk_error_status;
          Alcotest.test_case "blk_dropped_completion" `Quick test_fault_blk_dropped_completion;
          Alcotest.test_case "iommu_injected" `Quick test_fault_iommu_injected;
          Alcotest.test_case "spurious_vector" `Quick test_fault_spurious_vector;
          Alcotest.test_case "irq_storm_burst" `Quick test_fault_irq_storm_burst;
          Alcotest.test_case "determinism" `Quick test_fault_determinism_and_isolation;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_phys_roundtrip; prop_iommu_pages ] );
    ]
