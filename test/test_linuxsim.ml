let check = Alcotest.(check bool)

(* The baseline must differ from Asterinas exactly along the mechanism
   axes the paper names — these tests pin that configuration so a
   refactor cannot silently flip a switch. *)

let test_profile_switches () =
  let l = Linuxsim.Linux_baseline.profile in
  let a = Sim.Profile.asterinas in
  check "linux runs congestion control" true l.Sim.Profile.tcp_congestion_control;
  check "asterinas does not" false a.Sim.Profile.tcp_congestion_control;
  check "linux has GSO" true l.Sim.Profile.tcp_gso;
  (* Since the offload work both profiles run GSO/GRO, checksum offload
     and zero-copy sendfile by default; [Sim.Profile.with_all_offloads
     false] is the software-segmentation baseline the ablations pin. *)
  check "asterinas has GSO" true a.Sim.Profile.tcp_gso;
  check "asterinas runs GRO" true a.Sim.Profile.net_gro;
  check "asterinas offloads checksums" true
    (a.Sim.Profile.csum_tx_offload && a.Sim.Profile.csum_rx_offload);
  check "linux rcu-walks" true l.Sim.Profile.rcu_walk;
  check "asterinas lock-walks" false a.Sim.Profile.rcu_walk;
  check "linux sendfile is zero-copy" true l.Sim.Profile.sendfile_zero_copy;
  check "asterinas sendfile is zero-copy" true a.Sim.Profile.sendfile_zero_copy;
  let off = Sim.Profile.with_all_offloads false a in
  check "with_all_offloads false is the software baseline" true
    ((not off.Sim.Profile.tcp_gso) && (not off.Sim.Profile.net_gro)
    && (not off.Sim.Profile.csum_tx_offload)
    && (not off.Sim.Profile.csum_rx_offload)
    && not off.Sim.Profile.sendfile_zero_copy);
  check "linux unix sockets double-copy" true l.Sim.Profile.unix_double_copy;
  check "linux runs no safety checks" false l.Sim.Profile.safety_checks;
  check "asterinas runs them" true a.Sim.Profile.safety_checks;
  check "linux baseline has no IOMMU" false l.Sim.Profile.iommu;
  check "asterinas defaults to IOMMU" true a.Sim.Profile.iommu

let test_boot_under_baseline () =
  let _k = Linuxsim.Linux_baseline.boot () in
  Apps.Libc.install_child_resolver ();
  let ok = ref false in
  ignore
    (Aster.Process.spawn_kernel_style ~name:"lin-smoke" (fun uapi ->
         let c = Apps.Libc.make uapi in
         let fd = Apps.Libc.openf c "/tmp/lin" ~flags:0o101 ~mode:0o644 in
         ignore (Apps.Libc.write_str c ~fd "baseline");
         ignore (Apps.Libc.close c fd);
         let fd = Apps.Libc.openf c "/tmp/lin" ~flags:0 ~mode:0 in
         ok := Apps.Libc.read_str c ~fd ~len:16 = "baseline";
         0));
  Aster.Kernel.run ();
  check "baseline kernel boots and runs user programs" true !ok;
  (* No safety-check cycles under the baseline. *)
  Sim.Clock.reset ();
  Sim.Cost.charge_safety (fun s -> s.Sim.Profile.boundary_check);
  check "safety charge is zero" true (Sim.Clock.now () = 0L)

let test_mechanism_table_complete () =
  let rows = Linuxsim.Linux_baseline.mechanism_differences in
  check "documents all eight axes" true (List.length rows >= 8);
  check "congestion control listed" true
    (List.exists (fun (m, _, _) -> m = "TCP congestion control") rows)

let test_baseline_beats_asterinas_where_expected () =
  (* RCU-walk makes Linux open(2) faster; no congestion control makes
     Asterinas's loopback TCP faster: both directions, one test. *)
  let open_row = Apps.Lmbench.find "lat_syscall open" in
  let tcp_row = Apps.Lmbench.find "lat_tcp (loopback)" in
  let l_open = open_row.Apps.Lmbench.run Linuxsim.Linux_baseline.profile in
  let a_open = open_row.Apps.Lmbench.run Sim.Profile.asterinas in
  let l_tcp = tcp_row.Apps.Lmbench.run Linuxsim.Linux_baseline.profile in
  let a_tcp = tcp_row.Apps.Lmbench.run Sim.Profile.asterinas in
  check "linux wins open(2)" true (l_open < a_open);
  check "asterinas wins loopback tcp" true (a_tcp < l_tcp)

let () =
  Alcotest.run "linuxsim"
    [
      ( "baseline",
        [
          Alcotest.test_case "profile_switches" `Quick test_profile_switches;
          Alcotest.test_case "boot" `Quick test_boot_under_baseline;
          Alcotest.test_case "mechanism_table" `Quick test_mechanism_table_complete;
          Alcotest.test_case "expected_winners" `Quick test_baseline_beats_asterinas_where_expected;
        ] );
    ]
