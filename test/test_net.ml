(* Network conformance suite for the batched virtio-net TX/RX pipeline.

   The batching/coalescing knobs are performance knobs, not behaviour
   knobs: the application-visible byte stream must be identical with
   them on or off, error paths (handshake timeout, checksum rejection)
   must survive burst submission, and a stuck NIC must leak — not
   recycle — the DMA buffers it still owns. *)

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let pattern len = Bytes.init len (fun i -> Char.chr (((i * 31) + 7) land 0xff))

(* Guest -> host transfer of [size] patterned bytes over the virtio NIC.
   Returns (client exit, bytes the host application received, clean EOF
   seen). Boots its own kernel, so Stats cover exactly this run; the
   fault plane (armed after boot, which resets it) covers the whole
   transfer including the handshake. *)
let transfer ?(profile = Sim.Profile.asterinas) ?(port = 9009) ?(chunk = 8192) ?faults ~size () =
  let k = Apps.Runner.boot ~profile in
  let host = Aster.Kernel.attach_host k in
  (match faults with Some (seed, schedule) -> Sim.Fault.configure ~seed schedule | None -> ());
  let sink = Buffer.create size in
  let eof = ref false in
  (match Aster.Tcp.listen host.Aster.Kernel.htcp ~port with
  | Error _ -> Alcotest.fail "host listen"
  | Ok l ->
    ignore
      (Ostd.Task.spawn ~name:"host-sink" (fun () ->
           let conn = Aster.Tcp.accept l in
           let buf = Bytes.create 16384 in
           let continue = ref true in
           while !continue do
             match Aster.Tcp.recv conn ~buf ~pos:0 ~len:16384 with
             | Ok 0 ->
               eof := true;
               continue := false
             | Ok n -> Buffer.add_subbytes sink buf 0 n
             | Error _ -> continue := false
           done;
           Aster.Tcp.close conn)));
  let rc = ref (-1) in
  Apps.Runner.spawn ~name:"guest-src" (fun c ->
      let fd = Apps.Libc.socket c ~domain:2 ~typ:1 in
      if Apps.Libc.connect_inet c ~fd ~ip:Aster.Kernel.host_ip ~port < 0 then begin
        rc := 1;
        1
      end
      else begin
        let data = pattern size in
        let sent = ref 0 in
        let ok = ref true in
        while !ok && !sent < size do
          let len = min chunk (size - !sent) in
          let b = Bytes.sub data !sent len in
          let n = Apps.Libc.write c ~fd ~vaddr:(Apps.Libc.put_bytes c b) ~len in
          if n <= 0 then ok := false else sent := !sent + n
        done;
        ignore (Apps.Libc.close c fd);
        rc := (if !ok then 0 else 2);
        !rc
      end);
  Apps.Runner.run ();
  (!rc, Buffer.contents sink, !eof)

(* --- Conformance: batching is invisible at the application layer --- *)

let test_batched_matches_unbatched () =
  let size = 192 * 1024 in
  (* Offload-free on both legs: burst amortisation (several software-MSS
     segments per plug flush) is a property of the software-segmentation
     baseline — with TSO one write is one super-segment descriptor. The
     offload-vs-baseline byte-identity has its own suite below. *)
  let sw = Sim.Profile.with_all_offloads false Sim.Profile.asterinas in
  let rc_b, bytes_b, eof_b = transfer ~profile:sw ~size () in
  let bursts = Sim.Stats.get "net.burst" in
  let queued = Sim.Stats.get "net.tx_queued" in
  let rc_u, bytes_u, eof_u =
    transfer
      ~profile:(Sim.Profile.with_net_irq_coalesce false (Sim.Profile.with_net_tx_batching false sw))
      ~size ()
  in
  let bursts_u = Sim.Stats.get "net.burst" in
  check_int "batched client exits cleanly" 0 rc_b;
  check_int "unbatched client exits cleanly" 0 rc_u;
  check "batched sink saw EOF" true eof_b;
  check "unbatched sink saw EOF" true eof_u;
  check "batched payload matches the pattern" true
    (String.equal bytes_b (Bytes.to_string (pattern size)));
  check "batched and unbatched payloads byte-identical" true (String.equal bytes_b bytes_u);
  check "batched run submitted bursts" true (bursts > 0);
  check "bursts amortise segments" true (bursts < queued);
  check_int "unbatched run submitted no bursts" 0 bursts_u

(* --- Handshake timeout survives batching ---

   With the link dropping every frame, connect's SYN retransmission
   ladder — segments emitted from event context, flushed through the
   plugged TX queue — must still run its course and surface ETIMEDOUT,
   not hang and not error differently. *)

let test_etimedout_under_batching () =
  ignore (Apps.Runner.boot ~profile:Sim.Profile.asterinas);
  Sim.Fault.configure ~seed:3L [ ("net.drop", 1.0) ];
  let rc = ref 0 in
  Apps.Runner.spawn ~name:"guest-conn" (fun c ->
      let fd = Apps.Libc.socket c ~domain:2 ~typ:1 in
      rc := Apps.Libc.connect_inet c ~fd ~ip:Aster.Kernel.host_ip ~port:7;
      0);
  Apps.Runner.run ();
  Sim.Fault.disable ();
  check_int "connect fails with ETIMEDOUT" (-Aster.Errno.etimedout) !rc;
  check "the SYN was retransmitted before giving up" true
    (Sim.Stats.get "degrade.retried.tcp_syn" > 0);
  check "drops were actually injected" true (Sim.Stats.get "virtio_net.injected_drop" > 0)

(* --- Checksum rejection mid-burst ---

   Frames corrupted inside a descriptor chain are rejected by the
   packet checksum at the receiver and repaired by retransmission; the
   stream stays byte-exact and the corruption never reaches the
   application. *)

let test_checksum_rejects_corrupt_mid_burst () =
  let size = 128 * 1024 in
  let rc, bytes, _eof = transfer ~faults:(9L, [ ("net.corrupt", 0.02) ]) ~size () in
  Sim.Fault.disable ();
  check_int "client exits cleanly despite corruption" 0 rc;
  check "corruption was actually injected" true
    (Sim.Stats.get "virtio_net.injected_corrupt" > 0);
  check "receiver checksum rejected the mangled frames" true
    (Sim.Stats.get "net.checksum_drop" > 0);
  check "bursts were in flight while the plane was armed" true (Sim.Stats.get "net.burst" > 0);
  check "payload repaired to byte-exactness" true
    (String.equal bytes (Bytes.to_string (pattern size)))

(* --- Quarantine accounting: a stuck NIC leaks pool slots ---

   An injected tx_drop means the device never writes the status word.
   The driver's burst deadline must quarantine the buffer: unmap it
   without returning it to the DMA pool (a late DMA must fault at the
   IOMMU, not land in reused memory), count the leak under
   net.pool_leaked, and report the frame upstack — where, with no
   owning connection, it lands in net.tx_err_unclaimed. *)

let test_tx_drop_quarantines_and_leaks_pool () =
  let k = Apps.Runner.boot ~profile:Sim.Profile.asterinas in
  ignore (Aster.Kernel.attach_host k);
  let nseg = 4 in
  Sim.Fault.configure ~seed:5L [ ("net.tx_drop", 1.0) ];
  Apps.Runner.spawn ~name:"raw-tx" (fun c ->
      for i = 0 to nseg - 1 do
        Aster.Netstack.send k.Aster.Kernel.stack
          (Aster.Packet.make ~src_ip:Aster.Kernel.guest_ip ~dst_ip:Aster.Kernel.host_ip
             ~proto:Aster.Packet.Tcp ~src_port:555 ~dst_port:556 ~flags:0
             (Bytes.make 64 (Char.chr (65 + i))))
      done;
      Aster.Netstack.flush_all ();
      (* Sleep past the burst deadline (500 us + 20 us/desc) so the
         quarantine event fires while the clock still advances. *)
      ignore (Apps.Libc.nanosleep_us c 2000.);
      0);
  Apps.Runner.run ();
  Sim.Fault.disable ();
  check_int "every frame of the burst was quarantined" nseg
    (Sim.Stats.get "virtio_net.quarantined");
  check_int "every quarantined pooled buffer is a leaked slot" nseg
    (Sim.Stats.get "net.pool_leaked");
  check_int "orphan frames reported but unclaimed by any socket" nseg
    (Sim.Stats.get "net.tx_err_unclaimed");
  check_int "no frame reached the wire" 0 (Sim.Stats.get "virtio_net.dma_fault")

(* --- Span-ownership conservation across the TX pipeline ---

   With kspan on, every span-owned frame prepared for the NIC must be
   resolved exactly once: reaped on success, reported upstack after the
   retry ladder, or quarantined at the burst deadline. The creation
   counter (prepare_tx) and the resolution counter must agree to the
   unit — through plug bursts, burst splits and retransmissions. *)

let span_transfer ?faults ~size () =
  Sim.Span.enable ();
  Sim.Span.set_auto true;
  let rc, bytes, eof = transfer ?faults ~size () in
  let created = Sim.Stats.get "span.tx_created" in
  let resolved = Sim.Stats.get "span.tx_done" in
  Sim.Span.disable ();
  Sim.Span.set_auto false;
  (rc, bytes, eof, created, resolved)

(* --- Offload conformance: GSO/TSO, GRO, checksum offload, zero-copy ---

   The offload knobs are performance knobs too: super-segment
   descriptors split at device ring time, receive-side merges and
   checksum verdicts must all be invisible in the application byte
   stream, and the zero-copy pin ledger must balance exactly. *)

(* Host -> guest bulk transfer: the direction that exercises guest-side
   GRO (the guest's RX path sees MSS wire frames produced by the host
   bridge's TSO split). Plain tasks on both ends — the guest engine is
   driven directly, like the host sink in [transfer]. *)
let transfer_rx ?(profile = Sim.Profile.asterinas) ?(port = 9020) ?(chunk = 64 * 1024) ~size () =
  let k = Apps.Runner.boot ~profile in
  let host = Aster.Kernel.attach_host k in
  let sink = Buffer.create size in
  let eof = ref false in
  (match Aster.Tcp.listen k.Aster.Kernel.tcp ~port with
  | Error _ -> Alcotest.fail "guest listen"
  | Ok l ->
    ignore
      (Ostd.Task.spawn ~name:"guest-sink" (fun () ->
           let conn = Aster.Tcp.accept l in
           let buf = Bytes.create 16384 in
           let continue = ref true in
           while !continue do
             match Aster.Tcp.recv conn ~buf ~pos:0 ~len:16384 with
             | Ok 0 ->
               eof := true;
               continue := false
             | Ok n -> Buffer.add_subbytes sink buf 0 n
             | Error _ -> continue := false
           done;
           Aster.Tcp.close conn)));
  let rc = ref (-1) in
  ignore
    (Ostd.Task.spawn ~name:"host-src" (fun () ->
         match
           Aster.Tcp.connect host.Aster.Kernel.htcp ~dst_ip:Aster.Kernel.guest_ip ~dst_port:port
         with
         | Error _ -> rc := 1
         | Ok conn ->
           let data = pattern size in
           let sent = ref 0 in
           let ok = ref true in
           while !ok && !sent < size do
             let len = min chunk (size - !sent) in
             match Aster.Tcp.send conn ~buf:data ~pos:!sent ~len with
             | Ok n -> sent := !sent + n
             | Error _ -> ok := false
           done;
           Aster.Tcp.close conn;
           rc := (if !ok then 0 else 2)));
  Apps.Runner.run ();
  (!rc, Buffer.contents sink, !eof)

let test_offloaded_matches_baseline () =
  (* The whole offload stack on vs the software-segmentation baseline:
     the application byte stream must be identical. *)
  let size = 192 * 1024 in
  let rc_on, bytes_on, eof_on = transfer ~size () in
  let tso = Sim.Stats.get "virtio_net.tso_frames" in
  let copied_on = Sim.Stats.get "net.bytes_copied" in
  let rc_off, bytes_off, eof_off =
    transfer ~profile:(Sim.Profile.with_all_offloads false Sim.Profile.asterinas) ~size ()
  in
  let tso_off = Sim.Stats.get "virtio_net.tso_frames" in
  let copied_off = Sim.Stats.get "net.bytes_copied" in
  check_int "offloaded client exits cleanly" 0 rc_on;
  check_int "baseline client exits cleanly" 0 rc_off;
  check "offloaded sink saw EOF" true eof_on;
  check "baseline sink saw EOF" true eof_off;
  check "offloaded payload matches the pattern" true
    (String.equal bytes_on (Bytes.to_string (pattern size)));
  check "offloaded and baseline payloads byte-identical" true (String.equal bytes_on bytes_off);
  check "the device actually split super-segments" true (tso > 0);
  check_int "the baseline device split nothing" 0 tso_off;
  check "TSO hands fewer bytes through the CPU copy path" true (copied_on < copied_off)

let test_gro_coalesces_rx () =
  let size = 256 * 1024 in
  let rc, bytes, eof = transfer_rx ~size () in
  let merged = Sim.Stats.get "net.gro_merged" in
  let rx_calls = Sim.Stats.get "tcp.rx_calls" in
  let rc_off, bytes_off, eof_off =
    transfer_rx ~profile:(Sim.Profile.with_net_gro false Sim.Profile.asterinas) ~size ()
  in
  let merged_off = Sim.Stats.get "net.gro_merged" in
  let rx_calls_off = Sim.Stats.get "tcp.rx_calls" in
  check_int "client exits cleanly" 0 rc;
  check "sink saw EOF" true eof;
  check "payload byte-exact through GRO merges" true
    (String.equal bytes (Bytes.to_string (pattern size)));
  check "GRO merged wire frames" true (merged > 0);
  check_int "GRO-off run merged nothing" 0 merged_off;
  check_int "GRO-off client exits cleanly" 0 rc_off;
  check "GRO-off sink saw EOF" true eof_off;
  check "GRO-off payload byte-identical" true (String.equal bytes bytes_off);
  check "GRO cuts per-segment stack entries" true (rx_calls * 2 < rx_calls_off)

let test_gro_flushes_across_psh_boundaries () =
  (* Small sends: each 8 KiB write drains the sender's queue, so its
     last segment carries PSH and flushes the receive-side merge — the
     stream must interleave correctly across many such boundaries. *)
  let size = 128 * 1024 in
  let rc, bytes, eof = transfer_rx ~chunk:8192 ~size () in
  check_int "client exits cleanly" 0 rc;
  check "sink saw EOF" true eof;
  check "payload byte-exact across PSH flush boundaries" true
    (String.equal bytes (Bytes.to_string (pattern size)));
  check "merging still happened between the flushes" true (Sim.Stats.get "net.gro_merged" > 0)

let test_tso_mid_super_segment_failure () =
  (* tx_fail acts on a whole descriptor: a failed super-segment must
     ride the retry ladder as a unit and resubmit every wire frame it
     would have produced — no torn or missing MSS frames at the sink. *)
  let size = 128 * 1024 in
  (* With TSO a 128 KiB stream is only ~18 descriptors, so the per-
     descriptor failure rate is high to guarantee hits for this seed. *)
  let rc, bytes, _eof = transfer ~faults:(11L, [ ("net.tx_fail", 0.3) ]) ~size () in
  Sim.Fault.disable ();
  check_int "client exits cleanly despite TX failures" 0 rc;
  check "failures were actually injected" true
    (Sim.Stats.get "virtio_net.injected_tx_fail" > 0);
  check "super-segments were split by the device" true
    (Sim.Stats.get "virtio_net.tso_frames" > 0);
  check "failed descriptors rode the retry ladder" true
    (Sim.Stats.get "degrade.retried.net_tx" > 0);
  check "payload repaired to byte-exactness" true
    (String.equal bytes (Bytes.to_string (pattern size)))

let test_csum_offload_rejects_corruption () =
  (* With checksum verification offloaded to the device, injected wire
     corruption must still be caught (by the device's verdict now) and
     repaired by retransmission. *)
  let size = 128 * 1024 in
  let rc, bytes, _eof = transfer ~faults:(9L, [ ("net.corrupt", 0.02) ]) ~size () in
  Sim.Fault.disable ();
  let p = Sim.Profile.get () in
  check "checksum RX offload was on" true p.Sim.Profile.csum_rx_offload;
  check_int "client exits cleanly despite corruption" 0 rc;
  check "corruption was actually injected" true
    (Sim.Stats.get "virtio_net.injected_corrupt" > 0);
  check "device verdicts rejected the mangled frames" true
    (Sim.Stats.get "net.checksum_drop" > 0);
  check "payload repaired to byte-exactness" true
    (String.equal bytes (Bytes.to_string (pattern size)))

(* --- Zero-copy sendfile: pins balance and the copy ledger collapses --- *)

let sendfile_run ?(profile = Sim.Profile.asterinas) ?(port = 9030) ?faults ~size () =
  let k = Apps.Runner.boot ~profile in
  let host = Aster.Kernel.attach_host k in
  (match faults with Some (seed, schedule) -> Sim.Fault.configure ~seed schedule | None -> ());
  let sink = Buffer.create size in
  let eof = ref false in
  (match Aster.Tcp.listen host.Aster.Kernel.htcp ~port with
  | Error _ -> Alcotest.fail "host listen"
  | Ok l ->
    ignore
      (Ostd.Task.spawn ~name:"host-sink" (fun () ->
           let conn = Aster.Tcp.accept l in
           let buf = Bytes.create 16384 in
           let continue = ref true in
           while !continue do
             match Aster.Tcp.recv conn ~buf ~pos:0 ~len:16384 with
             | Ok 0 ->
               eof := true;
               continue := false
             | Ok n -> Buffer.add_subbytes sink buf 0 n
             | Error _ -> continue := false
           done;
           Aster.Tcp.close conn)));
  let rc = ref (-1) in
  Apps.Runner.spawn ~name:"guest-sendfile" (fun c ->
      (* Write the pattern into a RamFS file, then serve it. *)
      let data = pattern size in
      let fd = Apps.Libc.openf c "/tmp/payload" ~flags:0o101 ~mode:0o644 in
      let written = ref 0 in
      while !written < size do
        let len = min 65536 (size - !written) in
        let b = Bytes.sub data !written len in
        let n = Apps.Libc.write c ~fd ~vaddr:(Apps.Libc.put_bytes c b) ~len in
        if n <= 0 then written := size else written := !written + n
      done;
      ignore (Apps.Libc.close c fd);
      let sfd = Apps.Libc.socket c ~domain:2 ~typ:1 in
      if Apps.Libc.connect_inet c ~fd:sfd ~ip:Aster.Kernel.host_ip ~port < 0 then begin
        rc := 1;
        1
      end
      else begin
        let file = Apps.Libc.openf c "/tmp/payload" ~flags:0 ~mode:0 in
        let sent = ref 0 in
        let ok = ref true in
        while !ok && !sent < size do
          let n = Apps.Libc.sendfile c ~out_fd:sfd ~in_fd:file ~count:(size - !sent) in
          if n <= 0 then ok := false else sent := !sent + n
        done;
        ignore (Apps.Libc.close c file);
        ignore (Apps.Libc.close c sfd);
        rc := (if !ok then 0 else 2);
        !rc
      end);
  Apps.Runner.run ();
  (!rc, Buffer.contents sink, !eof)

let test_sendfile_zero_copy_pins_balance () =
  let size = 256 * 1024 in
  let rc, bytes, eof = sendfile_run ~size () in
  let pinned = Sim.Stats.get "net.zc_pin" in
  let unpinned = Sim.Stats.get "net.zc_unpin" in
  let copied = Sim.Stats.get "net.bytes_copied" in
  check_int "sendfile client exits cleanly" 0 rc;
  check "sink saw EOF" true eof;
  check "payload byte-exact through the zero-copy path" true
    (String.equal bytes (Bytes.to_string (pattern size)));
  check "page-cache frames were pinned" true (pinned > 0);
  check_int "every pin released exactly once" pinned unpinned;
  check "the CPU copied only headers, not payload" true (copied < size)

let test_sendfile_copy_baseline () =
  let size = 256 * 1024 in
  let rc, bytes, eof =
    sendfile_run ~profile:(Sim.Profile.with_all_offloads false Sim.Profile.asterinas) ~size ()
  in
  let pinned = Sim.Stats.get "net.zc_pin" in
  let copied = Sim.Stats.get "net.bytes_copied" in
  check_int "bounce-path client exits cleanly" 0 rc;
  check "sink saw EOF" true eof;
  check "payload byte-exact through the bounce path" true
    (String.equal bytes (Bytes.to_string (pattern size)));
  check_int "the bounce path pins nothing" 0 pinned;
  (* read-into-bounce + bounce memcpy + DMA-buffer copy: >= 3 payload
     traversals, against header-only bytes on the zero-copy path. *)
  check "the bounce path copies the payload at least three times" true (copied >= 3 * size)

let test_sendfile_zero_copy_survives_tx_faults () =
  (* Pin conservation must hold when frames fail mid-flight: give-ups
     and quarantines release pins exactly once, and RTO retransmits of
     pinned payloads are pinless copies. *)
  (* Large enough that the stream is many 64 KiB super-segment
     descriptors: per-descriptor fault rolls then fire at these rates
     regardless of seed. *)
  let size = 512 * 1024 in
  let rc, bytes, _eof =
    sendfile_run ~port:9031 ~faults:(11L, [ ("net.tx_fail", 0.3); ("net.tx_drop", 0.05) ]) ~size ()
  in
  Sim.Fault.disable ();
  let pinned = Sim.Stats.get "net.zc_pin" in
  let unpinned = Sim.Stats.get "net.zc_unpin" in
  check_int "client exits cleanly despite TX faults" 0 rc;
  check "faults were actually injected" true
    (Sim.Stats.get "virtio_net.injected_tx_fail" + Sim.Stats.get "virtio_net.dropped_completion"
    > 0);
  check "payload repaired to byte-exactness" true
    (String.equal bytes (Bytes.to_string (pattern size)));
  check "frames were pinned" true (pinned > 0);
  check_int "pins balance through retries, give-ups and quarantines" pinned unpinned

let test_span_tx_conservation () =
  let size = 192 * 1024 in
  let rc, bytes, eof, created, resolved = span_transfer ~size () in
  check_int "client exits cleanly" 0 rc;
  check "sink saw EOF" true eof;
  check "payload is byte-exact under spans" true
    (String.equal bytes (Bytes.to_string (pattern size)));
  check "bursts were plugged" true (Sim.Stats.get "net.burst" > 0);
  check "span-owned frames were created" true (created > 0);
  check_int "every span-owned frame resolved exactly once" created resolved

let test_span_tx_conservation_mid_burst_failure () =
  (* Corruption forces retransmission ladders and burst splits; every
     (re)prepared frame still resolves exactly once. *)
  let size = 128 * 1024 in
  let rc, bytes, _eof, created, resolved =
    span_transfer ~faults:(9L, [ ("net.corrupt", 0.02) ]) ~size ()
  in
  Sim.Fault.disable ();
  check_int "client exits cleanly despite corruption" 0 rc;
  check "corruption was actually injected" true
    (Sim.Stats.get "virtio_net.injected_corrupt" > 0);
  check "payload repaired to byte-exactness" true
    (String.equal bytes (Bytes.to_string (pattern size)));
  check "span-owned frames were created" true (created > 0);
  check_int "conservation holds through mid-burst failures" created resolved

let () =
  Alcotest.run "net"
    [
      ( "conformance",
        [
          Alcotest.test_case "batched_matches_unbatched" `Quick test_batched_matches_unbatched;
          Alcotest.test_case "etimedout_under_batching" `Quick test_etimedout_under_batching;
          Alcotest.test_case "checksum_mid_burst" `Quick test_checksum_rejects_corrupt_mid_burst;
        ] );
      ( "quarantine",
        [
          Alcotest.test_case "tx_drop_leaks_pool" `Quick test_tx_drop_quarantines_and_leaks_pool;
        ] );
      ( "offload",
        [
          Alcotest.test_case "offloaded_matches_baseline" `Quick test_offloaded_matches_baseline;
          Alcotest.test_case "gro_coalesces_rx" `Quick test_gro_coalesces_rx;
          Alcotest.test_case "gro_psh_boundaries" `Quick test_gro_flushes_across_psh_boundaries;
          Alcotest.test_case "tso_mid_super_segment_failure" `Quick
            test_tso_mid_super_segment_failure;
          Alcotest.test_case "csum_offload_rejects_corruption" `Quick
            test_csum_offload_rejects_corruption;
        ] );
      ( "zero-copy",
        [
          Alcotest.test_case "pins_balance" `Quick test_sendfile_zero_copy_pins_balance;
          Alcotest.test_case "copy_baseline" `Quick test_sendfile_copy_baseline;
          Alcotest.test_case "pins_balance_under_faults" `Quick
            test_sendfile_zero_copy_survives_tx_faults;
        ] );
      ( "span-conservation",
        [
          Alcotest.test_case "tx_exactly_once" `Quick test_span_tx_conservation;
          Alcotest.test_case "tx_exactly_once_mid_burst_failure" `Quick
            test_span_tx_conservation_mid_burst_failure;
        ] );
    ]
