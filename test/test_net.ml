(* Network conformance suite for the batched virtio-net TX/RX pipeline.

   The batching/coalescing knobs are performance knobs, not behaviour
   knobs: the application-visible byte stream must be identical with
   them on or off, error paths (handshake timeout, checksum rejection)
   must survive burst submission, and a stuck NIC must leak — not
   recycle — the DMA buffers it still owns. *)

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let pattern len = Bytes.init len (fun i -> Char.chr (((i * 31) + 7) land 0xff))

(* Guest -> host transfer of [size] patterned bytes over the virtio NIC.
   Returns (client exit, bytes the host application received, clean EOF
   seen). Boots its own kernel, so Stats cover exactly this run; the
   fault plane (armed after boot, which resets it) covers the whole
   transfer including the handshake. *)
let transfer ?(profile = Sim.Profile.asterinas) ?(port = 9009) ?(chunk = 8192) ?faults ~size () =
  let k = Apps.Runner.boot ~profile in
  let host = Aster.Kernel.attach_host k in
  (match faults with Some (seed, schedule) -> Sim.Fault.configure ~seed schedule | None -> ());
  let sink = Buffer.create size in
  let eof = ref false in
  (match Aster.Tcp.listen host.Aster.Kernel.htcp ~port with
  | Error _ -> Alcotest.fail "host listen"
  | Ok l ->
    ignore
      (Ostd.Task.spawn ~name:"host-sink" (fun () ->
           let conn = Aster.Tcp.accept l in
           let buf = Bytes.create 16384 in
           let continue = ref true in
           while !continue do
             match Aster.Tcp.recv conn ~buf ~pos:0 ~len:16384 with
             | Ok 0 ->
               eof := true;
               continue := false
             | Ok n -> Buffer.add_subbytes sink buf 0 n
             | Error _ -> continue := false
           done;
           Aster.Tcp.close conn)));
  let rc = ref (-1) in
  Apps.Runner.spawn ~name:"guest-src" (fun c ->
      let fd = Apps.Libc.socket c ~domain:2 ~typ:1 in
      if Apps.Libc.connect_inet c ~fd ~ip:Aster.Kernel.host_ip ~port < 0 then begin
        rc := 1;
        1
      end
      else begin
        let data = pattern size in
        let sent = ref 0 in
        let ok = ref true in
        while !ok && !sent < size do
          let len = min chunk (size - !sent) in
          let b = Bytes.sub data !sent len in
          let n = Apps.Libc.write c ~fd ~vaddr:(Apps.Libc.put_bytes c b) ~len in
          if n <= 0 then ok := false else sent := !sent + n
        done;
        ignore (Apps.Libc.close c fd);
        rc := (if !ok then 0 else 2);
        !rc
      end);
  Apps.Runner.run ();
  (!rc, Buffer.contents sink, !eof)

(* --- Conformance: batching is invisible at the application layer --- *)

let test_batched_matches_unbatched () =
  let size = 192 * 1024 in
  let rc_b, bytes_b, eof_b = transfer ~size () in
  let bursts = Sim.Stats.get "net.burst" in
  let queued = Sim.Stats.get "net.tx_queued" in
  let rc_u, bytes_u, eof_u =
    transfer
      ~profile:
        (Sim.Profile.with_net_irq_coalesce false
           (Sim.Profile.with_net_tx_batching false Sim.Profile.asterinas))
      ~size ()
  in
  let bursts_u = Sim.Stats.get "net.burst" in
  check_int "batched client exits cleanly" 0 rc_b;
  check_int "unbatched client exits cleanly" 0 rc_u;
  check "batched sink saw EOF" true eof_b;
  check "unbatched sink saw EOF" true eof_u;
  check "batched payload matches the pattern" true
    (String.equal bytes_b (Bytes.to_string (pattern size)));
  check "batched and unbatched payloads byte-identical" true (String.equal bytes_b bytes_u);
  check "batched run submitted bursts" true (bursts > 0);
  check "bursts amortise segments" true (bursts < queued);
  check_int "unbatched run submitted no bursts" 0 bursts_u

(* --- Handshake timeout survives batching ---

   With the link dropping every frame, connect's SYN retransmission
   ladder — segments emitted from event context, flushed through the
   plugged TX queue — must still run its course and surface ETIMEDOUT,
   not hang and not error differently. *)

let test_etimedout_under_batching () =
  ignore (Apps.Runner.boot ~profile:Sim.Profile.asterinas);
  Sim.Fault.configure ~seed:3L [ ("net.drop", 1.0) ];
  let rc = ref 0 in
  Apps.Runner.spawn ~name:"guest-conn" (fun c ->
      let fd = Apps.Libc.socket c ~domain:2 ~typ:1 in
      rc := Apps.Libc.connect_inet c ~fd ~ip:Aster.Kernel.host_ip ~port:7;
      0);
  Apps.Runner.run ();
  Sim.Fault.disable ();
  check_int "connect fails with ETIMEDOUT" (-Aster.Errno.etimedout) !rc;
  check "the SYN was retransmitted before giving up" true
    (Sim.Stats.get "degrade.retried.tcp_syn" > 0);
  check "drops were actually injected" true (Sim.Stats.get "virtio_net.injected_drop" > 0)

(* --- Checksum rejection mid-burst ---

   Frames corrupted inside a descriptor chain are rejected by the
   packet checksum at the receiver and repaired by retransmission; the
   stream stays byte-exact and the corruption never reaches the
   application. *)

let test_checksum_rejects_corrupt_mid_burst () =
  let size = 128 * 1024 in
  let rc, bytes, _eof = transfer ~faults:(9L, [ ("net.corrupt", 0.02) ]) ~size () in
  Sim.Fault.disable ();
  check_int "client exits cleanly despite corruption" 0 rc;
  check "corruption was actually injected" true
    (Sim.Stats.get "virtio_net.injected_corrupt" > 0);
  check "receiver checksum rejected the mangled frames" true
    (Sim.Stats.get "net.checksum_drop" > 0);
  check "bursts were in flight while the plane was armed" true (Sim.Stats.get "net.burst" > 0);
  check "payload repaired to byte-exactness" true
    (String.equal bytes (Bytes.to_string (pattern size)))

(* --- Quarantine accounting: a stuck NIC leaks pool slots ---

   An injected tx_drop means the device never writes the status word.
   The driver's burst deadline must quarantine the buffer: unmap it
   without returning it to the DMA pool (a late DMA must fault at the
   IOMMU, not land in reused memory), count the leak under
   net.pool_leaked, and report the frame upstack — where, with no
   owning connection, it lands in net.tx_err_unclaimed. *)

let test_tx_drop_quarantines_and_leaks_pool () =
  let k = Apps.Runner.boot ~profile:Sim.Profile.asterinas in
  ignore (Aster.Kernel.attach_host k);
  let nseg = 4 in
  Sim.Fault.configure ~seed:5L [ ("net.tx_drop", 1.0) ];
  Apps.Runner.spawn ~name:"raw-tx" (fun c ->
      for i = 0 to nseg - 1 do
        Aster.Netstack.send k.Aster.Kernel.stack
          (Aster.Packet.make ~src_ip:Aster.Kernel.guest_ip ~dst_ip:Aster.Kernel.host_ip
             ~proto:Aster.Packet.Tcp ~src_port:555 ~dst_port:556 ~flags:0
             (Bytes.make 64 (Char.chr (65 + i))))
      done;
      Aster.Netstack.flush_all ();
      (* Sleep past the burst deadline (500 us + 20 us/desc) so the
         quarantine event fires while the clock still advances. *)
      ignore (Apps.Libc.nanosleep_us c 2000.);
      0);
  Apps.Runner.run ();
  Sim.Fault.disable ();
  check_int "every frame of the burst was quarantined" nseg
    (Sim.Stats.get "virtio_net.quarantined");
  check_int "every quarantined pooled buffer is a leaked slot" nseg
    (Sim.Stats.get "net.pool_leaked");
  check_int "orphan frames reported but unclaimed by any socket" nseg
    (Sim.Stats.get "net.tx_err_unclaimed");
  check_int "no frame reached the wire" 0 (Sim.Stats.get "virtio_net.dma_fault")

(* --- Span-ownership conservation across the TX pipeline ---

   With kspan on, every span-owned frame prepared for the NIC must be
   resolved exactly once: reaped on success, reported upstack after the
   retry ladder, or quarantined at the burst deadline. The creation
   counter (prepare_tx) and the resolution counter must agree to the
   unit — through plug bursts, burst splits and retransmissions. *)

let span_transfer ?faults ~size () =
  Sim.Span.enable ();
  Sim.Span.set_auto true;
  let rc, bytes, eof = transfer ?faults ~size () in
  let created = Sim.Stats.get "span.tx_created" in
  let resolved = Sim.Stats.get "span.tx_done" in
  Sim.Span.disable ();
  Sim.Span.set_auto false;
  (rc, bytes, eof, created, resolved)

let test_span_tx_conservation () =
  let size = 192 * 1024 in
  let rc, bytes, eof, created, resolved = span_transfer ~size () in
  check_int "client exits cleanly" 0 rc;
  check "sink saw EOF" true eof;
  check "payload is byte-exact under spans" true
    (String.equal bytes (Bytes.to_string (pattern size)));
  check "bursts were plugged" true (Sim.Stats.get "net.burst" > 0);
  check "span-owned frames were created" true (created > 0);
  check_int "every span-owned frame resolved exactly once" created resolved

let test_span_tx_conservation_mid_burst_failure () =
  (* Corruption forces retransmission ladders and burst splits; every
     (re)prepared frame still resolves exactly once. *)
  let size = 128 * 1024 in
  let rc, bytes, _eof, created, resolved =
    span_transfer ~faults:(9L, [ ("net.corrupt", 0.02) ]) ~size ()
  in
  Sim.Fault.disable ();
  check_int "client exits cleanly despite corruption" 0 rc;
  check "corruption was actually injected" true
    (Sim.Stats.get "virtio_net.injected_corrupt" > 0);
  check "payload repaired to byte-exactness" true
    (String.equal bytes (Bytes.to_string (pattern size)));
  check "span-owned frames were created" true (created > 0);
  check_int "conservation holds through mid-burst failures" created resolved

let () =
  Alcotest.run "net"
    [
      ( "conformance",
        [
          Alcotest.test_case "batched_matches_unbatched" `Quick test_batched_matches_unbatched;
          Alcotest.test_case "etimedout_under_batching" `Quick test_etimedout_under_batching;
          Alcotest.test_case "checksum_mid_burst" `Quick test_checksum_rejects_corrupt_mid_burst;
        ] );
      ( "quarantine",
        [
          Alcotest.test_case "tx_drop_leaks_pool" `Quick test_tx_drop_quarantines_and_leaks_pool;
        ] );
      ( "span-conservation",
        [
          Alcotest.test_case "tx_exactly_once" `Quick test_span_tx_conservation;
          Alcotest.test_case "tx_exactly_once_mid_burst_failure" `Quick
            test_span_tx_conservation_mid_burst_failure;
        ] );
    ]
