(* Chaos soak: mini-app workloads under a seeded fault schedule.

   For each fixed seed the soak asserts the three graceful-degradation
   properties end to end:
   - liveness: every workload completes or fails with a proper errno,
     nothing hangs;
   - containment: no [Kernel_panic] escapes a service-level fault, and
     user code never reads silently corrupted data;
   - durability: after the final sync the buffer cache is byte-identical
     to the device.
   Plus determinism: the same seed produces a byte-identical fault log. *)

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let seeds = [ 42L; 7L; 1234L ]

let workloads = Apps.Chaos.nfiles + 1 (* fs writers + the redis bench *)

let soak seed () =
  let o = Apps.Chaos.run ~seed () in
  check_int "no hung workloads" 0 o.Apps.Chaos.hung;
  check_int "no kernel panic escapes" 0 o.Apps.Chaos.panics;
  check_int "no silent corruption seen by user code" 0 o.Apps.Chaos.corrupt;
  check_int "every workload accounted for" workloads
    (o.Apps.Chaos.completed + o.Apps.Chaos.failed_errno);
  if o.Apps.Chaos.sync_ok then
    check_int "cache matches device after sync" 0 o.Apps.Chaos.mismatches;
  check "durability crosscheck covered blocks" true (o.Apps.Chaos.blocks_checked > 0);
  check "faults were actually injected" true
    (List.assoc "injected" o.Apps.Chaos.report > 0)

let determinism () =
  let a = Apps.Chaos.run ~seed:42L () in
  let b = Apps.Chaos.run ~seed:42L () in
  Alcotest.(check (list string))
    "same seed, byte-identical fault log" a.Apps.Chaos.fault_log b.Apps.Chaos.fault_log;
  let c = Apps.Chaos.run ~seed:7L () in
  check "different seed, different schedule" true
    (a.Apps.Chaos.fault_log <> c.Apps.Chaos.fault_log)

let () =
  Alcotest.run "chaos"
    [
      ( "soak",
        List.map
          (fun s -> Alcotest.test_case (Printf.sprintf "seed_%Ld" s) `Slow (soak s))
          seeds );
      ("determinism", [ Alcotest.test_case "fault_log" `Slow determinism ]);
    ]
