(* Chaos soak: mini-app workloads under a seeded fault schedule.

   For each fixed seed the soak asserts the three graceful-degradation
   properties end to end:
   - liveness: every workload completes or fails with a proper errno,
     nothing hangs;
   - containment: no [Kernel_panic] escapes a service-level fault, and
     user code never reads silently corrupted data;
   - durability: after the final sync the buffer cache is byte-identical
     to the device.
   Plus determinism: the same seed produces a byte-identical fault log. *)

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let seeds = [ 42L; 7L; 1234L ]

let workloads = Apps.Chaos.nfiles + 1 (* fs writers + the redis bench *)

let soak seed () =
  let o = Apps.Chaos.run ~seed () in
  check_int "no hung workloads" 0 o.Apps.Chaos.hung;
  check_int "no kernel panic escapes" 0 o.Apps.Chaos.panics;
  check_int "no silent corruption seen by user code" 0 o.Apps.Chaos.corrupt;
  check_int "every workload accounted for" workloads
    (o.Apps.Chaos.completed + o.Apps.Chaos.failed_errno);
  if o.Apps.Chaos.sync_ok then
    check_int "cache matches device after sync" 0 o.Apps.Chaos.mismatches;
  check "durability crosscheck covered blocks" true (o.Apps.Chaos.blocks_checked > 0);
  check "faults were actually injected" true
    (List.assoc "injected" o.Apps.Chaos.report > 0)

let determinism () =
  let a = Apps.Chaos.run ~seed:42L () in
  let b = Apps.Chaos.run ~seed:42L () in
  Alcotest.(check (list string))
    "same seed, byte-identical fault log" a.Apps.Chaos.fault_log b.Apps.Chaos.fault_log;
  let c = Apps.Chaos.run ~seed:7L () in
  check "different seed, different schedule" true
    (a.Apps.Chaos.fault_log <> c.Apps.Chaos.fault_log)

(* --- Mid-batch device errors ---

   The batched pipeline merges a sequential read into descriptor chains;
   an injected error or drop in the middle of a chain must split it back
   into per-bio attempts (blk.batch_split), retry those, and surface EIO
   only when a bio's retries are exhausted — never corrupt data, never
   hang. Same seed, byte-identical behaviour. *)

let batch_fault_run seed =
  ignore (Apps.Runner.boot ~profile:Sim.Profile.asterinas);
  let outcome = ref None in
  Apps.Runner.spawn ~name:"batchfault" (fun c ->
      let chunk = 65536 in
      let size = 512 * 1024 in
      let buf = Apps.Libc.ualloc c chunk in
      let pattern = Bytes.init chunk (fun i -> Char.chr ((i * 31) mod 256)) in
      (Apps.Libc.raw c).Ostd.User.mem_write buf pattern;
      let fd = Apps.Libc.openf c "/ext2/bf.dat" ~flags:0o102 ~mode:0o644 in
      let written = ref 0 in
      while !written < size do
        let n = Apps.Libc.write c ~fd ~vaddr:buf ~len:chunk in
        if n <= 0 then Apps.Libc.exit c 2;
        written := !written + n
      done;
      ignore (Apps.Libc.fsync c fd);
      ignore (Apps.Libc.close c fd);
      ignore (Aster.Block.drop_clean ());
      (* Arm the plane only for the cold batched read-back. *)
      Sim.Fault.configure ~seed [ ("blk.io_error", 0.15); ("blk.drop", 0.03) ];
      let fd = Apps.Libc.openf c "/ext2/bf.dat" ~flags:0 ~mode:0 in
      let got = ref 0 in
      let bad = ref false in
      let errno = ref 0 in
      let continue = ref true in
      while !continue do
        let n = Apps.Libc.read c ~fd ~vaddr:buf ~len:chunk in
        if n = 0 then continue := false
        else if n < 0 then begin
          errno := -n;
          continue := false
        end
        else begin
          let data = Apps.Libc.get_bytes c buf n in
          for i = 0 to n - 1 do
            if Bytes.get data i <> Char.chr (((!got + i) mod chunk * 31) mod 256) then
              bad := true
          done;
          got := !got + n
        end
      done;
      ignore (Apps.Libc.close c fd);
      Sim.Fault.disable ();
      outcome := Some (!got, !bad, !errno);
      0);
  Apps.Runner.run ();
  Sim.Fault.disable ();
  (!outcome, Sim.Stats.get "blk.batch_split", Sim.Stats.get "fault.injected.blk.io_error",
   Sim.Fault.log ())

let mid_batch_fault () =
  let outcome, splits, injected, _log = batch_fault_run 42L in
  (match outcome with
  | None -> Alcotest.fail "batched reader hung under the fault plane"
  | Some (got, bad, errno) ->
    check "faults were injected into the batch window" true (injected > 0);
    check "a mid-batch error split the merged request" true (splits > 0);
    check "no silent corruption in the bytes that were returned" false bad;
    check "read either completed or failed with EIO, no third outcome" true
      (got = 512 * 1024 || errno = 5));
  check "batches were issued at all" true (Sim.Stats.get "blk.batch" > 0)

let mid_batch_determinism () =
  let o1, s1, _, log1 = batch_fault_run 42L in
  let o2, s2, _, log2 = batch_fault_run 42L in
  Alcotest.(check (list string)) "same seed, byte-identical fault log" log1 log2;
  check "same seed, identical outcome" true (o1 = o2 && s1 = s2);
  let _, _, _, log3 = batch_fault_run 7L in
  check "different seed, different schedule" true (log1 <> log3)

(* --- Mid-burst TX faults on the network path ---

   Two concurrent guest->host streams with net.tx_fail / net.tx_drop hot
   for the whole run (handshakes included). An injected mid-burst failure
   must split the descriptor chain onto the retry ladder (net.burst_split),
   a dropped completion must quarantine the buffer, and every resulting
   soft error must land on the socket that owned the frame — never a
   neighbour sharing the burst, never the floor. The app-level oracle is
   each sink being byte-identical to its own pattern despite the
   wreckage. *)

let net_pattern_str ~stream len = Bytes.to_string (Apps.Chaos.net_pattern ~stream len)

let net_batch_fault () =
  let o = Apps.Chaos.net_batch_run ~seed:42L () in
  let r0, r1 = o.Apps.Chaos.rcs in
  let s0, s1 = o.Apps.Chaos.sinks in
  let e0, e1 = o.Apps.Chaos.eofs in
  check_int "stream 0 client wrote everything" 0 r0;
  check_int "stream 1 client wrote everything" 0 r1;
  check "stream 0 sink saw a clean FIN" true e0;
  check "stream 1 sink saw a clean FIN" true e1;
  check "no kernel panic escaped" true (o.Apps.Chaos.npanics = 0);
  check "faults were injected into the TX path" true (o.Apps.Chaos.injected > 0);
  check "a mid-burst error split a descriptor chain" true (o.Apps.Chaos.splits > 0);
  check "dropped completions were quarantined" true (o.Apps.Chaos.quarantined > 0);
  check "stream 0 byte-identical to its pattern" true
    (String.equal s0 (net_pattern_str ~stream:0 (String.length s0)) && String.length s0 > 0);
  check "stream 1 byte-identical to its pattern" true
    (String.equal s1 (net_pattern_str ~stream:1 (String.length s1)) && String.length s1 > 0);
  (* Attribution: every abandoned/quarantined frame surfaces as exactly
     one soft error on the owning socket, and none go unclaimed. *)
  check_int "every TX casualty claimed by its owning socket"
    (o.Apps.Chaos.gave_up + o.Apps.Chaos.quarantined)
    o.Apps.Chaos.soft_err;
  check_int "no soft error misattributed or dropped" 0 o.Apps.Chaos.unclaimed

let net_batch_determinism () =
  let a = Apps.Chaos.net_batch_run ~seed:42L () in
  let b = Apps.Chaos.net_batch_run ~seed:42L () in
  Alcotest.(check (list string))
    "same seed, byte-identical fault log" a.Apps.Chaos.nfault_log b.Apps.Chaos.nfault_log;
  check "same seed, identical sink bytes" true (a.Apps.Chaos.sinks = b.Apps.Chaos.sinks);
  check "same seed, identical degradation counters" true
    (a.Apps.Chaos.splits = b.Apps.Chaos.splits
    && a.Apps.Chaos.quarantined = b.Apps.Chaos.quarantined
    && a.Apps.Chaos.soft_err = b.Apps.Chaos.soft_err);
  let c = Apps.Chaos.net_batch_run ~seed:7L () in
  check "different seed, different schedule" true
    (a.Apps.Chaos.nfault_log <> c.Apps.Chaos.nfault_log)

let () =
  Alcotest.run "chaos"
    [
      ( "soak",
        List.map
          (fun s -> Alcotest.test_case (Printf.sprintf "seed_%Ld" s) `Slow (soak s))
          seeds );
      ("determinism", [ Alcotest.test_case "fault_log" `Slow determinism ]);
      ( "batch",
        [
          Alcotest.test_case "mid_batch_fault" `Slow mid_batch_fault;
          Alcotest.test_case "mid_batch_determinism" `Slow mid_batch_determinism;
        ] );
      ( "net-batch",
        [
          Alcotest.test_case "mid_burst_tx_fault" `Slow net_batch_fault;
          Alcotest.test_case "net_batch_determinism" `Slow net_batch_determinism;
        ] );
    ]
