let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_str = Alcotest.(check string)

let boot ?(profile = Sim.Profile.asterinas) () =
  let k = Aster.Kernel.boot ~profile () in
  Apps.Libc.install_child_resolver ();
  k

let run_user ?profile body =
  ignore (boot ?profile ());
  let result = ref None in
  ignore
    (Aster.Process.spawn_kernel_style ~name:"apps-test" (fun uapi ->
         let code = body (Apps.Libc.make uapi) in
         result := Some code;
         code));
  Aster.Kernel.run ();
  match !result with
  | Some code -> code
  | None -> Alcotest.fail "user program did not finish"

(* --- Packet codec --- *)

let test_packet_roundtrip () =
  let p =
    Aster.Packet.make
      ~src_ip:(Aster.Packet.ip_of_string "10.0.2.15")
      ~dst_ip:(Aster.Packet.ip_of_string "10.0.2.2")
      ~proto:Aster.Packet.Tcp ~src_port:33000 ~dst_port:80 ~flags:Aster.Packet.syn ~seq:7
      ~ack:9 ~win:65535 (Bytes.of_string "payload!")
  in
  match Aster.Packet.decode (Aster.Packet.encode p) with
  | None -> Alcotest.fail "decode failed"
  | Some q ->
    check "fields survive" true
      (q.Aster.Packet.src_port = 33000 && q.Aster.Packet.dst_port = 80
      && q.Aster.Packet.seq = 7 && q.Aster.Packet.ack = 9
      && Bytes.to_string q.Aster.Packet.payload = "payload!")

let test_packet_bad_input () =
  check "short buffer" true (Aster.Packet.decode (Bytes.create 3) = None)

let prop_packet_roundtrip =
  QCheck.Test.make ~name:"packet_random_roundtrips" ~count:200
    QCheck.(string_of_size (QCheck.Gen.int_range 0 2000))
    (fun s ->
      let p =
        Aster.Packet.make ~src_ip:1 ~dst_ip:2 ~proto:Aster.Packet.Udp ~src_port:5 ~dst_port:6
          (Bytes.of_string s)
      in
      match Aster.Packet.decode (Aster.Packet.encode p) with
      | Some q -> Bytes.to_string q.Aster.Packet.payload = s
      | None -> false)

let test_ip_strings () =
  check_str "roundtrip" "192.168.1.42"
    (Aster.Packet.string_of_ip (Aster.Packet.ip_of_string "192.168.1.42"))

(* --- Libc over the full kernel --- *)

let test_libc_file_calls () =
  let code =
    run_user (fun c ->
        let fd = Apps.Libc.openf c "/tmp/f" ~flags:0o102 ~mode:0o644 in
        let buf = Apps.Libc.ualloc c 4096 in
        (Apps.Libc.raw c).Ostd.User.mem_write buf (Bytes.of_string "0123456789");
        if Apps.Libc.pwrite c ~fd ~vaddr:buf ~len:10 ~off:0 <> 10 then 1
        else if Apps.Libc.pread c ~fd ~vaddr:buf ~len:4 ~off:3 <> 4 then 2
        else if Bytes.to_string (Apps.Libc.get_bytes c buf 4) <> "3456" then 3
        else if Apps.Libc.lseek c ~fd ~off:(-2) ~whence:2 <> 8 then 4
        else if Apps.Libc.ftruncate c ~fd ~len:5 <> 0 then 5
        else
          match Apps.Libc.fstat c fd with
          | Ok st when st.Aster.Abi.size = 5 -> 0
          | Ok _ -> 6
          | Error _ -> 7)
  in
  check_int "exit" 0 code

let test_libc_dup_umask_cwd () =
  let code =
    run_user (fun c ->
        ignore (Apps.Libc.mkdir c "/tmp/wd");
        if Apps.Libc.chdir c "/tmp/wd" < 0 then 1
        else if Apps.Libc.getcwd c <> "/tmp/wd" then 2
        else begin
          (* Relative path resolution from the new cwd. *)
          let fd = Apps.Libc.openf c "rel.txt" ~flags:0o101 ~mode:0o644 in
          ignore (Apps.Libc.write_str c ~fd "rel");
          if Apps.Libc.dup2 c fd 9 < 0 then 3
          else begin
            ignore (Apps.Libc.close c fd);
            (* fd 9 still works after closing the original. *)
            let n = Apps.Libc.write_str c ~fd:9 "-more" in
            ignore (Apps.Libc.close c 9);
            if n <> 5 then 4
            else if Apps.Libc.access c "/tmp/wd/rel.txt" <> 0 then 5
            else 0
          end
        end)
  in
  check_int "exit" 0 code

let test_libc_readv_writev () =
  let code =
    run_user (fun c ->
        let fd = Apps.Libc.openf c "/tmp/v" ~flags:0o102 ~mode:0o644 in
        let b1 = Apps.Libc.put_bytes c (Bytes.of_string "abc") in
        let b2 = Apps.Libc.put_bytes c (Bytes.of_string "defg") in
        let iov = Bytes.create 32 in
        Bytes.set_int64_le iov 0 (Int64.of_int b1);
        Bytes.set_int64_le iov 8 3L;
        Bytes.set_int64_le iov 16 (Int64.of_int b2);
        Bytes.set_int64_le iov 24 4L;
        let iov_ptr = Apps.Libc.put_bytes c iov in
        (* A short register array must not crash the kernel. *)
        ignore (Apps.Libc.syscall c Aster.Syscall_nr.writev [| 0L |]);
        let wrote =
          Apps.Libc.syscall c Aster.Syscall_nr.writev
            [| Int64.of_int fd; Int64.of_int iov_ptr; 2L |]
        in
        if wrote <> 7 then 1
        else begin
          ignore (Apps.Libc.close c fd);
          let fd = Apps.Libc.openf c "/tmp/v" ~flags:0 ~mode:0 in
          let s = Apps.Libc.read_str c ~fd ~len:16 in
          if s = "abcdefg" then 0 else 2
        end)
  in
  check_int "exit" 0 code

let test_poll_on_pipe () =
  let code =
    run_user (fun c ->
        match Apps.Libc.pipe c with
        | Error _ -> 1
        | Ok (rfd, wfd) ->
          (* pollfd { int fd; short events; short revents } *)
          let pfd = Bytes.make 8 '\000' in
          Bytes.set_int32_le pfd 0 (Int32.of_int rfd);
          Bytes.set_uint16_le pfd 4 1 (* POLLIN: poll honours the events mask *);
          let pfd_ptr = Apps.Libc.put_bytes c pfd in
          (* Nothing readable yet: expect timeout -> 0 ready. *)
          let r0 =
            Apps.Libc.syscall c Aster.Syscall_nr.poll [| Int64.of_int pfd_ptr; 1L; 1L |]
          in
          ignore (Apps.Libc.write_str c ~fd:wfd "x");
          let r1 =
            Apps.Libc.syscall c Aster.Syscall_nr.poll [| Int64.of_int pfd_ptr; 1L; 100L |]
          in
          if r0 = 0 && r1 = 1 then 0 else 2)
  in
  check_int "exit" 0 code

let test_clock_monotonic () =
  let code =
    run_user (fun c ->
        let t1 = Apps.Libc.clock_monotonic_ns c in
        ignore (Apps.Libc.nanosleep_us c 50.);
        let t2 = Apps.Libc.clock_monotonic_ns c in
        if Int64.compare t2 t1 > 0 then 0 else 1)
  in
  check_int "exit" 0 code

let test_getrandom () =
  let code =
    run_user (fun c ->
        let buf = Apps.Libc.ualloc c 64 in
        let n = Apps.Libc.syscall c Aster.Syscall_nr.getrandom [| Int64.of_int buf; 64L; 0L |] in
        if n = 64 then 0 else 1)
  in
  check_int "exit" 0 code

(* --- Mini redis command engine --- *)

let test_redis_protocol () =
  ignore (boot ());
  let got = ref [] in
  ignore
    (Aster.Process.spawn_kernel_style ~name:"redis-proto" (fun uapi ->
         let c = Apps.Libc.make uapi in
         ignore c;
         0));
  Aster.Kernel.run ();
  ignore !got;
  (* Drive the server over loopback from a second user process. *)
  ignore (boot ());
  Apps.Mini_redis.spawn ();
  let replies = ref [] in
  ignore
    (Aster.Process.spawn_kernel_style ~name:"client" (fun uapi ->
         let c = Apps.Libc.make uapi in
         let fd = Apps.Libc.socket c ~domain:2 ~typ:1 in
         let lo = Aster.Packet.ip_of_string "127.0.0.1" in
         let rec wait n =
           if Apps.Libc.connect_inet c ~fd ~ip:lo ~port:Apps.Mini_redis.port >= 0 then true
           else if n = 0 then false
           else begin
             ignore (Apps.Libc.nanosleep_us c 200.);
             wait (n - 1)
           end
         in
         if not (wait 30) then 1
         else begin
           List.iter
             (fun cmd ->
               ignore (Apps.Libc.write_str c ~fd (cmd ^ "\n"));
               replies := Apps.Libc.read_str c ~fd ~len:4096 :: !replies)
             [ "SET k v1"; "GET k"; "INCR n"; "INCR n"; "RPUSH l a"; "RPUSH l b"; "LRANGE l 0 1";
               "SADD s x"; "SPOP s"; "HSET h f v"; "ZADD z 3 m"; "ZPOPMIN z"; "LPOP l"; "GET missing";
               "APPEND k -more"; "STRLEN k"; "EXISTS k"; "DEL k"; "EXISTS k"; "SETNX nk 1";
               "SETNX nk 2"; "GETSET nk 3"; "LLEN l"; "HGET h f"; "HDEL h f"; "HLEN h";
               "SADD s2 a"; "SCARD s2"; "SISMEMBER s2 a"; "ECHO hi" ];
           0
         end));
  Aster.Kernel.run ();
  let r = List.rev !replies in
  check_str "set" "+OK\n" (List.nth r 0);
  check_str "get" "$v1\n" (List.nth r 1);
  check_str "incr1" ":1\n" (List.nth r 2);
  check_str "incr2" ":2\n" (List.nth r 3);
  check_str "lrange" "*2\n$a\n$b\n" (List.nth r 6);
  check_str "spop" "$x\n" (List.nth r 8);
  check_str "zpopmin" "*2\n$m\n$3\n" (List.nth r 11);
  check_str "lpop" "$a\n" (List.nth r 12);
  check_str "missing" "$-1\n" (List.nth r 13);
  check_str "append" ":7\n" (List.nth r 14);
  check_str "strlen" ":7\n" (List.nth r 15);
  check_str "exists" ":1\n" (List.nth r 16);
  check_str "del" ":1\n" (List.nth r 17);
  check_str "exists_after" ":0\n" (List.nth r 18);
  check_str "setnx_fresh" ":1\n" (List.nth r 19);
  check_str "setnx_taken" ":0\n" (List.nth r 20);
  check_str "getset" "$1\n" (List.nth r 21);
  check_str "llen" ":1\n" (List.nth r 22);
  check_str "hget" "$v\n" (List.nth r 23);
  check_str "hdel" ":1\n" (List.nth r 24);
  check_str "hlen" ":0\n" (List.nth r 25);
  check_str "scard" ":1\n" (List.nth r 27);
  check_str "sismember" ":1\n" (List.nth r 28);
  check_str "echo" "$hi\n" (List.nth r 29)

(* --- Mini sqlite engine --- *)

let with_db f =
  ignore (boot ());
  let out = ref None in
  ignore
    (Aster.Process.spawn_kernel_style ~name:"sqlite-test" (fun uapi ->
         let c = Apps.Libc.make uapi in
         let db = Apps.Mini_sqlite.open_db c "/ext2/test.db" in
         let r = f db in
         Apps.Mini_sqlite.close_db db;
         out := Some r;
         0));
  Aster.Kernel.run ();
  Option.get !out

let test_sqlite_insert_lookup () =
  let ok =
    with_db (fun db ->
        Apps.Mini_sqlite.create_table db "t";
        Apps.Mini_sqlite.begin_txn db;
        for i = 1 to 300 do
          Apps.Mini_sqlite.insert db ~table:"t" (Apps.Mini_sqlite.K_int i)
            (Printf.sprintf "row%d" i)
        done;
        Apps.Mini_sqlite.commit db;
        Apps.Mini_sqlite.lookup db ~table:"t" (Apps.Mini_sqlite.K_int 137) = Some "row137"
        && Apps.Mini_sqlite.lookup db ~table:"t" (Apps.Mini_sqlite.K_int 999) = None
        && Apps.Mini_sqlite.row_count db ~table:"t" = 300)
  in
  check "insert/lookup" true ok

let test_sqlite_range_update_delete () =
  let ok =
    with_db (fun db ->
        Apps.Mini_sqlite.create_table db "t";
        Apps.Mini_sqlite.begin_txn db;
        for i = 1 to 200 do
          Apps.Mini_sqlite.insert db ~table:"t" (Apps.Mini_sqlite.K_int i) "v"
        done;
        Apps.Mini_sqlite.commit db;
        let in_range =
          Apps.Mini_sqlite.range_count db ~table:"t" ~lo:(Apps.Mini_sqlite.K_int 50)
            ~hi:(Apps.Mini_sqlite.K_int 59)
        in
        Apps.Mini_sqlite.begin_txn db;
        let updated =
          Apps.Mini_sqlite.update_range db ~table:"t" ~lo:(Apps.Mini_sqlite.K_int 1)
            ~hi:(Apps.Mini_sqlite.K_int 10)
            ~f:(fun v -> v ^ "!")
        in
        let deleted =
          Apps.Mini_sqlite.delete_range db ~table:"t" ~lo:(Apps.Mini_sqlite.K_int 100)
            ~hi:(Apps.Mini_sqlite.K_int 149)
        in
        Apps.Mini_sqlite.commit db;
        in_range = 10 && updated = 10 && deleted = 50
        && Apps.Mini_sqlite.row_count db ~table:"t" = 150
        && Apps.Mini_sqlite.lookup db ~table:"t" (Apps.Mini_sqlite.K_int 3) = Some "v!")
  in
  check "range ops" true ok

let test_sqlite_text_keys_and_vacuum () =
  let ok =
    with_db (fun db ->
        Apps.Mini_sqlite.create_table db "t";
        Apps.Mini_sqlite.begin_txn db;
        for i = 1 to 120 do
          Apps.Mini_sqlite.insert db ~table:"t"
            (Apps.Mini_sqlite.K_text (Printf.sprintf "key-%04d" i))
            (Printf.sprintf "val%d" i)
        done;
        Apps.Mini_sqlite.commit db;
        let pages_before = Apps.Mini_sqlite.pages_in_file db in
        Apps.Mini_sqlite.begin_txn db;
        ignore
          (Apps.Mini_sqlite.delete_range db ~table:"t"
             ~lo:(Apps.Mini_sqlite.K_text "key-0000")
             ~hi:(Apps.Mini_sqlite.K_text "key-0100"));
        Apps.Mini_sqlite.commit db;
        Apps.Mini_sqlite.vacuum db;
        let pages_after = Apps.Mini_sqlite.pages_in_file db in
        Apps.Mini_sqlite.lookup db ~table:"t" (Apps.Mini_sqlite.K_text "key-0110")
        = Some "val110"
        && pages_after <= pages_before
        && Apps.Mini_sqlite.integrity_check db > 0)
  in
  check "text keys + vacuum" true ok

let prop_sqlite_random_inserts =
  QCheck.Test.make ~name:"sqlite_btree_holds_random_keys" ~count:8
    QCheck.(list_of_size (Gen.int_range 10 120) (int_range 0 5000))
    (fun keys ->
      let keys = List.sort_uniq compare keys in
      with_db (fun db ->
          Apps.Mini_sqlite.create_table db "t";
          Apps.Mini_sqlite.begin_txn db;
          List.iter
            (fun k ->
              Apps.Mini_sqlite.insert db ~table:"t" (Apps.Mini_sqlite.K_int k)
                (string_of_int k))
            keys;
          Apps.Mini_sqlite.commit db;
          List.for_all
            (fun k ->
              Apps.Mini_sqlite.lookup db ~table:"t" (Apps.Mini_sqlite.K_int k)
              = Some (string_of_int k))
            keys
          && Apps.Mini_sqlite.row_count db ~table:"t" = List.length keys))

(* --- Workload smoke runs --- *)

let test_speedtest1_structure () =
  ignore (boot ());
  let out = ref [] in
  ignore
    (Aster.Process.spawn_kernel_style ~name:"st1" (fun uapi ->
         out := Apps.Speedtest1.run ~size:4 (Apps.Libc.make uapi);
         0));
  Aster.Kernel.run ();
  check_int "all 32 tests" 32 (List.length !out);
  check "times positive" true
    (List.for_all (fun r -> r.Apps.Speedtest1.seconds >= 0.) !out)

let test_fio_sane () =
  ignore (boot ());
  let out = ref { Apps.Fio.write_mb_s = nan; read_cold_mb_s = nan; read_mb_s = nan } in
  ignore
    (Aster.Process.spawn_kernel_style ~name:"fio" (fun uapi ->
         out := Apps.Fio.run (Apps.Libc.make uapi) ~file:"/ext2/fio.dat" ~mbytes:2;
         0));
  Aster.Kernel.run ();
  check "write bw sane" true (!out.Apps.Fio.write_mb_s > 10. && !out.Apps.Fio.write_mb_s < 100000.);
  check "read faster than write" true (!out.Apps.Fio.read_mb_s > !out.Apps.Fio.write_mb_s)

let test_lmbench_spot () =
  let row = Apps.Lmbench.find "lat_syscall null" in
  let v = row.Apps.Lmbench.run Sim.Profile.linux in
  check "null syscall near 0.05us" true (v > 0.01 && v < 0.2);
  let bw = Apps.Lmbench.find "bw_pipe" in
  check "pipe bandwidth positive" true (bw.Apps.Lmbench.run Sim.Profile.asterinas > 100.)

let test_nginx_smoke () =
  let k = boot () in
  let host = Aster.Kernel.attach_host k in
  Apps.Mini_nginx.spawn ~requests:60 ~sizes:[ ("f", 4096) ] ();
  let out = ref None in
  Apps.Ab.run ~host ~path:"/f" ~concurrency:8 ~requests:60 ~on_done:(fun r -> out := Some r);
  Aster.Kernel.run ();
  match !out with
  | Some r ->
    check_int "all served" 60 r.Apps.Ab.requests;
    check "throughput positive" true (r.Apps.Ab.rps > 100.)
  | None -> Alcotest.fail "ab did not finish"

let prop_tcp_stream_integrity =
  QCheck.Test.make ~name:"tcp_loopback_streams_arrive_intact" ~count:6
    QCheck.(list_of_size (Gen.int_range 1 12) (int_range 1 20000))
    (fun chunks ->
      ignore (boot ());
      let total = List.fold_left ( + ) 0 chunks in
      let received = Buffer.create total in
      let expect = Buffer.create total in
      List.iteri
        (fun i n -> Buffer.add_string expect (String.make n (Char.chr (65 + (i mod 26)))))
        chunks;
      ignore
        (Aster.Process.spawn_kernel_style ~name:"sink" (fun uapi ->
             let c = Apps.Libc.make uapi in
             let fd = Apps.Libc.socket c ~domain:2 ~typ:1 in
             ignore (Apps.Libc.bind_inet c ~fd ~port:7100);
             ignore (Apps.Libc.listen c ~fd ~backlog:2);
             let conn = Apps.Libc.accept c ~fd in
             let buf = Apps.Libc.ualloc c 65536 in
             let continue = ref true in
             while !continue do
               let n = Apps.Libc.read c ~fd:conn ~vaddr:buf ~len:65536 in
               if n <= 0 then continue := false
               else Buffer.add_bytes received (Apps.Libc.get_bytes c buf n)
             done;
             0));
      ignore
        (Aster.Process.spawn_kernel_style ~name:"src" (fun uapi ->
             let c = Apps.Libc.make uapi in
             let fd = Apps.Libc.socket c ~domain:2 ~typ:1 in
             let lo = Aster.Packet.ip_of_string "127.0.0.1" in
             let rec wait n =
               if Apps.Libc.connect_inet c ~fd ~ip:lo ~port:7100 >= 0 then true
               else if n = 0 then false
               else begin
                 ignore (Apps.Libc.nanosleep_us c 200.);
                 wait (n - 1)
               end
             in
             if wait 30 then begin
               List.iteri
                 (fun i n ->
                   let payload = String.make n (Char.chr (65 + (i mod 26))) in
                   let v = Apps.Libc.put_bytes c (Bytes.of_string payload) in
                   let sent = ref 0 in
                   while !sent < n do
                     let w = Apps.Libc.write c ~fd ~vaddr:(v + !sent) ~len:(n - !sent) in
                     if w <= 0 then sent := n else sent := !sent + w
                   done)
                 chunks;
               ignore (Apps.Libc.shutdown c ~fd)
             end;
             0));
      Aster.Kernel.run ();
      Buffer.contents received = Buffer.contents expect)

let test_ext2_many_files_stress () =
  let code =
    run_user (fun c ->
        ignore (Apps.Libc.mkdir c "/ext2/stress");
        let failures = ref 0 in
        (* Create 40 files with distinct content, verify, delete half,
           verify survivors and free-space recovery. *)
        for i = 1 to 40 do
          let fd =
            Apps.Libc.openf c (Printf.sprintf "/ext2/stress/f%02d" i) ~flags:0o101 ~mode:0o644
          in
          if Apps.Libc.write_str c ~fd (Printf.sprintf "content-%04d" i) < 0 then incr failures;
          ignore (Apps.Libc.close c fd)
        done;
        let free_before = Aster.Ext2.free_blocks () in
        for i = 1 to 40 do
          if i mod 2 = 0 then
            if Apps.Libc.unlink c (Printf.sprintf "/ext2/stress/f%02d" i) < 0 then incr failures
        done;
        for i = 1 to 40 do
          let path = Printf.sprintf "/ext2/stress/f%02d" i in
          let exists = Apps.Libc.access c path = 0 in
          if i mod 2 = 0 && exists then incr failures;
          if i mod 2 = 1 then begin
            if not exists then incr failures
            else begin
              let fd = Apps.Libc.openf c path ~flags:0 ~mode:0 in
              if Apps.Libc.read_str c ~fd ~len:64 <> Printf.sprintf "content-%04d" i then
                incr failures;
              ignore (Apps.Libc.close c fd)
            end
          end
        done;
        if Aster.Ext2.free_blocks () < free_before then incr failures;
        let dfd = Apps.Libc.openf c "/ext2/stress" ~flags:0 ~mode:0 in
        let names = Apps.Libc.getdents c ~fd:dfd in
        if List.length names <> 20 then incr failures;
        !failures)
  in
  Alcotest.(check int) "no failures" 0 code

let () =
  Alcotest.run "apps"
    [
      ( "packet",
        [
          Alcotest.test_case "roundtrip" `Quick test_packet_roundtrip;
          Alcotest.test_case "bad_input" `Quick test_packet_bad_input;
          Alcotest.test_case "ip_strings" `Quick test_ip_strings;
        ] );
      ( "libc",
        [
          Alcotest.test_case "file_calls" `Quick test_libc_file_calls;
          Alcotest.test_case "dup_cwd" `Quick test_libc_dup_umask_cwd;
          Alcotest.test_case "readv_writev" `Quick test_libc_readv_writev;
          Alcotest.test_case "poll_pipe" `Quick test_poll_on_pipe;
          Alcotest.test_case "clock" `Quick test_clock_monotonic;
          Alcotest.test_case "getrandom" `Quick test_getrandom;
        ] );
      ("redis", [ Alcotest.test_case "protocol" `Quick test_redis_protocol ]);
      ( "sqlite",
        [
          Alcotest.test_case "insert_lookup" `Quick test_sqlite_insert_lookup;
          Alcotest.test_case "range_ops" `Quick test_sqlite_range_update_delete;
          Alcotest.test_case "text_vacuum" `Quick test_sqlite_text_keys_and_vacuum;
        ] );
      ("stress", [ Alcotest.test_case "ext2_many_files" `Quick test_ext2_many_files_stress ]);
      ( "workloads",
        [
          Alcotest.test_case "speedtest1" `Slow test_speedtest1_structure;
          Alcotest.test_case "fio" `Quick test_fio_sane;
          Alcotest.test_case "lmbench_spot" `Quick test_lmbench_spot;
          Alcotest.test_case "nginx" `Quick test_nginx_smoke;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_packet_roundtrip; prop_sqlite_random_inserts; prop_tcp_stream_integrity ] );
    ]
