let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_str = Alcotest.(check string)

let boot ?(profile = Sim.Profile.asterinas) () =
  let k = Aster.Kernel.boot ~profile () in
  Apps.Libc.install_child_resolver ();
  k

(* Run a user program as init and return its exit code. *)
let run_user ?profile body =
  ignore (boot ?profile ());
  let result = ref None in
  let wrapped uapi =
    let code = body (Apps.Libc.make uapi) in
    result := Some code;
    code
  in
  ignore (Aster.Process.spawn_kernel_style ~name:"test" wrapped);
  Aster.Kernel.run ();
  match !result with
  | Some code -> code
  | None -> Alcotest.fail "user program did not finish"

(* --- Policies --- *)

let test_buddy_coalescing () =
  Sim.Profile.set Sim.Profile.asterinas;
  Ostd.Boot.init ~frames:2048 ();
  Aster.Sched_policy.install ();
  let b = Aster.Buddy.create () in
  Ostd.Falloc.inject (Aster.Buddy.as_frame_alloc b);
  Ostd.Boot.feed_free_memory ();
  let free0 = Aster.Buddy.free_pages b in
  let frames = List.init 20 (fun _ -> Ostd.Frame.alloc ~untyped:true ()) in
  check_int "free dropped" (free0 - 20) (Aster.Buddy.free_pages b);
  List.iter Ostd.Frame.drop frames;
  check_int "free restored" free0 (Aster.Buddy.free_pages b);
  (* Large allocation still possible after churn: coalescing works. *)
  let big = Ostd.Frame.alloc ~pages:256 ~untyped:true () in
  Ostd.Frame.drop big

let test_buddy_pcpu_cache () =
  Sim.Profile.set Sim.Profile.asterinas;
  Ostd.Boot.init ~frames:2048 ();
  Aster.Sched_policy.install ();
  let b = Aster.Buddy.create () in
  Ostd.Falloc.inject (Aster.Buddy.as_frame_alloc b);
  Ostd.Boot.feed_free_memory ();
  let f = Ostd.Frame.alloc ~untyped:true () in
  Ostd.Frame.drop f;
  let hits0 = Sim.Stats.get "buddy.pcpu_hit" in
  let g = Ostd.Frame.alloc ~untyped:true () in
  check "cache hit" true (Sim.Stats.get "buddy.pcpu_hit" = hits0 + 1);
  Ostd.Frame.drop g

let test_slab_cache_magazine () =
  Sim.Profile.set Sim.Profile.asterinas;
  Ostd.Selftest.fresh_boot ();
  let c = Aster.Slab_policy.cache_create ~name:"t" ~slot_size:128 () in
  let slots = List.init 40 (fun _ -> Aster.Slab_policy.cache_alloc c) in
  check "multiple slabs grown" true (Aster.Slab_policy.cache_slabs c >= 2);
  List.iter (Aster.Slab_policy.cache_dealloc c) slots;
  ignore (Aster.Slab_policy.cache_shrink c);
  check_int "all objects returned" 0 (Aster.Slab_policy.cache_active c)

let test_cfs_fairness () =
  Sim.Profile.set Sim.Profile.asterinas;
  Ostd.Boot.init ();
  Aster.Sched_policy.install ();
  Ostd.Falloc.inject (Ostd.Bootstrap_alloc.make ());
  Ostd.Boot.feed_free_memory ();
  (* Two spinning tasks: CFS should alternate them rather than run one to
     completion. *)
  let log = ref [] in
  let spin tag () =
    for _ = 1 to 4 do
      log := tag :: !log;
      Sim.Clock.charge 1000;
      Ostd.Task.yield_now ()
    done
  in
  ignore (Ostd.Task.spawn ~name:"a" (spin "a"));
  ignore (Ostd.Task.spawn ~name:"b" (spin "b"));
  Ostd.Task.run ();
  let order = List.rev !log in
  (* Strict alternation is not required, but neither task may run 4 slots
     in a row at the start. *)
  check "interleaved" true (List.filteri (fun i _ -> i < 4) order <> [ "a"; "a"; "a"; "a" ])

let test_rt_preempts_fair () =
  Sim.Profile.set Sim.Profile.asterinas;
  Ostd.Boot.init ();
  Aster.Sched_policy.install ();
  Ostd.Falloc.inject (Ostd.Bootstrap_alloc.make ());
  Ostd.Boot.feed_free_memory ();
  let log = ref [] in
  ignore (Ostd.Task.spawn ~name:"fair" (fun () -> log := "fair" :: !log));
  let rt = Ostd.Task.spawn ~name:"rt" (fun () -> log := "rt" :: !log) in
  Aster.Sched_policy.set_class rt (Aster.Sched_policy.Rt 1);
  (* Re-enqueue by waking after setting the class is not needed: the task
     is already queued as fair. Spawn order puts fair first, so check the
     class applies to the *next* enqueue instead: spawn a third task. *)
  let rt2 = ref None in
  ignore
    (Ostd.Task.spawn ~name:"spawner" (fun () ->
         let t = Ostd.Task.spawn ~name:"late-fair" (fun () -> log := "late" :: !log) in
         ignore t;
         let t2 =
           Ostd.Task.spawn ~name:"rt2" (fun () -> log := "rt2" :: !log)
         in
         ignore t2;
         rt2 := Some t2));
  Ostd.Task.run ();
  check "all ran" true (List.length !log = 4)

(* --- End-to-end user programs --- *)

let test_hello_ramfs () =
  let code =
    run_user (fun c ->
        let fd = Apps.Libc.openf c "/tmp/hello.txt" ~flags:0o101 (* O_CREAT|O_WRONLY *) ~mode:0o644 in
        if fd < 0 then 1
        else begin
          ignore (Apps.Libc.write_str c ~fd "hello framekernel");
          ignore (Apps.Libc.close c fd);
          let fd = Apps.Libc.openf c "/tmp/hello.txt" ~flags:0 ~mode:0 in
          let s = Apps.Libc.read_str c ~fd:fd ~len:64 in
          ignore (Apps.Libc.close c fd);
          if s = "hello framekernel" then 0 else 2
        end)
  in
  check_int "exit code" 0 code

let test_stat_and_dirs () =
  let code =
    run_user (fun c ->
        if Apps.Libc.mkdir c "/tmp/d" < 0 then 1
        else begin
          let fd = Apps.Libc.openf c "/tmp/d/f" ~flags:0o101 ~mode:0o600 in
          ignore (Apps.Libc.write_str c ~fd "12345");
          ignore (Apps.Libc.close c fd);
          match Apps.Libc.stat c "/tmp/d/f" with
          | Error _ -> 2
          | Ok st ->
            if st.Aster.Abi.size <> 5 then 3
            else begin
              let dfd = Apps.Libc.openf c "/tmp/d" ~flags:0 ~mode:0 in
              let names = List.map (fun (_, _, n) -> n) (Apps.Libc.getdents c ~fd:dfd) in
              ignore (Apps.Libc.close c dfd);
              if names = [ "f" ] then 0 else 4
            end
        end)
  in
  check_int "exit code" 0 code

let test_rename_unlink () =
  let code =
    run_user (fun c ->
        let fd = Apps.Libc.openf c "/tmp/a" ~flags:0o101 ~mode:0o644 in
        ignore (Apps.Libc.write_str c ~fd "data");
        ignore (Apps.Libc.close c fd);
        if Apps.Libc.rename c "/tmp/a" "/tmp/b" < 0 then 1
        else if Apps.Libc.access c "/tmp/a" >= 0 then 2
        else if Apps.Libc.access c "/tmp/b" < 0 then 3
        else if Apps.Libc.unlink c "/tmp/b" < 0 then 4
        else if Apps.Libc.access c "/tmp/b" >= 0 then 5
        else 0)
  in
  check_int "exit code" 0 code

let test_symlink () =
  let code =
    run_user (fun c ->
        let fd = Apps.Libc.openf c "/tmp/target" ~flags:0o101 ~mode:0o644 in
        ignore (Apps.Libc.write_str c ~fd "via link");
        ignore (Apps.Libc.close c fd);
        if Apps.Libc.symlink c ~target:"/tmp/target" ~linkpath:"/tmp/lnk" < 0 then 1
        else begin
          let fd = Apps.Libc.openf c "/tmp/lnk" ~flags:0 ~mode:0 in
          let s = Apps.Libc.read_str c ~fd ~len:64 in
          ignore (Apps.Libc.close c fd);
          match Apps.Libc.readlink c "/tmp/lnk" with
          | Ok "/tmp/target" when s = "via link" -> 0
          | Ok _ -> 2
          | Error _ -> 3
        end)
  in
  check_int "exit code" 0 code

let test_fork_wait () =
  let code =
    run_user (fun c ->
        let child = Apps.Libc.fork c (fun uapi ->
            let cc = Apps.Libc.make uapi in
            ignore (Apps.Libc.nanosleep_us cc 50.);
            42)
        in
        if child <= 0 then 1
        else
          match Apps.Libc.waitpid c with
          | Ok (pid, status) when pid = child && status = 42 -> 0
          | Ok _ -> 2
          | Error _ -> 3)
  in
  check_int "exit code" 0 code

let test_fork_cow_isolation () =
  let code =
    run_user (fun c ->
        let buf = Apps.Libc.ualloc c 4096 in
        (Apps.Libc.raw c).Ostd.User.mem_write_u64 buf 111L;
        let _child =
          Apps.Libc.fork c (fun uapi ->
              (* The child sees the parent's value, then overwrites. *)
              let v = uapi.Ostd.User.mem_read_u64 buf in
              uapi.Ostd.User.mem_write_u64 buf 222L;
              if v = 111L then 0 else 1)
        in
        (match Apps.Libc.waitpid c with
        | Ok (_, 0) -> ()
        | _ -> Apps.Libc.exit c 2);
        (* Parent's page must be untouched (COW split). *)
        if (Apps.Libc.raw c).Ostd.User.mem_read_u64 buf = 111L then 0 else 3)
  in
  check_int "exit code" 0 code

let test_exec () =
  Aster.Uprog_registry.register "echo-arg" (fun uapi argv ->
      let c = Apps.Libc.make uapi in
      match argv with
      | [ _; "ok" ] ->
        ignore c;
        7
      | _ -> 1);
  let code =
    run_user (fun c ->
        let child =
          Apps.Libc.fork c (fun uapi ->
              let cc = Apps.Libc.make uapi in
              ignore (Apps.Libc.execve cc "/bin/echo-arg" [ "echo-arg"; "ok" ]);
              99 (* unreachable if exec succeeded *))
        in
        ignore child;
        match Apps.Libc.waitpid c with
        | Ok (_, 7) -> 0
        | Ok (_, s) -> 10 + s
        | Error _ -> 2)
  in
  check_int "exit code" 0 code

let test_pipe_parent_child () =
  let code =
    run_user (fun c ->
        match Apps.Libc.pipe c with
        | Error _ -> 1
        | Ok (rfd, wfd) ->
          let _child =
            Apps.Libc.fork c (fun uapi ->
                let cc = Apps.Libc.make uapi in
                ignore (Apps.Libc.close cc rfd);
                ignore (Apps.Libc.write_str cc ~fd:wfd "ping through the pipe");
                ignore (Apps.Libc.close cc wfd);
                0)
          in
          ignore (Apps.Libc.close c wfd);
          let s = Apps.Libc.read_str c ~fd:rfd ~len:64 in
          ignore (Apps.Libc.close c rfd);
          (match Apps.Libc.waitpid c with Ok _ -> () | Error _ -> ());
          if s = "ping through the pipe" then 0 else 2)
  in
  check_int "exit code" 0 code

let test_ext2_persistence_to_device () =
  let k = boot () in
  let finished = ref false in
  ignore
    (Aster.Process.spawn_kernel_style ~name:"ext2test" (fun uapi ->
         let c = Apps.Libc.make uapi in
         let fd = Apps.Libc.openf c "/ext2/data.bin" ~flags:0o101 ~mode:0o644 in
         ignore (Apps.Libc.write_str c ~fd "PERSISTME");
         let r = Apps.Libc.fsync c fd in
         ignore (Apps.Libc.close c fd);
         finished := true;
         if r = 0 then 0 else 1));
  Aster.Kernel.run ();
  check "program ran" true !finished;
  (* After fsync the bytes must be on the raw device, not just cached. *)
  let blk = k.Aster.Kernel.devices.Machine.Board.blk in
  let found = ref false in
  for sector = 0 to 40960 do
    if not !found then begin
      let b = Machine.Virtio_blk.read_backing blk ~sector ~len:512 in
      let s = Bytes.to_string b in
      let rec scan i =
        i + 9 <= String.length s && (String.sub s i 9 = "PERSISTME" || scan (i + 1))
      in
      if scan 0 then found := true
    end
  done;
  check "data reached the device" true !found;
  check "no iommu faults" true (Sim.Stats.get "iommu.fault" = 0)

let test_ext2_bigfile_indirect () =
  let code =
    run_user (fun c ->
        (* 200 KiB spans direct + indirect blocks. *)
        let size = 200 * 1024 in
        let buf = Apps.Libc.ualloc c 8192 in
        let pattern = Bytes.init 8192 (fun i -> Char.chr ((i * 7) mod 256)) in
        (Apps.Libc.raw c).Ostd.User.mem_write buf pattern;
        let fd = Apps.Libc.openf c "/ext2/big" ~flags:0o102 ~mode:0o644 in
        if fd < 0 then 1
        else begin
          let written = ref 0 in
          while !written < size do
            let n = Apps.Libc.write c ~fd ~vaddr:buf ~len:8192 in
            if n <= 0 then Apps.Libc.exit c 2;
            written := !written + n
          done;
          ignore (Apps.Libc.close c fd);
          (* Read back from a random offset crossing the indirect zone. *)
          let fd = Apps.Libc.openf c "/ext2/big" ~flags:0 ~mode:0 in
          let off = 60 * 1024 in
          let n = Apps.Libc.pread c ~fd ~vaddr:buf ~len:4096 ~off in
          ignore (Apps.Libc.close c fd);
          if n <> 4096 then 3
          else begin
            let data = Apps.Libc.get_bytes c buf 4096 in
            let expect i = Char.chr (((off + i) mod 8192 * 7) mod 256) in
            let rec verify i = i >= 4096 || (Bytes.get data i = expect i && verify (i + 1)) in
            if verify 0 then 0 else 4
          end
        end)
  in
  check_int "exit code" 0 code

let test_tcp_loopback () =
  ignore (boot ());
  Apps.Libc.install_child_resolver ();
  let server_ready = ref false in
  let got = ref "" in
  ignore
    (Aster.Process.spawn_kernel_style ~name:"server" (fun uapi ->
         let c = Apps.Libc.make uapi in
         let fd = Apps.Libc.socket c ~domain:2 ~typ:1 in
         ignore (Apps.Libc.bind_inet c ~fd ~port:8080);
         ignore (Apps.Libc.listen c ~fd ~backlog:8);
         server_ready := true;
         let conn = Apps.Libc.accept c ~fd in
         let s = Apps.Libc.read_str c ~fd:conn ~len:64 in
         ignore (Apps.Libc.write_str c ~fd:conn ("echo:" ^ s));
         ignore (Apps.Libc.close c conn);
         0));
  ignore
    (Aster.Process.spawn_kernel_style ~name:"client" (fun uapi ->
         let c = Apps.Libc.make uapi in
         let fd = Apps.Libc.socket c ~domain:2 ~typ:1 in
         let lo = Aster.Packet.ip_of_string "127.0.0.1" in
         let rec wait_connect tries =
           if Apps.Libc.connect_inet c ~fd ~ip:lo ~port:8080 >= 0 then true
           else if tries = 0 then false
           else begin
             ignore (Apps.Libc.nanosleep_us c 100.);
             wait_connect (tries - 1)
           end
         in
         if not (wait_connect 20) then 1
         else begin
           ignore (Apps.Libc.write_str c ~fd "hello tcp");
           got := Apps.Libc.read_str c ~fd ~len:64;
           ignore (Apps.Libc.close c fd);
           0
         end));
  Aster.Kernel.run ();
  check "server started" true !server_ready;
  check_str "echoed" "echo:hello tcp" !got

let test_udp_loopback () =
  ignore (boot ());
  let got = ref "" in
  ignore
    (Aster.Process.spawn_kernel_style ~name:"udp-server" (fun uapi ->
         let c = Apps.Libc.make uapi in
         let fd = Apps.Libc.socket c ~domain:2 ~typ:2 in
         ignore (Apps.Libc.bind_inet c ~fd ~port:9999);
         let buf = Apps.Libc.ualloc c 4096 in
         let n = Apps.Libc.recvfrom c ~fd ~vaddr:buf ~len:4096 in
         got := Bytes.to_string (Apps.Libc.get_bytes c buf n);
         0));
  ignore
    (Aster.Process.spawn_kernel_style ~name:"udp-client" (fun uapi ->
         let c = Apps.Libc.make uapi in
         let fd = Apps.Libc.socket c ~domain:2 ~typ:2 in
         let lo = Aster.Packet.ip_of_string "127.0.0.1" in
         let msg = Bytes.of_string "datagram!" in
         let buf = Apps.Libc.put_bytes c msg in
         ignore (Apps.Libc.nanosleep_us c 50.);
         ignore (Apps.Libc.sendto_inet c ~fd ~ip:lo ~port:9999 ~vaddr:buf ~len:(Bytes.length msg));
         0));
  Aster.Kernel.run ();
  check_str "datagram" "datagram!" !got

let test_unix_socket () =
  ignore (boot ());
  let got = ref "" in
  ignore
    (Aster.Process.spawn_kernel_style ~name:"unix-server" (fun uapi ->
         let c = Apps.Libc.make uapi in
         let fd = Apps.Libc.socket c ~domain:1 ~typ:1 in
         ignore (Apps.Libc.bind_unix c ~fd ~path:"/tmp/sock");
         ignore (Apps.Libc.listen c ~fd ~backlog:4);
         let conn = Apps.Libc.accept c ~fd in
         got := Apps.Libc.read_str c ~fd:conn ~len:64;
         0));
  ignore
    (Aster.Process.spawn_kernel_style ~name:"unix-client" (fun uapi ->
         let c = Apps.Libc.make uapi in
         let fd = Apps.Libc.socket c ~domain:1 ~typ:1 in
         ignore (Apps.Libc.nanosleep_us c 50.);
         if Apps.Libc.connect_unix c ~fd ~path:"/tmp/sock" < 0 then 1
         else begin
           ignore (Apps.Libc.write_str c ~fd "over unix");
           0
         end));
  Aster.Kernel.run ();
  check_str "unix data" "over unix" !got

let test_sendfile_tcp () =
  ignore (boot ());
  let got_len = ref 0 in
  ignore
    (Aster.Process.spawn_kernel_style ~name:"sf-server" (fun uapi ->
         let c = Apps.Libc.make uapi in
         (* Prepare a 8 KiB file. *)
         let fd = Apps.Libc.openf c "/tmp/payload" ~flags:0o101 ~mode:0o644 in
         ignore (Apps.Libc.write_str c ~fd (String.make 8192 'x'));
         ignore (Apps.Libc.close c fd);
         let sfd = Apps.Libc.socket c ~domain:2 ~typ:1 in
         ignore (Apps.Libc.bind_inet c ~fd:sfd ~port:8088);
         ignore (Apps.Libc.listen c ~fd:sfd ~backlog:4);
         let conn = Apps.Libc.accept c ~fd:sfd in
         let file = Apps.Libc.openf c "/tmp/payload" ~flags:0 ~mode:0 in
         let n = Apps.Libc.sendfile c ~out_fd:conn ~in_fd:file ~count:8192 in
         ignore (Apps.Libc.close c conn);
         if n = 8192 then 0 else 1));
  ignore
    (Aster.Process.spawn_kernel_style ~name:"sf-client" (fun uapi ->
         let c = Apps.Libc.make uapi in
         let fd = Apps.Libc.socket c ~domain:2 ~typ:1 in
         let lo = Aster.Packet.ip_of_string "127.0.0.1" in
         let rec wait_connect tries =
           if Apps.Libc.connect_inet c ~fd ~ip:lo ~port:8088 >= 0 then true
           else if tries = 0 then false
           else begin
             ignore (Apps.Libc.nanosleep_us c 100.);
             wait_connect (tries - 1)
           end
         in
         if not (wait_connect 20) then 1
         else begin
           let buf = Apps.Libc.ualloc c 16384 in
           let total = ref 0 in
           let continue = ref true in
           while !continue do
             let n = Apps.Libc.read c ~fd ~vaddr:buf ~len:16384 in
             if n <= 0 then continue := false else total := !total + n
           done;
           got_len := !total;
           0
         end));
  Aster.Kernel.run ();
  check_int "received full file" 8192 !got_len

let test_virtio_net_to_host () =
  let k = boot () in
  let host = Aster.Kernel.attach_host k in
  (* Host echo server on 10.0.2.2:7. *)
  (match Aster.Tcp.listen host.Aster.Kernel.htcp ~port:7 with
  | Error _ -> Alcotest.fail "host listen"
  | Ok listener ->
    ignore
      (Ostd.Task.spawn ~name:"host-echo" (fun () ->
           let conn = Aster.Tcp.accept listener in
           let buf = Bytes.create 256 in
           match Aster.Tcp.recv conn ~buf ~pos:0 ~len:256 with
           | Ok n ->
             ignore (Aster.Tcp.send conn ~buf:(Bytes.sub buf 0 n) ~pos:0 ~len:n);
             Aster.Tcp.close conn
           | Error _ -> ())));
  let got = ref "" in
  ignore
    (Aster.Process.spawn_kernel_style ~name:"guest-client" (fun uapi ->
         let c = Apps.Libc.make uapi in
         let fd = Apps.Libc.socket c ~domain:2 ~typ:1 in
         if Apps.Libc.connect_inet c ~fd ~ip:Aster.Kernel.host_ip ~port:7 < 0 then 1
         else begin
           ignore (Apps.Libc.write_str c ~fd "across the wire");
           got := Apps.Libc.read_str c ~fd ~len:64;
           0
         end));
  Aster.Kernel.run ();
  check_str "echo over virtio" "across the wire" !got

let test_proc_read () =
  let code =
    run_user (fun c ->
        let fd = Apps.Libc.openf c "/proc/version" ~flags:0 ~mode:0 in
        if fd < 0 then 1
        else begin
          let s = Apps.Libc.read_str c ~fd ~len:256 in
          ignore (Apps.Libc.close c fd);
          if String.length s > 0 then 0 else 2
        end)
  in
  check_int "exit code" 0 code

let test_proc_observability_entries () =
  (* The ktrace surface: /proc/ktrace (ring state), /proc/kstat
     (counters + histograms), /proc/faults (chaos quartet). Each must
     exist and render non-empty, with tracing left at its default. *)
  let contents = ref [] in
  let code =
    run_user (fun c ->
        let read_file name =
          let fd = Apps.Libc.openf c ("/proc/" ^ name) ~flags:0 ~mode:0 in
          if fd < 0 then None
          else begin
            let s = Apps.Libc.read_str c ~fd ~len:4096 in
            ignore (Apps.Libc.close c fd);
            Some (name, s)
          end
        in
        match List.filter_map read_file [ "ktrace"; "kstat"; "faults" ] with
        | [ _; _; _ ] as all ->
          contents := all;
          0
        | _ -> 1)
  in
  check_int "exit code" 0 code;
  List.iter
    (fun (name, s) -> check (name ^ " renders non-empty") true (String.length s > 0))
    !contents;
  check "ktrace header reports the ring" true
    (String.starts_with ~prefix:"# ktrace:" (List.assoc "ktrace" !contents));
  check "faults shows the quartet" true
    (String.starts_with ~prefix:"injected" (List.assoc "faults" !contents))

let test_enosys_surface () =
  let code =
    run_user (fun c ->
        (* Syscall 999 is outside the surface; 165 (mount) is in the
           advertised surface but stubbed: both return -ENOSYS. *)
        let a = Apps.Libc.syscall c 165 [| 0L; 0L; 0L |] in
        let b = Apps.Libc.syscall c 999 [||] in
        if a = -38 && b = -38 then 0 else 1)
  in
  check_int "exit code" 0 code;
  check "abi surface >= 210" true (Aster.Syscall_nr.registered_count >= 210);
  check "implemented honestly counted" true (Aster.Syscalls.implemented_count () >= 60)

let test_uname_getpid () =
  let code =
    run_user (fun c ->
        let n = Apps.Libc.uname c in
        if Apps.Libc.getpid c >= 1 && String.length n > 0 then 0 else 1)
  in
  check_int "exit code" 0 code


let test_kill_terminates_sleeper () =
  let code =
    run_user (fun c ->
        let child =
          Apps.Libc.fork c (fun uapi ->
              let cc = Apps.Libc.make uapi in
              ignore (Apps.Libc.nanosleep_us cc 1e6);
              0)
        in
        ignore (Apps.Libc.nanosleep_us c 100.);
        if Apps.Libc.kill c ~pid:child ~signal:15 < 0 then 1
        else
          match Apps.Libc.waitpid c with
          | Ok (pid, status) when pid = child && status = 128 + 15 -> 0
          | Ok (_, s) -> 10 + s
          | Error _ -> 2)
  in
  Alcotest.(check int) "exit" 0 code

let test_sigign_survives_sigterm () =
  let code =
    run_user (fun c ->
        let child =
          Apps.Libc.fork c (fun uapi ->
              let cc = Apps.Libc.make uapi in
              ignore (Apps.Libc.signal_ignore cc 15);
              ignore (Apps.Libc.nanosleep_us cc 500.);
              7)
        in
        ignore (Apps.Libc.nanosleep_us c 100.);
        ignore (Apps.Libc.kill c ~pid:child ~signal:15);
        match Apps.Libc.waitpid c with
        | Ok (_, 7) -> 0
        | Ok (_, s) -> 10 + s
        | Error _ -> 2)
  in
  Alcotest.(check int) "exit" 0 code

let test_sigkill_unignorable () =
  let code =
    run_user (fun c ->
        let child =
          Apps.Libc.fork c (fun uapi ->
              let cc = Apps.Libc.make uapi in
              ignore (Apps.Libc.signal_ignore cc 9);
              ignore (Apps.Libc.nanosleep_us cc 1e6);
              0)
        in
        ignore (Apps.Libc.nanosleep_us c 100.);
        ignore (Apps.Libc.kill c ~pid:child ~signal:9);
        match Apps.Libc.waitpid c with
        | Ok (_, status) when status = 128 + 9 -> 0
        | Ok (_, s) -> 10 + s
        | Error _ -> 2)
  in
  Alcotest.(check int) "exit" 0 code

let test_sigmask_defers_delivery () =
  let code =
    run_user (fun c ->
        (* Block SIGTERM, receive it (stays pending), verify we survive a
           few syscalls, then unblock: next syscall boundary kills us. *)
        let child =
          Apps.Libc.fork c (fun uapi ->
              let cc = Apps.Libc.make uapi in
              ignore (Apps.Libc.sigblock cc 15);
              ignore (Apps.Libc.nanosleep_us cc 300.);
              (* Signal arrived while blocked. *)
              if Apps.Libc.sigpending cc land (1 lsl 14) = 0 then 50
              else begin
                ignore (Apps.Libc.sigunblock cc 15);
                (* Unreachable: delivery fires at the next boundary. *)
                ignore (Apps.Libc.getpid cc);
                51
              end)
        in
        ignore (Apps.Libc.nanosleep_us c 100.);
        ignore (Apps.Libc.kill c ~pid:child ~signal:15);
        match Apps.Libc.waitpid c with
        | Ok (_, status) when status = 128 + 15 -> 0
        | Ok (_, s) -> 10 + s
        | Error _ -> 2)
  in
  Alcotest.(check int) "exit" 0 code

let test_mkfifo_and_lstat () =
  let code =
    run_user (fun c ->
        if Apps.Libc.mkfifo c "/tmp/ff" < 0 then 1
        else begin
          (* lstat must not follow symlinks; on the fifo it reports kind 1. *)
          let sb = Apps.Libc.ualloc c 64 in
          let r =
            Apps.Libc.syscall c Aster.Syscall_nr.lstat
              [| Int64.of_int (Apps.Libc.put_bytes c (Bytes.of_string "/tmp/ff\000"));
                 Int64.of_int sb |]
          in
          if r <> 0 then 2
          else begin
            let st = Aster.Abi.decode_stat (Apps.Libc.get_bytes c sb Aster.Abi.stat_size) in
            ignore (Apps.Libc.symlink c ~target:"/tmp/ff" ~linkpath:"/tmp/lnk2");
            let r2 =
              Apps.Libc.syscall c Aster.Syscall_nr.lstat
                [| Int64.of_int (Apps.Libc.put_bytes c (Bytes.of_string "/tmp/lnk2\000"));
                   Int64.of_int sb |]
            in
            let st2 = Aster.Abi.decode_stat (Apps.Libc.get_bytes c sb Aster.Abi.stat_size) in
            if r2 = 0 && st.Aster.Abi.kind = 1 && st2.Aster.Abi.kind = 10 then 0 else 3
          end
        end)
  in
  Alcotest.(check int) "exit" 0 code

let test_statfs_ext2 () =
  let code =
    run_user (fun c ->
        let sb = Apps.Libc.ualloc c 64 in
        let r =
          Apps.Libc.syscall c Aster.Syscall_nr.statfs
            [| Int64.of_int (Apps.Libc.put_bytes c (Bytes.of_string "/ext2\000"));
               Int64.of_int sb |]
        in
        if r <> 0 then 1
        else begin
          let b = Apps.Libc.get_bytes c sb 32 in
          if Bytes.get_int64_le b 0 = 0xEF53L && Bytes.get_int64_le b 8 = 4096L then 0 else 2
        end)
  in
  Alcotest.(check int) "exit" 0 code

let test_page_cache_metadata () =
  ignore (boot ());
  let ok = ref false in
  ignore
    (Aster.Process.spawn_kernel_style ~name:"pc" (fun uapi ->
         let c = Apps.Libc.make uapi in
         let fd = Apps.Libc.openf c "/tmp/pc.bin" ~flags:0o102 ~mode:0o644 in
         ignore (Apps.Libc.write_str c ~fd (String.make 5000 'p'));
         ignore (Apps.Libc.close c fd);
         (match Aster.Vfs.resolve "/tmp/pc.bin" with
         | Ok { Aster.Vfs.inode; _ } -> (
           match Aster.Ramfs.file_cache inode with
           | Some cache ->
             (* Two pages cached, both dirty via the Frame<M> metadata. *)
             ok :=
               Aster.Page_cache.pages cache = 2
               && Aster.Page_cache.dirty_pages cache = 2
               && Aster.Page_cache.page_state cache 0 = Some (true, true)
               && Aster.Page_cache.clean_all cache = 2
               && Aster.Page_cache.dirty_pages cache = 0
           | None -> ())
         | Error _ -> ());
         0));
  Aster.Kernel.run ();
  check "frame metadata tracks page state" true !ok


let test_proc_pid_status () =
  let code =
    run_user (fun c ->
        let pid = Apps.Libc.getpid c in
        let fd = Apps.Libc.openf c (Printf.sprintf "/proc/%d/status" pid) ~flags:0 ~mode:0 in
        if fd < 0 then 1
        else begin
          let s = Apps.Libc.read_str c ~fd ~len:512 in
          ignore (Apps.Libc.close c fd);
          let has needle =
            let nl = String.length needle and sl = String.length s in
            let rec scan i = i + nl <= sl && (String.sub s i nl = needle || scan (i + 1)) in
            scan 0
          in
          if has (Printf.sprintf "Pid:\t%d" pid) && has "Name:" then 0 else 2
        end)
  in
  check_int "exit" 0 code

let test_cfs_nice_weights () =
  (* A nice -5 task should make clearly more progress than a nice +5
     task over the same span of virtual time. *)
  Sim.Profile.set Sim.Profile.asterinas;
  Ostd.Boot.init ();
  Aster.Sched_policy.install ();
  Ostd.Falloc.inject (Ostd.Bootstrap_alloc.make ());
  Ostd.Boot.feed_free_memory ();
  let progress = Hashtbl.create 2 in
  let spin tag () =
    for _ = 1 to 300 do
      Hashtbl.replace progress tag (1 + Option.value ~default:0 (Hashtbl.find_opt progress tag));
      Sim.Clock.charge 2000;
      Ostd.Task.yield_now ()
    done
  in
  let fast = Ostd.Task.spawn ~name:"fast" (spin "fast") in
  let slow = Ostd.Task.spawn ~name:"slow" (spin "slow") in
  Ostd.Task.set_nice fast (-5);
  Ostd.Task.set_nice slow 5;
  Ostd.Task.run_until (fun () ->
      Option.value ~default:0 (Hashtbl.find_opt progress "fast") >= 300);
  let f = Option.value ~default:0 (Hashtbl.find_opt progress "fast") in
  let s = Option.value ~default:1 (Hashtbl.find_opt progress "slow") in
  check "fast finished" true (f >= 300);
  check "niced-down task got more cpu" true (f > s + 50)

let test_block_writeback_throttling () =
  ignore (boot ());
  let finished = ref false in
  ignore
    (Aster.Process.spawn_kernel_style ~name:"bigwrite" (fun uapi ->
         let c = Apps.Libc.make uapi in
         (* Write ~6 MiB to ext2: crosses the background-writeback
            threshold, so the flusher must run while we write. *)
         let fd = Apps.Libc.openf c "/ext2/bigfile" ~flags:0o102 ~mode:0o644 in
         let buf = Apps.Libc.ualloc c 65536 in
         for _ = 1 to 96 do
           ignore (Apps.Libc.write c ~fd ~vaddr:buf ~len:65536)
         done;
         ignore (Apps.Libc.close c fd);
         finished := true;
         0));
  Aster.Kernel.run ();
  check "writer finished" true !finished;
  check "background writeback ran" true
    (Aster.Block.dirty_blocks () < 1536);
  check "device received writes" true (Aster.Virtio_blk_drv.in_flight () = 0)

let test_fsync_only_flushes_that_file () =
  ignore (boot ());
  ignore
    (Aster.Process.spawn_kernel_style ~name:"two-files" (fun uapi ->
         let c = Apps.Libc.make uapi in
         let fa = Apps.Libc.openf c "/ext2/a" ~flags:0o102 ~mode:0o644 in
         let fb = Apps.Libc.openf c "/ext2/b" ~flags:0o102 ~mode:0o644 in
         ignore (Apps.Libc.write_str c ~fd:fa "aaaa");
         ignore (Apps.Libc.write_str c ~fd:fb "bbbb");
         ignore (Apps.Libc.fsync c fa);
         0));
  Aster.Kernel.run ();
  (* b's data block may stay dirty; a's must be clean. Weak but real:
     after fsync(a) there must be *some* dirty block left from b. *)
  check "file b still dirty in cache" true (Aster.Block.dirty_blocks () > 0)

(* Write a patterned file, evict the clean cache, and read it back
   sequentially through the batched pipeline. Data must be exact and the
   blk.* counters must show merging + readahead actually happened. *)
let seq_read_after_cold_cache c =
  let size = 512 * 1024 in
  let chunk = 65536 in
  let buf = Apps.Libc.ualloc c chunk in
  let pattern = Bytes.init chunk (fun i -> Char.chr ((i * 13) mod 256)) in
  (Apps.Libc.raw c).Ostd.User.mem_write buf pattern;
  let fd = Apps.Libc.openf c "/ext2/batch.dat" ~flags:0o102 ~mode:0o644 in
  if fd < 0 then 1
  else begin
    let written = ref 0 in
    while !written < size do
      let n = Apps.Libc.write c ~fd ~vaddr:buf ~len:chunk in
      if n <= 0 then Apps.Libc.exit c 2;
      written := !written + n
    done;
    ignore (Apps.Libc.fsync c fd);
    ignore (Apps.Libc.close c fd);
    ignore (Aster.Block.drop_clean ());
    let fd = Apps.Libc.openf c "/ext2/batch.dat" ~flags:0 ~mode:0 in
    let got = ref 0 in
    let bad = ref false in
    let continue = ref true in
    while !continue do
      let n = Apps.Libc.read c ~fd ~vaddr:buf ~len:chunk in
      if n <= 0 then continue := false
      else begin
        let data = Apps.Libc.get_bytes c buf n in
        for i = 0 to n - 1 do
          if Bytes.get data i <> Char.chr (((!got + i) mod chunk * 13) mod 256) then bad := true
        done;
        got := !got + n
      end
    done;
    ignore (Apps.Libc.close c fd);
    if !bad then 3 else if !got <> size then 4 else 0
  end

let test_batched_seq_read () =
  let code = run_user seq_read_after_cold_cache in
  check_int "exit code" 0 code;
  check "bios were merged into chains" true (Sim.Stats.get "blk.merge" > 0);
  check "batches were issued" true (Sim.Stats.get "blk.batch" > 0);
  check "readahead produced demand hits" true (Sim.Stats.get "blk.readahead.hit" > 0);
  check "no mid-batch splits on a clean device" true (Sim.Stats.get "blk.batch_split" = 0);
  (* The doorbell/IRQ economy: far fewer rings than 4 KiB blocks moved
     (128 cold read + 128 writeback). *)
  check "doorbells well under one per block" true (Sim.Stats.get "blk.doorbell" < 128)

let test_unbatched_profile_parity () =
  (* Same workload with batching+readahead off: identical bytes, no
     merge activity — the knobs really gate the mechanism. *)
  let profile =
    Sim.Profile.with_blk_readahead false
      (Sim.Profile.with_blk_batching false Sim.Profile.asterinas)
  in
  let code = run_user ~profile seq_read_after_cold_cache in
  check_int "exit code" 0 code;
  check_int "no merges with batching off" 0 (Sim.Stats.get "blk.merge");
  check_int "no readahead with it off" 0 (Sim.Stats.get "blk.readahead.issued")

(* Span-ownership conservation: with kspan on, every span-owned bio —
   through elevator merges, batched chains and readahead — must be
   completed exactly once by its primary. The creation counter
   (make_bio, primary only) and the completion counter (complete_bio,
   first status only) have to agree to the unit. *)
let test_span_bio_conservation () =
  Sim.Span.enable ();
  Sim.Span.set_auto true;
  let code = run_user seq_read_after_cold_cache in
  let created = Sim.Stats.get "span.bio_created" in
  let completed = Sim.Stats.get "span.bio_completed" in
  let merges = Sim.Stats.get "blk.merge" in
  Sim.Span.disable ();
  Sim.Span.set_auto false;
  check_int "exit code" 0 code;
  check "bios were merged under spans" true (merges > 0);
  check "span-owned bios were created" true (created > 0);
  check_int "every span-owned bio completed exactly once" created completed

(* Same conservation under mid-batch I/O errors: a failing chain is
   split and each bio retried or failed individually; neither the split
   nor the per-bio EIO fallback may double-complete or orphan a bio. *)
let test_span_bio_conservation_under_eio () =
  ignore (boot ());
  Sim.Span.enable ();
  Sim.Span.set_auto true;
  Sim.Fault.configure ~seed:13L [ ("blk.io_error", 0.08) ];
  ignore
    (Aster.Process.spawn_kernel_style ~name:"span-eio" (fun uapi ->
         let c = Apps.Libc.make uapi in
         let fd = Apps.Libc.openf c "/ext2/span-eio.dat" ~flags:0o102 ~mode:0o644 in
         let chunk = 4096 in
         let buf = Apps.Libc.ualloc c chunk in
         for i = 0 to 255 do
           ignore (Apps.Libc.pwrite c ~fd ~vaddr:buf ~len:chunk ~off:(i * chunk))
         done;
         (* fsync may surface EIO; conservation must hold either way. *)
         ignore (Apps.Libc.fsync c fd);
         ignore (Apps.Libc.close c fd);
         0));
  Aster.Kernel.run ();
  Sim.Fault.disable ();
  let created = Sim.Stats.get "span.bio_created" in
  let completed = Sim.Stats.get "span.bio_completed" in
  let injected = Sim.Stats.get "fault.injected.blk.io_error" in
  Sim.Span.disable ();
  Sim.Span.set_auto false;
  check "errors were actually injected" true (injected > 0);
  check "span-owned bios were created" true (created > 0);
  check_int "conservation holds under EIO fallback" created completed

(* errseq_t: a writeback error met by the *background* flusher must be
   observed by a later fsync on the file — once per open description —
   even though that fsync's own writes all succeed. *)
let test_errseq_sticky_writeback_error () =
  ignore (boot ());
  let eio = Aster.Errno.eio in
  let rc_first = ref 0 in
  let rc_drain = ref (-1) in
  let rc_second_fd = ref 0 in
  let rc_fresh = ref (-1) in
  ignore
    (Aster.Process.spawn_kernel_style ~name:"errseq" (fun uapi ->
         let c = Apps.Libc.make uapi in
         let fd = Apps.Libc.openf c "/ext2/wb.dat" ~flags:0o102 ~mode:0o644 in
         let fd2 = Apps.Libc.openf c "/ext2/wb.dat" ~flags:0o2 ~mode:0 in
         let chunk = 4096 in
         let buf = Apps.Libc.ualloc c chunk in
         (* Warm the metadata paths (bitmaps, inode block, first data
            block) while the device is healthy. *)
         ignore (Apps.Libc.pwrite c ~fd ~vaddr:buf ~len:chunk ~off:0);
         ignore (Apps.Libc.fsync c fd);
         let seq0 = Aster.Block.wb_errseq () in
         (* From here every device write fails; then cross the
            background-writeback threshold so the *flusher* — not this
            task — meets the bad device and has to drop blocks. *)
         Sim.Fault.configure ~seed:1L [ ("blk.io_error", 1.0) ];
         for i = 1 to 1023 do
           ignore (Apps.Libc.pwrite c ~fd ~vaddr:buf ~len:chunk ~off:(i * chunk))
         done;
         let tries = ref 0 in
         while Aster.Block.wb_errseq () = seq0 && !tries < 500 do
           ignore (Apps.Libc.nanosleep_us c 1000.);
           incr tries
         done;
         Sim.Fault.disable ();
         (* First fsync on a pre-error description observes the error… *)
         rc_first := Apps.Libc.fsync c fd;
         (* …exactly once per observer: draining reaches success. *)
         let rec drain n =
           if n > 3 then -1 else if Apps.Libc.fsync c fd = 0 then n else drain (n + 1)
         in
         rc_drain := drain 1;
         (* An independent pre-error description still has its view. *)
         rc_second_fd := Apps.Libc.fsync c fd2;
         (* One opened after everyone consumed the error starts clean. *)
         let fd3 = Apps.Libc.openf c "/ext2/wb.dat" ~flags:0o2 ~mode:0 in
         rc_fresh := Apps.Libc.fsync c fd3;
         0));
  Aster.Kernel.run ();
  check "flusher recorded a writeback error" true (Aster.Block.wb_errseq () > 0);
  check_int "first fsync observes EIO" (-eio) !rc_first;
  check "same fd then drains to success" true (!rc_drain >= 1);
  check_int "second pre-error fd observes EIO too" (-eio) !rc_second_fd;
  check_int "fd opened after consumption starts clean" 0 !rc_fresh

(* rename(2) under power cut: the config file is replaced by write-tmp,
   fsync, rename. Whatever boundary the power dies on, the surviving
   file must be one complete generation — never torn, never a hybrid,
   never older than the last journal-committed one. *)
let test_rename_atomic_under_crash () =
  let n = Apps.Crash.boundaries ~seed:42L ~journal:true ~workload:Apps.Crash.Fs in
  check "clean run persists sectors" true (n > 0);
  let step = max 1 (n / 16) in
  let k = ref 0 in
  while !k < n do
    let st =
      Apps.Crash.run ~seed:42L ~journal:true ~workload:Apps.Crash.Fs
        ~cut_after:(Some !k)
    in
    let v = Apps.Crash.recover st in
    let cfg_viol =
      List.filter
        (fun m -> String.length m >= 4 && String.sub m 0 4 = "cfg:")
        v.Apps.Crash.violations
    in
    Alcotest.(check (list string))
      (Printf.sprintf "cfg intact at crash point %d" !k)
      [] cfg_viol;
    k := !k + step
  done

let test_segfault_kills_child () =
  let code =
    run_user (fun c ->
        let child =
          Apps.Libc.fork c (fun uapi ->
              (* Touch an address far outside every region. *)
              uapi.Ostd.User.mem_write_u64 0x7FFF0000 1L;
              0)
        in
        ignore child;
        match Apps.Libc.waitpid c with
        | Ok (_, 139) -> 0
        | Ok (_, s) -> 10 + s
        | Error _ -> 1)
  in
  check_int "exit" 0 code

let () =
  Alcotest.run "aster"
    [
      ( "policies",
        [
          Alcotest.test_case "buddy_coalescing" `Quick test_buddy_coalescing;
          Alcotest.test_case "buddy_pcpu_cache" `Quick test_buddy_pcpu_cache;
          Alcotest.test_case "slab_cache" `Quick test_slab_cache_magazine;
          Alcotest.test_case "cfs_fairness" `Quick test_cfs_fairness;
          Alcotest.test_case "rt_class" `Quick test_rt_preempts_fair;
        ] );
      ( "fs",
        [
          Alcotest.test_case "hello_ramfs" `Quick test_hello_ramfs;
          Alcotest.test_case "stat_dirs" `Quick test_stat_and_dirs;
          Alcotest.test_case "rename_unlink" `Quick test_rename_unlink;
          Alcotest.test_case "symlink" `Quick test_symlink;
          Alcotest.test_case "ext2_fsync" `Quick test_ext2_persistence_to_device;
          Alcotest.test_case "ext2_bigfile" `Quick test_ext2_bigfile_indirect;
          Alcotest.test_case "proc_read" `Quick test_proc_read;
          Alcotest.test_case "proc_observability" `Quick test_proc_observability_entries;
        ] );
      ( "process",
        [
          Alcotest.test_case "fork_wait" `Quick test_fork_wait;
          Alcotest.test_case "fork_cow" `Quick test_fork_cow_isolation;
          Alcotest.test_case "exec" `Quick test_exec;
          Alcotest.test_case "pipe" `Quick test_pipe_parent_child;
          Alcotest.test_case "uname_getpid" `Quick test_uname_getpid;
          Alcotest.test_case "enosys_surface" `Quick test_enosys_surface;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "proc_pid_status" `Quick test_proc_pid_status;
          Alcotest.test_case "cfs_nice_weights" `Quick test_cfs_nice_weights;
          Alcotest.test_case "writeback_throttle" `Quick test_block_writeback_throttling;
          Alcotest.test_case "fsync_scope" `Quick test_fsync_only_flushes_that_file;
          Alcotest.test_case "batched_seq_read" `Quick test_batched_seq_read;
          Alcotest.test_case "unbatched_parity" `Quick test_unbatched_profile_parity;
          Alcotest.test_case "span_bio_conservation" `Quick test_span_bio_conservation;
          Alcotest.test_case "span_bio_conservation_eio" `Quick
            test_span_bio_conservation_under_eio;
          Alcotest.test_case "errseq_writeback" `Quick test_errseq_sticky_writeback_error;
          Alcotest.test_case "rename_crash_atomic" `Quick test_rename_atomic_under_crash;
          Alcotest.test_case "segfault" `Quick test_segfault_kills_child;
        ] );
      ( "signals",
        [
          Alcotest.test_case "kill_sleeper" `Quick test_kill_terminates_sleeper;
          Alcotest.test_case "sigign" `Quick test_sigign_survives_sigterm;
          Alcotest.test_case "sigkill_unignorable" `Quick test_sigkill_unignorable;
          Alcotest.test_case "sigmask_defers" `Quick test_sigmask_defers_delivery;
        ] );
      ( "new_syscalls",
        [
          Alcotest.test_case "mkfifo_lstat" `Quick test_mkfifo_and_lstat;
          Alcotest.test_case "statfs" `Quick test_statfs_ext2;
          Alcotest.test_case "page_cache_meta" `Quick test_page_cache_metadata;
        ] );
      ( "net",
        [
          Alcotest.test_case "tcp_loopback" `Quick test_tcp_loopback;
          Alcotest.test_case "udp_loopback" `Quick test_udp_loopback;
          Alcotest.test_case "unix_socket" `Quick test_unix_socket;
          Alcotest.test_case "sendfile" `Quick test_sendfile_tcp;
          Alcotest.test_case "virtio_net_echo" `Quick test_virtio_net_to_host;
        ] );
    ]
