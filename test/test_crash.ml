(* Crash-point replay sweep: the crash-consistency acceptance suite.

   For every write boundary k — every sector the device persists — the
   harness powers the device off after exactly k sectors, remounts the
   surviving image (replaying the ext2 journal), runs fsck, and
   byte-compares every file against the host-side oracle of what each
   successful fsync promised. With the journal on this must hold at
   EVERY boundary:
   - fsck finds no invariant violation;
   - no fsync'd byte is lost, no foreign byte appears;
   - the atomically-replaced config file is always one complete
     generation;
   - recovering the same image twice yields byte-identical logs.
   With the journal off, the same sweep must FIND corruption — the
   sensitivity proof that the oracle catches real damage. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let no_bad name (r : Apps.Crash.sweep_result) =
  (match r.Apps.Crash.bad_points with
  | [] -> ()
  | (k, msgs) :: _ ->
    Alcotest.failf "%s: %d bad crash points; first at k=%d: %s" name
      (List.length r.Apps.Crash.bad_points)
      k (String.concat " | " msgs));
  check_int
    (name ^ ": byte-identical recovery logs at every point")
    0
    (List.length r.Apps.Crash.nondet_points);
  check_int (name ^ ": no kernel panics") 0 r.Apps.Crash.spanics;
  check (name ^ ": swept real boundaries") true (r.Apps.Crash.swept > 0)

(* Exhaustive: every single write boundary of the fs workload. *)
let test_fs_sweep_exhaustive () =
  no_bad "fs/42" (Apps.Crash.sweep ~seed:42L ~journal:true ~workload:Apps.Crash.Fs ())

let test_fs_sweep_more_seeds () =
  List.iter
    (fun seed ->
      no_bad
        (Printf.sprintf "fs/%Ld" seed)
        (Apps.Crash.sweep ~stride:3 ~seed ~journal:true ~workload:Apps.Crash.Fs ()))
    [ 7L; 1234L ]

let test_sqlite_sweep () =
  no_bad "sqlite/42"
    (Apps.Crash.sweep ~stride:4 ~seed:42L ~journal:true ~workload:Apps.Crash.Sqlite ());
  no_bad "sqlite/7"
    (Apps.Crash.sweep ~stride:12 ~seed:7L ~journal:true ~workload:Apps.Crash.Sqlite ())

(* Sensitivity: with journaling off the same oracle must catch real
   corruption — otherwise the green sweeps above prove nothing. *)
let test_journal_off_fs_detects () =
  let r = Apps.Crash.sweep ~seed:42L ~journal:false ~workload:Apps.Crash.Fs () in
  check "journal-off fs sweep finds corruption" true (r.Apps.Crash.bad_points <> []);
  let fsck_hit =
    List.exists
      (fun (_, msgs) ->
        List.exists (fun m -> String.length m >= 5 && String.sub m 0 5 = "fsck:") msgs)
      r.Apps.Crash.bad_points
  in
  check "fsck itself flags the unjournaled image" true fsck_hit

let test_journal_off_sqlite_detects () =
  let r = Apps.Crash.sweep ~stride:5 ~seed:7L ~journal:false ~workload:Apps.Crash.Sqlite () in
  check "journal-off sqlite sweep finds corruption" true (r.Apps.Crash.bad_points <> [])

(* One mid-sweep point in detail: the replay actually restores
   transactions, the crash run actually used the barrier machinery, and
   three recoveries of the same image tell the same story. *)
let test_replay_and_stats () =
  let n = Apps.Crash.boundaries ~seed:42L ~journal:true ~workload:Apps.Crash.Fs in
  check "clean run has boundaries" true (n > 50);
  (* Stats of the clean run just performed: fsync-driven commits, flush
     barriers, and FUA commit records all flowed. *)
  check "jbd.commit counted" true (Sim.Stats.get "jbd.commit" > 0);
  check "blk.flush counted" true (Sim.Stats.get "blk.flush" > 0);
  check "blk.fua counted" true (Sim.Stats.get "blk.fua" > 0);
  let st =
    Apps.Crash.run ~seed:42L ~journal:true ~workload:Apps.Crash.Fs ~cut_after:(Some (n / 2))
  in
  check "power cut fired" true st.Apps.Crash.cut;
  let v1 = Apps.Crash.recover st in
  check "mount replayed committed transactions" true
    (Sim.Stats.get "jbd.replayed" > 0);
  check "replay log is non-empty" true (v1.Apps.Crash.recovery_log <> []);
  let v2 = Apps.Crash.recover st in
  let v3 = Apps.Crash.recover st in
  Alcotest.(check (list string))
    "recovery log identical on 2nd recovery" v1.Apps.Crash.recovery_log
    v2.Apps.Crash.recovery_log;
  Alcotest.(check (list string))
    "recovery log identical on 3rd recovery" v1.Apps.Crash.recovery_log
    v3.Apps.Crash.recovery_log;
  Alcotest.(check (list string)) "fsck clean after replay" [] v1.Apps.Crash.fsck;
  Alcotest.(check (list string)) "oracle clean after replay" [] v1.Apps.Crash.violations

let () =
  Alcotest.run "crash"
    [
      ( "sweep",
        [
          Alcotest.test_case "fs_exhaustive_seed42" `Quick test_fs_sweep_exhaustive;
          Alcotest.test_case "fs_more_seeds" `Quick test_fs_sweep_more_seeds;
          Alcotest.test_case "sqlite_vacuum" `Quick test_sqlite_sweep;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "journal_off_fs" `Quick test_journal_off_fs_detects;
          Alcotest.test_case "journal_off_sqlite" `Quick test_journal_off_sqlite_detects;
        ] );
      ( "replay",
        [ Alcotest.test_case "replay_and_stats" `Quick test_replay_and_stats ] );
    ]
