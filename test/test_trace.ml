(* ktrace tests: ring-buffer overflow semantics, default-off zero cost,
   histogram percentile accuracy, and same-seed trace determinism under
   the chaos fault schedule. *)

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_float msg expected actual =
  Alcotest.(check (float 1e-9)) msg expected actual

let fresh () =
  Sim.Trace.reset ();
  Sim.Hist.reset ()

(* --- Ring buffer --- *)

let test_ring_overflow_keeps_newest () =
  fresh ();
  Sim.Trace.set_capacity 16;
  Sim.Trace.enable Sim.Trace.Syscall;
  for i = 1 to 100 do
    Sim.Trace.emit Sim.Trace.Syscall "ev" (fun () -> string_of_int i)
  done;
  check_int "ring holds capacity" 16 (Sim.Trace.length ());
  check_int "drops counted" 84 (Sim.Trace.dropped ());
  check_int "total counts everything" 100 (Sim.Trace.total ());
  let args = List.map (fun r -> r.Sim.Trace.args) (Sim.Trace.records ()) in
  Alcotest.(check (list string))
    "newest 16 survive, in order"
    (List.init 16 (fun i -> string_of_int (85 + i)))
    args

let test_default_off_zero_entries () =
  fresh ();
  let evaluated = ref false in
  (* All categories default-off after reset: no record, and the args
     closure must never run. *)
  List.iter
    (fun cat ->
      Sim.Trace.emit cat "ev" (fun () ->
          evaluated := true;
          "boom"))
    Sim.Trace.all_categories;
  check_int "no entries with everything disabled" 0 (Sim.Trace.length ());
  check_int "nothing dropped either" 0 (Sim.Trace.dropped ());
  check "args thunk never evaluated" false !evaluated

let test_mask_is_per_category () =
  fresh ();
  Sim.Trace.enable Sim.Trace.Blk;
  Sim.Trace.emit Sim.Trace.Blk "on" (fun () -> "");
  Sim.Trace.emit Sim.Trace.Net "off" (fun () -> "");
  check_int "only the enabled category records" 1 (Sim.Trace.length ());
  Sim.Trace.disable Sim.Trace.Blk;
  Sim.Trace.emit Sim.Trace.Blk "now-off" (fun () -> "");
  check_int "disable stops recording" 1 (Sim.Trace.length ())

let test_clear_keeps_mask_reset_clears_it () =
  fresh ();
  Sim.Trace.enable Sim.Trace.Irq;
  Sim.Trace.emit Sim.Trace.Irq "ev" (fun () -> "");
  Sim.Trace.clear ();
  check_int "clear empties the ring" 0 (Sim.Trace.length ());
  check "clear keeps the mask" true (Sim.Trace.enabled Sim.Trace.Irq);
  Sim.Trace.reset ();
  check "reset disables everything" false (Sim.Trace.enabled Sim.Trace.Irq)

(* --- Histograms --- *)

let test_hist_constant_exact () =
  let h = Sim.Hist.create () in
  for _ = 1 to 1000 do
    Sim.Hist.record h 42.5
  done;
  List.iter
    (fun p ->
      check_float (Printf.sprintf "p%.0f exact on constant" p) 42.5 (Sim.Hist.percentile_exn h p))
    [ 1.; 50.; 90.; 99.; 100. ];
  check_float "max exact" 42.5 (Sim.Hist.max_value h);
  check_float "mean exact" 42.5 (Sim.Hist.mean h)

let test_hist_two_point_exact () =
  (* 90 low + 10 high: p50 must report the low value, p99 the high one.
     Exact because each cluster occupies its own bucket. *)
  let h = Sim.Hist.create () in
  for _ = 1 to 90 do
    Sim.Hist.record h 1.0
  done;
  for _ = 1 to 10 do
    Sim.Hist.record h 1000.
  done;
  check_float "p50 is the low point" 1.0 (Sim.Hist.percentile_exn h 50.);
  check_float "p90 is the low point" 1.0 (Sim.Hist.percentile_exn h 90.);
  check_float "p99 is the high point" 1000. (Sim.Hist.percentile_exn h 99.);
  check_float "p100 is the max" 1000. (Sim.Hist.percentile_exn h 100.)

let test_hist_uniform_bounded_error () =
  (* Uniform 1..10000: every percentile estimate must fall within one
     sub-bucket (1/16 octave, < 4.4% relative) of the true value. *)
  let h = Sim.Hist.create () in
  let n = 10000 in
  for i = 1 to n do
    Sim.Hist.record h (float_of_int i)
  done;
  List.iter
    (fun p ->
      let true_v = p /. 100. *. float_of_int n in
      let est = Sim.Hist.percentile_exn h p in
      let rel = abs_float (est -. true_v) /. true_v in
      if rel > 1. /. 16. then
        Alcotest.failf "p%.0f: estimate %.1f vs true %.1f (rel err %.3f > 1/16)" p est true_v rel)
    [ 10.; 25.; 50.; 75.; 90.; 99. ];
  check_float "count" (float_of_int n) (float_of_int (Sim.Hist.count h))

let test_hist_registry () =
  fresh ();
  Sim.Hist.observe "syscall.read" 1.0;
  Sim.Hist.observe "syscall.read" 2.0;
  Sim.Hist.observe "syscall.write" 5.0;
  Sim.Hist.observe "blk.bio" 7.0;
  check_int "find sees both observations" 2
    (match Sim.Hist.find "syscall.read" with Some h -> Sim.Hist.count h | None -> -1);
  check_int "by_prefix filters" 2 (List.length (Sim.Hist.by_prefix "syscall."));
  check_int "all is everything" 3 (List.length (Sim.Hist.all ()));
  Sim.Hist.reset ();
  check "reset empties the registry" true (Sim.Hist.all () = [])

(* --- Determinism: same-seed chaos runs yield byte-identical traces --- *)

let chaos_trace seed =
  Sim.Trace.reset ();
  Sim.Trace.set_capacity 4096;
  List.iter Sim.Trace.enable Sim.Trace.all_categories;
  let o = Apps.Chaos.run ~seed () in
  let trace = Sim.Trace.render () in
  let drops = Sim.Trace.dropped () in
  Sim.Trace.reset ();
  (o.Apps.Chaos.completed, trace, drops)

let test_same_seed_identical_traces () =
  let c1, t1, d1 = chaos_trace 7L in
  let c2, t2, d2 = chaos_trace 7L in
  check "trace is non-empty" true (String.length t1 > 0);
  check_int "same workload outcome" c1 c2;
  check_int "same drop count" d1 d2;
  check "byte-identical traces" true (String.equal t1 t2)

let test_traced_run_same_virtual_time () =
  (* Tracing must not charge virtual cycles: the same chaos run, traced
     and untraced, finishes at the same virtual timestamp. *)
  Sim.Trace.reset ();
  ignore (Apps.Chaos.run ~seed:11L ());
  let untraced_end = Sim.Clock.now () in
  List.iter Sim.Trace.enable Sim.Trace.all_categories;
  ignore (Apps.Chaos.run ~seed:11L ());
  let traced_end = Sim.Clock.now () in
  let traced_total = Sim.Trace.total () in
  Sim.Trace.reset ();
  check "tracing is free in virtual time" true (Int64.equal untraced_end traced_end);
  check "and the trace actually recorded" true (traced_total > 0)

(* --- Batched TX: one tracepoint per burst, and tracing stays free ---

   The plug/flush pipeline emits its Net "tx" record at flush time with
   burst-shaped args ("nseg=... bytes=..."), so a traced transfer shows
   one record per descriptor chain — not one per segment. The per-burst
   count must agree exactly with the net.burst stat, and enabling the
   tracepoints must not move the virtual clock. *)

let bw_tcp_row () = Apps.Lmbench.find "bw_tcp 64k (virtio)"

let is_tx_burst r =
  r.Sim.Trace.cat = Sim.Trace.Net
  && String.equal r.Sim.Trace.name "tx"
  && String.length r.Sim.Trace.args >= 5
  && String.equal (String.sub r.Sim.Trace.args 0 5) "nseg="

let test_net_tx_trace_once_per_burst () =
  Sim.Trace.reset ();
  Sim.Trace.set_capacity 262144;
  Sim.Trace.enable Sim.Trace.Net;
  ignore ((bw_tcp_row ()).Apps.Lmbench.run Sim.Profile.asterinas);
  let tx_burst_recs = List.length (List.filter is_tx_burst (Sim.Trace.records ())) in
  let bursts = Sim.Stats.get "net.burst" in
  let queued = Sim.Stats.get "net.tx_queued" in
  let drops = Sim.Trace.dropped () in
  Sim.Trace.reset ();
  check_int "nothing fell out of the ring" 0 drops;
  check "bursts were submitted" true (bursts > 0);
  check_int "exactly one tx tracepoint per burst" bursts tx_burst_recs;
  check "bursts amortise the queued segments" true (bursts < queued)

let test_net_traced_run_same_virtual_time () =
  Sim.Trace.reset ();
  ignore ((bw_tcp_row ()).Apps.Lmbench.run Sim.Profile.asterinas);
  let untraced_end = Sim.Clock.now () in
  Sim.Trace.set_capacity 262144;
  List.iter Sim.Trace.enable Sim.Trace.all_categories;
  ignore ((bw_tcp_row ()).Apps.Lmbench.run Sim.Profile.asterinas);
  let traced_end = Sim.Clock.now () in
  let total = Sim.Trace.total () in
  Sim.Trace.reset ();
  check "tracing the batched pipeline is free in virtual time" true
    (Int64.equal untraced_end traced_end);
  check "and the trace actually recorded" true (total > 0)

let () =
  Alcotest.run "trace"
    [
      ( "ring",
        [
          Alcotest.test_case "overflow_keeps_newest" `Quick test_ring_overflow_keeps_newest;
          Alcotest.test_case "default_off_zero_entries" `Quick test_default_off_zero_entries;
          Alcotest.test_case "mask_per_category" `Quick test_mask_is_per_category;
          Alcotest.test_case "clear_vs_reset" `Quick test_clear_keeps_mask_reset_clears_it;
        ] );
      ( "hist",
        [
          Alcotest.test_case "constant_exact" `Quick test_hist_constant_exact;
          Alcotest.test_case "two_point_exact" `Quick test_hist_two_point_exact;
          Alcotest.test_case "uniform_bounded_error" `Quick test_hist_uniform_bounded_error;
          Alcotest.test_case "registry" `Quick test_hist_registry;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same_seed_identical_traces" `Quick test_same_seed_identical_traces;
          Alcotest.test_case "traced_run_same_virtual_time" `Quick
            test_traced_run_same_virtual_time;
        ] );
      ( "net-batch",
        [
          Alcotest.test_case "tx_trace_once_per_burst" `Quick test_net_tx_trace_once_per_burst;
          Alcotest.test_case "traced_bw_tcp_same_virtual_time" `Quick
            test_net_traced_run_same_virtual_time;
        ] );
    ]
