(* kprof tests: scope-stack attribution math, exact cycle conservation
   over a full workload, determinism and zero-cost of profiled runs, and
   the Linux-ABI accounting surface (getrusage/times, /proc/<pid>/stat,
   lock_stat contention counters). *)

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_i64 = Alcotest.(check int64)

(* --- Attribution unit tests (no kernel, just the clock) --- *)

let test_scope_attribution () =
  Sim.Prof.reset ();
  Sim.Clock.reset ();
  Sim.Prof.enable ();
  Sim.Prof.switch_to "t/1";
  Sim.Clock.charge 100;
  Sim.Prof.scope "a" (fun () ->
      Sim.Clock.charge 50;
      Sim.Prof.scope "b" (fun () -> Sim.Clock.charge 25));
  Sim.Clock.charge 10;
  Alcotest.(check (list (pair string int64)))
    "folded keys carry exact cycle counts"
    [ ("t/1", 110L); ("t/1;a", 50L); ("t/1;a;b", 25L) ]
    (Sim.Prof.folded ());
  check_i64 "elapsed" 185L (Sim.Prof.elapsed ());
  check "conserved" true (Sim.Prof.conserved ());
  Sim.Prof.reset ()

let test_scope_pops_on_exception () =
  Sim.Prof.reset ();
  Sim.Clock.reset ();
  Sim.Prof.enable ();
  Sim.Prof.switch_to "t/1";
  (try
     Sim.Prof.scope "boom" (fun () ->
         Sim.Clock.charge 5;
         failwith "x")
   with Failure _ -> ());
  Sim.Clock.charge 7;
  Alcotest.(check (list (pair string int64)))
    "the raising scope was popped"
    [ ("t/1", 7L); ("t/1;boom", 5L) ]
    (Sim.Prof.folded ());
  Sim.Prof.reset ()

let test_disabled_is_transparent () =
  Sim.Prof.reset ();
  let ran = ref false in
  let v =
    Sim.Prof.scope "a" (fun () ->
        ran := true;
        42)
  in
  check_int "value passes through" 42 v;
  check "thunk ran" true !ran;
  check "nothing attributed while disabled" true (Sim.Prof.folded () = [])

let test_scope_survives_suspension () =
  (* The scope stack lives on the task context, not the host call stack:
     cycles charged after the task resumes from a sleep inside the scope
     must still attribute to it. *)
  Sim.Prof.enable ();
  Sim.Profile.set Sim.Profile.asterinas;
  Ostd.Selftest.fresh_boot ();
  (* fresh_boot re-anchored attribution at cycle 0. *)
  ignore
    (Ostd.Task.spawn ~name:"holder" (fun () ->
         Sim.Prof.scope "crit" (fun () ->
             Sim.Clock.charge 3000;
             Ostd.Task.sleep_us 50.;
             Sim.Clock.charge 4000)));
  ignore (Ostd.Task.spawn ~name:"other" (fun () -> Ostd.Task.sleep_us 10.));
  Ostd.Task.run ();
  let crit_cycles =
    List.fold_left
      (fun acc (k, c) ->
        let is_holder_crit =
          String.length k > 7
          && String.sub k 0 7 = "holder/"
          &&
          match String.rindex_opt k ';' with
          | Some i -> String.sub k (i + 1) (String.length k - i - 1) = "crit"
          | None -> false
        in
        if is_holder_crit then Int64.add acc c else acc)
      0L (Sim.Prof.folded ())
  in
  check "post-resume cycles attributed to the surviving scope" true (crit_cycles >= 7000L);
  check "conserved across suspension" true (Sim.Prof.conserved ());
  Sim.Prof.reset ()

(* --- Full-workload conservation, determinism, zero cost --- *)

let profiled_chaos seed =
  Sim.Prof.enable ();
  let o = Apps.Chaos.run ~seed () in
  let out = Sim.Prof.render_folded () in
  let elapsed = Sim.Prof.elapsed () in
  let attributed = Sim.Prof.total_attributed () in
  let end_time = Sim.Clock.now () in
  Sim.Prof.reset ();
  (o.Apps.Chaos.completed, out, elapsed, attributed, end_time)

let test_workload_conservation () =
  let _, out, elapsed, attributed, _ = profiled_chaos 5L in
  check "folded output nonempty" true (String.length out > 0);
  check "virtual time advanced" true (elapsed > 0L);
  check_i64 "attributed cycles sum exactly to elapsed" elapsed attributed

let test_same_seed_identical_profiles () =
  let c1, o1, _, _, e1 = profiled_chaos 7L in
  let c2, o2, _, _, e2 = profiled_chaos 7L in
  check_int "same workload outcome" c1 c2;
  check "same end timestamp" true (Int64.equal e1 e2);
  check "byte-identical folded output" true (String.equal o1 o2)

let test_profiled_run_same_virtual_time () =
  (* Profiling must charge nothing: the same run, bare and profiled,
     finishes at the same virtual timestamp. *)
  Sim.Prof.reset ();
  ignore (Apps.Chaos.run ~seed:11L ());
  let bare_end = Sim.Clock.now () in
  let _, out, _, _, prof_end = profiled_chaos 11L in
  check "profile actually recorded" true (String.length out > 0);
  check "profiling is free in virtual time" true (Int64.equal bare_end prof_end)

(* --- Conservation under the batched net TX pipeline ---

   Batching moves TX work out of the syscall path into softirq reaps,
   NAPI poll events and burst flushes; every cycle spent there must
   still be attributed to exactly one scope stack, and the "net" scope
   must actually appear in the profile. *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.equal (String.sub hay i nl) needle || go (i + 1)) in
  go 0

let test_net_batch_conservation () =
  Sim.Prof.enable ();
  let row = Apps.Lmbench.find "bw_tcp 64k (virtio)" in
  let mbs = row.Apps.Lmbench.run Sim.Profile.asterinas in
  let out = Sim.Prof.render_folded () in
  let elapsed = Sim.Prof.elapsed () in
  let attributed = Sim.Prof.total_attributed () in
  Sim.Prof.reset ();
  check "throughput was measured" true (mbs > 0.);
  check "bursts were submitted" true (Sim.Stats.get "net.burst" > 0);
  check "the net scope appears in the folded profile" true (contains ~needle:";net" out);
  check_i64 "attributed cycles sum exactly to elapsed" elapsed attributed

(* --- Linux-ABI accounting surface --- *)

let run_user body =
  ignore (Aster.Kernel.boot ~profile:Sim.Profile.asterinas ());
  Apps.Libc.install_child_resolver ();
  let result = ref None in
  let wrapped uapi =
    let code = body (Apps.Libc.make uapi) in
    result := Some code;
    code
  in
  ignore (Aster.Process.spawn_kernel_style ~name:"acct" wrapped);
  Aster.Kernel.run ();
  match !result with
  | Some code -> code
  | None -> Alcotest.fail "user program did not finish"

let burn_cpu c ~writes =
  let fd = Apps.Libc.openf c "/acct.dat" ~flags:0o101 (* O_CREAT|O_WRONLY *) ~mode:0o644 in
  let buf = Apps.Libc.ualloc c 4096 in
  for _ = 1 to writes do
    ignore (Apps.Libc.write c ~fd ~vaddr:buf ~len:4096)
  done;
  ignore (Apps.Libc.fsync c fd);
  ignore (Apps.Libc.close c fd)

let test_proc_stat_matches_getrusage () =
  let code =
    run_user (fun c ->
        burn_cpu c ~writes:400;
        match Apps.Libc.getrusage c with
        | None -> 2
        | Some ru ->
          let sum_us = Int64.add ru.Apps.Libc.ru_utime_us ru.Apps.Libc.ru_stime_us in
          if sum_us <= 0L then 3
          else begin
            let pid = Apps.Libc.getpid c in
            let sfd =
              Apps.Libc.openf c (Printf.sprintf "/proc/%d/stat" pid) ~flags:0 ~mode:0
            in
            if sfd < 0 then 4
            else begin
              let s = Apps.Libc.read_str c ~fd:sfd ~len:4096 in
              ignore (Apps.Libc.close c sfd);
              (* "pid (comm) state ppid 0*9 utime stime 0 0": utime and
                 stime are Linux's fields 14 and 15, in CLK_TCK ticks. *)
              match String.split_on_char ' ' (String.trim s) with
              | _pid :: _comm :: _state :: rest when List.length rest >= 12 ->
                let stat_ticks =
                  Int64.add
                    (Int64.of_string (List.nth rest 10))
                    (Int64.of_string (List.nth rest 11))
                in
                let ru_ticks = Int64.div sum_us 10_000L in
                if Int64.abs (Int64.sub stat_ticks ru_ticks) <= 1L then 0 else 5
              | _ -> 6
            end
          end)
  in
  check_int "stat utime+stime agrees with getrusage (exit code)" 0 code

let test_times_and_process_cputime () =
  let code =
    run_user (fun c ->
        burn_cpu c ~writes:100;
        match Apps.Libc.getrusage c with
        | None -> 1
        | Some ru ->
          let sum_us = Int64.add ru.Apps.Libc.ru_utime_us ru.Apps.Libc.ru_stime_us in
          if sum_us <= 0L then 2
          else begin
            (* CLOCK_PROCESS_CPUTIME_ID, sampled just after getrusage:
               never less, and within a generous 1ms of it. *)
            let cpu_us = Int64.div (Apps.Libc.clock_process_cputime_ns c) 1000L in
            if cpu_us < sum_us then 3
            else if Int64.sub cpu_us sum_us > 1000L then 4
            else begin
              let tms = Apps.Libc.times c in
              let tms_ticks = Int64.add tms.Apps.Libc.tms_utime tms.Apps.Libc.tms_stime in
              let ru_ticks = Int64.div sum_us 10_000L in
              if Int64.abs (Int64.sub tms_ticks ru_ticks) > 1L then 5
              else if tms.Apps.Libc.tms_uptime < 0L then 6
              else if ru.Apps.Libc.ru_nvcsw < 0L || ru.Apps.Libc.ru_nivcsw < 0L then 7
              else 0
            end
          end)
  in
  check_int "times and CLOCK_PROCESS_CPUTIME_ID consistent (exit code)" 0 code

(* --- Lock contention statistics --- *)

let test_lock_stat_counts_contention () =
  Sim.Profile.set Sim.Profile.asterinas;
  Ostd.Selftest.fresh_boot ();
  Ostd.Sync.Lock_stat.set_hold_watchdog_us 10.;
  let m = Ostd.Sync.Mutex.create "kprof_test" in
  ignore
    (Ostd.Task.spawn ~name:"holder" (fun () ->
         Ostd.Sync.Mutex.with_lock m (fun () -> Ostd.Task.sleep_us 50.)));
  ignore
    (Ostd.Task.spawn ~name:"waiter" (fun () -> Ostd.Sync.Mutex.with_lock m (fun () -> ())));
  Ostd.Task.run ();
  Ostd.Sync.Lock_stat.set_hold_watchdog_us 1000.;
  check_int "two acquisitions" 2 (Sim.Stats.get "lock.kprof_test.acquire");
  check "the forced contention was counted" true
    (Sim.Stats.get "lock.kprof_test.contended" >= 1);
  check "the 50us hold tripped the 10us watchdog" true
    (Sim.Stats.get "lock.watchdog.long_hold" >= 1);
  (match Sim.Hist.find "lock.kprof_test.hold" with
  | Some h -> check_int "both holds sampled" 2 (Sim.Hist.count h)
  | None -> Alcotest.fail "no hold histogram");
  match Sim.Hist.find "lock.kprof_test.wait" with
  | Some h -> check "contended wait sampled" true (Sim.Hist.count h >= 1)
  | None -> Alcotest.fail "no wait histogram"

let () =
  Alcotest.run "kprof"
    [
      ( "attribution",
        [
          Alcotest.test_case "scope_attribution" `Quick test_scope_attribution;
          Alcotest.test_case "scope_pops_on_exception" `Quick test_scope_pops_on_exception;
          Alcotest.test_case "disabled_is_transparent" `Quick test_disabled_is_transparent;
          Alcotest.test_case "scope_survives_suspension" `Quick test_scope_survives_suspension;
        ] );
      ( "workload",
        [
          Alcotest.test_case "cycle_conservation" `Quick test_workload_conservation;
          Alcotest.test_case "same_seed_identical_profiles" `Quick
            test_same_seed_identical_profiles;
          Alcotest.test_case "profiled_run_same_virtual_time" `Quick
            test_profiled_run_same_virtual_time;
          Alcotest.test_case "net_batch_conservation" `Quick test_net_batch_conservation;
        ] );
      ( "abi",
        [
          Alcotest.test_case "proc_stat_matches_getrusage" `Quick
            test_proc_stat_matches_getrusage;
          Alcotest.test_case "times_and_process_cputime" `Quick test_times_and_process_cputime;
        ] );
      ( "locks",
        [ Alcotest.test_case "lock_stat_counts_contention" `Quick test_lock_stat_counts_contention ] );
    ]
