let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let fresh () =
  Sim.Profile.set Sim.Profile.asterinas;
  Ostd.Selftest.fresh_boot ()

(* --- Task and scheduling --- *)

let test_spawn_and_run () =
  fresh ();
  let log = ref [] in
  ignore (Ostd.Task.spawn ~name:"a" (fun () -> log := "a" :: !log));
  ignore (Ostd.Task.spawn ~name:"b" (fun () -> log := "b" :: !log));
  Ostd.Task.run ();
  Alcotest.(check (list string)) "fifo order" [ "a"; "b" ] (List.rev !log)

let test_yield_interleaves () =
  fresh ();
  let log = ref [] in
  let body tag () =
    for i = 1 to 3 do
      log := Printf.sprintf "%s%d" tag i :: !log;
      Ostd.Task.yield_now ()
    done
  in
  ignore (Ostd.Task.spawn (body "x"));
  ignore (Ostd.Task.spawn (body "y"));
  Ostd.Task.run ();
  Alcotest.(check (list string))
    "interleaved" [ "x1"; "y1"; "x2"; "y2"; "x3"; "y3" ] (List.rev !log)

let test_wait_queue_wake () =
  fresh ();
  let wq = Ostd.Wait_queue.create () in
  let got = ref 0 in
  ignore
    (Ostd.Task.spawn ~name:"sleeper" (fun () ->
         Ostd.Wait_queue.sleep wq;
         got := 1));
  ignore
    (Ostd.Task.spawn ~name:"waker" (fun () ->
         check_int "one waiter" 1 (Ostd.Wait_queue.waiters wq);
         ignore (Ostd.Wait_queue.wake_one wq)));
  Ostd.Task.run ();
  check_int "woken and finished" 1 !got

let test_sleep_timeout () =
  fresh ();
  let woken = ref None in
  ignore
    (Ostd.Task.spawn (fun () ->
         let wq = Ostd.Wait_queue.create () in
         woken := Some (Ostd.Wait_queue.sleep_timeout wq ~cycles:5000)));
  Ostd.Task.run ();
  check "timed out" true (!woken = Some false);
  check "clock advanced past timeout" true (Sim.Clock.now () >= 5000L)

let test_task_sleep_advances_clock () =
  fresh ();
  ignore (Ostd.Task.spawn (fun () -> Ostd.Task.sleep_us 100.0));
  Ostd.Task.run ();
  check "virtual time" true (Sim.Clock.now () >= Int64.of_int (Sim.Clock.us 100.0))

let test_inv8_double_run_panics () =
  Sim.Profile.set Sim.Profile.asterinas;
  Ostd.Boot.init ();
  Ostd.Falloc.inject (Ostd.Bootstrap_alloc.make ());
  Ostd.Boot.feed_free_memory ();
  (* A buggy scheduler that never dequeues: pick_next hands out the same
     task even while it is running. The nested dispatch loop then tries
     to run it twice — Inv. 8 must catch this. *)
  let the_task = ref None in
  let module Buggy = struct
    let enqueue t = the_task := Some t

    let pick_next () = !the_task

    let update_curr () = ()

    let dequeue_curr () = ()
  end in
  Ostd.Task.inject_scheduler (module Buggy);
  ignore
    (Ostd.Task.spawn (fun () ->
         (* Re-enter the dispatcher from inside the task: the scheduler
            will offer this very task again. *)
         Ostd.Task.run ()));
  Ostd.Selftest.expect_panic (fun () -> Ostd.Task.run ())

let test_kill_prevents_running () =
  fresh ();
  let ran = ref false in
  let t = Ostd.Task.spawn (fun () -> ran := true) in
  Ostd.Task.kill t;
  Ostd.Task.run ();
  check "killed task never ran" false !ran

let test_custom_data () =
  fresh ();
  let module M = struct
    type Ostd.Task.custom += Weight of int
  end in
  let t = Ostd.Task.spawn (fun () -> ()) in
  Ostd.Task.set_custom t (M.Weight 42);
  (match Ostd.Task.custom t with
  | Some (M.Weight 42) -> ()
  | _ -> Alcotest.fail "custom data lost");
  Ostd.Task.run ()

(* --- Sync primitives --- *)

let test_spinlock_atomic_mode () =
  fresh ();
  let lock = Ostd.Sync.Spin_lock.create "t" in
  ignore
    (Ostd.Task.spawn (fun () ->
         Ostd.Sync.Spin_lock.with_lock lock (fun () ->
             check "atomic inside" true (Ostd.Atomic_mode.in_atomic ()));
         check "released" false (Ostd.Atomic_mode.in_atomic ())));
  Ostd.Task.run ()

let test_sleep_under_spinlock_panics () =
  fresh ();
  let lock = Ostd.Sync.Spin_lock.create "t" in
  let panicked = ref false in
  ignore
    (Ostd.Task.spawn (fun () ->
         try Ostd.Sync.Spin_lock.with_lock lock (fun () -> Ostd.Task.sleep_us 1.0)
         with Ostd.Panic.Kernel_panic _ -> panicked := true));
  Ostd.Task.run ();
  check "sleep-in-atomic caught" true !panicked

let test_mutex_mutual_exclusion () =
  fresh ();
  let m = Ostd.Sync.Mutex.create "m" in
  let log = ref [] in
  let body tag () =
    Ostd.Sync.Mutex.with_lock m (fun () ->
        log := (tag ^ ":in") :: !log;
        Ostd.Task.sleep_us 10.0;
        log := (tag ^ ":out") :: !log)
  in
  ignore (Ostd.Task.spawn (body "a"));
  ignore (Ostd.Task.spawn (body "b"));
  Ostd.Task.run ();
  Alcotest.(check (list string))
    "critical sections do not overlap"
    [ "a:in"; "a:out"; "b:in"; "b:out" ]
    (List.rev !log)

let test_rwlock_readers_share () =
  fresh ();
  let rw = Ostd.Sync.Rw_lock.create "rw" in
  let concurrent = ref 0 and peak = ref 0 in
  let reader () =
    Ostd.Sync.Rw_lock.with_read rw (fun () ->
        incr concurrent;
        if !concurrent > !peak then peak := !concurrent;
        Ostd.Task.sleep_us 5.0;
        decr concurrent)
  in
  ignore (Ostd.Task.spawn reader);
  ignore (Ostd.Task.spawn reader);
  Ostd.Task.run ();
  check_int "both readers inside together" 2 !peak

let test_rcu_grace_period () =
  fresh ();
  let cell = Ostd.Sync.Rcu.create 1 in
  let order = ref [] in
  ignore
    (Ostd.Task.spawn ~name:"reader" (fun () ->
         Ostd.Sync.Rcu.read cell (fun v ->
             order := Printf.sprintf "read:%d" v :: !order)));
  ignore
    (Ostd.Task.spawn ~name:"updater" (fun () ->
         Ostd.Sync.Rcu.update cell 2;
         Ostd.Sync.Rcu.synchronize ();
         order := "synced" :: !order));
  Ostd.Task.run ();
  check "reader ran" true (List.mem "read:1" !order);
  check "synchronize completed" true (List.mem "synced" !order)

let test_rcu_no_sleep_in_read () =
  fresh ();
  let cell = Ostd.Sync.Rcu.create 0 in
  let panicked = ref false in
  ignore
    (Ostd.Task.spawn (fun () ->
         try Ostd.Sync.Rcu.read cell (fun _ -> Ostd.Task.sleep_us 1.0)
         with Ostd.Panic.Kernel_panic _ -> panicked := true));
  Ostd.Task.run ();
  check "rcu read section is atomic" true !panicked

(* --- User mode --- *)

let test_user_syscall_roundtrip () =
  fresh ();
  let vm = Ostd.Vmspace.create () in
  let prog uapi =
    let r = uapi.Ostd.User.sys 1 [| 41L |] in
    Int64.to_int r
  in
  let ut = Ostd.User.create prog vm in
  let exit_code = ref (-1) in
  ignore
    (Ostd.Task.spawn (fun () ->
         let rec loop resume =
           match Ostd.User.execute ut resume with
           | Ostd.User.Syscall { nr = 1; args } ->
             loop (Ostd.User.Sysret (Int64.add args.(0) 1L))
           | Ostd.User.Syscall _ -> loop (Ostd.User.Sysret (-38L))
           | Ostd.User.Page_fault _ -> Alcotest.fail "unexpected fault"
           | Ostd.User.Exit code -> exit_code := code
         in
         loop Ostd.User.Start));
  Ostd.Task.run ();
  check_int "syscall result became exit code" 42 !exit_code;
  Ostd.Vmspace.destroy vm

let test_user_demand_paging () =
  fresh ();
  let vm = Ostd.Vmspace.create () in
  let prog uapi =
    (* Touch unmapped memory: the kernel maps a zero page on fault. *)
    uapi.Ostd.User.mem_write_u64 0x7000 123L;
    if uapi.Ostd.User.mem_read_u64 0x7000 = 123L then 0 else 1
  in
  let ut = Ostd.User.create prog vm in
  let faults = ref 0 in
  let exit_code = ref (-1) in
  ignore
    (Ostd.Task.spawn (fun () ->
         let rec loop resume =
           match Ostd.User.execute ut resume with
           | Ostd.User.Page_fault { vaddr; _ } ->
             incr faults;
             Ostd.Vmspace.map vm
               ~vaddr:(vaddr / 4096 * 4096)
               (Ostd.Frame.alloc ~untyped:true ())
               Ostd.Vmspace.rw;
             loop Ostd.User.Fault_resolved
           | Ostd.User.Syscall _ -> loop (Ostd.User.Sysret 0L)
           | Ostd.User.Exit code -> exit_code := code
         in
         loop Ostd.User.Start));
  Ostd.Task.run ();
  check_int "exit ok" 0 !exit_code;
  check_int "exactly one demand fault" 1 !faults;
  Ostd.Vmspace.destroy vm

let test_user_context_masks_sensitive_rflags () =
  let ctx = Ostd.User.Context.create () in
  (* IF (bit 9) and IOPL (bits 12-13) must be masked; carry (bit 0) kept. *)
  Ostd.User.Context.set_rflags ctx 0x3201L;
  Alcotest.(check int64) "masked" 0x1L (Ostd.User.Context.rflags ctx)

let test_user_context_clone () =
  let ctx = Ostd.User.Context.create () in
  Ostd.User.Context.set_gpr ctx 0 7L;
  Ostd.User.Context.set_rip ctx 0x400000L;
  let c2 = Ostd.User.Context.clone ctx in
  Ostd.User.Context.set_gpr ctx 0 9L;
  Alcotest.(check int64) "clone is independent" 7L (Ostd.User.Context.get_gpr c2 0);
  Alcotest.(check int64) "rip copied" 0x400000L (Ostd.User.Context.rip c2)

(* --- Selftest corpus --- *)

let selftest_cases =
  List.map
    (fun c ->
      Alcotest.test_case
        (c.Ostd.Selftest.submodule ^ "." ^ c.Ostd.Selftest.name)
        `Quick
        (fun () -> c.Ostd.Selftest.run ()))
    Ostd.Selftest.cases

(* --- Properties --- *)

let prop_untyped_roundtrip =
  QCheck.Test.make ~name:"untyped_random_roundtrips" ~count:100
    QCheck.(pair (int_range 0 4000) (string_of_size (QCheck.Gen.int_range 1 96)))
    (fun (off, s) ->
      fresh ();
      let f = Ostd.Frame.alloc ~untyped:true () in
      let len = String.length s in
      let fits = off + len <= 4096 in
      let ok =
        if fits then begin
          Ostd.Untyped.write_bytes f ~off ~buf:(Bytes.of_string s) ~pos:0 ~len;
          let out = Bytes.create len in
          Ostd.Untyped.read_bytes f ~off ~buf:out ~pos:0 ~len;
          Bytes.to_string out = s
        end
        else
          match Ostd.Untyped.write_bytes f ~off ~buf:(Bytes.of_string s) ~pos:0 ~len with
          | () -> false
          | exception Ostd.Panic.Kernel_panic _ -> true
      in
      Ostd.Frame.drop f;
      ok)

let prop_frame_alloc_drop_balance =
  QCheck.Test.make ~name:"frame_handles_balance" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 30) (int_range 1 4))
    (fun sizes ->
      fresh ();
      let frames = List.map (fun p -> Ostd.Frame.alloc ~pages:p ~untyped:true ()) sizes in
      let live_at_peak = Ostd.Frame.live_handles () in
      List.iter Ostd.Frame.drop frames;
      live_at_peak = List.length sizes && Ostd.Frame.live_handles () = 0)

let prop_slab_alloc_free =
  QCheck.Test.make ~name:"slab_never_aliases_slots" ~count:50
    QCheck.(int_range 1 64)
    (fun n ->
      fresh ();
      let s = Ostd.Slab.create ~slot_size:64 ~pages:1 in
      let taken = ref [] in
      for _ = 1 to n do
        match Ostd.Slab.alloc s with
        | Some slot -> taken := slot :: !taken
        | None -> ()
      done;
      let addrs = List.map Ostd.Slab.Heap_slot.addr !taken in
      let distinct = List.sort_uniq compare addrs in
      let ok = List.length distinct = List.length addrs in
      List.iter (Ostd.Slab.dealloc s) !taken;
      Ostd.Slab.destroy s;
      ok)

(* --- Graceful degradation: containment, IRQ storms, transient allocs --- *)

let drain () =
  while Sim.Events.run_next () do
    ()
  done

let test_service_failure_contained () =
  fresh ();
  (match Ostd.Panic.contain (fun () -> Ostd.Panic.fail ~errno:5 "disk on fire") with
  | Error 5 -> ()
  | Error e -> Alcotest.failf "wrong errno %d" e
  | Ok _ -> Alcotest.fail "failure was swallowed");
  check_int "success passes through" 3
    (match Ostd.Panic.contain (fun () -> 3) with Ok v -> v | Error _ -> -1);
  (* Invariant violations must NOT be containable. *)
  match Ostd.Panic.contain (fun () -> Ostd.Panic.panic "Inv. broken") with
  | exception Ostd.Panic.Kernel_panic _ -> ()
  | _ -> Alcotest.fail "Kernel_panic must escape containment"

let test_task_contained_death () =
  fresh ();
  let survivor = ref false in
  ignore (Ostd.Task.spawn ~name:"doomed" (fun () -> Ostd.Panic.fail "service hiccup"));
  ignore (Ostd.Task.spawn ~name:"bystander" (fun () -> survivor := true));
  Ostd.Task.run ();
  check "bystander unaffected" true !survivor;
  check "death recorded as contained" true (Sim.Stats.get "task.contained_failure" > 0)

let test_irq_spurious_vector_absorbed () =
  fresh ();
  (* Nobody claims the spurious vector; delivery must be absorbed and
     counted, never crash. Injected by the chip itself, so it bypasses
     remapping exactly like real spurious interrupts do. *)
  let line = Ostd.Irq.claim ~vector:77 ~name:"legit" () in
  Ostd.Irq.set_handler line (fun () -> ());
  Ostd.Irq.bind_device line ~dev:3;
  Sim.Fault.configure ~seed:2L [ ("irq.spurious", 1.0) ];
  Machine.Irq_chip.raise_irq (Machine.Irq_chip.Device 3) ~vector:77;
  drain ();
  Sim.Fault.disable ();
  check "spurious delivery absorbed" true (Sim.Stats.get "irq.unhandled" > 0);
  check "spurious injection recorded" true (Sim.Stats.get "irq.injected_spurious" > 0)

let test_irq_storm_masked_and_polled () =
  fresh ();
  let line = Ostd.Irq.claim ~vector:88 ~name:"stormy" () in
  let runs = ref 0 in
  Ostd.Irq.set_handler line (fun () -> incr runs);
  Ostd.Irq.bind_device line ~dev:4;
  for _ = 1 to 200 do
    Machine.Irq_chip.raise_irq (Machine.Irq_chip.Device 4) ~vector:88
  done;
  drain ();
  check "handler shielded from the storm" true (!runs < 200);
  check "storm masked the vector" true (Sim.Stats.get "irq.storm_masked" > 0);
  check "excess deliveries dropped" true (Sim.Stats.get "irq.masked_dropped" > 0);
  check "polled fallback serviced it" true (Sim.Stats.get "degrade.recovered.irq_poll" > 0);
  check "vector unmasked after the poll" false (Ostd.Irq.is_masked ~vector:88);
  check_int "no vector left masked" 0 (Ostd.Irq.masked_count ())

let test_irq_handler_failure_contained () =
  fresh ();
  let line = Ostd.Irq.claim ~vector:99 ~name:"flaky" () in
  Ostd.Irq.set_handler line (fun () -> Ostd.Panic.fail "device ate the buffer");
  Ostd.Irq.bind_device line ~dev:5;
  Machine.Irq_chip.raise_irq (Machine.Irq_chip.Device 5) ~vector:99;
  drain ();
  check "failure contained, kernel alive" true (Sim.Stats.get "irq.handler_contained" > 0)

let test_alloc_transient_retry () =
  fresh ();
  Sim.Fault.configure ~seed:3L [ ("alloc.fail", 0.4) ];
  for _ = 1 to 20 do
    Ostd.Frame.drop (Ostd.Frame.alloc ~untyped:true ())
  done;
  Sim.Fault.disable ();
  check "transient failures retried" true (Sim.Stats.get "degrade.retried.alloc" > 0);
  check "allocations recovered" true (Sim.Stats.get "degrade.recovered.alloc" > 0)

let prop_vmspace_copy_matches =
  QCheck.Test.make ~name:"vmspace_copy_in_out_match" ~count:50
    QCheck.(string_of_size (QCheck.Gen.int_range 1 12000))
    (fun s ->
      fresh ();
      let vm = Ostd.Vmspace.create () in
      let len = String.length s in
      let pages = ((len + 4095) / 4096) + 1 in
      Ostd.Vmspace.map vm ~vaddr:0x10000
        (Ostd.Frame.alloc ~pages ~untyped:true ())
        Ostd.Vmspace.rw;
      let ok =
        match Ostd.Vmspace.copy_in vm ~vaddr:0x10000 ~buf:(Bytes.of_string s) ~pos:0 ~len with
        | Error _ -> false
        | Ok () -> (
          let out = Bytes.create len in
          match Ostd.Vmspace.copy_out vm ~vaddr:0x10000 ~buf:out ~pos:0 ~len with
          | Error _ -> false
          | Ok () -> Bytes.to_string out = s)
      in
      Ostd.Vmspace.destroy vm;
      ok)

let () =
  Alcotest.run "ostd"
    [
      ("selftest_corpus", selftest_cases);
      ( "task",
        [
          Alcotest.test_case "spawn_run" `Quick test_spawn_and_run;
          Alcotest.test_case "yield" `Quick test_yield_interleaves;
          Alcotest.test_case "wait_queue" `Quick test_wait_queue_wake;
          Alcotest.test_case "sleep_timeout" `Quick test_sleep_timeout;
          Alcotest.test_case "sleep_clock" `Quick test_task_sleep_advances_clock;
          Alcotest.test_case "inv8_double_run" `Quick test_inv8_double_run_panics;
          Alcotest.test_case "kill" `Quick test_kill_prevents_running;
          Alcotest.test_case "custom_data" `Quick test_custom_data;
        ] );
      ( "sync",
        [
          Alcotest.test_case "spinlock_atomic" `Quick test_spinlock_atomic_mode;
          Alcotest.test_case "sleep_under_spinlock" `Quick test_sleep_under_spinlock_panics;
          Alcotest.test_case "mutex" `Quick test_mutex_mutual_exclusion;
          Alcotest.test_case "rwlock" `Quick test_rwlock_readers_share;
          Alcotest.test_case "rcu" `Quick test_rcu_grace_period;
          Alcotest.test_case "rcu_atomic" `Quick test_rcu_no_sleep_in_read;
        ] );
      ( "user",
        [
          Alcotest.test_case "syscall_roundtrip" `Quick test_user_syscall_roundtrip;
          Alcotest.test_case "demand_paging" `Quick test_user_demand_paging;
          Alcotest.test_case "rflags_mask" `Quick test_user_context_masks_sensitive_rflags;
          Alcotest.test_case "context_clone" `Quick test_user_context_clone;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "service_failure_contained" `Quick test_service_failure_contained;
          Alcotest.test_case "task_contained_death" `Quick test_task_contained_death;
          Alcotest.test_case "irq_spurious_absorbed" `Quick test_irq_spurious_vector_absorbed;
          Alcotest.test_case "irq_storm_masked_polled" `Quick test_irq_storm_masked_and_polled;
          Alcotest.test_case "irq_handler_contained" `Quick test_irq_handler_failure_contained;
          Alcotest.test_case "alloc_transient_retry" `Quick test_alloc_transient_retry;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_untyped_roundtrip;
            prop_frame_alloc_drop_balance;
            prop_slab_alloc_free;
            prop_vmspace_copy_matches;
          ] );
    ]
