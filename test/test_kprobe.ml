(* kprobe tests: the verifier's rejection quartet (termination, memory
   safety, bounds, confinement), VM execution semantics over synthetic
   tracepoint fires, the probe_load/probe_read syscall surface and
   /proc/kprobe, always-on watchdogs catching injected anomalies,
   zero-cost detachment, and same-seed determinism with probes attached.
   Satellites: writable /proc/ktrace masks, /proc table parsers, and
   typed empty-histogram percentiles. *)

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_str = Alcotest.(check string)

let boot ?(profile = Sim.Profile.asterinas) () =
  let k = Aster.Kernel.boot ~profile () in
  Apps.Libc.install_child_resolver ();
  k

(* Run a user program as init and return its exit code. *)
let run_user ?profile body =
  ignore (boot ?profile ());
  let result = ref None in
  let wrapped uapi =
    let code = body (Apps.Libc.make uapi) in
    result := Some code;
    code
  in
  ignore (Aster.Process.spawn_kernel_style ~name:"test" wrapped);
  Aster.Kernel.run ();
  match !result with
  | Some code -> code
  | None -> Alcotest.fail "user program did not finish"

let fresh () =
  Kprobe.Registry.reset ();
  Sim.Trace.reset ();
  Sim.Stats.reset ();
  Sim.Hist.reset ()

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let verify_text text =
  match Kprobe.Parse.parse text with
  | Error e -> Error e
  | Ok prog -> Kprobe.Verifier.verify prog

(* Expect a rejection whose reason mentions [needle]. *)
let expect_reject msg needle result =
  match result with
  | Ok _ -> Alcotest.failf "%s: accepted a program that must be rejected" msg
  | Error e ->
    if not (contains e needle) then
      Alcotest.failf "%s: reason %S does not mention %S" msg e needle

let direct_prog ?(attach = [ Sim.Trace.P_syscall_enter ]) ?(maps = []) code =
  { Kprobe.Insn.pname = "t.direct"; attach; maps; code = Array.of_list code }

(* --- Verifier rejections --- *)

let test_reject_backward_jump () =
  let open Kprobe.Insn in
  expect_reject "in-place jump" "only strictly forward jumps"
    (Kprobe.Verifier.verify (direct_prog [ Ld (0, Imm 1L); Jmp 0; Ret ]));
  expect_reject "backward jump" "backward or in-place jump"
    (Kprobe.Verifier.verify (direct_prog [ Ld (0, Imm 1L); Jmp (-1); Ret ]));
  expect_reject "backward jump via text" "only strictly forward jumps"
    (verify_text "prog t\nattach syscall_enter\nld r0, 1\njmp 0\nret\n")

let test_reject_jump_overshoot () =
  expect_reject "overshooting jump" "overshoots the program end"
    (verify_text "prog t\nattach syscall_enter\nld r0, 1\njeq r0, 1, +5\nret\n")

let test_reject_oob_ctx_field () =
  let open Kprobe.Insn in
  (* syscall_enter exposes 3 fields; slot 7 is out of bounds. *)
  expect_reject "ctx index out of bounds" "out of bounds"
    (Kprobe.Verifier.verify (direct_prog [ Ldctx (0, Cidx 7); Ret ]));
  (* lat_ns exists at syscall_exit but is NOT whitelisted at enter. *)
  expect_reject "ctx name not whitelisted" "not whitelisted"
    (verify_text "prog t\nattach syscall_enter\nldctx r0, lat_ns\nret\n");
  (* a multi-point program may only touch the intersection *)
  expect_reject "ctx must be legal at every attach point" "not whitelisted"
    (verify_text "prog t\nattach syscall_exit\nattach syscall_enter\nldctx r0, lat_ns\nret\n")

let test_reject_overlong_program () =
  let open Kprobe.Insn in
  let code = List.init 257 (fun _ -> Ld (0, Imm 0L)) in
  expect_reject "overlong program" "program too long"
    (Kprobe.Verifier.verify (direct_prog code))

let test_reject_foreign_map () =
  expect_reject "undeclared map" "not declared by program"
    (verify_text "prog t\nattach syscall_enter\ncount nope, 1\nret\n");
  expect_reject "map kind mismatch" "declared counter but used as hist"
    (verify_text
       "prog t\nattach syscall_enter\nmap counter c\nld r0, 1\nhist c, r0\nret\n")

let test_reject_uninitialised_register () =
  expect_reject "read before init" "read before initialisation"
    (verify_text "prog t\nattach syscall_enter\nadd r0, 1\nret\n");
  (* r1 is initialised on only one of the two paths reaching the read *)
  expect_reject "partial-path init" "read before initialisation"
    (verify_text
       "prog t\nattach syscall_enter\nld r0, 1\njeq r0, 0, +1\nld r1, 5\nadd r1, 1\nret\n");
  (* ...but initialising on both paths is fine *)
  match
    verify_text
      "prog t\nattach syscall_enter\nld r0, 1\nld r1, 2\njeq r0, 0, +1\nld r1, 5\nadd r1, 1\nret\n"
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "both-path init rejected: %s" e

let test_reject_structural () =
  expect_reject "no attach point" "has no attach point"
    (verify_text "prog t\nld r0, 1\nret\n");
  expect_reject "empty program" "empty program"
    (Kprobe.Verifier.verify (direct_prog []));
  (match Kprobe.Parse.parse "prog t\nattach syscall_enter\nfrobnicate r0\n" with
  | Ok _ -> Alcotest.fail "parser accepted an unknown mnemonic"
  | Error e -> check "parse error names the line" true (contains e "line"));
  match Kprobe.Parse.parse "attach syscall_enter\nret\n" with
  | Ok _ -> Alcotest.fail "parser accepted a nameless program"
  | Error e -> check "missing prog directive" true (contains e "missing 'prog")

let test_templates_all_verify () =
  fresh ();
  List.iter
    (fun name ->
      match Kprobe.Templates.by_name name with
      | None -> Alcotest.failf "template %s missing" name
      | Some text -> (
        match Kprobe.Registry.load_text text with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "template %s rejected: %s" name e))
    Kprobe.Templates.names;
  check_int "all templates loaded" (List.length Kprobe.Templates.names)
    (List.length (Kprobe.Registry.list ()));
  Kprobe.Registry.reset ()

(* --- VM execution over synthetic fires --- *)

let vm_prog =
  {|prog t.vm
attach syscall_enter
map counter hits
map perkey by_nr
map hist lat
ldctx r0, nr
count hits, 1
upd by_nr, r0, 1
ld r1, 100
div r1, 0
ld r2, 1
lsl r2, 64
add r1, r2
hist lat, r1
ret
|}

let test_vm_exec_and_maps () =
  fresh ();
  (match Kprobe.Registry.load_text vm_prog with
  | Error e -> Alcotest.failf "vm prog rejected: %s" e
  | Ok _ -> ());
  Sim.Trace.fire Sim.Trace.P_syscall_enter (fun () -> [| 5L; 1L; 0L |]);
  Sim.Trace.fire Sim.Trace.P_syscall_enter (fun () -> [| 5L; 1L; 0L |]);
  Sim.Trace.fire Sim.Trace.P_syscall_enter (fun () -> [| 7L; 1L; 0L |]);
  let maps =
    match Kprobe.Registry.render_maps "t.vm" with
    | Some s -> s
    | None -> Alcotest.fail "program vanished"
  in
  check "counter counted every fire" true (contains maps "map hits (counter): 3");
  check "perkey keyed by nr" true (contains maps "5 -> 2");
  check "perkey second key" true (contains maps "7 -> 1");
  (* div-by-zero and a 64-bit shift both yield 0, not a trap: all three
     recorded latencies are 0. *)
  check "hist recorded the defined-zero values" true (contains maps "count 3");
  check "p50 of zeros is zero" true (contains maps "p50 0.000");
  Kprobe.Registry.reset ()

let test_ring_bounded () =
  fresh ();
  let text =
    "prog t.ring\nattach syscall_enter\nmap ring r\nldctx r0, nr\nldctx r1, pid\n\
     ring r, r0, r1\nret\n"
  in
  (match Kprobe.Registry.load_text text with
  | Error e -> Alcotest.failf "ring prog rejected: %s" e
  | Ok _ -> ());
  for i = 1 to 70 do
    Sim.Trace.fire Sim.Trace.P_syscall_enter (fun () ->
        [| Int64.of_int i; Int64.of_int (1000 + i); 0L |])
  done;
  let maps = Option.get (Kprobe.Registry.render_maps "t.ring") in
  check "ring capped at 64" true (contains maps "64 entries");
  check "overflow counted, oldest dropped" true (contains maps "6 dropped");
  check "oldest surviving entry is fire 7" true (contains maps "7 = 1007");
  check "newest entry survives" true (contains maps "70 = 1070");
  Kprobe.Registry.reset ()

let test_detached_fires_cost_nothing () =
  fresh ();
  let evaluated = ref false in
  Sim.Trace.fire Sim.Trace.P_blk_issue (fun () ->
      evaluated := true;
      [| 0L; 0L; 0L |]);
  check "fields thunk never built with nothing attached" false !evaluated;
  check "no consumers registered" false (Sim.Trace.any_attached ())

let test_emit_is_namespaced () =
  fresh ();
  let text =
    "prog t.emit\nattach syscall_enter\nmap counter c\nldctx r0, nr\nemit saw_nr, r0\n\
     count c, 1\nret\n"
  in
  (match Kprobe.Registry.load_text text with
  | Error e -> Alcotest.failf "emit prog rejected: %s" e
  | Ok _ -> ());
  Sim.Trace.enable Sim.Trace.Probe;
  Sim.Trace.fire Sim.Trace.P_syscall_enter (fun () -> [| 42L; 1L; 0L |]);
  (* the stat is namespaced under the program's name: confinement *)
  check_int "emit bumps <pname>.<label>" 1 (Sim.Stats.get "t.emit.saw_nr");
  check "trace record lands in the probe category" true
    (List.exists
       (fun r -> r.Sim.Trace.cat = Sim.Trace.Probe)
       (Sim.Trace.records ()));
  Kprobe.Registry.reset ();
  Sim.Trace.reset ()

(* --- Watchdogs --- *)

let test_hung_task_watchdog_catches_hang () =
  let o = Apps.Chaos.hang_run ~hog_ms:100 () in
  check "watchdog fired on the injected hang" true (o.Apps.Chaos.wd_fired > 0);
  check_int "victim still completed once rescued" 0 o.Apps.Chaos.victim_rc;
  check "wait histogram saw the starvation" true
    (contains o.Apps.Chaos.wd_maps "map wait_ms (hist)")

let test_irq_storm_watchdog_synthetic () =
  fresh ();
  (match
     Kprobe.Registry.load_text (Option.get (Kprobe.Templates.by_name "watchdog.irq_storm"))
   with
  | Error e -> Alcotest.failf "irq_storm rejected: %s" e
  | Ok _ -> ());
  (* 300 deliveries of vector 40 inside one 1ms window: over the
     200-per-window threshold, so the sentinel must fire (and re-arm). *)
  for i = 1 to 300 do
    Sim.Trace.fire Sim.Trace.P_irq_entry (fun () -> [| 40L; Int64.of_int (1000 + i) |])
  done;
  check "storm sentinel fired" true (Sim.Stats.get "watchdog.irq_storm.fired" > 0);
  let maps = Option.get (Kprobe.Registry.render_maps "watchdog.irq_storm") in
  check "fired counter in maps" true (contains maps "map fired (counter): 1");
  Kprobe.Registry.reset ()

let test_syscall_slo_watchdog_end_to_end () =
  (* nanosleep(5ms) is far over the 1ms default budget; the SLO
     watchdog (installed by boot) must record the offender. *)
  let code =
    run_user (fun c ->
        ignore (Apps.Libc.nanosleep_us c 5000.);
        ignore (Apps.Libc.nanosleep_us c 5000.);
        0)
  in
  check_int "exit code" 0 code;
  check "SLO watchdog saw over-budget syscalls" true
    (Sim.Stats.get "watchdog.syscall_slo.fired" > 0);
  let maps = Option.get (Kprobe.Registry.render_maps "watchdog.syscall_slo") in
  check "offender ring populated" true (not (contains maps "0 entries"))

(* --- Syscall + /proc surface --- *)

let read_all c path =
  let fd = Apps.Libc.openf c path ~flags:0 ~mode:0 in
  if fd < 0 then None
  else begin
    let b = Buffer.create 1024 in
    let rec go () =
      let s = Apps.Libc.read_str c ~fd ~len:2048 in
      if s <> "" then begin
        Buffer.add_string b s;
        go ()
      end
    in
    go ();
    ignore (Apps.Libc.close c fd);
    Some (Buffer.contents b)
  end

let test_probe_syscalls () =
  let good =
    "prog user.counts\nattach syscall_enter\nmap perkey by_nr\nldctx r0, nr\n\
     upd by_nr, r0, 1\nret\n"
  in
  let bad = "prog user.bad\nattach syscall_enter\nldctx r0, lat_ns\nret\n" in
  let got_maps = ref "" and got_proc = ref "" and got_programs = ref "" in
  let code =
    run_user (fun c ->
        let id = Apps.Libc.probe_load c good in
        if id < 0 then 1
        else begin
          let rc_bad = Apps.Libc.probe_load c bad in
          if rc_bad <> -Aster.Errno.einval then 2
          else begin
            (* a few more syscalls for the attached program to observe *)
            ignore (Apps.Libc.getpid c);
            ignore (Apps.Libc.getpid c);
            match Apps.Libc.probe_read c "user.counts" with
            | Error _ -> 3
            | Ok maps -> (
              got_maps := maps;
              match Apps.Libc.probe_read c "user.gone" with
              | Ok _ -> 4
              | Error e when e <> Aster.Errno.enoent -> 5
              | Error _ -> (
                match read_all c "/proc/kprobe/user.counts/maps" with
                | None -> 6
                | Some proc_maps -> (
                  got_proc := proc_maps;
                  match read_all c "/proc/kprobe/programs" with
                  | None -> 7
                  | Some progs ->
                    got_programs := progs;
                    0)))
          end
        end)
  in
  check_int "exit code" 0 code;
  check "probe_read returned live map content" true (contains !got_maps "map by_nr (perkey)");
  check "the program observed its own loader's syscalls" true
    (contains !got_maps Printf.(sprintf "%d ->" Aster.Syscall_nr.probe_load));
  check "/proc/kprobe/<prog>/maps serves the same tables" true
    (contains !got_proc "map by_nr (perkey)");
  check "/proc/kprobe/programs lists the program" true (contains !got_programs "user.counts");
  check "/proc/kprobe/programs lists the watchdogs" true
    (contains !got_programs "watchdog.hung_task");
  check "rejection reason latched for the operator" true
    (contains !got_programs "last_error:")
  (* the reason itself names the broken whitelist *) ;
  check "last_error names the rejected field" true (contains !got_programs "not whitelisted")

let test_proc_kprobe_insns_disassembly () =
  let got = ref "" in
  let code =
    run_user (fun c ->
        match read_all c "/proc/kprobe/watchdog.hung_task/insns" with
        | None -> 1
        | Some s ->
          got := s;
          0)
  in
  check_int "exit code" 0 code;
  check "disassembly names the program" true (contains !got "watchdog.hung_task");
  check "disassembly lists instructions" true (contains !got "ldctx")

(* --- Satellite 1: writable /proc/ktrace --- *)

let test_proc_ktrace_writable () =
  let enabled_line s =
    (* the "enabled: <cats>" tail of the header line; the buffered and
       dropped counts before it legitimately drift between reads *)
    let line = match String.index_opt s '\n' with None -> s | Some i -> String.sub s 0 i in
    let marker = "enabled: " in
    let ml = String.length marker in
    let rec find i =
      if i + ml > String.length line then line
      else if String.sub line i ml = marker then
        String.sub line i (String.length line - i)
      else find (i + 1)
    in
    find 0
  in
  let failures = ref [] in
  let code =
    run_user (fun c ->
        let write_cmd cmd =
          let fd = Apps.Libc.openf c "/proc/ktrace" ~flags:1 ~mode:0 in
          if fd < 0 then -1000
          else begin
            let rc = Apps.Libc.write_str c ~fd cmd in
            ignore (Apps.Libc.close c fd);
            rc
          end
        in
        let header () =
          match read_all c "/proc/ktrace" with None -> "" | Some s -> enabled_line s
        in
        let expect_header cmd needle =
          if write_cmd cmd < 0 then failures := (cmd ^ ": write failed") :: !failures
          else begin
            let h = header () in
            if not (contains h needle) then
              failures := Printf.sprintf "%s: header %S lacks %S" cmd h needle :: !failures
          end
        in
        expect_header "none" "enabled: none";
        expect_header "syscall,blk" "enabled: syscall,blk";
        expect_header "+net" "net";
        expect_header "-syscall" "enabled: blk,net";
        expect_header "all" "probe";
        (* malformed commands fail with EINVAL and leave the mask alone *)
        let before = header () in
        if write_cmd "bogus_category" <> -Aster.Errno.einval then
          failures := "bogus category accepted" :: !failures;
        if write_cmd "+syscall,-bogus" <> -Aster.Errno.einval then
          failures := "bad incremental accepted" :: !failures;
        if header () <> before then failures := "failed write changed the mask" :: !failures;
        if write_cmd "none" < 0 then failures := "final none failed" :: !failures;
        0)
  in
  check_int "exit code" 0 code;
  (match !failures with
  | [] -> ()
  | fs -> Alcotest.fail (String.concat "; " (List.rev fs)));
  check_int "mask really reached the trace plane" 0 (Sim.Trace.mask_value ());
  Sim.Trace.reset ()

(* --- Satellite 3: /proc tables stay parseable after a chaos workload --- *)

let parse_kstat s =
  let lines = String.split_on_char '\n' s in
  List.iter
    (fun line ->
      if String.trim line <> "" && line <> Sim.Hist.summary_header then begin
        let toks =
          String.split_on_char ' ' line |> List.filter (fun t -> String.trim t <> "")
        in
        match toks with
        | [ _name; v ] -> (
          match int_of_string_opt v with
          | Some n when n >= 0 -> ()
          | Some n -> Alcotest.failf "kstat: negative counter %d in %S" n line
          | None -> Alcotest.failf "kstat: malformed counter row %S" line)
        | [ _name; count; p50; p90; p99; mx ] ->
          (match int_of_string_opt count with
          | Some n when n >= 0 -> ()
          | _ -> Alcotest.failf "kstat: malformed hist count in %S" line);
          List.iter
            (fun cell ->
              if cell <> "-" then
                match float_of_string_opt cell with
                | Some f when f >= 0. -> ()
                | _ -> Alcotest.failf "kstat: malformed hist cell %S in %S" cell line)
            [ p50; p90; p99; mx ]
        | _ -> Alcotest.failf "kstat: unexpected row shape %S" line
      end)
    lines

let parse_kprof s =
  match String.split_on_char '\n' s with
  | [] -> Alcotest.fail "kprof: empty"
  | header :: body ->
    check "kprof header present" true (contains header "# kprof:");
    List.iter
      (fun line ->
        if String.trim line <> "" then
          match String.rindex_opt line ' ' with
          | None -> Alcotest.failf "kprof: malformed folded row %S" line
          | Some i -> (
            let stack = String.sub line 0 i in
            let cycles = String.sub line (i + 1) (String.length line - i - 1) in
            match int_of_string_opt cycles with
            | Some n when n > 0 && stack <> "" -> ()
            | _ -> Alcotest.failf "kprof: malformed folded row %S" line))
      body

let parse_faults s =
  List.iter
    (fun line ->
      if String.trim line <> "" && line <> "per-site injections:" then begin
        let toks =
          String.split_on_char ' ' line |> List.filter (fun t -> String.trim t <> "")
        in
        match toks with
        | [ _site; v ] -> (
          match int_of_string_opt v with
          | Some n when n >= 0 -> ()
          | _ -> Alcotest.failf "faults: malformed row %S" line)
        | _ -> Alcotest.failf "faults: unexpected row shape %S" line
      end)
    (String.split_on_char '\n' s)

let test_proc_tables_parse_after_chaos () =
  Sim.Prof.enable ();
  ignore (boot ());
  Sim.Fault.configure ~seed:7L [ ("blk.delay", 0.05); ("blk.io_error", 0.02) ];
  let kstat = ref "" and kprof = ref "" and faults = ref "" in
  let result = ref None in
  ignore
    (Aster.Process.spawn_kernel_style ~name:"test" (fun uapi ->
         let c = Apps.Libc.make uapi in
         let fd = Apps.Libc.openf c "/ext2/chaos.dat" ~flags:0o102 ~mode:0o644 in
         let rc =
           if fd < 0 then 1
           else begin
             let b = Bytes.make 4096 'y' in
             for _ = 1 to 24 do
               ignore (Apps.Libc.write c ~fd ~vaddr:(Apps.Libc.put_bytes c b) ~len:4096)
             done;
             ignore (Apps.Libc.fsync c fd);
             ignore (Apps.Libc.close c fd);
             match
               ( read_all c "/proc/kstat",
                 read_all c "/proc/kprof",
                 read_all c "/proc/faults" )
             with
             | Some a, Some b', Some f ->
               kstat := a;
               kprof := b';
               faults := f;
               0
             | _ -> 2
           end
         in
         result := Some rc;
         rc));
  Aster.Kernel.run ();
  Sim.Fault.disable ();
  Sim.Prof.disable ();
  check_int "exit code" 0 (match !result with Some rc -> rc | None -> -1);
  check "kstat non-empty" true (String.length !kstat > 0);
  parse_kstat !kstat;
  parse_kprof !kprof;
  check "faults quartet present" true (contains !faults "injected");
  parse_faults !faults

(* --- Satellite 2: typed empty-histogram percentiles --- *)

let test_empty_hist_percentile_is_none () =
  let h = Sim.Hist.create () in
  (match Sim.Hist.percentile h 99. with
  | None -> ()
  | Some v -> Alcotest.failf "empty histogram produced p99=%f" v);
  (match Sim.Hist.percentile_exn h 99. with
  | exception Invalid_argument _ -> ()
  | v -> Alcotest.failf "percentile_exn on empty histogram returned %f" v);
  check "summary renders '-' cells for empty" true
    (contains (Sim.Hist.summary_line "empty" h) "-");
  Sim.Hist.record h 10.;
  match Sim.Hist.percentile h 50. with
  | Some _ -> ()
  | None -> Alcotest.fail "non-empty histogram must produce percentiles"

(* --- Determinism --- *)

(* One fio-style run with [extra] template programs staged at boot;
   returns (rendered maps of every loaded program, virtual end time). *)
let probed_run ~detach ~extra () =
  Aster.Kernel.boot_probes := List.filter_map Kprobe.Templates.by_name extra;
  ignore (boot ());
  Aster.Kernel.boot_probes := [];
  if detach then Kprobe.Registry.reset ();
  let result = ref None in
  ignore
    (Aster.Process.spawn_kernel_style ~name:"fio" (fun uapi ->
         let c = Apps.Libc.make uapi in
         ignore (Apps.Fio.run c ~file:"/ext2/det.dat" ~mbytes:1);
         result := Some 0;
         0));
  Aster.Kernel.run ();
  check "workload finished" true (!result = Some 0);
  let maps =
    String.concat ""
      (List.map
         (fun n ->
           match Kprobe.Registry.render_maps n with
           | Some s -> Printf.sprintf "-- %s --\n%s" n s
           | None -> "")
         (Kprobe.Registry.list ()))
  in
  (maps, Sim.Clock.now ())

let test_attached_same_seed_byte_identical () =
  let m1, t1 = probed_run ~detach:false ~extra:[ "blk.lat"; "syscall.count" ] () in
  let m2, t2 = probed_run ~detach:false ~extra:[ "blk.lat"; "syscall.count" ] () in
  check_str "rendered maps byte-identical across same-seed runs" m1 m2;
  check "virtual end times identical" true (Int64.equal t1 t2);
  check "probes actually observed the run" true (contains m1 "map lat_us (hist): count")

let test_detached_matches_baseline_virtual_time () =
  let _, t_watchdogs = probed_run ~detach:false ~extra:[] () in
  let detached_maps, t_detached = probed_run ~detach:true ~extra:[] () in
  check_str "detached run has no programs" "" detached_maps;
  check "watchdogs attached vs fully detached: same virtual end time" true
    (Int64.equal t_watchdogs t_detached)

(* Positive case for the EXPERIMENTS.md worked recipe: the canned
   single-threaded workloads never read while the journal commits, so
   read_lat_by_fd legitimately renders 0 keys there. Here a reader
   races a committer — the committer blocks in Block.sync mid-commit,
   the reader's read(2) runs while Jbd.is_committing, and the
   journal_commit ctx flag lets the probe key the latency by fd. *)
let test_read_lat_by_fd_commit_overlap () =
  fresh ();
  ignore (boot ());
  (match Kprobe.Templates.by_name "read_lat_by_fd" with
  | None -> Alcotest.fail "read_lat_by_fd template missing"
  | Some text -> (
    match Kprobe.Registry.load_text text with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "template rejected: %s" e));
  let committer_done = ref false in
  (* The reader is spawned FIRST and creates its file before the
     journal storm starts: a journaled create would otherwise park on
     the commit gate (which only wakes while the next commit is already
     in flight) and serialize the whole reader behind the committer.
     The read loop itself takes no journal handles, so it interleaves
     with commit windows freely. *)
  ignore
    (Aster.Process.spawn_kernel_style ~name:"reader" (fun uapi ->
         let c = Apps.Libc.make uapi in
         let wfd = Apps.Libc.openf c "/ext2/victim.bin" ~flags:0o101 ~mode:0o644 in
         ignore (Apps.Libc.write_str c ~fd:wfd (String.make 4096 'r'));
         ignore (Apps.Libc.close c wfd);
         let fd = Apps.Libc.openf c "/ext2/victim.bin" ~flags:0 ~mode:0 in
         let budget = ref 5000 in
         while (not !committer_done) && !budget > 0 do
           decr budget;
           ignore (Apps.Libc.lseek c ~fd ~off:0 ~whence:0);
           ignore (Apps.Libc.read_str c ~fd ~len:4096);
           ignore (Apps.Libc.nanosleep_us c 5.)
         done;
         ignore (Apps.Libc.close c fd);
         0));
  ignore
    (Aster.Process.spawn_kernel_style ~name:"committer" (fun uapi ->
         let c = Apps.Libc.make uapi in
         let fd = Apps.Libc.openf c "/ext2/commits.bin" ~flags:0o101 ~mode:0o644 in
         let blob = String.make 4096 'j' in
         for _ = 1 to 16 do
           ignore (Apps.Libc.write_str c ~fd blob);
           ignore (Apps.Libc.fsync c fd)
         done;
         ignore (Apps.Libc.close c fd);
         committer_done := true;
         0));
  Aster.Kernel.run ();
  check "committer finished" true !committer_done;
  let maps =
    match Kprobe.Registry.render_maps "read_lat_by_fd" with
    | Some s -> s
    | None -> Alcotest.fail "program vanished from the registry"
  in
  check "some reads overlapped a commit" false
    (contains maps "map reads_in_commit (counter): 0");
  check "latency histogram keyed by the reader's fd" true
    (contains maps "map lat_us_by_fd (khist): 1 keys")

let () =
  Alcotest.run "kprobe"
    [
      ( "verifier",
        [
          Alcotest.test_case "backward_jump" `Quick test_reject_backward_jump;
          Alcotest.test_case "jump_overshoot" `Quick test_reject_jump_overshoot;
          Alcotest.test_case "oob_ctx_field" `Quick test_reject_oob_ctx_field;
          Alcotest.test_case "overlong_program" `Quick test_reject_overlong_program;
          Alcotest.test_case "foreign_map" `Quick test_reject_foreign_map;
          Alcotest.test_case "uninit_register" `Quick test_reject_uninitialised_register;
          Alcotest.test_case "structural" `Quick test_reject_structural;
          Alcotest.test_case "templates_verify" `Quick test_templates_all_verify;
        ] );
      ( "vm",
        [
          Alcotest.test_case "exec_and_maps" `Quick test_vm_exec_and_maps;
          Alcotest.test_case "ring_bounded" `Quick test_ring_bounded;
          Alcotest.test_case "detached_zero_cost" `Quick test_detached_fires_cost_nothing;
          Alcotest.test_case "emit_namespaced" `Quick test_emit_is_namespaced;
        ] );
      ( "watchdogs",
        [
          Alcotest.test_case "hung_task_catch" `Quick test_hung_task_watchdog_catches_hang;
          Alcotest.test_case "irq_storm" `Quick test_irq_storm_watchdog_synthetic;
          Alcotest.test_case "syscall_slo" `Quick test_syscall_slo_watchdog_end_to_end;
        ] );
      ( "surface",
        [
          Alcotest.test_case "probe_syscalls" `Quick test_probe_syscalls;
          Alcotest.test_case "proc_insns" `Quick test_proc_kprobe_insns_disassembly;
          Alcotest.test_case "ktrace_writable" `Quick test_proc_ktrace_writable;
          Alcotest.test_case "proc_tables_parse" `Quick test_proc_tables_parse_after_chaos;
          Alcotest.test_case "read_lat_in_commit" `Quick test_read_lat_by_fd_commit_overlap;
          Alcotest.test_case "empty_hist_percentile" `Quick test_empty_hist_percentile_is_none;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "attached_identical" `Quick test_attached_same_seed_byte_identical;
          Alcotest.test_case "detached_baseline" `Quick
            test_detached_matches_baseline_virtual_time;
        ] );
    ]
