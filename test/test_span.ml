(* kspan tests: span lifecycle and segment recording, auto syscall
   spans, fsync critical paths showing the journal commit, reservoir
   bounds, the span_begin/span_end syscall surface, the writable
   /proc/kstat reset, ktrace span tagging, and the plane's zero-cost /
   determinism invariants. *)

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let boot ?(profile = Sim.Profile.asterinas) () =
  let k = Aster.Kernel.boot ~profile () in
  Apps.Libc.install_child_resolver ();
  k

(* Run a user program as init and return its exit code. *)
let run_user ?profile body =
  ignore (boot ?profile ());
  let result = ref None in
  let wrapped uapi =
    let code = body (Apps.Libc.make uapi) in
    result := Some code;
    code
  in
  ignore (Aster.Process.spawn_kernel_style ~name:"test" wrapped);
  Aster.Kernel.run ();
  match !result with
  | Some code -> code
  | None -> Alcotest.fail "user program did not finish"

(* Every test leaves the plane the way it found it (off): enable is
   sticky configuration that survives boot, like the ktrace mask. *)
let with_span ?(auto = false) f =
  Sim.Span.enable ();
  Sim.Span.set_auto auto;
  Fun.protect
    ~finally:(fun () ->
      Sim.Span.disable ();
      Sim.Span.set_auto false)
    f

(* --- Lifecycle and segments --- *)

let test_annotate_records_segments () =
  with_span (fun () ->
      let code =
        run_user (fun c ->
            Sim.Span.annotate_begin ~cls:"unit" ~name:"req";
            let fd = Apps.Libc.openf c "/tmp/span.txt" ~flags:0o101 ~mode:0o644 in
            ignore (Apps.Libc.write_str c ~fd "span payload");
            ignore (Apps.Libc.close c fd);
            Sim.Span.annotate_end ();
            0)
      in
      check_int "exit code" 0 code;
      check_int "one finished span" 1 (Sim.Span.finished_count ());
      check_int "no live spans leaked" 0 (Sim.Span.live_count ());
      Alcotest.(check (list string)) "class recorded" [ "unit" ] (Sim.Span.classes ());
      match Sim.Span.tail "unit" with
      | [ info ] ->
        check "span has wall time" true (Int64.compare info.Sim.Span.i_dur 0L > 0);
        check "span has segments" true (info.Sim.Span.i_segs <> []);
        check "critical path is non-empty" true (info.Sim.Span.i_path <> []);
        (* The critical path plus the residual must sum exactly to the
           span's wall time — that is the decomposition invariant. *)
        let path_sum =
          List.fold_left (fun a (_, c) -> Int64.add a c) 0L info.Sim.Span.i_path
        in
        check "path + residual = wall time" true
          (Int64.equal (Int64.add path_sum info.Sim.Span.i_residual) info.Sim.Span.i_dur);
        (* On-CPU user work must dominate this trivial request. *)
        check "cpu segments attributed" true
          (List.exists (fun (l, _) -> String.starts_with ~prefix:"cpu." l) info.Sim.Span.i_path)
      | other -> Alcotest.failf "expected 1 reservoir span, got %d" (List.length other))

let test_spans_do_not_nest () =
  with_span (fun () ->
      let inner = ref (-1) in
      let code =
        run_user (fun _c ->
            Sim.Span.annotate_begin ~cls:"outer" ~name:"a";
            (* A second boundary on the same task must not open a span:
               the outermost boundary owns the request. *)
            inner := Sim.Span.begin_ ~cls:"inner" ~name:"b";
            Sim.Clock.charge 1000;
            Sim.Span.annotate_end ();
            0)
      in
      check_int "exit code" 0 code;
      check_int "inner begin_ refused" 0 !inner;
      Alcotest.(check (list string)) "only the outer class" [ "outer" ] (Sim.Span.classes ()))

(* --- Auto syscall spans --- *)

let test_auto_syscall_spans () =
  with_span ~auto:true (fun () ->
      let code =
        run_user (fun c ->
            let fd = Apps.Libc.openf c "/tmp/auto.txt" ~flags:0o101 ~mode:0o644 in
            ignore (Apps.Libc.write_str c ~fd "x");
            ignore (Apps.Libc.close c fd);
            0)
      in
      check_int "exit code" 0 code;
      check "auto spans recorded" true (Sim.Span.finished_count () > 0);
      let classes = Sim.Span.classes () in
      check "per-syscall classes" true (List.mem "sys.open" classes);
      check "write class too" true (List.mem "sys.write" classes))

let test_fsync_span_shows_journal_commit () =
  (* An fsync on the journaled ext2 must carry the jbd commit (with its
     FUA barrier) as a named segment of the request's critical path. *)
  with_span ~auto:true (fun () ->
      let code =
        run_user (fun c ->
            let fd = Apps.Libc.openf c "/ext2/span.dat" ~flags:0o102 ~mode:0o644 in
            if fd < 0 then 1
            else begin
              let buf = Apps.Libc.ualloc c 4096 in
              ignore (Apps.Libc.pwrite c ~fd ~vaddr:buf ~len:4096 ~off:0);
              let rc = Apps.Libc.fsync c fd in
              ignore (Apps.Libc.close c fd);
              if rc = 0 then 0 else 2
            end)
      in
      check_int "exit code" 0 code;
      match Sim.Span.tail "sys.fsync" with
      | [] -> Alcotest.fail "no fsync span recorded"
      | info :: _ ->
        let seg_labels = List.map (fun (l, _, _) -> l) info.Sim.Span.i_segs in
        check "fsync span carries jbd.commit" true (List.mem "jbd.commit" seg_labels);
        check "and the block service leg" true
          (List.exists
             (fun l -> String.starts_with ~prefix:"blk." l)
             seg_labels))

(* --- Reservoir bounds --- *)

let test_reservoir_bounded () =
  with_span (fun () ->
      let n = 200 in
      let code =
        run_user (fun _c ->
            for i = 1 to n do
              Sim.Span.annotate_begin ~cls:"burst" ~name:"req";
              (* Varying durations so the reservoir must actually rank. *)
              Sim.Clock.charge (100 + (i * 7 mod 997));
              Sim.Span.annotate_end ()
            done;
            0)
      in
      check_int "exit code" 0 code;
      check_int "every span aggregated" n (Sim.Span.class_count "burst");
      let kept = Sim.Span.tail "burst" in
      check "reservoir keeps at most 64" true (List.length kept <= 64);
      check "reservoir is not empty" true (kept <> []);
      (* Slowest-first, and the kept spans are genuinely the tail. *)
      let durs = List.map (fun i -> i.Sim.Span.i_dur) kept in
      let sorted_desc = List.sort (fun a b -> Int64.compare b a) durs in
      check "tail is sorted slowest-first" true (durs = sorted_desc);
      match Sim.Span.class_p99 "burst" with
      | None -> Alcotest.fail "no p99 span"
      | Some p99 ->
        check "p99 span has wall time" true (Int64.compare p99.Sim.Span.i_dur 0L > 0))

(* --- The syscall surface --- *)

let test_span_syscalls () =
  with_span (fun () ->
      let id = ref 0 in
      let bad_cls = ref 0 in
      let bad_id = ref 0 in
      let code =
        run_user (fun c ->
            id := Apps.Libc.span_begin c ~cls:"api" ~name:"call";
            Sim.Clock.charge 2000;
            let rc = Apps.Libc.span_end c !id in
            bad_cls := Apps.Libc.span_begin c ~cls:"" ~name:"x";
            bad_id := Apps.Libc.span_end c (-3);
            rc)
      in
      check_int "span_end ok" 0 code;
      check "span_begin returned an id" true (!id > 0);
      check_int "empty class is EINVAL" (-Aster.Errno.einval) !bad_cls;
      check_int "negative id is EINVAL" (-Aster.Errno.einval) !bad_id;
      check_int "the span finished" 1 (Sim.Span.class_count "api"))

let test_span_disabled_is_inert () =
  Sim.Span.disable ();
  let id = ref (-1) in
  let code =
    run_user (fun c ->
        id := Apps.Libc.span_begin c ~cls:"off" ~name:"x";
        Apps.Libc.span_end c !id)
  in
  check_int "exit code" 0 code;
  check_int "disabled begin returns 0" 0 !id;
  check_int "nothing recorded" 0 (Sim.Span.finished_count ())

(* --- Writable /proc/kstat (satellite: echo reset > /proc/kstat) --- *)

let test_proc_kstat_reset () =
  let wrote = ref 0 in
  let bad = ref 0 in
  let before = ref 0 in
  let after = ref (-1) in
  let code =
    run_user (fun c ->
        (* Force block traffic so blk.doorbell is provably nonzero,
           then reset through procfs and sample it again immediately
           (nothing between the write and the sample touches a disk). *)
        let fd = Apps.Libc.openf c "/ext2/k.txt" ~flags:0o102 ~mode:0o644 in
        ignore (Apps.Libc.write_str c ~fd "counters");
        ignore (Apps.Libc.fsync c fd);
        ignore (Apps.Libc.close c fd);
        let p = Apps.Libc.openf c "/proc/kstat" ~flags:0o1 ~mode:0 in
        if p < 0 then 1
        else begin
          bad := Apps.Libc.write_str c ~fd:p "no-such-command";
          before := Sim.Stats.get "blk.doorbell";
          wrote := Apps.Libc.write_str c ~fd:p "reset\n";
          after := Sim.Stats.get "blk.doorbell";
          ignore (Apps.Libc.close c p);
          0
        end)
  in
  check_int "exit code" 0 code;
  check_int "malformed command is EINVAL" (-Aster.Errno.einval) !bad;
  check "valid reset accepted" true (!wrote > 0);
  (* [before] is sampled after the malformed write: EINVAL must leave
     the counters untouched (validate-before-apply). *)
  check "malformed write zeroed nothing" true (!before > 0);
  check_int "reset zeroed the counters" 0 !after

(* --- ktrace records carry the active span id --- *)

let test_ktrace_records_tagged_with_span () =
  Sim.Trace.reset ();
  with_span ~auto:true (fun () ->
      Sim.Trace.set_capacity 65536;
      Sim.Trace.enable Sim.Trace.Syscall;
      let code =
        run_user (fun c ->
            let fd = Apps.Libc.openf c "/tmp/tagged.txt" ~flags:0o101 ~mode:0o644 in
            ignore (Apps.Libc.write_str c ~fd "y");
            ignore (Apps.Libc.close c fd);
            0)
      in
      check_int "exit code" 0 code;
      let is_tagged r =
        let args = r.Sim.Trace.args in
        let tag = "span=" in
        let tl = String.length tag in
        let al = String.length args in
        let rec scan i = i + tl <= al && (String.sub args i tl = tag || scan (i + 1)) in
        scan 0
      in
      let tagged = List.length (List.filter is_tagged (Sim.Trace.records ())) in
      Sim.Trace.reset ();
      check "syscall records carry span ids" true (tagged > 0))

(* --- Zero cost and determinism --- *)

let bw_tcp_row () = Apps.Lmbench.find "bw_tcp 64k (virtio)"

let test_span_on_same_virtual_time () =
  (* Span tracking must never charge virtual cycles or consume
     randomness: the same run, spans off and spans on, finishes at the
     same virtual timestamp. *)
  Sim.Span.disable ();
  ignore ((bw_tcp_row ()).Apps.Lmbench.run Sim.Profile.asterinas);
  let off_end = Sim.Clock.now () in
  let nspans =
    with_span ~auto:true (fun () ->
        ignore ((bw_tcp_row ()).Apps.Lmbench.run Sim.Profile.asterinas);
        Sim.Span.finished_count ())
  in
  let on_end = Sim.Clock.now () in
  check "span tracking is free in virtual time" true (Int64.equal off_end on_end);
  check "and spans actually recorded" true (nspans > 0)

let test_same_seed_identical_span_reports () =
  (* Same-seed chaos runs with spans on: byte-identical ktrace output
     (span tags included) and byte-identical /proc/kspan rendering. *)
  let one () =
    Sim.Trace.reset ();
    Sim.Trace.set_capacity 4096;
    List.iter Sim.Trace.enable Sim.Trace.all_categories;
    with_span ~auto:true (fun () ->
        let o = Apps.Chaos.run ~seed:7L () in
        let trace = Sim.Trace.render () in
        let report = Sim.Span.render_proc () in
        let finished = Sim.Span.finished_count () in
        Sim.Trace.reset ();
        (o.Apps.Chaos.completed, trace, report, finished))
  in
  let c1, t1, r1, f1 = one () in
  let c2, t2, r2, f2 = one () in
  check "spans were recorded" true (f1 > 0);
  check_int "same workload outcome" c1 c2;
  check_int "same span population" f1 f2;
  check "byte-identical traces under spans" true (String.equal t1 t2);
  check "byte-identical span reports" true (String.equal r1 r2)

let test_critical_path_attribution_bound () =
  (* The acceptance bar: tail spans must attribute at least 95% of
     their wall time to named segments. *)
  with_span ~auto:true (fun () ->
      let code =
        run_user (fun c ->
            let fd = Apps.Libc.openf c "/ext2/attr.dat" ~flags:0o102 ~mode:0o644 in
            let buf = Apps.Libc.ualloc c 4096 in
            for i = 0 to 63 do
              ignore (Apps.Libc.pwrite c ~fd ~vaddr:buf ~len:4096 ~off:(i * 4096))
            done;
            ignore (Apps.Libc.fsync c fd);
            ignore (Apps.Libc.close c fd);
            0)
      in
      check_int "exit code" 0 code;
      check "spans recorded" true (Sim.Span.finished_count () > 0);
      let worst = Sim.Span.max_residual_frac () in
      if worst >= 0.05 then
        Alcotest.failf "worst unattributed fraction %.4f >= 0.05" worst)

let () =
  Alcotest.run "span"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "annotate_records_segments" `Quick test_annotate_records_segments;
          Alcotest.test_case "spans_do_not_nest" `Quick test_spans_do_not_nest;
          Alcotest.test_case "auto_syscall_spans" `Quick test_auto_syscall_spans;
          Alcotest.test_case "fsync_shows_jbd_commit" `Quick test_fsync_span_shows_journal_commit;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "reservoir_bounded" `Quick test_reservoir_bounded;
          Alcotest.test_case "attribution_bound" `Quick test_critical_path_attribution_bound;
        ] );
      ( "surface",
        [
          Alcotest.test_case "span_syscalls" `Quick test_span_syscalls;
          Alcotest.test_case "disabled_is_inert" `Quick test_span_disabled_is_inert;
          Alcotest.test_case "proc_kstat_reset" `Quick test_proc_kstat_reset;
          Alcotest.test_case "ktrace_span_tags" `Quick test_ktrace_records_tagged_with_span;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "span_on_same_virtual_time" `Quick test_span_on_same_virtual_time;
          Alcotest.test_case "same_seed_identical_reports" `Quick
            test_same_seed_identical_span_reports;
        ] );
    ]
