(* epoll + wait-queue readiness: differential conformance suite.

   The readiness layer makes one promise in two halves:
   - epoll_wait in level-triggered mode must agree with poll(2), fd for
     fd and bit for bit, under any interleaving of writes, drains and
     closes (no lost wakeups, no phantom readiness);
   - edge-triggered mode must fire exactly once per level transition
     (no spurious ET events), with ONESHOT disarm/rearm and unmaskable
     ERR/HUP layered on top.

   The suites here pin both halves: a randomized differential driver
   compares the two interfaces step by step over pipes and unix
   socketpairs; an ET/ONESHOT matrix checks transition semantics
   including peer close (FIN) and abortive reset (RST); the timer wheel
   is checked against a naive sorted-list oracle; the epoll/poll
   timeout paths must return at the exact virtual deadline without
   busy-looping; and an "epoll-churn" chaos group runs the c10k
   edge-triggered server under injected TX faults with connection
   churn, asserting liveness and same-seed byte-identical schedules. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

module L = Apps.Libc

let boot () = Apps.Runner.boot ~profile:Sim.Profile.asterinas

(* --- Timer wheel vs naive sorted-list oracle --- *)

let wheel_oracle seed () =
  ignore (boot ());
  let w = Aster.Timer_wheel.the () in
  let rng = Sim.Rng.create seed in
  let n = 200 in
  let fired = ref [] in
  let deadlines = Array.make n 0L in
  let handles = Array.make n None in
  let cancelled = Array.make n false in
  let expected = ref n in
  let t_armed = ref 0L in
  let done_wq = Ostd.Wait_queue.create () in
  (* Arm from a settled task and block until the last callback: firing
     exactness is a property of an idle CPU, and the arming loop itself
     charges timer_program cycles per arm, pushing the clock past the
     shortest deadlines before anything can fire. *)
  Apps.Runner.spawn ~name:"oracle" (fun _c ->
      Ostd.Task.sleep_us 1000.;
      for i = 0 to n - 1 do
        (* Mixed magnitudes so every wheel level and the cascade path
           are exercised: sub-tick, level-0, mid-level, and ~200 ms
           out. *)
        let delta =
          match Sim.Rng.int rng 4 with
          | 0 -> 1 + Sim.Rng.int rng 2048
          | 1 -> 1 + Sim.Rng.int rng 65536
          | 2 -> 1 + Sim.Rng.int rng 2_000_000
          | _ -> 1 + Sim.Rng.int rng 600_000_000
        in
        let deadline = Int64.add (Sim.Clock.now ()) (Int64.of_int delta) in
        deadlines.(i) <- deadline;
        handles.(i) <-
          Some
            (Aster.Timer_wheel.arm w ~deadline (fun () ->
                 fired := (i, Sim.Clock.now ()) :: !fired;
                 if List.length !fired >= !expected then
                   ignore (Ostd.Wait_queue.wake_all done_wq : int)))
      done;
      for i = 0 to n - 1 do
        if Sim.Rng.int rng 3 = 0 then begin
          (match handles.(i) with Some tm -> Aster.Timer_wheel.cancel w tm | None -> ());
          cancelled.(i) <- true
        end
      done;
      expected := Array.to_list cancelled |> List.filter not |> List.length;
      t_armed := Sim.Clock.now ();
      Ostd.Wait_queue.sleep_until done_wq (fun () -> List.length !fired >= !expected);
      0);
  Apps.Runner.run ();
  let got = List.rev !fired in
  (* Oracle: a naive sorted list fires live timers in (deadline, arm
     order); cancelled ones never fire. Deadlines the arming loop
     already overran clamp to its end (nothing fires in the past). *)
  let expect =
    List.init n (fun i -> i)
    |> List.filter (fun i -> not cancelled.(i))
    |> List.map (fun i -> (deadlines.(i), i))
    |> List.sort compare
  in
  check_int "every live timer fired exactly once" (List.length expect) (List.length got);
  let exact = ref 0 and unclamped = ref 0 in
  List.iter2
    (fun (d, i) (gi, at) ->
      check_int "fired in (deadline, arm-order)" i gi;
      if Int64.compare d !t_armed >= 0 then begin
        incr unclamped;
        if Int64.equal at d then incr exact
      end;
      let eff = if Int64.compare d !t_armed < 0 then !t_armed else d in
      let lag = Int64.sub at eff in
      (* Never early; never anywhere near a tick (2048 cycles) late.
         The residual lag is event-collision overhead — a sched_pick
         charge or a lazily-cancelled timer's spurious wakeup landing
         within ~100 cycles before the deadline — not tick rounding. *)
      check "never early, lag well under a tick" true
        (Int64.compare lag 0L >= 0 && Int64.compare lag 512L < 0))
    expect got;
  (* The strong exactness claim: away from collisions, callbacks run on
     the precise deadline cycle (timers remember exact deadlines; slots
     only place). *)
  check "dominant majority fire on the exact cycle" true (!exact * 4 >= !unclamped * 3)

let wheel_edge_cases () =
  ignore (boot ());
  let w = Aster.Timer_wheel.the () in
  let t0 = Sim.Clock.now () in
  let fired_zero = ref (-1L) and fired_past = ref (-1L) in
  ignore (Aster.Timer_wheel.arm_after w ~cycles:0 (fun () -> fired_zero := Sim.Clock.now ()));
  check "zero-delay timer never fires inside arm()" true (Int64.equal !fired_zero (-1L));
  ignore
    (Aster.Timer_wheel.arm w ~deadline:(Int64.sub t0 5000L) (fun () ->
         fired_past := Sim.Clock.now ()));
  check "already-expired timer never fires inside arm()" true (Int64.equal !fired_past (-1L));
  Aster.Kernel.run ();
  check "zero-delay timer fired" true (Int64.compare !fired_zero 0L > 0);
  check "already-expired timer fired" true (Int64.compare !fired_past 0L > 0);
  check "both fired promptly, clamped to now" true
    (Sim.Clock.to_us (Int64.sub !fired_zero t0) < 1.0
    && Sim.Clock.to_us (Int64.sub !fired_past t0) < 1.0)

(* --- Timeout paths: exact virtual deadline, no busy loop --- *)

let epoll_timeout_exact () =
  ignore (boot ());
  let dt = ref nan and ret = ref (-1) in
  Apps.Runner.spawn ~name:"tmo" (fun c ->
      let r, _w = Result.get_ok (L.pipe c) in
      let ep = L.epoll_create1 c in
      ignore (L.epoll_ctl c ~epfd:ep ~op:L.epoll_ctl_add ~fd:r ~events:L.epollin ~data:1L);
      let t0 = Sim.Clock.now () in
      (match L.epoll_wait c ~epfd:ep ~maxevents:8 ~timeout_ms:3 with
      | Ok (n, _) -> ret := n
      | Error _ -> ret := -2);
      dt := Sim.Clock.to_us (Int64.sub (Sim.Clock.now ()) t0);
      0);
  Apps.Runner.run ();
  check_int "timed-out epoll_wait reports 0 fds" 0 !ret;
  (* The wheel fires at the exact deadline; only the sub-µs wake +
     syscall-exit overhead sits between it and the caller's clock. *)
  check "returns at the virtual deadline" true (!dt >= 3000.0 && !dt < 3001.0)

let poll_timeout_exact_no_spin () =
  ignore (boot ());
  let dt = ref nan and ret = ref (-1) and switches = ref max_int in
  Apps.Runner.spawn ~name:"ptmo" (fun c ->
      let r, _w = Result.get_ok (L.pipe c) in
      let s0 = Ostd.Task.context_switches () in
      let t0 = Sim.Clock.now () in
      (match L.poll c [ (r, L.pollin) ] ~timeout_ms:5 with
      | Ok (n, _) -> ret := n
      | Error _ -> ret := -2);
      dt := Sim.Clock.to_us (Int64.sub (Sim.Clock.now ()) t0);
      switches := Ostd.Task.context_switches () - s0;
      0);
  Apps.Runner.run ();
  check_int "timed-out poll reports 0 fds" 0 !ret;
  check "returns at the virtual deadline" true (!dt >= 5000.0 && !dt < 5001.0);
  (* The old sys_poll busy-looped (yield per scan: thousands of
     switches over 5 ms). Blocking on the wait queue takes a handful. *)
  check "poll blocks on the wait queue instead of spinning" true (!switches <= 10)

(* --- poll(2) regressions: POLLNVAL, POLLHUP --- *)

let poll_closed_fd_pollnval () =
  ignore (boot ());
  let code = ref (-1) in
  Apps.Runner.spawn ~name:"nval" (fun c ->
      let r, w = Result.get_ok (L.pipe c) in
      ignore (L.close c r);
      (match L.poll c [ (r, L.pollin); (w, L.pollout) ] ~timeout_ms:(-1) with
      | Ok (2, [ (_, rr); (_, wr) ]) ->
        if rr <> L.pollnval then code := 1
        else if wr land L.pollout = 0 then code := 2
        else code := 0
      | Ok _ -> code := 3
      | Error _ -> code := 4);
      0);
  Apps.Runner.run ();
  check_int "closed fd polls POLLNVAL, open fd still levels" 0 !code

let poll_eof_pollhup () =
  ignore (boot ());
  let code = ref (-1) in
  Apps.Runner.spawn ~name:"hup" (fun c ->
      let r, w = Result.get_ok (L.pipe c) in
      ignore (L.write_str c ~fd:w "x");
      ignore (L.close c w);
      (match L.poll c [ (r, L.pollin) ] ~timeout_ms:0 with
      | Ok (1, [ (_, rr) ]) when rr = L.pollin lor L.pollhup ->
        (* Drain the byte: EOF with no data is POLLHUP alone, and it is
           reported even though only POLLIN was requested. *)
        ignore (L.read_str c ~fd:r ~len:16);
        (match L.poll c [ (r, 0) ] ~timeout_ms:0 with
        | Ok (1, [ (_, rr') ]) when rr' = L.pollhup -> code := 0
        | Ok (_, [ (_, rr') ]) -> code := 100 + rr'
        | _ -> code := 5)
      | Ok (_, [ (_, rr) ]) -> code := 200 + rr
      | _ -> code := 6);
      0);
  Apps.Runner.run ();
  check_int "EOF'd pipe polls POLLIN|POLLHUP then bare POLLHUP" 0 !code

(* --- Differential: epoll_wait(LT) == poll(2), randomized schedules --- *)

let diff_run seed =
  ignore (boot ());
  let log = ref [] in
  let mismatches = ref [] in
  Apps.Runner.spawn ~name:"diff" (fun c ->
      let rng = Sim.Rng.create seed in
      let npipes = 4 in
      let pr = Array.make npipes (-1) and pw = Array.make npipes (-1) in
      let buffered = Array.make npipes 0 in
      for i = 0 to npipes - 1 do
        let r, w = Result.get_ok (L.pipe c) in
        pr.(i) <- r;
        pw.(i) <- w
      done;
      let lfd = L.socket c ~domain:1 ~typ:1 in
      ignore (L.bind_unix c ~fd:lfd ~path:"/tmp/diffsock");
      ignore (L.listen c ~fd:lfd ~backlog:4);
      let sa = L.socket c ~domain:1 ~typ:1 in
      ignore (L.connect_unix c ~fd:sa ~path:"/tmp/diffsock");
      let sb = L.accept c ~fd:lfd in
      let sbuf_ab = ref 0 and sbuf_ba = ref 0 in
      (* One watched set drives both interfaces: the poll list is
         rebuilt from it each step, the epoll interest list tracks it
         via ADD on watch and close(2) auto-removal (EPOLLFREE) on
         unwatch — so the two kernels' views stay identical by
         construction and any divergence is a readiness bug. *)
      let smask = L.pollin lor L.pollout lor L.pollrdhup in
      let watched : (int, int) Hashtbl.t = Hashtbl.create 16 in
      let ep = L.epoll_create1 c in
      let watch fd mask =
        Hashtbl.replace watched fd mask;
        ignore (L.epoll_ctl c ~epfd:ep ~op:L.epoll_ctl_add ~fd ~events:mask ~data:(Int64.of_int fd))
      in
      let unwatch fd =
        Hashtbl.remove watched fd;
        ignore (L.close c fd)
      in
      for i = 0 to npipes - 1 do
        watch pr.(i) L.pollin;
        watch pw.(i) L.pollout
      done;
      watch sa smask;
      watch sb smask;
      let snapshot step =
        let fds = List.sort compare (Hashtbl.fold (fun fd m acc -> (fd, m) :: acc) watched []) in
        let pollset =
          match L.poll c fds ~timeout_ms:0 with
          | Error e -> [ (-1, e) ]
          | Ok (_, revs) -> List.filter (fun (_, r) -> r <> 0) revs
        in
        let epset =
          match L.epoll_wait c ~epfd:ep ~maxevents:32 ~timeout_ms:0 with
          | Error e -> [ (-1, e) ]
          | Ok (_, evs) -> List.sort compare (List.map (fun (d, ev) -> (Int64.to_int d, ev)) evs)
        in
        let show s = String.concat ";" (List.map (fun (fd, b) -> Printf.sprintf "%d:%x" fd b) s) in
        log := Printf.sprintf "step %d poll[%s] epoll[%s]" step (show pollset) (show epset) :: !log;
        if pollset <> epset then
          mismatches :=
            Printf.sprintf "step %d: poll[%s] <> epoll[%s]" step (show pollset) (show epset)
            :: !mismatches
      in
      snapshot (-1);
      for step = 0 to 79 do
        (match Sim.Rng.int rng 6 with
        | 0 | 1 ->
          let i = Sim.Rng.int rng npipes in
          if Hashtbl.mem watched pw.(i) then begin
            ignore (L.write_str c ~fd:pw.(i) "01234567");
            buffered.(i) <- buffered.(i) + 8
          end
        | 2 ->
          let i = Sim.Rng.int rng npipes in
          if Hashtbl.mem watched pr.(i) && (buffered.(i) > 0 || not (Hashtbl.mem watched pw.(i)))
          then begin
            let s = L.read_str c ~fd:pr.(i) ~len:5 in
            buffered.(i) <- max 0 (buffered.(i) - String.length s)
          end
        | 3 ->
          if Hashtbl.mem watched sa && Sim.Rng.bool rng then begin
            ignore (L.write_str c ~fd:sa "ping");
            sbuf_ab := !sbuf_ab + 4
          end
          else if Hashtbl.mem watched sb && (!sbuf_ab > 0 || not (Hashtbl.mem watched sa))
          then begin
            let s = L.read_str c ~fd:sb ~len:4096 in
            sbuf_ab := max 0 (!sbuf_ab - String.length s)
          end
        | 4 ->
          if step > 40 then begin
            let i = Sim.Rng.int rng npipes in
            if Hashtbl.mem watched pw.(i) then unwatch pw.(i)
            else if Hashtbl.mem watched pr.(i) then unwatch pr.(i)
          end
        | _ ->
          if step > 60 && Hashtbl.mem watched sa then begin
            ignore (!sbuf_ba);
            unwatch sa
          end);
        snapshot step
      done;
      0);
  Apps.Runner.run ();
  (List.rev !log, List.rev !mismatches)

let differential seed () =
  let _log, mm = diff_run seed in
  Alcotest.(check (list string)) "epoll(LT) and poll(2) agree at every step" [] mm

let differential_determinism () =
  let log1, _ = diff_run 42L in
  let log2, _ = diff_run 42L in
  Alcotest.(check (list string)) "same seed, byte-identical schedule log" log1 log2;
  let log3, _ = diff_run 7L in
  check "different seed, different schedule" true (log1 <> log3)

(* --- Byte-identical app payloads: epoll loop vs thread loop --- *)

let redis_replies mode =
  ignore (boot ());
  Apps.Mini_redis.spawn ~mode ();
  let replies = ref [] in
  Apps.Runner.spawn ~name:"rclient" (fun c ->
      let fd = L.socket c ~domain:2 ~typ:1 in
      let lo = Aster.Packet.ip_of_string "127.0.0.1" in
      let rec wait n =
        if L.connect_inet c ~fd ~ip:lo ~port:Apps.Mini_redis.port >= 0 then true
        else if n = 0 then false
        else begin
          ignore (L.nanosleep_us c 200.);
          wait (n - 1)
        end
      in
      if not (wait 50) then 1
      else begin
        List.iter
          (fun cmd ->
            ignore (L.write_str c ~fd (cmd ^ "\n"));
            replies := L.read_str c ~fd ~len:4096 :: !replies)
          [ "SET k v"; "GET k"; "INCR n"; "INCR n"; "RPUSH l a"; "RPUSH l b"; "LRANGE l 0 1";
            "APPEND k x"; "STRLEN k"; "GET missing"; "DEL k"; "EXISTS k" ];
        0
      end);
  Apps.Runner.run ();
  List.rev !replies

let app_payload_differential () =
  let th = redis_replies `Threads in
  let ep = redis_replies `Epoll in
  check_int "every command answered" 12 (List.length ep);
  Alcotest.(check (list string)) "byte-identical payloads, epoll vs thread loop" th ep

(* --- ET / ONESHOT semantics matrix --- *)

let et_fires_once_per_transition () =
  ignore (boot ());
  let code = ref (-1) in
  Apps.Runner.spawn ~name:"et" (fun c ->
      let r, w = Result.get_ok (L.pipe c) in
      let ep = L.epoll_create1 c in
      let wait0 () =
        match L.epoll_wait c ~epfd:ep ~maxevents:8 ~timeout_ms:0 with
        | Ok (n, _) -> n
        | Error _ -> -1
      in
      (* Pending level at ADD time is reported even for ET (Linux). *)
      ignore (L.write_str c ~fd:w "a");
      ignore
        (L.epoll_ctl c ~epfd:ep ~op:L.epoll_ctl_add ~fd:r
           ~events:(L.epollin lor L.epollet) ~data:1L);
      if wait0 () <> 1 then code := 1
      else if wait0 () <> 0 then code := 2 (* no transition, no re-report *)
      else begin
        ignore (L.write_str c ~fd:w "b");
        if wait0 () <> 1 then code := 3 (* fresh edge: fires again *)
        else if wait0 () <> 0 then code := 4
        else begin
          ignore (L.read_str c ~fd:r ~len:16);
          if wait0 () <> 0 then code := 5 (* drained, still nothing *)
          else begin
            ignore (L.write_str c ~fd:w "c");
            if wait0 () <> 1 then code := 6 else code := 0
          end
        end
      end;
      0);
  Apps.Runner.run ();
  check_int "ET fires exactly once per readability transition" 0 !code

let oneshot_disarm_rearm () =
  ignore (boot ());
  let code = ref (-1) in
  Apps.Runner.spawn ~name:"oneshot" (fun c ->
      let r, w = Result.get_ok (L.pipe c) in
      let ep = L.epoll_create1 c in
      let wait0 () =
        match L.epoll_wait c ~epfd:ep ~maxevents:8 ~timeout_ms:0 with
        | Ok (n, _) -> n
        | Error _ -> -1
      in
      ignore
        (L.epoll_ctl c ~epfd:ep ~op:L.epoll_ctl_add ~fd:r
           ~events:(L.epollin lor L.epolloneshot) ~data:1L);
      ignore (L.write_str c ~fd:w "a");
      if wait0 () <> 1 then code := 1
      else if wait0 () <> 0 then code := 2 (* disarmed after one report *)
      else begin
        ignore (L.write_str c ~fd:w "b");
        if wait0 () <> 0 then code := 3 (* still disarmed, even on new data *)
        else begin
          ignore
            (L.epoll_ctl c ~epfd:ep ~op:L.epoll_ctl_mod ~fd:r
               ~events:(L.epollin lor L.epolloneshot) ~data:1L);
          if wait0 () <> 1 then code := 4 (* MOD rearms against pending level *)
          else if wait0 () <> 0 then code := 5
          else code := 0
        end
      end;
      0);
  Apps.Runner.run ();
  check_int "ONESHOT reports once, MOD rearms" 0 !code

let unix_peer_close_hup () =
  ignore (boot ());
  let seen = ref (-1) in
  Apps.Runner.spawn ~name:"uhup" (fun c ->
      let lfd = L.socket c ~domain:1 ~typ:1 in
      ignore (L.bind_unix c ~fd:lfd ~path:"/tmp/hupsock");
      ignore (L.listen c ~fd:lfd ~backlog:4);
      let sa = L.socket c ~domain:1 ~typ:1 in
      ignore (L.connect_unix c ~fd:sa ~path:"/tmp/hupsock");
      let sb = L.accept c ~fd:lfd in
      let ep = L.epoll_create1 c in
      ignore
        (L.epoll_ctl c ~epfd:ep ~op:L.epoll_ctl_add ~fd:sb
           ~events:(L.epollin lor L.epollrdhup) ~data:1L);
      ignore (L.close c sa);
      (match L.epoll_wait c ~epfd:ep ~maxevents:8 ~timeout_ms:0 with
      | Ok (1, [ (_, ev) ]) -> seen := ev
      | _ -> seen := -2);
      0);
  Apps.Runner.run ();
  check_int "peer close raises IN|HUP|RDHUP (HUP unmasked)"
    (L.epollin lor L.epollhup lor L.epollrdhup)
    !seen

(* TCP peer teardown against the guest's epoll: a graceful FIN must
   surface RDHUP(+IN), an abortive RST must surface the unmaskable
   ERR|HUP — the "injected reset" row of the ET fault matrix. *)
let tcp_peer_event ~abortive =
  let k = boot () in
  let host = Aster.Kernel.attach_host k in
  let seen = ref (-1) in
  Apps.Runner.spawn ~name:"tcpev" (fun c ->
      let sfd = L.socket c ~domain:2 ~typ:1 in
      ignore (L.bind_inet c ~fd:sfd ~port:7100);
      ignore (L.listen c ~fd:sfd ~backlog:8);
      let conn = L.accept c ~fd:sfd in
      let ep = L.epoll_create1 c in
      ignore
        (L.epoll_ctl c ~epfd:ep ~op:L.epoll_ctl_add ~fd:conn
           ~events:(L.epollin lor L.epollet lor L.epollrdhup) ~data:9L);
      (match L.epoll_wait c ~epfd:ep ~maxevents:8 ~timeout_ms:(-1) with
      | Ok (_, (_, ev) :: _) -> seen := ev
      | _ -> seen := -2);
      0);
  ignore
    (Ostd.Task.spawn ~name:"tcppeer" (fun () ->
         let rec go n =
           match
             Aster.Tcp.connect host.Aster.Kernel.htcp ~dst_ip:Aster.Kernel.guest_ip
               ~dst_port:7100
           with
           | Ok conn -> conn
           | Error _ ->
             if n = 0 then failwith "tcp_peer_event: guest unreachable"
             else begin
               Ostd.Task.sleep_us 200.;
               go (n - 1)
             end
         in
         let conn = go 100 in
         Ostd.Task.sleep_us 500.;
         if abortive then Aster.Tcp.abort conn else Aster.Tcp.close conn));
  Apps.Runner.run ();
  !seen

let tcp_fin_rdhup () =
  let ev = tcp_peer_event ~abortive:false in
  check "FIN raises EPOLLRDHUP" true (ev land L.epollrdhup <> 0);
  check "FIN raises EPOLLIN (EOF readable)" true (ev land L.epollin <> 0)

let tcp_rst_err_hup () =
  let ev = tcp_peer_event ~abortive:true in
  check "RST raises EPOLLERR" true (ev land L.epollerr <> 0);
  check "RST raises EPOLLHUP" true (ev land L.epollhup <> 0)

(* --- fdinfo observability --- *)

let fdinfo_renders_epoll () =
  ignore (boot ());
  let out = ref "" in
  Apps.Runner.spawn ~name:"fdinfo" (fun c ->
      let r, _w = Result.get_ok (L.pipe c) in
      let ep = L.epoll_create1 c in
      ignore (L.epoll_ctl c ~epfd:ep ~op:L.epoll_ctl_add ~fd:r ~events:L.epollin ~data:77L);
      let pid = L.getpid c in
      let fd = L.openf c (Printf.sprintf "/proc/%d/fdinfo" pid) ~flags:0 ~mode:0 in
      if fd >= 0 then out := L.read_str c ~fd ~len:4096;
      0);
  Apps.Runner.run ();
  let has needle =
    let hl = String.length !out and nl = String.length needle in
    let rec go i = i + nl <= hl && (String.sub !out i nl = needle || go (i + 1)) in
    go 0
  in
  check "fdinfo lists the epoll fd" true (has "type: epoll");
  check "fdinfo renders the registration" true (has "data: 4d")

(* --- epoll-churn chaos group: ET server under TX faults --- *)

let churn_schedule = [ ("net.tx_fail", 0.05); ("net.tx_drop", 0.02) ]

let churn_run seed =
  let k = boot () in
  let host = Aster.Kernel.attach_host k in
  Sim.Fault.configure ~seed churn_schedule;
  Apps.C10k.spawn_server ();
  let res = ref None in
  Apps.C10k.run ~host ~conns:48 ~rounds:6 ~batch:8 ~churn:3 ~on_done:(fun r -> res := Some r);
  Apps.Runner.run ();
  let injected = Sim.Fault.total_injected () in
  let flog = Sim.Fault.log () in
  Sim.Fault.disable ();
  match !res with
  | None -> Alcotest.fail "epoll-churn run hung"
  | Some r -> (r, injected, flog)

let churn_soak seed () =
  let r, injected, _log = churn_run seed in
  check_int "every ping completed (liveness under faults)" (6 * 8) r.Apps.C10k.pings;
  check_int "every churn cycle completed" (6 * 3) r.Apps.C10k.churned;
  check "faults actually fired" true (injected > 0);
  check "latency histogram populated" true (not (Float.is_nan r.Apps.C10k.p99_us))

let churn_determinism () =
  let r1, _, log1 = churn_run 42L in
  let r2, _, log2 = churn_run 42L in
  Alcotest.(check (list string)) "same seed, byte-identical fault log" log1 log2;
  check "same seed, identical result" true (r1 = r2);
  let _, _, log3 = churn_run 7L in
  check "different seed, different schedule" true (log1 <> log3)

let () =
  Alcotest.run "epoll"
    [
      ( "wheel",
        [
          Alcotest.test_case "oracle_seed42" `Quick (wheel_oracle 42L);
          Alcotest.test_case "oracle_seed7" `Quick (wheel_oracle 7L);
          Alcotest.test_case "oracle_seed1234" `Quick (wheel_oracle 1234L);
          Alcotest.test_case "edge_cases" `Quick wheel_edge_cases;
        ] );
      ( "timeout",
        [
          Alcotest.test_case "epoll_exact_deadline" `Quick epoll_timeout_exact;
          Alcotest.test_case "poll_exact_no_spin" `Quick poll_timeout_exact_no_spin;
        ] );
      ( "poll_regress",
        [
          Alcotest.test_case "pollnval_closed_fd" `Quick poll_closed_fd_pollnval;
          Alcotest.test_case "pollhup_eof_pipe" `Quick poll_eof_pollhup;
        ] );
      ( "differential",
        [
          Alcotest.test_case "lt_eq_poll_seed11" `Quick (differential 11L);
          Alcotest.test_case "lt_eq_poll_seed23" `Quick (differential 23L);
          Alcotest.test_case "lt_eq_poll_seed42" `Quick (differential 42L);
          Alcotest.test_case "determinism" `Quick differential_determinism;
          Alcotest.test_case "app_payloads" `Quick app_payload_differential;
        ] );
      ( "et_matrix",
        [
          Alcotest.test_case "once_per_transition" `Quick et_fires_once_per_transition;
          Alcotest.test_case "oneshot_rearm" `Quick oneshot_disarm_rearm;
          Alcotest.test_case "unix_peer_hup" `Quick unix_peer_close_hup;
          Alcotest.test_case "tcp_fin_rdhup" `Quick tcp_fin_rdhup;
          Alcotest.test_case "tcp_rst_err_hup" `Quick tcp_rst_err_hup;
        ] );
      ("fdinfo", [ Alcotest.test_case "renders_epoll" `Quick fdinfo_renders_epoll ]);
      ( "epoll_churn",
        [
          Alcotest.test_case "soak_seed11" `Quick (churn_soak 11L);
          Alcotest.test_case "soak_seed23" `Quick (churn_soak 23L);
          Alcotest.test_case "soak_seed42" `Quick (churn_soak 42L);
          Alcotest.test_case "determinism" `Quick churn_determinism;
        ] );
    ]
