(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6). Run everything, or name targets:

     dune exec bench/main.exe                   # everything
     dune exec bench/main.exe -- table7 fig5a   # a subset
     dune exec bench/main.exe -- quick          # reduced iteration counts

   Measured numbers come from the simulator's virtual clock; the paper's
   published values are printed alongside so the shape can be compared
   directly. *)

let quick = ref false

(* --offloads-off: run every profile-driven benchmark with the software
   baseline (no GSO/TSO, no GRO, no checksum offload, no zero-copy
   sendfile). CI uses it to prove the knobs-off path still reproduces
   the pre-offload BENCH_results.json under the --compare gate. *)
let offloads_off = ref false

let aster_p () =
  if !offloads_off then Sim.Profile.with_all_offloads false Sim.Profile.asterinas
  else Sim.Profile.asterinas

let linux_p () =
  if !offloads_off then Sim.Profile.with_all_offloads false Sim.Profile.linux
  else Sim.Profile.linux

let section title =
  Printf.printf "\n%s\n%s\n%!" title (String.make (String.length title) '=')

(* --- Machine-readable results (BENCH_results.json) ---

   Every comparative benchmark records a row; the accumulated set is
   written as JSON at exit so the perf trajectory is diffable run to
   run. Schema documented in EXPERIMENTS.md. *)

type pctls = { pcount : int; p50 : float; p90 : float; p99 : float; pmax : float }

type result = {
  benchmark : string;
  unit_ : string;
  linux : float option;
  aster : float option;
  norm : float option;
  percentiles : pctls option;
  cpu : Sim.Prof.frame_stat list option;
  spans : (string * (string * int64) list) option;
      (* dominant span class + top-3 critical-path segments of its p99 span *)
}

let results : result list ref = ref []

let add_result ?linux ?aster ?norm ?percentiles ?cpu ?spans ~unit_ benchmark =
  results := { benchmark; unit_; linux; aster; norm; percentiles; cpu; spans } :: !results

(* Top-3 kprof scopes of the most recent run. Like the histograms, each
   boot clears attribution, so calling this right after an
   aster-profile workload captures exactly that run. *)
let prof_top3 () =
  match Sim.Prof.top_scopes ~limit:3 () with [] -> None | fs -> Some fs

(* Top-3 critical-path segments of the most recent run's p99 tail span,
   for the workload's dominant span class. Like kprof, kspan rides along
   at zero virtual cost and each boot clears its reservoirs, so calling
   this right after an aster-profile workload explains exactly that
   run's tail. *)
let span_top3 () =
  match Sim.Span.dominant_class () with
  | None -> None
  | Some cls -> (
    match Sim.Span.class_p99 cls with
    | None -> None
    | Some i ->
      let rec take n = function
        | x :: tl when n > 0 -> x :: take (n - 1) tl
        | _ -> []
      in
      (match take 3 i.Sim.Span.i_path with [] -> None | top -> Some (cls, top)))

(* Syscall-latency percentiles of the most recent run. Each boot resets
   the histograms, so calling this right after an aster-profile workload
   captures exactly that run. *)
let syscall_pctls () =
  match Sim.Hist.find "syscall" with
  | Some h when Sim.Hist.count h > 0 ->
    Some
      {
        pcount = Sim.Hist.count h;
        p50 = Sim.Hist.percentile_exn h 50.;
        p90 = Sim.Hist.percentile_exn h 90.;
        p99 = Sim.Hist.percentile_exn h 99.;
        pmax = Sim.Hist.max_value h;
      }
  | Some _ | None -> None

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_nan f || f = infinity || f = neg_infinity then "null"
  else Printf.sprintf "%.6g" f

let json_opt_float = function None -> "null" | Some f -> json_float f

let json_of_result r =
  let pj =
    match r.percentiles with
    | None -> "null"
    | Some p ->
      Printf.sprintf {|{"count": %d, "p50": %s, "p90": %s, "p99": %s, "max": %s}|} p.pcount
        (json_float p.p50) (json_float p.p90) (json_float p.p99) (json_float p.pmax)
  in
  let cj =
    match r.cpu with
    | None -> "null"
    | Some fs ->
      "["
      ^ String.concat ", "
          (List.map
             (fun (s : Sim.Prof.frame_stat) ->
               Printf.sprintf {|{"scope": "%s", "self": %Ld, "total": %Ld}|}
                 (json_escape s.Sim.Prof.frame) s.Sim.Prof.self s.Sim.Prof.total)
             fs)
      ^ "]"
  in
  let sj =
    match r.spans with
    | None -> "null"
    | Some (cls, top) ->
      Printf.sprintf {|{"class": "%s", "top": [%s]}|} (json_escape cls)
        (String.concat ", "
           (List.map
              (fun (seg, cyc) ->
                Printf.sprintf {|{"segment": "%s", "cycles": %Ld}|} (json_escape seg) cyc)
              top))
  in
  Printf.sprintf
    {|    {"benchmark": "%s", "unit": "%s", "linux": %s, "aster": %s, "norm": %s, "percentiles": %s, "cpu": %s, "p99_path": %s}|}
    (json_escape r.benchmark) (json_escape r.unit_) (json_opt_float r.linux)
    (json_opt_float r.aster) (json_opt_float r.norm) pj cj sj

let write_json ~path ~targets =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"schema\": \"asterinas-sim-bench/3\",\n  \"quick\": %b,\n  \"targets\": [%s],\n  \"results\": [\n%s\n  ]\n}\n"
    !quick
    (String.concat ", " (List.map (fun t -> "\"" ^ json_escape t ^ "\"") targets))
    (String.concat ",\n" (List.rev_map json_of_result !results));
  close_out oc;
  Printf.printf "\nwrote %d benchmark results to %s\n" (List.length !results) path

(* --- Paper reference values --- *)

let table7_paper =
  [
    ("lat_syscall null", 0.050, 0.066);
    ("lat_ctx 18", 0.826, 0.829);
    ("lat_proc fork", 59.20, 57.46);
    ("lat_proc exec", 204.8, 174.4);
    ("lat_proc shell", 319.3, 294.3);
    ("lat_pagefault", 0.109, 0.100);
    ("lat_mmap 4m", 19.4, 16.80);
    ("bw_mmap 256m", 15405., 13197.);
    ("lat_pipe", 1.826, 1.881);
    ("bw_pipe", 11133., 14664.);
    ("lat_fifo", 1.825, 1.938);
    ("lat_unix", 2.677, 2.493);
    ("bw_unix", 7875., 14183.);
    ("lat_syscall open", 0.611, 0.740);
    ("lat_syscall read", 0.081, 0.088);
    ("lat_syscall write", 0.065, 0.080);
    ("lat_syscall stat", 0.299, 0.400);
    ("lat_syscall fstat", 0.263, 0.231);
    ("bw_file_rd 512m", 10238., 9198.);
    ("lmdd(Ramfs->Ramfs)", 3219., 2973.);
    ("lmdd(Ramfs->Ext2)", 2490., 2612.);
    ("lmdd(Ext2->Ramfs)", 3453., 2962.);
    ("lmdd(Ext2->Ext2)", 2017., 2626.);
    ("lat_udp (loopback)", 3.801, 2.427);
    ("lat_tcp (loopback)", 5.326, 2.725);
    ("bw_tcp 128 (loopback)", 280.0, 356.5);
    ("bw_tcp 64k (loopback)", 6216., 7647.);
    ("lat_udp (virtio)", 15.03, 11.49);
    ("lat_tcp (virtio)", 16.75, 12.94);
    ("bw_tcp 128 (virtio)", 328.7, 333.2);
    ("bw_tcp 64k (virtio)", 1151., 1116.);
  ]

let redis_paper =
  [
    ("PING_INLINE", 151022., 213342., 211694.);
    ("PING_MBULK", 157979., 220976., 218041.);
    ("SET", 153391., 211648., 210302.);
    ("GET", 155994., 218670., 219300.);
    ("INCR", 152133., 219217., 219302.);
    ("LPUSH", 149887., 211692., 211960.);
    ("RPUSH", 150505., 214605., 214054.);
    ("LPOP", 148348., 209365., 209309.);
    ("RPOP", 150714., 210426., 210139.);
    ("SADD", 156514., 217682., 217878.);
    ("HSET", 152276., 209336., 211664.);
    ("SPOP", 157351., 217016., 221988.);
    ("ZADD", 149386., 206069., 207480.);
    ("ZPOPMIN", 158361., 219784., 221895.);
    ("LRANGE_100", 92696., 114472., 113062.);
    ("LRANGE_300", 39268., 39732., 39629.);
    ("LRANGE_500", 27430., 27843., 27338.);
    ("LRANGE_600", 23876., 23649., 23675.);
    ("MSET", 125747., 160041., 157920.);
  ]

let sqlite_paper =
  [
    (100, 0.27, 0.33, 0.32); (110, 0.43, 0.49, 0.49); (120, 0.88, 1.00, 1.00);
    (130, 0.40, 0.45, 0.44); (140, 0.61, 0.71, 0.73); (142, 1.17, 1.35, 1.34);
    (145, 0.49, 0.57, 0.56); (150, 0.95, 1.16, 1.13); (160, 1.74, 2.02, 2.03);
    (161, 1.75, 2.02, 2.02); (170, 1.72, 2.06, 2.03); (180, 2.14, 2.41, 2.42);
    (190, 2.09, 2.38, 2.38); (200, 1.59, 2.21, 2.07); (210, 0.04, 0.04, 0.04);
    (230, 1.81, 2.11, 2.08); (240, 1.34, 1.58, 1.55); (250, 0.21, 0.26, 0.24);
    (260, 0.02, 0.02, 0.02); (270, 2.26, 2.63, 2.58); (280, 2.19, 2.6, 2.58);
    (290, 3.85, 4.31, 4.22); (300, 2.20, 2.51, 2.48); (310, 3.60, 4.27, 4.25);
    (320, 7.14, 8.3, 8.35); (400, 1.44, 1.57, 1.58); (410, 2.25, 3.06, 3.05);
    (500, 1.66, 1.82, 1.85); (510, 2.56, 3.4, 3.41); (520, 0.57, 0.62, 0.64);
    (980, 3.33, 3.95, 3.97); (990, 0.20, 0.22, 0.22);
  ]

(* --- Table 1 --- *)

let table1 () =
  section "Table 1: unsafe-utilizing crates in existing Rust-based OSes";
  Printf.printf "%-10s %-16s %s\n" "OS" "unsafe/total" "fraction";
  List.iter
    (fun (name, g) ->
      let u, t = Tcbaudit.Crate_graph.unsafe_crate_fraction g in
      Printf.printf "%-10s %3d / %-10d %3.0f%%\n" name u t
        (100. *. float_of_int u /. float_of_int t))
    Tcbaudit.Datasets.table1;
  print_endline "(paper: Linux 6/11 55%, Tock 91/98 93%, RedLeaf 36/58 62%, Theseus 54/171 32%)"

(* --- Table 3 --- *)

let table3 () =
  section "Table 3: growth of Linux components (KLoC)";
  Printf.printf "%-18s %-14s %-14s %s\n" "Component" "v2.1.23 (1997)" "v6.12.0 (2024)" "growth";
  List.iter
    (fun (name, early, late) ->
      Printf.printf "%-18s %-14.1f %-14.1f %.0fx\n" name early late (late /. early))
    Tcbaudit.Datasets.linux_component_growth

(* --- Table 7 --- *)

let table7 () =
  section "Table 7: LMbench micro-benchmarks (measured | paper)";
  Printf.printf "%-24s %10s %10s %6s | %9s %9s %6s\n" "benchmark" "linux" "aster" "norm"
    "p-linux" "p-aster" "p-nrm";
  let norms = ref [] in
  List.iter
    (fun (row : Apps.Lmbench.row) ->
      let linux = row.Apps.Lmbench.run (linux_p ()) in
      let aster = row.Apps.Lmbench.run (aster_p ()) in
      let norm = if row.higher_better then aster /. linux else linux /. aster in
      norms := norm :: !norms;
      let p_lin, p_ast =
        match List.find_opt (fun (n, _, _) -> n = row.name) table7_paper with
        | Some (_, l, a) -> (l, a)
        | None -> (nan, nan)
      in
      let p_norm = if row.higher_better then p_ast /. p_lin else p_lin /. p_ast in
      add_result ~linux ~aster ~norm ~unit_:row.unit_ ("table7/" ^ row.name);
      Printf.printf "%-24s %10.3f %10.3f %6.2f | %9.3f %9.3f %6.2f  [%s]\n%!" row.name linux
        aster norm p_lin p_ast p_norm row.unit_)
    Apps.Lmbench.rows;
  let gm = Sim.Stats.geomean !norms in
  add_result ~norm:gm ~unit_:"ratio" "table7/geomean";
  Printf.printf "%-24s %21s %6.2f | %20s %6.2f\n" "geometric mean" "" gm "" 1.08

(* --- Table 8 --- *)

let table8 () =
  section "Table 8: overhead of OSTD safety mechanisms (simulated cycles/op)";
  let ops : (string * (unit -> unit -> unit)) list =
    [
      ( "Segment::read_bytes (4KB)",
        fun () ->
          let s = Ostd.Frame.alloc ~pages:2 ~untyped:true () in
          let buf = Bytes.create 4096 in
          fun () -> Ostd.Untyped.read_bytes s ~off:0 ~buf ~pos:0 ~len:4096 );
      ( "Segment::write_bytes (4KB)",
        fun () ->
          let s = Ostd.Frame.alloc ~pages:2 ~untyped:true () in
          let buf = Bytes.create 4096 in
          fun () -> Ostd.Untyped.write_bytes s ~off:0 ~buf ~pos:0 ~len:4096 );
      ( "IoMem::read_once (4 bytes)",
        fun () ->
          ignore (Machine.Board.attach_default_devices ());
          let w =
            Result.get_ok (Ostd.Io_mem.acquire ~base:Machine.Board.pci_hole_base ~size:0x100)
          in
          fun () -> ignore (Ostd.Io_mem.read_once w ~off:0 ~len:4) );
      ( "IoMem::write_once (4 bytes)",
        fun () ->
          ignore (Machine.Board.attach_default_devices ());
          let w =
            Result.get_ok
              (Ostd.Io_mem.acquire ~base:(Machine.Board.pci_hole_base + 0x1000) ~size:0x100)
          in
          fun () -> Ostd.Io_mem.write_once w ~off:0x40 ~len:4 0L );
      ("KernelStack::new", fun () -> fun () -> Ostd.Kstack.destroy (Ostd.Kstack.create ()));
      ( "Task::yield_now",
        fun () ->
          fun () ->
            (* One task yielding to itself 10 times; cost reported per
               dispatch via the measuring loop's 50 iterations. *)
            ignore
              (Ostd.Task.spawn (fun () ->
                   for _ = 1 to 10 do
                     Ostd.Task.yield_now ()
                   done));
            Ostd.Task.run () );
      ( "FrameAlloc::alloc (1 frame)",
        fun () -> fun () -> Ostd.Frame.drop (Ostd.Frame.alloc ~untyped:true ()) );
      ( "Box::new (48 bytes)",
        fun () ->
          Aster.Slab_policy.install_global_heap ();
          fun () -> Ostd.Slab.kfree (Ostd.Slab.kmalloc ~size:48 ()) );
    ]
  in
  let measure profile setup =
    Sim.Profile.set profile;
    Ostd.Selftest.fresh_boot ();
    let op = setup () in
    op ();
    let t0 = Sim.Clock.now () in
    let iters = 50 in
    for _ = 1 to iters do
      op ()
    done;
    Int64.to_int (Int64.sub (Sim.Clock.now ()) t0) / iters
  in
  Printf.printf "%-28s %10s %10s %s\n" "operation" "with" "without" "overhead/total";
  List.iter
    (fun (name, setup) ->
      let with_checks = measure Sim.Profile.asterinas setup in
      let without = measure (Sim.Profile.with_safety_checks false Sim.Profile.asterinas) setup in
      let ov = with_checks - without in
      Printf.printf "%-28s %10d %10d %6d/%d (%.1f%%)\n" name with_checks without ov with_checks
        (100. *. float_of_int ov /. float_of_int (max 1 with_checks)))
    ops;
  print_endline
    "(paper overhead/total: 3/125, 2/239, 170/10988, 166/10666, 25/2950, 1/167, 12/180, 1/148)"

(* --- Table 9 + self-audit --- *)

let table9 () =
  section "Table 9: TCB comparison via Linked Code Size";
  Printf.printf "%-12s %10s %10s %10s\n" "OS" "total" "TCB" "relative";
  List.iter
    (fun (name, g) ->
      Printf.printf "%-12s %10d %10d %9.1f%%\n" name (Tcbaudit.Crate_graph.total_lcs g)
        (Tcbaudit.Crate_graph.tcb_lcs g)
        (100. *. Tcbaudit.Crate_graph.relative_tcb g))
    Tcbaudit.Datasets.table9;
  print_endline "(paper: RedLeaf 66.1%, Theseus 62.4%, Tock 43.8%, Asterinas 14.0%)";
  let r = Tcbaudit.Self_audit.run () in
  Printf.printf "\nSelf-audit of this repository (same methodology):\n";
  List.iter
    (fun (e : Tcbaudit.Self_audit.entry) ->
      Printf.printf "  lib/%-10s %6d LoC %s\n" e.library e.loc (if e.tcb then "[TCB]" else ""))
    r.Tcbaudit.Self_audit.entries;
  Printf.printf "  total %d LoC, TCB %d LoC, relative %.1f%%\n" r.Tcbaudit.Self_audit.total_loc
    r.Tcbaudit.Self_audit.tcb_loc
    (100. *. r.Tcbaudit.Self_audit.relative)

(* --- Table 10 --- *)

let table10 () =
  section "Table 10: KernMiri coverage and efficiency on OSTD";
  let rows = Kernmiri.Runner.run () in
  Printf.printf "%-10s %6s %18s %18s %10s %10s\n" "submodule" "tests" "checkpoints" "unsafe ops"
    "native" "kernmiri";
  let print_row (r : Kernmiri.Runner.row) =
    Printf.printf "%-10s %6d %10d/%-3d (%3.0f%%) %9d/%-3d (%3.0f%%) %9.4fs %9.4fs\n" r.submodule
      r.tests r.lines_covered r.lines_total
      (100. *. float_of_int r.lines_covered /. float_of_int (max 1 r.lines_total))
      r.unsafe_covered r.unsafe_total
      (100. *. float_of_int r.unsafe_covered /. float_of_int (max 1 r.unsafe_total))
      r.native_s r.kernmiri_s
  in
  List.iter print_row rows;
  print_row (Kernmiri.Runner.totals rows);
  print_endline "(paper: 134 tests, ~93% line coverage, 100% unsafe coverage, ~25x slowdown)"

(* --- Fig. 5a: Nginx --- *)

let nginx_rps ?mode profile file requests =
  let k = Apps.Runner.boot ~profile in
  let host = Aster.Kernel.attach_host k in
  Apps.Mini_nginx.spawn ?mode ~requests ~sizes:[ ("f4k", 4096); ("f64k", 65536) ] ();
  let out = ref nan in
  Apps.Ab.run ~host ~path:("/" ^ file) ~concurrency:32 ~requests ~on_done:(fun r ->
      out := r.Apps.Ab.rps);
  Apps.Runner.run ();
  !out

let fig5a () =
  section "Fig. 5a: Nginx throughput (ab -c 32), requests/s";
  let n4 = if !quick then 1500 else 6000 in
  let n64 = if !quick then 800 else 2500 in
  Printf.printf "%-8s %10s %10s %12s\n" "file" "linux" "aster" "aster-noIOMMU";
  List.iter
    (fun (file, n, paper) ->
      let lin = nginx_rps (linux_p ()) file n in
      let ast = nginx_rps (aster_p ()) file n in
      let percentiles = syscall_pctls () in
      let cpu = prof_top3 () in
      let spans = span_top3 () in
      let noi = nginx_rps Sim.Profile.asterinas_no_iommu file n in
      add_result ~linux:lin ~aster:ast ~norm:(ast /. lin) ?percentiles ?cpu ?spans
        ~unit_:"req/s"
        ("fig5a/nginx_" ^ file);
      Printf.printf "%-8s %10.0f %10.0f %12.0f   norm=%.2f  %s\n%!" file lin ast noi (ast /. lin)
        paper)
    [
      ("f4k", n4, "(paper: linux 19227, aster 22912, norm 1.19)");
      ("f64k", n64, "(paper: linux ~9105, aster 9234, norm ~1.01)");
    ]

(* --- Fig. 5b + Table 11: Redis --- *)

let redis_rps ?mode profile op requests =
  let k = Apps.Runner.boot ~profile in
  let host = Aster.Kernel.attach_host k in
  Apps.Mini_redis.spawn ?mode ();
  let out = ref nan in
  (* Fill the shared list first, as redis-benchmark's earlier phases do. *)
  Apps.Redis_bench.run_op ~host ~op:"RPUSH" ~clients:8 ~requests:700 ~on_done:(fun _ ->
      Apps.Redis_bench.run_op ~host ~op ~clients:16 ~requests ~on_done:(fun r ->
          out := r.Apps.Redis_bench.rps));
  Apps.Runner.run ();
  !out

let redis_table ops =
  Printf.printf "%-12s %10s %10s %12s | paper: linux/aster/no-iommu\n" "op" "linux" "aster"
    "no-iommu";
  List.iter
    (fun op ->
      let lrange = String.length op >= 6 && String.sub op 0 6 = "LRANGE" in
      let n =
        if lrange then if !quick then 400 else 1200 else if !quick then 1200 else 3500
      in
      let lin = redis_rps (linux_p ()) op n in
      let ast = redis_rps (aster_p ()) op n in
      let percentiles = syscall_pctls () in
      let cpu = prof_top3 () in
      let spans = span_top3 () in
      let noi = redis_rps Sim.Profile.asterinas_no_iommu op n in
      add_result ~linux:lin ~aster:ast ~norm:(ast /. lin) ?percentiles ?cpu ?spans
        ~unit_:"req/s"
        ("redis/" ^ op);
      let p =
        match List.find_opt (fun (o, _, _, _) -> o = op) redis_paper with
        | Some (_, l, a, ni) -> Printf.sprintf "| %8.0f %8.0f %8.0f" l a ni
        | None -> ""
      in
      Printf.printf "%-12s %10.0f %10.0f %12.0f %s\n%!" op lin ast noi p)
    ops

let table11 () =
  section "Table 11: complete redis-benchmark results (requests/s)";
  redis_table Apps.Mini_redis.command_names

let fig5b () =
  section "Fig. 5b: Redis representative commands (requests/s)";
  redis_table [ "GET"; "SET"; "INCR"; "LPUSH"; "SPOP"; "LRANGE_100" ]

(* --- Fig. 5c + Table 12: SQLite --- *)

let sqlite_run profile =
  ignore (Apps.Runner.boot ~profile);
  let out = ref [] in
  Apps.Runner.spawn ~name:"speedtest1" (fun c ->
      out := Apps.Speedtest1.run ~size:(if !quick then 8 else 16) c;
      0);
  Apps.Runner.run ();
  !out

let table12 () =
  section "Table 12 / Fig. 5c: SQLite speedtest1 (virtual seconds; workload scaled down)";
  let lin = sqlite_run (linux_p ()) in
  Aster.Strace.reset ();
  let ast = sqlite_run (aster_p ()) in
  let small = Aster.Strace.small_writes () in
  let aster_pctls = syscall_pctls () in
  let aster_cpu = prof_top3 () in
  let aster_spans = span_top3 () in
  let noi = sqlite_run Sim.Profile.asterinas_no_iommu in
  Printf.printf "%4s %-44s %8s %8s %8s %6s | paper (s, ratio)\n" "num" "test" "linux" "aster"
    "noIOMMU" "ratio";
  let tot = ref (0., 0., 0.) in
  List.iteri
    (fun i (l : Apps.Speedtest1.result) ->
      let a = List.nth ast i and n = List.nth noi i in
      let la = l.Apps.Speedtest1.seconds
      and aa = a.Apps.Speedtest1.seconds
      and na = n.Apps.Speedtest1.seconds in
      let x, y, z = !tot in
      tot := (x +. la, y +. aa, z +. na);
      let paper =
        match
          List.find_opt (fun (num, _, _, _) -> num = l.Apps.Speedtest1.num) sqlite_paper
        with
        | Some (_, pl, pa, _) -> Printf.sprintf "| %5.2f %5.2f (%.2f)" pl pa (pa /. pl)
        | None -> ""
      in
      Printf.printf "%4d %-44s %8.4f %8.4f %8.4f %6.2f %s\n" l.Apps.Speedtest1.num
        l.Apps.Speedtest1.name la aa na
        (aa /. (la +. 1e-12))
        paper)
    lin;
  let x, y, z = !tot in
  add_result ~linux:x ~aster:y ~norm:(y /. x) ?percentiles:aster_pctls ?cpu:aster_cpu
    ?spans:aster_spans ~unit_:"virtual s" "table12/speedtest1_total";
  Printf.printf "%4s %-44s %8.3f %8.3f %8.3f %6.2f | 52.88 62.44 (1.18)\n" "" "TOTAL" x y z
    (y /. x);
  Printf.printf
    "strace diagnosis (aster run): %d small (<=8 byte) pwrite64/write calls; top syscalls:\n"
    small;
  List.iter (fun (n, c) -> Printf.printf "  %-12s %d\n" n c) (Aster.Strace.top 6)

(* --- Fig. 6 --- *)

let fig6 () =
  section "Fig. 6: IOMMU overhead, pooled vs dynamic DMA mappings";
  let fio_run profile =
    ignore (Apps.Runner.boot ~profile);
    let out = ref { Apps.Fio.write_mb_s = nan; read_cold_mb_s = nan; read_mb_s = nan } in
    Apps.Runner.spawn ~name:"fio" (fun c ->
        out := Apps.Fio.run c ~file:"/ext2/fio.dat" ~mbytes:(if !quick then 4 else 8);
        0);
    Apps.Runner.run ();
    !out
  in
  let bw_row = Apps.Lmbench.find "bw_tcp 64k (virtio)" in
  let variants =
    [
      ( "pooled (IOMMU)",
        { Sim.Profile.asterinas with Sim.Profile.blk_pooling_complete = true;
          name = "aster-pooled" } );
      ("dynamic (IOMMU)", Sim.Profile.with_dma_pooling false Sim.Profile.asterinas);
      ("no IOMMU", Sim.Profile.asterinas_no_iommu);
    ]
  in
  Printf.printf "%-18s %14s %14s %14s %14s\n" "variant" "fio write MB/s" "fio cold MB/s"
    "fio warm MB/s" "bw_tcp64k MB/s";
  List.iter
    (fun (name, profile) ->
      let f = fio_run profile in
      let bw = bw_row.Apps.Lmbench.run profile in
      Printf.printf "%-18s %14.0f %14.0f %14.0f %14.0f\n%!" name f.Apps.Fio.write_mb_s
        f.Apps.Fio.read_cold_mb_s f.Apps.Fio.read_mb_s bw)
    variants;
  print_endline "(paper: switching from pooled to dynamic degrades both block and network I/O)"

(* --- Fig. 7 --- *)

let fig7 () =
  section "Fig. 7: codebase growth, Asterinas (non-TCB) vs OSTD (TCB)";
  Printf.printf "%-8s %12s %12s\n" "month" "aster KLoC" "ostd KLoC";
  List.iter2
    (fun (a : Tcbaudit.Growth.point) (o : Tcbaudit.Growth.point) ->
      if a.month mod 6 = 0 then Printf.printf "%-8d %12.1f %12.1f\n" a.month a.kloc o.kloc)
    Tcbaudit.Growth.asterinas_series Tcbaudit.Growth.ostd_series;
  let fa = Tcbaudit.Growth.fit_quadratic Tcbaudit.Growth.asterinas_series in
  let fo = Tcbaudit.Growth.fit_linear Tcbaudit.Growth.ostd_series in
  Printf.printf "aster fit: %.2f + %.2f m + %.3f m^2  (rmse %.2f) -> super-linear\n"
    fa.Tcbaudit.Growth.intercept fa.Tcbaudit.Growth.slope fa.Tcbaudit.Growth.quadratic
    fa.Tcbaudit.Growth.rmse;
  Printf.printf "ostd  fit: %.2f + %.2f m              (rmse %.2f) -> controlled\n"
    fo.Tcbaudit.Growth.intercept fo.Tcbaudit.Growth.slope fo.Tcbaudit.Growth.rmse;
  Printf.printf "48-month projection: aster %.0f KLoC vs ostd %.0f KLoC\n"
    (Tcbaudit.Growth.project fa 48)
    (Tcbaudit.Growth.project fo 48)

(* --- Fig. 9 --- *)

let fig9 () =
  section "Fig. 9: UB case studies under KernMiri";
  List.iter
    (fun (o : Kernmiri.Cases.outcome) ->
      Printf.printf "%s\n  buggy variant detected: %b\n  fixed variant clean:    %b\n"
        o.Kernmiri.Cases.description o.Kernmiri.Cases.buggy_detected
        o.Kernmiri.Cases.fixed_clean)
    (Kernmiri.Cases.all ())

(* --- Ablations: the design choices DESIGN.md calls out --- *)

let ablations () =
  section "Ablations: cost of individual design choices";
  (* 1. Buddy per-CPU cache: single-frame alloc/free cycles. *)
  let alloc_cycles ~pcpu =
    Sim.Profile.set Sim.Profile.asterinas;
    Ostd.Boot.init ();
    Ostd.Task.inject_fifo_scheduler ();
    let b = Aster.Buddy.create ~pcpu_cache:pcpu () in
    Ostd.Falloc.inject (Aster.Buddy.as_frame_alloc b);
    Ostd.Boot.feed_free_memory ();
    (* Fragment the free lists so the slow path has work to do. *)
    let hold = List.init 64 (fun _ -> Ostd.Frame.alloc ~untyped:true ()) in
    List.iteri (fun i f -> if i mod 2 = 0 then Ostd.Frame.drop f) hold;
    let t0 = Sim.Clock.now () in
    for _ = 1 to 2000 do
      Ostd.Frame.drop (Ostd.Frame.alloc ~untyped:true ())
    done;
    List.iteri (fun i f -> if i mod 2 = 1 then Ostd.Frame.drop f) hold;
    Int64.to_int (Int64.sub (Sim.Clock.now ()) t0) / 2000
  in
  Printf.printf "%-44s %8d vs %8d cycles/op\n" "buddy per-CPU cache (on vs off)"
    (alloc_cycles ~pcpu:true) (alloc_cycles ~pcpu:false);
  (* 2. Slab magazine: kmalloc-style alloc/free cycles. *)
  let slab_cycles ~magazine =
    Sim.Profile.set Sim.Profile.asterinas;
    Ostd.Selftest.fresh_boot ();
    let c = Aster.Slab_policy.cache_create ~magazine ~name:"ablate" ~slot_size:64 () in
    let t0 = Sim.Clock.now () in
    for _ = 1 to 2000 do
      let s = Aster.Slab_policy.cache_alloc c in
      Aster.Slab_policy.cache_dealloc c s
    done;
    Int64.to_int (Int64.sub (Sim.Clock.now ()) t0) / 2000
  in
  Printf.printf "%-44s %8d vs %8d cycles/op\n" "slab per-CPU magazine (on vs off)"
    (slab_cycles ~magazine:true) (slab_cycles ~magazine:false);
  (* 3. GSO on the Linux virtio path (per-request CPU, not wire-capped). *)
  let lin_no_gso =
    { Sim.Profile.linux with Sim.Profile.tcp_gso = false; name = "linux-no-gso" }
  in
  let n_gso = if !quick then 800 else 2000 in
  Printf.printf "%-44s %8.0f vs %8.0f req/s\n" "GSO, Linux nginx 64k (on vs off)"
    (nginx_rps Sim.Profile.linux "f64k" n_gso)
    (nginx_rps lin_no_gso "f64k" n_gso);
  let bw = Apps.Lmbench.find "bw_tcp 64k (virtio)" in
  (* 4. Congestion control added to Asterinas. *)
  let aster_cc =
    { Sim.Profile.asterinas with Sim.Profile.tcp_congestion_control = true; name = "aster-cc" }
  in
  Printf.printf "%-44s %8.0f vs %8.0f MB/s\n" "Asterinas without vs with congestion ctrl"
    (bw.Apps.Lmbench.run Sim.Profile.asterinas)
    (bw.Apps.Lmbench.run aster_cc);
  (* 5. RCU-walk on the Linux lookup path. *)
  let open_row = Apps.Lmbench.find "lat_syscall open" in
  let lin_no_rcu =
    { Sim.Profile.linux with Sim.Profile.rcu_walk = false; name = "linux-no-rcuwalk" }
  in
  Printf.printf "%-44s %8.3f vs %8.3f us\n" "RCU-walk in Linux open(2) (on vs off)"
    (open_row.Apps.Lmbench.run Sim.Profile.linux)
    (open_row.Apps.Lmbench.run lin_no_rcu);
  (* 6. The paper's suggested fix, now the default: zero-copy sendfile.
     Ablate it OFF to show the bounce-buffer cost it removed. *)
  let aster_bounce =
    Sim.Profile.with_sendfile_zero_copy false
      { Sim.Profile.asterinas with Sim.Profile.name = "aster-bounce" }
  in
  let n = if !quick then 800 else 2000 in
  Printf.printf "%-44s %8.0f vs %8.0f req/s\n"
    "Asterinas nginx 64k: bounce vs zero-copy sendfile"
    (nginx_rps aster_bounce "f64k" n)
    (nginx_rps Sim.Profile.asterinas "f64k" n)

(* --- Bechamel host-time measurement of the checked fast paths --- *)

let bechamel_table8 () =
  section "Table 8 (bechamel: host wall-time of checked OSTD fast paths)";
  let open Bechamel in
  let open Bechamel.Toolkit in
  Sim.Profile.set Sim.Profile.asterinas;
  Ostd.Selftest.fresh_boot ();
  let frame = Ostd.Frame.alloc ~pages:2 ~untyped:true () in
  let buf = Bytes.create 4096 in
  let tests =
    Test.make_grouped ~name:"ostd" ~fmt:"%s %s"
      [
        Test.make ~name:"untyped_read_4k"
          (Staged.stage (fun () ->
               Ostd.Untyped.read_bytes frame ~off:0 ~buf ~pos:0 ~len:4096));
        Test.make ~name:"frame_alloc_drop"
          (Staged.stage (fun () -> Ostd.Frame.drop (Ostd.Frame.alloc ~untyped:true ())));
      ]
  in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name v ->
      match Analyze.OLS.estimates v with
      | Some (est :: _) -> Printf.printf "  %-28s %10.1f ns/op\n" name est
      | _ -> Printf.printf "  %-28s (no estimate)\n" name)
    results

(* --- Chaos: throughput cost of graceful degradation --- *)

let chaos_bench () =
  section "Chaos: fio throughput, clean vs under the fault plane (seed 42)";
  let fio_run ~faults =
    ignore (Apps.Runner.boot ~profile:Sim.Profile.asterinas);
    if faults then Sim.Fault.configure ~seed:42L Apps.Chaos.default_schedule;
    let out = ref { Apps.Fio.write_mb_s = nan; read_cold_mb_s = nan; read_mb_s = nan } in
    Apps.Runner.spawn ~name:"fio" (fun c ->
        out := Apps.Fio.run c ~file:"/ext2/fio.dat" ~mbytes:(if !quick then 4 else 8);
        0);
    Apps.Runner.run ();
    Sim.Fault.disable ();
    !out
  in
  let clean = fio_run ~faults:false in
  let faulty = fio_run ~faults:true in
  add_result ~linux:clean.Apps.Fio.write_mb_s ~aster:faulty.Apps.Fio.write_mb_s
    ~norm:(faulty.Apps.Fio.write_mb_s /. clean.Apps.Fio.write_mb_s)
    ?percentiles:(syscall_pctls ()) ?cpu:(prof_top3 ()) ?spans:(span_top3 ())
    ~unit_:"MB/s (clean vs faulted)" "chaos/fio_write";
  let pct a b = if a > 0. then 100. *. b /. a else nan in
  Printf.printf "%-22s %14s %14s\n" "variant" "fio write MB/s" "fio read MB/s";
  Printf.printf "%-22s %14.0f %14.0f\n" "clean" clean.Apps.Fio.write_mb_s
    clean.Apps.Fio.read_mb_s;
  Printf.printf "%-22s %14.0f %14.0f   (%.0f%% / %.0f%% of clean)\n" "fault schedule"
    faulty.Apps.Fio.write_mb_s faulty.Apps.Fio.read_mb_s
    (pct clean.Apps.Fio.write_mb_s faulty.Apps.Fio.write_mb_s)
    (pct clean.Apps.Fio.read_mb_s faulty.Apps.Fio.read_mb_s);
  Printf.printf "fault plane: %s\n"
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%s %d" k v) (Sim.Stats.fault_report ())));
  print_endline
    "(retries and backoff trade throughput for liveness: no hangs, no corruption)"

(* --- fio sequential I/O: batching/readahead ablation --- *)

(* One fio run plus the blk.* counters that attribute the win: doorbells
   and completion IRQs per MiB, merged bios, readahead hits. Stats reset
   at boot, so the counters cover exactly this run. *)
let fio_stats_run ~mbytes profile =
  ignore (Apps.Runner.boot ~profile);
  let out = ref { Apps.Fio.write_mb_s = nan; read_cold_mb_s = nan; read_mb_s = nan } in
  Apps.Runner.spawn ~name:"fio" (fun c ->
      out := Apps.Fio.run c ~file:"/ext2/fio.dat" ~mbytes;
      0);
  Apps.Runner.run ();
  let per_mb n = float_of_int n /. float_of_int mbytes in
  ( !out,
    per_mb (Sim.Stats.get "blk.doorbell"),
    per_mb (Sim.Stats.get "blk.irq"),
    Sim.Stats.get "blk.merge",
    Sim.Stats.get "blk.readahead.hit" )

let fio_seq () =
  section "fio sequential I/O: batching + readahead ablation (ext2, cold cache)";
  let mbytes = if !quick then 4 else 8 in
  let base = Sim.Profile.asterinas in
  let variants =
    [
      ("batching+readahead", base);
      ("batching only", Sim.Profile.with_blk_readahead false base);
      ( "neither",
        Sim.Profile.with_blk_readahead false (Sim.Profile.with_blk_batching false base) );
    ]
  in
  let tbl = List.map (fun (name, p) -> (name, fio_stats_run ~mbytes p)) variants in
  Printf.printf "%-20s %11s %11s %11s %10s %8s %7s %7s\n" "variant" "write MB/s" "cold MB/s"
    "warm MB/s" "doorbl/MB" "irq/MB" "merged" "ra hit";
  List.iter
    (fun (name, (f, db, irq, merged, hit)) ->
      Printf.printf "%-20s %11.0f %11.0f %11.0f %10.1f %8.1f %7d %7d\n%!" name
        f.Apps.Fio.write_mb_s f.Apps.Fio.read_cold_mb_s f.Apps.Fio.read_mb_s db irq merged hit)
    tbl;
  let full, fdb, firq, _, _ = List.assoc "batching+readahead" tbl in
  let none, ndb, nirq, _, _ = List.assoc "neither" tbl in
  (* The "linux" column holds the ablated (off) variant, "aster" the full
     pipeline, so norm > 1 is the batching+readahead speedup. *)
  add_result ~linux:none.Apps.Fio.read_cold_mb_s ~aster:full.Apps.Fio.read_cold_mb_s
    ~norm:(full.Apps.Fio.read_cold_mb_s /. none.Apps.Fio.read_cold_mb_s)
    ~unit_:"MB/s" "table12/fio_seq_read_cold";
  add_result ~linux:none.Apps.Fio.write_mb_s ~aster:full.Apps.Fio.write_mb_s
    ~norm:(full.Apps.Fio.write_mb_s /. none.Apps.Fio.write_mb_s)
    ~unit_:"MB/s" "table12/fio_seq_write";
  add_result ~linux:ndb ~aster:fdb ~norm:(fdb /. ndb) ~unit_:"per MB"
    "table12/fio_doorbells_per_mb";
  add_result ~linux:nirq ~aster:firq ~norm:(firq /. nirq) ~unit_:"per MB"
    "table12/fio_irqs_per_mb";
  Printf.printf
    "batching+readahead vs neither: cold read %.2fx, write %.2fx; doorbells/MB %.0f -> %.0f, irqs/MB %.0f -> %.0f\n"
    (full.Apps.Fio.read_cold_mb_s /. none.Apps.Fio.read_cold_mb_s)
    (full.Apps.Fio.write_mb_s /. none.Apps.Fio.write_mb_s)
    ndb fdb nirq firq

(* --- fio fsync-per-write: what a journal commit costs --- *)

(* The fsync-heavy variant prices the crash-consistency plane: every
   4 KiB write is followed by fsync, so with the journal on each one is
   a full transaction commit (data sync + descriptor/content barrier +
   FUA commit record). Stats reset at boot; the counters cover exactly
   this run. *)
let fio_fsync_run ~mbytes profile =
  ignore (Apps.Runner.boot ~profile);
  let out = ref (nan, 0) in
  Apps.Runner.spawn ~name:"fio-fsync" (fun c ->
      out := Apps.Fio.run_fsync c ~file:"/ext2/fiof.dat" ~mbytes;
      0);
  Apps.Runner.run ();
  let mb_s, fsyncs = !out in
  ( mb_s,
    fsyncs,
    Sim.Stats.get "jbd.commit",
    Sim.Stats.get "blk.flush",
    Sim.Stats.get "blk.fua" )

let fio_fsync () =
  section "fio fsync-per-write: ext2 journal commit cost";
  let mbytes = if !quick then 1 else 2 in
  let mb_on, fs_on, commits, flush_on, fua_on = fio_fsync_run ~mbytes Sim.Profile.asterinas in
  let mb_off, fs_off, _, flush_off, _ =
    fio_fsync_run ~mbytes (Sim.Profile.with_ext2_journal false Sim.Profile.asterinas)
  in
  Printf.printf "%-12s %9s %8s %9s %9s %6s\n" "journal" "MB/s" "fsyncs" "commits" "flushes" "FUA";
  Printf.printf "%-12s %9.1f %8d %9d %9d %6d\n" "on" mb_on fs_on commits flush_on fua_on;
  Printf.printf "%-12s %9.1f %8d %9d %9d %6d\n%!" "off" mb_off fs_off 0 flush_off 0;
  add_result ~linux:mb_off ~aster:mb_on ~norm:(mb_on /. mb_off) ~unit_:"MB/s"
    "crash/fio_fsync_write";
  Printf.printf
    "journaling costs %.0f%% on the fsync-per-write path (%d commits, %d FUA records)\n"
    (100. *. (1. -. (mb_on /. mb_off)))
    commits fua_on

(* --- bw_tcp: TX batching / IRQ coalescing ablation --- *)

(* One bw_tcp run plus the net.* counters that attribute the win:
   doorbells and IRQs per MiB, bursts submitted, RX arrivals coalesced.
   The row boots its own kernel, which resets Stats, so the counters
   cover exactly this run (4 MiB guest -> host). *)
let bw_tcp_stats_run profile =
  let row = Apps.Lmbench.find "bw_tcp 64k (virtio)" in
  let mb_s = row.Apps.Lmbench.run profile in
  let per_mb n = float_of_int n /. 4.0 in
  ( mb_s,
    per_mb (Sim.Stats.get "net.doorbell"),
    per_mb (Sim.Stats.get "net.irq"),
    Sim.Stats.get "net.burst",
    Sim.Stats.get "net.coalesced_rx" )

let bw_tcp_batch () =
  section "bw_tcp: TX batching + IRQ coalescing ablation (virtio, 64k writes)";
  (* Offload-free on purpose: this ablation isolates the PR-5 batching
     and coalescing mechanics against the software-segmentation
     baseline (descriptor == wire frame), keeping the committed
     table12 rows comparable across the offload work. The offload wins
     have their own matrix (the [offloads] target). *)
  let base = Sim.Profile.with_all_offloads false Sim.Profile.asterinas in
  let variants =
    [
      ("batching+coalesce", base);
      ("batching only", Sim.Profile.with_net_irq_coalesce false base);
      ( "neither",
        Sim.Profile.with_net_irq_coalesce false (Sim.Profile.with_net_tx_batching false base) );
    ]
  in
  let tbl = List.map (fun (name, p) -> (name, bw_tcp_stats_run p)) variants in
  Printf.printf "%-20s %11s %10s %8s %8s %8s\n" "variant" "bw MB/s" "doorbl/MB" "irq/MB"
    "bursts" "coal rx";
  List.iter
    (fun (name, (mb, db, irq, bursts, coal)) ->
      Printf.printf "%-20s %11.0f %10.1f %8.1f %8d %8d\n%!" name mb db irq bursts coal)
    tbl;
  let full, fdb, firq, _, _ = List.assoc "batching+coalesce" tbl in
  let none, ndb, nirq, _, _ = List.assoc "neither" tbl in
  (* The "linux" column holds the ablated (off) variant, "aster" the full
     pipeline, so norm > 1 is the batching+coalescing speedup. *)
  add_result ~linux:none ~aster:full ~norm:(full /. none) ~unit_:"MB/s" "table12/bw_tcp_batch";
  add_result ~linux:ndb ~aster:fdb ~norm:(fdb /. ndb) ~unit_:"per MB"
    "table12/net_doorbells_per_mb";
  add_result ~linux:nirq ~aster:firq ~norm:(firq /. nirq) ~unit_:"per MB"
    "table12/net_irqs_per_mb";
  (* Batching must not tax the single-segment path: a ping-pong burst is
     one segment, so plug/flush adds no doorbells and no latency. The
     comparison holds IRQ coalescing constant (the deployed config) so
     it isolates the plug/flush cost alone. The "neither" latency is
     reported too: without coalescing, per-completion interrupts trip
     the kernel's IRQ-storm throttle (mask + 300 us recovery polls),
     which dominates the uncoalesced ping-pong.  *)
  let lat = Apps.Lmbench.find "lat_tcp (virtio)" in
  let lat_on = lat.Apps.Lmbench.run base in
  let lat_off = lat.Apps.Lmbench.run (Sim.Profile.with_net_tx_batching false base) in
  let lat_none =
    lat.Apps.Lmbench.run
      (Sim.Profile.with_net_irq_coalesce false (Sim.Profile.with_net_tx_batching false base))
  in
  add_result ~linux:lat_off ~aster:lat_on ~norm:(lat_on /. lat_off) ~unit_:"us"
    "table12/lat_tcp_batch";
  Printf.printf
    "batching+coalesce vs neither: bw_tcp %.2fx; doorbells/MB %.0f -> %.0f, irqs/MB %.0f -> %.0f\n"
    (full /. none) ndb fdb nirq firq;
  Printf.printf
    "lat_tcp: batching on %.2f us vs off %.2f us (%+.1f%%, coalescing fixed on); uncoalesced %.2f us (IRQ-storm throttled)\n"
    lat_on lat_off
    (100. *. ((lat_on /. lat_off) -. 1.))
    lat_none

(* --- Offload matrix: gso / gro / csum / zero-copy on-off ablation --- *)

(* One row per knob, each measured three ways: guest-TX bw_tcp (TSO +
   csum-tx + the copy ledger), host->guest bw_tcp_rx (GRO + csum-rx),
   and nginx f64k (zero-copy sendfile end to end). Recipe documented in
   EXPERIMENTS.md. *)
let offload_matrix () =
  section "Offload ablation: GSO/GRO/checksum/zero-copy matrix";
  let base = Sim.Profile.asterinas in
  let variants =
    [
      ("all-on", base);
      ("no-gso", Sim.Profile.with_tcp_gso false base);
      ("no-gro", Sim.Profile.with_net_gro false base);
      ("no-csum", Sim.Profile.with_csum_offload false base);
      ("no-zerocopy", Sim.Profile.with_sendfile_zero_copy false base);
      ("all-off", Sim.Profile.with_all_offloads false base);
    ]
  in
  let n_http = if !quick then 300 else 1000 in
  let bw_tx_row = Apps.Lmbench.find "bw_tcp 64k (virtio)" in
  Printf.printf "%-12s %10s %12s %12s %10s %12s %10s\n" "variant" "tx MB/s" "copied B/MB"
    "rx MB/s" "rx_call/MB" "gro_merged" "nginx r/s";
  List.iter
    (fun (name, p) ->
      let tx = bw_tx_row.Apps.Lmbench.run p in
      let copied = float_of_int (Sim.Stats.get "net.bytes_copied") /. 4.0 in
      let rx = Apps.Lmbench.bw_tcp_rx_virtio ~msg:65536 p in
      let rx_calls = float_of_int (Sim.Stats.get "tcp.rx_calls") /. 4.0 in
      let merged = Sim.Stats.get "net.gro_merged" in
      let rps = nginx_rps p "f64k" n_http in
      Printf.printf "%-12s %10.0f %12.0f %12.0f %10.0f %12d %10.0f\n%!" name tx copied rx
        rx_calls merged rps;
      add_result ~aster:tx ~unit_:"MB/s" (Printf.sprintf "offloads/%s/bw_tcp_tx" name);
      add_result ~aster:copied ~unit_:"bytes per MB"
        (Printf.sprintf "offloads/%s/tx_bytes_copied_per_mb" name);
      add_result ~aster:rx ~unit_:"MB/s" (Printf.sprintf "offloads/%s/bw_tcp_rx" name);
      add_result ~aster:rx_calls ~unit_:"per MB"
        (Printf.sprintf "offloads/%s/rx_charges_per_mb" name);
      add_result ~aster:rps ~unit_:"req/s" (Printf.sprintf "offloads/%s/nginx_f64k" name))
    variants

(* --- c10k: epoll readiness at connection scale --- *)

let c10k_row ~conns ~rounds ~batch ~churn =
  let k = Apps.Runner.boot ~profile:(aster_p ()) in
  let host = Aster.Kernel.attach_host k in
  Apps.C10k.spawn_server ();
  let out = ref None in
  Apps.C10k.run ~host ~conns ~rounds ~batch ~churn ~on_done:(fun r -> out := Some r);
  Apps.Runner.run ();
  match !out with None -> failwith "c10k: driver did not finish" | Some r -> r

(* Mostly-idle pool with churn: the echo tail and the per-wait sweep
   must not grow with the idle crowd (epoll is O(ready)). The churn
   knob prices registration/teardown on the same path; knob table in
   EXPERIMENTS.md. *)
let c10k () =
  section "c10k: epoll echo under mostly-idle connections + churn";
  let rows = if !quick then [ 500; 2000 ] else [ 2500; 10000; 25000 ] in
  Printf.printf "%-8s %8s %8s %10s %10s %10s %12s %10s\n" "conns" "pings" "churned" "p50 us"
    "p99 us" "max us" "scan/wait" "waits";
  List.iter
    (fun conns ->
      let r = c10k_row ~conns ~rounds:20 ~batch:32 ~churn:10 in
      add_result ~aster:r.Apps.C10k.p99_us ~unit_:"us"
        (Printf.sprintf "c10k/%d/p99_wakeup" conns);
      add_result ~aster:r.Apps.C10k.scan_per_wait ~unit_:"entries/wait"
        (Printf.sprintf "c10k/%d/scan_per_wait" conns);
      Printf.printf "%-8d %8d %8d %10.1f %10.1f %10.1f %12.2f %10d\n%!" r.Apps.C10k.conns
        r.Apps.C10k.pings r.Apps.C10k.churned r.Apps.C10k.p50_us r.Apps.C10k.p99_us
        r.Apps.C10k.max_us r.Apps.C10k.scan_per_wait r.Apps.C10k.wait_calls)
    rows

(* --- Smoke: fast CI gate over the batched pipelines (@bench-smoke) --- *)

let smoke () =
  section "bench smoke: batched block pipeline sanity";
  let mbytes = 2 in
  let base = Sim.Profile.asterinas in
  let full, fdb, firq, merged, hit = fio_stats_run ~mbytes base in
  let none, ndb, nirq, _, _ =
    fio_stats_run ~mbytes
      (Sim.Profile.with_blk_readahead false (Sim.Profile.with_blk_batching false base))
  in
  let speedup = full.Apps.Fio.read_cold_mb_s /. none.Apps.Fio.read_cold_mb_s in
  Printf.printf
    "cold read %.0f -> %.0f MB/s (%.2fx); doorbells/MB %.0f -> %.0f; irqs/MB %.0f -> %.0f; merged %d; ra hits %d\n"
    none.Apps.Fio.read_cold_mb_s full.Apps.Fio.read_cold_mb_s speedup ndb fdb nirq firq merged
    hit;
  let fail = ref false in
  let expect name ok = if not ok then begin fail := true; Printf.printf "FAIL: %s\n" name end in
  expect "batching+readahead speeds cold sequential read by >=1.2x" (speedup >= 1.2);
  expect "batching merges bios" (merged > 0);
  expect "readahead window produces demand hits" (hit > 0);
  expect "batching cuts doorbells per MB" (fdb < ndb);
  expect "batching cuts completion IRQs per MB" (firq < nirq);
  print_endline "bench smoke: batched network pipeline sanity";
  (* Offload-free, like the bw_tcp_batch ablation: these gates pin the
     PR-5 batching mechanics under software segmentation, where one
     descriptor is one wire frame. *)
  let swseg = Sim.Profile.with_all_offloads false Sim.Profile.asterinas in
  let nfull, nfdb, nfirq, bursts, _ = bw_tcp_stats_run swseg in
  let nnone, nndb, nnirq, _, _ =
    bw_tcp_stats_run
      (Sim.Profile.with_net_irq_coalesce false (Sim.Profile.with_net_tx_batching false swseg))
  in
  Printf.printf
    "bw_tcp %.0f -> %.0f MB/s (%.2fx); doorbells/MB %.0f -> %.0f; irqs/MB %.0f -> %.0f; bursts %d\n"
    nnone nfull (nfull /. nnone) nndb nfdb nnirq nfirq bursts;
  expect "TX batching speeds bw_tcp by >=1.2x" (nfull >= 1.2 *. nnone);
  expect "TX bursts were submitted" (bursts > 0);
  expect "batching+coalescing cuts net doorbells+IRQs per MB >=5x"
    (5. *. (nfdb +. nfirq) <= nndb +. nnirq);
  let lat = Apps.Lmbench.find "lat_tcp (virtio)" in
  let lat_on = lat.Apps.Lmbench.run swseg in
  let lat_off = lat.Apps.Lmbench.run (Sim.Profile.with_net_tx_batching false swseg) in
  Printf.printf "lat_tcp batching on %.2f us vs off %.2f us\n" lat_on lat_off;
  expect "TX batching does not tax single-segment latency (>5%)" (lat_on <= lat_off *. 1.05);
  print_endline "bench smoke: segmentation offload + zero-copy pipeline sanity";
  (* Tentpole gates: GSO+GRO+csum+zero-copy are on by default; each
     gate compares the default pipeline against the software baseline
     and checks the committed pre-offload numbers still reproduce. *)
  let rx_stats p =
    let mb_s = Apps.Lmbench.bw_tcp_rx_virtio ~msg:65536 p in
    ( mb_s,
      float_of_int (Sim.Stats.get "tcp.rx_calls") /. 4.0,
      Sim.Stats.get "net.gro_merged" )
  in
  let rx_on, calls_on, merged_on = rx_stats base in
  let rx_off, calls_off, _ = rx_stats swseg in
  Printf.printf
    "bw_tcp_rx (host->guest): %.0f MB/s, charge_rx %.0f/MB, gro_merged %d (GRO on) | %.0f MB/s, %.0f/MB (off)\n"
    rx_on calls_on merged_on rx_off calls_off;
  expect "GRO merges RX segments" (merged_on > 0);
  expect "GRO cuts stack charge_rx invocations per MB >=5x" (5. *. calls_on <= calls_off);
  expect "GRO does not slow the RX stream" (rx_on >= rx_off *. 0.95);
  let nginx_copied p n =
    let rps = nginx_rps p "f64k" n in
    let mb = float_of_int (n * 65536) /. 1048576. in
    (rps, float_of_int (Sim.Stats.get "net.bytes_copied") /. mb)
  in
  let n_http = 400 in
  let ast_rps, zc_copied = nginx_copied base n_http in
  let _, bounce_copied = nginx_copied (Sim.Profile.with_sendfile_zero_copy false base) n_http in
  let lin_rps, _ = nginx_copied Sim.Profile.linux n_http in
  Printf.printf
    "nginx f64k: aster %.0f vs linux %.0f req/s (norm %.3f); sendfile copies %.0f -> %.0f bytes/MB\n"
    ast_rps lin_rps (ast_rps /. lin_rps) bounce_copied zc_copied;
  expect "zero-copy+GSO lift nginx_f64k to parity (norm >= 1.0)" (ast_rps >= lin_rps);
  expect "zero-copy sendfile cuts bytes-copied/MB >=2x" (2. *. zc_copied <= bounce_copied);
  (* The knobs-off path must still BE the pre-offload pipeline: the
     same-seed run reproduces the committed bw_tcp_batch row exactly
     (tolerance covers float printing only, not behaviour). *)
  let frozen_bw = 1140.24 and frozen_db = 175.0 and frozen_irq = 3.0 in
  Printf.printf "all-offloads-off bw_tcp: %.2f MB/s, %.1f doorbells/MB, %.1f irqs/MB (committed %.2f / %.0f / %.0f)\n"
    nfull nfdb nfirq frozen_bw frozen_db frozen_irq;
  expect "all-offloads-off reproduces the committed bw_tcp pipeline byte-for-byte"
    (Float.abs (nfull -. frozen_bw) /. frozen_bw < 0.001
    && Float.abs (nfdb -. frozen_db) < 0.5
    && Float.abs (nfirq -. frozen_irq) < 0.5);
  print_endline "bench smoke: crash-consistency plane cost";
  (* [full] above already runs with the journal on (the default
     profile); only the cold-read path is gated — journaling is a
     write-side mechanism and must stay off the read path. *)
  let nojournal, _, _, _, _ =
    fio_stats_run ~mbytes (Sim.Profile.with_ext2_journal false base)
  in
  Printf.printf "fio_seq cold read: journal on %.0f MB/s vs off %.0f MB/s (%.2fx)\n"
    full.Apps.Fio.read_cold_mb_s nojournal.Apps.Fio.read_cold_mb_s
    (full.Apps.Fio.read_cold_mb_s /. nojournal.Apps.Fio.read_cold_mb_s);
  expect "journaling costs <=15% on the fio_seq cold-read path"
    (full.Apps.Fio.read_cold_mb_s >= 0.85 *. nojournal.Apps.Fio.read_cold_mb_s);
  let fmb, ffs, fcommits, _, ffua = fio_fsync_run ~mbytes:1 base in
  Printf.printf "fio fsync-per-write: %.1f MB/s, %d fsyncs -> %d commits, %d FUA records\n"
    fmb ffs fcommits ffua;
  expect "fsync-heavy run commits once per fsync" (ffs > 0 && fcommits >= ffs);
  expect "commit records are written FUA" (ffua > 0);
  print_endline "bench smoke: probe plane cost (must be exactly zero)";
  (* The probe VM charges no virtual cycles, so a run with the always-on
     watchdogs (the default boot), a run with every probe detached, and
     a run with extra programs attached must all be byte-identical: same
     virtual end time, same MB/s, same-seed same-everything. Any drift
     means a probe consumer leaked cost or state into the kernel. *)
  let probe_fio_run ~detach ~extra () =
    Aster.Kernel.boot_probes := extra;
    ignore (Apps.Runner.boot ~profile:base);
    Aster.Kernel.boot_probes := [];
    if detach then Kprobe.Registry.reset ();
    let out = ref { Apps.Fio.write_mb_s = nan; read_cold_mb_s = nan; read_mb_s = nan } in
    Apps.Runner.spawn ~name:"fio" (fun c ->
        out := Apps.Fio.run c ~file:"/ext2/fio.dat" ~mbytes;
        0);
    Apps.Runner.run ();
    (!out, Sim.Clock.now ())
  in
  let watchdogs, t_watchdogs = probe_fio_run ~detach:false ~extra:[] () in
  let detached, t_detached = probe_fio_run ~detach:true ~extra:[] () in
  let attached, t_attached =
    probe_fio_run ~detach:false
      ~extra:
        (List.filter_map Kprobe.Templates.by_name
           [ "blk.lat"; "syscall.count"; "read_lat_by_fd" ])
      ()
  in
  let blk_lat_count =
    match Kprobe.Registry.find "blk.lat" with
    | None -> 0
    | Some l -> (
      match Hashtbl.find_opt l.Kprobe.Registry.store.Kprobe.Maps.hists "lat_us" with
      | Some h -> Sim.Hist.count h
      | None -> 0)
  in
  Printf.printf
    "fio_seq cold read: watchdogs %.3f MB/s @%Ld | detached %.3f MB/s @%Ld | +3 probes \
     %.3f MB/s @%Ld (blk.lat observed %d bios)\n"
    watchdogs.Apps.Fio.read_cold_mb_s t_watchdogs detached.Apps.Fio.read_cold_mb_s
    t_detached attached.Apps.Fio.read_cold_mb_s t_attached blk_lat_count;
  let fio_equal a b =
    a.Apps.Fio.write_mb_s = b.Apps.Fio.write_mb_s
    && a.Apps.Fio.read_cold_mb_s = b.Apps.Fio.read_cold_mb_s
    && a.Apps.Fio.read_mb_s = b.Apps.Fio.read_mb_s
  in
  expect "detached probes leave fio_seq byte-identical (virtual end time)"
    (Int64.equal t_watchdogs t_detached);
  expect "detached probes leave fio_seq byte-identical (MB/s)" (fio_equal watchdogs detached);
  expect "attached probes cost zero on fio_seq (virtual end time)"
    (Int64.equal t_watchdogs t_attached);
  expect "attached probes cost zero on fio_seq (MB/s)" (fio_equal watchdogs attached);
  expect "attached blk.lat probe observed the run" (blk_lat_count > 0);
  let bw_default, _, _, _, _ = bw_tcp_stats_run base in
  Aster.Kernel.boot_probes := List.filter_map Kprobe.Templates.by_name [ "net.bytes" ];
  let bw_probed, _, _, _, _ = bw_tcp_stats_run base in
  Aster.Kernel.boot_probes := [];
  Printf.printf "bw_tcp 64k: default %.3f MB/s | +net.bytes probe %.3f MB/s\n" bw_default
    bw_probed;
  expect "attached net.bytes probe costs zero on bw_tcp" (bw_default = bw_probed);
  print_endline "bench smoke: span plane cost (must be exactly zero)";
  (* The span plane makes the same promise as the probe VM: zero virtual
     cycles, no RNG draws. A span-off run must be byte-identical to the
     span-on runs above (same MB/s, same virtual end time), and turning
     spans back on must land on exactly the same end cycle. [full] and
     [bw_default] above already ran span-on (the harness enables kspan
     at startup), so they are the baselines. *)
  let with_span on f =
    if on then begin Sim.Span.enable (); Sim.Span.set_auto true end
    else begin Sim.Span.disable (); Sim.Span.set_auto false end;
    let r = f () in
    (r, Sim.Clock.now ())
  in
  let (fio_off, _, _, _, _), t_fio_off = with_span false (fun () -> fio_stats_run ~mbytes base) in
  let (fio_on, _, _, _, _), t_fio_on = with_span true (fun () -> fio_stats_run ~mbytes base) in
  let fio_spans = Sim.Span.finished_count () in
  let fio_residual = Sim.Span.max_residual_frac () in
  let (bw_off, _, _, _, _), t_bw_off = with_span false (fun () -> bw_tcp_stats_run base) in
  let (bw_on, _, _, _, _), t_bw_on = with_span true (fun () -> bw_tcp_stats_run base) in
  Printf.printf
    "fio_seq: span off %.3f MB/s @%Ld | span on %.3f MB/s @%Ld (%d spans, worst residual %.4f)\n"
    fio_off.Apps.Fio.read_cold_mb_s t_fio_off fio_on.Apps.Fio.read_cold_mb_s t_fio_on
    fio_spans fio_residual;
  Printf.printf "bw_tcp 64k: span off %.3f MB/s @%Ld | span on %.3f MB/s @%Ld\n" bw_off
    t_bw_off bw_on t_bw_on;
  expect "span-off fio_seq byte-identical to span-on baseline (MB/s)" (fio_equal fio_off full);
  expect "span-on adds zero virtual cycles to fio_seq (same end cycle)"
    (Int64.equal t_fio_off t_fio_on);
  expect "span-on fio_seq byte-identical (MB/s)" (fio_equal fio_off fio_on);
  expect "span-off bw_tcp byte-identical to span-on baseline (MB/s)" (bw_off = bw_default);
  expect "span-on adds zero virtual cycles to bw_tcp (same end cycle)"
    (Int64.equal t_bw_off t_bw_on);
  expect "span plane observed the fio run" (fio_spans > 0);
  expect "span critical path attributes >=95% of tail wall time" (fio_residual < 0.05);
  print_endline "bench smoke: epoll readiness at connection scale";
  (* O(ready), not O(fds): quadrupling the idle pool must leave both
     the per-wait sweep and the echo tail flat. The 10k row is the
     acceptance floor: >=10k live mostly-idle connections with churn. *)
  let small = c10k_row ~conns:2500 ~rounds:20 ~batch:32 ~churn:10 in
  let big = c10k_row ~conns:10000 ~rounds:20 ~batch:32 ~churn:10 in
  Printf.printf
    "c10k: 2500 conns p99 %.1f us scan/wait %.2f | 10000 conns p99 %.1f us scan/wait %.2f (%d pings, %d churned)\n"
    small.Apps.C10k.p99_us small.Apps.C10k.scan_per_wait big.Apps.C10k.p99_us
    big.Apps.C10k.scan_per_wait big.Apps.C10k.pings big.Apps.C10k.churned;
  expect "c10k holds >=10k mostly-idle connections through churn"
    (big.Apps.C10k.conns >= 10000 && big.Apps.C10k.pings > 0 && big.Apps.C10k.churned > 0);
  expect "epoll_wait sweep is O(ready): scan/wait flat as idle pool grows 4x"
    (big.Apps.C10k.scan_per_wait <= 2. *. small.Apps.C10k.scan_per_wait);
  expect "p99 wakeup latency independent of idle-connection count"
    (big.Apps.C10k.p99_us <= 1.5 *. small.Apps.C10k.p99_us);
  print_endline "bench smoke: event-loop servers vs legacy thread loops";
  (* The epoll rewrites must not tax the existing fig5a/redis rows:
     event-loop throughput >= 0.95x the thread-per-conn loops. *)
  let n_par = 400 in
  let ep_nginx = nginx_rps Sim.Profile.asterinas "f4k" n_par in
  let th_nginx = nginx_rps ~mode:`Threads Sim.Profile.asterinas "f4k" n_par in
  let ep_redis = redis_rps Sim.Profile.asterinas "GET" 800 in
  let th_redis = redis_rps ~mode:`Threads Sim.Profile.asterinas "GET" 800 in
  Printf.printf "nginx f4k: epoll %.0f vs threads %.0f req/s | redis GET: epoll %.0f vs threads %.0f req/s\n"
    ep_nginx th_nginx ep_redis th_redis;
  expect "epoll-loop nginx holds the thread-pool row (>=0.95x)" (ep_nginx >= 0.95 *. th_nginx);
  expect "epoll-loop redis holds the thread-per-conn row (>=0.95x)" (ep_redis >= 0.95 *. th_redis);
  if !fail then exit 1 else print_endline "bench smoke: OK"

(* --- Regression gate: bench --compare BASELINE.json --- *)

(* Minimal parser for the JSON this harness writes: each result object
   sits on its own line, so field extraction is line-local. Only the
   fields the gate needs are read. *)
let str_find s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1) in
  go 0

let line_field_string line key =
  let pat = Printf.sprintf "\"%s\": \"" key in
  match str_find line pat with
  | None -> None
  | Some i -> (
    let start = i + String.length pat in
    match String.index_from_opt line start '"' with
    | None -> None
    | Some j -> Some (String.sub line start (j - start)))

let line_field_number line key =
  let pat = Printf.sprintf "\"%s\": " key in
  match str_find line pat with
  | None -> None
  | Some i ->
    let start = i + String.length pat in
    let j = ref start in
    let num c = match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false in
    while !j < String.length line && num line.[!j] do
      incr j
    done;
    if !j = start then None else float_of_string_opt (String.sub line start (!j - start))

let read_baseline path =
  let ic = open_in path in
  let rows = ref [] in
  (try
     while true do
       let line = input_line ic in
       match (line_field_string line "benchmark", line_field_number line "aster") with
       | Some b, Some v ->
         let u = Option.value ~default:"" (line_field_string line "unit") in
         rows := (b, (u, v)) :: !rows
       | _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  !rows

let gated_metric b =
  let pre p = String.length b >= String.length p && String.sub b 0 (String.length p) = p in
  pre "table7/" || pre "table12/"

(* Latency-style units regress upward, throughput-style downward. *)
let lower_is_better u =
  let u = String.lowercase_ascii u in
  str_find u "mb/s" = None && str_find u "req/s" = None && str_find u "ops" = None

let compare_with_baseline path =
  let base = read_baseline path in
  let checked = ref 0 in
  let regressions = ref [] in
  List.iter
    (fun r ->
      match r.aster with
      | Some v when gated_metric r.benchmark -> (
        match List.assoc_opt r.benchmark base with
        | Some (u, bv) when Float.abs bv > 1e-9 ->
          incr checked;
          let delta = if lower_is_better u then (v -. bv) /. bv else (bv -. v) /. bv in
          if delta > 0.10 then regressions := (r.benchmark, u, bv, v, delta) :: !regressions
        | _ -> ())
      | _ -> ())
    !results;
  Printf.printf "\ncompare vs %s: %d table7/table12 metrics checked, %d regressed >10%%\n" path
    !checked
    (List.length !regressions);
  List.iter
    (fun (b, u, bv, v, d) ->
      Printf.printf "  REGRESSION %-40s %s: baseline %.4g -> %.4g (%.0f%% worse)\n" b u bv v
        (100. *. d))
    (List.rev !regressions);
  if !regressions <> [] then exit 1

let all_targets =
  [
    ("table1", table1);
    ("table3", table3);
    ("table7", table7);
    ("table8", table8);
    ("table9", table9);
    ("table10", table10);
    ("table11", table11);
    ("table12", table12);
    ("fig5a", fig5a);
    ("fig5b", fig5b);
    ("fig5c", table12);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig9", fig9);
    ("ablations", ablations);
    ("bechamel", bechamel_table8);
    ("chaos", chaos_bench);
    ("fio_seq", fio_seq);
    ("fio_fsync", fio_fsync);
    ("bw_tcp_batch", bw_tcp_batch);
    ("offloads", offload_matrix);
    ("c10k", c10k);
    ("smoke", smoke);
  ]

let default_order =
  [
    "table1"; "table3"; "table7"; "table8"; "table9"; "table10"; "fig5a"; "table11"; "table12";
    "fig6"; "fio_seq"; "fio_fsync"; "bw_tcp_batch"; "offloads"; "c10k"; "fig7"; "fig9";
    "ablations"; "bechamel";
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json_path = ref None in
  let baseline = ref None in
  let rec parse acc = function
    | [] -> List.rev acc
    | "quick" :: rest ->
      quick := true;
      parse acc rest
    | "--offloads-off" :: rest ->
      offloads_off := true;
      parse acc rest
    | "--json" :: path :: rest ->
      json_path := Some path;
      parse acc rest
    | "--json" :: [] ->
      prerr_endline "--json requires a file argument";
      exit 2
    | "--compare" :: path :: rest ->
      baseline := Some path;
      parse acc rest
    | "--compare" :: [] ->
      prerr_endline "--compare requires a baseline JSON file argument";
      exit 2
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] args in
  Apps.Libc.install_child_resolver ();
  (* kprof rides along for the cpu breakdown in the JSON: it charges no
     virtual cycles, so measured numbers are unchanged. *)
  Sim.Prof.enable ();
  (* kspan rides along the same way for the p99 critical-path column:
     auto syscall/app spans charge no virtual cycles either (the smoke
     target gates this with an end-cycle comparison). *)
  Sim.Span.enable ();
  Sim.Span.set_auto true;
  let targets = if args = [] then default_order else args in
  List.iter
    (fun t ->
      match List.assoc_opt t all_targets with
      | Some f -> f ()
      | None -> Printf.printf "unknown target: %s\n" t)
    targets;
  (* The committed BENCH_results.json only ever holds the full default
     run with the default profiles: a subset invocation (smoke, one
     ablation) or an --offloads-off validation run writes it only where
     --json explicitly says to, instead of clobbering the trajectory
     file with a partial or knobs-off result set. *)
  (match (!json_path, args) with
  | Some path, _ -> write_json ~path ~targets
  | None, [] -> if not !offloads_off then write_json ~path:"BENCH_results.json" ~targets
  | None, _ :: _ -> ());
  (* Regression gate last, after the JSON is safely on disk: exits
     non-zero when any table7/table12 metric is >10% worse than the
     baseline. *)
  match !baseline with None -> () | Some path -> compare_with_baseline path
