(* Build a graph of [total] crates of which [unsafe_n] use unsafe, sized
   so total LCS and TCB LCS match the published aggregates. Sizes are
   spread deterministically (larger "core" crates first). Safe crates
   that the TCB depends on are already counted inside [tcb_lcs] by
   construction: we add one such dependency edge per OS to exercise
   Rule 3. *)
let spread total_amount n =
  (* n positive weights summing to total_amount, front-loaded. *)
  let weights = List.init n (fun i -> float_of_int (n - i)) in
  let wsum = List.fold_left ( +. ) 0. weights in
  let amounts = List.map (fun w -> int_of_float (w /. wsum *. float_of_int total_amount)) weights in
  (* Fix rounding drift on the first element. *)
  match amounts with
  | first :: rest ->
    let s = List.fold_left ( + ) 0 amounts in
    (first + (total_amount - s)) :: rest
  | [] -> []

let make_os ~prefix ~unsafe_n ~safe_n ~tcb_lcs ~safe_lcs =
  (* One safe crate ("<prefix>-shared") is a dependency of the first
     unsafe crate: Rule 3 pulls it into the TCB. Its size is part of
     [tcb_lcs]; the remaining safe crates carry [safe_lcs]. *)
  let shared_size = max 1 (tcb_lcs / (unsafe_n * 4)) in
  let unsafe_sizes = spread (tcb_lcs - shared_size) unsafe_n in
  let safe_sizes = spread safe_lcs (max 1 (safe_n - 1)) in
  let shared_name = prefix ^ "-shared" in
  let unsafe_crates =
    List.mapi
      (fun i size ->
        {
          Crate_graph.name = Printf.sprintf "%s-unsafe-%02d" prefix i;
          loc = size;
          linked_fraction = 1.0;
          uses_unsafe = true;
          toolchain = false;
          deps = (if i = 0 then [ shared_name ] else []);
        })
      unsafe_sizes
  in
  let shared =
    {
      Crate_graph.name = shared_name;
      loc = shared_size;
      linked_fraction = 1.0;
      uses_unsafe = false;
      toolchain = false;
      deps = [];
    }
  in
  let safe_crates =
    List.mapi
      (fun i size ->
        {
          Crate_graph.name = Printf.sprintf "%s-safe-%02d" prefix i;
          loc = size;
          linked_fraction = 1.0;
          uses_unsafe = false;
          toolchain = false;
          deps = [];
        })
      safe_sizes
  in
  let toolchain =
    [ { Crate_graph.name = prefix ^ "-core"; loc = 90000; linked_fraction = 0.1;
        uses_unsafe = true; toolchain = true; deps = [] };
      { Crate_graph.name = prefix ^ "-alloc"; loc = 30000; linked_fraction = 0.1;
        uses_unsafe = true; toolchain = true; deps = [] } ]
  in
  Crate_graph.build ((shared :: unsafe_crates) @ safe_crates @ toolchain)

(* Table 9 aggregates. *)
let redleaf = make_os ~prefix:"redleaf" ~unsafe_n:36 ~safe_n:22 ~tcb_lcs:17182 ~safe_lcs:(25992 - 17182)

let theseus = make_os ~prefix:"theseus" ~unsafe_n:54 ~safe_n:117 ~tcb_lcs:43978 ~safe_lcs:(70468 - 43978)

let tock = make_os ~prefix:"tock" ~unsafe_n:91 ~safe_n:7 ~tcb_lcs:2903 ~safe_lcs:(6628 - 2903)

let asterinas =
  make_os ~prefix:"asterinas" ~unsafe_n:2 (* ostd + ostd-macros *) ~safe_n:89 ~tcb_lcs:10571
    ~safe_lcs:(75285 - 10571)

(* Table 1's Linux column: the RFL crate plus 10 notable Rust modules,
   6 of 11 using unsafe. *)
let linux_rfl = make_os ~prefix:"rfl" ~unsafe_n:6 ~safe_n:5 ~tcb_lcs:19000 ~safe_lcs:7000

let table9 =
  [ ("RedLeaf", redleaf); ("Theseus", theseus); ("Tock", tock); ("Asterinas", asterinas) ]

let table1 =
  [ ("Linux", linux_rfl); ("Tock", tock); ("RedLeaf", redleaf); ("Theseus", theseus) ]

let linux_component_growth =
  [
    ("Task scheduler", 1.6, 27.2);
    ("Slab allocator", 1.6, 8.7);
    ("Frame allocator", 1.2, 7.1);
  ]
