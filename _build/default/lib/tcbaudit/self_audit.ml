type entry = { library : string; loc : int; tcb : bool }

type report = { entries : entry list; total_loc : int; tcb_loc : int; relative : float }

let tcb_libs = [ "core"; "machine"; "sim" ]

let kernel_libs = [ "core"; "machine"; "sim"; "aster"; "linuxsim"; "apps" ]

let count_lines file =
  let ic = open_in file in
  let n = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr n
     done
   with End_of_file -> ());
  close_in ic;
  !n

let lib_loc dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.fold_left
      (fun acc f ->
        if Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli" then
          acc + count_lines (Filename.concat dir f)
        else acc)
      0 (Sys.readdir dir)
  else 0

let find_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

let run ?root () =
  let root =
    match root with
    | Some r -> r
    | None -> ( match find_root () with Some r -> r | None -> ".")
  in
  let entries =
    List.filter_map
      (fun lib ->
        let loc = lib_loc (Filename.concat (Filename.concat root "lib") lib) in
        if loc = 0 then None else Some { library = lib; loc; tcb = List.mem lib tcb_libs })
      kernel_libs
  in
  let total_loc = List.fold_left (fun a e -> a + e.loc) 0 entries in
  let tcb_loc = List.fold_left (fun a e -> if e.tcb then a + e.loc else a) 0 entries in
  {
    entries;
    total_loc;
    tcb_loc;
    relative = (if total_loc = 0 then 0. else float_of_int tcb_loc /. float_of_int total_loc);
  }
