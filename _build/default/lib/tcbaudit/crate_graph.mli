(** Crate-level TCB analysis (paper §6.2.1).

    Rules: (1) toolchain crates are trusted and excluded; (2) any crate
    containing [unsafe] is in the run-time TCB; (3) dependencies of TCB
    crates join the TCB transitively. Sizes use Linked Code Size — the
    fraction of each crate's lines that survive into the linked image. *)

type crate = {
  name : string;
  loc : int;                 (** source lines *)
  linked_fraction : float;   (** fraction reachable after LTO *)
  uses_unsafe : bool;
  toolchain : bool;
  deps : string list;
}

type t

val build : crate list -> t
(** Raises [Invalid_argument] on duplicate names or missing deps. *)

val crates : t -> crate list

val tcb : t -> string list
(** Names in the run-time TCB after applying Rules 1-3 (sorted). *)

val is_tcb : t -> string -> bool

val lcs : t -> string -> int
(** Linked code size of one crate. *)

val total_lcs : t -> int
(** Sum over non-toolchain crates. *)

val tcb_lcs : t -> int

val relative_tcb : t -> float
(** tcb_lcs / total_lcs. *)

val unsafe_crate_fraction : t -> int * int
(** (unsafe-utilizing crates, total crates), toolchain excluded —
    Table 1's metric. *)
