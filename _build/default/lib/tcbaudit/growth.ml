type point = { month : int; kloc : float }

(* Three years of development (Fig. 7): the kernel grows super-linearly
   as subsystems and drivers land; OSTD grows early, then flattens as
   policy injection keeps mechanisms stable. Final sizes match the
   paper: ~90 KLoC non-TCB vs ~10.5 KLoC TCB at month 36. *)
let asterinas_series =
  List.init 37 (fun m ->
      let x = float_of_int m in
      { month = m; kloc = 0.5 +. (0.9 *. x) +. (0.044 *. x *. x) })

let ostd_series =
  List.init 37 (fun m ->
      let x = float_of_int m in
      (* Saturating growth: fast start, flattening tail. *)
      { month = m; kloc = 10.8 *. (1. -. exp (-0.09 *. x)) +. 0.4 })

type fit = { intercept : float; slope : float; quadratic : float; rmse : float }

(* Least squares via normal equations on [1; x] or [1; x; x^2]. *)
let solve3 a b =
  (* Gaussian elimination for up to 3x3. *)
  let n = Array.length b in
  let a = Array.map Array.copy a and b = Array.copy b in
  for col = 0 to n - 1 do
    let pivot = ref col in
    for r = col + 1 to n - 1 do
      if abs_float a.(r).(col) > abs_float a.(!pivot).(col) then pivot := r
    done;
    let tmp = a.(col) in
    a.(col) <- a.(!pivot);
    a.(!pivot) <- tmp;
    let tb = b.(col) in
    b.(col) <- b.(!pivot);
    b.(!pivot) <- tb;
    for r = 0 to n - 1 do
      if r <> col && a.(col).(col) <> 0. then begin
        let f = a.(r).(col) /. a.(col).(col) in
        for c = 0 to n - 1 do
          a.(r).(c) <- a.(r).(c) -. (f *. a.(col).(c))
        done;
        b.(r) <- b.(r) -. (f *. b.(col))
      end
    done
  done;
  Array.init n (fun i -> if a.(i).(i) = 0. then 0. else b.(i) /. a.(i).(i))

let fit_with_degree points degree =
  let terms = degree + 1 in
  let basis x k = x ** float_of_int k in
  let a = Array.make_matrix terms terms 0. in
  let b = Array.make terms 0. in
  List.iter
    (fun p ->
      let x = float_of_int p.month in
      for i = 0 to terms - 1 do
        b.(i) <- b.(i) +. (p.kloc *. basis x i);
        for j = 0 to terms - 1 do
          a.(i).(j) <- a.(i).(j) +. (basis x i *. basis x j)
        done
      done)
    points;
  let coef = solve3 a b in
  let value x =
    let acc = ref 0. in
    Array.iteri (fun i c -> acc := !acc +. (c *. basis x i)) coef;
    !acc
  in
  let rmse =
    let se =
      List.fold_left
        (fun acc p ->
          let d = p.kloc -. value (float_of_int p.month) in
          acc +. (d *. d))
        0. points
    in
    sqrt (se /. float_of_int (List.length points))
  in
  {
    intercept = coef.(0);
    slope = (if terms > 1 then coef.(1) else 0.);
    quadratic = (if terms > 2 then coef.(2) else 0.);
    rmse;
  }

let fit_linear points = fit_with_degree points 1

let fit_quadratic points = fit_with_degree points 2

let project f month =
  let x = float_of_int month in
  f.intercept +. (f.slope *. x) +. (f.quadratic *. x *. x)
