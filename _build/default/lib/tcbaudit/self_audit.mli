(** Apply the paper's TCB methodology to this repository itself: the
    privileged framework (lib/core) plus the hardware models and
    simulator substrate it needs (lib/machine, lib/sim) form the TCB;
    the kernel services, workloads, and baseline profile are outside it;
    analysis tooling is excluded like the Rust toolchain would be. *)

type entry = { library : string; loc : int; tcb : bool }

type report = { entries : entry list; total_loc : int; tcb_loc : int; relative : float }

val run : ?root:string -> unit -> report
(** Scans lib/<dir>/*.ml[i] under [root] (default: walk up from cwd until
    a dune-project is found). *)
