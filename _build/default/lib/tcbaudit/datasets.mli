(** Published measurements encoded as crate graphs.

    The paper reports aggregate numbers (Table 1 crate fractions, Table 9
    LCS totals, Table 3 Linux component growth); these datasets are
    synthetic crate inventories constructed so that {!Crate_graph}'s
    Rules 1-3 + LCS reproduce exactly those aggregates. They are inputs
    for regenerating the tables, not a claim about the real crate lists. *)

val redleaf : Crate_graph.t
val theseus : Crate_graph.t
val tock : Crate_graph.t
val asterinas : Crate_graph.t
val linux_rfl : Crate_graph.t
(** The RFL crate plus ten notable Rust-written kernel modules. *)

val table9 : (string * Crate_graph.t) list
(** The four OSes of Table 9, in paper order. *)

val table1 : (string * Crate_graph.t) list
(** Linux/Tock/RedLeaf/Theseus, the Table 1 columns. *)

(** Table 3: Linux component growth (KLoC). *)
val linux_component_growth : (string * float * float) list
(** (component, v2.1.23 1997, v6.12.0 2024). *)
