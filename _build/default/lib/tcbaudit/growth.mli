(** Codebase-growth model and curve fitting (Fig. 7): monthly KLoC of the
    de-privileged kernel (Asterinas) vs the framework (OSTD) over three
    years of development, with least-squares fits showing super-linear
    non-TCB growth against controlled, sub-linear TCB growth. *)

type point = { month : int; kloc : float }

val asterinas_series : point list
(** Non-TCB KLoC, month 0 = project start, 36 months. *)

val ostd_series : point list

type fit = { intercept : float; slope : float; quadratic : float; rmse : float }

val fit_linear : point list -> fit
val fit_quadratic : point list -> fit

val project : fit -> int -> float
(** Evaluate a fit at a month. *)
