type crate = {
  name : string;
  loc : int;
  linked_fraction : float;
  uses_unsafe : bool;
  toolchain : bool;
  deps : string list;
}

type t = { by_name : (string, crate) Hashtbl.t; order : string list; tcb_set : (string, unit) Hashtbl.t }

let compute_tcb by_name =
  let tcb = Hashtbl.create 32 in
  (* Rule 2: unsafe-using, non-toolchain crates seed the TCB. *)
  Hashtbl.iter
    (fun name c -> if c.uses_unsafe && not c.toolchain then Hashtbl.replace tcb name ())
    by_name;
  (* Rule 3: close over dependencies (toolchain stays out by Rule 1). *)
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun name () ->
        let c = Hashtbl.find by_name name in
        List.iter
          (fun dep ->
            match Hashtbl.find_opt by_name dep with
            | Some d when (not d.toolchain) && not (Hashtbl.mem tcb dep) ->
              Hashtbl.replace tcb dep ();
              changed := true
            | _ -> ())
          c.deps)
      (Hashtbl.copy tcb)
  done;
  tcb

let build crates =
  let by_name = Hashtbl.create 64 in
  List.iter
    (fun c ->
      if Hashtbl.mem by_name c.name then invalid_arg ("duplicate crate " ^ c.name);
      Hashtbl.replace by_name c.name c)
    crates;
  List.iter
    (fun c ->
      List.iter
        (fun d -> if not (Hashtbl.mem by_name d) then invalid_arg ("missing dep " ^ d))
        c.deps)
    crates;
  { by_name; order = List.map (fun c -> c.name) crates; tcb_set = compute_tcb by_name }

let crates t = List.map (Hashtbl.find t.by_name) t.order

let tcb t = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) t.tcb_set [])

let is_tcb t name = Hashtbl.mem t.tcb_set name

let lcs t name =
  let c = Hashtbl.find t.by_name name in
  int_of_float (float_of_int c.loc *. c.linked_fraction)

let total_lcs t =
  List.fold_left
    (fun acc c -> if c.toolchain then acc else acc + lcs t c.name)
    0 (crates t)

let tcb_lcs t = List.fold_left (fun acc name -> acc + lcs t name) 0 (tcb t)

let relative_tcb t =
  let total = total_lcs t in
  if total = 0 then 0. else float_of_int (tcb_lcs t) /. float_of_int total

let unsafe_crate_fraction t =
  let non_toolchain = List.filter (fun c -> not c.toolchain) (crates t) in
  (List.length (List.filter (fun c -> c.uses_unsafe) non_toolchain), List.length non_toolchain)
