lib/tcbaudit/self_audit.ml: Array Filename List Sys
