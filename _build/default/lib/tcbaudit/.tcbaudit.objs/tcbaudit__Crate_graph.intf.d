lib/tcbaudit/crate_graph.mli:
