lib/tcbaudit/self_audit.mli:
