lib/tcbaudit/growth.mli:
