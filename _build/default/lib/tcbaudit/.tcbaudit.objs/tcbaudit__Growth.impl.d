lib/tcbaudit/growth.ml: Array List
