lib/tcbaudit/crate_graph.ml: Hashtbl List
