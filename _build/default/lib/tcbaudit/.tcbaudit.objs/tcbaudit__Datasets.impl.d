lib/tcbaudit/datasets.ml: Crate_graph List Printf
