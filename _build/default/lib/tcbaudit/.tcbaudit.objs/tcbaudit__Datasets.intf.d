lib/tcbaudit/datasets.mli: Crate_graph
