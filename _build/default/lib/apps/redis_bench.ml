type result = { op : string; rps : float }

let payload = "xxx" (* redis-benchmark's default 3-byte value *)

let op_request op i =
  let key = Printf.sprintf "key:%06d" (i mod 1000) in
  match op with
  | "PING_INLINE" | "PING_MBULK" -> "PING"
  | "SET" -> Printf.sprintf "SET %s %s" key payload
  | "GET" -> Printf.sprintf "GET %s" key
  | "INCR" -> "INCR counter"
  | "LPUSH" -> Printf.sprintf "LPUSH mylist %s" payload
  | "RPUSH" -> Printf.sprintf "RPUSH mylist %s" payload
  | "LPOP" -> "LPOP mylist"
  | "RPOP" -> "RPOP mylist"
  | "SADD" -> Printf.sprintf "SADD myset element:%06d" (i mod 1000)
  | "HSET" -> Printf.sprintf "HSET myhash field:%06d %s" (i mod 1000) payload
  | "SPOP" -> "SPOP myset"
  | "ZADD" -> Printf.sprintf "ZADD myzset %d element:%06d" (i mod 100) (i mod 1000)
  | "ZPOPMIN" -> "ZPOPMIN myzset"
  | "LRANGE_100" -> "LRANGE mylist 0 99"
  | "LRANGE_300" -> "LRANGE mylist 0 299"
  | "LRANGE_500" -> "LRANGE mylist 0 449"
  | "LRANGE_600" -> "LRANGE mylist 0 599"
  | "MSET" ->
    String.concat " "
      ("MSET"
      :: List.concat_map
           (fun k -> [ Printf.sprintf "key:%d:%d" k (i mod 1000); payload ])
           [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ])
  | other -> other

let read_reply conn buf =
  (* One reply per line for +/:/$ forms; "*n" is followed by n "$" lines. *)
  let acc = Buffer.create 128 in
  let read_more () =
    match Aster.Tcp.recv conn ~buf ~pos:0 ~len:(Bytes.length buf) with
    | Ok 0 | Error _ -> false
    | Ok n ->
      Buffer.add_subbytes acc buf 0 n;
      true
  in
  let lines_complete () =
    let s = Buffer.contents acc in
    match String.index_opt s '\n' with
    | None -> false
    | Some i ->
      if s.[0] <> '*' then true
      else begin
        let n = try int_of_string (String.sub s 1 (i - 1)) with _ -> 0 in
        let count = ref 0 in
        String.iter (fun ch -> if ch = '\n' then incr count) s;
        !count >= n + 1
      end
  in
  let rec go () = if lines_complete () then true else if read_more () then go () else false in
  go ()

let run_op ~host ~op ~clients ~requests ~on_done =
  let remaining = ref requests in
  let active = ref clients in
  let started = ref None in
  let htcp = host.Aster.Kernel.htcp in
  let finish () =
    decr active;
    if !active = 0 then begin
      let t0 = Option.value ~default:0L !started in
      let us = Sim.Clock.to_us (Int64.sub (Sim.Clock.now ()) t0) in
      on_done { op; rps = (if us > 0. then float_of_int requests /. us *. 1e6 else 0.) }
    end
  in
  for cl = 1 to clients do
    ignore
      (Ostd.Task.spawn
         ~name:(Printf.sprintf "redis-bench-%d" cl)
         (fun () ->
           let rec connect tries =
             match
               Aster.Tcp.connect htcp ~dst_ip:Aster.Kernel.guest_ip ~dst_port:Mini_redis.port
             with
             | Ok conn -> Some conn
             | Error _ when tries > 0 ->
               Ostd.Task.sleep_us 300.;
               connect (tries - 1)
             | Error _ -> None
           in
           match connect 30 with
           | None -> finish ()
           | Some conn ->
             Aster.Tcp.set_nodelay conn;
             if !started = None then started := Some (Sim.Clock.now ());
             let buf = Bytes.create 65536 in
             let i = ref 0 in
             let continue = ref true in
             while !continue do
               if !remaining <= 0 then continue := false
               else begin
                 decr remaining;
                 incr i;
                 let req = Bytes.of_string (op_request op !i ^ "\n") in
                 (match Aster.Tcp.send conn ~buf:req ~pos:0 ~len:(Bytes.length req) with
                 | Ok _ -> if not (read_reply conn buf) then continue := false
                 | Error _ -> continue := false)
               end
             done;
             Aster.Tcp.close conn;
             finish ()))
  done
