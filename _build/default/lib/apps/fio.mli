(** FIO-style block-device bandwidth workload (Fig. 6): sequential writes
    with periodic fsync so every byte crosses the virtio-blk driver, and
    direct-ish sequential reads that defeat the buffer cache. Used to
    compare pooled vs dynamic DMA mapping. *)

type result = { write_mb_s : float; read_mb_s : float }

val run : Libc.t -> file:string -> mbytes:int -> result
