lib/apps/redis_bench.ml: Aster Buffer Bytes Int64 List Mini_redis Option Ostd Printf Sim String
