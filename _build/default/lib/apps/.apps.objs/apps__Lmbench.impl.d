lib/apps/lmbench.ml: Array Aster Bytes Int64 Libc List Ostd Result Runner Sim
