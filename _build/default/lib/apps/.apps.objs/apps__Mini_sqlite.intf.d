lib/apps/mini_sqlite.mli: Libc
