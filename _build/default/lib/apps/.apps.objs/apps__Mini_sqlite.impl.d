lib/apps/mini_sqlite.ml: Array Bytes Hashtbl Int32 Libc List Marshal Ostd Sim
