lib/apps/lmbench.mli: Sim
