lib/apps/mini_redis.mli:
