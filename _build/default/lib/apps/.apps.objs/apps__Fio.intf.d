lib/apps/fio.mli: Libc
