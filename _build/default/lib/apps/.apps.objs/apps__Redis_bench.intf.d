lib/apps/redis_bench.mli: Aster
