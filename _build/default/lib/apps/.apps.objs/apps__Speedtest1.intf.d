lib/apps/speedtest1.mli: Libc
