lib/apps/mini_nginx.mli: Libc
