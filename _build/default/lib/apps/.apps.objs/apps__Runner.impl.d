lib/apps/runner.ml: Aster Int64 Libc Sim
