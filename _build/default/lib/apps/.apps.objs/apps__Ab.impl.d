lib/apps/ab.ml: Aster Bytes Int64 Mini_nginx Option Ostd Printf Sim
