lib/apps/mini_nginx.ml: Aster Bytes Libc List Ostd Printf Runner Sim String
