lib/apps/speedtest1.ml: Hashtbl Int64 List Mini_sqlite Printf Sim String
