lib/apps/ab.mli: Aster
