lib/apps/libc.ml: Aster Bytes Hashtbl Int32 Int64 List Ostd String
