lib/apps/runner.mli: Aster Libc Sim
