lib/apps/fio.ml: Int64 Libc Runner Sim
