lib/apps/mini_redis.ml: Buffer Hashtbl Libc List Printf Runner Sim String
