lib/apps/libc.mli: Aster Ostd
