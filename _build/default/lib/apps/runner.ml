let boot ~profile =
  let k = Aster.Kernel.boot ~profile () in
  Libc.install_child_resolver ();
  k

let spawn ~name body =
  ignore
    (Aster.Process.spawn_kernel_style ~name (fun uapi ->
         body (Libc.make uapi)))

let run () = Aster.Kernel.run ()

let time_us f =
  let t0 = Sim.Clock.now () in
  f ();
  Sim.Clock.to_us (Int64.sub (Sim.Clock.now ()) t0)

let mb_per_s ~bytes_moved ~us =
  if us <= 0. then 0. else float_of_int bytes_moved /. us (* B/us = MB/s *)
