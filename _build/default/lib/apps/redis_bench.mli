(** redis-benchmark-style host driver: for each Table 11 operation, run
    [requests] commands over [clients] persistent connections and report
    requests per second. *)

type result = { op : string; rps : float }

val op_request : string -> int -> string
(** The wire command the named benchmark op sends (the int seeds key
    variation, as redis-benchmark's -r would). *)

val run_op :
  host:Aster.Kernel.host ->
  op:string ->
  clients:int ->
  requests:int ->
  on_done:(result -> unit) ->
  unit
(** Spawn the client tasks for one op. Call before [Runner.run]. *)
