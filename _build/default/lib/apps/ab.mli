(** ApacheBench-style load driver running on the host side of the tap
    (the paper runs `ab -c 32 -n 200000` against the VM).

    Each of [concurrency] host tasks opens a fresh connection per request
    (no keep-alive, like ab's default), sends the GET, and drains the
    response. Host work costs no guest cycles; throughput reflects guest
    kernel + wire capacity. *)

type result = { requests : int; elapsed_us : float; rps : float }

val run :
  host:Aster.Kernel.host ->
  path:string ->
  concurrency:int ->
  requests:int ->
  on_done:(result -> unit) ->
  unit
(** Spawns the client tasks; [on_done] fires when every request finished.
    Call before [Runner.run]. *)
