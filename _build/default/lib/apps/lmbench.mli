(** LMbench-style microbenchmarks (paper Table 7).

    Every row boots a fresh kernel under the given profile and measures
    in virtual time; the run is deterministic, so a single pass suffices.
    Latencies are microseconds (lower better), bandwidths MB/s (higher
    better). *)

type row = {
  name : string;
  category : string;
  unit_ : string;
  higher_better : bool;
  run : Sim.Profile.t -> float;
}

val rows : row list

val find : string -> row
(** Raises [Not_found] for an unknown row name. *)
