module Sq = Mini_sqlite

type result = { num : int; name : string; seconds : float }

let test_names =
  [
    (100, "INSERTs into table with no index");
    (110, "ordered INSERTS with one index/PK");
    (120, "unordered INSERTS with one index/PK");
    (130, "25 SELECTS, numeric BETWEEN, unindexed");
    (140, "10 SELECTS, LIKE, unindexed");
    (142, "10 SELECTS w/ORDER BY, unindexed");
    (145, "10 SELECTS w/ORDER BY and LIMIT, unindexed");
    (150, "CREATE INDEX five times");
    (160, "SELECTS, numeric BETWEEN, indexed");
    (161, "SELECTS, numeric BETWEEN, PK");
    (170, "SELECTS, text BETWEEN, indexed");
    (180, "INSERTS with three indexes");
    (190, "DELETE and REFILL one table");
    (200, "VACUUM");
    (210, "ALTER TABLE ADD COLUMN, and query");
    (230, "UPDATES, numeric BETWEEN, indexed");
    (240, "UPDATES of individual rows");
    (250, "One big UPDATE of the whole table");
    (260, "Query added column after filling");
    (270, "DELETEs, numeric BETWEEN, indexed");
    (280, "DELETEs of individual rows");
    (290, "Refill two tables using REPLACE");
    (300, "Refill a table using (b&1)==(a&1)");
    (310, "four-ways joins");
    (320, "subquery in result set");
    (400, "REPLACE ops on an IPK");
    (410, "SELECTS on an IPK");
    (500, "REPLACE on TEXT PK");
    (510, "SELECTS on a TEXT PK");
    (520, "SELECT DISTINCT");
    (980, "PRAGMA integrity_check");
    (990, "ANALYZE");
  ]

let row_text i = Printf.sprintf "row-%08d payload text for speedtest one %d" i (i * 7)

let run ?(size = 20) c =
  let n = size * 25 in
  (* speedtest1 --size 1000 runs 500000 in the big tests: scale = size*500;
     we use size*25 to keep simulation time sane. *)
  let n14 = n * 14 / 10 in
  let rng = Sim.Rng.create 424242L in
  let db = Sq.open_db c "/ext2/speedtest.db" in
  let results = ref [] in
  let timed num f =
    let name = List.assoc num test_names in
    let t0 = Sim.Clock.now () in
    f ();
    let seconds = Sim.Clock.to_seconds (Int64.sub (Sim.Clock.now ()) t0) in
    results := { num; name; seconds } :: !results
  in
  let txn f =
    Sq.begin_txn db;
    f ();
    Sq.commit db
  in
  List.iter (fun f -> f ())
    [
      (fun () ->
        Sq.create_table db "t1";
        Sq.create_table db "t2";
        Sq.create_table db "t3");
      (fun () ->
        timed 100 (fun () ->
            txn (fun () ->
                for i = 1 to n do
                  Sq.insert db ~table:"t1" (Sq.K_int i) (row_text i)
                done)));
      (fun () ->
        timed 110 (fun () ->
            txn (fun () ->
                for i = 1 to n do
                  Sq.insert db ~table:"t2" (Sq.K_int i) (row_text i)
                done)));
      (fun () ->
        timed 120 (fun () ->
            txn (fun () ->
                for _ = 1 to n do
                  let k = Sim.Rng.int rng (10 * n) in
                  Sq.insert db ~table:"t3" (Sq.K_int k) (row_text k)
                done)));
      (fun () ->
        timed 130 (fun () ->
            for q = 1 to 25 do
              let lo = q * 17 mod n in
              ignore
                (Sq.full_scan db ~table:"t1" ~f:(fun k _ ->
                     match k with
                     | Sq.K_int i -> if i >= lo && i <= lo + 100 then ()
                     | Sq.K_text _ -> ()))
            done));
      (fun () ->
        timed 140 (fun () ->
            for _ = 1 to 10 do
              ignore
                (Sq.full_scan db ~table:"t1" ~f:(fun _ v ->
                     ignore (String.length v > 10 && String.sub v 0 4 = "row-")))
            done));
      (fun () ->
        timed 142 (fun () ->
            for _ = 1 to 10 do
              let acc = ref [] in
              ignore (Sq.full_scan db ~table:"t1" ~f:(fun _ v -> acc := v :: !acc));
              ignore (List.sort compare !acc);
              Sim.Clock.charge (List.length !acc * 40)
            done));
      (fun () ->
        timed 145 (fun () ->
            for _ = 1 to 10 do
              let acc = ref [] in
              ignore (Sq.full_scan db ~table:"t1" ~f:(fun _ v -> acc := v :: !acc));
              ignore (List.filteri (fun i _ -> i < 10) (List.sort compare !acc));
              Sim.Clock.charge (List.length !acc * 40)
            done));
      (fun () ->
        timed 150 (fun () ->
            txn (fun () ->
                for i = 1 to 5 do
                  Sq.create_index db ~table:(if i mod 2 = 0 then "t1" else "t2")
                    ~name:(Printf.sprintf "idx%d" i)
                done)));
      (fun () ->
        timed 160 (fun () ->
            for q = 1 to n / 5 do
              let lo = q * 13 mod n in
              ignore (Sq.range_count db ~table:"t1" ~lo:(Sq.K_int lo) ~hi:(Sq.K_int (lo + 10)))
            done));
      (fun () ->
        timed 161 (fun () ->
            for q = 1 to n / 5 do
              let lo = q * 29 mod n in
              ignore (Sq.range_count db ~table:"t2" ~lo:(Sq.K_int lo) ~hi:(Sq.K_int (lo + 10)))
            done));
      (fun () ->
        timed 170 (fun () ->
            for q = 1 to n / 5 do
              let s = Printf.sprintf "row-%08d" (q * 11 mod n) in
              ignore
                (Sq.range_count db ~table:"t1" ~lo:(Sq.K_text s) ~hi:(Sq.K_text (s ^ "~")))
            done));
      (fun () ->
        timed 180 (fun () ->
            txn (fun () ->
                for i = n + 1 to n + (n / 2) do
                  Sq.insert db ~table:"t2" (Sq.K_int i) (row_text i)
                done)));
      (fun () ->
        timed 190 (fun () ->
            txn (fun () ->
                ignore (Sq.delete_range db ~table:"t3" ~lo:(Sq.K_int 0) ~hi:(Sq.K_int max_int));
                for i = 1 to n do
                  Sq.insert db ~table:"t3" (Sq.K_int i) (row_text i)
                done)));
      (fun () -> timed 200 (fun () -> Sq.vacuum db));
      (fun () ->
        timed 210 (fun () ->
            (* ALTER ADD COLUMN: metadata-only + one scan query. *)
            txn (fun () -> Sim.Clock.charge 30000);
            ignore (Sq.full_scan db ~table:"t1" ~f:(fun _ _ -> ()))));
      (fun () ->
        timed 230 (fun () ->
            txn (fun () ->
                for q = 1 to n / 25 do
                  let lo = q * 7 mod n in
                  ignore
                    (Sq.update_range db ~table:"t1" ~lo:(Sq.K_int lo) ~hi:(Sq.K_int (lo + 20))
                       ~f:(fun v -> v ^ "u"))
                done)));
      (fun () ->
        timed 240 (fun () ->
            txn (fun () ->
                for i = 1 to n do
                  ignore
                    (Sq.update_range db ~table:"t2" ~lo:(Sq.K_int i) ~hi:(Sq.K_int i)
                       ~f:(fun v -> v ^ "x"))
                done)));
      (fun () ->
        timed 250 (fun () ->
            txn (fun () ->
                ignore
                  (Sq.update_range db ~table:"t1" ~lo:(Sq.K_int 0) ~hi:(Sq.K_int max_int)
                     ~f:(fun v -> v ^ "!")))));
      (fun () -> timed 260 (fun () -> ignore (Sq.full_scan db ~table:"t1" ~f:(fun _ _ -> ()))));
      (fun () ->
        timed 270 (fun () ->
            txn (fun () ->
                for q = 1 to n / 25 do
                  let lo = q * 3 mod n in
                  ignore
                    (Sq.delete_range db ~table:"t1" ~lo:(Sq.K_int lo) ~hi:(Sq.K_int (lo + 5)))
                done)));
      (fun () ->
        timed 280 (fun () ->
            txn (fun () ->
                for i = 1 to n do
                  ignore (Sq.delete_key db ~table:"t3" (Sq.K_int i))
                done)));
      (fun () ->
        timed 290 (fun () ->
            txn (fun () ->
                for i = 1 to n do
                  Sq.replace db ~table:"t3" (Sq.K_int i) (row_text i);
                  Sq.replace db ~table:"t1" (Sq.K_int i) (row_text i)
                done)));
      (fun () ->
        timed 300 (fun () ->
            txn (fun () ->
                ignore
                  (Sq.full_scan db ~table:"t2" ~f:(fun k v ->
                       match k with
                       | Sq.K_int i when i land 1 = 0 ->
                         Sq.replace db ~table:"t3" (Sq.K_int i) v
                       | _ -> ())))));
      (fun () ->
        timed 310 (fun () ->
            (* Four-way join: nested scans with per-row lookups. *)
            for _ = 1 to 4 do
              ignore
                (Sq.full_scan db ~table:"t1" ~f:(fun k _ ->
                     ignore (Sq.lookup db ~table:"t2" k)))
            done));
      (fun () ->
        timed 320 (fun () ->
            ignore
              (Sq.full_scan db ~table:"t2" ~f:(fun k _ ->
                   ignore (Sq.lookup db ~table:"t1" k);
                   Sim.Clock.charge 120))));
      (fun () ->
        timed 400 (fun () ->
            txn (fun () ->
                for i = 1 to n14 do
                  Sq.replace db ~table:"t1" (Sq.K_int (i mod n)) (row_text i)
                done)));
      (fun () ->
        timed 410 (fun () ->
            for i = 1 to n14 do
              ignore (Sq.lookup db ~table:"t1" (Sq.K_int (i mod n)))
            done));
      (fun () ->
        timed 500 (fun () ->
            Sq.create_table db "tt";
            txn (fun () ->
                for i = 1 to n14 do
                  Sq.replace db ~table:"tt"
                    (Sq.K_text (Printf.sprintf "key-%08d" (i mod n)))
                    (row_text i)
                done)));
      (fun () ->
        timed 510 (fun () ->
            for i = 1 to n14 do
              ignore
                (Sq.lookup db ~table:"tt" (Sq.K_text (Printf.sprintf "key-%08d" (i mod n))))
            done));
      (fun () ->
        timed 520 (fun () ->
            let seen = Hashtbl.create 256 in
            ignore
              (Sq.full_scan db ~table:"t1" ~f:(fun _ v ->
                   Hashtbl.replace seen v ();
                   Sim.Clock.charge 60))));
      (fun () -> timed 980 (fun () -> ignore (Sq.integrity_check db)));
      (fun () -> timed 990 (fun () -> Sq.analyze db));
    ];
  Sq.close_db db;
  List.rev !results
