(** Shared harness plumbing for workloads: boot a kernel under a profile,
    spawn user processes, run the simulation, and measure virtual time. *)

val boot : profile:Sim.Profile.t -> Aster.Kernel.t
(** Boot + install the fork-token resolver. *)

val spawn : name:string -> (Libc.t -> int) -> unit
(** Spawn a user process whose body gets a ready-made libc handle. *)

val run : unit -> unit

val time_us : (unit -> unit) -> float
(** Virtual microseconds consumed by the thunk. *)

val mb_per_s : bytes_moved:int -> us:float -> float
