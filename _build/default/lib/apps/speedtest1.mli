(** The speedtest1 workload (paper §6.1.2, Table 12): the 33 numbered
    tests, run against {!Mini_sqlite} on an Ext2 mount over virtio-blk.

    [size] scales the row counts the way speedtest1's --size does (the
    paper uses 1000; the simulator default is much smaller, so absolute
    seconds are not comparable to the paper — the per-test Linux/Asterinas
    ratios are). Results are (test number, name, virtual seconds). *)

type result = { num : int; name : string; seconds : float }

val test_names : (int * string) list

val run : ?size:int -> Libc.t -> result list
(** Execute all tests in order on a fresh database at /ext2/speedtest.db. *)
