type prog = Ostd.User.uapi -> string list -> int

let table : (string, prog) Hashtbl.t = Hashtbl.create 32

let register name prog = Hashtbl.replace table name prog

let basename path =
  match String.rindex_opt path '/' with
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)
  | None -> path

let find path = Hashtbl.find_opt table (basename path)

let names () = Hashtbl.fold (fun k _ acc -> k :: acc) table [] |> List.sort compare

let reset () = Hashtbl.reset table
