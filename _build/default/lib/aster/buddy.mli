(** Buddy-system frame allocator with a per-CPU order-0 cache — the
    injectable policy Asterinas registers with OSTD (§5).

    Living outside the TCB, a bug here can at worst panic the kernel via
    {!Ostd.Frame.from_unused}'s Inv. 1 check; it cannot alias memory. *)

type t

val create : ?pcpu_cache:bool -> unit -> t
(** [pcpu_cache:false] disables the order-0 fast path (ablation). *)

val as_frame_alloc : t -> (module Ostd.Falloc.FRAME_ALLOC)

val free_pages : t -> int

val max_order : int

val install : unit -> t
(** Create and inject into OSTD, then feed it all boot memory. *)
