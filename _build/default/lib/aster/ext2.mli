(** Ext2-style file system on the block device.

    On-disk layout (4 KiB blocks): superblock, block bitmap, inode
    bitmap, inode table, then data blocks. Inodes address data through 12
    direct pointers, one indirect and one double-indirect block, like
    ext2 proper. All I/O goes through the {!Block} buffer cache; [fsync]
    forces a file's dirty blocks (data + metadata) to the device —
    that is the path SQLite's journal hammers in the paper's VACUUM
    analysis. *)

val mkfs : unit -> unit
(** Format the registered block device. *)

val mount : unit -> Vfs.inode
(** Read the superblock and return the root inode. Panics if the device
    does not contain an ext2 image. *)

val block_size : int
val max_file_blocks : int

val inodes_total : unit -> int
val free_blocks : unit -> int
val free_inodes : unit -> int
