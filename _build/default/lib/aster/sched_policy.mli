(** Linux-style scheduler with two classes — real-time (FIFO by priority)
    and a rudimentary CFS — injected into OSTD via the Scheduler trait
    analogue (paper §4.4.1, §5).

    Pure policy in safe code: Inv. 8 (no double-run) stays enforced by
    OSTD no matter what this module does. *)

type class_ = Rt of int  (** lower value = higher priority *) | Fair

val set_class : Ostd.Task.t -> class_ -> unit
(** Default for unmarked tasks is [Fair]. Must be set before the task
    next enqueues to take effect. *)

val class_of : Ostd.Task.t -> class_

val vruntime : Ostd.Task.t -> int64
(** Current CFS virtual runtime (0 for RT tasks). *)

val update_curr : unit -> unit
(** Scheduling-event notification; the timer tick calls this directly. *)

val install : unit -> unit
(** Inject into OSTD. Call once per boot, before spawning tasks. *)

val queued : unit -> int
