let counts : (int, int ref) Hashtbl.t = Hashtbl.create 64

let small : (int, int ref) Hashtbl.t = Hashtbl.create 8

let reset () =
  Hashtbl.reset counts;
  Hashtbl.reset small

let bump tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> incr r
  | None -> Hashtbl.add tbl key (ref 1)

let record ~nr = bump counts nr

let record_size ~nr ~size = if size <= 8 then bump small nr

let count ~nr = match Hashtbl.find_opt counts nr with Some r -> !r | None -> 0

let small_writes () =
  let get nr = match Hashtbl.find_opt small nr with Some r -> !r | None -> 0 in
  get Syscall_nr.pwrite64 + get Syscall_nr.write

let top n =
  Hashtbl.fold (fun nr r acc -> (Syscall_nr.name nr, !r) :: acc) counts []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.filteri (fun i _ -> i < n)
