(** Character devices: /dev/null and /dev/zero. *)

val null_inode : unit -> Vfs.inode
val zero_inode : unit -> Vfs.inode

val populate : Vfs.inode -> unit
(** Link both devices into the given /dev directory. *)
