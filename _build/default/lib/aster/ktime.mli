(** Timekeeping: Asterinas (not OSTD) maintains wall and monotonic clocks
    by reading the TSC through OSTD and registering timer interrupts. *)

val boot_epoch_seconds : float
(** Wall-clock time at boot (fixed, deterministic). *)

val monotonic_ns : unit -> int64
val realtime_ns : unit -> int64
val seconds : unit -> float

val start_ticker : ?interval_us:float -> unit -> unit
(** Periodic timer "interrupt": notifies the scheduler (update_curr) each
    tick, like the paper's timer registration. The ticker stops when the
    simulation goes fully idle only via [stop_ticker]. *)

val stop_ticker : unit -> unit
