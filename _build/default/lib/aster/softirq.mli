(** Interrupt bottom halves, outside the TCB (paper §5: Asterinas manages
    softirq/tasklets/work queues through an OSTD interrupt hook).

    Top halves run in atomic mode and only queue work here; the softirq
    runner drains the queue right after IRQ dispatch (still kernel
    context, may not sleep) and work-queue items run later on a kworker
    task (may sleep). *)

val install : unit -> unit
(** Register the OSTD post-IRQ hook and idle hook, and spawn the kworker
    task. Call once per boot, after the scheduler is injected. *)

val raise_softirq : (unit -> unit) -> unit
(** Queue a bottom half; it runs at the next softirq point. *)

val queue_work : (unit -> unit) -> unit
(** Queue sleepable work for the kworker task. *)

val pending : unit -> int
