let block_size = 4096

let sectors_per_block = block_size / 512

type op = Read | Write | Flush

type bio = {
  op : op;
  sector : int;
  frame : Ostd.Frame.t option;
  len : int;
  mutable status : int option;
  wq : Ostd.Wait_queue.t;
}

let make_bio op ~sector ?frame ~len () =
  (match (op, frame) with
  | (Read | Write), None -> Ostd.Panic.panic "Block.make_bio: data op without a buffer"
  | _ -> ());
  { op; sector; frame; len; status = None; wq = Ostd.Wait_queue.create () }

let bio_status bio = bio.status

let bio_op bio = bio.op

let bio_sector bio = bio.sector

let bio_frame bio = bio.frame

let bio_len bio = bio.len

let complete_bio bio ~status =
  bio.status <- Some status;
  ignore (Ostd.Wait_queue.wake_all bio.wq)

module type DRIVER = sig
  val capacity_sectors : unit -> int
  val submit : bio -> unit
end

let driver : (module DRIVER) option ref = ref None

let register_driver d = driver := Some d

let have_driver () = !driver <> None

let the_driver () =
  match !driver with
  | Some d -> d
  | None -> Ostd.Panic.panic "Block: no block driver registered"

let capacity_sectors () =
  let (module D) = the_driver () in
  D.capacity_sectors ()

let submit_and_wait bio =
  let (module D) = the_driver () in
  Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.blk_issue;
  D.submit bio;
  (match Ostd.Task.current_opt () with
  | Some _ -> Ostd.Wait_queue.sleep_until bio.wq (fun () -> bio.status <> None)
  | None ->
    (* Early boot (mkfs/mount before tasks exist): poll the device. *)
    while bio.status = None do
      if not (Sim.Events.run_next ()) then
        Ostd.Panic.panic "Block: device never completed a boot-time request"
    done);
  match bio.status with
  | Some 0 -> Ok ()
  | Some e -> Error e
  | None -> assert false

(* --- Buffer cache --- *)

type centry = { cframe : Ostd.Frame.t; mutable dirty : bool }

let cache : (int, centry) Hashtbl.t = Hashtbl.create 1024

(* Background-writeback bookkeeping (dirty_ratio-style throttling). *)
let dirty_fifo : int Queue.t = Queue.create ()

let ndirty = ref 0

let flusher_running = ref false

let throttle_wq = ref (Ostd.Wait_queue.create ())

let bg_dirty_threshold = 768

let hard_dirty_limit = 4096

let reset () =
  throttle_wq := Ostd.Wait_queue.create ();
  driver := None;
  (* Frames belong to the old boot's metadata; just forget them. *)
  Hashtbl.reset cache;
  Queue.clear dirty_fifo;
  ndirty := 0;
  flusher_running := false

let entry_of blockno ~fill =
  match Hashtbl.find_opt cache blockno with
  | Some e -> e
  | None ->
    let cframe = Ostd.Frame.alloc ~untyped:true () in
    if fill then begin
      let bio =
        make_bio Read ~sector:(blockno * sectors_per_block) ~frame:cframe ~len:block_size ()
      in
      match submit_and_wait bio with
      | Ok () -> ()
      | Error e -> Ostd.Panic.panicf "buffer cache: read of block %d failed (%d)" blockno e
    end
    else Ostd.Untyped.fill cframe ~off:0 ~len:block_size '\000';
    let e = { cframe; dirty = false } in
    Hashtbl.add cache blockno e;
    e

let read_block blockno = (entry_of blockno ~fill:true).cframe

let read_from_block blockno ~off ~buf ~pos ~len =
  let e = entry_of blockno ~fill:true in
  Sim.Cost.charge_memcpy len;
  Ostd.Untyped.read_bytes e.cframe ~off ~buf ~pos ~len

let rec flush_batch () =
  let budget = ref 512 in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Queue.take_opt dirty_fifo with
    | None -> continue := false
    | Some blockno -> (
      match Hashtbl.find_opt cache blockno with
      | Some e when e.dirty ->
        writeback blockno e;
        decr budget
      | Some _ | None -> ())
  done;
  ignore (Ostd.Wait_queue.wake_all !throttle_wq);
  if dirty_count () > bg_dirty_threshold then flush_batch () else flusher_running := false

and dirty_count () = !ndirty

and writeback blockno e =
  if e.dirty then begin
    let bio =
      make_bio Write ~sector:(blockno * sectors_per_block) ~frame:e.cframe ~len:block_size ()
    in
    (match submit_and_wait bio with
    | Ok () -> ()
    | Error err -> Ostd.Panic.panicf "buffer cache: writeback of block %d failed (%d)" blockno err);
    e.dirty <- false;
    decr ndirty
  end

let maybe_start_writeback () =
  if !ndirty > bg_dirty_threshold && not !flusher_running then begin
    flusher_running := true;
    Softirq.queue_work flush_batch
  end;
  (* dirty_ratio hard wall: writers stall until the flusher catches up
     (only meaningful in task context). *)
  if !ndirty > hard_dirty_limit && Ostd.Task.current_opt () <> None then
    Ostd.Wait_queue.sleep_until !throttle_wq (fun () -> !ndirty <= hard_dirty_limit)

(* Every path that turns a clean block dirty goes through here. *)
let set_dirty blockno e =
  if not e.dirty then begin
    e.dirty <- true;
    incr ndirty;
    Queue.push blockno dirty_fifo;
    maybe_start_writeback ()
  end

let write_to_block blockno ~off ~buf ~pos ~len =
  let whole = off = 0 && len = block_size in
  let e = entry_of blockno ~fill:(not whole) in
  Sim.Cost.charge_memcpy len;
  Ostd.Untyped.write_bytes e.cframe ~off ~buf ~pos ~len;
  set_dirty blockno e

let zero_block blockno =
  let e = entry_of blockno ~fill:false in
  Ostd.Untyped.fill e.cframe ~off:0 ~len:block_size '\000';
  set_dirty blockno e

let mark_dirty blockno =
  match Hashtbl.find_opt cache blockno with
  | Some e -> set_dirty blockno e
  | None -> ()

let dirty_blocks () = !ndirty

let cached_blocks () = Hashtbl.length cache

let flush_device () =
  let bio = make_bio Flush ~sector:0 ~len:0 () in
  match submit_and_wait bio with
  | Ok () -> ()
  | Error e -> Ostd.Panic.panicf "buffer cache: device flush failed (%d)" e

let sync () =
  let dirty = Hashtbl.fold (fun b e acc -> if e.dirty then (b, e) :: acc else acc) cache [] in
  let dirty = List.sort (fun (a, _) (b, _) -> compare a b) dirty in
  List.iter (fun (b, e) -> writeback b e) dirty;
  if dirty <> [] then flush_device ()

let sync_blocks blocks =
  let wrote = ref false in
  List.iter
    (fun b ->
      match Hashtbl.find_opt cache b with
      | Some e when e.dirty ->
        writeback b e;
        wrote := true
      | Some _ | None -> ())
    (List.sort_uniq compare blocks);
  if !wrote then flush_device ()
