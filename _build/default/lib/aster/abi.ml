let af_unix = 1
let af_inet = 2
let sock_stream = 1
let sock_dgram = 2

let stat_size = 48

type stat = { ino : int; size : int; mode : int; nlink : int; kind : int; mtime_ns : int64 }

let kind_code = function
  | Vfs.Reg -> 8
  | Vfs.Dir -> 4
  | Vfs.Lnk -> 10
  | Vfs.Fifo -> 1
  | Vfs.Sock -> 12
  | Vfs.Chr -> 2

let encode_stat s =
  let b = Bytes.make stat_size '\000' in
  Bytes.set_int64_le b 0 (Int64.of_int s.ino);
  Bytes.set_int64_le b 8 (Int64.of_int s.size);
  Bytes.set_int32_le b 16 (Int32.of_int s.mode);
  Bytes.set_int32_le b 20 (Int32.of_int s.nlink);
  Bytes.set b 24 (Char.chr (s.kind land 0xff));
  Bytes.set_int64_le b 32 s.mtime_ns;
  b

let decode_stat b =
  {
    ino = Int64.to_int (Bytes.get_int64_le b 0);
    size = Int64.to_int (Bytes.get_int64_le b 8);
    mode = Int32.to_int (Bytes.get_int32_le b 16);
    nlink = Int32.to_int (Bytes.get_int32_le b 20);
    kind = Char.code (Bytes.get b 24);
    mtime_ns = Bytes.get_int64_le b 32;
  }

let encode_sockaddr_in ~port ~ip =
  let b = Bytes.create 8 in
  Bytes.set_uint16_le b 0 af_inet;
  Bytes.set_uint16_le b 2 port;
  Bytes.set_int32_le b 4 (Int32.of_int ip);
  b

let encode_sockaddr_un path =
  let b = Bytes.make (2 + String.length path + 1) '\000' in
  Bytes.set_uint16_le b 0 af_unix;
  Bytes.blit_string path 0 b 2 (String.length path);
  b

type sockaddr = Addr_in of { port : int; ip : int } | Addr_un of string

let decode_sockaddr b =
  if Bytes.length b < 2 then None
  else
    match Bytes.get_uint16_le b 0 with
    | f when f = af_inet && Bytes.length b >= 8 ->
      Some
        (Addr_in
           {
             port = Bytes.get_uint16_le b 2;
             ip = Int32.to_int (Bytes.get_int32_le b 4) land 0xffffffff;
           })
    | f when f = af_unix ->
      let rest = Bytes.sub_string b 2 (Bytes.length b - 2) in
      let path =
        match String.index_opt rest '\000' with
        | Some i -> String.sub rest 0 i
        | None -> rest
      in
      Some (Addr_un path)
    | _ -> None

let encode_timespec ~sec ~nsec =
  let b = Bytes.create 16 in
  Bytes.set_int64_le b 0 sec;
  Bytes.set_int64_le b 8 nsec;
  b

let decode_timespec b = (Bytes.get_int64_le b 0, Bytes.get_int64_le b 8)

let encode_dirents entries =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, (inode : Vfs.inode)) ->
      let hdr = Bytes.create 10 in
      Bytes.set_int64_le hdr 0 (Int64.of_int inode.Vfs.ino);
      Bytes.set hdr 8 (Char.chr (kind_code inode.Vfs.kind));
      Bytes.set hdr 9 (Char.chr (String.length name land 0xff));
      Buffer.add_bytes buf hdr;
      Buffer.add_string buf name)
    entries;
  Buffer.to_bytes buf

let decode_dirents b =
  let len = Bytes.length b in
  let rec go pos acc =
    if pos + 10 > len then List.rev acc
    else begin
      let ino = Int64.to_int (Bytes.get_int64_le b pos) in
      let kind = Char.code (Bytes.get b (pos + 8)) in
      let nlen = Char.code (Bytes.get b (pos + 9)) in
      let name = Bytes.sub_string b (pos + 10) nlen in
      go (pos + 10 + nlen) ((ino, kind, name) :: acc)
    end
  in
  go 0 []
