(** An instantiable network stack core: routing, loopback, and protocol
    dispatch.

    The guest kernel owns one instance (loopback + the virtio-net route);
    host-side benchmark clients own another bound directly to the wire.
    Host instances charge no guest CPU cycles — the paper's clients run
    outside the VM. *)

type t

val create : ip:int -> host:bool -> t

val ip : t -> int
val is_host : t -> bool

val loopback_ip : int

val set_ext_tx : t -> (Packet.t -> unit) -> unit
(** Transmit function for non-loopback destinations (the NIC driver or
    the host's wire endpoint). *)

val set_tcp_rx : t -> (Packet.t -> unit) -> unit
val set_udp_rx : t -> (Packet.t -> unit) -> unit

val send : t -> Packet.t -> unit
(** Route: destinations equal to [loopback_ip] or the stack's own address
    go through the loopback (softirq hand-off cost, asynchronous
    delivery); everything else goes out the external interface. *)

val rx : t -> Packet.t -> unit
(** Entry point for inbound packets from the external interface. *)

val charge : t -> int -> unit
(** Charge cycles only when this is the guest stack. *)

val packets_tx : t -> int
val packets_rx : t -> int
