(** ProcFS: kernel-generated read-only files (/proc). Content is produced
    by registered generators at read time. *)

val create_root : unit -> Vfs.inode

val register : string -> (unit -> string) -> unit
(** Add or replace a /proc entry. Standard entries (meminfo, uptime,
    version, syscalls) are registered by {!create_root}. *)
