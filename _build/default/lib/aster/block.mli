(** Block layer: bios, driver registration, and a 4 KiB buffer cache.

    File systems read and write through the cache (memory speed on hits);
    dirty blocks reach the device on [sync]/[sync_blocks] (fsync) or via
    background writeback. All buffers are untyped frames, as the DMA path
    requires (Inv. 6). *)

val block_size : int
val sectors_per_block : int

type op = Read | Write | Flush

type bio

val make_bio : op -> sector:int -> ?frame:Ostd.Frame.t -> len:int -> unit -> bio
(** [frame] carries the data for Read/Write; Flush takes none. The frame
    is borrowed for the bio's lifetime. *)

val bio_status : bio -> int option
(** [None] while in flight; [Some 0] on success; [Some errno] on error. *)

val bio_op : bio -> op
val bio_sector : bio -> int
val bio_frame : bio -> Ostd.Frame.t option
val bio_len : bio -> int

val complete_bio : bio -> status:int -> unit
(** Called by the driver when the device finishes. *)

module type DRIVER = sig
  val capacity_sectors : unit -> int

  val submit : bio -> unit
  (** Begin servicing; completion arrives via [complete_bio]. *)
end

val register_driver : (module DRIVER) -> unit
val have_driver : unit -> bool
val capacity_sectors : unit -> int

val submit_and_wait : bio -> (unit, int) result
(** Sleep the current task until the bio completes. *)

(** {2 Buffer cache} *)

val read_block : int -> Ostd.Frame.t
(** The cached frame for a block, reading it from the device on a miss.
    The returned frame is owned by the cache — do not drop it. *)

val write_to_block : int -> off:int -> buf:bytes -> pos:int -> len:int -> unit
(** Write through the cache and mark dirty. A partial write of a block
    not yet cached reads it first (read-modify-write); a full-block write
    skips the read. *)

val read_from_block : int -> off:int -> buf:bytes -> pos:int -> len:int -> unit

val zero_block : int -> unit
(** Mark the block cached and zeroed without touching the device (fresh
    allocation). *)

val mark_dirty : int -> unit
val dirty_blocks : unit -> int
val cached_blocks : unit -> int

val sync : unit -> unit
(** Write back every dirty block and issue a device flush. *)

val sync_blocks : int list -> unit
(** Write back specific blocks (fsync of one file), then flush. *)

val reset : unit -> unit
(** Forget the driver and drop the cache (new boot). *)
