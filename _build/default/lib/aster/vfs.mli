(** Virtual file system: inode abstraction, mount table, dentry cache,
    and path resolution.

    Path walking charges per component; with the profile's [rcu_walk]
    flag (Linux) a dcache hit uses the cheap lock-free cost, otherwise
    the lock-walk cost — the mechanism behind the paper's open/stat gap
    (§6.1.1). *)

type kind = Reg | Dir | Fifo | Sock | Chr | Lnk

type inode = {
  ino : int;
  fsname : string;
  mutable kind : kind;
  mutable mode : int;
  mutable nlink : int;
  mutable size : int;
  mutable atime_ns : int64;
  mutable mtime_ns : int64;
  mutable ctime_ns : int64;
  ops : ops;
  mutable priv : priv;
}

and priv = ..

and ops = {
  lookup : inode -> string -> inode option;
  create : inode -> string -> kind -> mode:int -> (inode, int) result;
  unlink : inode -> string -> (unit, int) result;
  readdir : inode -> (string * inode) list;
  read : inode -> pos:int -> buf:bytes -> boff:int -> len:int -> (int, int) result;
  write : inode -> pos:int -> buf:bytes -> boff:int -> len:int -> (int, int) result;
  truncate : inode -> int -> (unit, int) result;
  fsync : inode -> (unit, int) result;
  rename : inode -> string -> inode -> string -> (unit, int) result;
  link : inode -> string -> inode -> (unit, int) result;
  symlink_target : inode -> string option;
  set_symlink : inode -> string -> (unit, int) result;
}

val default_ops : ops
(** Every operation fails with the appropriate errno; file systems
    override what they support. *)

val make_inode :
  fsname:string -> kind:kind -> ?mode:int -> ops:ops -> unit -> inode
(** Allocates a fresh inode number and stamps times; also charges a
    kmalloc for the inode object when a global heap is injected. *)

val touch_mtime : inode -> unit
val touch_atime : inode -> unit

(** {2 Mounts and resolution} *)

val reset : unit -> unit
(** Clear mounts and the dentry cache (new boot). *)

val mount_root : inode -> unit
val mount : string -> inode -> unit
(** Mount a filesystem root at an absolute path. *)

val mounts : unit -> (string * inode) list

type resolved = { inode : inode; path : string }

val resolve : ?cwd:resolved -> string -> (resolved, int) result
(** Follow the path (and symlinks, bounded depth) to an inode. *)

val resolve_parent : ?cwd:resolved -> string -> (resolved * string, int) result
(** Resolve all but the final component; returns the parent and the leaf
    name. Fails with EINVAL on "/" or an empty leaf. *)

val root : unit -> resolved

val dcache_invalidate : inode -> string -> unit
(** Drop the dentry for (parent, name) after unlink/rename. *)

val dcache_entries : unit -> int
val dcache_hits : unit -> int
