(** Shared binary layouts of the simulated Linux ABI — the "header file"
    both the kernel and the user-side libc shim compile against.

    struct stat (48 bytes):
    {v
      0  u64 ino        16 u32 mode      24 u8  kind
      8  u64 size       20 u32 nlink     32 u64 mtime_ns
    v}

    sockaddr_in (8 bytes): u16 family=2, u16 port, u32 ip.
    sockaddr_un: u16 family=1, NUL-terminated path.
    timespec (16 bytes): u64 sec, u64 nsec.
    iovec (16 bytes): u64 base, u64 len. *)

val af_unix : int
val af_inet : int
val sock_stream : int
val sock_dgram : int

val stat_size : int

type stat = { ino : int; size : int; mode : int; nlink : int; kind : int; mtime_ns : int64 }

val kind_code : Vfs.kind -> int

val encode_stat : stat -> bytes
val decode_stat : bytes -> stat

val encode_sockaddr_in : port:int -> ip:int -> bytes
val encode_sockaddr_un : string -> bytes

type sockaddr = Addr_in of { port : int; ip : int } | Addr_un of string

val decode_sockaddr : bytes -> sockaddr option

val encode_timespec : sec:int64 -> nsec:int64 -> bytes
val decode_timespec : bytes -> int64 * int64

(** Directory entries from getdents64 (simplified):
    u64 ino, u8 type, u8 namelen, name bytes. *)

val encode_dirents : (string * Vfs.inode) list -> bytes
val decode_dirents : bytes -> (int * int * string) list
(** (ino, kind code, name) triples. *)
