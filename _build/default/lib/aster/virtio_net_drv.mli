(** Virtio network driver (de-privileged, OSTD-API-only).

    Wires a {!Netstack}'s external route to the virtio NIC. With DMA
    pooling on (Asterinas default), TX and RX buffers are mapped once
    and recycled — the paper credits exactly this for the NIC's near-zero
    IOMMU overhead; without it every packet pays map/unmap plus IOTLB
    invalidation (Fig. 6). *)

val init : Netstack.t -> unit

val tx_packets : unit -> int
val rx_packets : unit -> int
