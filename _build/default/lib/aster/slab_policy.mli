(** Slab caches and the injectable global heap (paper §4.4.3, Bonwick's
    original design): size-class caches with per-CPU free lists, refilled
    from slabs, which are in turn carved from whole pages. *)

type cache

val cache_create : ?magazine:bool -> name:string -> slot_size:int -> unit -> cache
(** [magazine:false] disables the per-CPU free list (ablation). *)

val cache_alloc : cache -> Ostd.Slab.Heap_slot.t
val cache_dealloc : cache -> Ostd.Slab.Heap_slot.t -> unit
val cache_shrink : cache -> int
(** Free fully-empty slabs back to the frame allocator; returns how many
    slabs were released. *)

val cache_slabs : cache -> int
val cache_active : cache -> int

val size_classes : int list
(** The kmalloc size classes (bytes). *)

val install_global_heap : unit -> unit
(** Build one cache per size class and inject them as OSTD's global heap
    allocator. *)
