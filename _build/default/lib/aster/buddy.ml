let max_order = 10

let page_size = Machine.Phys.page_size

type t = {
  (* free_lists.(o) holds start page numbers of free 2^o-page blocks. *)
  free_lists : int list array;
  (* page -> order for the head of each free block, for O(1) buddy checks. *)
  free_heads : (int, int) Hashtbl.t;
  mutable pcpu_cache : int list; (* order-0 fast path, like a per-CPU page cache *)
  pcpu_enabled : bool;
  mutable nfree : int;
}

let pcpu_cache_max = 32

let create ?(pcpu_cache = true) () =
  {
    free_lists = Array.make (max_order + 1) [];
    free_heads = Hashtbl.create 1024;
    pcpu_cache = [];
    pcpu_enabled = pcpu_cache;
    nfree = 0;
  }

let free_pages t = t.nfree

let push_block t page order =
  t.free_lists.(order) <- page :: t.free_lists.(order);
  Hashtbl.replace t.free_heads page order

let remove_block t page order =
  t.free_lists.(order) <- List.filter (fun p -> p <> page) t.free_lists.(order);
  Hashtbl.remove t.free_heads page

let order_for pages =
  let rec go o = if 1 lsl o >= pages then o else go (o + 1) in
  go 0

(* Split blocks down to the requested order. *)
let rec take_order t order =
  if order > max_order then None
  else
    match t.free_lists.(order) with
    | page :: rest ->
      t.free_lists.(order) <- rest;
      Hashtbl.remove t.free_heads page;
      Some page
    | [] -> (
      match take_order t (order + 1) with
      | None -> None
      | Some page ->
        push_block t (page + (1 lsl order)) order;
        Some page)

(* Coalesce a naturally-aligned free block upwards. [merge] preserves the
   alignment invariant: a block of order o always starts at a multiple of
   2^o, because min(page, buddy) clears the order bit. *)
let rec merge t page order =
  if order >= max_order then push_block t page order
  else begin
    let buddy = page lxor (1 lsl order) in
    match Hashtbl.find_opt t.free_heads buddy with
    | Some o when o = order ->
      remove_block t buddy order;
      merge t (min page buddy) (order + 1)
    | Some _ | None -> push_block t page order
  end

(* Free an arbitrary page span as maximal naturally-aligned blocks so the
   alignment invariant holds for every block entering the free lists. *)
let free_span t page npages ~coalesce =
  let rec go p n =
    if n > 0 then begin
      let align_order =
        let rec fit o =
          if o < max_order && p land ((1 lsl (o + 1)) - 1) = 0 then fit (o + 1) else o
        in
        fit 0
      in
      let size_order =
        let rec fit o = if o < max_order && 1 lsl (o + 1) <= n then fit (o + 1) else o in
        fit 0
      in
      let o = min align_order size_order in
      if coalesce then merge t p o else push_block t p o;
      go (p + (1 lsl o)) (n - (1 lsl o))
    end
  in
  go page npages

let alloc t ~pages =
  if pages = 1 && t.pcpu_enabled then begin
    match t.pcpu_cache with
    | page :: rest ->
      (* Per-CPU cache hit: no buddy traversal, no list surgery. *)
      Sim.Clock.charge 15;
      t.pcpu_cache <- rest;
      t.nfree <- t.nfree - 1;
      Sim.Stats.incr "buddy.pcpu_hit";
      Some (page * page_size)
    | [] -> (
      Sim.Stats.incr "buddy.pcpu_miss";
      Sim.Clock.charge 120;
      match take_order t 0 with
      | Some page ->
        t.nfree <- t.nfree - 1;
        Some (page * page_size)
      | None -> None)
  end
  else begin
    let order = order_for pages in
    (* Free-list traversal, splitting, and bookkeeping. *)
    Sim.Clock.charge (120 + (25 * order));
    match take_order t order with
    | None -> None
    | Some page ->
      let got = 1 lsl order in
      if got > pages then free_span t (page + pages) (got - pages) ~coalesce:true;
      t.nfree <- t.nfree - pages;
      Some (page * page_size)
  end

let dealloc t ~paddr ~pages =
  let page = paddr / page_size in
  t.nfree <- t.nfree + pages;
  if pages = 1 && t.pcpu_enabled && List.length t.pcpu_cache < pcpu_cache_max then begin
    Sim.Clock.charge 12;
    t.pcpu_cache <- page :: t.pcpu_cache
  end
  else begin
    Sim.Clock.charge (90 + (25 * pages / 4));
    free_span t page pages ~coalesce:true
  end

let add_free_memory t ~paddr ~pages =
  t.nfree <- t.nfree + pages;
  free_span t (paddr / page_size) pages ~coalesce:false

let as_frame_alloc t =
  let module A = struct
    let alloc ~pages = alloc t ~pages

    let dealloc ~paddr ~pages = dealloc t ~paddr ~pages

    let add_free_memory ~paddr ~pages = add_free_memory t ~paddr ~pages
  end in
  (module A : Ostd.Falloc.FRAME_ALLOC)

let install () =
  let t = create () in
  Ostd.Falloc.inject (as_frame_alloc t);
  Ostd.Boot.feed_free_memory ();
  t
