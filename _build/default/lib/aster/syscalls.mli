(** The Linux syscall dispatcher.

    [install] registers the handler with {!Process}; [init_net] hands the
    dispatcher the kernel's network engines. Numbers in the advertised
    surface without a real handler return -ENOSYS through the same
    dispatch path (counted in stats), mirroring how we report the paper's
    "over 210 syscalls" honestly. *)

val init_net : Netstack.t -> Tcp.engine -> Udp.engine -> unit

val install : unit -> unit

val implemented_count : unit -> int
val implemented_numbers : unit -> int list
val is_implemented : int -> bool
