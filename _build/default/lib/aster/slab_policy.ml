type cache = {
  name : string;
  slot_size : int;
  mutable slabs : Ostd.Slab.t list;
  mutable pcpu_free : Ostd.Slab.Heap_slot.t list; (* per-CPU magazine *)
  magazine : bool;
  slot_owner : (int, Ostd.Slab.t) Hashtbl.t; (* slot addr -> owning slab *)
}

let magazine_max = 16

let cache_create ?(magazine = true) ~name ~slot_size () =
  { name; slot_size; slabs = []; pcpu_free = []; magazine; slot_owner = Hashtbl.create 64 }

let grow c =
  let slab = Ostd.Slab.create ~slot_size:c.slot_size ~pages:1 in
  c.slabs <- slab :: c.slabs;
  slab

let rec slab_with_space c = function
  | [] -> grow c
  | s :: rest -> if Ostd.Slab.free_slots s > 0 then s else slab_with_space c rest

let cache_alloc c =
  match c.pcpu_free with
  | slot :: rest ->
    Sim.Clock.charge 8;
    c.pcpu_free <- rest;
    Sim.Stats.incr "slab.magazine_hit";
    slot
  | [] -> (
    Sim.Clock.charge 55;
    let slab = slab_with_space c c.slabs in
    match Ostd.Slab.alloc slab with
    | Some slot ->
      Hashtbl.replace c.slot_owner (Ostd.Slab.Heap_slot.addr slot) slab;
      slot
    | None -> Ostd.Panic.panicf "slab cache %s: slab with space had none" c.name)

let owner c slot =
  match Hashtbl.find_opt c.slot_owner (Ostd.Slab.Heap_slot.addr slot) with
  | Some s -> s
  | None -> Ostd.Panic.panicf "slab cache %s: slot does not belong to this cache" c.name

let cache_dealloc c slot =
  if c.magazine && List.length c.pcpu_free < magazine_max then begin
    Sim.Clock.charge 8;
    c.pcpu_free <- slot :: c.pcpu_free
  end
  else begin
    Sim.Clock.charge 45;
    let slab = owner c slot in
    Hashtbl.remove c.slot_owner (Ostd.Slab.Heap_slot.addr slot);
    Ostd.Slab.dealloc slab slot
  end

let cache_shrink c =
  (* Drain the magazine first so empty slabs become visible. *)
  List.iter
    (fun slot ->
      let slab = owner c slot in
      Hashtbl.remove c.slot_owner (Ostd.Slab.Heap_slot.addr slot);
      Ostd.Slab.dealloc slab slot)
    c.pcpu_free;
  c.pcpu_free <- [];
  let empty, busy = List.partition (fun s -> Ostd.Slab.active s = 0) c.slabs in
  List.iter Ostd.Slab.destroy empty;
  c.slabs <- busy;
  List.length empty

let cache_slabs c = List.length c.slabs

let cache_active c = List.fold_left (fun acc s -> acc + Ostd.Slab.active s) 0 c.slabs

let size_classes = [ 16; 32; 64; 128; 256; 512; 1024; 2048 ]

let install_global_heap () =
  let caches =
    List.map
      (fun sz -> (sz, cache_create ~name:(Printf.sprintf "kmalloc-%d" sz) ~slot_size:sz ()))
      size_classes
  in
  let pick size =
    match List.find_opt (fun (sz, _) -> sz >= size) caches with
    | Some (_, c) -> c
    | None -> Ostd.Panic.panicf "kmalloc: no size class for %d bytes" size
  in
  let by_addr : (int, cache) Hashtbl.t = Hashtbl.create 256 in
  let module H = struct
    let alloc ~size =
      let c = pick size in
      let slot = cache_alloc c in
      Hashtbl.replace by_addr (Ostd.Slab.Heap_slot.addr slot) c;
      slot

    let dealloc slot =
      match Hashtbl.find_opt by_addr (Ostd.Slab.Heap_slot.addr slot) with
      | Some c ->
        Hashtbl.remove by_addr (Ostd.Slab.Heap_slot.addr slot);
        cache_dealloc c slot
      | None -> Ostd.Panic.panic "kfree: pointer not allocated by kmalloc"
  end in
  Ostd.Slab.inject_heap (module H)
