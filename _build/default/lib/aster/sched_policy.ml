type class_ = Rt of int | Fair

type attr = { mutable vrt : int64; mutable cls : class_; mutable ran_since : int64 }

type Ostd.Task.custom += Attr of attr

let attr_of t =
  match Ostd.Task.custom t with
  | Some (Attr a) -> a
  | _ ->
    let a = { vrt = 0L; cls = Fair; ran_since = 0L } in
    Ostd.Task.set_custom t (Attr a);
    a

let set_class t c = (attr_of t).cls <- c

let class_of t = (attr_of t).cls

let vruntime t = (attr_of t).vrt

(* nice -20..19 -> weight, compressed version of Linux's table. *)
let weight_of_nice n =
  let n = max (-20) (min 19 n) in
  let w = 1024. *. (1.25 ** float_of_int (-n)) in
  max 16 (int_of_float w)

module Ord = struct
  type t = int64 * int

  let compare (v1, t1) (v2, t2) =
    let c = Int64.compare v1 v2 in
    if c <> 0 then c else compare t1 t2
end

module Rb = Map.Make (Ord)
(* stands in for the red-black tree of CFS *)

type state = {
  mutable fair : Ostd.Task.t Rb.t;
  mutable rt : (int * Ostd.Task.t Queue.t) list; (* priority -> fifo *)
  mutable min_vruntime : int64;
  mutable nr_queued : int;
}

let st = { fair = Rb.empty; rt = []; min_vruntime = 0L; nr_queued = 0 }

let reset_state () =
  st.fair <- Rb.empty;
  st.rt <- [];
  st.min_vruntime <- 0L;
  st.nr_queued <- 0

let queued () = st.nr_queued

let enqueue t =
  let a = attr_of t in
  st.nr_queued <- st.nr_queued + 1;
  match a.cls with
  | Rt prio ->
    let q =
      match List.assoc_opt prio st.rt with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        st.rt <- List.sort (fun (a, _) (b, _) -> compare a b) ((prio, q) :: st.rt);
        q
    in
    Queue.push t q
  | Fair ->
    (* A task that slept keeps no bonus beyond min_vruntime: place laggards
       at the current floor so they cannot starve the queue. *)
    if Int64.compare a.vrt st.min_vruntime < 0 then a.vrt <- st.min_vruntime;
    st.fair <- Rb.add (a.vrt, Ostd.Task.tid t) t st.fair

let rec pick_rt = function
  | [] -> None
  | (_, q) :: rest -> ( match Queue.take_opt q with Some t -> Some t | None -> pick_rt rest)

let pick_next () =
  match pick_rt st.rt with
  | Some t ->
    st.nr_queued <- st.nr_queued - 1;
    (attr_of t).ran_since <- Sim.Clock.now ();
    Some t
  | None -> (
    match Rb.min_binding_opt st.fair with
    | None -> None
    | Some ((vrt, _), t) ->
      st.fair <- Rb.remove (vrt, Ostd.Task.tid t) st.fair;
      st.nr_queued <- st.nr_queued - 1;
      st.min_vruntime <- vrt;
      (attr_of t).ran_since <- Sim.Clock.now ();
      Some t)

let update_curr () =
  match Ostd.Task.current_opt () with
  | None -> ()
  | Some t ->
    let a = attr_of t in
    (match a.cls with
    | Rt _ -> ()
    | Fair ->
      let delta = Int64.sub (Sim.Clock.now ()) a.ran_since in
      let delta = if Int64.compare delta 0L < 0 then 0L else delta in
      let weighted =
        Int64.of_float
          (Int64.to_float delta *. 1024. /. float_of_int (weight_of_nice (Ostd.Task.nice t)))
      in
      a.vrt <- Int64.add a.vrt weighted);
    a.ran_since <- Sim.Clock.now ()

let dequeue_curr () = ()

let install () =
  reset_state ();
  let module S = struct
    let enqueue = enqueue

    let pick_next = pick_next

    let update_curr = update_curr

    let dequeue_curr = dequeue_curr
  end in
  Ostd.Task.inject_scheduler (module S)
