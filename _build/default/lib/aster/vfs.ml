type kind = Reg | Dir | Fifo | Sock | Chr | Lnk

type inode = {
  ino : int;
  fsname : string;
  mutable kind : kind;
  mutable mode : int;
  mutable nlink : int;
  mutable size : int;
  mutable atime_ns : int64;
  mutable mtime_ns : int64;
  mutable ctime_ns : int64;
  ops : ops;
  mutable priv : priv;
}

and priv = ..

and ops = {
  lookup : inode -> string -> inode option;
  create : inode -> string -> kind -> mode:int -> (inode, int) result;
  unlink : inode -> string -> (unit, int) result;
  readdir : inode -> (string * inode) list;
  read : inode -> pos:int -> buf:bytes -> boff:int -> len:int -> (int, int) result;
  write : inode -> pos:int -> buf:bytes -> boff:int -> len:int -> (int, int) result;
  truncate : inode -> int -> (unit, int) result;
  fsync : inode -> (unit, int) result;
  rename : inode -> string -> inode -> string -> (unit, int) result;
  link : inode -> string -> inode -> (unit, int) result;
  symlink_target : inode -> string option;
  set_symlink : inode -> string -> (unit, int) result;
}

type priv += No_priv

let default_ops =
  {
    lookup = (fun _ _ -> None);
    create = (fun _ _ _ ~mode:_ -> Error Errno.enosys);
    unlink = (fun _ _ -> Error Errno.enosys);
    readdir = (fun _ -> []);
    read = (fun _ ~pos:_ ~buf:_ ~boff:_ ~len:_ -> Error Errno.einval);
    write = (fun _ ~pos:_ ~buf:_ ~boff:_ ~len:_ -> Error Errno.einval);
    truncate = (fun _ _ -> Error Errno.einval);
    fsync = (fun _ -> Ok ());
    rename = (fun _ _ _ _ -> Error Errno.enosys);
    link = (fun _ _ _ -> Error Errno.enosys);
    symlink_target = (fun _ -> None);
    set_symlink = (fun _ _ -> Error Errno.enosys);
  }

let next_ino = ref 1

let make_inode ~fsname ~kind ?(mode = 0o644) ~ops () =
  incr next_ino;
  if Ostd.Slab.heap_injected () then
    Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.kmalloc;
  let now = Ktime.realtime_ns () in
  {
    ino = !next_ino;
    fsname;
    kind;
    mode;
    nlink = 1;
    size = 0;
    atime_ns = now;
    mtime_ns = now;
    ctime_ns = now;
    ops;
    priv = No_priv;
  }

let touch_mtime i = i.mtime_ns <- Ktime.realtime_ns ()

let touch_atime i = i.atime_ns <- Ktime.realtime_ns ()

(* --- Mount table and dentry cache --- *)

let mount_table : (string * inode) list ref = ref []

(* (fsname, parent ino, component) -> inode *)
let dcache : (string * int * string, inode) Hashtbl.t = Hashtbl.create 1024

let hits = ref 0

let reset () =
  mount_table := [];
  Hashtbl.reset dcache;
  hits := 0;
  next_ino := 1

let mount_root inode = mount_table := ("/", inode) :: List.remove_assoc "/" !mount_table

let mount path inode = mount_table := (path, inode) :: !mount_table

let mounts () = !mount_table

type resolved = { inode : inode; path : string }

let root () =
  match List.assoc_opt "/" !mount_table with
  | Some i -> { inode = i; path = "/" }
  | None -> Ostd.Panic.panic "VFS: no root mounted"

let dcache_entries () = Hashtbl.length dcache

let dcache_hits () = !hits

let dcache_invalidate parent name =
  Hashtbl.remove dcache (parent.fsname, parent.ino, name)

let charge_component ~cached =
  let c = Sim.Cost.c () in
  if cached && (Sim.Profile.get ()).Sim.Profile.rcu_walk then
    Sim.Cost.charge c.Sim.Profile.path_component_fast
  else Sim.Cost.charge c.Sim.Profile.path_component

let lookup_component parent name =
  let key = (parent.fsname, parent.ino, name) in
  match Hashtbl.find_opt dcache key with
  | Some i ->
    incr hits;
    charge_component ~cached:true;
    Some i
  | None -> (
    charge_component ~cached:false;
    match parent.ops.lookup parent name with
    | Some i ->
      Hashtbl.replace dcache key i;
      Some i
    | None -> None)

let split_path path = List.filter (fun c -> c <> "" && c <> ".") (String.split_on_char '/' path)

let join base comp = if base = "/" then "/" ^ comp else base ^ "/" ^ comp

let parent_path p =
  match String.rindex_opt p '/' with
  | Some 0 | None -> "/"
  | Some i -> String.sub p 0 i

(* Follow mounts: if the absolute path we just reached is a mountpoint,
   continue from the mounted filesystem's root. *)
let cross_mounts cur =
  match List.assoc_opt cur.path !mount_table with
  | Some i when cur.path <> "/" -> { cur with inode = i }
  | Some _ | None -> cur

let max_symlink_depth = 8

let rec walk cur comps depth =
  if depth > max_symlink_depth then Error Errno.einval
  else
    match comps with
    | [] -> Ok cur
    | ".." :: rest ->
      resolve_abs "/" (split_path (parent_path cur.path) @ rest) depth
    | comp :: rest -> (
      if cur.inode.kind <> Dir then Error Errno.enotdir
      else
        match lookup_component cur.inode comp with
        | None -> Error Errno.enoent
        | Some child -> (
          let next = cross_mounts { inode = child; path = join cur.path comp } in
          match next.inode.ops.symlink_target next.inode with
          | Some target -> (
            (* Follow the link (final components included, like stat). *)
            match
              if String.length target > 0 && target.[0] = '/' then
                resolve_abs "/" (split_path target) (depth + 1)
              else walk cur (split_path target) (depth + 1)
            with
            | Ok mid -> walk mid rest depth
            | Error _ as e -> e)
          | None -> walk next rest depth))

and resolve_abs base comps depth =
  let start = if base = "/" then root () else root () in
  ignore base;
  walk start comps depth

let resolve ?cwd path =
  if String.length path = 0 then Error Errno.enoent
  else if path.[0] = '/' then resolve_abs "/" (split_path path) 0
  else
    let base = match cwd with Some c -> c | None -> root () in
    walk base (split_path path) 0

let resolve_parent ?cwd path =
  if String.length path = 0 then Error Errno.enoent
  else
    let comps = split_path path in
    match List.rev comps with
    | [] -> Error Errno.einval
    | leaf :: rev_parents -> (
      let parents = List.rev rev_parents in
      let base_resolve =
        if path.[0] = '/' then resolve_abs "/" parents 0
        else
          let base = match cwd with Some c -> c | None -> root () in
          walk base parents 0
      in
      match base_resolve with
      | Error _ as e -> e
      | Ok parent ->
        if parent.inode.kind <> Dir then Error Errno.enotdir else Ok (parent, leaf))
