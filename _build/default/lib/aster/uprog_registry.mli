(** Registry of executable user-program images, the simulation's stand-in
    for a filesystem of ELF binaries: execve resolves the path's basename
    here. Programs receive their syscall capability and argv. *)

type prog = Ostd.User.uapi -> string list -> int

val register : string -> prog -> unit
val basename : string -> string
val find : string -> prog option
val names : unit -> string list
val reset : unit -> unit
