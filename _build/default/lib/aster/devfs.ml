let null_ops =
  {
    Vfs.default_ops with
    read = (fun _ ~pos:_ ~buf:_ ~boff:_ ~len:_ -> Ok 0);
    write = (fun _ ~pos:_ ~buf:_ ~boff:_ ~len -> Ok len);
    truncate = (fun _ _ -> Ok ());
  }

let zero_ops =
  {
    Vfs.default_ops with
    read =
      (fun _ ~pos:_ ~buf ~boff ~len ->
        Bytes.fill buf boff len '\000';
        Ok len);
    write = (fun _ ~pos:_ ~buf:_ ~boff:_ ~len -> Ok len);
  }

let null_inode () = Vfs.make_inode ~fsname:"devfs" ~kind:Vfs.Chr ~mode:0o666 ~ops:null_ops ()

let zero_inode () = Vfs.make_inode ~fsname:"devfs" ~kind:Vfs.Chr ~mode:0o666 ~ops:zero_ops ()

let populate dev_dir =
  let add name inode =
    match dev_dir.Vfs.ops.Vfs.link dev_dir name inode with
    | Ok () -> ()
    | Error e -> Ostd.Panic.panicf "devfs: cannot create /dev/%s (%d)" name e
  in
  add "null" (null_inode ());
  add "zero" (zero_inode ())
