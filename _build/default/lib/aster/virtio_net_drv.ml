(* Buffer layout: descriptor (16 bytes) at offset 0, packet data at 64.
   Buffers span several pages so GSO-sized frames fit. *)
let data_off = 64

let buf_pages = 5

let data_cap = (buf_pages * Machine.Phys.page_size) - data_off

let unused_marker = 0xFFFF

type buf = { stream : Ostd.Dma.Stream.t; pooled : bool }

type state = {
  stack : Netstack.t;
  window : Ostd.Io_mem.t;
  dev_id : int;
  pool : Ostd.Dma.Pool.t;
  mutable tx_pending : buf list;
  mutable rx_posted : buf list;
  mutable ntx : int;
  mutable nrx : int;
}

let state : state option ref = ref None

let st () =
  match !state with
  | Some s -> s
  | None -> Ostd.Panic.panic "virtio-net driver not initialised"

let tx_packets () = match !state with Some s -> s.ntx | None -> 0

let rx_packets () = match !state with Some s -> s.nrx | None -> 0

let take_buf s =
  if (Sim.Profile.get ()).Sim.Profile.dma_pooling then
    match Ostd.Dma.Pool.alloc s.pool with
    | Some stream -> { stream; pooled = true }
    | None ->
      Sim.Stats.incr "virtio_net.pool_exhausted";
      { stream = Ostd.Dma.Stream.map (Ostd.Frame.alloc ~pages:buf_pages ~untyped:true ()) ~dev:s.dev_id;
        pooled = false }
  else
    { stream = Ostd.Dma.Stream.map (Ostd.Frame.alloc ~pages:buf_pages ~untyped:true ()) ~dev:s.dev_id;
      pooled = false }

let release_buf s b =
  if b.pooled then Ostd.Dma.Pool.release s.pool b.stream else Ostd.Dma.Stream.unmap b.stream

let frame_of b = Ostd.Dma.Stream.frame b.stream

let post_rx s =
  let b = take_buf s in
  let f = frame_of b in
  Ostd.Untyped.write_u32 f ~off:0 data_cap;
  Ostd.Untyped.write_u32 f ~off:4 unused_marker;
  Ostd.Untyped.write_u64 f ~off:8 (Int64.of_int (Ostd.Dma.Stream.paddr b.stream + data_off));
  let ring_was_empty = s.rx_posted = [] in
  s.rx_posted <- s.rx_posted @ [ b ];
  (* Reposting into a non-empty RX ring is a ring update, not a kick. *)
  if ring_was_empty then
    Ostd.Io_mem.doorbell s.window ~off:Machine.Virtio_net.reg_queue_rx
      (Int64.of_int (Ostd.Dma.Stream.paddr b.stream))
  else begin
    Netstack.charge s.stack 60;
    Machine.Mmio.write
      ~addr:(Ostd.Io_mem.base s.window + Machine.Virtio_net.reg_queue_rx)
      ~len:8
      (Int64.of_int (Ostd.Dma.Stream.paddr b.stream))
  end

let transmit s pkt =
  let encoded = Packet.encode pkt in
  let len = Bytes.length encoded in
  if len > data_cap then Ostd.Panic.panic "virtio-net: packet exceeds buffer";
  Netstack.charge s.stack 500;
  let b = take_buf s in
  let f = frame_of b in
  (* Copy into the DMA buffer: a real data movement. *)
  if not (Netstack.is_host s.stack) then Sim.Cost.charge_memcpy len;
  Ostd.Untyped.write_bytes f ~off:data_off ~buf:encoded ~pos:0 ~len;
  Ostd.Untyped.write_u32 f ~off:0 len;
  Ostd.Untyped.write_u32 f ~off:4 unused_marker;
  Ostd.Untyped.write_u64 f ~off:8 (Int64.of_int (Ostd.Dma.Stream.paddr b.stream + data_off));
  let device_idle = s.tx_pending = [] in
  s.tx_pending <- s.tx_pending @ [ b ];
  s.ntx <- s.ntx + 1;
  (* Virtio event suppression: kick only an idle device (full VM-exit
     cost); while it is busy, adding descriptors is a cheap ring update
     and the device keeps consuming. *)
  if device_idle then
    Ostd.Io_mem.doorbell s.window ~off:Machine.Virtio_net.reg_queue_tx
      (Int64.of_int (Ostd.Dma.Stream.paddr b.stream))
  else begin
    Netstack.charge s.stack 60;
    Machine.Mmio.write
      ~addr:(Ostd.Io_mem.base s.window + Machine.Virtio_net.reg_queue_tx)
      ~len:8
      (Int64.of_int (Ostd.Dma.Stream.paddr b.stream))
  end

(* Bottom half: reap TX completions and deliver RX arrivals. *)
let reap () =
  let s = st () in
  let done_tx, still_tx =
    List.partition (fun b -> Ostd.Untyped.read_u32 (frame_of b) ~off:4 <> unused_marker)
      s.tx_pending
  in
  s.tx_pending <- still_tx;
  List.iter (release_buf s) done_tx;
  let done_rx, still_rx =
    List.partition (fun b -> Ostd.Untyped.read_u32 (frame_of b) ~off:4 <> unused_marker)
      s.rx_posted
  in
  s.rx_posted <- still_rx;
  List.iter
    (fun b ->
      let used = Ostd.Untyped.read_u32 (frame_of b) ~off:4 in
      let data = Bytes.create used in
      if not (Netstack.is_host s.stack) then Sim.Cost.charge_memcpy used;
      Ostd.Untyped.read_bytes (frame_of b) ~off:data_off ~buf:data ~pos:0 ~len:used;
      s.nrx <- s.nrx + 1;
      release_buf s b;
      post_rx s;
      match Packet.decode data with
      | Some pkt -> Netstack.rx s.stack pkt
      | None -> Sim.Stats.incr "virtio_net.bad_packet")
    done_rx

let rx_ring_depth = 16

let init stack =
  match Ostd.Bus_probe.find `Net with
  | None -> Ostd.Panic.panic "virtio-net: no device on the bus"
  | Some dev ->
    let window =
      match
        Ostd.Io_mem.acquire ~base:dev.Ostd.Bus_probe.mmio_base ~size:dev.Ostd.Bus_probe.mmio_size
      with
      | Ok w -> w
      | Error e -> Ostd.Panic.panic e
    in
    let s =
      {
        stack;
        window;
        dev_id = dev.Ostd.Bus_probe.dev_id;
        pool = Ostd.Dma.Pool.create ~dev:dev.Ostd.Bus_probe.dev_id ~buf_pages ~count:256;
        tx_pending = [];
        rx_posted = [];
        ntx = 0;
        nrx = 0;
      }
    in
    state := Some s;
    let line = Ostd.Irq.claim ~vector:dev.Ostd.Bus_probe.vector ~name:"virtio-net" () in
    Ostd.Irq.set_handler line (fun () -> Softirq.raise_softirq reap);
    Ostd.Irq.bind_device line ~dev:s.dev_id;
    for _ = 1 to rx_ring_depth do
      post_rx s
    done;
    Netstack.set_ext_tx stack (transmit s)
