lib/aster/procfs.mli: Vfs
