lib/aster/process.ml: Errno File Hashtbl List Logs Mm Ostd Signal Sim Strace Uprog_registry Vfs
