lib/aster/udp.ml: Bytes Errno Hashtbl Netstack Ostd Packet Queue Sim
