lib/aster/block.ml: Hashtbl List Ostd Queue Sim Softirq
