lib/aster/packet.ml: Bytes Char Int32 Printf String
