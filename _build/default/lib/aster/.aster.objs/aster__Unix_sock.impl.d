lib/aster/unix_sock.ml: Bytes Errno Hashtbl Ostd Queue Sim
