lib/aster/virtio_net_drv.mli: Netstack
