lib/aster/unix_sock.mli:
