lib/aster/strace.mli:
