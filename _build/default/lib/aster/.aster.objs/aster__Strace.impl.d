lib/aster/strace.ml: Hashtbl List Syscall_nr
