lib/aster/buddy.mli: Ostd
