lib/aster/ext2.ml: Block Buffer Bytes Char Errno Hashtbl Int32 List Ostd Sim String Vfs
