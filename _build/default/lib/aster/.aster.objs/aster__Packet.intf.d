lib/aster/packet.mli:
