lib/aster/tcp.mli: Netstack
