lib/aster/syscalls.ml: Abi Array Block Bytes Char Errno Ext2 File Hashtbl Int32 Int64 Ktime List Mm Netstack Ostd Pipe Process Result Signal Sim Strace String Syscall_nr Tcp Udp Unix_sock Vfs
