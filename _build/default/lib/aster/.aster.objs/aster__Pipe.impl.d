lib/aster/pipe.ml: Bytes Errno Ostd Sim Stdlib
