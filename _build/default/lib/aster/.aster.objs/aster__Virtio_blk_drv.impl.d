lib/aster/virtio_blk_drv.ml: Block Errno Int64 List Machine Ostd Sim Softirq
