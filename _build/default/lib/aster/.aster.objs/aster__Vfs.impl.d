lib/aster/vfs.ml: Errno Hashtbl Ktime List Ostd Sim String
