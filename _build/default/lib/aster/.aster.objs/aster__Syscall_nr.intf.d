lib/aster/syscall_nr.mli:
