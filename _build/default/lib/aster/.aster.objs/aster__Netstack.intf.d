lib/aster/netstack.mli: Packet
