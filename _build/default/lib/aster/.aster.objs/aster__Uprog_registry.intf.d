lib/aster/uprog_registry.mli: Ostd
