lib/aster/slab_policy.ml: Hashtbl List Ostd Printf Sim
