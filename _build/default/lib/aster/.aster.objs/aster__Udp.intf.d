lib/aster/udp.mli: Netstack
