lib/aster/softirq.ml: Ostd Queue Sched_policy Sim
