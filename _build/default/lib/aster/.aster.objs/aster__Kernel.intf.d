lib/aster/kernel.mli: Machine Netstack Sim Tcp Udp
