lib/aster/signal.mli:
