lib/aster/pipe.mli:
