lib/aster/errno.ml: List Printf
