lib/aster/ktime.mli:
