lib/aster/file.ml: Errno Hashtbl Pipe Sim Tcp Udp Unix_sock Vfs
