lib/aster/syscall_nr.ml: List Printf
