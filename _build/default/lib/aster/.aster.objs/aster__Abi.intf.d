lib/aster/abi.mli: Vfs
