lib/aster/uprog_registry.ml: Hashtbl List Ostd String
