lib/aster/syscalls.mli: Netstack Tcp Udp
