lib/aster/ext2.mli: Vfs
