lib/aster/sched_policy.ml: Int64 List Map Ostd Queue Sim
