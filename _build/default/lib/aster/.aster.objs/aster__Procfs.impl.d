lib/aster/procfs.ml: Bytes Errno Hashtbl Ktime List Ostd Printf Process Signal Strace String Vfs
