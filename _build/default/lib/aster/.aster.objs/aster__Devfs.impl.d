lib/aster/devfs.ml: Bytes Ostd Vfs
