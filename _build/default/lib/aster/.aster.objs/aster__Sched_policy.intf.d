lib/aster/sched_policy.mli: Ostd
