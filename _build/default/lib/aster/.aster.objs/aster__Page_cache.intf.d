lib/aster/page_cache.mli:
