lib/aster/tcp.ml: Bytes Errno Hashtbl Netstack Ostd Packet Queue Sim
