lib/aster/errno.mli:
