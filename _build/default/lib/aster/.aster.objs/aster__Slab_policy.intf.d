lib/aster/slab_policy.mli: Ostd
