lib/aster/mm.mli: Ostd
