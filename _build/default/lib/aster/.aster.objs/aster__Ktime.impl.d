lib/aster/ktime.ml: Int64 Sched_policy Sim
