lib/aster/devfs.mli: Vfs
