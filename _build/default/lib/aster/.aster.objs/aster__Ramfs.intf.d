lib/aster/ramfs.mli: Page_cache Vfs
