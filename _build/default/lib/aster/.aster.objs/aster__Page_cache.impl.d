lib/aster/page_cache.ml: Bytes Hashtbl List Machine Ostd Sim
