lib/aster/process.mli: File Mm Ostd Signal Vfs
