lib/aster/softirq.mli:
