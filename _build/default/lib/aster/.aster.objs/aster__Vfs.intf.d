lib/aster/vfs.mli:
