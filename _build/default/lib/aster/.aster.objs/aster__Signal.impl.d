lib/aster/signal.ml: Array List
