lib/aster/virtio_blk_drv.mli:
