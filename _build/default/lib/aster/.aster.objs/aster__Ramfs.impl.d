lib/aster/ramfs.ml: Bytes Errno List Ostd Page_cache Vfs
