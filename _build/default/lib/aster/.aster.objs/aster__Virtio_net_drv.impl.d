lib/aster/virtio_net_drv.ml: Bytes Int64 List Machine Netstack Ostd Packet Sim Softirq
