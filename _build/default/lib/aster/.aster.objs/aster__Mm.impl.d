lib/aster/mm.ml: Errno List Ostd Sim
