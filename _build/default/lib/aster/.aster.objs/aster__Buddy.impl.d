lib/aster/buddy.ml: Array Hashtbl List Machine Ostd Sim
