lib/aster/block.mli: Ostd
