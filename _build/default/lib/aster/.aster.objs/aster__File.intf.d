lib/aster/file.mli: Pipe Tcp Udp Unix_sock Vfs
