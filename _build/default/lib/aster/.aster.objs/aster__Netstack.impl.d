lib/aster/netstack.ml: Packet Sim
