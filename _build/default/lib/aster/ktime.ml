let boot_epoch_seconds = 1_750_000_000.0

let monotonic_ns () =
  let cycles = Sim.Clock.now () in
  Int64.of_float (Sim.Clock.to_us cycles *. 1000.)

let realtime_ns () =
  Int64.add (Int64.of_float (boot_epoch_seconds *. 1e9)) (monotonic_ns ())

let seconds () = Sim.Clock.to_seconds (Sim.Clock.now ())

let ticking = ref false

let rec tick interval_us () =
  if !ticking then begin
    Sched_policy.update_curr ();
    ignore (Sim.Events.schedule_after (Sim.Clock.us interval_us) (tick interval_us))
  end

let start_ticker ?(interval_us = 1000.) () =
  if not !ticking then begin
    ticking := true;
    ignore (Sim.Events.schedule_after (Sim.Clock.us interval_us) (tick interval_us))
  end

let stop_ticker () = ticking := false
