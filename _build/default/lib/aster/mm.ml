let page_size = Ostd.Vmspace.page_size

let brk_start = 0x0800_0000
let mmap_base = 0x2000_0000
let stack_top = 0x7000_0000

type region = { start : int; mutable npages : int }

type t = {
  vm : Ostd.Vmspace.t;
  mutable brk : int;
  mutable mmap_next : int;
  mutable regions : region list;
  mutable destroyed : bool;
}

let create () =
  {
    vm = Ostd.Vmspace.create ();
    brk = brk_start;
    mmap_next = mmap_base;
    regions = [ { start = stack_top - (64 * page_size); npages = 64 } ];
    destroyed = false;
  }

let vmspace t = t.vm

let destroy t =
  if not t.destroyed then begin
    t.destroyed <- true;
    Ostd.Vmspace.destroy t.vm
  end

let fork t =
  Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.fork_base;
  {
    vm = Ostd.Vmspace.fork_clone t.vm;
    brk = t.brk;
    mmap_next = t.mmap_next;
    regions = List.map (fun r -> { r with start = r.start }) t.regions;
    destroyed = false;
  }

let page_covered t vaddr =
  let in_region r = vaddr >= r.start && vaddr < r.start + (r.npages * page_size) in
  List.exists in_region t.regions || (vaddr >= brk_start && vaddr < t.brk)

let do_brk t newbrk =
  if newbrk = 0 then t.brk
  else begin
    if newbrk < t.brk then begin
      (* Shrink: release whole pages above the new break. *)
      let keep = (newbrk + page_size - 1) / page_size in
      let had = (t.brk + page_size - 1) / page_size in
      if had > keep then
        Ostd.Vmspace.unmap t.vm ~vaddr:(keep * page_size) ~pages:(had - keep)
    end;
    t.brk <- max brk_start newbrk;
    t.brk
  end

let do_mmap t ~len =
  if len <= 0 then Error Errno.einval
  else begin
    let npages = (len + page_size - 1) / page_size in
    let addr = t.mmap_next in
    t.mmap_next <- t.mmap_next + (npages * page_size) + page_size (* guard gap *);
    t.regions <- { start = addr; npages } :: t.regions;
    (* VMA setup; pages appear on first touch. *)
    Sim.Cost.charge (1500 + (npages * (Sim.Cost.c ()).Sim.Profile.mmap_per_page));
    Ok addr
  end

let do_munmap t ~addr ~len =
  if addr mod page_size <> 0 || len <= 0 then Error Errno.einval
  else begin
    let npages = (len + page_size - 1) / page_size in
    Ostd.Vmspace.unmap t.vm ~vaddr:addr ~pages:npages;
    t.regions <-
      List.filter_map
        (fun r ->
          if r.start >= addr && r.start + (r.npages * page_size) <= addr + len then None
          else Some r)
        t.regions;
    Ok ()
  end

let do_mprotect t ~addr ~len ~writable =
  if addr mod page_size <> 0 || len <= 0 then Error Errno.einval
  else begin
    let npages = (len + page_size - 1) / page_size in
    let perms = if writable then Ostd.Vmspace.rw else Ostd.Vmspace.ro in
    Ostd.Vmspace.protect t.vm ~vaddr:addr ~pages:npages perms;
    Ok ()
  end

let handle_fault t ~vaddr ~write =
  Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.fault_entry;
  if t.destroyed then false
  else if Ostd.Vmspace.is_mapped t.vm ~vaddr then
    if write && Ostd.Vmspace.resolve_cow t.vm ~vaddr then true
    else
      (* Mapped but faulting: write to a read-only page. *)
      false
  else if page_covered t vaddr then begin
    (* Demand zero-fill. *)
    let page_base = vaddr / page_size * page_size in
    Ostd.Vmspace.map t.vm ~vaddr:page_base (Ostd.Frame.alloc ~untyped:true ()) Ostd.Vmspace.rw;
    true
  end
  else false

let mapped_pages t = Ostd.Vmspace.mapped_pages t.vm

let region_count t = List.length t.regions
