(** Unix-domain stream sockets: an in-kernel byte channel between two
    endpoints, with a filesystem-bound listener namespace. Buffer size
    and per-op cost follow the installed profile, which is where the
    bw_unix gap between the kernels comes from. *)

type endpoint

val socketpair : unit -> endpoint * endpoint

type listener

val listen : path:string -> (listener, int) result
val connect : path:string -> (endpoint, int) result
val accept : listener -> endpoint
val close_listener : listener -> unit

val send : endpoint -> buf:bytes -> pos:int -> len:int -> (int, int) result
val recv : endpoint -> buf:bytes -> pos:int -> len:int -> (int, int) result
val close : endpoint -> unit
val readable : endpoint -> bool

val reset_namespace : unit -> unit
