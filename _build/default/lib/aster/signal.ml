let sigkill = 9
let sigterm = 15
let sigint = 2
let sigchld = 17
let sigusr1 = 10

type disposition = Default | Ignore | Handled

type state = {
  actions : disposition array; (* indexed by signal, 1..64 *)
  mutable blocked : int;
  mutable pend : int;
}

let fresh () = { actions = Array.make 65 Default; blocked = 0; pend = 0 }

let valid signal = signal >= 1 && signal <= 64

let set_action st ~signal d = if valid signal && signal <> sigkill then st.actions.(signal) <- d

let action st ~signal = if valid signal then st.actions.(signal) else Default

let bit signal = 1 lsl (signal - 1)

let block st ~mask = st.blocked <- st.blocked lor (mask land lnot (bit sigkill))

let unblock st ~mask = st.blocked <- st.blocked land lnot mask

let mask st = st.blocked

let default_terminates signal =
  not (List.mem signal [ sigchld; 23 (* SIGURG *); 28 (* SIGWINCH *) ])

let post st ~signal =
  if not (valid signal) then `Ignored
  else if signal = sigkill then `Terminate
  else
    match st.actions.(signal) with
    | Ignore | Handled ->
      st.pend <- st.pend lor bit signal;
      `Ignored
    | Default ->
      if not (default_terminates signal) then `Ignored
      else if st.blocked land bit signal <> 0 then begin
        st.pend <- st.pend lor bit signal;
        `Queued
      end
      else `Terminate

let take_deliverable st =
  let rec scan signal =
    if signal > 64 then None
    else if
      st.pend land bit signal <> 0
      && st.blocked land bit signal = 0
      && st.actions.(signal) = Default
      && default_terminates signal
    then begin
      st.pend <- st.pend land lnot (bit signal);
      Some signal
    end
    else scan (signal + 1)
  in
  scan 1

let pending st = st.pend
