(** Strace-style syscall accounting.

    The paper diagnoses the SQLite VACUUM gap with strace, finding
    frequent 4-byte pwrite64 calls; this module records per-syscall
    counts and per-size histograms so the benchmark harness can print the
    same diagnosis. *)

val reset : unit -> unit
val record : nr:int -> unit
val record_size : nr:int -> size:int -> unit
val count : nr:int -> int
val small_writes : unit -> int
(** pwrite64/write calls of at most 8 bytes. *)

val top : int -> (string * int) list
(** The n most frequent syscalls, by name. *)
