(** Signals — the termination-and-masking core of the Linux signal ABI.

    Dispositions: SIGKILL is unblockable and always terminates;
    SIGCHLD/SIGURG/SIGWINCH default to ignore; everything else defaults
    to terminate. rt_sigaction can set Ignore explicitly; blocked
    terminating signals stay pending until unblocked (rt_sigprocmask
    delivers them on unmask). User-mode handler trampolines are out of
    scope (see DESIGN.md): registering a handler behaves as Ignore plus a
    pending record the process can query. *)

val sigkill : int
val sigterm : int
val sigint : int
val sigchld : int
val sigusr1 : int

type disposition = Default | Ignore | Handled

type state

val fresh : unit -> state

val set_action : state -> signal:int -> disposition -> unit
val action : state -> signal:int -> disposition

val block : state -> mask:int -> unit
(** OR the mask in (SIG_BLOCK). SIGKILL cannot be blocked. *)

val unblock : state -> mask:int -> unit
val mask : state -> int

val default_terminates : int -> bool

val post : state -> signal:int -> [ `Terminate | `Queued | `Ignored ]
(** Decide what delivering [signal] does right now: terminate the
    process, stay pending (blocked), or be ignored. Pending bits are
    recorded for [`Queued] and [`Ignored]-by-handler cases. *)

val take_deliverable : state -> int option
(** A pending, now-unblocked terminating signal, if any (consumed). *)

val pending : state -> int
