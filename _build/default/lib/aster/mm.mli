(** Per-process user memory: regions, mmap/brk, demand paging, COW.

    Regions record what *should* be mapped; pages materialise on first
    touch through the page-fault path (anonymous zero-fill), and fork
    marks writable pages copy-on-write via {!Ostd.Vmspace}. *)

type t

val create : unit -> t
val destroy : t -> unit
val fork : t -> t

val vmspace : t -> Ostd.Vmspace.t

val brk_start : int
val mmap_base : int
val stack_top : int

val do_brk : t -> int -> int
(** Set (or query with 0) the program break; returns the new break. *)

val do_mmap : t -> len:int -> (int, int) result
(** Anonymous private mapping; returns the chosen address. *)

val do_munmap : t -> addr:int -> len:int -> (unit, int) result

val do_mprotect : t -> addr:int -> len:int -> writable:bool -> (unit, int) result

val handle_fault : t -> vaddr:int -> write:bool -> bool
(** Resolve a page fault: COW split or demand zero-fill within a region.
    [false] means a genuine access violation (SIGSEGV). *)

val mapped_pages : t -> int
val region_count : t -> int
