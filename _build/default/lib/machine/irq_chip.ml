type source = Core | Device of int

let dispatcher : (int -> unit) ref = ref (fun _ -> ())

let remapping = ref false

let grants : (int * int, unit) Hashtbl.t = Hashtbl.create 16

let spoofs = ref 0

let reset () =
  dispatcher := (fun _ -> ());
  remapping := false;
  Hashtbl.reset grants;
  spoofs := 0

let set_dispatcher f = dispatcher := f

let enable_remapping () = remapping := true

let remapping_enabled () = !remapping

let remap_allow ~dev ~vector = Hashtbl.replace grants (dev, vector) ()

let remap_revoke ~dev ~vector = Hashtbl.remove grants (dev, vector)

let permitted source vector =
  match source with
  | Core -> true
  | Device dev -> (not !remapping) || Hashtbl.mem grants (dev, vector)

let raise_irq source ~vector =
  if permitted source vector then
    ignore (Sim.Events.schedule_after 0 (fun () -> !dispatcher vector))
  else begin
    incr spoofs;
    Sim.Stats.incr "irq.spoof_blocked"
  end

let blocked_spoofs () = !spoofs
