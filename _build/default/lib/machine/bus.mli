(** Device discovery: what firmware/PCI enumeration would report.

    OSTD walks this table at boot to hand drivers their (insensitive)
    register windows and interrupt vectors. *)

type kind = Blk | Net

type info = { dev_id : int; kind : kind; mmio_base : int; mmio_size : int; vector : int }

val reset : unit -> unit
val register : info -> unit
val devices : unit -> info list
val find : kind -> info option
