(** A point-to-point network link (the tap device between the VM's
    virtio-net and the host).

    Each endpoint owns a receive callback; [send] delivers the packet to
    the peer after the wire latency plus a serialisation delay derived
    from the link bandwidth. Deliveries preserve order. *)

type endpoint

val create_pair : latency_us:float -> bytes_per_cycle:float -> endpoint * endpoint

val on_receive : endpoint -> (bytes -> unit) -> unit

val send : endpoint -> bytes -> unit

val packets_sent : endpoint -> int
