lib/machine/iommu.ml: Hashtbl List Phys Printf Queue Sim
