lib/machine/bus.mli:
