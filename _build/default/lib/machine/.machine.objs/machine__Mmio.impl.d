lib/machine/mmio.ml: List Printf
