lib/machine/pio.mli:
