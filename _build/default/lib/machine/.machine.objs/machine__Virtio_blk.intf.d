lib/machine/virtio_blk.mli:
