lib/machine/virtio_blk.ml: Bus Bytes Hashtbl Int32 Int64 Iommu Irq_chip Logs Mmio Phys Queue Sim
