lib/machine/wire.ml: Bytes Int64 Sim
