lib/machine/board.ml: Bus Iommu Irq_chip Mmio Phys Pio Sim Virtio_blk Virtio_net Wire
