lib/machine/iommu.mli:
