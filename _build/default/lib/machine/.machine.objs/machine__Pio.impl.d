lib/machine/pio.ml: List Printf
