lib/machine/virtio_net.mli: Wire
