lib/machine/irq_chip.mli:
