lib/machine/board.mli: Virtio_blk Virtio_net Wire
