lib/machine/virtio_net.ml: Bus Bytes Int64 Iommu Irq_chip Mmio Phys Queue Sim Wire
