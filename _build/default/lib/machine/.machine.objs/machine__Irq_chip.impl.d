lib/machine/irq_chip.ml: Hashtbl Sim
