lib/machine/mmio.mli:
