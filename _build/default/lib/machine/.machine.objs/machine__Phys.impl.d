lib/machine/phys.ml: Array Bytes Char Int32 Printf
