lib/machine/wire.mli:
