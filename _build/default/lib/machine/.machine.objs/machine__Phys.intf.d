lib/machine/phys.mli:
