lib/machine/bus.ml: List
