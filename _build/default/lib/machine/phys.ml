let page_size = 4096

(* Frames are allocated on first touch; a fresh frame reads as zeroes,
   like RAM after the bootloader's clear. *)
let frames : Bytes.t option array ref = ref [||]

let init ~frames:n = frames := Array.make n None

let nframes () = Array.length !frames

let size () = nframes () * page_size

let valid ~paddr ~len = paddr >= 0 && len >= 0 && paddr + len <= size ()

let frame_bytes i =
  match !frames.(i) with
  | Some b -> b
  | None ->
    let b = Bytes.make page_size '\000' in
    !frames.(i) <- Some b;
    b

let check ~paddr ~len =
  if not (valid ~paddr ~len) then
    invalid_arg (Printf.sprintf "Phys: access [%#x, %#x) outside memory" paddr (paddr + len))

(* Split a byte range into per-frame chunks and apply [f frame off_in_frame
   off_in_buffer len] to each. *)
let iter_chunks ~paddr ~len f =
  let pos = ref paddr and done_ = ref 0 in
  while !done_ < len do
    let frame = !pos / page_size in
    let off = !pos mod page_size in
    let chunk = min (len - !done_) (page_size - off) in
    f frame off !done_ chunk;
    pos := !pos + chunk;
    done_ := !done_ + chunk
  done

let read ~paddr buf ~off ~len =
  check ~paddr ~len;
  iter_chunks ~paddr ~len (fun frame foff boff chunk ->
      Bytes.blit (frame_bytes frame) foff buf (off + boff) chunk)

let write ~paddr buf ~off ~len =
  check ~paddr ~len;
  iter_chunks ~paddr ~len (fun frame foff boff chunk ->
      Bytes.blit buf (off + boff) (frame_bytes frame) foff chunk)

let fill ~paddr ~len c =
  check ~paddr ~len;
  iter_chunks ~paddr ~len (fun frame foff _ chunk -> Bytes.fill (frame_bytes frame) foff chunk c)

let read_u8 paddr =
  check ~paddr ~len:1;
  Char.code (Bytes.get (frame_bytes (paddr / page_size)) (paddr mod page_size))

let write_u8 paddr v =
  check ~paddr ~len:1;
  Bytes.set (frame_bytes (paddr / page_size)) (paddr mod page_size) (Char.chr (v land 0xff))

let scratch = Bytes.create 8

let read_u32 paddr =
  read ~paddr scratch ~off:0 ~len:4;
  Int32.to_int (Bytes.get_int32_le scratch 0) land 0xffffffff

let write_u32 paddr v =
  Bytes.set_int32_le scratch 0 (Int32.of_int v);
  write ~paddr scratch ~off:0 ~len:4

let read_u64 paddr =
  read ~paddr scratch ~off:0 ~len:8;
  Bytes.get_int64_le scratch 0

let write_u64 paddr v =
  Bytes.set_int64_le scratch 0 v;
  write ~paddr scratch ~off:0 ~len:8
