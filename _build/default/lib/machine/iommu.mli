(** IOMMU: DMA remapping with a small IOTLB.

    Each peripheral gets a device domain; a DMA access outside the pages
    mapped into the domain faults instead of reaching memory (Inv. 6).
    Translation charges an IOTLB hit or a page-walk miss per page touched;
    unmapping invalidates the corresponding IOTLB entries — this is what
    makes the paper's DMA pooling optimisation visible (Fig. 6). When the
    IOMMU is disabled, every access passes untranslated and uncharged. *)

val reset : unit -> unit

val set_enabled : bool -> unit
val enabled : unit -> bool

val map : dev:int -> paddr:int -> len:int -> unit
(** Grant a device DMA access to the pages covering [paddr, paddr+len). *)

val unmap : dev:int -> paddr:int -> len:int -> unit
(** Revoke, invalidating IOTLB entries for those pages. *)

val mapped_pages : dev:int -> int

val access : dev:int -> paddr:int -> len:int -> (unit, string) result
(** Translate a device access. Charges IOTLB hits/misses. On a fault the
    access does not reach memory and the fault is counted
    ("iommu.fault"). *)

val hits : unit -> int
val misses : unit -> int
