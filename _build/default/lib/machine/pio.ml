type range = {
  first : int;
  count : int;
  name : string;
  sensitive : bool;
  read : port:int -> int;
  write : port:int -> int -> unit;
}

let table : range list ref = ref []

let reset () = table := []

let overlaps a b = a.first < b.first + b.count && b.first < a.first + a.count

let register r =
  if List.exists (overlaps r) !table then
    invalid_arg (Printf.sprintf "Pio.register: %s overlaps an existing range" r.name);
  table := r :: !table

let find port = List.find_opt (fun r -> port >= r.first && port < r.first + r.count) !table

let ranges () = List.rev !table

let read ~port = match find port with Some r -> r.read ~port | None -> 0xff

let write ~port v = match find port with Some r -> r.write ~port v | None -> ()
