(** Memory-mapped I/O space.

    Device models register windows here at creation; firmware-style
    labelling marks each window sensitive (core devices such as the local
    APIC, whose misuse can take down the machine) or insensitive
    (peripherals). OSTD's [IoMem] consults the label before handing a
    window to de-privileged code (Inv. 7). *)

type region = {
  base : int;
  size : int;
  name : string;
  sensitive : bool;
  read : off:int -> len:int -> int64;
  write : off:int -> len:int -> int64 -> unit;
}

val reset : unit -> unit

val register : region -> unit
(** Raises [Invalid_argument] if the window overlaps an existing one. *)

val find : int -> region option
(** Region containing the given bus address, if any. *)

val regions : unit -> region list

val read : addr:int -> len:int -> int64
(** Dispatch a read to the owning device model. Unclaimed addresses read
    as all-ones, like a real bus. *)

val write : addr:int -> len:int -> int64 -> unit
(** Writes to unclaimed addresses are dropped. *)
