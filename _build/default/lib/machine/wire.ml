type endpoint = {
  latency_us : float;
  bytes_per_cycle : float;
  mutable peer : endpoint option;
  mutable rx : bytes -> unit;
  mutable sent : int;
  (* Earliest cycle at which the link is free again; models serialisation
     so that back-to-back sends queue behind each other. *)
  mutable link_free_at : int64;
}

let make ~latency_us ~bytes_per_cycle =
  {
    latency_us;
    bytes_per_cycle;
    peer = None;
    rx = (fun _ -> ());
    sent = 0;
    link_free_at = 0L;
  }

let create_pair ~latency_us ~bytes_per_cycle =
  let a = make ~latency_us ~bytes_per_cycle in
  let b = make ~latency_us ~bytes_per_cycle in
  a.peer <- Some b;
  b.peer <- Some a;
  (a, b)

let on_receive ep f = ep.rx <- f

let send ep packet =
  match ep.peer with
  | None -> ()
  | Some peer ->
    ep.sent <- ep.sent + 1;
    let now = Sim.Clock.now () in
    let serialize =
      int_of_float (float_of_int (Bytes.length packet) /. max 0.001 ep.bytes_per_cycle)
    in
    let start = if Int64.compare ep.link_free_at now > 0 then ep.link_free_at else now in
    let done_at = Int64.add start (Int64.of_int serialize) in
    ep.link_free_at <- done_at;
    let deliver_at = Int64.add done_at (Int64.of_int (Sim.Clock.us ep.latency_us)) in
    let copy = Bytes.copy packet in
    ignore (Sim.Events.schedule_at deliver_at (fun () -> peer.rx copy))

let packets_sent ep = ep.sent
