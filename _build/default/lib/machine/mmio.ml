type region = {
  base : int;
  size : int;
  name : string;
  sensitive : bool;
  read : off:int -> len:int -> int64;
  write : off:int -> len:int -> int64 -> unit;
}

let table : region list ref = ref []

let reset () = table := []

let overlaps a b = a.base < b.base + b.size && b.base < a.base + a.size

let register r =
  if List.exists (overlaps r) !table then
    invalid_arg (Printf.sprintf "Mmio.register: %s overlaps an existing window" r.name);
  table := r :: !table

let find addr = List.find_opt (fun r -> addr >= r.base && addr < r.base + r.size) !table

let regions () = List.rev !table

let read ~addr ~len =
  match find addr with
  | Some r -> r.read ~off:(addr - r.base) ~len
  | None -> -1L

let write ~addr ~len v =
  match find addr with
  | Some r -> r.write ~off:(addr - r.base) ~len v
  | None -> ()
