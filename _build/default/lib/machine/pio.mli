(** Port I/O space (x86 in/out), with the same sensitivity labelling as
    {!Mmio}. *)

type range = {
  first : int;
  count : int;
  name : string;
  sensitive : bool;
  read : port:int -> int;
  write : port:int -> int -> unit;
}

val reset : unit -> unit
val register : range -> unit
val find : int -> range option
val ranges : unit -> range list
val read : port:int -> int
val write : port:int -> int -> unit
