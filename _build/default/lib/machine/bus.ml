type kind = Blk | Net

type info = { dev_id : int; kind : kind; mmio_base : int; mmio_size : int; vector : int }

let table : info list ref = ref []

let reset () = table := []

let register i = table := !table @ [ i ]

let devices () = !table

let find kind = List.find_opt (fun i -> i.kind = kind) !table
