(** Simulated physical memory.

    Memory is an array of 4 KiB frames whose backing bytes are allocated
    lazily. Addresses are plain ints (the simulated machine is well under
    62 bits of physical space). This module performs no protection checks
    of its own: it is raw hardware, and anything that can name a physical
    address can scribble on it — exactly the property OSTD's frame
    ownership and the IOMMU exist to discipline. *)

val page_size : int

val init : frames:int -> unit
(** (Re)initialise physical memory with the given number of frames. *)

val nframes : unit -> int

val size : unit -> int
(** Total bytes of physical memory. *)

val valid : paddr:int -> len:int -> bool
(** Whether a byte range lies inside physical memory. *)

val read : paddr:int -> bytes -> off:int -> len:int -> unit
(** Copy simulated memory into an OCaml buffer. Raises [Invalid_argument]
    on an out-of-range physical address. *)

val write : paddr:int -> bytes -> off:int -> len:int -> unit

val fill : paddr:int -> len:int -> char -> unit

val read_u8 : int -> int
val write_u8 : int -> int -> unit
val read_u32 : int -> int
val write_u32 : int -> int -> unit
val read_u64 : int -> int64
val write_u64 : int -> int64 -> unit
