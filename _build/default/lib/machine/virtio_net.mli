(** Virtio network device model, attached to one end of a {!Wire}.

    Transmit descriptor (16 bytes):
    {v
      off 0  u32  len
      off 4  u32  status   written by the device: 0 sent, 1 dma fault
      off 8  u64  data paddr
    v}

    Receive descriptor (16 bytes):
    {v
      off 0  u32  capacity
      off 4  u32  used len  written by the device (0xffffffff until used)
      off 8  u64  data paddr
    v}

    The driver posts receive buffers ahead of time; inbound packets that
    find no posted buffer are dropped and counted, like a NIC with an
    empty RX ring. All data movement goes through the {!Iommu}. One
    interrupt vector signals both TX completions and RX arrivals. *)

type t

val create :
  mmio_base:int -> dev_id:int -> vector:int -> endpoint:Wire.endpoint -> t

val reg_queue_tx : int
val reg_queue_rx : int

val rx_dropped : t -> int
val tx_count : t -> int
