let profile = Sim.Profile.linux

let boot ?frames ?disk_mb () = Aster.Kernel.boot ~profile ?frames ?disk_mb ()

let mechanism_differences =
  [
    ( "TCP congestion control",
      "Reno slow start + congestion avoidance",
      "none (smoltcp-style), sender limited only by peer window" );
    ( "Segmentation offload",
      "GSO/TSO: large frames to the NIC",
      "software segmentation to MSS" );
    ("Name lookup", "RCU-walk fast path on dcache hits", "lock-walk only");
    ("sendfile", "zero-copy page-cache pages", "extra copy via a bounce buffer");
    ("Unix sockets", "skb allocation + double copy", "single-copy ring buffer");
    ("Pipe ring", "64 KiB", "256 KiB");
    ("DMA mapping", "no IOMMU (paper baseline)", "IOMMU + pooled persistent mappings");
    ("Safety checks", "none", "OSTD bounds/ownership/fit checks (Table 8)");
  ]
