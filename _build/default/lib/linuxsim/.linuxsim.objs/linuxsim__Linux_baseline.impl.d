lib/linuxsim/linux_baseline.ml: Aster Sim
