lib/linuxsim/linux_baseline.mli: Aster Sim
