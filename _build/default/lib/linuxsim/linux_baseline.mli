(** The Linux 5.15 baseline configuration from §6.1.

    The comparison kernel is the same simulated kernel code base running
    the Linux mechanism set — congestion control, GSO, RCU-walk,
    zero-copy sendfile, skb-based unix sockets, smaller pipe rings — with
    cost constants calibrated to the paper's Linux column. This module
    pins that configuration and documents what each switch changes. *)

val profile : Sim.Profile.t
(** [Sim.Profile.linux], re-exported as the canonical baseline. *)

val boot : ?frames:int -> ?disk_mb:int -> unit -> Aster.Kernel.t
(** Boot the baseline kernel. *)

val mechanism_differences : (string * string * string) list
(** (mechanism, Linux behaviour, Asterinas behaviour) — the table
    DESIGN.md and the bench harness print. *)
