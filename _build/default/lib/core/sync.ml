module Spin_lock = struct
  type t = { name : string; mutable holder : int option }

  let create name = { name; holder = None }

  let with_lock t f =
    (match t.holder with
    | Some tid when Some tid = Option.map Task.tid (Task.current_opt ()) ->
      Panic.panicf "SpinLock %s: re-entrant acquisition (self-deadlock)" t.name
    | Some _ -> Panic.panicf "SpinLock %s: contended on a single CPU (missed release?)" t.name
    | None -> ());
    t.holder <- Some (match Task.current_opt () with Some c -> Task.tid c | None -> -1);
    Atomic_mode.enter ();
    Sim.Cost.charge 20;
    Fun.protect
      ~finally:(fun () ->
        t.holder <- None;
        Atomic_mode.exit ())
      f

  let held t = t.holder <> None
end

module Mutex = struct
  type t = { name : string; mutable holder : int option; wq : Wait_queue.t }

  let create name = { name; holder = None; wq = Wait_queue.create () }

  let with_lock t f =
    let me = Task.tid (Task.current ()) in
    if t.holder = Some me then Panic.panicf "Mutex %s: re-entrant acquisition" t.name;
    Wait_queue.sleep_until t.wq (fun () -> t.holder = None);
    t.holder <- Some me;
    Sim.Cost.charge 30;
    Fun.protect
      ~finally:(fun () ->
        t.holder <- None;
        ignore (Wait_queue.wake_one t.wq))
      f

  let held t = t.holder <> None
end

module Rw_lock = struct
  type t = { name : string; mutable readers : int; mutable writer : bool; wq : Wait_queue.t }

  let create name = { name; readers = 0; writer = false; wq = Wait_queue.create () }

  let with_read t f =
    Wait_queue.sleep_until t.wq (fun () -> not t.writer);
    t.readers <- t.readers + 1;
    Fun.protect
      ~finally:(fun () ->
        t.readers <- t.readers - 1;
        if t.readers = 0 then ignore (Wait_queue.wake_all t.wq))
      f

  let with_write t f =
    Wait_queue.sleep_until t.wq (fun () -> (not t.writer) && t.readers = 0);
    t.writer <- true;
    Fun.protect
      ~finally:(fun () ->
        t.writer <- false;
        ignore (Wait_queue.wake_all t.wq))
      f
end

module Rcu = struct
  (* Single global grace-period bookkeeping: a counter of live read
     sections and a generation number. *)
  let live_readers = ref 0

  let generation = ref 0

  let gp_wq = ref (Wait_queue.create ())

  (* Called at boot: grace-period state must not leak across reboots. *)
  let reset_global () =
    live_readers := 0;
    generation := 0;
    gp_wq := Wait_queue.create ()

  type 'a t = { mutable value : 'a }

  let create v = { value = v }

  let read t f =
    Atomic_mode.enter ();
    incr live_readers;
    Fun.protect
      ~finally:(fun () ->
        decr live_readers;
        Atomic_mode.exit ();
        if !live_readers = 0 then begin
          incr generation;
          ignore (Wait_queue.wake_all !gp_wq)
        end)
      (fun () -> f t.value)

  let update t v = t.value <- v

  let synchronize () =
    Atomic_mode.assert_sleepable "Rcu.synchronize";
    if !live_readers > 0 then begin
      let target = !generation + 1 in
      Wait_queue.sleep_until !gp_wq (fun () -> !generation >= target)
    end
end

module Cpu_local = struct
  (* SMP = 1: one slot per "CPU". *)
  type 'a t = { value : 'a }

  let create init = { value = init () }

  let get t = t.value
end
