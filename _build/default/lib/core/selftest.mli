(** OSTD's unit-test corpus, shared by the alcotest suite and the
    KernMiri runner (the paper interprets exactly OSTD's unit tests to
    measure coverage — Table 10).

    Each case boots a fresh machine, so cases are order-independent. *)

type case = { submodule : string; name : string; run : unit -> unit }

val cases : case list

val submodules : unit -> string list

val run_submodule : string -> int
(** Run every case of one submodule; returns the number executed. Raises
    on the first failure. *)

val fresh_boot : ?frames:int -> unit -> unit
(** Boot OSTD with the bootstrap allocator and FIFO scheduler — the
    standalone configuration used by tests and the quickstart example. *)

val expect_panic : (unit -> unit) -> unit
(** Fails unless the thunk raises [Kernel_panic]. *)
