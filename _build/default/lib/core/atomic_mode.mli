(** Atomic-context tracking.

    The paper notes that Linux/RFL tolerate sleeping in atomic context
    (spinlock or RCU read sections, interrupt handlers), an unsoundness
    OSTD forbids by construction: OSTD enters "atomic mode" around those
    regions and any attempt to sleep inside one panics. *)

val enter : unit -> unit
val exit : unit -> unit
val depth : unit -> int
val in_atomic : unit -> bool

val assert_sleepable : string -> unit
(** Panics (sleep-in-atomic-context) when called in atomic mode. *)

val reset : unit -> unit
