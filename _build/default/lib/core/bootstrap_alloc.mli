(** A minimal first-fit frame allocator for OSTD's own unit tests and the
    quickstart example.

    Real kernels inject a proper policy (Asterinas injects a buddy system
    with per-CPU caches from outside the TCB); this one exists so OSTD
    can be exercised standalone. *)

val make : unit -> (module Falloc.FRAME_ALLOC)

val make_buggy_overlapping : unit -> (module Falloc.FRAME_ALLOC)
(** A deliberately broken allocator that hands out the same span twice —
    used to verify that {!Frame.alloc} catches Inv. 1 violations. *)
