(** User virtual address spaces (paper's [VmSpace]).

    A VmSpace maps user page numbers to frames. Inv. 5: only untyped
    frames may be mapped — handing typed (sensitive) memory to user space
    panics, so kernel stacks, page tables, and slabs can never leak into
    a user mapping. The page-table pages themselves are modelled as typed
    frames allocated per 512 mappings.

    Copy-on-write is provided as mechanism: {!fork_clone} shares frames
    with write permission stripped, and the fault handler calls
    {!resolve_cow} to split. *)

type t

type perms = { read : bool; write : bool; exec : bool }

val rw : perms
val ro : perms
val rx : perms

type fault = { vaddr : int; write : bool }

val page_size : int

val create : unit -> t

val destroy : t -> unit
(** Unmap everything and free page-table frames. *)

val id : t -> int

val map : t -> vaddr:int -> Frame.t -> perms -> unit
(** Take ownership of the handle and map its pages at [vaddr]
    (page-aligned). Panics on typed frames (Inv. 5) and on overlap. *)

val unmap : t -> vaddr:int -> pages:int -> unit
(** Unmapped pages in the range are skipped. *)

val protect : t -> vaddr:int -> pages:int -> perms -> unit

val is_mapped : t -> vaddr:int -> bool

val frame_at : t -> vaddr:int -> Frame.t option
(** The mapped frame covering [vaddr] (not cloned). *)

val mapped_pages : t -> int

val copy_out : t -> vaddr:int -> buf:bytes -> pos:int -> len:int -> (unit, fault) result
(** Kernel reads user memory (copy_from_user). Charges the user-copy
    cost. Fails with the first faulting page on unmapped/unreadable
    ranges. *)

val copy_in : t -> vaddr:int -> buf:bytes -> pos:int -> len:int -> (unit, fault) result
(** Kernel writes user memory (copy_to_user). Write faults include
    copy-on-write splits, which the caller resolves via the process
    fault handler and retries. *)

val user_access :
  t -> vaddr:int -> len:int -> write:bool -> (unit, fault) result
(** Validate a user-mode load/store without moving kernel data (used by
    the user fiber itself). *)

val fork_clone : t -> t
(** Duplicate for fork: shared frames, writable private pages become
    copy-on-write in both spaces. Charges the per-page fork cost. *)

val resolve_cow : t -> vaddr:int -> bool
(** Split the copy-on-write page covering [vaddr]: allocate a fresh
    untyped frame, copy, remap writable. [false] if the page is not a
    COW mapping (a genuine protection fault). *)
