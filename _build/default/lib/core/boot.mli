(** OSTD boot: bring up the machine models, the frame metadata system,
    and — when the installed {!Sim.Profile} asks for it — the IOMMU with
    interrupt remapping (Inv. 3/6). Policy injection (scheduler, frame
    allocator, heap) happens after [init] and before [feed_free_memory]
    or any allocation. *)

val reserved_pages : int
(** Frames reserved for the kernel image and boot structures. *)

val init : ?frames:int -> unit -> unit
(** Reset every subsystem for a fresh boot. Does not attach peripherals;
    use {!Machine.Board.attach_default_devices} for the paper's VM
    configuration. *)

val feed_free_memory : unit -> unit
(** Hand all non-reserved physical memory to the injected frame
    allocator ([FrameAlloc::add_free_memory]). *)

val booted : unit -> bool
