(** Safe user-kernel interaction: [UserContext] and [UserMode] (Inv. 2).

    A user thread is an effect fiber confined to a {!uapi} capability: it
    can issue syscalls, touch its own {!Vmspace} memory (which may
    page-fault into the kernel), and nothing else — the only channel
    between user programs and the kernel is the trap interface, as in the
    paper's Figure 3. [execute] runs user code until the next trap and
    hands the kernel a {!trap} to handle.

    The register context exposes only the insensitive subset of CPU
    state: [set_rflags] silently masks IF/IOPL, so user code can never
    gain interrupt or I/O privilege through OSTD. *)

module Context : sig
  type t

  val create : unit -> t
  val clone : t -> t

  val get_gpr : t -> int -> int64
  val set_gpr : t -> int -> int64 -> unit

  val rip : t -> int64
  val set_rip : t -> int64 -> unit
  val rsp : t -> int64
  val set_rsp : t -> int64 -> unit

  val rflags : t -> int64

  val set_rflags : t -> int64 -> unit
  (** Sensitive bits (IF, bit 9; IOPL, bits 12-13) are masked away. *)
end

type trap =
  | Syscall of { nr : int; args : int64 array }
  | Page_fault of { vaddr : int; write : bool }
  | Exit of int

type resume =
  | Start
  | Sysret of int64  (** value placed in RAX on return from a syscall *)
  | Fault_resolved

type uapi = {
  sys : int -> int64 array -> int64;
  mem_read : int -> bytes -> unit;  (** load [Bytes.length] bytes at vaddr *)
  mem_write : int -> bytes -> unit;
  mem_read_u64 : int -> int64;
  mem_write_u64 : int -> int64 -> unit;
}

type prog = uapi -> int
(** A user program: receives its capability, returns its exit status. *)

type t
(** A user thread. *)

val create : prog -> Vmspace.t -> t
(** The VmSpace is borrowed, not owned; process teardown destroys it. *)

val context : t -> Context.t
val vmspace : t -> Vmspace.t

val set_vmspace : t -> Vmspace.t -> unit
(** Used by execve to install a fresh address space. *)

val execute : t -> resume -> trap
(** Enter user mode and run until the next trap. Charges the user<->kernel
    transition cost on each syscall trap. *)

val abandon : t -> unit
(** Drop the suspended user continuation (execve replaces the image,
    process kill). *)
