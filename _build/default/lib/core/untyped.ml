let () =
  List.iter
    (fun (u, n) -> Probe.declare ~submodule:"untyped" ~unsafe_:u n)
    [
      (true, "untyped.raw_read");
      (true, "untyped.raw_write");
      (false, "untyped.bounds_check");
      (false, "untyped.typed_reject");
    ]

let guard frame ~off ~len op =
  Probe.hit "untyped.bounds_check";
  (* The raw data movement itself (~32 bytes/cycle), plus the boundary
     check when safety checks are on (Table 8 rows 1-2). *)
  Sim.Cost.charge (len / 32);
  Sim.Cost.charge_safety (fun s -> s.Sim.Profile.boundary_check);
  if not (Frame.is_untyped frame) then begin
    Probe.hit "untyped.typed_reject";
    Panic.panicf "Untyped.%s: handle covers typed (sensitive) memory" op
  end;
  if off < 0 || len < 0 || off + len > Frame.size frame then
    Panic.panicf "Untyped.%s: range [%d, %d) outside frame of %d bytes" op off (off + len)
      (Frame.size frame)

let read_bytes frame ~off ~buf ~pos ~len =
  guard frame ~off ~len "read_bytes";
  Probe.hit "untyped.raw_read";
  Machine.Phys.read ~paddr:(Frame.paddr frame + off) buf ~off:pos ~len

let write_bytes frame ~off ~buf ~pos ~len =
  guard frame ~off ~len "write_bytes";
  Probe.hit "untyped.raw_write";
  Machine.Phys.write ~paddr:(Frame.paddr frame + off) buf ~off:pos ~len

let fill frame ~off ~len c =
  guard frame ~off ~len "fill";
  Probe.hit "untyped.raw_write";
  Machine.Phys.fill ~paddr:(Frame.paddr frame + off) ~len c

let read_u8 frame ~off =
  guard frame ~off ~len:1 "read_u8";
  Probe.hit "untyped.raw_read";
  Machine.Phys.read_u8 (Frame.paddr frame + off)

let write_u8 frame ~off v =
  guard frame ~off ~len:1 "write_u8";
  Probe.hit "untyped.raw_write";
  Machine.Phys.write_u8 (Frame.paddr frame + off) v

let read_u32 frame ~off =
  guard frame ~off ~len:4 "read_u32";
  Probe.hit "untyped.raw_read";
  Machine.Phys.read_u32 (Frame.paddr frame + off)

let write_u32 frame ~off v =
  guard frame ~off ~len:4 "write_u32";
  Probe.hit "untyped.raw_write";
  Machine.Phys.write_u32 (Frame.paddr frame + off) v

let read_u64 frame ~off =
  guard frame ~off ~len:8 "read_u64";
  Probe.hit "untyped.raw_read";
  Machine.Phys.read_u64 (Frame.paddr frame + off)

let write_u64 frame ~off v =
  guard frame ~off ~len:8 "write_u64";
  Probe.hit "untyped.raw_write";
  Machine.Phys.write_u64 (Frame.paddr frame + off) v

let copy ~src ~src_off ~dst ~dst_off ~len =
  guard src ~off:src_off ~len "copy";
  guard dst ~off:dst_off ~len "copy";
  Probe.hit "untyped.raw_read";
  Probe.hit "untyped.raw_write";
  let buf = Bytes.create len in
  Machine.Phys.read ~paddr:(Frame.paddr src + src_off) buf ~off:0 ~len;
  Machine.Phys.write ~paddr:(Frame.paddr dst + dst_off) buf ~off:0 ~len
