(** Kernel stacks with guard pages (Inv. 4).

    Each task's stack is a typed (sensitive) segment with one guard page
    below it. OCaml's runtime manages the real call stack, so stack
    *consumption* is modelled: kernel code brackets deep paths with
    [with_frame], and pushing past the stack size means the guard page
    was hit — a panic, never silent corruption. Creation charges the
    guard-page setup cost from Table 8. *)

type t

val stack_pages : int

val create : unit -> t
val destroy : t -> unit

val depth : t -> int
(** Current simulated stack usage in bytes. *)

val with_frame : t -> bytes:int -> (unit -> 'a) -> 'a
(** Account a stack frame of [bytes] around a call; hitting the guard
    page panics. *)

val max_frame_bytes : int
(** Compile-time-analysis bound from the paper: no single function frame
    may exceed the guard page size. [with_frame] enforces it. *)
