let page_size = Machine.Phys.page_size

(* Free list of [first_page, npages) ranges kept sorted and coalesced. *)
type state = { mutable free : (int * int) list }

let insert st first npages =
  let ranges = List.sort compare ((first, npages) :: st.free) in
  let coalesce acc (f, n) =
    match acc with
    | (pf, pn) :: rest when pf + pn = f -> (pf, pn + n) :: rest
    | _ -> (f, n) :: acc
  in
  st.free <- List.rev (List.fold_left coalesce [] ranges)

let take st pages =
  let rec go acc = function
    | [] -> None
    | (f, n) :: rest when n >= pages ->
      let remaining = if n = pages then rest else (f + pages, n - pages) :: rest in
      st.free <- List.rev_append acc remaining;
      Some (f * page_size)
    | r :: rest -> go (r :: acc) rest
  in
  go [] st.free

let make () =
  let st = { free = [] } in
  let module A = struct
    let alloc ~pages = take st pages

    let dealloc ~paddr ~pages = insert st (paddr / page_size) pages

    let add_free_memory ~paddr ~pages = insert st (paddr / page_size) pages
  end in
  (module A : Falloc.FRAME_ALLOC)

let make_buggy_overlapping () =
  let base = ref None in
  let module A = struct
    (* Always returns the same span: the second allocation overlaps the
       first, which from_unused must reject. *)
    let alloc ~pages:_ =
      match !base with
      | Some p -> Some p
      | None -> None

    let dealloc ~paddr:_ ~pages:_ = ()

    let add_free_memory ~paddr ~pages:_ = base := Some paddr
  end in
  (module A : Falloc.FRAME_ALLOC)
