let reserved_pages = 256

let up = ref false

let init ?frames () =
  Machine.Board.reset ?frames ();
  Falloc.reset ();
  Slab.reset_heap ();
  Task.reset ();
  Sync.Rcu.reset_global ();
  Irq.reset ();
  Irq.install_dispatcher ();
  Frame.init_metadata ~reserved_pages;
  let p = Sim.Profile.get () in
  if p.Sim.Profile.iommu then begin
    Machine.Iommu.set_enabled true;
    Machine.Irq_chip.enable_remapping ()
  end;
  up := true

let feed_free_memory () =
  let (module A) = Falloc.injected () in
  let total = Frame.total_frames () in
  A.add_free_memory
    ~paddr:(reserved_pages * Machine.Phys.page_size)
    ~pages:(total - reserved_pages)

let booted () = !up
