(** The untyped-memory reader/writer interface (paper §4.2).

    Untyped memory is externally modifiable (user-mapped or DMA-capable),
    so it can never back a typed reference; the only operations are
    copying plain-old-data values in and out. Every access performs a
    boundary check (charged per Table 8) and panics if the handle covers
    typed memory — the type discipline that in Rust is carried by
    [UFrame<M>]'s trait bound is enforced here dynamically, and the
    public API of the kernel services never sees typed frames at all. *)

val read_bytes : Frame.t -> off:int -> buf:bytes -> pos:int -> len:int -> unit
(** Copy out of untyped memory. Panics on a non-untyped handle or an
    out-of-bounds range. *)

val write_bytes : Frame.t -> off:int -> buf:bytes -> pos:int -> len:int -> unit

val fill : Frame.t -> off:int -> len:int -> char -> unit

val read_u8 : Frame.t -> off:int -> int
val write_u8 : Frame.t -> off:int -> int -> unit
val read_u32 : Frame.t -> off:int -> int
val write_u32 : Frame.t -> off:int -> int -> unit
val read_u64 : Frame.t -> off:int -> int64
val write_u64 : Frame.t -> off:int -> int64 -> unit

val copy : src:Frame.t -> src_off:int -> dst:Frame.t -> dst_off:int -> len:int -> unit
(** Untyped-to-untyped copy (page-cache moves, bounce buffers). *)
