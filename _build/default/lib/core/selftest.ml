type case = { submodule : string; name : string; run : unit -> unit }

let fresh_boot ?(frames = 4096) () =
  Boot.init ~frames ();
  Task.inject_fifo_scheduler ();
  Falloc.inject (Bootstrap_alloc.make ());
  Boot.feed_free_memory ()

let expect_panic f =
  match f () with
  | () -> failwith "expected a kernel panic, but none was raised"
  | exception Panic.Kernel_panic _ -> ()

let check b msg = if not b then failwith msg

let page = Machine.Phys.page_size

(* Each case boots its own machine so KernMiri can interpret them in any
   order, mirroring how the paper runs Miri over OSTD's unit tests. *)
let t submodule name run = { submodule; name; run = (fun () -> fresh_boot (); run ()) }

let frame_cases =
  [
    t "frame" "alloc_starts_with_refcount_one" (fun () ->
        let f = Frame.alloc ~untyped:true () in
        check (Frame.refcount ~paddr:(Frame.paddr f) = 1) "refcount after alloc";
        Frame.drop f);
    t "frame" "alloc_claims_untyped_state" (fun () ->
        let f = Frame.alloc ~untyped:true () in
        check (Frame.state_of ~paddr:(Frame.paddr f) = Frame.Untyped) "state";
        Frame.drop f);
    t "frame" "alloc_claims_typed_state" (fun () ->
        let f = Frame.alloc ~untyped:false () in
        check (Frame.state_of ~paddr:(Frame.paddr f) = Frame.Typed) "state";
        Frame.drop f);
    t "frame" "drop_returns_to_unused" (fun () ->
        let f = Frame.alloc ~untyped:true () in
        let pa = Frame.paddr f in
        Frame.drop f;
        check (Frame.state_of ~paddr:pa = Frame.Unused) "state after drop");
    t "frame" "clone_bumps_refcount" (fun () ->
        let f = Frame.alloc ~untyped:true () in
        let g = Frame.clone f in
        check (Frame.refcount ~paddr:(Frame.paddr f) = 2) "refcount after clone";
        Frame.drop g;
        check (Frame.refcount ~paddr:(Frame.paddr f) = 1) "refcount after drop";
        Frame.drop f);
    t "frame" "segment_spans_contiguous_pages" (fun () ->
        let s = Frame.alloc ~pages:4 ~untyped:true () in
        check (Frame.size s = 4 * page) "segment size";
        check (Frame.refcount ~paddr:(Frame.paddr s + (3 * page)) = 1) "last page claimed";
        Frame.drop s);
    t "frame" "from_unused_rejects_reserved_memory" (fun () ->
        match Frame.from_unused ~paddr:0 ~pages:1 ~untyped:true with
        | Ok _ -> failwith "claimed the kernel image"
        | Error _ -> ());
    t "frame" "from_unused_rejects_double_claim" (fun () ->
        let f = Frame.alloc ~untyped:true () in
        (match Frame.from_unused ~paddr:(Frame.paddr f) ~pages:1 ~untyped:true with
        | Ok _ -> failwith "double claim accepted (Inv. 1)"
        | Error _ -> ());
        Frame.drop f);
    t "frame" "from_unused_rejects_unaligned" (fun () ->
        match Frame.from_unused ~paddr:(page + 8) ~pages:1 ~untyped:true with
        | Ok _ -> failwith "unaligned claim accepted"
        | Error _ -> ());
    t "frame" "buggy_allocator_cannot_alias_frames" (fun () ->
        Boot.init ~frames:1024 ();
        Task.inject_fifo_scheduler ();
        Falloc.inject (Bootstrap_alloc.make_buggy_overlapping ());
        let (module A) = Falloc.injected () in
        A.add_free_memory ~paddr:(Boot.reserved_pages * page) ~pages:1;
        let f = Frame.alloc ~untyped:true () in
        expect_panic (fun () -> ignore (Frame.alloc ~untyped:true ()));
        Frame.drop f);
    t "frame" "double_drop_panics" (fun () ->
        let f = Frame.alloc ~untyped:true () in
        Frame.drop f;
        expect_panic (fun () -> Frame.drop f));
    t "frame" "per_frame_metadata_attaches" (fun () ->
        let module M = struct
          type Frame.meta += Dirty of bool
        end in
        let f = Frame.alloc ~pages:2 ~untyped:true () in
        Frame.set_meta f ~page:1 (M.Dirty true);
        (match Frame.get_meta f ~page:1 with
        | Some (M.Dirty true) -> ()
        | _ -> failwith "metadata lost");
        check (Frame.get_meta f ~page:0 = None) "page 0 has no metadata";
        Frame.drop f);
    t "frame" "dealloc_recycles_memory" (fun () ->
        let before = ref [] in
        for _ = 1 to 8 do
          before := Frame.alloc ~untyped:true () :: !before
        done;
        List.iter Frame.drop !before;
        (* All frames free again: a large allocation must succeed. *)
        let big = Frame.alloc ~pages:64 ~untyped:true () in
        Frame.drop big);
  ]

let untyped_cases =
  [
    t "untyped" "write_then_read_roundtrip" (fun () ->
        let f = Frame.alloc ~untyped:true () in
        let src = Bytes.of_string "framekernel" in
        Untyped.write_bytes f ~off:100 ~buf:src ~pos:0 ~len:(Bytes.length src);
        let dst = Bytes.create (Bytes.length src) in
        Untyped.read_bytes f ~off:100 ~buf:dst ~pos:0 ~len:(Bytes.length dst);
        check (Bytes.equal src dst) "roundtrip";
        Frame.drop f);
    t "untyped" "u8_u32_u64_accessors" (fun () ->
        let f = Frame.alloc ~untyped:true () in
        Untyped.write_u8 f ~off:0 0xAB;
        Untyped.write_u32 f ~off:4 0xDEADBEEF;
        Untyped.write_u64 f ~off:8 0x0123456789ABCDEFL;
        check (Untyped.read_u8 f ~off:0 = 0xAB) "u8";
        check (Untyped.read_u32 f ~off:4 = 0xDEADBEEF) "u32";
        check (Untyped.read_u64 f ~off:8 = 0x0123456789ABCDEFL) "u64";
        Frame.drop f);
    t "untyped" "fill_sets_every_byte" (fun () ->
        let f = Frame.alloc ~untyped:true () in
        Untyped.fill f ~off:0 ~len:page 'x';
        check (Untyped.read_u8 f ~off:(page - 1) = Char.code 'x') "last byte";
        Frame.drop f);
    t "untyped" "out_of_bounds_read_panics" (fun () ->
        let f = Frame.alloc ~untyped:true () in
        expect_panic (fun () -> ignore (Untyped.read_u32 f ~off:(page - 2)));
        Frame.drop f);
    t "untyped" "out_of_bounds_write_panics" (fun () ->
        let f = Frame.alloc ~untyped:true () in
        let b = Bytes.create 16 in
        expect_panic (fun () -> Untyped.write_bytes f ~off:(page - 8) ~buf:b ~pos:0 ~len:16);
        Frame.drop f);
    t "untyped" "negative_offset_panics" (fun () ->
        let f = Frame.alloc ~untyped:true () in
        expect_panic (fun () -> ignore (Untyped.read_u8 f ~off:(-1)));
        Frame.drop f);
    t "untyped" "typed_memory_is_unreachable" (fun () ->
        let f = Frame.alloc ~untyped:false () in
        expect_panic (fun () -> ignore (Untyped.read_u8 f ~off:0));
        Frame.drop f);
    t "untyped" "typed_memory_write_rejected" (fun () ->
        let f = Frame.alloc ~untyped:false () in
        expect_panic (fun () -> Untyped.write_u8 f ~off:0 1);
        Frame.drop f);
    t "untyped" "segment_crosses_page_boundary" (fun () ->
        let s = Frame.alloc ~pages:2 ~untyped:true () in
        let src = Bytes.make 64 'q' in
        Untyped.write_bytes s ~off:(page - 32) ~buf:src ~pos:0 ~len:64;
        let dst = Bytes.create 64 in
        Untyped.read_bytes s ~off:(page - 32) ~buf:dst ~pos:0 ~len:64;
        check (Bytes.equal src dst) "cross-page roundtrip";
        Frame.drop s);
    t "untyped" "copy_between_frames" (fun () ->
        let a = Frame.alloc ~untyped:true () and b = Frame.alloc ~untyped:true () in
        Untyped.write_u64 a ~off:16 42L;
        Untyped.copy ~src:a ~src_off:0 ~dst:b ~dst_off:0 ~len:page;
        check (Untyped.read_u64 b ~off:16 = 42L) "copied";
        Frame.drop a;
        Frame.drop b);
    t "untyped" "dropped_handle_is_dead" (fun () ->
        let f = Frame.alloc ~untyped:true () in
        Frame.drop f;
        expect_panic (fun () -> ignore (Untyped.read_u8 f ~off:0)));
  ]

let vmspace_cases =
  [
    t "vmspace" "map_and_copy_roundtrip" (fun () ->
        let vm = Vmspace.create () in
        Vmspace.map vm ~vaddr:0x1000 (Frame.alloc ~untyped:true ()) Vmspace.rw;
        let src = Bytes.of_string "hello user" in
        (match Vmspace.copy_in vm ~vaddr:0x1000 ~buf:src ~pos:0 ~len:(Bytes.length src) with
        | Ok () -> ()
        | Error _ -> failwith "copy_in faulted");
        let dst = Bytes.create (Bytes.length src) in
        (match Vmspace.copy_out vm ~vaddr:0x1000 ~buf:dst ~pos:0 ~len:(Bytes.length dst) with
        | Ok () -> ()
        | Error _ -> failwith "copy_out faulted");
        check (Bytes.equal src dst) "roundtrip";
        Vmspace.destroy vm);
    t "vmspace" "typed_frame_mapping_panics" (fun () ->
        let vm = Vmspace.create () in
        let f = Frame.alloc ~untyped:false () in
        expect_panic (fun () -> Vmspace.map vm ~vaddr:0x1000 f Vmspace.rw);
        Frame.drop f;
        Vmspace.destroy vm);
    t "vmspace" "unmapped_access_faults" (fun () ->
        let vm = Vmspace.create () in
        (match Vmspace.user_access vm ~vaddr:0x5000 ~len:4 ~write:false with
        | Error { Vmspace.vaddr = 0x5000; write = false } -> ()
        | Error _ -> failwith "wrong fault address"
        | Ok () -> failwith "expected a fault");
        Vmspace.destroy vm);
    t "vmspace" "readonly_write_faults" (fun () ->
        let vm = Vmspace.create () in
        Vmspace.map vm ~vaddr:0x1000 (Frame.alloc ~untyped:true ()) Vmspace.ro;
        (match Vmspace.user_access vm ~vaddr:0x1000 ~len:4 ~write:true with
        | Error { Vmspace.write = true; _ } -> ()
        | _ -> failwith "expected a write fault");
        Vmspace.destroy vm);
    t "vmspace" "overlap_mapping_panics" (fun () ->
        let vm = Vmspace.create () in
        Vmspace.map vm ~vaddr:0x1000 (Frame.alloc ~untyped:true ()) Vmspace.rw;
        let f = Frame.alloc ~untyped:true () in
        expect_panic (fun () -> Vmspace.map vm ~vaddr:0x1000 f Vmspace.rw);
        Frame.drop f;
        Vmspace.destroy vm);
    t "vmspace" "unmap_releases_frames" (fun () ->
        let vm = Vmspace.create () in
        let f = Frame.alloc ~untyped:true () in
        let pa = Frame.paddr f in
        Vmspace.map vm ~vaddr:0x1000 f Vmspace.rw;
        Vmspace.unmap vm ~vaddr:0x1000 ~pages:1;
        check (Frame.state_of ~paddr:pa = Frame.Unused) "frame freed";
        Vmspace.destroy vm);
    t "vmspace" "multi_page_segment_maps_contiguously" (fun () ->
        let vm = Vmspace.create () in
        Vmspace.map vm ~vaddr:0x10000 (Frame.alloc ~pages:3 ~untyped:true ()) Vmspace.rw;
        check (Vmspace.is_mapped vm ~vaddr:0x10000) "page 0";
        check (Vmspace.is_mapped vm ~vaddr:0x12000) "page 2";
        check (not (Vmspace.is_mapped vm ~vaddr:0x13000)) "page 3 unmapped";
        Vmspace.destroy vm);
    t "vmspace" "fork_clone_shares_and_cows" (fun () ->
        let vm = Vmspace.create () in
        Vmspace.map vm ~vaddr:0x1000 (Frame.alloc ~untyped:true ()) Vmspace.rw;
        let data = Bytes.of_string "parent" in
        ignore (Vmspace.copy_in vm ~vaddr:0x1000 ~buf:data ~pos:0 ~len:6);
        let child = Vmspace.fork_clone vm in
        (* Writing in the child must fault (COW), then split. *)
        (match Vmspace.user_access child ~vaddr:0x1000 ~len:1 ~write:true with
        | Error _ -> ()
        | Ok () -> failwith "COW page writable before split");
        check (Vmspace.resolve_cow child ~vaddr:0x1000) "split works";
        let b = Bytes.of_string "child!" in
        (match Vmspace.copy_in child ~vaddr:0x1000 ~buf:b ~pos:0 ~len:6 with
        | Ok () -> ()
        | Error _ -> failwith "post-split write faulted");
        (* Parent still sees its data once its own COW is resolved. *)
        check (Vmspace.resolve_cow vm ~vaddr:0x1000) "parent split";
        let out = Bytes.create 6 in
        ignore (Vmspace.copy_out vm ~vaddr:0x1000 ~buf:out ~pos:0 ~len:6);
        check (Bytes.equal out data) "parent data preserved";
        Vmspace.destroy child;
        Vmspace.destroy vm);
    t "vmspace" "resolve_cow_on_plain_page_is_false" (fun () ->
        let vm = Vmspace.create () in
        Vmspace.map vm ~vaddr:0x1000 (Frame.alloc ~untyped:true ()) Vmspace.rw;
        check (not (Vmspace.resolve_cow vm ~vaddr:0x1000)) "no COW to resolve";
        Vmspace.destroy vm);
    t "vmspace" "destroy_frees_everything" (fun () ->
        let vm = Vmspace.create () in
        let f = Frame.alloc ~untyped:true () in
        let pa = Frame.paddr f in
        Vmspace.map vm ~vaddr:0x1000 f Vmspace.rw;
        Vmspace.destroy vm;
        check (Frame.state_of ~paddr:pa = Frame.Unused) "mapped frame freed");
    t "vmspace" "protect_changes_permissions" (fun () ->
        let vm = Vmspace.create () in
        Vmspace.map vm ~vaddr:0x1000 (Frame.alloc ~untyped:true ()) Vmspace.rw;
        Vmspace.protect vm ~vaddr:0x1000 ~pages:1 Vmspace.ro;
        (match Vmspace.user_access vm ~vaddr:0x1000 ~len:1 ~write:true with
        | Error _ -> ()
        | Ok () -> failwith "write allowed after mprotect");
        Vmspace.destroy vm);
  ]

let dma_cases =
  [
    t "dma" "stream_map_grants_device_access" (fun () ->
        let f = Frame.alloc ~untyped:true () in
        let s = Dma.Stream.map f ~dev:7 in
        (match Machine.Iommu.access ~dev:7 ~paddr:(Dma.Stream.paddr s) ~len:64 with
        | Ok () -> ()
        | Error e -> failwith e);
        Dma.Stream.unmap s);
    t "dma" "unmapped_region_faults" (fun () ->
        check (Machine.Iommu.enabled ()) "iommu on under asterinas profile";
        let f = Frame.alloc ~untyped:true () in
        (match Machine.Iommu.access ~dev:7 ~paddr:(Frame.paddr f) ~len:8 with
        | Error _ -> ()
        | Ok () -> failwith "device reached unmapped memory");
        Frame.drop f);
    t "dma" "typed_memory_cannot_be_mapped" (fun () ->
        let f = Frame.alloc ~untyped:false () in
        expect_panic (fun () -> ignore (Dma.Stream.map f ~dev:7));
        Frame.drop f);
    t "dma" "unmap_revokes_access" (fun () ->
        let f = Frame.alloc ~untyped:true () in
        let s = Dma.Stream.map f ~dev:7 in
        let pa = Dma.Stream.paddr s in
        Dma.Stream.unmap s;
        (match Machine.Iommu.access ~dev:7 ~paddr:pa ~len:8 with
        | Error _ -> ()
        | Ok () -> failwith "access after unmap"));
    t "dma" "domains_are_per_device" (fun () ->
        let f = Frame.alloc ~untyped:true () in
        let s = Dma.Stream.map f ~dev:7 in
        (match Machine.Iommu.access ~dev:8 ~paddr:(Dma.Stream.paddr s) ~len:8 with
        | Error _ -> ()
        | Ok () -> failwith "wrong device granted");
        Dma.Stream.unmap s);
    t "dma" "coherent_alloc_roundtrip" (fun () ->
        let c = Dma.Coherent.alloc ~pages:2 ~dev:3 in
        Untyped.write_u32 (Dma.Coherent.frame c) ~off:0 99;
        check (Untyped.read_u32 (Dma.Coherent.frame c) ~off:0 = 99) "coherent data";
        Dma.Coherent.free c);
    t "dma" "pool_recycles_without_remap" (fun () ->
        let pool = Dma.Pool.create ~dev:3 ~buf_pages:1 ~count:1 in
        let misses_before = Machine.Iommu.misses () in
        (match Dma.Pool.alloc pool with
        | None -> failwith "pool empty"
        | Some s ->
          ignore (Machine.Iommu.access ~dev:3 ~paddr:(Dma.Stream.paddr s) ~len:8);
          Dma.Pool.release pool s;
          (* Second use hits the warm IOTLB entry. *)
          (match Dma.Pool.alloc pool with
          | Some s2 ->
            ignore (Machine.Iommu.access ~dev:3 ~paddr:(Dma.Stream.paddr s2) ~len:8);
            Dma.Pool.release pool s2
          | None -> failwith "pool empty on second alloc"));
        check (Machine.Iommu.misses () <= misses_before + 1) "at most one cold miss";
        Dma.Pool.destroy pool);
    t "dma" "pool_exhaustion_returns_none" (fun () ->
        let pool = Dma.Pool.create ~dev:3 ~buf_pages:1 ~count:1 in
        (match Dma.Pool.alloc pool with
        | Some s ->
          check (Dma.Pool.alloc pool = None) "second alloc must fail";
          Dma.Pool.release pool s
        | None -> failwith "pool empty");
        Dma.Pool.destroy pool);
    t "dma" "iommu_disabled_passes_everything" (fun () ->
        Sim.Profile.set Sim.Profile.asterinas_no_iommu;
        fresh_boot ();
        (match Machine.Iommu.access ~dev:9 ~paddr:0x4000 ~len:8 with
        | Ok () -> ()
        | Error _ -> failwith "disabled IOMMU must not fault");
        Sim.Profile.set Sim.Profile.asterinas);
  ]

let io_cases =
  [
    t "io" "insensitive_window_acquirable" (fun () ->
        ignore (Machine.Board.attach_default_devices ());
        match Io_mem.acquire ~base:Machine.Board.pci_hole_base ~size:0x100 with
        | Ok w ->
          check (Io_mem.read_once w ~off:0 ~len:4 = 0x74726976L) "virtio magic";
          check (Io_mem.read_once w ~off:4 ~len:4 = 2L) "device id"
        | Error e -> failwith e);
    t "io" "sensitive_window_rejected" (fun () ->
        match Io_mem.acquire ~base:Machine.Board.lapic_base ~size:16 with
        | Ok _ -> failwith "acquired the local APIC (Inv. 7)"
        | Error _ -> ());
    t "io" "iommu_register_window_rejected" (fun () ->
        match Io_mem.acquire ~base:Machine.Board.iommu_reg_base ~size:16 with
        | Ok _ -> failwith "acquired the IOMMU registers (Inv. 7)"
        | Error _ -> ());
    t "io" "unclaimed_address_rejected" (fun () ->
        match Io_mem.acquire ~base:0x1234_5000 ~size:16 with
        | Ok _ -> failwith "acquired bare bus space"
        | Error _ -> ());
    t "io" "window_overrun_panics" (fun () ->
        ignore (Machine.Board.attach_default_devices ());
        match Io_mem.acquire ~base:Machine.Board.pci_hole_base ~size:0x100 with
        | Ok w -> expect_panic (fun () -> ignore (Io_mem.read_once w ~off:0xFE ~len:4))
        | Error e -> failwith e);
    t "io" "pio_serial_acquirable_pic_rejected" (fun () ->
        (match Io_port.acquire ~first:0x3F8 ~count:8 with
        | Ok p -> Io_port.write p ~port:0x3F8 65
        | Error e -> failwith e);
        match Io_port.acquire ~first:0x20 ~count:2 with
        | Ok _ -> failwith "acquired the PIC ports (Inv. 7)"
        | Error _ -> ());
    t "io" "spoofed_interrupt_blocked" (fun () ->
        let line = Irq.alloc () in
        let fired = ref false in
        Irq.set_handler line (fun () -> fired := true);
        Irq.bind_device line ~dev:5;
        (* Device 6 was never granted this vector. *)
        Machine.Irq_chip.raise_irq (Machine.Irq_chip.Device 6) ~vector:(Irq.vector line);
        ignore (Sim.Events.run_next ());
        check (not !fired) "spoofed interrupt delivered (Inv. 3)";
        check (Machine.Irq_chip.blocked_spoofs () = 1) "spoof counted";
        Machine.Irq_chip.raise_irq (Machine.Irq_chip.Device 5) ~vector:(Irq.vector line);
        ignore (Sim.Events.run_next ());
        check !fired "granted interrupt must deliver");
    t "io" "irq_handler_runs_in_atomic_mode" (fun () ->
        let line = Irq.alloc () in
        let depth = ref 0 in
        Irq.set_handler line (fun () -> depth := Atomic_mode.depth ());
        Machine.Irq_chip.raise_irq Machine.Irq_chip.Core ~vector:(Irq.vector line);
        ignore (Sim.Events.run_next ());
        check (!depth = 1) "atomic mode inside handler");
  ]

let kstack_cases =
  [
    t "kstack" "create_and_destroy" (fun () ->
        let k = Kstack.create () in
        check (Kstack.depth k = 0) "fresh stack empty";
        Kstack.destroy k);
    t "kstack" "frames_accumulate_and_release" (fun () ->
        let k = Kstack.create () in
        Kstack.with_frame k ~bytes:512 (fun () ->
            check (Kstack.depth k = 512) "depth inside";
            Kstack.with_frame k ~bytes:256 (fun () ->
                check (Kstack.depth k = 768) "nested depth"));
        check (Kstack.depth k = 0) "released";
        Kstack.destroy k);
    t "kstack" "guard_page_catches_overflow" (fun () ->
        let k = Kstack.create () in
        let rec recurse n =
          if n > 0 then Kstack.with_frame k ~bytes:4000 (fun () -> recurse (n - 1))
        in
        expect_panic (fun () -> recurse 64);
        Kstack.destroy k);
    t "kstack" "oversized_frame_rejected" (fun () ->
        (* The compile-time stack-usage analysis bound from the paper. *)
        let k = Kstack.create () in
        expect_panic (fun () -> Kstack.with_frame k ~bytes:(page + 1) ignore);
        Kstack.destroy k);
    t "kstack" "stack_memory_is_typed" (fun () ->
        let before = Sim.Stats.get "kernel.panic" in
        ignore before;
        let k = Kstack.create () in
        (* The backing segment is sensitive: no untyped view can exist.
           We verify indirectly: allocating 5 typed pages shows up in
           metadata as Typed at the stack's address... which we cannot
           even name through the API — the strongest statement is that
           creation consumed typed frames, visible via live handles. *)
        check (Frame.live_handles () >= 1) "stack owns a frame handle";
        Kstack.destroy k);
  ]

let slab_cases =
  [
    t "slab" "alloc_until_exhaustion" (fun () ->
        let s = Slab.create ~slot_size:256 ~pages:1 in
        check (Slab.capacity s = 16) "capacity";
        let slots = List.init 16 (fun _ -> Option.get (Slab.alloc s)) in
        check (Slab.alloc s = None) "exhausted";
        List.iter (Slab.dealloc s) slots;
        check (Slab.free_slots s = 16) "all recycled";
        Slab.destroy s);
    t "slab" "into_box_checks_size" (fun () ->
        let s = Slab.create ~slot_size:32 ~pages:1 in
        let slot = Option.get (Slab.alloc s) in
        expect_panic (fun () -> ignore (Slab.into_box slot ~size:64 ~align:8 "too big"));
        Slab.dealloc s slot;
        Slab.destroy s);
    t "slab" "into_box_checks_alignment" (fun () ->
        let s = Slab.create ~slot_size:24 ~pages:1 in
        (* Slot 1 starts at offset 24: aligned to 8 only. *)
        let s0 = Option.get (Slab.alloc s) in
        let s1 = Option.get (Slab.alloc s) in
        expect_panic (fun () -> ignore (Slab.into_box s1 ~size:16 ~align:16 "misaligned"));
        Slab.dealloc s s0;
        Slab.dealloc s s1;
        Slab.destroy s);
    t "slab" "destroy_with_active_slots_panics" (fun () ->
        let s = Slab.create ~slot_size:64 ~pages:1 in
        let slot = Option.get (Slab.alloc s) in
        let _box = Slab.into_box slot ~size:16 ~align:8 () in
        expect_panic (fun () -> Slab.destroy s);
        Slab.dealloc s slot;
        Slab.destroy s);
    t "slab" "foreign_slot_rejected" (fun () ->
        let a = Slab.create ~slot_size:64 ~pages:1 in
        let b = Slab.create ~slot_size:64 ~pages:1 in
        let slot = Option.get (Slab.alloc a) in
        expect_panic (fun () -> Slab.dealloc b slot);
        Slab.dealloc a slot;
        Slab.destroy a;
        Slab.destroy b);
    t "slab" "double_free_rejected" (fun () ->
        let s = Slab.create ~slot_size:64 ~pages:1 in
        let slot = Option.get (Slab.alloc s) in
        Slab.dealloc s slot;
        expect_panic (fun () -> Slab.dealloc s slot);
        Slab.destroy s);
    t "slab" "boxed_value_survives" (fun () ->
        let s = Slab.create ~slot_size:64 ~pages:1 in
        let slot = Option.get (Slab.alloc s) in
        let b = Slab.into_box slot ~size:48 ~align:8 (3, "payload") in
        check (Slab.box_value b = (3, "payload")) "payload";
        Slab.dealloc s (Slab.box_slot b);
        Slab.destroy s);
    t "slab" "destroy_frees_backing_pages" (fun () ->
        let s = Slab.create ~slot_size:128 ~pages:2 in
        let live = Frame.live_handles () in
        Slab.destroy s;
        check (Frame.live_handles () = live - 1) "backing segment dropped");
  ]

let falloc_cases =
  [
    t "falloc" "double_injection_panics" (fun () ->
        expect_panic (fun () -> Falloc.inject (Bootstrap_alloc.make ())));
    t "falloc" "allocation_without_injection_panics" (fun () ->
        Boot.init ~frames:512 ();
        expect_panic (fun () -> ignore (Frame.alloc ~untyped:true ())));
    t "falloc" "contiguous_allocation_honoured" (fun () ->
        let s = Frame.alloc ~pages:8 ~untyped:true () in
        check (Frame.paddr s mod page = 0) "aligned";
        Untyped.write_u8 s ~off:((8 * page) - 1) 7;
        Frame.drop s);
    t "falloc" "oom_panics" (fun () ->
        Boot.init ~frames:300 ();
        Task.inject_fifo_scheduler ();
        Falloc.inject (Bootstrap_alloc.make ());
        Boot.feed_free_memory ();
        (* 300 - 256 reserved = 44 usable frames. *)
        expect_panic (fun () -> ignore (Frame.alloc ~pages:64 ~untyped:true ())));
    t "falloc" "free_list_coalesces" (fun () ->
        let a = Frame.alloc ~pages:4 ~untyped:true () in
        let b = Frame.alloc ~pages:4 ~untyped:true () in
        Frame.drop a;
        Frame.drop b;
        (* Both spans free and adjacent: an 8-page allocation succeeds. *)
        let c = Frame.alloc ~pages:8 ~untyped:true () in
        Frame.drop c);
  ]


(* --- Extended corpus: edge cases and protocol sequences, bringing the
   suite closer to the paper's 134-test corpus. --- *)

let frame_cases_2 =
  [
    t "frame" "clone_chain_counts_each_handle" (fun () ->
        let f = Frame.alloc ~untyped:true () in
        let clones = List.init 5 (fun _ -> Frame.clone f) in
        check (Frame.refcount ~paddr:(Frame.paddr f) = 6) "six handles";
        List.iter Frame.drop clones;
        check (Frame.refcount ~paddr:(Frame.paddr f) = 1) "back to one";
        Frame.drop f);
    t "frame" "segment_clone_covers_every_page" (fun () ->
        let s = Frame.alloc ~pages:3 ~untyped:true () in
        let c = Frame.clone s in
        for i = 0 to 2 do
          check (Frame.refcount ~paddr:(Frame.paddr s + (i * page)) = 2) "page refcount"
        done;
        Frame.drop c;
        Frame.drop s);
    t "frame" "memory_returns_only_after_last_drop" (fun () ->
        let f = Frame.alloc ~untyped:true () in
        let pa = Frame.paddr f in
        let c = Frame.clone f in
        Frame.drop f;
        check (Frame.state_of ~paddr:pa = Frame.Untyped) "still live";
        Frame.drop c;
        check (Frame.state_of ~paddr:pa = Frame.Unused) "released");
    t "frame" "typed_and_untyped_never_share_a_frame" (fun () ->
        let a = Frame.alloc ~untyped:true () in
        let b = Frame.alloc ~untyped:false () in
        check (Frame.paddr a <> Frame.paddr b) "distinct frames";
        Frame.drop a;
        Frame.drop b);
    t "frame" "from_unused_zero_pages_rejected" (fun () ->
        match Frame.from_unused ~paddr:(Boot.reserved_pages * page) ~pages:0 ~untyped:true with
        | Ok _ -> failwith "empty span accepted"
        | Error _ -> ());
    t "frame" "from_unused_beyond_memory_rejected" (fun () ->
        let beyond = Frame.total_frames () * page in
        match Frame.from_unused ~paddr:beyond ~pages:1 ~untyped:true with
        | Ok _ -> failwith "out-of-range span accepted"
        | Error _ -> ());
    t "frame" "metadata_cleared_on_release" (fun () ->
        let module M = struct
          type Frame.meta += Tag of int
        end in
        let f = Frame.alloc ~untyped:true () in
        let pa = Frame.paddr f in
        Frame.set_meta f ~page:0 (M.Tag 9);
        Frame.drop f;
        let g = Frame.alloc ~untyped:true () in
        (* The allocator's LIFO behaviour will typically hand the same
           frame back; its metadata must not leak through. *)
        if Frame.paddr g = pa then check (Frame.get_meta g ~page:0 = None) "meta wiped";
        Frame.drop g);
    t "frame" "meta_page_index_checked" (fun () ->
        let module M = struct
          type Frame.meta += Tag
        end in
        let f = Frame.alloc ~pages:2 ~untyped:true () in
        expect_panic (fun () -> Frame.set_meta f ~page:2 M.Tag);
        Frame.drop f);
    t "frame" "clone_of_dropped_handle_panics" (fun () ->
        let f = Frame.alloc ~untyped:true () in
        Frame.drop f;
        expect_panic (fun () -> ignore (Frame.clone f)));
    t "frame" "interleaved_alloc_drop_stays_balanced" (fun () ->
        let live0 = Frame.live_handles () in
        let a = Frame.alloc ~untyped:true () in
        let b = Frame.alloc ~pages:2 ~untyped:false () in
        Frame.drop a;
        let c = Frame.alloc ~untyped:true () in
        Frame.drop b;
        Frame.drop c;
        check (Frame.live_handles () = live0) "handles balanced");
  ]

let untyped_cases_2 =
  [
    t "untyped" "read_at_exact_end_boundary" (fun () ->
        let f = Frame.alloc ~untyped:true () in
        Untyped.write_u8 f ~off:(page - 1) 0x5A;
        check (Untyped.read_u8 f ~off:(page - 1) = 0x5A) "last byte";
        Frame.drop f);
    t "untyped" "u64_at_last_valid_offset" (fun () ->
        let f = Frame.alloc ~untyped:true () in
        Untyped.write_u64 f ~off:(page - 8) 77L;
        check (Untyped.read_u64 f ~off:(page - 8) = 77L) "u64 at end";
        expect_panic (fun () -> ignore (Untyped.read_u64 f ~off:(page - 7)));
        Frame.drop f);
    t "untyped" "zero_length_write_is_noop" (fun () ->
        let f = Frame.alloc ~untyped:true () in
        Untyped.write_bytes f ~off:0 ~buf:(Bytes.create 0) ~pos:0 ~len:0;
        check (Untyped.read_u8 f ~off:0 = 0) "untouched";
        Frame.drop f);
    t "untyped" "copy_within_same_frame" (fun () ->
        let f = Frame.alloc ~untyped:true () in
        Untyped.write_u64 f ~off:0 123L;
        Untyped.copy ~src:f ~src_off:0 ~dst:f ~dst_off:512 ~len:8;
        check (Untyped.read_u64 f ~off:512 = 123L) "copied within frame";
        Frame.drop f);
    t "untyped" "copy_rejects_out_of_range_destination" (fun () ->
        let a = Frame.alloc ~untyped:true () and b = Frame.alloc ~untyped:true () in
        expect_panic (fun () -> Untyped.copy ~src:a ~src_off:0 ~dst:b ~dst_off:(page - 4) ~len:8);
        Frame.drop a;
        Frame.drop b);
    t "untyped" "fill_partial_range_only" (fun () ->
        let f = Frame.alloc ~untyped:true () in
        Untyped.fill f ~off:100 ~len:10 'z';
        check (Untyped.read_u8 f ~off:99 = 0) "before untouched";
        check (Untyped.read_u8 f ~off:100 = Char.code 'z') "first filled";
        check (Untyped.read_u8 f ~off:109 = Char.code 'z') "last filled";
        check (Untyped.read_u8 f ~off:110 = 0) "after untouched";
        Frame.drop f);
    t "untyped" "segment_last_page_accessible" (fun () ->
        let s = Frame.alloc ~pages:4 ~untyped:true () in
        Untyped.write_u32 s ~off:((4 * page) - 4) 42;
        check (Untyped.read_u32 s ~off:((4 * page) - 4) = 42) "segment end";
        expect_panic (fun () -> ignore (Untyped.read_u32 s ~off:((4 * page) - 3)));
        Frame.drop s);
    t "untyped" "data_survives_clone_drop" (fun () ->
        let f = Frame.alloc ~untyped:true () in
        let c = Frame.clone f in
        Untyped.write_u32 f ~off:8 7;
        Frame.drop f;
        check (Untyped.read_u32 c ~off:8 = 7) "data visible via clone";
        Frame.drop c);
  ]

let vmspace_cases_2 =
  [
    t "vmspace" "copy_spanning_three_pages" (fun () ->
        let vm = Vmspace.create () in
        Vmspace.map vm ~vaddr:0x4000 (Frame.alloc ~pages:3 ~untyped:true ()) Vmspace.rw;
        let len = (2 * page) + 100 in
        let src = Bytes.init len (fun i -> Char.chr (i mod 251)) in
        (match Vmspace.copy_in vm ~vaddr:0x4032 ~buf:src ~pos:0 ~len with
        | Ok () -> ()
        | Error _ -> failwith "copy_in failed");
        let dst = Bytes.create len in
        ignore (Vmspace.copy_out vm ~vaddr:0x4032 ~buf:dst ~pos:0 ~len);
        check (Bytes.equal src dst) "cross-page roundtrip";
        Vmspace.destroy vm);
    t "vmspace" "fault_reports_exact_page" (fun () ->
        let vm = Vmspace.create () in
        Vmspace.map vm ~vaddr:0x4000 (Frame.alloc ~untyped:true ()) Vmspace.rw;
        (match Vmspace.copy_in vm ~vaddr:0x4F00 ~buf:(Bytes.create 512) ~pos:0 ~len:512 with
        | Error { Vmspace.vaddr; _ } -> check (vaddr = 0x5000) "fault at next page"
        | Ok () -> failwith "expected fault");
        Vmspace.destroy vm);
    t "vmspace" "partial_unmap_keeps_neighbours" (fun () ->
        let vm = Vmspace.create () in
        Vmspace.map vm ~vaddr:0x10000 (Frame.alloc ~pages:3 ~untyped:true ()) Vmspace.rw;
        Vmspace.unmap vm ~vaddr:0x11000 ~pages:1;
        check (Vmspace.is_mapped vm ~vaddr:0x10000) "first kept";
        check (not (Vmspace.is_mapped vm ~vaddr:0x11000)) "middle gone";
        check (Vmspace.is_mapped vm ~vaddr:0x12000) "last kept";
        Vmspace.destroy vm);
    t "vmspace" "unmap_of_unmapped_range_is_noop" (fun () ->
        let vm = Vmspace.create () in
        Vmspace.unmap vm ~vaddr:0x40000 ~pages:8;
        Vmspace.destroy vm);
    t "vmspace" "double_destroy_safe_use_after_panics" (fun () ->
        let vm = Vmspace.create () in
        Vmspace.destroy vm;
        Vmspace.destroy vm;
        expect_panic (fun () -> Vmspace.map vm ~vaddr:0x1000 (Frame.alloc ~untyped:true ()) Vmspace.rw));
    t "vmspace" "cow_chain_grandchild" (fun () ->
        let vm = Vmspace.create () in
        Vmspace.map vm ~vaddr:0x1000 (Frame.alloc ~untyped:true ()) Vmspace.rw;
        ignore (Vmspace.copy_in vm ~vaddr:0x1000 ~buf:(Bytes.of_string "gen0") ~pos:0 ~len:4);
        let child = Vmspace.fork_clone vm in
        let grandchild = Vmspace.fork_clone child in
        check (Vmspace.resolve_cow grandchild ~vaddr:0x1000) "grandchild splits";
        ignore (Vmspace.copy_in grandchild ~vaddr:0x1000 ~buf:(Bytes.of_string "gen2") ~pos:0 ~len:4);
        let out = Bytes.create 4 in
        ignore (Vmspace.resolve_cow vm ~vaddr:0x1000);
        ignore (Vmspace.copy_out vm ~vaddr:0x1000 ~buf:out ~pos:0 ~len:4);
        check (Bytes.to_string out = "gen0") "root unchanged";
        Vmspace.destroy grandchild;
        Vmspace.destroy child;
        Vmspace.destroy vm);
    t "vmspace" "readonly_fork_shares_without_cow" (fun () ->
        let vm = Vmspace.create () in
        Vmspace.map vm ~vaddr:0x1000 (Frame.alloc ~untyped:true ()) Vmspace.ro;
        let child = Vmspace.fork_clone vm in
        (match Vmspace.user_access child ~vaddr:0x1000 ~len:4 ~write:false with
        | Ok () -> ()
        | Error _ -> failwith "read-only page must stay readable");
        check (not (Vmspace.resolve_cow child ~vaddr:0x1000)) "no COW on read-only page";
        Vmspace.destroy child;
        Vmspace.destroy vm);
    t "vmspace" "mapped_pages_accounting" (fun () ->
        let vm = Vmspace.create () in
        Vmspace.map vm ~vaddr:0x1000 (Frame.alloc ~pages:2 ~untyped:true ()) Vmspace.rw;
        Vmspace.map vm ~vaddr:0x8000 (Frame.alloc ~untyped:true ()) Vmspace.rw;
        check (Vmspace.mapped_pages vm = 3) "three pages";
        Vmspace.unmap vm ~vaddr:0x1000 ~pages:2;
        check (Vmspace.mapped_pages vm = 1) "one page left";
        Vmspace.destroy vm);
    t "vmspace" "exec_permission_tracked" (fun () ->
        let vm = Vmspace.create () in
        Vmspace.map vm ~vaddr:0x1000 (Frame.alloc ~untyped:true ()) Vmspace.rx;
        (match Vmspace.user_access vm ~vaddr:0x1000 ~len:4 ~write:true with
        | Error _ -> ()
        | Ok () -> failwith "rx page writable");
        Vmspace.destroy vm);
  ]

let dma_cases_2 =
  [
    t "dma" "coherent_multi_page_grant" (fun () ->
        let c = Dma.Coherent.alloc ~pages:4 ~dev:11 in
        (match Machine.Iommu.access ~dev:11 ~paddr:(Dma.Coherent.paddr c + (3 * page)) ~len:8 with
        | Ok () -> ()
        | Error e -> failwith e);
        Dma.Coherent.free c);
    t "dma" "stream_use_after_unmap_panics" (fun () ->
        let s = Dma.Stream.map (Frame.alloc ~untyped:true ()) ~dev:3 in
        Dma.Stream.unmap s;
        expect_panic (fun () -> ignore (Dma.Stream.paddr s)));
    t "dma" "sync_requires_live_stream" (fun () ->
        let s = Dma.Stream.map (Frame.alloc ~untyped:true ()) ~dev:3 in
        Dma.Stream.sync_to_device s ~off:0 ~len:64;
        Dma.Stream.unmap s;
        expect_panic (fun () -> Dma.Stream.sync_from_device s ~off:0 ~len:64));
    t "dma" "pool_buffers_counted" (fun () ->
        let pool = Dma.Pool.create ~dev:4 ~buf_pages:2 ~count:3 in
        check (Dma.Pool.buffers pool = 3) "pool size";
        Dma.Pool.destroy pool;
        expect_panic (fun () -> ignore (Dma.Pool.alloc pool)));
    t "dma" "pool_lifo_reuses_hot_buffer" (fun () ->
        let pool = Dma.Pool.create ~dev:4 ~buf_pages:1 ~count:3 in
        (match Dma.Pool.alloc pool with
        | None -> failwith "empty"
        | Some s1 ->
          let p1 = Dma.Stream.paddr s1 in
          Dma.Pool.release pool s1;
          (match Dma.Pool.alloc pool with
          | Some s2 ->
            check (Dma.Stream.paddr s2 = p1) "same buffer reused";
            Dma.Pool.release pool s2
          | None -> failwith "empty"));
        Dma.Pool.destroy pool);
    t "dma" "two_devices_isolated_domains" (fun () ->
        let a = Dma.Stream.map (Frame.alloc ~untyped:true ()) ~dev:21 in
        let b = Dma.Stream.map (Frame.alloc ~untyped:true ()) ~dev:22 in
        check (Machine.Iommu.access ~dev:21 ~paddr:(Dma.Stream.paddr a) ~len:4 = Ok ()) "a ok";
        (match Machine.Iommu.access ~dev:21 ~paddr:(Dma.Stream.paddr b) ~len:4 with
        | Error _ -> ()
        | Ok () -> failwith "cross-domain access");
        Dma.Stream.unmap a;
        Dma.Stream.unmap b);
  ]

let io_cases_2 =
  [
    t "io" "window_subrange_acquirable" (fun () ->
        ignore (Machine.Board.attach_default_devices ());
        match Io_mem.acquire ~base:(Machine.Board.pci_hole_base + 0x10) ~size:0x20 with
        | Ok w -> check (Io_mem.size w = 0x20) "subrange size"
        | Error e -> failwith e);
    t "io" "doorbell_checks_bounds" (fun () ->
        ignore (Machine.Board.attach_default_devices ());
        match Io_mem.acquire ~base:Machine.Board.pci_hole_base ~size:0x20 with
        | Ok w -> expect_panic (fun () -> Io_mem.doorbell w ~off:0x1C 0L)
        | Error e -> failwith e);
    t "io" "irq_post_hook_runs_outside_atomic" (fun () ->
        let line = Irq.alloc () in
        Irq.set_handler line (fun () -> ());
        let depth_in_hook = ref (-1) in
        Irq.set_post_hook (fun () -> depth_in_hook := Atomic_mode.depth ());
        Machine.Irq_chip.raise_irq Machine.Irq_chip.Core ~vector:(Irq.vector line);
        ignore (Sim.Events.run_next ());
        check (!depth_in_hook = 0) "post hook not atomic");
    t "io" "unbind_revokes_device_vector" (fun () ->
        let line = Irq.alloc () in
        let count = ref 0 in
        Irq.set_handler line (fun () -> incr count);
        Irq.bind_device line ~dev:5;
        Machine.Irq_chip.raise_irq (Machine.Irq_chip.Device 5) ~vector:(Irq.vector line);
        ignore (Sim.Events.run_next ());
        Irq.unbind_device line ~dev:5;
        Machine.Irq_chip.raise_irq (Machine.Irq_chip.Device 5) ~vector:(Irq.vector line);
        ignore (Sim.Events.run_next ());
        check (!count = 1) "second interrupt blocked after unbind");
    t "io" "claiming_vector_twice_panics" (fun () ->
        ignore (Irq.claim ~vector:99 ());
        expect_panic (fun () -> ignore (Irq.claim ~vector:99 ())));
    t "io" "write_once_reaches_the_device" (fun () ->
        ignore (Machine.Board.attach_default_devices ());
        match Io_mem.acquire ~base:(Machine.Board.pci_hole_base + 0x1000) ~size:0x100 with
        | Ok w ->
          (* Writing a register the model ignores must be harmless; the
             access itself goes through the full checked path. *)
          Io_mem.write_once w ~off:0x40 ~len:4 7L;
          check (Io_mem.read_once w ~off:0x04 ~len:4 = 1L) "device id intact"
        | Error e -> failwith e);
    t "io" "write_once_bounds_checked" (fun () ->
        ignore (Machine.Board.attach_default_devices ());
        match Io_mem.acquire ~base:Machine.Board.pci_hole_base ~size:0x40 with
        | Ok w -> expect_panic (fun () -> Io_mem.write_once w ~off:0x40 ~len:4 0L)
        | Error e -> failwith e);
  ]

let kstack_cases_2 =
  [
    t "kstack" "frame_released_on_exception" (fun () ->
        let k = Kstack.create () in
        (try Kstack.with_frame k ~bytes:1024 (fun () -> failwith "boom") with
        | Failure _ -> ());
        check (Kstack.depth k = 0) "depth restored after raise";
        Kstack.destroy k);
    t "kstack" "double_destroy_is_idempotent" (fun () ->
        let k = Kstack.create () in
        Kstack.destroy k;
        Kstack.destroy k);
    t "kstack" "exact_limit_is_allowed" (fun () ->
        let k = Kstack.create () in
        let limit = Kstack.stack_pages * page in
        let quarter = limit / 4 in
        Kstack.with_frame k ~bytes:quarter (fun () ->
            Kstack.with_frame k ~bytes:quarter (fun () ->
                Kstack.with_frame k ~bytes:quarter (fun () ->
                    Kstack.with_frame k ~bytes:quarter (fun () ->
                        check (Kstack.depth k = limit) "at the limit"))));
        Kstack.destroy k);
  ]

let slab_cases_2 =
  [
    t "slab" "slots_are_page_dense" (fun () ->
        let s = Slab.create ~slot_size:512 ~pages:2 in
        check (Slab.capacity s = 16) "two pages of 512B slots";
        Slab.destroy s);
    t "slab" "freed_slot_address_is_reused" (fun () ->
        let s = Slab.create ~slot_size:64 ~pages:1 in
        let a = Option.get (Slab.alloc s) in
        let addr = Slab.Heap_slot.addr a in
        Slab.dealloc s a;
        (* Drain until the same address comes back: it must, the slab is
           a closed set of slots. *)
        let found = ref false in
        let taken = ref [] in
        for _ = 1 to Slab.capacity s do
          match Slab.alloc s with
          | Some slot ->
            if Slab.Heap_slot.addr slot = addr then found := true;
            taken := slot :: !taken
          | None -> ()
        done;
        check !found "address recycled";
        List.iter (Slab.dealloc s) !taken;
        Slab.destroy s);
    t "slab" "into_box_exact_fit" (fun () ->
        let s = Slab.create ~slot_size:64 ~pages:1 in
        let slot = Option.get (Slab.alloc s) in
        let b = Slab.into_box slot ~size:64 ~align:8 "exact" in
        check (Slab.box_value b = "exact") "value";
        Slab.dealloc s (Slab.box_slot b);
        Slab.destroy s);
    t "slab" "alignment_of_first_slot_is_page" (fun () ->
        let s = Slab.create ~slot_size:256 ~pages:1 in
        let slot = Option.get (Slab.alloc s) in
        check (Slab.Heap_slot.addr slot mod page = 0) "first slot page-aligned";
        ignore (Slab.into_box slot ~size:256 ~align:256 ());
        Slab.dealloc s slot;
        Slab.destroy s);
    t "slab" "kmalloc_without_heap_panics" (fun () ->
        expect_panic (fun () -> ignore (Slab.kmalloc ~size:16 ())));
    t "slab" "zero_size_slab_rejected" (fun () ->
        expect_panic (fun () -> ignore (Slab.create ~slot_size:0 ~pages:1)));
    t "slab" "oversized_slot_rejected" (fun () ->
        expect_panic (fun () -> ignore (Slab.create ~slot_size:(2 * page) ~pages:0)));
  ]

let falloc_cases_2 =
  [
    t "falloc" "interleaved_sizes_do_not_overlap" (fun () ->
        let spans =
          List.map (fun p -> Frame.alloc ~pages:p ~untyped:true ()) [ 1; 3; 2; 5; 1; 4 ]
        in
        let ranges = List.map (fun f -> (Frame.paddr f, Frame.size f)) spans in
        List.iteri
          (fun i (base_i, size_i) ->
            List.iteri
              (fun j (base_j, size_j) ->
                if i < j then
                  check
                    (base_i + size_i <= base_j || base_j + size_j <= base_i)
                    "spans disjoint")
              ranges)
          ranges;
        List.iter Frame.drop spans);
    t "falloc" "reset_allows_reinjection" (fun () ->
        Falloc.reset ();
        check (not (Falloc.is_injected ())) "cleared";
        Falloc.inject (Bootstrap_alloc.make ());
        check (Falloc.is_injected ()) "re-injected");
    t "falloc" "reserved_pages_never_allocated" (fun () ->
        for _ = 1 to 50 do
          let f = Frame.alloc ~untyped:true () in
          check (Frame.paddr f >= Boot.reserved_pages * page) "above reserved";
          Frame.drop f
        done);
  ]


(* --- Cross-submodule protocol sequences: the mm interactions KernMiri
   cares most about (frame state transitions driven by vmspace/dma/io
   users). --- *)

let protocol_cases =
  [
    t "frame" "user_mapping_keeps_frame_alive" (fun () ->
        let vm = Vmspace.create () in
        let f = Frame.alloc ~untyped:true () in
        let pa = Frame.paddr f in
        Vmspace.map vm ~vaddr:0x1000 f Vmspace.rw;
        (* The caller's handle was consumed; the mapping keeps state. *)
        check (Frame.state_of ~paddr:pa = Frame.Untyped) "alive under mapping";
        Vmspace.destroy vm;
        check (Frame.state_of ~paddr:pa = Frame.Unused) "released on teardown");
    t "frame" "dma_and_user_share_one_frame" (fun () ->
        let vm = Vmspace.create () in
        let f = Frame.alloc ~untyped:true () in
        let shared = Frame.clone f in
        Vmspace.map vm ~vaddr:0x1000 f Vmspace.rw;
        let s = Dma.Stream.map shared ~dev:6 in
        let pa = Dma.Stream.paddr s in
        check (Frame.refcount ~paddr:pa = 2) "two owners";
        Dma.Stream.unmap s;
        check (Frame.state_of ~paddr:pa = Frame.Untyped) "mapping still owns it";
        Vmspace.destroy vm;
        check (Frame.state_of ~paddr:pa = Frame.Unused) "fully released");
    t "vmspace" "cow_split_preserves_dma_view" (fun () ->
        (* A COW split must not steal the frame a device still sees. *)
        let vm = Vmspace.create () in
        let f = Frame.alloc ~untyped:true () in
        let dev_side = Frame.clone f in
        Vmspace.map vm ~vaddr:0x1000 f Vmspace.rw;
        Untyped.write_u32 dev_side ~off:0 7;
        let child = Vmspace.fork_clone vm in
        check (Vmspace.resolve_cow child ~vaddr:0x1000) "child splits";
        ignore (Vmspace.copy_in child ~vaddr:0x1000 ~buf:(Bytes.make 4 'z') ~pos:0 ~len:4);
        check (Untyped.read_u32 dev_side ~off:0 = 7) "device view intact";
        Vmspace.destroy child;
        Vmspace.destroy vm;
        Frame.drop dev_side);
    t "untyped" "dma_stream_frame_readable_via_untyped" (fun () ->
        let s = Dma.Stream.map (Frame.alloc ~untyped:true ()) ~dev:6 in
        Untyped.write_u64 (Dma.Stream.frame s) ~off:0 99L;
        check (Untyped.read_u64 (Dma.Stream.frame s) ~off:0 = 99L) "driver view";
        Dma.Stream.unmap s);
    t "untyped" "page_aliasing_through_clones_is_coherent" (fun () ->
        let f = Frame.alloc ~untyped:true () in
        let g = Frame.clone f in
        Untyped.write_u32 f ~off:8 5;
        Untyped.write_u32 g ~off:12 6;
        check (Untyped.read_u32 g ~off:8 = 5) "g sees f's write";
        check (Untyped.read_u32 f ~off:12 = 6) "f sees g's write";
        Frame.drop f;
        Frame.drop g);
    t "slab" "slabs_and_frames_share_the_allocator" (fun () ->
        (* Slab backing pages come from the same injected allocator and
           must never collide with direct frame allocations. *)
        let s = Slab.create ~slot_size:128 ~pages:1 in
        let f = Frame.alloc ~untyped:true () in
        let slot = Option.get (Slab.alloc s) in
        check
          (Slab.Heap_slot.addr slot / page <> Frame.paddr f / page)
          "disjoint frames";
        Slab.dealloc s slot;
        Slab.destroy s;
        Frame.drop f);
    t "slab" "destroyed_slab_frames_are_reusable" (fun () ->
        let s = Slab.create ~slot_size:64 ~pages:4 in
        Slab.destroy s;
        let f = Frame.alloc ~pages:4 ~untyped:true () in
        Frame.drop f);
    t "dma" "coherent_zero_initialised" (fun () ->
        let c = Dma.Coherent.alloc ~pages:1 ~dev:6 in
        check (Untyped.read_u64 (Dma.Coherent.frame c) ~off:0 = 0L) "fresh dma page is zero";
        Dma.Coherent.free c);
    t "io" "two_windows_do_not_interfere" (fun () ->
        ignore (Machine.Board.attach_default_devices ());
        let blk = Result.get_ok (Io_mem.acquire ~base:Machine.Board.pci_hole_base ~size:0x100) in
        let net =
          Result.get_ok
            (Io_mem.acquire ~base:(Machine.Board.pci_hole_base + 0x1000) ~size:0x100)
        in
        check (Io_mem.read_once blk ~off:4 ~len:4 = 2L) "blk id";
        check (Io_mem.read_once net ~off:4 ~len:4 = 1L) "net id");
    t "kstack" "task_spawn_creates_guarded_stack" (fun () ->
        let live0 = Frame.live_handles () in
        ignore (Task.spawn (fun () -> ()));
        check (Frame.live_handles () > live0) "stack frames held";
        Task.run ());
    t "kstack" "stack_released_when_task_dies" (fun () ->
        ignore (Task.spawn (fun () -> ()));
        Task.run ();
        let live_after = Frame.live_handles () in
        ignore (Task.spawn (fun () -> ()));
        Task.run ();
        check (Frame.live_handles () = live_after) "no stack leak per task");
    t "vmspace" "many_spaces_isolated" (fun () ->
        let spaces = List.init 4 (fun _ -> Vmspace.create ()) in
        List.iteri
          (fun i vm ->
            Vmspace.map vm ~vaddr:0x1000 (Frame.alloc ~untyped:true ()) Vmspace.rw;
            let b = Bytes.make 4 (Char.chr (65 + i)) in
            ignore (Vmspace.copy_in vm ~vaddr:0x1000 ~buf:b ~pos:0 ~len:4))
          spaces;
        List.iteri
          (fun i vm ->
            let out = Bytes.create 4 in
            ignore (Vmspace.copy_out vm ~vaddr:0x1000 ~buf:out ~pos:0 ~len:4);
            check (Bytes.get out 0 = Char.chr (65 + i)) "space sees its own data")
          spaces;
        List.iter Vmspace.destroy spaces);
    t "falloc" "allocator_survives_heavy_churn" (fun () ->
        let rng = Sim.Rng.create 7L in
        let held = ref [] in
        for _ = 1 to 200 do
          if Sim.Rng.bool rng || !held = [] then
            held := Frame.alloc ~pages:(1 + Sim.Rng.int rng 4) ~untyped:true () :: !held
          else begin
            match !held with
            | f :: rest ->
              Frame.drop f;
              held := rest
            | [] -> ()
          end
        done;
        List.iter Frame.drop !held;
        check (Frame.live_handles () = 0) "balanced after churn");
  ]

let cases =
  frame_cases @ frame_cases_2 @ untyped_cases @ untyped_cases_2 @ vmspace_cases
  @ vmspace_cases_2 @ dma_cases @ dma_cases_2 @ io_cases @ io_cases_2 @ kstack_cases
  @ kstack_cases_2 @ slab_cases @ slab_cases_2 @ falloc_cases @ falloc_cases_2
  @ protocol_cases

let submodules () =
  let seen = Hashtbl.create 8 in
  List.iter (fun c -> Hashtbl.replace seen c.submodule ()) cases;
  Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort String.compare

let run_submodule sub =
  let n = ref 0 in
  List.iter
    (fun c ->
      if c.submodule = sub then begin
        incr n;
        c.run ()
      end)
    cases;
  !n
