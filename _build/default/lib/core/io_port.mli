(** Safe port I/O, the PIO twin of {!Io_mem} (Inv. 7). *)

type t

val acquire : first:int -> count:int -> (t, string) result

val read : t -> port:int -> int
val write : t -> port:int -> int -> unit
