module Context = struct
  (* IF (bit 9) and IOPL (bits 12-13) are the sensitive RFLAGS bits. *)
  let sensitive_rflags_mask = Int64.of_int ((1 lsl 9) lor (3 lsl 12))

  type t = {
    gpr : int64 array;
    mutable rip_v : int64;
    mutable rsp_v : int64;
    mutable rflags_v : int64;
  }

  let create () = { gpr = Array.make 16 0L; rip_v = 0L; rsp_v = 0L; rflags_v = 2L }

  let clone t =
    { gpr = Array.copy t.gpr; rip_v = t.rip_v; rsp_v = t.rsp_v; rflags_v = t.rflags_v }

  let get_gpr t i = t.gpr.(i)

  let set_gpr t i v = t.gpr.(i) <- v

  let rip t = t.rip_v

  let set_rip t v = t.rip_v <- v

  let rsp t = t.rsp_v

  let set_rsp t v = t.rsp_v <- v

  let rflags t = t.rflags_v

  let set_rflags t v =
    t.rflags_v <- Int64.logand v (Int64.lognot sensitive_rflags_mask)
end

type trap =
  | Syscall of { nr : int; args : int64 array }
  | Page_fault of { vaddr : int; write : bool }
  | Exit of int

type resume = Start | Sysret of int64 | Fault_resolved

type uapi = {
  sys : int -> int64 array -> int64;
  mem_read : int -> bytes -> unit;
  mem_write : int -> bytes -> unit;
  mem_read_u64 : int -> int64;
  mem_write_u64 : int -> int64 -> unit;
}

type prog = uapi -> int

type _ Effect.t += Utrap : trap -> int64 Effect.t

type t = {
  mutable vm : Vmspace.t;
  ctx : Context.t;
  mutable entry : prog option;
  mutable k : (int64, trap) Effect.Deep.continuation option;
}

let context t = t.ctx

let vmspace t = t.vm

let set_vmspace t vm = t.vm <- vm

let abandon t =
  t.k <- None;
  t.entry <- None

(* User-side memory access: retries through the page-fault trap until the
   kernel has resolved the fault, like a restarted load/store. *)
let rec access t vaddr len ~write k =
  match Vmspace.user_access t.vm ~vaddr ~len ~write with
  | Ok () -> k ()
  | Error { Vmspace.vaddr = fa; write = fw } ->
    ignore (Effect.perform (Utrap (Page_fault { vaddr = fa; write = fw })));
    access t vaddr len ~write k

let make_uapi t =
  let mem_read vaddr buf =
    let len = Bytes.length buf in
    access t vaddr len ~write:false (fun () ->
        match Vmspace.copy_out t.vm ~vaddr ~buf ~pos:0 ~len with
        | Ok () -> ()
        | Error _ -> Panic.panic "User.mem_read: fault after resolution")
  in
  let mem_write vaddr buf =
    let len = Bytes.length buf in
    access t vaddr len ~write:true (fun () ->
        match Vmspace.copy_in t.vm ~vaddr ~buf ~pos:0 ~len with
        | Ok () -> ()
        | Error _ -> Panic.panic "User.mem_write: fault after resolution")
  in
  {
    sys = (fun nr args -> Effect.perform (Utrap (Syscall { nr; args })));
    mem_read;
    mem_write;
    mem_read_u64 =
      (fun vaddr ->
        let b = Bytes.create 8 in
        mem_read vaddr b;
        Bytes.get_int64_le b 0);
    mem_write_u64 =
      (fun vaddr v ->
        let b = Bytes.create 8 in
        Bytes.set_int64_le b 0 v;
        mem_write vaddr b);
  }

let create prog vm = { vm; ctx = Context.create (); entry = Some prog; k = None }

let handler (t : t) : (int, trap) Effect.Deep.handler =
  {
    retc = (fun code -> Exit code);
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Utrap trap ->
          Some
            (fun (k : (a, trap) Effect.Deep.continuation) ->
              t.k <- Some (k : (int64, trap) Effect.Deep.continuation);
              trap)
        | _ -> None);
  }

let execute t resume =
  let charge_entry () = Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.syscall in
  match (resume, t.entry, t.k) with
  | Start, Some prog, None ->
    t.entry <- None;
    Effect.Deep.match_with (fun () -> prog (make_uapi t)) () (handler t)
  | Sysret v, None, Some k ->
    t.k <- None;
    charge_entry ();
    Effect.Deep.continue k v
  | Fault_resolved, None, Some k ->
    t.k <- None;
    Effect.Deep.continue k 0L
  | _ -> Panic.panic "User.execute: resume value does not match thread state"
