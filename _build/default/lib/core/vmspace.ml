type perms = { read : bool; write : bool; exec : bool }

let rw = { read = true; write = true; exec = false }
let ro = { read = true; write = false; exec = false }
let rx = { read = true; write = false; exec = true }

type fault = { vaddr : int; write : bool }

let page_size = Machine.Phys.page_size

(* Each mapped page owns a clone of its frame handle; [fpage] selects the
   page within a multi-page frame. *)
type entry = { frame : Frame.t; fpage : int; mutable perms : perms; mutable cow : bool }

type t = {
  vid : int;
  table : (int, entry) Hashtbl.t; (* user page number -> entry *)
  mutable pt_frames : Frame.t list; (* typed frames modelling the page table *)
  mutable destroyed : bool;
}

let () =
  List.iter
    (fun (u, n) -> Probe.declare ~submodule:"vmspace" ~unsafe_:u n)
    [
      (true, "vmspace.pte_set");
      (true, "vmspace.pte_clear");
      (true, "vmspace.pt_alloc");
      (false, "vmspace.untyped_only_check");
      (false, "vmspace.fault");
      (false, "vmspace.cow_split");
    ]

let next_id = ref 0

let create () =
  incr next_id;
  { vid = !next_id; table = Hashtbl.create 64; pt_frames = []; destroyed = false }

let id t = t.vid

let alive t op = if t.destroyed then Panic.panicf "VmSpace.%s: space already destroyed" op

(* One page-table frame per 512 entries, allocated as typed memory so the
   TCB's sensitive pages are accounted for. *)
let grow_page_table t =
  let needed = 1 + (Hashtbl.length t.table / 512) in
  while List.length t.pt_frames < needed do
    Probe.hit "vmspace.pt_alloc";
    t.pt_frames <- Frame.alloc ~untyped:false () :: t.pt_frames
  done

let page_of vaddr = vaddr / page_size

let map t ~vaddr frame perms =
  alive t "map";
  Probe.hit "vmspace.untyped_only_check";
  if not (Frame.is_untyped frame) then
    Panic.panic "Inv. 5 violated: mapping typed (sensitive) memory into user space";
  if vaddr mod page_size <> 0 then Panic.panic "VmSpace.map: unaligned vaddr";
  let npages = Frame.pages frame in
  let first = page_of vaddr in
  for i = 0 to npages - 1 do
    if Hashtbl.mem t.table (first + i) then
      Panic.panicf "VmSpace.map: page %#x already mapped" ((first + i) * page_size)
  done;
  Sim.Cost.charge (npages * (Sim.Cost.c ()).Sim.Profile.map_page);
  for i = 0 to npages - 1 do
    Probe.hit "vmspace.pte_set";
    Hashtbl.add t.table (first + i) { frame = Frame.clone frame; fpage = i; perms; cow = false }
  done;
  Frame.drop frame;
  grow_page_table t

let unmap t ~vaddr ~pages =
  alive t "unmap";
  if vaddr mod page_size <> 0 then Panic.panic "VmSpace.unmap: unaligned vaddr";
  let first = page_of vaddr in
  for i = first to first + pages - 1 do
    match Hashtbl.find_opt t.table i with
    | Some e ->
      Probe.hit "vmspace.pte_clear";
      (* Only present PTEs cost a clear + TLB shootdown. *)
      Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.unmap_page;
      Frame.drop e.frame;
      Hashtbl.remove t.table i
    | None -> ()
  done

let protect t ~vaddr ~pages perms =
  alive t "protect";
  let first = page_of vaddr in
  for i = first to first + pages - 1 do
    match Hashtbl.find_opt t.table i with
    | Some e -> e.perms <- perms
    | None -> ()
  done

let is_mapped t ~vaddr = Hashtbl.mem t.table (page_of vaddr)

let frame_at t ~vaddr =
  Option.map (fun e -> e.frame) (Hashtbl.find_opt t.table (page_of vaddr))

let mapped_pages t = Hashtbl.length t.table

let destroy t =
  if not t.destroyed then begin
    Hashtbl.iter (fun _ e -> Frame.drop e.frame) t.table;
    Hashtbl.reset t.table;
    List.iter Frame.drop t.pt_frames;
    t.pt_frames <- [];
    t.destroyed <- true
  end

(* Walk a user range page by page; [f entry page_off chunk buf_off] moves
   the data. Returns the first fault. *)
let walk t ~vaddr ~len ~write f =
  let result = ref (Ok ()) in
  let pos = ref vaddr and moved = ref 0 in
  while !result = Ok () && !moved < len do
    let pg = page_of !pos in
    let off = !pos mod page_size in
    let chunk = min (len - !moved) (page_size - off) in
    (match Hashtbl.find_opt t.table pg with
    | None ->
      Probe.hit "vmspace.fault";
      result := Error { vaddr = !pos; write }
    | Some e ->
      if (not write) && not e.perms.read then begin
        Probe.hit "vmspace.fault";
        result := Error { vaddr = !pos; write }
      end
      else if write && ((not e.perms.write) || e.cow) then begin
        Probe.hit "vmspace.fault";
        result := Error { vaddr = !pos; write }
      end
      else begin
        f e off chunk !moved;
        pos := !pos + chunk;
        moved := !moved + chunk
      end)
  done;
  !result

let copy_out t ~vaddr ~buf ~pos ~len =
  alive t "copy_out";
  Sim.Cost.charge_user_copy len;
  walk t ~vaddr ~len ~write:false (fun e off chunk moved ->
      Untyped.read_bytes e.frame
        ~off:((e.fpage * page_size) + off)
        ~buf ~pos:(pos + moved) ~len:chunk)

let copy_in t ~vaddr ~buf ~pos ~len =
  alive t "copy_in";
  Sim.Cost.charge_user_copy len;
  walk t ~vaddr ~len ~write:true (fun e off chunk moved ->
      Untyped.write_bytes e.frame
        ~off:((e.fpage * page_size) + off)
        ~buf ~pos:(pos + moved) ~len:chunk)

let user_access t ~vaddr ~len ~write =
  alive t "user_access";
  walk t ~vaddr ~len ~write (fun _ _ _ _ -> ())

let fork_clone t =
  alive t "fork_clone";
  let child = create () in
  let per_page = (Sim.Cost.c ()).Sim.Profile.fork_per_page in
  Hashtbl.iter
    (fun pg e ->
      Sim.Cost.charge per_page;
      let share_cow = e.perms.write || e.cow in
      if share_cow then e.cow <- true;
      Hashtbl.add child.table pg
        { frame = Frame.clone e.frame; fpage = e.fpage; perms = e.perms; cow = share_cow })
    t.table;
  grow_page_table child;
  child

let resolve_cow t ~vaddr =
  alive t "resolve_cow";
  match Hashtbl.find_opt t.table (page_of vaddr) with
  | Some e when e.cow && e.perms.write ->
    Probe.hit "vmspace.cow_split";
    Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.map_page;
    if Frame.refcount ~paddr:(Frame.paddr e.frame + (e.fpage * page_size)) = 1 then
      (* Sole owner: writable again without copying. *)
      e.cow <- false
    else begin
      let fresh = Frame.alloc ~untyped:true () in
      Untyped.copy ~src:e.frame ~src_off:(e.fpage * page_size) ~dst:fresh ~dst_off:0
        ~len:page_size;
      Sim.Cost.charge_memcpy page_size;
      Frame.drop e.frame;
      Hashtbl.replace t.table (page_of vaddr)
        { frame = fresh; fpage = 0; perms = e.perms; cow = false }
    end;
    true
  | Some _ | None -> false
