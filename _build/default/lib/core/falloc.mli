(** Frame-allocator injection (paper §4.4.2, Table 5).

    The policy — buddy system, per-CPU caches, whatever — lives outside
    the TCB. OSTD only trusts the injected allocator to *propose*
    addresses; {!Frame.from_unused} re-validates every proposal against
    the frame metadata (Inv. 1), so a buggy policy can cause a panic or
    leak but never an overlapping allocation. *)

module type FRAME_ALLOC = sig
  val alloc : pages:int -> int option
  (** Propose the physical address of [pages] contiguous unused frames. *)

  val dealloc : paddr:int -> pages:int -> unit

  val add_free_memory : paddr:int -> pages:int -> unit
  (** Receive a range of usable physical memory at boot. *)
end

val inject : (module FRAME_ALLOC) -> unit
(** Must be called exactly once per boot, before any frame allocation;
    re-injection panics (the paper registers policies during early
    init). *)

val injected : unit -> (module FRAME_ALLOC)
(** Panics if no allocator has been injected. *)

val reset : unit -> unit
(** Forget the injection (new boot). *)

val is_injected : unit -> bool
