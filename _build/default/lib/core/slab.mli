(** Slab and heap-slot abstractions for slab-allocator injection
    (paper §4.4.3, Table 6).

    A slab owns typed pages partitioned into fixed-size slots. The
    type-state conversions the paper identifies as safety-critical are
    all here: unused pages -> slab ([create]), slab -> free slot
    ([alloc]), slot -> heap object ([Heap_slot.into_box], which checks
    size and alignment — Inv. 10). A slab tracks its active slots and
    panics if destroyed while any object lives (Inv. 9). The policy that
    arranges slabs into per-size caches lives outside the TCB. *)

module Heap_slot : sig
  type t

  val addr : t -> int
  val size : t -> int
end

type t

val create : slot_size:int -> pages:int -> t
(** Allocates the backing pages as typed memory. [slot_size] must be
    positive and no larger than the backing span. *)

val slot_size : t -> int
val capacity : t -> int
val free_slots : t -> int
val active : t -> int

val alloc : t -> Heap_slot.t option
val dealloc : t -> Heap_slot.t -> unit
(** Recycling a slot from a different slab, or double-freeing, panics. *)

val destroy : t -> unit
(** Panics while any slot is active (Inv. 9). *)

type 'a boxed
(** A heap object living in a slot. *)

val into_box : Heap_slot.t -> size:int -> align:int -> 'a -> 'a boxed
(** Inv. 10: panics unless the slot satisfies the object's size and
    alignment. Charges the fit check. *)

val box_value : 'a boxed -> 'a
val box_slot : 'a boxed -> Heap_slot.t

(** {2 Global heap injection}

    Kernel components that do not manage their own slab caches allocate
    from an injected slab-backed global heap. *)

module type GLOBAL_HEAP = sig
  val alloc : size:int -> Heap_slot.t
  val dealloc : Heap_slot.t -> unit
end

val inject_heap : (module GLOBAL_HEAP) -> unit
val reset_heap : unit -> unit
val heap_injected : unit -> bool

val kmalloc : size:int -> 'a -> 'a boxed
(** Allocate through the injected heap; charges the kmalloc cost. *)

val kfree : 'a boxed -> unit
