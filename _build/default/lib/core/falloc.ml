module type FRAME_ALLOC = sig
  val alloc : pages:int -> int option
  val dealloc : paddr:int -> pages:int -> unit
  val add_free_memory : paddr:int -> pages:int -> unit
end

let slot : (module FRAME_ALLOC) option ref = ref None

let inject m =
  match !slot with
  | Some _ -> Panic.panic "Falloc.inject: a frame allocator is already registered"
  | None -> slot := Some m

let injected () =
  match !slot with
  | Some m -> m
  | None -> Panic.panic "Falloc: no frame allocator injected"

let reset () = slot := None

let is_injected () = !slot <> None
