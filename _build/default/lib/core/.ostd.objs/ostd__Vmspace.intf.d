lib/core/vmspace.mli: Frame
