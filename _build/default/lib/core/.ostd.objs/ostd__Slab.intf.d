lib/core/slab.mli:
