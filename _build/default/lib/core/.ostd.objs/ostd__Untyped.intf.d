lib/core/untyped.mli: Frame
