lib/core/bootstrap_alloc.ml: Falloc List Machine
