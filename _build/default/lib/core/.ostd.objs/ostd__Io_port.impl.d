lib/core/io_port.ml: Machine Panic Printf Sim
