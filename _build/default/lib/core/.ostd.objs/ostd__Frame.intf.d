lib/core/frame.mli:
