lib/core/irq.mli:
