lib/core/io_port.mli:
