lib/core/untyped.ml: Bytes Frame List Machine Panic Probe Sim
