lib/core/boot.ml: Falloc Frame Irq Machine Sim Slab Sync Task
