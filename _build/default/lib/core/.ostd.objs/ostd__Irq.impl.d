lib/core/irq.ml: Atomic_mode Fun Hashtbl Machine Panic Sim
