lib/core/bus_probe.ml: List Machine
