lib/core/panic.ml: Format Sim
