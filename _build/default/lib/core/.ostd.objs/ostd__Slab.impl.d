lib/core/slab.ml: Array Frame List Panic Probe Queue Sim
