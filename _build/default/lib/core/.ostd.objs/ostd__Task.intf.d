lib/core/task.mli:
