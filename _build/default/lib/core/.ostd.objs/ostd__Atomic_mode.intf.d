lib/core/atomic_mode.mli:
