lib/core/wait_queue.mli:
