lib/core/io_mem.mli:
