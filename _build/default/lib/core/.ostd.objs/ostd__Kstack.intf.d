lib/core/kstack.mli:
