lib/core/user.ml: Array Bytes Effect Int64 Panic Sim Vmspace
