lib/core/dma.ml: Frame List Machine Panic Probe Sim
