lib/core/bus_probe.mli:
