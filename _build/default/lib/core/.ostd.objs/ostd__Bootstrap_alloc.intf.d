lib/core/bootstrap_alloc.mli: Falloc
