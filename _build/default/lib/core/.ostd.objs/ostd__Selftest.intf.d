lib/core/selftest.mli:
