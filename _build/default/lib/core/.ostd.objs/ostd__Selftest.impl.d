lib/core/selftest.ml: Atomic_mode Boot Bootstrap_alloc Bytes Char Dma Falloc Frame Hashtbl Io_mem Io_port Irq Kstack List Machine Option Panic Result Sim Slab String Task Untyped Vmspace
