lib/core/wait_queue.ml: Atomic_mode List Sim Task
