lib/core/kstack.ml: Frame Fun List Machine Panic Probe Sim
