lib/core/dma.mli: Frame
