lib/core/frame.ml: Array Falloc List Machine Panic Probe Sim
