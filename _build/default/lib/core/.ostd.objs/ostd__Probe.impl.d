lib/core/probe.ml: Hashtbl List String
