lib/core/boot.mli:
