lib/core/falloc.ml: Panic
