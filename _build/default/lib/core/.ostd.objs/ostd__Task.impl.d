lib/core/task.ml: Atomic_mode Effect Kstack Panic Queue Sim
