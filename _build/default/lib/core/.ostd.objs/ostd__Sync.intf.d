lib/core/sync.mli:
