lib/core/panic.mli: Format
