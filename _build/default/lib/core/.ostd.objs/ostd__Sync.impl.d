lib/core/sync.ml: Atomic_mode Fun Option Panic Sim Task Wait_queue
