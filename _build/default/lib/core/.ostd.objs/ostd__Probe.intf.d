lib/core/probe.mli:
