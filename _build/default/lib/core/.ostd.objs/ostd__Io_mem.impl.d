lib/core/io_mem.ml: List Machine Panic Printf Probe Sim
