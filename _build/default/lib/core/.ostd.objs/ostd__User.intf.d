lib/core/user.mli: Vmspace
