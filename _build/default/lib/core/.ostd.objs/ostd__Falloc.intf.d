lib/core/falloc.mli:
