lib/core/vmspace.ml: Frame Hashtbl List Machine Option Panic Probe Sim Untyped
