lib/core/atomic_mode.ml: Panic
