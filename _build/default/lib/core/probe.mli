(** Coverage probes for the KernMiri harness (Table 10 methodology).

    OSTD's memory-management modules declare named checkpoints; the ones
    marked [unsafe_] correspond to operations that require [unsafe] in
    the Rust original (raw physical-memory writes, metadata CAS, page
    table mutation). When tracing is enabled, hits are recorded so the
    KernMiri runner can report line and unsafe-block coverage per
    submodule. Disabled probes cost one branch. *)

val declare : submodule:string -> ?unsafe_:bool -> string -> unit
(** Idempotent. Called at module initialisation for every checkpoint. *)

val hit : string -> unit

val set_tracing : bool -> unit

val reset_hits : unit -> unit

type coverage = { total : int; hit : int; unsafe_total : int; unsafe_hit : int }

val coverage : submodule:string -> coverage

val submodules : unit -> string list
