type t = { vec : int; mutable name : string }

let handlers : (int, unit -> unit) Hashtbl.t = Hashtbl.create 16

let next_vector = ref 48

let post_hook : (unit -> unit) ref = ref (fun () -> ())

let count = ref 0

let claimed : (int, unit) Hashtbl.t = Hashtbl.create 8

let reset () =
  Hashtbl.reset handlers;
  Hashtbl.reset claimed;
  next_vector := 48;
  post_hook := (fun () -> ());
  count := 0

let dispatch vector =
  incr count;
  Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.irq_entry;
  (match Hashtbl.find_opt handlers vector with
  | Some h ->
    (* Top half runs in atomic mode: sleeping here is the class of bug
       OSTD's atomic-mode enforcement exists to catch. *)
    Atomic_mode.enter ();
    Fun.protect ~finally:Atomic_mode.exit h
  | None -> Sim.Stats.incr "irq.unhandled");
  !post_hook ()

let install_dispatcher () = Machine.Irq_chip.set_dispatcher dispatch

let alloc ?(name = "irq") () =
  let vec = !next_vector in
  incr next_vector;
  if vec > 255 then Panic.panic "Irq.alloc: vector space exhausted";
  { vec; name }

let claim ~vector ?(name = "irq") () =
  if Hashtbl.mem claimed vector then Panic.panicf "Irq.claim: vector %d already claimed" vector;
  Hashtbl.add claimed vector ();
  { vec = vector; name }

let vector t = t.vec

let set_handler t h = Hashtbl.replace handlers t.vec h

let bind_device t ~dev = Machine.Irq_chip.remap_allow ~dev ~vector:t.vec

let unbind_device t ~dev = Machine.Irq_chip.remap_revoke ~dev ~vector:t.vec

let set_post_hook f = post_hook := f

let delivered () = !count
