(** Safe MMIO access (Inv. 7).

    Firmware labels each MMIO window sensitive or insensitive; [acquire]
    refuses sensitive windows (local APIC, IOMMU registers), so
    de-privileged drivers can only ever reach peripheral registers. Each
    access bounds-checks against the acquired window (cost per Table 8)
    and then pays the VM-exit-class access cost. *)

type t

val acquire : base:int -> size:int -> (t, string) result
(** Claim a window. Fails if it is unclaimed bus space, spans region
    boundaries, or is sensitive. *)

val base : t -> int
val size : t -> int

val read_once : t -> off:int -> len:int -> int64
val write_once : t -> off:int -> len:int -> int64 -> unit

val doorbell : t -> off:int -> int64 -> unit
(** A virtio-style kick: same checks as [write_once] but the fast
    (ioeventfd) exit cost instead of a full MMIO emulation trap. *)
