exception Kernel_panic of string

let panic msg =
  Sim.Stats.incr "kernel.panic";
  raise (Kernel_panic msg)

let panicf fmt = Format.kasprintf panic fmt

let check cond msg = if not cond then panic msg
