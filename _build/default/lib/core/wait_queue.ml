type t = { mutable q : Task.t list }

let create () = { q = [] }

let sleep wq =
  Atomic_mode.assert_sleepable "WaitQueue.sleep";
  let t = Task.current () in
  wq.q <- wq.q @ [ t ];
  Task.block ();
  (* Timeout paths may leave us in the list; drop stale entries. *)
  wq.q <- List.filter (fun w -> Task.tid w <> Task.tid t) wq.q

let sleep_until wq cond =
  while not (cond ()) do
    sleep wq
  done

let sleep_timeout wq ~cycles =
  let t = Task.current () in
  let fired = ref false in
  let ev =
    Sim.Events.schedule_after cycles (fun () ->
        fired := true;
        Task.wake t)
  in
  sleep wq;
  Sim.Events.cancel ev;
  not !fired

let rec wake_one wq =
  match wq.q with
  | [] -> false
  | t :: rest ->
    wq.q <- rest;
    if Task.is_dead t then wake_one wq
    else begin
      Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.wakeup;
      Task.wake t;
      true
    end

let wake_all wq =
  let n = ref 0 in
  while wake_one wq do
    incr n
  done;
  !n

let waiters wq = List.length wq.q
