let stack_pages = 4

let max_frame_bytes = Machine.Phys.page_size

type t = { segment : Frame.t; mutable used : int; mutable live : bool }

let () =
  List.iter
    (fun (u, n) -> Probe.declare ~submodule:"kstack" ~unsafe_:u n)
    [ (true, "kstack.alloc"); (false, "kstack.guard_check"); (false, "kstack.free") ]

let create () =
  Probe.hit "kstack.alloc";
  (* Stack pages plus the guard page below; the span is typed memory,
     invisible to untyped accessors. *)
  let segment = Frame.alloc ~pages:(stack_pages + 1) ~untyped:false () in
  (* Map the stack pages and zero the top frame (Table 8 row 5 total). *)
  Sim.Cost.charge 2750;
  Sim.Cost.charge_safety (fun s -> s.Sim.Profile.guard_page);
  { segment; used = 0; live = true }

let destroy t =
  if t.live then begin
    Probe.hit "kstack.free";
    t.live <- false;
    Frame.drop t.segment
  end

let depth t = t.used

let limit = stack_pages * Machine.Phys.page_size

let with_frame t ~bytes f =
  Probe.hit "kstack.guard_check";
  if bytes > max_frame_bytes then
    Panic.panicf "Kstack: function frame of %d bytes exceeds the guard page" bytes;
  t.used <- t.used + bytes;
  if t.used > limit then Panic.panic "Kstack: stack overflow caught by guard page";
  Fun.protect ~finally:(fun () -> t.used <- t.used - bytes) f
