(** Kernel panic: raised when a safety invariant is about to be violated.

    In the paper's framekernel, OSTD panics rather than let de-privileged
    code break memory safety; here every Inv. 1-10 enforcement point
    raises {!Kernel_panic} with the invariant named, and the test suite
    asserts both directions. *)

exception Kernel_panic of string

val panic : string -> 'a
val panicf : ('a, Format.formatter, unit, 'b) format4 -> 'a

val check : bool -> string -> unit
(** [check cond msg] panics with [msg] when [cond] is false. *)
