type t = { first : int; count : int }

let acquire ~first ~count =
  match Machine.Pio.find first with
  | None -> Error "IoPort.acquire: no device at this port"
  | Some r ->
    if first < r.Machine.Pio.first || first + count > r.Machine.Pio.first + r.Machine.Pio.count
    then Error "IoPort.acquire: range spans beyond the device's ports"
    else if r.Machine.Pio.sensitive then
      Error
        (Printf.sprintf "IoPort.acquire: %s is a sensitive port range (Inv. 7)"
           r.Machine.Pio.name)
    else Ok { first; count }

let check t ~port op =
  Sim.Cost.charge_safety (fun s -> s.Sim.Profile.iomem_check);
  if port < t.first || port >= t.first + t.count then
    Panic.panicf "IoPort.%s: port %#x outside acquired range" op port

let read t ~port =
  check t ~port "read";
  Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.mmio_access;
  Machine.Pio.read ~port

let write t ~port v =
  check t ~port "write";
  Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.mmio_access;
  Machine.Pio.write ~port v
