(** Safe device discovery for drivers: the insensitive subset of what
    firmware enumeration found. Drivers get their MMIO window via
    {!Io_mem.acquire} and their interrupt via {!Irq}. *)

type device = {
  dev_id : int;
  kind : [ `Blk | `Net ];
  mmio_base : int;
  mmio_size : int;
  vector : int;
}

val devices : unit -> device list

val find : [ `Blk | `Net ] -> device option
