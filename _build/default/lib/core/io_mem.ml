type t = { win_base : int; win_size : int }

let () =
  List.iter
    (fun (u, n) -> Probe.declare ~submodule:"io" ~unsafe_:u n)
    [
      (true, "io.mmio_read");
      (true, "io.mmio_write");
      (false, "io.sensitive_reject");
      (false, "io.bounds_check");
    ]

let acquire ~base ~size =
  match Machine.Mmio.find base with
  | None -> Error "IoMem.acquire: no device window at this address"
  | Some r ->
    if base < r.Machine.Mmio.base || base + size > r.Machine.Mmio.base + r.Machine.Mmio.size
    then Error "IoMem.acquire: range spans beyond the device window"
    else if r.Machine.Mmio.sensitive then begin
      Probe.hit "io.sensitive_reject";
      Error
        (Printf.sprintf "IoMem.acquire: %s is a sensitive core-device window (Inv. 7)"
           r.Machine.Mmio.name)
    end
    else Ok { win_base = base; win_size = size }

let base t = t.win_base

let size t = t.win_size

let check t ~off ~len op =
  Probe.hit "io.bounds_check";
  Sim.Cost.charge_safety (fun s -> s.Sim.Profile.iomem_check);
  if off < 0 || len <= 0 || off + len > t.win_size then
    Panic.panicf "IoMem.%s: access [%d, %d) outside acquired window" op off (off + len)

let read_once t ~off ~len =
  check t ~off ~len "read_once";
  Probe.hit "io.mmio_read";
  Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.mmio_access;
  Machine.Mmio.read ~addr:(t.win_base + off) ~len

let write_once t ~off ~len v =
  check t ~off ~len "write_once";
  Probe.hit "io.mmio_write";
  (* Posted writes retire slightly faster than reads (Table 8: 10666 vs
     10988 cycles total). *)
  Sim.Cost.charge ((Sim.Cost.c ()).Sim.Profile.mmio_access - 322);
  Machine.Mmio.write ~addr:(t.win_base + off) ~len v

let doorbell t ~off v =
  check t ~off ~len:8 "doorbell";
  Probe.hit "io.mmio_write";
  Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.doorbell;
  Machine.Mmio.write ~addr:(t.win_base + off) ~len:8 v
