type device = {
  dev_id : int;
  kind : [ `Blk | `Net ];
  mmio_base : int;
  mmio_size : int;
  vector : int;
}

let of_bus (i : Machine.Bus.info) =
  {
    dev_id = i.Machine.Bus.dev_id;
    kind = (match i.Machine.Bus.kind with Machine.Bus.Blk -> `Blk | Machine.Bus.Net -> `Net);
    mmio_base = i.Machine.Bus.mmio_base;
    mmio_size = i.Machine.Bus.mmio_size;
    vector = i.Machine.Bus.vector;
  }

let devices () = List.map of_bus (Machine.Bus.devices ())

let find kind = List.find_opt (fun d -> d.kind = kind) (devices ())
