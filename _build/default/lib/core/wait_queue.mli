(** Wait queues: the blocking primitive every kernel service is built on.

    Sleeping in atomic mode panics (see {!Atomic_mode}); waking charges
    the wake-up cost. *)

type t

val create : unit -> t

val sleep : t -> unit
(** Enqueue the current task and switch away until woken. *)

val sleep_until : t -> (unit -> bool) -> unit
(** Sleep in a loop until the condition holds; the condition is
    re-checked after every wake-up, so spurious wake-ups are harmless. *)

val sleep_timeout : t -> cycles:int -> bool
(** [true] if woken through the queue, [false] on timeout. *)

val wake_one : t -> bool
(** Wake the longest-waiting task; [false] if the queue was empty. *)

val wake_all : t -> int

val waiters : t -> int
