let level = ref 0

let enter () = incr level

let exit () =
  if !level <= 0 then Panic.panic "Atomic_mode.exit: not in atomic mode";
  decr level

let depth () = !level

let in_atomic () = !level > 0

let assert_sleepable who =
  if in_atomic () then
    Panic.panicf "%s: sleeping in atomic context (depth %d) is forbidden" who !level

let reset () = level := 0
