type info = { submodule : string; unsafe_ : bool; mutable hits : int }

let registry : (string, info) Hashtbl.t = Hashtbl.create 128

let tracing = ref false

let declare ~submodule ?(unsafe_ = false) name =
  if not (Hashtbl.mem registry name) then
    Hashtbl.add registry name { submodule; unsafe_; hits = 0 }

let hit name =
  if !tracing then
    match Hashtbl.find_opt registry name with
    | Some i -> i.hits <- i.hits + 1
    | None -> ()

let set_tracing b = tracing := b

let reset_hits () = Hashtbl.iter (fun _ i -> i.hits <- 0) registry

type coverage = { total : int; hit : int; unsafe_total : int; unsafe_hit : int }

let coverage ~submodule =
  Hashtbl.fold
    (fun _ i acc ->
      if i.submodule <> submodule then acc
      else
        {
          total = acc.total + 1;
          hit = (acc.hit + if i.hits > 0 then 1 else 0);
          unsafe_total = (acc.unsafe_total + if i.unsafe_ then 1 else 0);
          unsafe_hit = (acc.unsafe_hit + if i.unsafe_ && i.hits > 0 then 1 else 0);
        })
    registry
    { total = 0; hit = 0; unsafe_total = 0; unsafe_hit = 0 }

let submodules () =
  let seen = Hashtbl.create 16 in
  Hashtbl.iter (fun _ i -> Hashtbl.replace seen i.submodule ()) registry;
  Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort String.compare
