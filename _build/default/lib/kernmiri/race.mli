(** A vector-clock data-race detector with exhaustive schedule
    exploration over small multi-threaded programs — the part of KernMiri
    that catches Fig. 9(a).

    Programs are per-thread op lists over named locations. Atomics carry
    acquire/release orderings that create happens-before edges; an
    unordered pair of conflicting plain accesses in *any* interleaving is
    a data race. Conditional RMWs (CAS) let programs express the
    refcount protocol of [Frame::from_unused]. *)

type ordering = Relaxed | Acquire | Release | Acq_rel

type op =
  | Load of string                     (** non-atomic read *)
  | Store of string                    (** non-atomic write *)
  | Cas of { loc : string; expect : int; set : int; ordering : ordering }
      (** atomic compare-exchange; a failed CAS ends the thread (models
          the [expect] panic in from_unused) *)
  | Fetch_add of { loc : string; delta : int; ordering : ordering }
  | Skip_unless of { loc_value : string * int }
      (** continue this thread only if the atomic location last read by a
          Fetch_add returned the given pre-value; models
          [if last_ref_cnt == 1] *)

type verdict = { races : (string * int * int) list; schedules : int }
(** Racy location with the two thread ids, plus how many interleavings
    were explored. *)

val check : op list array -> verdict
(** Explore every interleaving (bounded; programs here are tiny). *)

val has_race : op list array -> bool
