type event =
  | Claim of { page : int; untyped : bool }
  | Inc_ref of int
  | Dec_ref of int
  | Typed_access of int
  | Untyped_access of int
  | Map_user of int
  | Dma_map of int

type violation = { event_index : int; message : string }

type page_state = Unused | Typed of int | Untyped of int (* refcount *)

let replay events =
  let pages : (int, page_state) Hashtbl.t = Hashtbl.create 32 in
  let state p = match Hashtbl.find_opt pages p with Some s -> s | None -> Unused in
  let violations = ref [] in
  let bad i fmt = Printf.ksprintf (fun m -> violations := { event_index = i; message = m } :: !violations) fmt in
  List.iteri
    (fun i ev ->
      match ev with
      | Claim { page; untyped } -> (
        match state page with
        | Unused -> Hashtbl.replace pages page (if untyped then Untyped 1 else Typed 1)
        | Typed _ | Untyped _ -> bad i "page %d claimed while in use (Inv. 1)" page)
      | Inc_ref page -> (
        match state page with
        | Typed n -> Hashtbl.replace pages page (Typed (n + 1))
        | Untyped n -> Hashtbl.replace pages page (Untyped (n + 1))
        | Unused -> bad i "refcount increment on unused page %d" page)
      | Dec_ref page -> (
        match state page with
        | Typed 1 | Untyped 1 -> Hashtbl.replace pages page Unused
        | Typed n -> Hashtbl.replace pages page (Typed (n - 1))
        | Untyped n -> Hashtbl.replace pages page (Untyped (n - 1))
        | Unused -> bad i "refcount underflow on page %d (use after free)" page)
      | Typed_access page -> (
        match state page with
        | Typed _ -> ()
        | Untyped _ -> bad i "typed access to untyped page %d (type confusion)" page
        | Unused -> bad i "typed access to unused page %d (use after free)" page)
      | Untyped_access page -> (
        match state page with
        | Untyped _ -> ()
        | Typed _ -> bad i "untyped access to typed (sensitive) page %d" page
        | Unused -> bad i "untyped access to unused page %d (use after free)" page)
      | Map_user page -> (
        match state page with
        | Untyped _ -> ()
        | Typed _ -> bad i "user mapping of typed page %d (Inv. 5)" page
        | Unused -> bad i "user mapping of unused page %d" page)
      | Dma_map page -> (
        match state page with
        | Untyped _ -> ()
        | Typed _ -> bad i "DMA mapping of typed page %d (Inv. 6)" page
        | Unused -> bad i "DMA mapping of unused page %d" page))
    events;
  List.rev !violations
