type outcome = { description : string; buggy_detected : bool; fixed_clean : bool }

let data_race_case () =
  (* Thread 0: Frame::from_unused — CAS(0 -> 1, Acquire), then touch the
     metadata. Thread 1: Drop — in the buggy ordering it decrements with
     Release first and touches metadata after, so a concurrent
     from_unused that wins the CAS races with it on "meta". *)
  let from_unused =
    [ Race.Cas { loc = "refcount"; expect = 0; set = 1; ordering = Race.Acquire };
      Race.Store "meta" ]
  in
  let drop_buggy =
    [ Race.Fetch_add { loc = "refcount"; delta = -1; ordering = Race.Release };
      Race.Skip_unless { loc_value = ("refcount", 1) };
      Race.Store "meta" ]
  in
  let drop_fixed =
    [ Race.Store "meta";
      Race.Fetch_add { loc = "refcount"; delta = -1; ordering = Race.Release };
      Race.Skip_unless { loc_value = ("refcount", 1) } ]
  in
  (* Initial refcount is 1 (a live frame being dropped): model by having
     the location start at 1 via a setup thread that runs first. *)
  let setup = [ Race.Cas { loc = "refcount"; expect = 0; set = 1; ordering = Race.Relaxed } ] in
  let run drop =
    (* The setup thread runs alone first by making it the whole prefix:
       explore with setup merged into the dropper's trace. *)
    Race.has_race [| from_unused; setup @ drop |]
  in
  {
    description = "Fig 9(a): from_unused CAS vs drop metadata update";
    buggy_detected = run drop_buggy;
    fixed_clean = not (run drop_fixed);
  }

let mutability_case () =
  let run ~mutable_ptr =
    let b = Borrow.create () in
    let base = Borrow.alloc b "HEAP_SPACE" in
    (* static mut HEAP_SPACE: the allocator keeps a pointer derived from
       a reference taken at init. *)
    match Borrow.retag b "HEAP_SPACE" ~from:base (if mutable_ptr then Borrow.Shared_rw else Borrow.Shared_ro) with
    | Error _ -> true (* rejected at retag time counts as detected *)
    | Ok ptr -> (
      (* Later heap operations write through the saved pointer. *)
      match Borrow.write b "HEAP_SPACE" ptr with
      | Ok () -> false
      | Error _ -> true)
  in
  {
    description = "Fig 9(b): heap init via const pointer, mutated later";
    buggy_detected = run ~mutable_ptr:false;
    fixed_clean = not (run ~mutable_ptr:true);
  }

let all () = [ data_race_case (); mutability_case () ]
