(** Shadow frame-state machine: KernMiri's model of OSTD's physical
    memory and typed/untyped page states. Replays a trace of frame API
    events and reports protocol violations that would be UB in the Rust
    original (double claim, use after release, typed/untyped confusion,
    refcount underflow). *)

type event =
  | Claim of { page : int; untyped : bool }     (** Frame::from_unused *)
  | Inc_ref of int
  | Dec_ref of int                              (** drop *)
  | Typed_access of int                         (** kernel object access *)
  | Untyped_access of int                       (** reader/writer access *)
  | Map_user of int                             (** VmSpace::map *)
  | Dma_map of int

type violation = { event_index : int; message : string }

val replay : event list -> violation list
(** All violations, in trace order (empty = sound). *)
