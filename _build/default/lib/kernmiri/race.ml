type ordering = Relaxed | Acquire | Release | Acq_rel

type op =
  | Load of string
  | Store of string
  | Cas of { loc : string; expect : int; set : int; ordering : ordering }
  | Fetch_add of { loc : string; delta : int; ordering : ordering }
  | Skip_unless of { loc_value : string * int }

type verdict = { races : (string * int * int) list; schedules : int }

module Vc = struct
  type t = int array

  let make n = Array.make n 0

  let join a b = Array.mapi (fun i v -> max v b.(i)) a

  let leq a b = Array.for_all2 (fun x y -> x <= y) a b

  let tick t i =
    let t = Array.copy t in
    t.(i) <- t.(i) + 1;
    t
end

type loc_state = {
  mutable value : int;
  mutable release_vc : Vc.t; (* published by release operations *)
  mutable last_write : (int * Vc.t) option; (* plain writes *)
  mutable last_reads : (int * Vc.t) list; (* plain reads since last write *)
}

type thread_state = {
  mutable ops : op list;
  mutable vc : Vc.t;
  mutable last_rmw_pre : (string * int) option;
  mutable dead : bool;
}

let check program =
  let n = Array.length program in
  let races = ref [] in
  let schedules = ref 0 in
  let add_race loc t1 t2 =
    if not (List.exists (fun (l, a, b) -> l = loc && a = t1 && b = t2) !races) then
      races := (loc, t1, t2) :: !races
  in
  (* Depth-first exploration over which thread steps next. State is
     copied at each branch; programs are a handful of ops, so this is
     cheap. *)
  let rec explore (threads : thread_state array) (locs : (string, loc_state) Hashtbl.t) =
    let runnable =
      List.filter
        (fun i -> (not threads.(i).dead) && threads.(i).ops <> [])
        (List.init n Fun.id)
    in
    if runnable = [] then incr schedules
    else
      List.iter
        (fun i ->
          (* Copy state for this branch. *)
          let threads' =
            Array.map
              (fun t -> { ops = t.ops; vc = t.vc; last_rmw_pre = t.last_rmw_pre; dead = t.dead })
              threads
          in
          let locs' = Hashtbl.create 8 in
          Hashtbl.iter
            (fun k v ->
              Hashtbl.replace locs' k
                {
                  value = v.value;
                  release_vc = v.release_vc;
                  last_write = v.last_write;
                  last_reads = v.last_reads;
                })
            locs;
          let t = threads'.(i) in
          let loc name =
            match Hashtbl.find_opt locs' name with
            | Some l -> l
            | None ->
              let l = { value = 0; release_vc = Vc.make n; last_write = None; last_reads = [] } in
              Hashtbl.replace locs' name l;
              l
          in
          (match t.ops with
          | [] -> ()
          | op :: rest ->
            t.ops <- rest;
            t.vc <- Vc.tick t.vc i;
            (match op with
            | Load name ->
              let l = loc name in
              (match l.last_write with
              | Some (w, wvc) when w <> i && not (Vc.leq wvc t.vc) -> add_race name w i
              | _ -> ());
              l.last_reads <- (i, t.vc) :: l.last_reads
            | Store name ->
              let l = loc name in
              (match l.last_write with
              | Some (w, wvc) when w <> i && not (Vc.leq wvc t.vc) -> add_race name w i
              | _ -> ());
              List.iter
                (fun (r, rvc) -> if r <> i && not (Vc.leq rvc t.vc) then add_race name r i)
                l.last_reads;
              l.last_write <- Some (i, t.vc);
              l.last_reads <- []
            | Cas { loc = name; expect; set; ordering } ->
              let l = loc name in
              if l.value = expect then begin
                (match ordering with
                | Acquire | Acq_rel -> t.vc <- Vc.join t.vc l.release_vc
                | Relaxed | Release -> ());
                (match ordering with
                | Release | Acq_rel -> l.release_vc <- Vc.join l.release_vc t.vc
                | Relaxed | Acquire -> ());
                t.last_rmw_pre <- Some (name, l.value);
                l.value <- set
              end
              else
                (* Failed CAS: from_unused's expect() panics the thread. *)
                t.dead <- true
            | Fetch_add { loc = name; delta; ordering } ->
              let l = loc name in
              (match ordering with
              | Acquire | Acq_rel -> t.vc <- Vc.join t.vc l.release_vc
              | Relaxed | Release -> ());
              (match ordering with
              | Release | Acq_rel -> l.release_vc <- Vc.join l.release_vc t.vc
              | Relaxed | Acquire -> ());
              t.last_rmw_pre <- Some (name, l.value);
              l.value <- l.value + delta
            | Skip_unless { loc_value = (name, v) } -> (
              match t.last_rmw_pre with
              | Some (n', pre) when n' = name && pre = v -> ()
              | _ -> t.dead <- true)));
          explore threads' locs')
        runnable
  in
  let threads =
    Array.mapi
      (fun _ ops -> { ops; vc = Vc.make n; last_rmw_pre = None; dead = false })
      program
  in
  explore threads (Hashtbl.create 8);
  { races = !races; schedules = !schedules }

let has_race program = (check program).races <> []
