(** A simplified stacked-borrows checker — the part of KernMiri that
    catches Fig. 9(b) (writing through a pointer derived from a shared
    reference).

    Each location keeps a stack of tags. Creating a reference or casting
    a reference to a raw pointer pushes a tag with a permission; using a
    tag pops everything above it; writing requires a Unique/SharedRW
    permission. *)

type perm = Unique | Shared_ro | Shared_rw

type tag = int

type t

val create : unit -> t

val alloc : t -> string -> tag
(** New allocation; returns the base (Unique) tag. *)

val retag : t -> string -> from:tag -> perm -> (tag, string) result
(** Derive a new reference/pointer from an existing tag ([&x], [&mut x],
    [as_ptr], [as_mut_ptr]). *)

val read : t -> string -> tag -> (unit, string) result

val write : t -> string -> tag -> (unit, string) result
(** UB when the tag is Shared_ro ("mutating via a const pointer") or has
    been invalidated by a newer unique borrow. *)

val stack_depth : t -> string -> int
