(** The KernMiri test runner (Table 10 methodology): interpret OSTD's
    unit-test corpus with checkpoint tracing and shadow validation on,
    and report per-submodule checkpoint ("line") coverage, unsafe-op
    coverage, and native vs checked execution time. *)

type row = {
  submodule : string;
  tests : int;
  lines_covered : int;
  lines_total : int;
  unsafe_covered : int;
  unsafe_total : int;
  native_s : float;
  kernmiri_s : float;
}

val run : unit -> row list
(** One row per OSTD mm-related submodule, in name order. *)

val totals : row list -> row
