lib/kernmiri/cases.mli:
