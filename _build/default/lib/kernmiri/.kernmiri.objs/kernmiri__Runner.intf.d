lib/kernmiri/runner.mli:
