lib/kernmiri/race.ml: Array Fun Hashtbl List
