lib/kernmiri/runner.ml: Cases List Ostd Sim Unix
