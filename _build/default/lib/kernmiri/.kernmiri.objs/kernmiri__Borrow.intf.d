lib/kernmiri/borrow.mli:
