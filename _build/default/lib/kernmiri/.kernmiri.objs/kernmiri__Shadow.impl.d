lib/kernmiri/shadow.ml: Hashtbl List Printf
