lib/kernmiri/shadow.mli:
