lib/kernmiri/cases.ml: Borrow Race
