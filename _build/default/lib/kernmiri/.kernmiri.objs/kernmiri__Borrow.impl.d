lib/kernmiri/borrow.ml: Hashtbl List Printf
