lib/kernmiri/race.mli:
