type row = {
  submodule : string;
  tests : int;
  lines_covered : int;
  lines_total : int;
  unsafe_covered : int;
  unsafe_total : int;
  native_s : float;
  kernmiri_s : float;
}

(* The "interpretation" factor: each checked run re-executes the test
   under tracing several times and replays the two dynamic analyses,
   standing in for Miri's per-instruction interpretation. *)
let interpret_rounds = 12

let time f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let run_corpus_once ~submodule =
  ignore (Ostd.Selftest.run_submodule submodule)

let checked_pass ~submodule =
  Ostd.Probe.set_tracing true;
  for _ = 1 to interpret_rounds do
    run_corpus_once ~submodule;
    (* Re-validate the two analyses alongside, as KernMiri would. *)
    ignore (Cases.all ())
  done;
  Ostd.Probe.set_tracing false

let run () =
  Sim.Profile.set Sim.Profile.asterinas;
  (* Rows follow the instrumented mm submodules, like the paper's Table 10. *)
  let submodules = Ostd.Probe.submodules () in
  List.map
    (fun submodule ->
      let tests =
        List.length
          (List.filter (fun c -> c.Ostd.Selftest.submodule = submodule) Ostd.Selftest.cases)
      in
      (* Native timing: tracing off. *)
      let native_s = time (fun () -> run_corpus_once ~submodule) in
      (* Checked timing + coverage. *)
      Ostd.Probe.reset_hits ();
      let kernmiri_s = time (fun () -> checked_pass ~submodule) in
      let cov = Ostd.Probe.coverage ~submodule in
      {
        submodule;
        tests;
        lines_covered = cov.Ostd.Probe.hit;
        lines_total = cov.Ostd.Probe.total;
        unsafe_covered = cov.Ostd.Probe.unsafe_hit;
        unsafe_total = cov.Ostd.Probe.unsafe_total;
        native_s;
        kernmiri_s;
      })
    submodules

let totals rows =
  List.fold_left
    (fun acc r ->
      {
        submodule = "total";
        tests = acc.tests + r.tests;
        lines_covered = acc.lines_covered + r.lines_covered;
        lines_total = acc.lines_total + r.lines_total;
        unsafe_covered = acc.unsafe_covered + r.unsafe_covered;
        unsafe_total = acc.unsafe_total + r.unsafe_total;
        native_s = acc.native_s +. r.native_s;
        kernmiri_s = acc.kernmiri_s +. r.kernmiri_s;
      })
    {
      submodule = "total";
      tests = 0;
      lines_covered = 0;
      lines_total = 0;
      unsafe_covered = 0;
      unsafe_total = 0;
      native_s = 0.;
      kernmiri_s = 0.;
    }
    rows
