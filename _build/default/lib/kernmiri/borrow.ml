type perm = Unique | Shared_ro | Shared_rw

type tag = int

type entry = { tag : tag; perm : perm }

type t = { stacks : (string, entry list) Hashtbl.t; mutable next_tag : int }

let create () = { stacks = Hashtbl.create 16; next_tag = 0 }

let fresh t =
  t.next_tag <- t.next_tag + 1;
  t.next_tag

let alloc t name =
  let tag = fresh t in
  Hashtbl.replace t.stacks name [ { tag; perm = Unique } ];
  tag

let stack t name = match Hashtbl.find_opt t.stacks name with Some s -> s | None -> []

let stack_depth t name = List.length (stack t name)

(* Using a tag pops everything above it in the stack. *)
let find_and_pop t name tag =
  let rec drop = function
    | [] -> None
    | e :: rest when e.tag = tag -> Some (e :: rest)
    | _ :: rest -> drop rest
  in
  match drop (stack t name) with
  | None -> None
  | Some s ->
    Hashtbl.replace t.stacks name s;
    Some (List.hd s)

let retag t name ~from perm =
  match find_and_pop t name from with
  | None -> Error (Printf.sprintf "retag of %s: tag %d is no longer valid" name from)
  | Some parent ->
    (match (parent.perm, perm) with
    | Shared_ro, (Unique | Shared_rw) ->
      Error (Printf.sprintf "retag of %s: cannot derive a mutable tag from a shared one" name)
    | _ ->
      let tag = fresh t in
      Hashtbl.replace t.stacks name ({ tag; perm } :: stack t name);
      Ok tag)

let read t name tag =
  match find_and_pop t name tag with
  | None -> Error (Printf.sprintf "read of %s via invalidated tag %d (UB)" name tag)
  | Some _ -> Ok ()

let write t name tag =
  match find_and_pop t name tag with
  | None -> Error (Printf.sprintf "write to %s via invalidated tag %d (UB)" name tag)
  | Some e -> (
    match e.perm with
    | Unique | Shared_rw -> Ok ()
    | Shared_ro ->
      Error
        (Printf.sprintf
           "write to %s via a read-only (const-pointer) tag %d: mutability UB" name tag))
