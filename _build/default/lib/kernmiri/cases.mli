(** The two UB case studies of Fig. 9, as KernMiri programs: each comes
    in the buggy variant the tool caught and the fixed variant that
    shipped. *)

type outcome = { description : string; buggy_detected : bool; fixed_clean : bool }

val data_race_case : unit -> outcome
(** Fig. 9(a): Frame::from_unused's CAS racing a concurrent drop's
    metadata update. Buggy = drop touches metadata after releasing the
    refcount; fixed = metadata first, release last. *)

val mutability_case : unit -> outcome
(** Fig. 9(b): HEAP_SPACE cast to a const pointer during heap
    initialisation, then mutated. Fixed = mutable pointer cast. *)

val all : unit -> outcome list
