(** Deterministic splitmix64 RNG.

    All randomness in the simulator (workload keys, device jitter) flows
    through explicit generator values so that every benchmark run is
    reproducible. *)

type t

val create : int64 -> t
(** Seed a fresh generator. *)

val next : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). [bound] must be positive. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
