let cycles_per_us = 3000

let current = ref 0L

let reset () = current := 0L

let now () = !current

let charge n =
  if n < 0 then invalid_arg "Clock.charge: negative cost";
  current := Int64.add !current (Int64.of_int n)

let advance_to t = if Int64.compare t !current > 0 then current := t

let to_us t = Int64.to_float t /. float_of_int cycles_per_us

let to_seconds t = to_us t /. 1_000_000.

let us x = int_of_float (x *. float_of_int cycles_per_us)
