lib/sim/events.mli:
