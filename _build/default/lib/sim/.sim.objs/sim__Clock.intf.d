lib/sim/clock.mli:
