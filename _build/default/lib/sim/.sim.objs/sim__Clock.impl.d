lib/sim/clock.ml: Int64
