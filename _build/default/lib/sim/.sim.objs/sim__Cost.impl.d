lib/sim/cost.ml: Clock Profile
