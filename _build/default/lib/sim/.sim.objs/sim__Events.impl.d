lib/sim/events.ml: Array Clock Int64
