lib/sim/stats.ml: Hashtbl List Stdlib String
