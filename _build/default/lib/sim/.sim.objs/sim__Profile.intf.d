lib/sim/profile.mli:
