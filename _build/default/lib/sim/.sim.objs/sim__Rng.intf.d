lib/sim/rng.mli:
