lib/sim/profile.ml:
