lib/sim/stats.mli:
