lib/sim/cost.mli: Profile
