(** Charge helpers: read the installed {!Profile} and advance the clock. *)

val c : unit -> Profile.costs
(** Cost table of the installed profile. *)

val charge : int -> unit
(** Advance the virtual clock. *)

val charge_user_copy : int -> unit
(** Charge a user<->kernel copy of [n] bytes. *)

val charge_memcpy : int -> unit
(** Charge an in-kernel copy of [n] bytes. *)

val charge_safety : (Profile.safety_costs -> int) -> unit
(** Charge one safety check, but only when the installed profile runs
    OSTD safety checks; selects the per-check cost from the table. *)

val charge_us : float -> unit
(** Charge a duration given in microseconds. *)
