(** Discrete event queue driving the simulated machine.

    Device completions, timer interrupts, and wire deliveries are
    scheduled here. The kernel's scheduler polls [run_due] at dispatch
    boundaries and calls [run_next] when no task is runnable. *)

type handle
(** Identifies a scheduled event so it can be cancelled. *)

val clear : unit -> unit
(** Drop all pending events (start of a fresh simulation). *)

val schedule_at : int64 -> (unit -> unit) -> handle
(** Run a callback when virtual time reaches the given cycle count. *)

val schedule_after : int -> (unit -> unit) -> handle
(** [schedule_after n f] runs [f] [n] cycles from now. *)

val cancel : handle -> unit
(** Cancelling an already-fired event is a no-op. *)

val pending : unit -> int
(** Number of events still scheduled (cancelled ones excluded). *)

val run_due : unit -> bool
(** Run every event whose time is [<= Clock.now ()]. Returns [true] if at
    least one ran. *)

val run_next : unit -> bool
(** If the queue is non-empty, advance the clock to the earliest event and
    run it (plus anything else now due). Returns [false] when empty. *)
