type event = { time : int64; seq : int; mutable cancelled : bool; run : unit -> unit }

type handle = event

module Heap = struct
  (* Binary min-heap ordered by (time, seq): seq breaks ties so that
     events scheduled earlier fire earlier, keeping runs deterministic. *)
  type t = { mutable arr : event array; mutable len : int }

  let dummy = { time = 0L; seq = 0; cancelled = true; run = ignore }

  let create () = { arr = Array.make 64 dummy; len = 0 }

  let less a b =
    let c = Int64.compare a.time b.time in
    if c <> 0 then c < 0 else a.seq < b.seq

  let swap h i j =
    let t = h.arr.(i) in
    h.arr.(i) <- h.arr.(j);
    h.arr.(j) <- t

  let push h e =
    if h.len = Array.length h.arr then begin
      let bigger = Array.make (2 * h.len) dummy in
      Array.blit h.arr 0 bigger 0 h.len;
      h.arr <- bigger
    end;
    h.arr.(h.len) <- e;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && less h.arr.(!i) h.arr.((!i - 1) / 2) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.arr.(0) in
      h.len <- h.len - 1;
      h.arr.(0) <- h.arr.(h.len);
      h.arr.(h.len) <- dummy;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && less h.arr.(l) h.arr.(!smallest) then smallest := l;
        if r < h.len && less h.arr.(r) h.arr.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          swap h !i !smallest;
          i := !smallest
        end
      done;
      Some top
    end

  let peek h = if h.len = 0 then None else Some h.arr.(0)
end

let heap = Heap.create ()

let seq = ref 0

let live = ref 0

let clear () =
  heap.Heap.len <- 0;
  live := 0

let schedule_at time run =
  incr seq;
  let e = { time; seq = !seq; cancelled = false; run } in
  Heap.push heap e;
  incr live;
  e

let schedule_after n run =
  if n < 0 then invalid_arg "Events.schedule_after: negative delay";
  schedule_at (Int64.add (Clock.now ()) (Int64.of_int n)) run

let cancel e =
  if not e.cancelled then begin
    e.cancelled <- true;
    decr live
  end

let pending () = !live

let pop_due () =
  match Heap.peek heap with
  | Some e when Int64.compare e.time (Clock.now ()) <= 0 -> Heap.pop heap
  | Some _ | None -> None

let run_due () =
  let ran = ref false in
  let continue = ref true in
  while !continue do
    match pop_due () with
    | None -> continue := false
    | Some e ->
      if not e.cancelled then begin
        decr live;
        ran := true;
        e.run ()
      end
  done;
  !ran

let rec run_next () =
  match Heap.pop heap with
  | None -> false
  | Some e ->
    if e.cancelled then run_next ()
    else begin
      decr live;
      Clock.advance_to e.time;
      e.run ();
      ignore (run_due ());
      true
    end
