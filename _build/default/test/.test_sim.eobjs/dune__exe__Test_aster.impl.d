test/test_aster.ml: Alcotest Apps Aster Bytes Char Hashtbl Int64 List Machine Option Ostd Printf Sim String
