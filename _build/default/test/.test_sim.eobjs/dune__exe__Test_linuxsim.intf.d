test/test_linuxsim.mli:
