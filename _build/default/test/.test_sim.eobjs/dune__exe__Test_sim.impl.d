test/test_sim.ml: Alcotest Array Gen Int64 List QCheck QCheck_alcotest Sim
