test/test_ostd.ml: Alcotest Array Bytes Gen Int64 List Ostd Printf QCheck QCheck_alcotest Sim String
