test/test_kernmiri.ml: Alcotest Gen Kernmiri List QCheck QCheck_alcotest Result
