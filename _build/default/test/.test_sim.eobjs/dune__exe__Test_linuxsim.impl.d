test/test_linuxsim.ml: Alcotest Apps Aster Linuxsim List Sim
