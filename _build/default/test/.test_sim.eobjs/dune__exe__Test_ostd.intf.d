test/test_ostd.mli:
