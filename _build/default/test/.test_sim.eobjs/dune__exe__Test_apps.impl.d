test/test_apps.ml: Alcotest Apps Aster Buffer Bytes Char Gen Int32 Int64 List Option Ostd Printf QCheck QCheck_alcotest Sim String
