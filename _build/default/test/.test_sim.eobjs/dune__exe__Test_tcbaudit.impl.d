test/test_tcbaudit.ml: Alcotest List Printf QCheck QCheck_alcotest Tcbaudit
