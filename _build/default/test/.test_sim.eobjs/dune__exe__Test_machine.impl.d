test/test_machine.ml: Alcotest Bytes Char Int64 List Machine Printf QCheck QCheck_alcotest Sim String
