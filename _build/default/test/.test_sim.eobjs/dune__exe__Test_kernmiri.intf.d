test/test_kernmiri.mli:
