test/test_tcbaudit.mli:
