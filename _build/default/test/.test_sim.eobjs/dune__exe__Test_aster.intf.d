test/test_aster.mli:
