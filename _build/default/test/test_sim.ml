let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let test_clock_charge () =
  Sim.Clock.reset ();
  Sim.Clock.charge 100;
  Sim.Clock.charge 50;
  Alcotest.(check int64) "sum" 150L (Sim.Clock.now ());
  check "to_us" true (abs_float (Sim.Clock.to_us 3000L -. 1.0) < 1e-9);
  check_int "us" 3000 (Sim.Clock.us 1.0)

let test_clock_advance () =
  Sim.Clock.reset ();
  Sim.Clock.advance_to 500L;
  Sim.Clock.advance_to 200L;
  Alcotest.(check int64) "monotone" 500L (Sim.Clock.now ())

let test_clock_negative_charge () =
  Alcotest.check_raises "negative" (Invalid_argument "Clock.charge: negative cost") (fun () ->
      Sim.Clock.charge (-1))

let test_events_order () =
  Sim.Clock.reset ();
  Sim.Events.clear ();
  let log = ref [] in
  ignore (Sim.Events.schedule_at 300L (fun () -> log := 3 :: !log));
  ignore (Sim.Events.schedule_at 100L (fun () -> log := 1 :: !log));
  ignore (Sim.Events.schedule_at 200L (fun () -> log := 2 :: !log));
  while Sim.Events.run_next () do
    ()
  done;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check int64) "clock at last event" 300L (Sim.Clock.now ())

let test_events_same_time_fifo () =
  Sim.Clock.reset ();
  Sim.Events.clear ();
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Sim.Events.schedule_at 50L (fun () -> log := i :: !log))
  done;
  while Sim.Events.run_next () do
    ()
  done;
  Alcotest.(check (list int)) "fifo ties" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_events_cancel () =
  Sim.Clock.reset ();
  Sim.Events.clear ();
  let fired = ref false in
  let h = Sim.Events.schedule_at 10L (fun () -> fired := true) in
  Sim.Events.cancel h;
  check_int "pending" 0 (Sim.Events.pending ());
  while Sim.Events.run_next () do
    ()
  done;
  check "not fired" false !fired

let test_events_run_due () =
  Sim.Clock.reset ();
  Sim.Events.clear ();
  let fired = ref 0 in
  ignore (Sim.Events.schedule_at 10L (fun () -> incr fired));
  ignore (Sim.Events.schedule_at 99999L (fun () -> incr fired));
  Sim.Clock.advance_to 10L;
  check "ran due" true (Sim.Events.run_due ());
  check_int "only the due one" 1 !fired;
  check_int "pending keeps future" 1 (Sim.Events.pending ())

let test_events_cascade () =
  (* An event scheduling another event at the same instant runs it within
     the same run_next call. *)
  Sim.Clock.reset ();
  Sim.Events.clear ();
  let log = ref [] in
  ignore
    (Sim.Events.schedule_at 5L (fun () ->
         log := "a" :: !log;
         ignore (Sim.Events.schedule_after 0 (fun () -> log := "b" :: !log))));
  ignore (Sim.Events.run_next ());
  Alcotest.(check (list string)) "cascade" [ "a"; "b" ] (List.rev !log)

let test_stats () =
  Sim.Stats.reset ();
  Sim.Stats.incr "x";
  Sim.Stats.add "x" 4;
  check_int "counter" 5 (Sim.Stats.get "x");
  check_int "missing" 0 (Sim.Stats.get "y");
  Sim.Stats.sample "s" 2.0;
  Sim.Stats.sample "s" 8.0;
  check "mean" true (abs_float (Sim.Stats.mean "s" -. 5.0) < 1e-9)

let test_geomean () =
  check "geomean" true (abs_float (Sim.Stats.geomean [ 2.0; 8.0 ] -. 4.0) < 1e-9);
  check "empty" true (Sim.Stats.geomean [] = 0.)

let test_profile_switch () =
  Sim.Profile.set Sim.Profile.linux;
  check "no checks" false (Sim.Profile.checks_on ());
  Sim.Clock.reset ();
  Sim.Cost.charge_safety (fun s -> s.Sim.Profile.boundary_check);
  Alcotest.(check int64) "no charge" 0L (Sim.Clock.now ());
  Sim.Profile.set Sim.Profile.asterinas;
  check "checks" true (Sim.Profile.checks_on ());
  Sim.Cost.charge_safety (fun s -> s.Sim.Profile.boundary_check);
  Alcotest.(check int64) "charged" 3L (Sim.Clock.now ())

let test_profile_variants () =
  check "aster iommu" true Sim.Profile.asterinas.Sim.Profile.iommu;
  check "no-iommu variant" false Sim.Profile.asterinas_no_iommu.Sim.Profile.iommu;
  check "linux has cc" true Sim.Profile.linux.Sim.Profile.tcp_congestion_control;
  check "aster lacks cc" false Sim.Profile.asterinas.Sim.Profile.tcp_congestion_control;
  let unchecked = Sim.Profile.with_safety_checks false Sim.Profile.asterinas in
  check "toggled" false unchecked.Sim.Profile.safety_checks;
  check "costs zeroed" true
    (unchecked.Sim.Profile.costs.Sim.Profile.safety.Sim.Profile.boundary_check = 0)

let prop_rng_bounds =
  QCheck.Test.make ~name:"rng_int_within_bounds" ~count:500
    QCheck.(pair int64 (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Sim.Rng.create seed in
      let v = Sim.Rng.int rng bound in
      v >= 0 && v < bound)

let prop_rng_deterministic =
  QCheck.Test.make ~name:"rng_deterministic" ~count:100 QCheck.int64 (fun seed ->
      let a = Sim.Rng.create seed and b = Sim.Rng.create seed in
      List.for_all
        (fun _ -> Sim.Rng.next a = Sim.Rng.next b)
        [ 1; 2; 3; 4; 5 ])

let prop_events_fire_in_order =
  QCheck.Test.make ~name:"events_fire_in_time_order" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 50) (int_range 0 10000))
    (fun times ->
      Sim.Clock.reset ();
      Sim.Events.clear ();
      let fired = ref [] in
      List.iter
        (fun t ->
          ignore (Sim.Events.schedule_at (Int64.of_int t) (fun () -> fired := t :: !fired)))
        times;
      while Sim.Events.run_next () do
        ()
      done;
      let order = List.rev !fired in
      order = List.sort compare order && List.length order = List.length times)

let prop_shuffle_is_permutation =
  QCheck.Test.make ~name:"shuffle_preserves_elements" ~count:200
    QCheck.(pair int64 (list small_int))
    (fun (seed, l) ->
      let arr = Array.of_list l in
      Sim.Rng.shuffle (Sim.Rng.create seed) arr;
      List.sort compare (Array.to_list arr) = List.sort compare l)

let () =
  Alcotest.run "sim"
    [
      ( "clock",
        [
          Alcotest.test_case "charge" `Quick test_clock_charge;
          Alcotest.test_case "advance_monotone" `Quick test_clock_advance;
          Alcotest.test_case "negative_charge" `Quick test_clock_negative_charge;
        ] );
      ( "events",
        [
          Alcotest.test_case "order" `Quick test_events_order;
          Alcotest.test_case "fifo_ties" `Quick test_events_same_time_fifo;
          Alcotest.test_case "cancel" `Quick test_events_cancel;
          Alcotest.test_case "run_due" `Quick test_events_run_due;
          Alcotest.test_case "cascade" `Quick test_events_cascade;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counters_samples" `Quick test_stats;
          Alcotest.test_case "geomean" `Quick test_geomean;
        ] );
      ( "profile",
        [
          Alcotest.test_case "switch" `Quick test_profile_switch;
          Alcotest.test_case "variants" `Quick test_profile_variants;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_rng_bounds;
            prop_rng_deterministic;
            prop_events_fire_in_order;
            prop_shuffle_is_permutation;
          ] );
    ]
