let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

(* --- Race detector --- *)

let test_race_plain_conflict () =
  (* Two unsynchronised writers: race in every interleaving. *)
  let p = [| [ Kernmiri.Race.Store "x" ]; [ Kernmiri.Race.Store "x" ] |] in
  check "race detected" true (Kernmiri.Race.has_race p)

let test_race_read_write () =
  let p = [| [ Kernmiri.Race.Load "x" ]; [ Kernmiri.Race.Store "x" ] |] in
  check "read/write race" true (Kernmiri.Race.has_race p)

let test_race_disjoint_locations () =
  let p = [| [ Kernmiri.Race.Store "x" ]; [ Kernmiri.Race.Store "y" ] |] in
  check "no race" false (Kernmiri.Race.has_race p)

let test_race_release_acquire_orders () =
  (* Writer publishes with a release CAS; the reader acquires before
     touching the data: properly synchronised message passing. *)
  let writer =
    [ Kernmiri.Race.Store "data";
      Kernmiri.Race.Cas { loc = "flag"; expect = 0; set = 1; ordering = Kernmiri.Race.Release } ]
  in
  let reader =
    [ Kernmiri.Race.Cas { loc = "flag"; expect = 1; set = 2; ordering = Kernmiri.Race.Acquire };
      Kernmiri.Race.Load "data" ]
  in
  check "release/acquire is clean" false (Kernmiri.Race.has_race [| writer; reader |])

let test_race_relaxed_is_racy () =
  let writer =
    [ Kernmiri.Race.Store "data";
      Kernmiri.Race.Cas { loc = "flag"; expect = 0; set = 1; ordering = Kernmiri.Race.Relaxed } ]
  in
  let reader =
    [ Kernmiri.Race.Cas { loc = "flag"; expect = 1; set = 2; ordering = Kernmiri.Race.Relaxed };
      Kernmiri.Race.Load "data" ]
  in
  check "relaxed flag does not order" true (Kernmiri.Race.has_race [| writer; reader |])

let test_race_explores_schedules () =
  let p = [| [ Kernmiri.Race.Store "x"; Kernmiri.Race.Store "x" ]; [ Kernmiri.Race.Load "y" ] |] in
  let v = Kernmiri.Race.check p in
  check "multiple interleavings" true (v.Kernmiri.Race.schedules > 1)

(* --- Borrow checker --- *)

let test_borrow_unique_write () =
  let b = Kernmiri.Borrow.create () in
  let base = Kernmiri.Borrow.alloc b "x" in
  check "write via base" true (Kernmiri.Borrow.write b "x" base = Ok ())

let test_borrow_const_write_ub () =
  let b = Kernmiri.Borrow.create () in
  let base = Kernmiri.Borrow.alloc b "x" in
  match Kernmiri.Borrow.retag b "x" ~from:base Kernmiri.Borrow.Shared_ro with
  | Error e -> Alcotest.fail e
  | Ok ro -> (
    check "read ok" true (Kernmiri.Borrow.read b "x" ro = Ok ());
    match Kernmiri.Borrow.write b "x" ro with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "const write allowed")

let test_borrow_invalidation () =
  (* Using the base invalidates a derived tag (pops it). *)
  let b = Kernmiri.Borrow.create () in
  let base = Kernmiri.Borrow.alloc b "x" in
  let derived = Result.get_ok (Kernmiri.Borrow.retag b "x" ~from:base Kernmiri.Borrow.Unique) in
  check "derived writes" true (Kernmiri.Borrow.write b "x" derived = Ok ());
  check "base write pops derived" true (Kernmiri.Borrow.write b "x" base = Ok ());
  match Kernmiri.Borrow.write b "x" derived with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "stale tag usable"

let test_borrow_no_mut_from_shared () =
  let b = Kernmiri.Borrow.create () in
  let base = Kernmiri.Borrow.alloc b "x" in
  let ro = Result.get_ok (Kernmiri.Borrow.retag b "x" ~from:base Kernmiri.Borrow.Shared_ro) in
  match Kernmiri.Borrow.retag b "x" ~from:ro Kernmiri.Borrow.Unique with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mutable tag derived from shared"

(* --- Shadow state --- *)

let test_shadow_clean_trace () =
  let trace =
    [ Kernmiri.Shadow.Claim { page = 1; untyped = true };
      Kernmiri.Shadow.Untyped_access 1;
      Kernmiri.Shadow.Inc_ref 1;
      Kernmiri.Shadow.Dec_ref 1;
      Kernmiri.Shadow.Map_user 1;
      Kernmiri.Shadow.Dma_map 1;
      Kernmiri.Shadow.Dec_ref 1 ]
  in
  check_int "no violations" 0 (List.length (Kernmiri.Shadow.replay trace))

let test_shadow_violations () =
  let cases =
    [
      ( "double claim",
        [ Kernmiri.Shadow.Claim { page = 1; untyped = true };
          Kernmiri.Shadow.Claim { page = 1; untyped = false } ] );
      ( "use after free",
        [ Kernmiri.Shadow.Claim { page = 1; untyped = true };
          Kernmiri.Shadow.Dec_ref 1;
          Kernmiri.Shadow.Untyped_access 1 ] );
      ( "type confusion",
        [ Kernmiri.Shadow.Claim { page = 1; untyped = false };
          Kernmiri.Shadow.Untyped_access 1 ] );
      ("underflow", [ Kernmiri.Shadow.Dec_ref 9 ]);
      ( "user map of typed",
        [ Kernmiri.Shadow.Claim { page = 2; untyped = false }; Kernmiri.Shadow.Map_user 2 ] );
      ( "dma of typed",
        [ Kernmiri.Shadow.Claim { page = 2; untyped = false }; Kernmiri.Shadow.Dma_map 2 ] );
    ]
  in
  List.iter
    (fun (name, trace) ->
      check name true (Kernmiri.Shadow.replay trace <> []))
    cases

(* --- Case studies and coverage runner --- *)

let test_cases () =
  List.iter
    (fun (o : Kernmiri.Cases.outcome) ->
      check (o.Kernmiri.Cases.description ^ " buggy") true o.Kernmiri.Cases.buggy_detected;
      check (o.Kernmiri.Cases.description ^ " fixed") true o.Kernmiri.Cases.fixed_clean)
    (Kernmiri.Cases.all ())

let test_runner_coverage () =
  let rows = Kernmiri.Runner.run () in
  check "has rows" true (List.length rows >= 5);
  let t = Kernmiri.Runner.totals rows in
  check "tests ran" true (t.Kernmiri.Runner.tests > 40);
  check "coverage above 80%" true
    (float_of_int t.Kernmiri.Runner.lines_covered
     /. float_of_int (max 1 t.Kernmiri.Runner.lines_total)
    > 0.8);
  check "checked run slower than native" true
    (t.Kernmiri.Runner.kernmiri_s > t.Kernmiri.Runner.native_s)

let prop_race_detector_symmetric =
  QCheck.Test.make ~name:"single_thread_never_races" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 6) (QCheck.oneofl [ "x"; "y"; "z" ]))
    (fun locs ->
      let ops = List.concat_map (fun l -> [ Kernmiri.Race.Store l; Kernmiri.Race.Load l ]) locs in
      not (Kernmiri.Race.has_race [| ops |]))

let () =
  Alcotest.run "kernmiri"
    [
      ( "race",
        [
          Alcotest.test_case "plain_conflict" `Quick test_race_plain_conflict;
          Alcotest.test_case "read_write" `Quick test_race_read_write;
          Alcotest.test_case "disjoint" `Quick test_race_disjoint_locations;
          Alcotest.test_case "release_acquire" `Quick test_race_release_acquire_orders;
          Alcotest.test_case "relaxed_racy" `Quick test_race_relaxed_is_racy;
          Alcotest.test_case "schedules" `Quick test_race_explores_schedules;
        ] );
      ( "borrow",
        [
          Alcotest.test_case "unique_write" `Quick test_borrow_unique_write;
          Alcotest.test_case "const_write_ub" `Quick test_borrow_const_write_ub;
          Alcotest.test_case "invalidation" `Quick test_borrow_invalidation;
          Alcotest.test_case "no_mut_from_shared" `Quick test_borrow_no_mut_from_shared;
        ] );
      ( "shadow",
        [
          Alcotest.test_case "clean_trace" `Quick test_shadow_clean_trace;
          Alcotest.test_case "violations" `Quick test_shadow_violations;
        ] );
      ( "integration",
        [
          Alcotest.test_case "fig9_cases" `Quick test_cases;
          Alcotest.test_case "coverage_runner" `Slow test_runner_coverage;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_race_detector_symmetric ]);
    ]
