let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let mk ?(unsafe = false) ?(toolchain = false) ?(deps = []) ?(frac = 1.0) name loc =
  {
    Tcbaudit.Crate_graph.name;
    loc;
    linked_fraction = frac;
    uses_unsafe = unsafe;
    toolchain;
    deps;
  }

let test_rule2_unsafe_in_tcb () =
  let g = Tcbaudit.Crate_graph.build [ mk ~unsafe:true "a" 100; mk "b" 200 ] in
  check "a in tcb" true (Tcbaudit.Crate_graph.is_tcb g "a");
  check "b out" false (Tcbaudit.Crate_graph.is_tcb g "b")

let test_rule3_deps_join () =
  let g =
    Tcbaudit.Crate_graph.build
      [ mk ~unsafe:true ~deps:[ "util" ] "driver" 100; mk "util" 50; mk "app" 70 ]
  in
  check "dep joins tcb" true (Tcbaudit.Crate_graph.is_tcb g "util");
  check "unrelated stays out" false (Tcbaudit.Crate_graph.is_tcb g "app")

let test_rule3_transitive () =
  let g =
    Tcbaudit.Crate_graph.build
      [ mk ~unsafe:true ~deps:[ "b" ] "a" 10; mk ~deps:[ "c" ] "b" 10; mk "c" 10 ]
  in
  check "transitive dep" true (Tcbaudit.Crate_graph.is_tcb g "c")

let test_rule1_toolchain_excluded () =
  let g =
    Tcbaudit.Crate_graph.build
      [ mk ~unsafe:true ~deps:[ "core" ] "k" 100; mk ~unsafe:true ~toolchain:true "core" 90000 ]
  in
  check "toolchain not in tcb" false (Tcbaudit.Crate_graph.is_tcb g "core");
  check_int "toolchain excluded from totals" 100 (Tcbaudit.Crate_graph.total_lcs g)

let test_lcs_fraction () =
  let g = Tcbaudit.Crate_graph.build [ mk ~frac:0.25 "x" 1000 ] in
  check_int "linked fraction applies" 250 (Tcbaudit.Crate_graph.lcs g "x")

let test_duplicate_rejected () =
  check "duplicate raises" true
    (try
       ignore (Tcbaudit.Crate_graph.build [ mk "a" 1; mk "a" 2 ]);
       false
     with Invalid_argument _ -> true)

let test_missing_dep_rejected () =
  check "missing dep raises" true
    (try
       ignore (Tcbaudit.Crate_graph.build [ mk ~deps:[ "ghost" ] "a" 1 ]);
       false
     with Invalid_argument _ -> true)

let test_table9_matches_paper () =
  List.iter
    (fun (name, total, tcb) ->
      let g = List.assoc name Tcbaudit.Datasets.table9 in
      check_int (name ^ " total") total (Tcbaudit.Crate_graph.total_lcs g);
      check_int (name ^ " tcb") tcb (Tcbaudit.Crate_graph.tcb_lcs g))
    [
      ("RedLeaf", 25992, 17182);
      ("Theseus", 70468, 43978);
      ("Tock", 6628, 2903);
      ("Asterinas", 75285, 10571);
    ]

let test_table1_fractions () =
  List.iter
    (fun (name, u, t) ->
      let g = List.assoc name Tcbaudit.Datasets.table1 in
      let mu, mt = Tcbaudit.Crate_graph.unsafe_crate_fraction g in
      check_int (name ^ " unsafe") u mu;
      check_int (name ^ " total") t mt)
    [ ("Linux", 6, 11); ("Tock", 91, 98); ("RedLeaf", 36, 58); ("Theseus", 54, 171) ]

let test_growth_shapes () =
  let fa = Tcbaudit.Growth.fit_quadratic Tcbaudit.Growth.asterinas_series in
  let fo = Tcbaudit.Growth.fit_linear Tcbaudit.Growth.ostd_series in
  check "kernel growth is super-linear" true (fa.Tcbaudit.Growth.quadratic > 0.01);
  check "ostd slope is small" true (fo.Tcbaudit.Growth.slope < 0.5);
  let last l = List.nth l (List.length l - 1) in
  check "final sizes match the paper's Fig. 7 scale" true
    ((last Tcbaudit.Growth.asterinas_series).Tcbaudit.Growth.kloc > 80.
    && (last Tcbaudit.Growth.ostd_series).Tcbaudit.Growth.kloc < 12.)

let test_growth_fit_quality () =
  let fa = Tcbaudit.Growth.fit_quadratic Tcbaudit.Growth.asterinas_series in
  check "quadratic fits its own generator" true (fa.Tcbaudit.Growth.rmse < 0.01);
  let p36 = Tcbaudit.Growth.project fa 36 in
  check "projection hits the end point" true (abs_float (p36 -. 89.9) < 1.0)

let test_self_audit () =
  let r = Tcbaudit.Self_audit.run () in
  check "repo found" true (r.Tcbaudit.Self_audit.total_loc > 1000);
  check "core is TCB" true
    (List.exists
       (fun (e : Tcbaudit.Self_audit.entry) -> e.library = "core" && e.tcb)
       r.Tcbaudit.Self_audit.entries);
  check "aster is not TCB" true
    (List.exists
       (fun (e : Tcbaudit.Self_audit.entry) -> e.library = "aster" && not e.tcb)
       r.Tcbaudit.Self_audit.entries);
  check "relative sane" true
    (r.Tcbaudit.Self_audit.relative > 0. && r.Tcbaudit.Self_audit.relative < 1.)

let prop_tcb_monotone =
  QCheck.Test.make ~name:"adding_unsafe_crate_never_shrinks_tcb" ~count:50
    QCheck.(int_range 1 20)
    (fun n ->
      let crates = List.init n (fun i -> mk ~unsafe:(i mod 3 = 0) (Printf.sprintf "c%d" i) 10) in
      let g1 = Tcbaudit.Crate_graph.build crates in
      let g2 = Tcbaudit.Crate_graph.build (mk ~unsafe:true "extra" 10 :: crates) in
      Tcbaudit.Crate_graph.tcb_lcs g2 >= Tcbaudit.Crate_graph.tcb_lcs g1)

let () =
  Alcotest.run "tcbaudit"
    [
      ( "rules",
        [
          Alcotest.test_case "rule2" `Quick test_rule2_unsafe_in_tcb;
          Alcotest.test_case "rule3" `Quick test_rule3_deps_join;
          Alcotest.test_case "rule3_transitive" `Quick test_rule3_transitive;
          Alcotest.test_case "rule1" `Quick test_rule1_toolchain_excluded;
          Alcotest.test_case "lcs" `Quick test_lcs_fraction;
          Alcotest.test_case "duplicate" `Quick test_duplicate_rejected;
          Alcotest.test_case "missing_dep" `Quick test_missing_dep_rejected;
        ] );
      ( "datasets",
        [
          Alcotest.test_case "table9" `Quick test_table9_matches_paper;
          Alcotest.test_case "table1" `Quick test_table1_fractions;
        ] );
      ( "growth",
        [
          Alcotest.test_case "shapes" `Quick test_growth_shapes;
          Alcotest.test_case "fit_quality" `Quick test_growth_fit_quality;
        ] );
      ("self_audit", [ Alcotest.test_case "repo" `Quick test_self_audit ]);
      ("properties", [ QCheck_alcotest.to_alcotest prop_tcb_monotone ]);
    ]
