bin/tcb_audit.mli:
