bin/asterinas_sim.ml: Apps Arg Aster Cmd Cmdliner Format List Ostd Printf Sim Term
