bin/asterinas_sim.mli:
