bin/tcb_audit.ml: Array List Printf Sys Tcbaudit
