bin/kernmiri_run.mli:
