bin/kernmiri_run.ml: Array Kernmiri List Printf Sys
