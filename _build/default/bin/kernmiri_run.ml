(* KernMiri CLI: coverage run over OSTD's unit-test corpus (Table 10)
   plus the published case studies.

     kernmiri_run           # full coverage table + cases
     kernmiri_run cases     # just the Fig. 9 cases *)

let coverage () =
  let rows = Kernmiri.Runner.run () in
  Printf.printf "%-10s %6s %14s %14s %10s %10s %8s\n" "submodule" "tests" "checkpoints"
    "unsafe ops" "native" "kernmiri" "slowdown";
  let print_row (r : Kernmiri.Runner.row) =
    Printf.printf "%-10s %6d %10d/%-3d %10d/%-3d %9.4fs %9.4fs %7.1fx\n" r.submodule r.tests
      r.lines_covered r.lines_total r.unsafe_covered r.unsafe_total r.native_s r.kernmiri_s
      (r.kernmiri_s /. (r.native_s +. 1e-9))
  in
  List.iter print_row rows;
  print_row (Kernmiri.Runner.totals rows)

let cases () =
  List.iter
    (fun (o : Kernmiri.Cases.outcome) ->
      Printf.printf "%s\n  buggy detected=%b  fixed clean=%b\n" o.Kernmiri.Cases.description
        o.Kernmiri.Cases.buggy_detected o.Kernmiri.Cases.fixed_clean)
    (Kernmiri.Cases.all ())

let () =
  match Array.to_list Sys.argv with
  | _ :: "cases" :: _ -> cases ()
  | _ ->
    coverage ();
    print_newline ();
    cases ()
