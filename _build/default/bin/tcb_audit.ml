(* TCB audit CLI: the paper's Rules 1-3 + LCS analysis over the encoded
   datasets, and the same methodology applied to this repository.

     tcb_audit            # published datasets (Tables 1 and 9)
     tcb_audit self       # audit this repo *)

let datasets () =
  Printf.printf "%-12s %8s %8s %8s   %s\n" "OS" "total" "TCB" "rel%" "unsafe crates";
  List.iter
    (fun (name, g) ->
      let u, t = Tcbaudit.Crate_graph.unsafe_crate_fraction g in
      Printf.printf "%-12s %8d %8d %7.1f%%   %d/%d\n" name
        (Tcbaudit.Crate_graph.total_lcs g) (Tcbaudit.Crate_graph.tcb_lcs g)
        (100. *. Tcbaudit.Crate_graph.relative_tcb g)
        u t)
    Tcbaudit.Datasets.table9;
  print_newline ();
  Printf.printf "TCB crate lists (Rules 1-3 closure):\n";
  List.iter
    (fun (name, g) ->
      let tcb = Tcbaudit.Crate_graph.tcb g in
      Printf.printf "  %-12s %d crates in TCB (first: %s ...)\n" name (List.length tcb)
        (match tcb with c :: _ -> c | [] -> "-"))
    Tcbaudit.Datasets.table9

let self () =
  let r = Tcbaudit.Self_audit.run () in
  Printf.printf "%-14s %8s  %s\n" "library" "LoC" "classification";
  List.iter
    (fun (e : Tcbaudit.Self_audit.entry) ->
      Printf.printf "lib/%-10s %8d  %s\n" e.library e.loc
        (if e.tcb then "TCB (privileged framework + hardware substrate)"
         else "de-privileged (kernel services / workloads)"))
    r.Tcbaudit.Self_audit.entries;
  Printf.printf "%-14s %8d\n" "total" r.Tcbaudit.Self_audit.total_loc;
  Printf.printf "%-14s %8d  (%.1f%% relative TCB)\n" "TCB"
    r.Tcbaudit.Self_audit.tcb_loc
    (100. *. r.Tcbaudit.Self_audit.relative)

let () =
  match Array.to_list Sys.argv with
  | _ :: "self" :: _ -> self ()
  | _ ->
    datasets ();
    print_newline ();
    self ()
