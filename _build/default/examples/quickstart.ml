(* Quickstart: a "hello world kernel" in ~100 lines of safe client code,
   after the paper's sample project "Write a Hello World OS Kernel in
   ~100 Lines of Safe Rust with OSTD".

   Everything below uses only OSTD's safe API: boot, inject the two
   mandatory policies, build a user address space, load a "program", and
   run the user-mode loop handling its syscalls.

     dune exec examples/quickstart.exe *)

let page = 4096

(* The kernel's syscall surface: write(1, buf, len) and exit(code). *)
let handle_syscall vm nr (args : int64 array) =
  match nr with
  | 1 (* write *) ->
    let vaddr = Int64.to_int args.(1) and len = Int64.to_int args.(2) in
    let buf = Bytes.create len in
    (match Ostd.Vmspace.copy_out vm ~vaddr ~buf ~pos:0 ~len with
    | Ok () ->
      print_string (Bytes.to_string buf);
      Int64.of_int len
    | Error _ -> -14L (* EFAULT *))
  | 60 (* exit *) -> args.(0)
  | _ -> -38L (* ENOSYS *)

(* The "user program": it only holds a capability to issue syscalls and
   touch its own memory. It writes a greeting placed in its address
   space, then exits. *)
let user_program (u : Ostd.User.uapi) =
  let msg = "Hello, framekernel world!\n" in
  let vaddr = 0x1000 in
  u.Ostd.User.mem_write vaddr (Bytes.of_string msg);
  ignore
    (u.Ostd.User.sys 1 [| 1L; Int64.of_int vaddr; Int64.of_int (String.length msg) |]);
  ignore (u.Ostd.User.sys 60 [| 0L |]);
  0

let () =
  (* Boot: machine models + frame metadata; then inject the policies a
     framekernel client must provide (scheduler, frame allocator). *)
  Sim.Profile.set Sim.Profile.asterinas;
  Ostd.Boot.init ();
  Ostd.Task.inject_fifo_scheduler ();
  Ostd.Falloc.inject (Ostd.Bootstrap_alloc.make ());
  Ostd.Boot.feed_free_memory ();

  (* A user address space with one untyped page mapped at 0x1000
     (Inv. 5 would reject typed memory here). *)
  let vm = Ostd.Vmspace.create () in
  Ostd.Vmspace.map vm ~vaddr:0x1000 (Ostd.Frame.alloc ~untyped:true ()) Ostd.Vmspace.rw;

  (* One kernel task running the user-mode loop of the paper's Fig. 3:
     return to user, wait for a trap, handle, repeat. *)
  let uthread = Ostd.User.create user_program vm in
  ignore
    (Ostd.Task.spawn ~name:"init" (fun () ->
         let rec loop resume =
           match Ostd.User.execute uthread resume with
           | Ostd.User.Syscall { nr; args } ->
             loop (Ostd.User.Sysret (handle_syscall vm nr args))
           | Ostd.User.Page_fault { vaddr; _ } ->
             (* Demand-page anonymous memory. *)
             Ostd.Vmspace.map vm
               ~vaddr:(vaddr / page * page)
               (Ostd.Frame.alloc ~untyped:true ())
               Ostd.Vmspace.rw;
             loop Ostd.User.Fault_resolved
           | Ostd.User.Exit code ->
             Printf.printf "user program exited with status %d\n" code
         in
         loop Ostd.User.Start));
  Ostd.Task.run ();
  Ostd.Vmspace.destroy vm;
  Printf.printf "virtual time elapsed: %.2f us\n" (Sim.Clock.to_us (Sim.Clock.now ()))
