(* KernMiri in action: the two published UB case studies (Fig. 9), the
   schedule explorer's view of the data race, and a shadow-state replay
   catching frame-protocol misuse.

     dune exec examples/kernmiri_demo.exe *)

let () =
  print_endline "KernMiri demo";
  print_endline "-------------";

  (* Fig. 9(a): explore every interleaving of from_unused vs drop. *)
  let from_unused =
    [ Kernmiri.Race.Cas { loc = "refcount"; expect = 0; set = 1; ordering = Kernmiri.Race.Acquire };
      Kernmiri.Race.Store "meta" ]
  in
  let drop ~fixed =
    let dec =
      [ Kernmiri.Race.Fetch_add { loc = "refcount"; delta = -1; ordering = Kernmiri.Race.Release };
        Kernmiri.Race.Skip_unless { loc_value = ("refcount", 1) } ]
    in
    let setup =
      [ Kernmiri.Race.Cas { loc = "refcount"; expect = 0; set = 1; ordering = Kernmiri.Race.Relaxed } ]
    in
    if fixed then setup @ [ Kernmiri.Race.Store "meta" ] @ dec
    else setup @ dec @ [ Kernmiri.Race.Store "meta" ]
  in
  List.iter
    (fun fixed ->
      let v = Kernmiri.Race.check [| from_unused; drop ~fixed |] in
      Printf.printf "Fig 9(a) %s drop ordering: %d interleavings explored, %s\n"
        (if fixed then "fixed" else "buggy")
        v.Kernmiri.Race.schedules
        (match v.Kernmiri.Race.races with
        | [] -> "no race"
        | (loc, a, b) :: _ -> Printf.sprintf "DATA RACE on %S between threads %d and %d" loc a b))
    [ false; true ];

  (* Fig. 9(b): the const-pointer heap initialisation. *)
  List.iter
    (fun mutable_ptr ->
      let b = Kernmiri.Borrow.create () in
      let base = Kernmiri.Borrow.alloc b "HEAP_SPACE" in
      let perm = if mutable_ptr then Kernmiri.Borrow.Shared_rw else Kernmiri.Borrow.Shared_ro in
      match Kernmiri.Borrow.retag b "HEAP_SPACE" ~from:base perm with
      | Error e -> Printf.printf "Fig 9(b): retag rejected: %s\n" e
      | Ok ptr -> (
        match Kernmiri.Borrow.write b "HEAP_SPACE" ptr with
        | Ok () ->
          Printf.printf "Fig 9(b) %s: write allowed\n"
            (if mutable_ptr then "as_mut_ptr (fixed)" else "as_ptr (buggy)")
        | Error e -> Printf.printf "Fig 9(b) as_ptr (buggy): %s\n" e))
    [ false; true ];

  (* Shadow replay: a use-after-free through the frame protocol. *)
  let trace =
    [ Kernmiri.Shadow.Claim { page = 7; untyped = true };
      Kernmiri.Shadow.Untyped_access 7;
      Kernmiri.Shadow.Dec_ref 7;
      Kernmiri.Shadow.Untyped_access 7 (* after the frame was released *) ]
  in
  print_endline "\nShadow replay of a frame-protocol trace:";
  List.iter
    (fun (v : Kernmiri.Shadow.violation) ->
      Printf.printf "  event %d: %s\n" v.Kernmiri.Shadow.event_index v.Kernmiri.Shadow.message)
    (Kernmiri.Shadow.replay trace)
