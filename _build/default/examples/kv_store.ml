(* A key-value store session: boots Asterinas, runs mini-redis in it,
   and executes a small scripted workload from the host, printing each
   reply — then a burst benchmark.

     dune exec examples/kv_store.exe *)

let script =
  [
    "SET greeting hello-from-the-framekernel";
    "GET greeting";
    "INCR visits";
    "INCR visits";
    "RPUSH fruits apple";
    "RPUSH fruits banana";
    "RPUSH fruits cherry";
    "LRANGE fruits 0 2";
    "SADD tags kernel";
    "ZADD scores 42 alice";
    "ZPOPMIN scores";
  ]

let () =
  let k = Apps.Runner.boot ~profile:Sim.Profile.asterinas in
  Apps.Libc.install_child_resolver ();
  let host = Aster.Kernel.attach_host k in
  Apps.Mini_redis.spawn ();
  ignore
    (Ostd.Task.spawn ~name:"kv-client" (fun () ->
         let rec connect tries =
           match
             Aster.Tcp.connect host.Aster.Kernel.htcp ~dst_ip:Aster.Kernel.guest_ip
               ~dst_port:Apps.Mini_redis.port
           with
           | Ok c -> Some c
           | Error _ when tries > 0 ->
             Ostd.Task.sleep_us 300.;
             connect (tries - 1)
           | Error _ -> None
         in
         match connect 30 with
         | None -> print_endline "could not connect"
         | Some conn ->
           let buf = Bytes.create 4096 in
           List.iter
             (fun cmd ->
               let req = Bytes.of_string (cmd ^ "\n") in
               ignore (Aster.Tcp.send conn ~buf:req ~pos:0 ~len:(Bytes.length req));
               match Aster.Tcp.recv conn ~buf ~pos:0 ~len:4096 with
               | Ok n ->
                 Printf.printf "> %s\n%s" cmd (Bytes.sub_string buf 0 n)
               | Error e -> Printf.printf "> %s\n(recv error %d)\n" cmd e)
             script;
           Aster.Tcp.close conn));
  Apps.Runner.run ();
  (* A burst benchmark on a fresh boot. *)
  let k = Apps.Runner.boot ~profile:Sim.Profile.asterinas in
  let host = Aster.Kernel.attach_host k in
  Apps.Mini_redis.spawn ();
  let out = ref None in
  Apps.Redis_bench.run_op ~host ~op:"SET" ~clients:16 ~requests:3000 ~on_done:(fun r ->
      out := Some r);
  Apps.Runner.run ();
  match !out with
  | Some r -> Printf.printf "\nSET burst: %.0f requests/s\n" r.Apps.Redis_bench.rps
  | None -> ()
