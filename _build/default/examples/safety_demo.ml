(* A tour of the framekernel invariants: each scenario attempts exactly
   the misuse the invariant forbids and shows OSTD stopping it.

     dune exec examples/safety_demo.exe *)

let scenario name f =
  Sim.Profile.set Sim.Profile.asterinas;
  Ostd.Selftest.fresh_boot ();
  match f () with
  | () -> Printf.printf "  %-58s NOT CAUGHT (bug!)\n" name
  | exception Ostd.Panic.Kernel_panic msg ->
    Printf.printf "  %-58s caught: %s\n" name msg

let soft_scenario name f =
  (* For invariants enforced by refusal (Result) rather than panic. *)
  Sim.Profile.set Sim.Profile.asterinas;
  Ostd.Selftest.fresh_boot ();
  match f () with
  | Error msg -> Printf.printf "  %-58s refused: %s\n" name msg
  | Ok () -> Printf.printf "  %-58s NOT CAUGHT (bug!)\n" name

let () =
  print_endline "Framekernel invariant enforcement demo";
  print_endline "--------------------------------------";

  scenario "Inv.1  buggy allocator hands out an in-use frame" (fun () ->
      let f = Ostd.Frame.alloc ~untyped:true () in
      match Ostd.Frame.from_unused ~paddr:(Ostd.Frame.paddr f) ~pages:1 ~untyped:true with
      | Ok _ -> ()
      | Error e -> Ostd.Panic.panic e);

  scenario "Inv.4  untyped view onto kernel (typed) memory" (fun () ->
      let f = Ostd.Frame.alloc ~untyped:false () in
      ignore (Ostd.Untyped.read_u8 f ~off:0));

  scenario "Inv.5  mapping kernel memory into a user address space" (fun () ->
      let vm = Ostd.Vmspace.create () in
      Ostd.Vmspace.map vm ~vaddr:0x1000 (Ostd.Frame.alloc ~untyped:false ()) Ostd.Vmspace.rw);

  scenario "Inv.6  DMA mapping over kernel (typed) memory" (fun () ->
      ignore (Ostd.Dma.Stream.map (Ostd.Frame.alloc ~untyped:false ()) ~dev:7));

  soft_scenario "Inv.7  driver claims the local APIC's MMIO window" (fun () ->
      match Ostd.Io_mem.acquire ~base:Machine.Board.lapic_base ~size:16 with
      | Ok _ -> Ok ()
      | Error e -> Error e);

  (* Inv.3: a device signalling a vector it was never granted. *)
  Sim.Profile.set Sim.Profile.asterinas;
  Ostd.Selftest.fresh_boot ();
  let line = Ostd.Irq.alloc () in
  let fired = ref false in
  Ostd.Irq.set_handler line (fun () -> fired := true);
  Ostd.Irq.bind_device line ~dev:5;
  Machine.Irq_chip.raise_irq (Machine.Irq_chip.Device 6) ~vector:(Ostd.Irq.vector line);
  ignore (Sim.Events.run_next ());
  Printf.printf "  %-58s %s\n" "Inv.3  spoofed interrupt from an unbound device"
    (if !fired then "NOT CAUGHT (bug!)"
     else
       Printf.sprintf "blocked by interrupt remapping (%d spoof%s counted)"
         (Machine.Irq_chip.blocked_spoofs ())
         (if Machine.Irq_chip.blocked_spoofs () = 1 then "" else "s"));

  scenario "Inv.8  scheduler runs one task on two CPUs" (fun () ->
      (* A pick_next that re-offers the running task; the nested dispatch
         inside the task is the second CPU. *)
      Ostd.Boot.init ();
      Ostd.Falloc.inject (Ostd.Bootstrap_alloc.make ());
      Ostd.Boot.feed_free_memory ();
      let the_task = ref None in
      let module Buggy = struct
        let enqueue t = the_task := Some t
        let pick_next () = !the_task
        let update_curr () = ()
        let dequeue_curr () = ()
      end in
      Ostd.Task.inject_scheduler (module Buggy);
      ignore (Ostd.Task.spawn (fun () -> Ostd.Task.run ()));
      Ostd.Task.run ());

  scenario "Inv.9  destroying a slab with live objects" (fun () ->
      let s = Ostd.Slab.create ~slot_size:64 ~pages:1 in
      let slot = Option.get (Ostd.Slab.alloc s) in
      let _box = Ostd.Slab.into_box slot ~size:16 ~align:8 () in
      Ostd.Slab.destroy s);

  scenario "Inv.10 boxing an object into a too-small slot" (fun () ->
      let s = Ostd.Slab.create ~slot_size:32 ~pages:1 in
      let slot = Option.get (Ostd.Slab.alloc s) in
      ignore (Ostd.Slab.into_box slot ~size:64 ~align:8 "oversized"));

  scenario "atomic  sleeping while holding a spin lock" (fun () ->
      let lock = Ostd.Sync.Spin_lock.create "demo" in
      ignore
        (Ostd.Task.spawn (fun () ->
             Ostd.Sync.Spin_lock.with_lock lock (fun () -> Ostd.Task.sleep_us 1.)));
      Ostd.Task.run ());

  scenario "stack  guard page catches runaway recursion" (fun () ->
      let k = Ostd.Kstack.create () in
      let rec deep n = if n > 0 then Ostd.Kstack.with_frame k ~bytes:4000 (fun () -> deep (n - 1)) in
      deep 64)
