examples/safety_demo.mli:
