examples/kernmiri_demo.mli:
