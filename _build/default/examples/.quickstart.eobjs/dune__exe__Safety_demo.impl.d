examples/safety_demo.ml: Machine Option Ostd Printf Sim
