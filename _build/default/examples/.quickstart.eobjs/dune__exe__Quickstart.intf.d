examples/quickstart.mli:
