examples/kernmiri_demo.ml: Kernmiri List Printf
