examples/kv_store.ml: Apps Aster Bytes List Ostd Printf Sim
