examples/web_server.ml: Apps Aster List Machine Printf Sim String
