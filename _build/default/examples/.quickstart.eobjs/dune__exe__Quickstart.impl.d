examples/quickstart.ml: Array Bytes Int64 Ostd Printf Sim String
