(** Charge helpers: read the installed {!Profile} and advance the clock. *)

val c : unit -> Profile.costs
(** Cost table of the installed profile. *)

val charge : int -> unit
(** Advance the virtual clock. *)

val charge_user_copy : int -> unit
(** Charge a user<->kernel copy of [n] bytes. *)

val charge_memcpy : int -> unit
(** Charge an in-kernel copy of [n] bytes. *)

val charge_zero_fill : int -> unit
(** Charge a memset of [n] zero bytes (hole reads, fresh pages). *)

val charge_page_drop : int -> unit
(** Charge the page-cache removal of [n] pages (truncate). *)

val charge_safety : (Profile.safety_costs -> int) -> unit
(** Charge one safety check, but only when the installed profile runs
    OSTD safety checks; selects the per-check cost from the table. *)

val charge_us : float -> unit
(** Charge a duration given in microseconds. *)

val charge_ring_update : unit -> unit
(** Charge a suppressed-notify virtqueue ring update (no VM exit). *)
