(** Log-bucketed (HDR-style) latency histograms.

    Replaces unbounded [Stats.sample] lists on hot paths: constant
    memory, O(1) record, and percentile estimates whose relative error
    is bounded by the sub-bucket width (1/16 of an octave). Buckets
    track count and sum, so a percentile that lands in a bucket reports
    that bucket's mean — exact for constant and two-point
    distributions. Recording charges no virtual cycles. *)

type t

val create : unit -> t
val record : t -> float -> unit

val count : t -> int
val mean : t -> float
val max_value : t -> float
val min_value : t -> float

val percentile : t -> float -> float option
(** [percentile t 99.] is the p99 estimate; [None] on an empty
    histogram, so table renderers cannot mistake "no samples" for a
    measured 0.0. *)

val percentile_exn : t -> float -> float
(** Like {!percentile} for callers that have already checked
    [count t > 0]. @raise Invalid_argument on an empty histogram. *)

(** {2 Named registry (mirrors [Stats] counters)} *)

val reset : unit -> unit
val observe : string -> float -> unit
val named : string -> t
val find : string -> t option
val all : unit -> (string * t) list
val by_prefix : string -> (string * t) list

val summary_line : string -> t -> string
(** One table row: name, count, p50, p90, p99, max. *)

val summary_header : string
