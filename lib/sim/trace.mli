(** ktrace: deterministic kernel-wide tracing.

    A bounded ring buffer of structured records
    [{cycles; task; category; name; args}] with per-category enable
    masks, an overflow counter, and an ftrace-style text renderer.
    Emission charges no virtual cycles and every input is
    deterministic, so the same seed yields a byte-identical trace.
    All categories are off by default: with a category disabled,
    [emit] returns before evaluating the args closure and the ring
    stays empty. *)

type category =
  | Syscall
  | Sched
  | Irq
  | Softirq
  | Pgfault
  | Blk
  | Net
  | Dma
  | Lock
  | Chaos
  | Probe

val all_categories : category list
val category_name : category -> string
val category_of_string : string -> category option
val bit : category -> int

type record = {
  cycles : int64;
  task : string;
  cat : category;
  name : string;
  args : string;
}

(** {2 Enable mask} *)

val enabled : category -> bool
val enable : category -> unit
val disable : category -> unit
val enable_all : unit -> unit
val disable_all : unit -> unit
val enabled_categories : unit -> category list

val mask_value : unit -> int
(** The raw enable bitmask ([bit]-weighted sum of enabled categories). *)

val set_mask : int -> unit
(** Set the raw bitmask; bits that match no category are ignored. *)

(** {2 Emission} *)

val emit : category -> string -> (unit -> string) -> unit
(** [emit cat name args] appends a record if [cat] is enabled; [args]
    is only evaluated (and the record only built) in that case. *)

val set_task_provider : (unit -> string) -> unit
(** Injected by the task layer; defaults to ["-"]. *)

val set_span_provider : (unit -> int) -> unit
(** Injected by kspan; defaults to [fun () -> 0]. When it returns a
    nonzero id at emission time, [" span=<id>"] is appended to the
    record's args. *)

(** {2 The ring} *)

val capacity : unit -> int
val set_capacity : int -> unit
(** Resize (and clear) the ring. *)

val clear : unit -> unit
(** Drop buffered records and zero the counters; keeps mask and size. *)

val reset : unit -> unit
(** [clear] + disable everything + restore the default capacity. *)

val length : unit -> int
val dropped : unit -> int
(** Records overwritten because the ring was full. *)

val total : unit -> int
(** Records ever emitted (buffered + dropped). *)

val records : unit -> record list
(** Oldest first; at most [capacity ()] entries (newest are kept). *)

(** {2 Rendering} *)

val render_record : record -> string
val render : ?limit:int -> unit -> string
(** The buffered records, newest-[limit] (default all), one per line. *)

(** {2 Probe attach plane}

    Structured tracepoints for verified probe programs (lib/kprobe).
    [fire] hands attached consumers a raw [int64 array] whose per-point
    layout is fixed by [attach_fields]; the kprobe verifier whitelists
    field accesses against exactly these layouts. With nothing attached
    [fire] is a single bitmask test and the fields thunk is never
    evaluated, so a detached run is bit-identical to one without the
    tracepoint. Consumers charge no virtual cycles. *)

type attach_point =
  | P_syscall_enter
  | P_syscall_exit
  | P_blk_issue
  | P_blk_complete
  | P_net_tx
  | P_net_rx
  | P_sched_switch
  | P_sched_wakeup
  | P_irq_entry
  | P_jbd_commit
  | P_chaos_inject

val all_attach_points : attach_point list
val attach_name : attach_point -> string
val attach_of_string : string -> attach_point option

val attach_fields : attach_point -> string array
(** Whitelisted context-field names; the array index is the slot the
    firing site writes. *)

val attach : attach_point -> name:string -> (int64 array -> unit) -> unit
(** Register a consumer. Consumers run in attach order (load order), so
    execution is deterministic. *)

val detach : attach_point -> name:string -> unit
val detach_name : string -> unit
(** Detach [name] from every attach point. *)

val detach_all : unit -> unit
val attached : attach_point -> bool
val any_attached : unit -> bool

val fire : attach_point -> (unit -> int64 array) -> unit
(** [fire ap fields] runs every consumer attached to [ap] on
    [fields ()]; when none is attached, [fields] is not evaluated. *)
