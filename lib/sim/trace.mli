(** ktrace: deterministic kernel-wide tracing.

    A bounded ring buffer of structured records
    [{cycles; task; category; name; args}] with per-category enable
    masks, an overflow counter, and an ftrace-style text renderer.
    Emission charges no virtual cycles and every input is
    deterministic, so the same seed yields a byte-identical trace.
    All categories are off by default: with a category disabled,
    [emit] returns before evaluating the args closure and the ring
    stays empty. *)

type category =
  | Syscall
  | Sched
  | Irq
  | Softirq
  | Pgfault
  | Blk
  | Net
  | Dma
  | Lock
  | Chaos

val all_categories : category list
val category_name : category -> string
val category_of_string : string -> category option

type record = {
  cycles : int64;
  task : string;
  cat : category;
  name : string;
  args : string;
}

(** {2 Enable mask} *)

val enabled : category -> bool
val enable : category -> unit
val disable : category -> unit
val enable_all : unit -> unit
val disable_all : unit -> unit
val enabled_categories : unit -> category list

(** {2 Emission} *)

val emit : category -> string -> (unit -> string) -> unit
(** [emit cat name args] appends a record if [cat] is enabled; [args]
    is only evaluated (and the record only built) in that case. *)

val set_task_provider : (unit -> string) -> unit
(** Injected by the task layer; defaults to ["-"]. *)

(** {2 The ring} *)

val capacity : unit -> int
val set_capacity : int -> unit
(** Resize (and clear) the ring. *)

val clear : unit -> unit
(** Drop buffered records and zero the counters; keeps mask and size. *)

val reset : unit -> unit
(** [clear] + disable everything + restore the default capacity. *)

val length : unit -> int
val dropped : unit -> int
(** Records overwritten because the ring was full. *)

val total : unit -> int
(** Records ever emitted (buffered + dropped). *)

val records : unit -> record list
(** Oldest first; at most [capacity ()] entries (newest are kept). *)

(** {2 Rendering} *)

val render_record : record -> string
val render : ?limit:int -> unit -> string
(** The buffered records, newest-[limit] (default all), one per line. *)
