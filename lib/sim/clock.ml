let cycles_per_us = 3000

let current = ref 0L

let reset () = current := 0L

let now () = !current

(* kprof taps the clock here: every way virtual time can move forward —
   an explicit charge or an event-driven jump — reports its delta to the
   observer, so an attribution profiler sees exactly the cycles that
   elapse and nothing else (the conservation invariant). The default
   observer is a no-op; profiling never charges cycles itself. *)
let on_advance : (int64 -> unit) ref = ref (fun _ -> ())

let set_on_advance f = on_advance := f

let clear_on_advance () = on_advance := (fun _ -> ())

(* A second, independent observer slot so kspan can watch the clock
   without stealing kprof's tap (and vice versa). Registered once at
   module init by Span; the span plane gates itself internally. *)
let on_advance2 : (int64 -> unit) ref = ref (fun _ -> ())

let set_on_advance2 f = on_advance2 := f

let charge n =
  if n < 0 then invalid_arg "Clock.charge: negative cost";
  if n > 0 then begin
    let d = Int64.of_int n in
    current := Int64.add !current d;
    !on_advance d;
    !on_advance2 d
  end

let advance_to t =
  if Int64.compare t !current > 0 then begin
    let d = Int64.sub t !current in
    current := t;
    !on_advance d;
    !on_advance2 d
  end

let to_us t = Int64.to_float t /. float_of_int cycles_per_us

let to_seconds t = to_us t /. 1_000_000.

let us x = int_of_float (x *. float_of_int cycles_per_us)
