(* Log-bucketed (HDR-style) histograms. One octave is split into
   [subdiv] sub-buckets, so the relative width of any bucket — and
   therefore the worst-case relative error of a percentile estimate —
   is bounded by 1/subdiv. Each bucket tracks count and sum, so the
   reported percentile is the mean of the bucket it lands in: exact for
   distributions that never split a bucket (constant, two-point),
   within bucket width otherwise. *)

let subdiv = 16

(* frexp exponents from e_min to e_max cover ~3e-5 .. ~3e14: sub-cycle
   latencies up to ~27 hours of virtual time at 3 GHz. *)
let e_min = -15

let e_max = 49

let nbuckets = 2 + ((e_max - e_min) * subdiv) (* + zero and overflow buckets *)

type t = {
  mutable count : int;
  mutable sum : float;
  mutable max_v : float;
  mutable min_v : float;
  counts : int array;
  sums : float array;
}

let create () =
  {
    count = 0;
    sum = 0.;
    max_v = neg_infinity;
    min_v = infinity;
    counts = Array.make nbuckets 0;
    sums = Array.make nbuckets 0.;
  }

let bucket_of v =
  if v <= 0. then 0
  else begin
    let m, e = Float.frexp v in
    if e < e_min then 0
    else if e > e_max then nbuckets - 1
    else begin
      (* m is in [0.5, 1): spread it over subdiv sub-buckets. *)
      let sub = int_of_float ((m -. 0.5) *. 2. *. float_of_int subdiv) in
      1 + (((e - e_min) * subdiv) + min sub (subdiv - 1))
    end
  end

let record t v =
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v > t.max_v then t.max_v <- v;
  if v < t.min_v then t.min_v <- v;
  let i = bucket_of v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.sums.(i) <- t.sums.(i) +. v

let count t = t.count

let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count

let max_value t = if t.count = 0 then 0. else t.max_v

let min_value t = if t.count = 0 then 0. else t.min_v

(* An empty histogram has no percentiles: return [None] rather than a
   made-up 0.0 so table renderers must decide how to show the absence
   (they print "-"). Callers that have already checked [count t > 0]
   can use [percentile_exn]. *)
let percentile t p =
  if t.count = 0 then None
  else begin
    let p = Float.min 100. (Float.max 0. p) in
    let rank = max 1 (int_of_float (ceil (p /. 100. *. float_of_int t.count))) in
    let rec walk i cum =
      if i >= nbuckets then t.max_v
      else begin
        let cum = cum + t.counts.(i) in
        if cum >= rank then t.sums.(i) /. float_of_int t.counts.(i) else walk (i + 1) cum
      end
    in
    Some (walk 0 0)
  end

let percentile_exn t p =
  match percentile t p with
  | Some v -> v
  | None -> invalid_arg "Hist.percentile_exn: empty histogram"

(* --- Named registry, mirroring Stats counters --- *)

let table : (string, t) Hashtbl.t = Hashtbl.create 32

let reset () = Hashtbl.reset table

let named name =
  match Hashtbl.find_opt table name with
  | Some h -> h
  | None ->
    let h = create () in
    Hashtbl.add table name h;
    h

let observe name v = record (named name) v

let find name = Hashtbl.find_opt table name

let all () =
  Hashtbl.fold (fun k h acc -> (k, h) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let by_prefix prefix =
  List.filter (fun (k, _) -> String.starts_with ~prefix k) (all ())

let summary_line name t =
  let cell p =
    match percentile t p with
    | Some v -> Printf.sprintf "%10.3f" v
    | None -> Printf.sprintf "%10s" "-"
  in
  let max_cell =
    if t.count = 0 then Printf.sprintf "%10s" "-"
    else Printf.sprintf "%10.3f" (max_value t)
  in
  Printf.sprintf "%-28s %8d %s %s %s %s" name t.count (cell 50.) (cell 90.) (cell 99.)
    max_cell

let summary_header =
  Printf.sprintf "%-28s %8s %10s %10s %10s %10s" "name" "count" "p50" "p90" "p99" "max"
