(* kprof: a deterministic cycle-attribution profiler.

   The simulator already charges every mechanism's cost through
   [Clock.charge] (and advances over device waits with
   [Clock.advance_to]); kprof turns those charge points into a
   profiler. Each execution context — a task, or the idle/event loop —
   carries a stack of named scopes ([scope "ext2" f], plus implicit
   scopes per syscall, IRQ vector and softirq pushed by the kernel
   layers). Every cycle the clock moves is attributed to the current
   (context × scope-stack), accumulated under a folded-stack key
   ["ctx;a;b"] — the same format flamegraph.pl consumes.

   Invariants:
   - Conservation: between [clear]/[enable] and now, the folded totals
     sum to exactly the elapsed virtual cycles, because the only two
     ways time advances both report their delta to [attribute].
   - Zero cost: kprof never charges virtual cycles and never consumes
     randomness, so a profiled same-seed run is byte-identical to, and
     ends at the same virtual timestamp as, an unprofiled one.
   - Determinism: all inputs (clock deltas, task names, scope order)
     are deterministic, and rendering sorts keys, so the same seed
     yields byte-identical folded output. *)

type ctx = {
  cname : string;
  mutable stack : string list; (* innermost scope first *)
  mutable key : string; (* cached folded key: cname;outer;...;inner *)
  mutable cell : int64 ref; (* cached totals slot for [key] *)
}

let totals : (string, int64 ref) Hashtbl.t = Hashtbl.create 256

let ctxs : (string, ctx) Hashtbl.t = Hashtbl.create 64

let idle_name = "idle/0"

let enabled_flag = ref false

let anchor = ref 0L

let cell_of key =
  match Hashtbl.find_opt totals key with
  | Some r -> r
  | None ->
    let r = ref 0L in
    Hashtbl.add totals key r;
    r

let make_ctx name =
  { cname = name; stack = []; key = name; cell = cell_of name }

let ctx_of name =
  match Hashtbl.find_opt ctxs name with
  | Some c -> c
  | None ->
    let c = make_ctx name in
    Hashtbl.add ctxs name c;
    c

let current = ref (make_ctx idle_name)

let rekey c =
  (match c.stack with
  | [] -> c.key <- c.cname
  | st -> c.key <- c.cname ^ ";" ^ String.concat ";" (List.rev st));
  c.cell <- cell_of c.key

(* The Clock observer: one add per clock advancement. *)
let attribute d =
  let cell = !current.cell in
  cell := Int64.add !cell d

(* Drop all accumulated attribution and re-anchor conservation at the
   current virtual time. Called at boot (the clock rewinds to zero) so
   a profile covers exactly the run since the last boot. *)
let clear () =
  Hashtbl.reset totals;
  Hashtbl.reset ctxs;
  current := ctx_of idle_name;
  anchor := Clock.now ()

let enabled () = !enabled_flag

let enable () =
  if not !enabled_flag then begin
    enabled_flag := true;
    clear ();
    Clock.set_on_advance attribute
  end

let disable () =
  if !enabled_flag then begin
    enabled_flag := false;
    Clock.clear_on_advance ()
  end

let reset () =
  disable ();
  clear ()

(* --- Context switching, driven by the task layer ---

   Context and scope-stack bookkeeping is unconditional: it costs no
   virtual cycles either way, and kspan labels on-CPU segments with the
   innermost scope ([current_label]) whether or not kprof attribution
   is enabled. Only attribution itself — the clock observer — stays
   gated behind [enable]. *)

let switch_to name = current := ctx_of name

let switch_idle () = current := ctx_of idle_name

(* --- Scopes ---

   A scope pushed inside a task survives the task's suspensions: the
   stack lives on the context, not on the host call stack, and the pop
   targets the context that was pushed to — so cycles charged after the
   task resumes keep attributing to the right frame, and completion
   work running in another context is unaffected. *)

let scope name f =
  let c = !current in
  c.stack <- name :: c.stack;
  rekey c;
  Fun.protect
    ~finally:(fun () ->
      (match c.stack with _ :: rest -> c.stack <- rest | [] -> ());
      rekey c)
    f

let current_label () = match !current.stack with s :: _ -> s | [] -> "user"

(* --- Reporting --- *)

let elapsed () = Int64.sub (Clock.now ()) !anchor

let total_attributed () = Hashtbl.fold (fun _ r acc -> Int64.add acc !r) totals 0L

let conserved () = Int64.equal (total_attributed ()) (elapsed ())

(* Folded stacks, flamegraph.pl-compatible: "ctx;a;b CYCLES" per line,
   sorted by key so same-seed output is byte-identical. *)
let folded () =
  Hashtbl.fold (fun k r acc -> if Int64.equal !r 0L then acc else (k, !r) :: acc) totals []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let render_folded () =
  String.concat "\n" (List.map (fun (k, c) -> Printf.sprintf "%s %Ld" k c) (folded ()))

type frame_stat = { frame : string; self : int64; total : int64; depth0 : bool }

(* Per-frame self/total rollup: [self] is cycles attributed with the
   frame innermost; [total] counts each folded key's cycles once per
   distinct frame on it (recursion does not double-count). [depth0]
   marks context roots (task names), which the scope table filters. *)
let frame_stats () =
  let tbl : (string, int64 ref * int64 ref * bool ref) Hashtbl.t = Hashtbl.create 64 in
  let slot f =
    match Hashtbl.find_opt tbl f with
    | Some s -> s
    | None ->
      let s = (ref 0L, ref 0L, ref false) in
      Hashtbl.add tbl f s;
      s
  in
  List.iter
    (fun (key, cyc) ->
      let frames = String.split_on_char ';' key in
      let distinct = List.sort_uniq String.compare frames in
      List.iter
        (fun f ->
          let _, tot, _ = slot f in
          tot := Int64.add !tot cyc)
        distinct;
      (match List.rev frames with
      | leaf :: _ ->
        let self, _, _ = slot leaf in
        self := Int64.add !self cyc
      | [] -> ());
      match frames with
      | root :: _ ->
        let _, _, d0 = slot root in
        d0 := true
      | [] -> ())
    (folded ());
  Hashtbl.fold
    (fun frame (self, total, d0) acc ->
      { frame; self = !self; total = !total; depth0 = !d0 } :: acc)
    tbl []
  |> List.sort (fun a b ->
         let c = Int64.compare b.total a.total in
         if c <> 0 then c else String.compare a.frame b.frame)

(* Named scopes only (contexts filtered out), by descending total. *)
let top_scopes ?(limit = 10) () =
  frame_stats ()
  |> List.filter (fun s -> not s.depth0)
  |> List.filteri (fun i _ -> i < limit)

let render_top ?(limit = 20) () =
  let el = Int64.to_float (elapsed ()) in
  let pct c = if el <= 0. then 0. else 100. *. Int64.to_float c /. el in
  let rows =
    frame_stats () |> List.filteri (fun i _ -> i < limit)
    |> List.map (fun s ->
           Printf.sprintf "%-32s %14Ld %6.2f%% %14Ld %6.2f%%" s.frame s.self (pct s.self)
             s.total (pct s.total))
  in
  String.concat "\n"
    (Printf.sprintf "%-32s %14s %7s %14s %7s" "scope" "self" "self%" "total" "total%" :: rows)
