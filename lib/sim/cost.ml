let c () = (Profile.get ()).Profile.costs

let charge = Clock.charge

let per_byte bpc n = if bpc <= 0 then 0 else (n + bpc - 1) / bpc

let charge_user_copy n = Clock.charge (per_byte (c ()).Profile.user_copy_bpc n)

let charge_memcpy n = Clock.charge (per_byte (c ()).Profile.memcpy_bpc n)

let charge_zero_fill n = Clock.charge (per_byte (c ()).Profile.zero_fill_bpc n)

let charge_page_drop n = Clock.charge (n * (c ()).Profile.page_drop)

let charge_safety select =
  if Profile.checks_on () then Clock.charge (select (c ()).Profile.safety)

let charge_us x = Clock.charge (Clock.us x)

(* Adding a descriptor to a virtqueue a busy device is already pulling
   from: a ring update plus a suppressed notify, no VM exit. Shared by
   the blk and net drivers so the suppression economy is charged
   uniformly. *)
let charge_ring_update () = Clock.charge 60
