type safety_costs = {
  boundary_check : int;
  iomem_check : int;
  guard_page : int;
  running_flag : int;
  ownership_check : int;
  slab_fit_check : int;
}

type costs = {
  syscall : int;
  user_copy_bpc : int;
  memcpy_bpc : int;
  context_switch : int;
  fd_lookup : int;
  path_component : int;
  path_component_fast : int;
  open_misc : int;
  fault_entry : int;
  map_page : int;
  mmap_per_page : int;
  unmap_page : int;
  fork_base : int;
  fork_per_page : int;
  exec_base : int;
  exit_base : int;
  pipe_op : int;
  unix_op : int;
  wakeup : int;
  tcp_tx_segment : int;
  tcp_rx_segment : int;
  tcp_rx_small : int;
  tcp_rx_small_bpc : int;
  tcp_rx_bpc : int;
  tcp_csum_cycles : int;
  tcp_small_write : int;
  tcp_conn_setup : int;
  udp_packet : int;
  loopback_delivery : int;
  net_wake : int;
  blk_issue : int;
  blk_us_per_op : float;
  blk_us_per_desc : float;
  blk_dev_bpc : float;
  net_us_per_pkt : float;
  net_us_per_kick : float;
  net_us_per_desc : float;
  net_dev_bpc : float;
  mmio_access : int;
  doorbell : int;
  irq_entry : int;
  softirq : int;
  dma_map : int;
  dma_unmap : int;
  iotlb_hit : int;
  iotlb_miss : int;
  alloc_frame : int;
  kmalloc : int;
  stat_fill : int;
  fs_new_page : int;
  page_drop : int;
  zero_fill_bpc : int;
  sched_pick : int;
  timer_program : int;
  safety : safety_costs;
}

type t = {
  name : string;
  safety_checks : bool;
  iommu : bool;
  dma_pooling : bool;
  blk_pooling_complete : bool;
  blk_batching : bool;
  blk_readahead : bool;
  ext2_journal : bool;
  ext2_journal_data : bool;
  net_tx_batching : bool;
  net_irq_coalesce : bool;
  tcp_congestion_control : bool;
  tcp_gso : bool;
  gso_max_size : int;
  net_gro : bool;
  csum_tx_offload : bool;
  csum_rx_offload : bool;
  rcu_walk : bool;
  sendfile_zero_copy : bool;
  unix_double_copy : bool;
  pipe_buffer : int;
  unix_buffer : int;
  tcp_sndbuf : int;
  costs : costs;
}

(* Safety-check charges follow Table 8 of the paper (cycles). *)
let ostd_safety =
  {
    boundary_check = 3;
    iomem_check = 170;
    guard_page = 25;
    running_flag = 1;
    ownership_check = 12;
    slab_fit_check = 1;
  }

let no_safety =
  {
    boundary_check = 0;
    iomem_check = 0;
    guard_page = 0;
    running_flag = 0;
    ownership_check = 0;
    slab_fit_check = 0;
  }

(* Cycle constants calibrated so the Linux profile lands near the paper's
   Linux column on an i7-10700 at ~3 GHz (Table 7). *)
let linux_costs =
  {
    syscall = 150;
    user_copy_bpc = 10;
    memcpy_bpc = 6;
    context_switch = 900;
    fd_lookup = 40;
    path_component = 450;
    path_component_fast = 190;
    open_misc = 1250;
    fault_entry = 30;
    map_page = 45;
    mmap_per_page = 52;
    unmap_page = 70;
    fork_base = 64000;
    fork_per_page = 140;
    exec_base = 450000;
    exit_base = 12000;
    pipe_op = 420;
    unix_op = 1200;
    wakeup = 350;
    tcp_tx_segment = 1600;
    tcp_rx_segment = 2300;
    tcp_rx_small = 150;
    tcp_rx_small_bpc = 8;
    tcp_rx_bpc = 16;
    tcp_csum_cycles = 300;
    tcp_small_write = 600;
    tcp_conn_setup = 5200;
    udp_packet = 1500;
    loopback_delivery = 500;
    net_wake = 4400;
    blk_issue = 1400;
    blk_us_per_op = 2.5;
    blk_us_per_desc = 0.35;
    blk_dev_bpc = 0.7;
    net_us_per_pkt = 3.8;
    net_us_per_kick = 0.3;
    net_us_per_desc = 0.15;
    net_dev_bpc = 0.38;
    mmio_access = 10818;
    doorbell = 2500;
    irq_entry = 600;
    softirq = 300;
    dma_map = 900;
    dma_unmap = 1400;
    iotlb_hit = 6;
    iotlb_miss = 250;
    alloc_frame = 150;
    kmalloc = 147;
    stat_fill = 450;
    fs_new_page = 1200;
    page_drop = 220;
    zero_fill_bpc = 16;
    sched_pick = 120;
    timer_program = 80;
    safety = no_safety;
  }

(* Asterinas constants: slightly costlier trap path (safe-Rust
   abstractions), a leaner network stack (smoltcp-style), and a simpler
   unix-socket/pipe fast path; the remaining deltas come from mechanism
   switches rather than constants. *)
let asterinas_costs =
  {
    linux_costs with
    syscall = 198;
    context_switch = 880;
    path_component = 380;
    open_misc = 1100;
    fault_entry = 15;
    map_page = 40;
    mmap_per_page = 45;
    fork_base = 60000;
    fork_per_page = 134;
    exec_base = 380000;
    pipe_op = 430;
    unix_op = 1100;
    tcp_tx_segment = 600;
    tcp_rx_segment = 500;
    tcp_csum_cycles = 150;
    tcp_small_write = 200;
    tcp_conn_setup = 900;
    udp_packet = 700;
    loopback_delivery = 300;
    net_wake = 1200;
    blk_issue = 1550;
    irq_entry = 650;
    alloc_frame = 150;
    kmalloc = 147;
    stat_fill = 320;
    safety = ostd_safety;
  }

let linux =
  {
    name = "linux";
    safety_checks = false;
    iommu = false;
    dma_pooling = false;
    blk_pooling_complete = false;
    blk_batching = true;
    blk_readahead = true;
    ext2_journal = true;
    ext2_journal_data = false;
    net_tx_batching = true;
    net_irq_coalesce = true;
    tcp_congestion_control = true;
    tcp_gso = true;
    gso_max_size = 64 * 1024;
    net_gro = true;
    csum_tx_offload = true;
    csum_rx_offload = true;
    rcu_walk = true;
    sendfile_zero_copy = true;
    unix_double_copy = true;
    pipe_buffer = 64 * 1024;
    unix_buffer = 64 * 1024;
    tcp_sndbuf = 256 * 1024;
    costs = linux_costs;
  }

let asterinas =
  {
    name = "asterinas";
    safety_checks = true;
    iommu = true;
    dma_pooling = true;
    blk_pooling_complete = false;
    blk_batching = true;
    blk_readahead = true;
    ext2_journal = true;
    ext2_journal_data = false;
    net_tx_batching = true;
    net_irq_coalesce = true;
    tcp_congestion_control = false;
    tcp_gso = true;
    gso_max_size = 64 * 1024;
    net_gro = true;
    csum_tx_offload = true;
    csum_rx_offload = true;
    rcu_walk = false;
    sendfile_zero_copy = true;
    unix_double_copy = false;
    pipe_buffer = 256 * 1024;
    unix_buffer = 256 * 1024;
    tcp_sndbuf = 256 * 1024;
    costs = asterinas_costs;
  }

let asterinas_no_iommu = { asterinas with name = "asterinas-no-iommu"; iommu = false }

let with_safety_checks b t =
  let costs = { t.costs with safety = (if b then ostd_safety else no_safety) } in
  { t with safety_checks = b; costs }

let with_iommu b t = { t with iommu = b }

let with_dma_pooling b t = { t with dma_pooling = b }

let with_blk_batching b t = { t with blk_batching = b }

let with_blk_readahead b t = { t with blk_readahead = b }

let with_ext2_journal b t = { t with ext2_journal = b }

let with_ext2_journal_data b t = { t with ext2_journal_data = b }

let with_net_tx_batching b t = { t with net_tx_batching = b }

let with_net_irq_coalesce b t = { t with net_irq_coalesce = b }

let with_tcp_gso b t = { t with tcp_gso = b }

let with_gso_max_size n t = { t with gso_max_size = n }

let with_net_gro b t = { t with net_gro = b }

let with_csum_offload b t = { t with csum_tx_offload = b; csum_rx_offload = b }

let with_sendfile_zero_copy b t = { t with sendfile_zero_copy = b }

(* The ablation-matrix convenience: every offload this PR models, as one
   switch. [with_all_offloads false] is the honest software baseline
   (per-MSS segmentation, per-frame RX charges, software checksums, the
   bounce-buffer sendfile). *)
let with_all_offloads b t =
  {
    t with
    tcp_gso = b;
    net_gro = b;
    csum_tx_offload = b;
    csum_rx_offload = b;
    sendfile_zero_copy = b;
  }

let current = ref asterinas

let set p = current := p

let get () = !current

let checks_on () = !current.safety_checks
