let table : (string, int ref) Hashtbl.t = Hashtbl.create 64

let series : (string, float list ref) Hashtbl.t = Hashtbl.create 16

let reset () =
  Hashtbl.reset table;
  Hashtbl.reset series

let counter name =
  match Hashtbl.find_opt table name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add table name r;
    r

let incr name = Stdlib.incr (counter name)

let add name n =
  let r = counter name in
  r := !r + n

let get name = match Hashtbl.find_opt table name with Some r -> !r | None -> 0

let sample name x =
  match Hashtbl.find_opt series name with
  | Some r -> r := x :: !r
  | None -> Hashtbl.add series name (ref [ x ])

let samples name =
  match Hashtbl.find_opt series name with
  | Some r -> List.rev !r
  | None -> []

let mean name =
  match samples name with
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let counters () =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let by_prefix prefix =
  List.filter (fun (k, _) -> String.starts_with ~prefix k) (counters ())

let sum_prefix prefix = List.fold_left (fun a (_, n) -> a + n) 0 (by_prefix prefix)

(* The chaos-observability quartet: how many faults were injected, how
   many operations were retried because of them, how many ultimately
   recovered, and how many were given up on. Degradation paths report
   under the degrade.{retried,recovered,gave_up}.* prefixes, so a new
   site is in the quartet the moment it bumps its counter — no list
   here to keep in sync. *)
let fault_report () =
  [
    ("injected", sum_prefix "fault.injected.");
    ("retried", sum_prefix "degrade.retried.");
    ("recovered", sum_prefix "degrade.recovered.");
    ("gave_up", sum_prefix "degrade.gave_up.");
  ]

let geomean = function
  | [] -> 0.
  | xs ->
    let sum = List.fold_left (fun acc x -> acc +. log x) 0. xs in
    exp (sum /. float_of_int (List.length xs))
