type t = {
  rng : Rng.t;
  probs : (string, float) Hashtbl.t;
  counts : (string, int ref) Hashtbl.t;
  mutable log_rev : string list;
  mutable nlog : int;
}

let plane : t option ref = ref None

let armed = ref false

(* Deterministic one-shot triggers, independent of the probability
   plane: [set_trigger site ~after:k] makes the k-th [countdown site]
   call fire (0-based, so [~after:0] fires on the very first call).
   Used to enumerate crash points exactly — no randomness involved. *)
let triggers : (string, int ref) Hashtbl.t = Hashtbl.create 4

let set_trigger site ~after = Hashtbl.replace triggers site (ref after)

let clear_trigger site = Hashtbl.remove triggers site

(* FNV-1a over the site name: a stable int64 key so probe programs can
   aggregate per site through the chaos_inject attach point. *)
let site_id site =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    site;
  Int64.shift_right_logical !h 1 (* keep it non-negative for map keys *)

let countdown site =
  match Hashtbl.find_opt triggers site with
  | None -> false
  | Some r ->
    if !r < 0 then false
    else if !r = 0 then begin
      r := -1;
      Stats.incr ("fault.injected." ^ site);
      Trace.emit Trace.Chaos "trigger" (fun () -> Printf.sprintf "site=%s" site);
      Trace.fire Trace.P_chaos_inject (fun () -> [| site_id site; 1L |]);
      true
    end
    else begin
      decr r;
      false
    end

let configure ~seed sites =
  let probs = Hashtbl.create 16 in
  List.iter
    (fun (site, p) -> if p > 0. then Hashtbl.replace probs site (min p 1.))
    sites;
  plane :=
    Some { rng = Rng.create seed; probs; counts = Hashtbl.create 16; log_rev = []; nlog = 0 };
  armed := true

let disable () = armed := false

let reset () =
  plane := None;
  armed := false;
  Hashtbl.reset triggers

let enabled () = !armed && !plane <> None

let prob t site = match Hashtbl.find_opt t.probs site with Some p -> p | None -> 0.

let active site =
  match !plane with Some t when !armed -> prob t site > 0. | Some _ | None -> false

let record t site =
  (match Hashtbl.find_opt t.counts site with
  | Some r -> incr r
  | None -> Hashtbl.add t.counts site (ref 1));
  t.nlog <- t.nlog + 1;
  t.log_rev <- Printf.sprintf "%Ld %s #%d" (Clock.now ()) site t.nlog :: t.log_rev;
  Stats.incr ("fault.injected." ^ site);
  Trace.emit Trace.Chaos "inject" (fun () -> Printf.sprintf "site=%s n=%d" site t.nlog);
  Trace.fire Trace.P_chaos_inject (fun () -> [| site_id site; Int64.of_int t.nlog |])

let roll site =
  match !plane with
  | Some t when !armed ->
    let p = prob t site in
    (* Unconfigured sites must not consume randomness: schedules stay
       stable when new sites appear elsewhere in the tree. *)
    if p <= 0. then false
    else begin
      let fire = Rng.float t.rng 1.0 < p in
      if fire then record t site;
      fire
    end
  | Some _ | None -> false

let delay_cycles site ~max_cycles =
  if max_cycles <= 0 then 0
  else if roll site then
    match !plane with
    | Some t -> 1 + Rng.int t.rng max_cycles
    | None -> 0
  else 0

let burst site ~max =
  if max <= 0 then 0
  else if roll site then
    match !plane with Some t -> 1 + Rng.int t.rng max | None -> 0
  else 0

let injected site =
  match !plane with
  | Some t -> ( match Hashtbl.find_opt t.counts site with Some r -> !r | None -> 0)
  | None -> 0

let total_injected () = match !plane with Some t -> t.nlog | None -> 0

let log () = match !plane with Some t -> List.rev t.log_rev | None -> []

let summary () =
  match !plane with
  | None -> []
  | Some t ->
    Hashtbl.fold (fun site r acc -> (site, !r) :: acc) t.counts []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
