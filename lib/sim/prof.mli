(** kprof: deterministic cycle-attribution profiling.

    Turns the simulator's charge points into a profiler: every forward
    movement of the virtual clock is attributed to the current
    execution context (a task, or the idle/event loop) and its stack of
    named scopes, accumulated under folded-stack keys ["ctx;a;b"] — the
    format flamegraph.pl consumes.

    Invariants:
    - {b Conservation}: folded totals sum to exactly the virtual cycles
      elapsed since the last [clear]/boot.
    - {b Zero cost}: kprof never charges cycles and never consumes
      randomness, so a profiled same-seed run is byte-identical to an
      unprofiled one and ends at the same virtual timestamp.
    - {b Determinism}: rendering sorts keys, so same-seed profiled runs
      produce byte-identical folded output. *)

val enabled : unit -> bool

val enable : unit -> unit
(** Start attributing. Clears prior attribution and re-anchors
    conservation at the current virtual time. *)

val disable : unit -> unit
(** Stop attributing; accumulated totals remain readable. *)

val reset : unit -> unit
(** [disable] + drop all attribution. *)

val clear : unit -> unit
(** Drop attribution and re-anchor at the current virtual time; the
    enabled flag survives (configuration, not run state). Called by
    the board at boot, after the clock rewinds. *)

(** {2 Context switching} (driven by the task layer) *)

val switch_to : string -> unit
(** Subsequent cycles attribute to this context (e.g. ["nginx/3"]). *)

val switch_idle : unit -> unit
(** Subsequent cycles attribute to the idle/event-loop context. *)

(** {2 Scopes} *)

val scope : string -> (unit -> 'a) -> 'a
(** [scope name f] runs [f] with [name] pushed on the current context's
    scope stack. The stack lives on the context, not the host call
    stack, so it survives task suspension; the pop targets the context
    that was pushed to. Stack bookkeeping runs even when attribution is
    disabled (kspan reads it via [current_label]); only attribution is
    gated. *)

val current_label : unit -> string
(** The innermost scope of the current context, or ["user"] when the
    stack is empty — the label kspan gives on-CPU segments. *)

(** {2 Reporting} *)

val elapsed : unit -> int64
(** Cycles since the conservation anchor. *)

val total_attributed : unit -> int64

val conserved : unit -> bool
(** Whether [total_attributed () = elapsed ()] — exact, not approximate. *)

val folded : unit -> (string * int64) list
(** Nonzero folded stacks, sorted by key. *)

val render_folded : unit -> string
(** One ["ctx;a;b CYCLES"] line per folded stack. *)

type frame_stat = { frame : string; self : int64; total : int64; depth0 : bool }

val frame_stats : unit -> frame_stat list
(** Per-frame rollup, descending by total: [self] is cycles with the
    frame innermost; [total] counts each folded key once per distinct
    frame on it; [depth0] marks context roots. *)

val top_scopes : ?limit:int -> unit -> frame_stat list
(** Named scopes only (context roots filtered out). *)

val render_top : ?limit:int -> unit -> string
(** Table of top frames: self, self%%, total, total%%. *)
