(* ktrace: a deterministic, bounded ring buffer of structured trace
   records, in the spirit of ftrace's per-category tracepoints.

   Every record carries the virtual clock, the current task's name, a
   category, an event name, and a rendered argument string. Emission
   charges no virtual cycles, so enabling tracing never perturbs a
   benchmark number, and all inputs (clock, task names, event order)
   are deterministic, so the same seed yields a byte-identical trace.

   Categories are default-off: a disabled category's [emit] returns
   before building the record (the args closure is never called), so
   the ring stays empty and the run is bit-for-bit what it would have
   been without ktrace. *)

type category =
  | Syscall
  | Sched
  | Irq
  | Softirq
  | Pgfault
  | Blk
  | Net
  | Dma
  | Lock
  | Chaos

let all_categories = [ Syscall; Sched; Irq; Softirq; Pgfault; Blk; Net; Dma; Lock; Chaos ]

let bit = function
  | Syscall -> 1
  | Sched -> 2
  | Irq -> 4
  | Softirq -> 8
  | Pgfault -> 16
  | Blk -> 32
  | Net -> 64
  | Dma -> 128
  | Lock -> 256
  | Chaos -> 512

let category_name = function
  | Syscall -> "syscall"
  | Sched -> "sched"
  | Irq -> "irq"
  | Softirq -> "softirq"
  | Pgfault -> "pgfault"
  | Blk -> "blk"
  | Net -> "net"
  | Dma -> "dma"
  | Lock -> "lock"
  | Chaos -> "chaos"

let category_of_string = function
  | "syscall" -> Some Syscall
  | "sched" -> Some Sched
  | "irq" -> Some Irq
  | "softirq" -> Some Softirq
  | "pgfault" | "fault" -> Some Pgfault
  | "blk" | "block" -> Some Blk
  | "net" -> Some Net
  | "dma" -> Some Dma
  | "lock" -> Some Lock
  | "chaos" -> Some Chaos
  | _ -> None

type record = {
  cycles : int64;
  task : string;
  cat : category;
  name : string;
  args : string;
}

(* --- Enable mask: all categories off by default --- *)

let mask = ref 0

let enabled cat = !mask land bit cat <> 0

let enable cat = mask := !mask lor bit cat

let disable cat = mask := !mask land lnot (bit cat)

let enable_all () = List.iter enable all_categories

let disable_all () = mask := 0

let enabled_categories () = List.filter enabled all_categories

(* --- Task-name provider, injected by the task layer (ostd) so sim
   stays dependency-free. --- *)

let task_provider : (unit -> string) ref = ref (fun () -> "-")

let set_task_provider f = task_provider := f

(* --- The ring --- *)

let default_capacity = 8192

let dummy = { cycles = 0L; task = ""; cat = Syscall; name = ""; args = "" }

type ring = {
  mutable buf : record array;
  mutable head : int; (* next write slot *)
  mutable len : int;
  mutable dropped : int;
  mutable total : int;
}

let ring =
  { buf = Array.make default_capacity dummy; head = 0; len = 0; dropped = 0; total = 0 }

let capacity () = Array.length ring.buf

let set_capacity n =
  if n <= 0 then invalid_arg "Trace.set_capacity: capacity must be positive";
  ring.buf <- Array.make n dummy;
  ring.head <- 0;
  ring.len <- 0

let clear () =
  Array.fill ring.buf 0 (Array.length ring.buf) dummy;
  ring.head <- 0;
  ring.len <- 0;
  ring.dropped <- 0;
  ring.total <- 0

let reset () =
  disable_all ();
  if Array.length ring.buf <> default_capacity then ring.buf <- Array.make default_capacity dummy;
  clear ()

let push r =
  let cap = Array.length ring.buf in
  ring.buf.(ring.head) <- r;
  ring.head <- (ring.head + 1) mod cap;
  if ring.len < cap then ring.len <- ring.len + 1
  else ring.dropped <- ring.dropped + 1 (* overwrote the oldest record *);
  ring.total <- ring.total + 1

let emit cat name args =
  if enabled cat then
    push { cycles = Clock.now (); task = !task_provider (); cat; name; args = args () }

let dropped () = ring.dropped

let total () = ring.total

let length () = ring.len

let records () =
  let cap = Array.length ring.buf in
  let first = (ring.head - ring.len + cap) mod cap in
  List.init ring.len (fun i -> ring.buf.((first + i) mod cap))

(* --- ftrace-style text renderer --- *)

let render_record r =
  Printf.sprintf "%-16s [%12Ld] %s:%s%s" r.task r.cycles (category_name r.cat) r.name
    (if r.args = "" then "" else " " ^ r.args)

let render ?limit () =
  let rs = records () in
  let rs =
    match limit with
    | Some n when n < List.length rs ->
      List.filteri (fun i _ -> i >= List.length rs - n) rs
    | Some _ | None -> rs
  in
  String.concat "\n" (List.map render_record rs)
