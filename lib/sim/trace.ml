(* ktrace: a deterministic, bounded ring buffer of structured trace
   records, in the spirit of ftrace's per-category tracepoints.

   Every record carries the virtual clock, the current task's name, a
   category, an event name, and a rendered argument string. Emission
   charges no virtual cycles, so enabling tracing never perturbs a
   benchmark number, and all inputs (clock, task names, event order)
   are deterministic, so the same seed yields a byte-identical trace.

   Categories are default-off: a disabled category's [emit] returns
   before building the record (the args closure is never called), so
   the ring stays empty and the run is bit-for-bit what it would have
   been without ktrace. *)

type category =
  | Syscall
  | Sched
  | Irq
  | Softirq
  | Pgfault
  | Blk
  | Net
  | Dma
  | Lock
  | Chaos
  | Probe

let all_categories =
  [ Syscall; Sched; Irq; Softirq; Pgfault; Blk; Net; Dma; Lock; Chaos; Probe ]

let bit = function
  | Syscall -> 1
  | Sched -> 2
  | Irq -> 4
  | Softirq -> 8
  | Pgfault -> 16
  | Blk -> 32
  | Net -> 64
  | Dma -> 128
  | Lock -> 256
  | Chaos -> 512
  | Probe -> 1024

let category_name = function
  | Syscall -> "syscall"
  | Sched -> "sched"
  | Irq -> "irq"
  | Softirq -> "softirq"
  | Pgfault -> "pgfault"
  | Blk -> "blk"
  | Net -> "net"
  | Dma -> "dma"
  | Lock -> "lock"
  | Chaos -> "chaos"
  | Probe -> "probe"

let category_of_string = function
  | "syscall" -> Some Syscall
  | "sched" -> Some Sched
  | "irq" -> Some Irq
  | "softirq" -> Some Softirq
  | "pgfault" | "fault" -> Some Pgfault
  | "blk" | "block" -> Some Blk
  | "net" -> Some Net
  | "dma" -> Some Dma
  | "lock" -> Some Lock
  | "chaos" -> Some Chaos
  | "probe" | "kprobe" -> Some Probe
  | _ -> None

type record = {
  cycles : int64;
  task : string;
  cat : category;
  name : string;
  args : string;
}

(* --- Enable mask: all categories off by default --- *)

let mask = ref 0

let mask_value () = !mask

let set_mask m =
  let valid = List.fold_left (fun a c -> a lor bit c) 0 all_categories in
  mask := m land valid

let enabled cat = !mask land bit cat <> 0

let enable cat = mask := !mask lor bit cat

let disable cat = mask := !mask land lnot (bit cat)

let enable_all () = List.iter enable all_categories

let disable_all () = mask := 0

let enabled_categories () = List.filter enabled all_categories

(* --- Task-name provider, injected by the task layer (ostd) so sim
   stays dependency-free. --- *)

let task_provider : (unit -> string) ref = ref (fun () -> "-")

let set_task_provider f = task_provider := f

(* Active-span provider, injected by kspan the same way: when a span is
   live on the emitting task, its id is appended to the record's args
   so [trace run] output can be grepped by request. *)
let span_provider : (unit -> int) ref = ref (fun () -> 0)

let set_span_provider f = span_provider := f

(* --- The ring --- *)

let default_capacity = 8192

let dummy = { cycles = 0L; task = ""; cat = Syscall; name = ""; args = "" }

type ring = {
  mutable buf : record array;
  mutable head : int; (* next write slot *)
  mutable len : int;
  mutable dropped : int;
  mutable total : int;
}

let ring =
  { buf = Array.make default_capacity dummy; head = 0; len = 0; dropped = 0; total = 0 }

let capacity () = Array.length ring.buf

let set_capacity n =
  if n <= 0 then invalid_arg "Trace.set_capacity: capacity must be positive";
  ring.buf <- Array.make n dummy;
  ring.head <- 0;
  ring.len <- 0

let clear () =
  Array.fill ring.buf 0 (Array.length ring.buf) dummy;
  ring.head <- 0;
  ring.len <- 0;
  ring.dropped <- 0;
  ring.total <- 0

let reset () =
  disable_all ();
  if Array.length ring.buf <> default_capacity then ring.buf <- Array.make default_capacity dummy;
  clear ()

let push r =
  let cap = Array.length ring.buf in
  ring.buf.(ring.head) <- r;
  ring.head <- (ring.head + 1) mod cap;
  if ring.len < cap then ring.len <- ring.len + 1
  else ring.dropped <- ring.dropped + 1 (* overwrote the oldest record *);
  ring.total <- ring.total + 1

let emit cat name args =
  if enabled cat then begin
    let rendered = args () in
    let rendered =
      match !span_provider () with
      | 0 -> rendered
      | sp when rendered = "" -> "span=" ^ string_of_int sp
      | sp -> rendered ^ " span=" ^ string_of_int sp
    in
    push { cycles = Clock.now (); task = !task_provider (); cat; name; args = rendered }
  end

let dropped () = ring.dropped

let total () = ring.total

let length () = ring.len

let records () =
  let cap = Array.length ring.buf in
  let first = (ring.head - ring.len + cap) mod cap in
  List.init ring.len (fun i -> ring.buf.((first + i) mod cap))

(* --- ftrace-style text renderer --- *)

let render_record r =
  Printf.sprintf "%-16s [%12Ld] %s:%s%s" r.task r.cycles (category_name r.cat) r.name
    (if r.args = "" then "" else " " ^ r.args)

let render ?limit () =
  let rs = records () in
  let rs =
    match limit with
    | Some n when n < List.length rs ->
      List.filteri (fun i _ -> i >= List.length rs - n) rs
    | Some _ | None -> rs
  in
  String.concat "\n" (List.map render_record rs)

(* --- Probe attach plane ---------------------------------------------

   Structured tracepoints that verified probe programs (lib/kprobe) can
   attach to. Unlike [emit], which renders a display string, [fire]
   hands attached consumers a raw [int64 array] of context fields whose
   layout is fixed per attach point (see [attach_fields]); the kprobe
   verifier whitelists field accesses against exactly these layouts.

   Like the ktrace ring, the plane is free in virtual time: consumers
   charge no cycles, and when nothing is attached [fire] is a single
   bitmask test — the fields thunk is never evaluated, so a detached
   run is bit-for-bit identical to a build without the tracepoint. *)

type attach_point =
  | P_syscall_enter
  | P_syscall_exit
  | P_blk_issue
  | P_blk_complete
  | P_net_tx
  | P_net_rx
  | P_sched_switch
  | P_sched_wakeup
  | P_irq_entry
  | P_jbd_commit
  | P_chaos_inject

let all_attach_points =
  [ P_syscall_enter; P_syscall_exit; P_blk_issue; P_blk_complete; P_net_tx;
    P_net_rx; P_sched_switch; P_sched_wakeup; P_irq_entry; P_jbd_commit;
    P_chaos_inject ]

let attach_index = function
  | P_syscall_enter -> 0
  | P_syscall_exit -> 1
  | P_blk_issue -> 2
  | P_blk_complete -> 3
  | P_net_tx -> 4
  | P_net_rx -> 5
  | P_sched_switch -> 6
  | P_sched_wakeup -> 7
  | P_irq_entry -> 8
  | P_jbd_commit -> 9
  | P_chaos_inject -> 10

let attach_name = function
  | P_syscall_enter -> "syscall_enter"
  | P_syscall_exit -> "syscall_exit"
  | P_blk_issue -> "blk_issue"
  | P_blk_complete -> "blk_complete"
  | P_net_tx -> "net_tx"
  | P_net_rx -> "net_rx"
  | P_sched_switch -> "sched_switch"
  | P_sched_wakeup -> "sched_wakeup"
  | P_irq_entry -> "irq_entry"
  | P_jbd_commit -> "jbd_commit"
  | P_chaos_inject -> "chaos_inject"

let attach_of_string s =
  List.find_opt (fun ap -> attach_name ap = s) all_attach_points

(* Whitelisted context fields per attach point. The array index is the
   slot the firing site writes; the verifier resolves names to slots at
   load time, so programs can only read fields that exist here. *)
let attach_fields = function
  | P_syscall_enter -> [| "nr"; "pid"; "arg0" |]
  | P_syscall_exit -> [| "nr"; "ret"; "lat_ns"; "pid"; "arg0"; "journal_commit" |]
  | P_blk_issue -> [| "sector"; "len"; "write" |]
  | P_blk_complete -> [| "sector"; "len"; "write"; "lat_ns"; "status" |]
  | P_net_tx -> [| "bytes"; "nseg" |]
  | P_net_rx -> [| "bytes"; "nseg" |]
  | P_sched_switch -> [| "prev_tid"; "next_tid"; "now_ns"; "max_wait_ns" |]
  | P_sched_wakeup -> [| "tid"; "now_ns"; "max_wait_ns" |]
  | P_irq_entry -> [| "vector"; "now_ns" |]
  | P_jbd_commit -> [| "seq"; "nblocks" |]
  | P_chaos_inject -> [| "site_id"; "count" |]

let n_attach_points = List.length all_attach_points

(* Consumers, keyed by program name in attach order (deterministic
   execution order = load order). [live] mirrors the hook table as a
   bitmask so the detached fast path is one [land]. *)
let hooks : (string * (int64 array -> unit)) list array = Array.make n_attach_points []

let live = ref 0

let attach ap ~name f =
  let i = attach_index ap in
  hooks.(i) <- hooks.(i) @ [ (name, f) ];
  live := !live lor (1 lsl i)

let detach ap ~name =
  let i = attach_index ap in
  hooks.(i) <- List.filter (fun (n, _) -> n <> name) hooks.(i);
  if hooks.(i) = [] then live := !live land lnot (1 lsl i)

let detach_name name = List.iter (fun ap -> detach ap ~name) all_attach_points

let detach_all () =
  Array.fill hooks 0 n_attach_points [];
  live := 0

let attached ap = hooks.(attach_index ap) <> []

let any_attached () = !live <> 0

let fire ap fields =
  if !live land (1 lsl attach_index ap) <> 0 then begin
    let ctx = fields () in
    List.iter (fun (_, f) -> f ctx) hooks.(attach_index ap)
  end
