(** kspan: causal request-span tracing with critical-path analysis.

    A span is one request — a syscall, a redis command, an HTTP request
    — identified by a small integer id allocated at the request
    boundary and propagated across every asynchronous boundary the
    request crosses: bios carry their owning span through merges,
    splits and retries; TX frames carry it through plug bursts and
    mid-burst failures; IRQ completion and the subsequent wakeup edge
    hand it back to the sleeping task.

    Each live span accumulates typed time segments: on-CPU slices
    (labelled [cpu.<innermost kprof scope>]), block/net queue wait,
    device service, IRQ-delivery delay, softirq, scheduler delay, and a
    low-priority [blocked] catch-all for off-CPU time nothing more
    specific explains. When the span ends, overlapping segments are
    resolved by a fixed priority order into a critical-path
    decomposition whose parts sum exactly to the span's wall time (the
    unexplained remainder is reported as [unattributed]).

    Aggregation is per workload class: counts, wall-time histograms,
    critical-path totals, and a bounded slowest-N reservoir (default
    64) that keeps full segment trees only for tail outliers, so p99
    explanations cost O(N) memory.

    Invariants (shared with ktrace/kprof/kprobe):
    - {b Zero cost}: span tracking never charges virtual cycles and
      never consumes randomness; a span-on same-seed run is
      byte-identical to, and ends at the same virtual timestamp as, a
      span-off one.
    - {b Determinism}: all inputs are deterministic, and rendering
      sorts, so same-seed runs produce byte-identical output. *)

(** {2 Lifecycle} *)

val enabled : unit -> bool

val enable : unit -> unit
(** Start tracking spans. Survives boot like the ktrace mask
    (configuration, not run state). *)

val disable : unit -> unit

val auto : unit -> bool

val set_auto : bool -> unit
(** When auto mode is on, syscall dispatch opens a span per syscall
    ([syscall_begin]/[syscall_end]) for tasks with no active span. *)

val clear : unit -> unit
(** Drop all spans, aggregates and reservoirs; keep the enabled/auto
    flags. Called by the board at boot, after the clock rewinds. *)

(** {2 Span boundaries} *)

val current : unit -> int
(** Span id active on the current task, or [0] (idle/event context,
    disabled, or no active span). This is the value async carriers
    (bios, TX frames, ktrace records) capture. *)

val begin_ : cls:string -> name:string -> int
(** Open a span on the current task. Returns its id, or [0] when
    disabled, outside task context, or a span is already active on
    this task (spans do not nest — the outermost boundary owns the
    request). *)

val end_ : int -> unit
(** Finish a span: seals its segments, computes the critical path and
    folds it into the per-class aggregates. [end_ 0] and ending an
    already-finished span are no-ops. *)

val annotate_begin : cls:string -> name:string -> unit
(** Application request boundary (mini_redis per command, mini_nginx
    per HTTP request). Host-level and free: no syscall, no cycles. *)

val annotate_end : unit -> unit
(** End the current task's active span (no-op when none). *)

val syscall_begin : string -> int
(** Auto-span hook for syscall dispatch: opens a [sys.<name>] span if
    enabled, auto mode is on and no span is active. Returns 0 when no
    span was opened; pass the result to [syscall_end]. *)

val syscall_end : int -> unit

(** {2 Segment recording} *)

val add_to : int -> string -> int64 -> int64 -> unit
(** [add_to id label t0 t1] records segment [\[t0,t1)] on live span
    [id] — used by completion paths that run outside the owning task
    (block softirq, NIC reap). No-op for id 0, finished spans, or
    empty intervals. *)

val mark : string -> int64 -> unit
(** [mark label t0] records [\[t0, now)] on the current task's active
    span (e.g. [jbd.commit] around a journal commit). *)

(** {2 Scheduler and interrupt edges} (driven by the kernel layers) *)

val on_dispatch : tid:int -> waited:int64 -> unit
(** A task was put on CPU; [waited] is its runqueue wait. Records
    [blocked] (descheduled → runnable) and [sched.delay]
    (runnable → dispatched) on the task's active span. *)

val on_deschedule : unit -> unit
(** The current task left the CPU (suspension or death). *)

val on_wake : tid:int -> unit
(** A blocked task was woken. If the wakeup happens under a wake
    context (IRQ or softirq), the time since that context was entered
    is recorded on the woken task's span — the IRQ-delivery /
    bottom-half leg of the request's critical path. *)

val on_task_exit : int -> unit
(** Force-end any span the dying task leaked. *)

val enter_wake_ctx : string -> unit
(** Push a wake context (e.g. ["irq40"], ["softirq"]); must be paired
    with [exit_wake_ctx] (use [Fun.protect]). *)

val exit_wake_ctx : unit -> unit

(** {2 Conservation counters} *)

val count_bio_completed : unit -> unit
(** Bumps [span.bio_completed] in {!Stats} — called exactly once per
    primary span-owned bio at completion; tests compare it against the
    number of bios they created to prove exactly-once ownership across
    merges, splits and retries. *)

(** {2 Inspection} *)

type info = {
  i_id : int;
  i_cls : string;
  i_name : string;
  i_tid : int;
  i_begin : int64;
  i_dur : int64;
  i_residual : int64; (* critical-path cycles not attributed to a segment *)
  i_path : (string * int64) list; (* critical path, descending by cycles *)
  i_segs : (string * int64 * int64) list; (* label, t0, t1; oldest first *)
}

val live_count : unit -> int

val finished_count : unit -> int

val classes : unit -> string list
(** Classes with at least one finished span, sorted. *)

val class_count : string -> int

val tail : string -> info list
(** The class's slowest-N reservoir, slowest first. *)

val class_p99 : string -> info option
(** The reservoir span closest to the class's p99 rank. *)

val dominant_class : unit -> string option
(** The class that best names the workload: the most-populous
    application class if any ([redis], [http], ...), otherwise the
    most-populous auto [sys.*] class. *)

val max_residual_frac : unit -> float
(** Largest unattributed fraction across every reservoir span — the
    [span run --check] gate (must stay below 0.05). *)

(** {2 Rendering} *)

val render_proc : unit -> string
(** /proc/kspan body: per-class tables with wall-time percentiles,
    critical-path breakdown, and a reservoir summary. *)

val render_top : k:int -> string
(** Top-K waterfalls (slowest spans of the dominant class) plus the
    per-class critical-path histogram. *)

val chrome_events : unit -> string list
(** Chrome trace-event JSON objects (ph:"X") for every reservoir span
    and its segments, one track per span id. *)

val chrome_instant :
  ts_us:float -> name:string -> cat:string -> args:(string * string) list -> string
(** One Chrome instant event (ph:"i"), used to splice ktrace records
    into the same Perfetto timeline. *)

val chrome_wrap : string list -> string
(** Wrap event objects into a complete trace-event JSON document. *)
