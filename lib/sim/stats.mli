(** Named counters and samples collected during a simulation run.

    Used for strace-style syscall histograms, IOTLB hit rates, packet
    counts, and the benchmark harness's measurements. *)

val reset : unit -> unit

val incr : string -> unit
val add : string -> int -> unit
val get : string -> int
(** Missing counters read as 0. *)

val sample : string -> float -> unit
(** Record one observation of a named series. *)

val samples : string -> float list
(** Observations in recording order (empty if none). *)

val mean : string -> float
(** Mean of a series; 0 if empty. *)

val counters : unit -> (string * int) list
(** All counters, sorted by name. *)

val by_prefix : string -> (string * int) list
(** Counters whose name starts with the prefix, sorted by name. *)

val sum_prefix : string -> int
(** Sum of all counters sharing a prefix. *)

val fault_report : unit -> (string * int) list
(** The chaos quartet: injected / retried / recovered / gave_up.
    Computed by prefix — [fault.injected.*] and
    [degrade.{retried,recovered,gave_up}.*] — so degradation paths
    self-register by counter name alone. *)

val geomean : float list -> float
(** Geometric mean; 0 on the empty list. *)
