(* kspan: causal request-span tracing with critical-path analysis.

   A span is one request. Its id is allocated at the request boundary
   (syscall entry in auto mode; an explicit annotation in mini_redis /
   mini_nginx) and rides every asynchronous carrier the request
   touches: bios keep it across adjacent-run merges, batch splits and
   per-bio retries; TX frames keep it across plug bursts and mid-burst
   failures; the IRQ → softirq → wakeup edge hands it back to the
   sleeping task. While live, a span accumulates typed time segments;
   when it ends, overlaps are resolved by a fixed priority order into
   a critical-path decomposition that sums exactly to the span's wall
   time.

   Segment sources:
   - [cpu.<scope>]   every clock advance while the owning task is on
                     CPU, labelled with the innermost kprof scope
                     (the scope stack is maintained even when kprof
                     attribution is off);
   - [blocked]       descheduled -> woken, the low-priority catch-all;
   - [sched.delay]   woken/runnable -> dispatched;
   - [irq<v>]/[softirq]  wake-context entry -> wakeup, recorded on the
                     woken span (the delivery leg of a completion);
   - [blk.queue/service/irq], [net.plug/service/irq]  carrier
                     timestamps stamped by the block layer, netstack
                     and virtio drivers (device-side completion time
                     comes from a timestamp the device model writes
                     into the descriptor);
   - [jbd.commit]    the commit+FUA barrier inside fsync.

   Like ktrace/kprof/kprobe, the plane is free in virtual time: it
   never charges cycles and never consumes randomness, so a span-on
   same-seed run is byte-identical to a span-off one. *)

type seg = { slabel : string; mutable s_t0 : int64; mutable s_t1 : int64 }

type t = {
  id : int;
  cls : string;
  name : string;
  tid : int;
  t_begin : int64;
  mutable t_end : int64; (* 0 while live *)
  mutable segs : seg list; (* newest first *)
  mutable nsegs : int;
  mutable truncated : int;
  mutable last_off : int64; (* when the owning task last left the CPU *)
  mutable path : (string * int64) list; (* filled at end: descending *)
  mutable residual : int64;
}

(* Segment cap per span: beyond it, new segments are dropped and
   counted, so a pathological span cannot hold the heap hostage. The
   dropped time still shows up — as residual — rather than silently
   inflating a named segment. *)
let max_segs = 512

let reservoir_cap = 64

type agg = {
  mutable a_count : int;
  mutable a_total : int64;
  a_hist : Hist.t; (* wall time, µs *)
  a_segs : (string, int64 ref) Hashtbl.t; (* critical-path totals *)
  mutable a_residual : int64;
  mutable a_res : t list; (* slowest-N reservoir, ascending duration *)
}

let enabled_flag = ref false

let auto_flag = ref false

let next_id = ref 0

let finished = ref 0

let live : (int, t) Hashtbl.t = Hashtbl.create 64

let active : (int, t) Hashtbl.t = Hashtbl.create 16 (* tid -> live span *)

let class_tbl : (string, agg) Hashtbl.t = Hashtbl.create 16

let current_tid = ref 0

let wake_ctx : (string * int64) list ref = ref []

let enabled () = !enabled_flag

let enable () = enabled_flag := true

let disable () = enabled_flag := false

let auto () = !auto_flag

let set_auto b = auto_flag := b

let clear () =
  next_id := 0;
  finished := 0;
  Hashtbl.reset live;
  Hashtbl.reset active;
  Hashtbl.reset class_tbl;
  current_tid := 0;
  wake_ctx := []

let live_count () = Hashtbl.length live

let finished_count () = !finished

(* --- Segments --- *)

(* How many of the newest segments to scan for a same-label merge.
   Batch completions record one near-identical leg per bio or frame of
   the batch (32x blk.queue sharing a q_end, 32x blk.service, ...), in
   one consecutive run; without merging a single large fsync exhausts
   [max_segs] and its tail — the part that explains the latency — is
   lost to truncation. A small window keeps insertion O(1). *)
let merge_window = 8

let add_seg sp label t0 t1 =
  if Int64.compare t1 t0 > 0 && Int64.equal sp.t_end 0L then begin
    (* Coalesce into a recent same-label segment when the intervals
       touch or overlap: the union is a single interval, so the
       critical-path sweep sees exactly the same coverage. *)
    let rec coalesce k segs =
      k < merge_window
      &&
      match segs with
      | [] -> false
      | s :: tl ->
        if
          String.equal s.slabel label
          && Int64.compare s.s_t0 t1 <= 0
          && Int64.compare t0 s.s_t1 <= 0
        then begin
          if Int64.compare t0 s.s_t0 < 0 then s.s_t0 <- t0;
          if Int64.compare t1 s.s_t1 > 0 then s.s_t1 <- t1;
          true
        end
        else coalesce (k + 1) tl
    in
    if not (coalesce 0 sp.segs) then begin
      if sp.nsegs >= max_segs then sp.truncated <- sp.truncated + 1
      else begin
        sp.segs <- { slabel = label; s_t0 = t0; s_t1 = t1 } :: sp.segs;
        sp.nsegs <- sp.nsegs + 1
      end
    end
  end

let add_to id label t0 t1 =
  if id <> 0 && !enabled_flag then
    match Hashtbl.find_opt live id with
    | Some sp -> add_seg sp label t0 t1
    | None -> ()

let active_span () =
  if !current_tid = 0 then None else Hashtbl.find_opt active !current_tid

let mark label t0 =
  if !enabled_flag then
    match active_span () with
    | Some sp -> add_seg sp label t0 (Clock.now ())
    | None -> ()

(* CPU attribution: the second clock observer. Every advance while a
   task with an active span is on CPU becomes a [cpu.<scope>] segment
   labelled with the innermost kprof scope (memoized: no allocation on
   the steady-state path). *)

let cpu_labels : (string, string) Hashtbl.t = Hashtbl.create 64

let cpu_label scope =
  match Hashtbl.find_opt cpu_labels scope with
  | Some l -> l
  | None ->
    let l = "cpu." ^ scope in
    Hashtbl.add cpu_labels scope l;
    l

let on_advance d =
  if !enabled_flag && !current_tid <> 0 then
    match Hashtbl.find_opt active !current_tid with
    | Some sp ->
      let now = Clock.now () in
      add_seg sp (cpu_label (Prof.current_label ())) (Int64.sub now d) now
    | None -> ()

let () = Clock.set_on_advance2 on_advance

(* --- Critical path ---

   Overlapping segments are the normal case (a [blk.irq] completion
   leg overlaps the [softirq] wake context, which overlaps the span's
   [blocked] catch-all). The decomposition resolves each instant to
   the most specific explanation by priority, so the parts sum to the
   wall time exactly and nothing is double-counted. *)

let prio label =
  if label = "blocked" then 10
  else if String.starts_with ~prefix:"cpu." label then 100
  else if label = "sched.delay" then 90
  else if label = "softirq" then 85
  else if String.starts_with ~prefix:"irq" label then 80
  else if label = "blk.irq" || label = "net.irq" then 75
  else if label = "blk.service" || label = "net.service" then 70
  else if label = "jbd.commit" then 65
  else if label = "blk.queue" || label = "net.plug" then 60
  else 50

let compute_path sp =
  let lo = sp.t_begin and hi = sp.t_end in
  let clip t = if Int64.compare t lo < 0 then lo else if Int64.compare t hi > 0 then hi else t in
  let segs =
    List.rev_map (fun s -> (s.slabel, clip s.s_t0, clip s.s_t1)) sp.segs
    |> List.filter (fun (_, a, b) -> Int64.compare b a > 0)
  in
  let total = Int64.sub hi lo in
  if Int64.compare total 0L <= 0 then begin
    sp.path <- [];
    sp.residual <- 0L
  end
  else if segs = [] then begin
    sp.path <- [];
    sp.residual <- total
  end
  else begin
    let bounds =
      lo :: hi :: List.concat_map (fun (_, a, b) -> [ a; b ]) segs
      |> List.sort_uniq Int64.compare
    in
    let tbl : (string, int64 ref) Hashtbl.t = Hashtbl.create 16 in
    let residual = ref 0L in
    let rec sweep = function
      | a :: (b :: _ as tl) ->
        let dur = Int64.sub b a in
        if Int64.compare dur 0L > 0 then begin
          let best =
            List.fold_left
              (fun acc (l, sa, sb) ->
                if Int64.compare sa a <= 0 && Int64.compare sb b >= 0 then
                  match acc with
                  | Some (_, bp) when prio l <= bp -> acc
                  | _ -> Some (l, prio l)
                else acc)
              None segs
          in
          match best with
          | Some (l, _) ->
            let r =
              match Hashtbl.find_opt tbl l with
              | Some r -> r
              | None ->
                let r = ref 0L in
                Hashtbl.add tbl l r;
                r
            in
            r := Int64.add !r dur
          | None -> residual := Int64.add !residual dur
        end;
        sweep tl
      | _ -> ()
    in
    sweep bounds;
    sp.path <-
      Hashtbl.fold (fun l r acc -> (l, !r) :: acc) tbl []
      |> List.sort (fun (la, a) (lb, b) ->
             let c = Int64.compare b a in
             if c <> 0 then c else String.compare la lb);
    sp.residual <- !residual
  end

(* --- Aggregation --- *)

let agg_of cls =
  match Hashtbl.find_opt class_tbl cls with
  | Some a -> a
  | None ->
    let a =
      {
        a_count = 0;
        a_total = 0L;
        a_hist = Hist.create ();
        a_segs = Hashtbl.create 16;
        a_residual = 0L;
        a_res = [];
      }
    in
    Hashtbl.add class_tbl cls a;
    a

let span_dur sp = Int64.sub sp.t_end sp.t_begin

let res_insert a sp =
  let cmp x y = Int64.compare (span_dur x) (span_dur y) in
  if List.length a.a_res < reservoir_cap then a.a_res <- List.merge cmp a.a_res [ sp ]
  else
    match a.a_res with
    | fastest :: rest when Int64.compare (span_dur sp) (span_dur fastest) > 0 ->
      a.a_res <- List.merge cmp rest [ sp ]
    | _ -> ()

let finish sp =
  sp.t_end <- Clock.now ();
  Hashtbl.remove live sp.id;
  (match Hashtbl.find_opt active sp.tid with
  | Some cur when cur == sp -> Hashtbl.remove active sp.tid
  | _ -> ());
  compute_path sp;
  incr finished;
  let a = agg_of sp.cls in
  a.a_count <- a.a_count + 1;
  a.a_total <- Int64.add a.a_total (span_dur sp);
  Hist.record a.a_hist (Clock.to_us (span_dur sp));
  List.iter
    (fun (l, d) ->
      match Hashtbl.find_opt a.a_segs l with
      | Some r -> r := Int64.add !r d
      | None -> Hashtbl.add a.a_segs l (ref d))
    sp.path;
  a.a_residual <- Int64.add a.a_residual sp.residual;
  res_insert a sp

(* --- Boundaries --- *)

let current () =
  if not !enabled_flag then 0
  else match active_span () with Some sp -> sp.id | None -> 0

let begin_ ~cls ~name =
  if (not !enabled_flag) || !current_tid = 0 || Hashtbl.mem active !current_tid then 0
  else begin
    incr next_id;
    let sp =
      {
        id = !next_id;
        cls;
        name;
        tid = !current_tid;
        t_begin = Clock.now ();
        t_end = 0L;
        segs = [];
        nsegs = 0;
        truncated = 0;
        last_off = 0L;
        path = [];
        residual = 0L;
      }
    in
    Hashtbl.replace live sp.id sp;
    Hashtbl.replace active sp.tid sp;
    sp.id
  end

let end_ id =
  if id <> 0 then
    match Hashtbl.find_opt live id with Some sp -> finish sp | None -> ()

let annotate_begin ~cls ~name = ignore (begin_ ~cls ~name)

let annotate_end () = match active_span () with Some sp -> finish sp | None -> ()

let sys_classes : (string, string) Hashtbl.t = Hashtbl.create 64

let sys_class name =
  match Hashtbl.find_opt sys_classes name with
  | Some c -> c
  | None ->
    let c = "sys." ^ name in
    Hashtbl.add sys_classes name c;
    c

let syscall_begin name =
  if !enabled_flag && !auto_flag then begin_ ~cls:(sys_class name) ~name else 0

let syscall_end id = end_ id

(* --- Scheduler and interrupt edges --- *)

let on_deschedule () =
  (if !enabled_flag then
     match active_span () with
     | Some sp -> sp.last_off <- Clock.now ()
     | None -> ());
  current_tid := 0

let on_dispatch ~tid ~waited =
  current_tid := tid;
  if !enabled_flag then
    match Hashtbl.find_opt active tid with
    | Some sp ->
      let now = Clock.now () in
      let runnable = Int64.sub now waited in
      if Int64.compare sp.last_off 0L > 0 then begin
        add_seg sp "blocked" sp.last_off runnable;
        sp.last_off <- 0L
      end;
      add_seg sp "sched.delay" runnable now
    | None -> ()

let on_wake ~tid =
  if !enabled_flag && !wake_ctx <> [] then
    match Hashtbl.find_opt active tid with
    | Some sp ->
      let now = Clock.now () in
      List.iter (fun (label, entered) -> add_seg sp label entered now) !wake_ctx
    | None -> ()

let on_task_exit tid =
  (match Hashtbl.find_opt active tid with
  | Some sp -> finish sp
  | None -> ());
  if !current_tid = tid then current_tid := 0

let enter_wake_ctx label = wake_ctx := (label, Clock.now ()) :: !wake_ctx

let exit_wake_ctx () =
  match !wake_ctx with [] -> () | _ :: rest -> wake_ctx := rest

(* --- Conservation counters --- *)

let count_bio_completed () = Stats.incr "span.bio_completed"

(* --- Inspection --- *)

type info = {
  i_id : int;
  i_cls : string;
  i_name : string;
  i_tid : int;
  i_begin : int64;
  i_dur : int64;
  i_residual : int64;
  i_path : (string * int64) list;
  i_segs : (string * int64 * int64) list;
}

let info_of sp =
  {
    i_id = sp.id;
    i_cls = sp.cls;
    i_name = sp.name;
    i_tid = sp.tid;
    i_begin = sp.t_begin;
    i_dur = span_dur sp;
    i_residual = sp.residual;
    i_path = sp.path;
    i_segs = List.rev_map (fun s -> (s.slabel, s.s_t0, s.s_t1)) sp.segs;
  }

let class_names () =
  Hashtbl.fold (fun c _ acc -> c :: acc) class_tbl [] |> List.sort String.compare

let classes () = class_names ()

let class_count cls =
  match Hashtbl.find_opt class_tbl cls with Some a -> a.a_count | None -> 0

let tail cls =
  match Hashtbl.find_opt class_tbl cls with
  | None -> []
  | Some a -> List.rev_map info_of a.a_res (* slowest first *)

let class_p99 cls =
  match Hashtbl.find_opt class_tbl cls with
  | None -> None
  | Some a -> (
    match List.rev a.a_res with
    | [] -> None
    | slowest_first ->
      (* With count requests, the p99 rank sits count/100 below the
         maximum; the reservoir holds the slowest 64, so the estimate
         is exact while count <= 100 * cap. *)
      let idx = min (a.a_count / 100) (List.length slowest_first - 1) in
      Some (info_of (List.nth slowest_first idx)))

let dominant_class () =
  let entries = Hashtbl.fold (fun c a acc -> (c, a.a_count) :: acc) class_tbl [] in
  let pick = function
    | [] -> None
    | l ->
      Some
        (fst
           (List.fold_left
              (fun (bc, bn) (c, n) ->
                if n > bn || (n = bn && String.compare c bc < 0) then (c, n) else (bc, bn))
              (List.hd l) (List.tl l)))
  in
  match
    List.filter (fun (c, _) -> not (String.starts_with ~prefix:"sys." c)) entries
  with
  | [] -> pick entries
  | app -> pick app

let max_residual_frac () =
  Hashtbl.fold
    (fun _ a acc ->
      List.fold_left
        (fun acc sp ->
          let d = span_dur sp in
          if Int64.compare d 0L > 0 then
            max acc (Int64.to_float sp.residual /. Int64.to_float d)
          else acc)
        acc a.a_res)
    class_tbl 0.

(* --- Rendering --- *)

let pct part total =
  if Int64.compare total 0L <= 0 then 0.
  else 100. *. Int64.to_float part /. Int64.to_float total

let render_proc () =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "# kspan: enabled=%b auto=%b live=%d finished=%d classes=%d\n"
       !enabled_flag !auto_flag (Hashtbl.length live) !finished
       (Hashtbl.length class_tbl));
  List.iter
    (fun cls ->
      let a = Hashtbl.find class_tbl cls in
      let p q =
        match Hist.percentile a.a_hist q with
        | Some v -> Printf.sprintf "%.1f" v
        | None -> "-"
      in
      Buffer.add_string b
        (Printf.sprintf
           "class %-16s count=%-8d total_us=%-12.1f p50_us=%s p90_us=%s p99_us=%s max_us=%s reservoir=%d\n"
           cls a.a_count (Clock.to_us a.a_total) (p 50.) (p 90.) (p 99.)
           (Printf.sprintf "%.1f" (Hist.max_value a.a_hist))
           (List.length a.a_res));
      let segs =
        Hashtbl.fold (fun l r acc -> (l, !r) :: acc) a.a_segs []
        |> List.sort (fun (la, x) (lb, y) ->
               let c = Int64.compare y x in
               if c <> 0 then c else String.compare la lb)
      in
      List.iter
        (fun (l, d) ->
          Buffer.add_string b
            (Printf.sprintf "  %-28s %10.1fus %6.2f%%\n" l (Clock.to_us d)
               (pct d a.a_total)))
        segs;
      if Int64.compare a.a_residual 0L > 0 then
        Buffer.add_string b
          (Printf.sprintf "  %-28s %10.1fus %6.2f%%\n" "unattributed"
             (Clock.to_us a.a_residual)
             (pct a.a_residual a.a_total)))
    (class_names ());
  Buffer.contents b

let waterfall b inf =
  Buffer.add_string b
    (Printf.sprintf "span %d %s:%s tid=%d start=%.1fus dur=%.1fus residual=%.2f%%\n"
       inf.i_id inf.i_cls inf.i_name inf.i_tid (Clock.to_us inf.i_begin)
       (Clock.to_us inf.i_dur)
       (pct inf.i_residual inf.i_dur));
  let bar_w = 32 in
  let dur = max 1L inf.i_dur in
  let segs =
    List.sort
      (fun (_, a, _) (_, b, _) -> Int64.compare a b)
      inf.i_segs
  in
  List.iter
    (fun (l, t0, t1) ->
      let off = Int64.sub (max t0 inf.i_begin) inf.i_begin in
      let len = Int64.sub (min t1 (Int64.add inf.i_begin inf.i_dur)) (max t0 inf.i_begin) in
      if Int64.compare len 0L > 0 then begin
        let scale v = Int64.to_int (Int64.div (Int64.mul v (Int64.of_int bar_w)) dur) in
        let s = min (scale off) (bar_w - 1) in
        let w = max 1 (min (scale len) (bar_w - s)) in
        Buffer.add_string b
          (Printf.sprintf "  +%10.1fus %10.1fus %-28s |%s%s%s|\n" (Clock.to_us off)
             (Clock.to_us len) l (String.make s ' ') (String.make w '#')
             (String.make (bar_w - s - w) ' '))
      end)
    segs;
  Buffer.add_string b "  critical path: ";
  Buffer.add_string b
    (String.concat ", "
       (List.map
          (fun (l, d) -> Printf.sprintf "%s %.1f%%" l (pct d inf.i_dur))
          inf.i_path));
  if Int64.compare inf.i_residual 0L > 0 then
    Buffer.add_string b
      (Printf.sprintf ", unattributed %.1f%%" (pct inf.i_residual inf.i_dur));
  Buffer.add_char b '\n'

let render_top ~k =
  let b = Buffer.create 1024 in
  (match dominant_class () with
  | None -> Buffer.add_string b "no finished spans\n"
  | Some cls ->
    Buffer.add_string b
      (Printf.sprintf "slowest %d of class %s (%d finished)\n"
         (min k (List.length (tail cls)))
         cls (class_count cls));
    List.iteri (fun i inf -> if i < k then waterfall b inf) (tail cls));
  List.iter
    (fun cls ->
      let a = Hashtbl.find class_tbl cls in
      Buffer.add_string b (Printf.sprintf "critical-path histogram (%s):\n" cls);
      let segs =
        Hashtbl.fold (fun l r acc -> (l, !r) :: acc) a.a_segs []
        |> List.sort (fun (la, x) (lb, y) ->
               let c = Int64.compare y x in
               if c <> 0 then c else String.compare la lb)
      in
      let segs =
        if Int64.compare a.a_residual 0L > 0 then segs @ [ ("unattributed", a.a_residual) ]
        else segs
      in
      List.iter
        (fun (l, d) ->
          let p = pct d a.a_total in
          let w = int_of_float (p /. 100. *. 40.) in
          Buffer.add_string b
            (Printf.sprintf "  %-28s %6.2f%% |%s%s|\n" l p (String.make w '#')
               (String.make (40 - w) ' ')))
        segs)
    (class_names ());
  Buffer.contents b

(* --- Chrome trace-event JSON (Perfetto) --- *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let chrome_complete ~name ~cat ~ts_us ~dur_us ~track ~args =
  let args_s =
    String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)) args)
  in
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{%s}}"
    (json_escape name) (json_escape cat) ts_us dur_us track args_s

let chrome_instant ~ts_us ~name ~cat ~args =
  let args_s =
    String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)) args)
  in
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":1,\"tid\":0,\"s\":\"g\",\"args\":{%s}}"
    (json_escape name) (json_escape cat) ts_us args_s

let chrome_events () =
  List.concat_map
    (fun cls ->
      List.concat_map
        (fun inf ->
          chrome_complete
            ~name:(inf.i_cls ^ ":" ^ inf.i_name)
            ~cat:"span"
            ~ts_us:(Clock.to_us inf.i_begin)
            ~dur_us:(Clock.to_us inf.i_dur)
            ~track:inf.i_id
            ~args:
              [
                ("class", inf.i_cls);
                ("span", string_of_int inf.i_id);
                ("residual_us", Printf.sprintf "%.3f" (Clock.to_us inf.i_residual));
              ]
          :: List.filter_map
               (fun (l, t0, t1) ->
                 if Int64.compare t1 t0 > 0 then
                   Some
                     (chrome_complete ~name:l ~cat:"seg" ~ts_us:(Clock.to_us t0)
                        ~dur_us:(Clock.to_us (Int64.sub t1 t0))
                        ~track:inf.i_id ~args:[])
                 else None)
               inf.i_segs)
        (tail cls))
    (class_names ())

let chrome_wrap events =
  "{\"traceEvents\":[\n" ^ String.concat ",\n" events ^ "\n]}\n"

(* Tag ktrace records with the active span id: ktrace cannot depend on
   this module (we depend on it for nothing, but keeping the provider
   injection mirrors the task-name idiom and avoids a cycle if spans
   ever emit records). *)
let () = Trace.set_span_provider current
