(** Virtual cycle clock for the whole simulated machine.

    The simulator is single-socket (SMP = 1, matching the paper's
    evaluation setup), so one global cycle counter suffices. Kernel and
    device code advance it by charging cycle costs; when every task is
    blocked, {!Events} advances it to the next scheduled event. *)

val cycles_per_us : int
(** Nominal frequency: 3000 cycles per microsecond (3 GHz). *)

val reset : unit -> unit
(** Reset the clock to cycle 0. Tests and benchmark runs call this. *)

val now : unit -> int64
(** Current virtual time in cycles. *)

val charge : int -> unit
(** [charge n] advances virtual time by [n] cycles. [n < 0] is a
    programming error and raises [Invalid_argument]. *)

val advance_to : int64 -> unit
(** Jump forward to an absolute cycle count (used by the event queue when
    the machine is idle). Moving backwards is ignored. *)

val set_on_advance : (int64 -> unit) -> unit
(** Install the clock observer: called with the delta on every forward
    movement of virtual time ([charge] or [advance_to]). There is one
    slot — kprof owns it. The observer must not charge cycles. *)

val clear_on_advance : unit -> unit
(** Restore the no-op observer. *)

val set_on_advance2 : (int64 -> unit) -> unit
(** A second, independent observer slot (kspan owns it), called after
    the first on every forward movement. The observer must not charge
    cycles. *)

val to_us : int64 -> float
(** Convert a cycle count to microseconds. *)

val to_seconds : int64 -> float

val us : float -> int
(** [us x] is the number of cycles in [x] microseconds. *)
