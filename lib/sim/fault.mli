(** Deterministic fault-injection plane.

    Device models (and a few allocator hot paths) consult named fault
    sites before doing their work; a configured site fires with its
    probability, drawn from a dedicated splitmix64 stream so that a given
    seed always yields the same fault schedule regardless of what the
    rest of the simulation does with the shared RNG. Every injection is
    appended to a log of [virtual-time site ordinal] lines, which the
    chaos suite compares byte-for-byte across runs to prove determinism.

    Sites used by the tree today:

    - ["blk.io_error"]  virtio-blk completes the request with status 1
    - ["blk.drop"]      virtio-blk never writes status nor raises its IRQ
    - ["blk.delay"]     virtio-blk adds extra service latency
    - ["net.drop"]      virtio-net loses a frame (TX or RX)
    - ["net.corrupt"]   virtio-net flips a byte in a frame
    - ["net.dup"]       virtio-net duplicates a frame
    - ["iommu.fault"]   a translation spuriously faults
    - ["irq.spurious"]  the interrupt chip raises an unclaimed vector
    - ["irq.storm"]     one device interrupt is delivered as a burst
    - ["alloc.fail"]    Falloc/Slab report a transient allocation failure

    The plane is disabled (all sites pass) until {!configure} is called,
    so ordinary boots and tests never pay for it. *)

val configure : seed:int64 -> (string * float) list -> unit
(** Arm the plane: [(site, probability)] pairs, probabilities in [0,1].
    Replaces any previous configuration and clears the log. *)

val disable : unit -> unit
(** Stop injecting but keep the log (for post-run verification). *)

val reset : unit -> unit
(** Full reset: disabled, no sites, empty log. Called on board reset. *)

val enabled : unit -> bool

val active : string -> bool
(** The site is configured with a positive probability and the plane is
    enabled. *)

val roll : string -> bool
(** Draw for one consult of the site. [true] means inject. Unconfigured
    sites return [false] without consuming randomness, so adding fault
    sites to new device models never perturbs existing schedules. *)

val delay_cycles : string -> max_cycles:int -> int
(** [0] unless the site fires; otherwise a deterministic extra latency in
    [1, max_cycles]. *)

val burst : string -> max:int -> int
(** [0] unless the site fires; otherwise a deterministic burst size in
    [1, max]. *)

val injected : string -> int
(** Number of times the site has fired since {!configure}. *)

val total_injected : unit -> int

val log : unit -> string list
(** Chronological injection log; identical for identical seeds and
    schedules. *)

val summary : unit -> (string * int) list
(** Per-site injection counts, sorted by site name. *)

(** {1 Deterministic one-shot triggers}

    Orthogonal to the probability plane: a trigger fires on exactly the
    k-th consult of its site, with no randomness involved. Used to
    enumerate crash points — ["blk.power_cut"] armed with [~after:k]
    kills the device after exactly [k] persisted sectors. Triggers are
    cleared by {!reset} (hence by every board reset), so arm them after
    boot. *)

val set_trigger : string -> after:int -> unit
(** Arm a one-shot trigger: the [after]-th {!countdown} call for this
    site fires (0-based — [~after:0] fires on the very first consult). *)

val clear_trigger : string -> unit

val countdown : string -> bool
(** Consult a triggered site. Returns [true] exactly once, on the armed
    consult; the firing is logged under ["fault.injected.<site>"]. *)
