(** Kernel feature flags and cycle-cost model.

    The paper compares Asterinas against Linux 5.15 and attributes every
    performance delta to a concrete mechanism (smoltcp has no congestion
    control, Asterinas lacks RCU-walk, its sendfile performs an extra
    copy, OSTD safety checks cost a few cycles, DMA pooling preserves
    IOTLB entries). A profile bundles those mechanism switches with the
    per-operation cycle constants of the corresponding kernel. The
    simulated kernel consults the installed profile at every charge
    point, so both kernels run the same code base with different
    mechanisms enabled — the comparison shape emerges from the
    mechanisms, and absolute numbers are calibrated against the paper's
    Linux column. *)

type safety_costs = {
  boundary_check : int;  (** untyped-memory range check (Table 8 rows 1-2) *)
  iomem_check : int;     (** IoMem range check (Table 8 rows 3-4) *)
  guard_page : int;      (** guard-page setup at stack creation *)
  running_flag : int;    (** Inv. 8 is_running check at context switch *)
  ownership_check : int; (** Frame::from_unused metadata check (Inv. 1) *)
  slab_fit_check : int;  (** HeapSlot::into_box size/align check (Inv. 10) *)
}

type costs = {
  syscall : int;             (** user->kernel->user round trip *)
  user_copy_bpc : int;       (** copy_{to,from}_user bytes per cycle *)
  memcpy_bpc : int;          (** in-kernel memcpy bytes per cycle *)
  context_switch : int;
  fd_lookup : int;
  path_component : int;      (** per-component lookup, lock-walk *)
  path_component_fast : int; (** per-component lookup, RCU-walk *)
  open_misc : int;           (** fd + file object setup in open(2) *)
  fault_entry : int;         (** page-fault trap entry + return *)
  map_page : int;            (** PTE install *)
  mmap_per_page : int;       (** VMA setup cost per page in mmap(2) *)
  unmap_page : int;
  fork_base : int;
  fork_per_page : int;       (** page-table copy per mapped page *)
  exec_base : int;
  exit_base : int;
  pipe_op : int;             (** per pipe read/write beyond syscall + copy *)
  unix_op : int;             (** per unix-socket op beyond syscall + copy *)
  wakeup : int;
  tcp_tx_segment : int;      (** per-segment transmit processing *)
  tcp_rx_segment : int;      (** per-segment receive base (plus a per-byte part) *)
  tcp_rx_small : int;        (** sub-MSS receive base (header-prediction fast path) *)
  tcp_rx_small_bpc : int;    (** sub-MSS receive bytes/cycle divisor *)
  tcp_rx_bpc : int;          (** full-segment receive bytes/cycle divisor *)
  tcp_csum_cycles : int;     (** software-checksum share of a segment's TX cost;
                                 carved out when [csum_tx_offload] is on *)
  tcp_small_write : int;     (** fixed cost of a sub-MSS send(2) *)
  tcp_conn_setup : int;      (** connection object setup/teardown (timers, hashes) *)
  udp_packet : int;
  loopback_delivery : int;   (** softirq hand-off on the loopback path *)
  net_wake : int;            (** blocking-receive wakeup path (schedule, restore) *)
  blk_issue : int;           (** build + submit one virtio-blk request *)
  blk_us_per_op : float;     (** device latency per request, microseconds *)
  blk_us_per_desc : float;   (** device latency per extra chained descriptor *)
  blk_dev_bpc : float;       (** device streaming bandwidth, bytes/cycle *)
  net_us_per_pkt : float;    (** virtio-net wire + host latency per packet *)
  net_us_per_kick : float;   (** virtio-net TX queue processing per doorbell/burst *)
  net_us_per_desc : float;   (** virtio-net TX processing per extra chained descriptor *)
  net_dev_bpc : float;       (** virtio-net wire bandwidth, bytes/cycle *)
  mmio_access : int;       (** one MMIO register access (VM-exit class cost) *)
  doorbell : int;          (** ioeventfd-style virtio kick *)
  irq_entry : int;
  softirq : int;
  dma_map : int;             (** IOMMU domain update per map *)
  dma_unmap : int;           (** unmap incl. IOTLB invalidation *)
  iotlb_hit : int;
  iotlb_miss : int;          (** IOMMU page walk *)
  alloc_frame : int;
  kmalloc : int;
  stat_fill : int;           (** fill struct stat from an inode *)
  fs_new_page : int;         (** page-cache insertion of a freshly allocated page *)
  page_drop : int;           (** page-cache removal of one page (truncate) *)
  zero_fill_bpc : int;       (** memset bytes/cycle for hole reads / fresh pages *)
  sched_pick : int;
  timer_program : int;
  safety : safety_costs;
}

type t = {
  name : string;
  safety_checks : bool;          (** OSTD safety checks enabled *)
  iommu : bool;                  (** DMA + interrupt remapping active *)
  dma_pooling : bool;            (** persistent DMA mappings (pooled) *)
  blk_pooling_complete : bool;   (** paper: blk driver pooling is partial *)
  blk_batching : bool;           (** merge adjacent bios into descriptor chains:
                                     one doorbell + one completion IRQ per batch *)
  blk_readahead : bool;          (** sequential-stream readahead into the buffer cache *)
  ext2_journal : bool;           (** JBD2-style write-ahead metadata journal in ext2 *)
  ext2_journal_data : bool;      (** journal file data too (data=journal mode) *)
  net_tx_batching : bool;        (** plug outgoing TCP/UDP segments into descriptor-chain
                                     bursts: one doorbell per burst instead of per packet *)
  net_irq_coalesce : bool;       (** one TX-complete IRQ per chain and NAPI-style
                                     RX: one IRQ per delivered backlog drain *)
  tcp_congestion_control : bool; (** Reno; smoltcp-style stack lacks it *)
  tcp_gso : bool;                (** GSO/TSO: TCP hands the driver super-segments (up to
                                     [gso_max_size]) as single descriptors; the *device*
                                     splits them into MSS wire frames at ring time *)
  gso_max_size : int;            (** super-segment payload cap, bytes (also the loopback
                                     segment limit) *)
  net_gro : bool;                (** RX coalescing: the driver merges in-order same-flow
                                     TCP segments into one super-segment per NAPI burst *)
  csum_tx_offload : bool;        (** device computes TX checksums; the stack skips its
                                     software-checksum share of the segment cost *)
  csum_rx_offload : bool;        (** device verifies RX checksums and marks the verdict;
                                     the stack trusts the mark *)
  rcu_walk : bool;               (** fast-path name lookup *)
  sendfile_zero_copy : bool;     (** false => extra bounce-buffer copy *)
  unix_double_copy : bool;       (** skb-based unix sockets copy twice *)
  pipe_buffer : int;             (** pipe ring capacity, bytes *)
  unix_buffer : int;             (** unix stream socket buffer, bytes *)
  tcp_sndbuf : int;
  costs : costs;
}

val linux : t
(** Linux 5.15 baseline, mitigations off, as configured in §6.1. *)

val asterinas : t
(** Asterinas with IOMMU enabled (the paper's default). *)

val asterinas_no_iommu : t

val with_safety_checks : bool -> t -> t
val with_iommu : bool -> t -> t
val with_dma_pooling : bool -> t -> t
val with_blk_batching : bool -> t -> t
val with_blk_readahead : bool -> t -> t
val with_ext2_journal : bool -> t -> t
val with_ext2_journal_data : bool -> t -> t
val with_net_tx_batching : bool -> t -> t
val with_net_irq_coalesce : bool -> t -> t
val with_tcp_gso : bool -> t -> t
val with_gso_max_size : int -> t -> t
val with_net_gro : bool -> t -> t

val with_csum_offload : bool -> t -> t
(** Sets both [csum_tx_offload] and [csum_rx_offload]. *)

val with_sendfile_zero_copy : bool -> t -> t

val with_all_offloads : bool -> t -> t
(** Every offload modelled by the NIC (GSO/TSO, GRO, both checksum
    directions, zero-copy sendfile) as one switch; [false] is the honest
    software-segmentation baseline. *)

val set : t -> unit
(** Install the profile consulted by the simulated kernel. *)

val get : unit -> t

val checks_on : unit -> bool
(** [true] when the installed profile runs OSTD safety checks. *)
