type row = {
  name : string;
  category : string;
  unit_ : string;
  higher_better : bool;
  run : Sim.Profile.t -> float;
}

let lo_ip = Aster.Packet.ip_of_string "127.0.0.1"

(* Boot, run [setup] (which spawns processes), simulate, return the value
   the workload deposited. *)
let measure profile setup =
  ignore (Runner.boot ~profile);
  let out = ref nan in
  setup out;
  Runner.run ();
  !out

let lat_iters = 300

(* --- Proc --- *)

let lat_syscall_null profile =
  measure profile (fun out ->
      Runner.spawn ~name:"lat_null" (fun c ->
          for _ = 1 to 10 do
            ignore (Libc.getpid c)
          done;
          let us =
            Runner.time_us (fun () ->
                for _ = 1 to lat_iters do
                  ignore (Libc.getpid c)
                done)
          in
          out := us /. float_of_int lat_iters;
          0))

let lat_ctx profile =
  (* 18 processes in a pipe ring passing a one-byte token. *)
  let nprocs = 18 in
  let rounds = 40 in
  measure profile (fun out ->
      Runner.spawn ~name:"lat_ctx" (fun c ->
          let pipes = Array.init (nprocs + 1) (fun _ -> Result.get_ok (Libc.pipe c)) in
          for i = 0 to nprocs - 1 do
            let rfd = fst pipes.(i) and wfd = snd pipes.(i + 1) in
            ignore
              (Libc.fork c (fun uapi ->
                   let cc = Libc.make uapi in
                   let buf = Libc.ualloc cc 64 in
                   let continue = ref true in
                   while !continue do
                     let n = Libc.read cc ~fd:rfd ~vaddr:buf ~len:1 in
                     if n <= 0 then continue := false
                     else ignore (Libc.write cc ~fd:wfd ~vaddr:buf ~len:1)
                   done;
                   0))
          done;
          let buf = Libc.ualloc c 64 in
          (* Warm it once. *)
          ignore (Libc.write c ~fd:(snd pipes.(0)) ~vaddr:buf ~len:1);
          ignore (Libc.read c ~fd:(fst pipes.(nprocs)) ~vaddr:buf ~len:1);
          let us =
            Runner.time_us (fun () ->
                for _ = 1 to rounds do
                  ignore (Libc.write c ~fd:(snd pipes.(0)) ~vaddr:buf ~len:1);
                  ignore (Libc.read c ~fd:(fst pipes.(nprocs)) ~vaddr:buf ~len:1)
                done)
          in
          (* Per hand-off: each round crosses nprocs+1 switch+pipe hops. *)
          out := us /. float_of_int (rounds * (nprocs + 1));
          (* Tear down the ring. *)
          Array.iter
            (fun (rfd, wfd) ->
              ignore (Libc.close c rfd);
              ignore (Libc.close c wfd))
            pipes;
          for _ = 1 to nprocs do
            ignore (Libc.waitpid c)
          done;
          0))

let grow_image c pages =
  (* Give the measuring process a realistically-sized image so fork has
     page tables to copy (lmbench is a ~1 MB binary plus libc). *)
  let addr = Libc.mmap c ~len:(pages * 4096) in
  for i = 0 to pages - 1 do
    (Libc.raw c).Ostd.User.mem_write_u64 (addr + (i * 4096)) 1L
  done

let lat_proc_fork profile =
  let iters = 25 in
  measure profile (fun out ->
      Runner.spawn ~name:"lat_fork" (fun c ->
          grow_image c 700;
          let us =
            Runner.time_us (fun () ->
                for _ = 1 to iters do
                  ignore (Libc.fork c (fun _ -> 0));
                  ignore (Libc.waitpid c)
                done)
          in
          out := us /. float_of_int iters;
          0))

let lat_proc_exec profile =
  let iters = 25 in
  Aster.Uprog_registry.register "hello-exec" (fun _ _ -> 0);
  measure profile (fun out ->
      Runner.spawn ~name:"lat_exec" (fun c ->
          grow_image c 700;
          let us =
            Runner.time_us (fun () ->
                for _ = 1 to iters do
                  ignore
                    (Libc.fork c (fun uapi ->
                         let cc = Libc.make uapi in
                         Libc.execve cc "/bin/hello-exec" [ "hello-exec" ]));
                  ignore (Libc.waitpid c)
                done)
          in
          out := us /. float_of_int iters;
          0))

let lat_proc_shell profile =
  let iters = 15 in
  Aster.Uprog_registry.register "hello-exec" (fun _ _ -> 0);
  Aster.Uprog_registry.register "sh" (fun uapi argv ->
      (* /bin/sh -c prog: fork and exec the target. *)
      let c = Libc.make uapi in
      match argv with
      | [ _; "-c"; prog ] ->
        ignore
          (Libc.fork c (fun uapi2 ->
               let c2 = Libc.make uapi2 in
               Libc.execve c2 ("/bin/" ^ prog) [ prog ]));
        (match Libc.waitpid c with Ok (_, code) -> code | Error _ -> 127)
      | _ -> 127);
  measure profile (fun out ->
      Runner.spawn ~name:"lat_shell" (fun c ->
          grow_image c 700;
          let us =
            Runner.time_us (fun () ->
                for _ = 1 to iters do
                  ignore
                    (Libc.fork c (fun uapi ->
                         let cc = Libc.make uapi in
                         Libc.execve cc "/bin/sh" [ "sh"; "-c"; "hello-exec" ]));
                  ignore (Libc.waitpid c)
                done)
          in
          out := us /. float_of_int iters;
          0))

(* --- Mem --- *)

let lat_pagefault profile =
  let pages = 1500 in
  measure profile (fun out ->
      Runner.spawn ~name:"lat_pf" (fun c ->
          let addr = Libc.mmap c ~len:(pages * 4096) in
          let us =
            Runner.time_us (fun () ->
                for i = 0 to pages - 1 do
                  (Libc.raw c).Ostd.User.mem_write_u64 (addr + (i * 4096)) 7L
                done)
          in
          out := us /. float_of_int pages;
          0))

let lat_mmap profile =
  let iters = 40 in
  let len = 4 * 1024 * 1024 in
  measure profile (fun out ->
      Runner.spawn ~name:"lat_mmap" (fun c ->
          let us =
            Runner.time_us (fun () ->
                for _ = 1 to iters do
                  let a = Libc.mmap c ~len in
                  ignore (Libc.munmap c ~addr:a ~len)
                done)
          in
          out := us /. float_of_int iters;
          0))

let bw_mmap profile =
  (* Read a freshly-faulted region through user loads. *)
  let len = 8 * 1024 * 1024 in
  measure profile (fun out ->
      Runner.spawn ~name:"bw_mmap" (fun c ->
          let addr = Libc.mmap c ~len in
          (* Touch all pages (faults), then measure streaming reads. *)
          for i = 0 to (len / 4096) - 1 do
            (Libc.raw c).Ostd.User.mem_write_u64 (addr + (i * 4096)) 1L
          done;
          let chunk = 65536 in
          let us =
            Runner.time_us (fun () ->
                let pos = ref 0 in
                while !pos < len do
                  ignore (Libc.get_bytes c (addr + !pos) chunk);
                  (* Streaming a large region misses every cache level:
                     charge the DRAM-bandwidth part on top of the copy. *)
                  Sim.Clock.charge (chunk / 12);
                  pos := !pos + chunk
                done)
          in
          out := Runner.mb_per_s ~bytes_moved:len ~us;
          0))

(* --- IPC: pipes and unix sockets --- *)

let pingpong_pipe profile =
  measure profile (fun out ->
      Runner.spawn ~name:"lat_pipe" (fun c ->
          let p2c_r, p2c_w = Result.get_ok (Libc.pipe c) in
          let c2p_r, c2p_w = Result.get_ok (Libc.pipe c) in
          ignore
            (Libc.fork c (fun uapi ->
                 let cc = Libc.make uapi in
                 let buf = Libc.ualloc cc 16 in
                 let continue = ref true in
                 while !continue do
                   let n = Libc.read cc ~fd:p2c_r ~vaddr:buf ~len:1 in
                   if n <= 0 then continue := false
                   else ignore (Libc.write cc ~fd:c2p_w ~vaddr:buf ~len:1)
                 done;
                 0));
          let buf = Libc.ualloc c 16 in
          ignore (Libc.write c ~fd:p2c_w ~vaddr:buf ~len:1);
          ignore (Libc.read c ~fd:c2p_r ~vaddr:buf ~len:1);
          let us =
            Runner.time_us (fun () ->
                for _ = 1 to lat_iters do
                  ignore (Libc.write c ~fd:p2c_w ~vaddr:buf ~len:1);
                  ignore (Libc.read c ~fd:c2p_r ~vaddr:buf ~len:1)
                done)
          in
          (* lmbench reports the full round trip. *)
          out := us /. float_of_int lat_iters;
          ignore (Libc.close c p2c_w);
          ignore (Libc.waitpid c);
          0))

let bw_pipe profile =
  let total = 8 * 1024 * 1024 in
  let chunk = 65536 in
  measure profile (fun out ->
      Runner.spawn ~name:"bw_pipe" (fun c ->
          let rfd, wfd = Result.get_ok (Libc.pipe c) in
          ignore
            (Libc.fork c (fun uapi ->
                 let cc = Libc.make uapi in
                 let buf = Libc.ualloc cc chunk in
                 let sent = ref 0 in
                 while !sent < total do
                   let n = Libc.write cc ~fd:wfd ~vaddr:buf ~len:chunk in
                   if n <= 0 then sent := total else sent := !sent + n
                 done;
                 ignore (Libc.close cc wfd);
                 0));
          ignore (Libc.close c wfd);
          let buf = Libc.ualloc c chunk in
          let got = ref 0 in
          let us =
            Runner.time_us (fun () ->
                let continue = ref true in
                while !continue do
                  let n = Libc.read c ~fd:rfd ~vaddr:buf ~len:chunk in
                  if n <= 0 then continue := false else got := !got + n
                done)
          in
          out := Runner.mb_per_s ~bytes_moved:!got ~us;
          ignore (Libc.waitpid c);
          0))

let lat_fifo profile =
  measure profile (fun out ->
      Runner.spawn ~name:"lat_fifo" (fun c ->
          (* Create the two FIFOs through the fs (mknod analogue: the
             kernel attaches the ring on first open). *)
          let mkfifo path =
            let parent = "/tmp" in
            ignore parent;
            (* creat with kind Fifo: use mkdir-style create via openat is
               not expressible; use the registry-free trick: create then
               mark. Simplest ABI-true path: mkfifo is mknod(2), which we
               model with mkdir's create handler — so create via a
               dedicated mknod syscall is skipped and we pre-create the
               inode kernel-side. *)
            match Aster.Vfs.resolve_parent path with
            | Ok (p, leaf) ->
              ignore (p.Aster.Vfs.inode.Aster.Vfs.ops.Aster.Vfs.create p.Aster.Vfs.inode leaf Aster.Vfs.Fifo ~mode:0o644)
            | Error _ -> ()
          in
          mkfifo "/tmp/fifo1";
          mkfifo "/tmp/fifo2";
          ignore
            (Libc.fork c (fun uapi ->
                 let cc = Libc.make uapi in
                 let rfd = Libc.openf cc "/tmp/fifo1" ~flags:0 ~mode:0 in
                 let wfd = Libc.openf cc "/tmp/fifo2" ~flags:1 ~mode:0 in
                 let buf = Libc.ualloc cc 16 in
                 let continue = ref true in
                 while !continue do
                   let n = Libc.read cc ~fd:rfd ~vaddr:buf ~len:1 in
                   if n <= 0 then continue := false
                   else ignore (Libc.write cc ~fd:wfd ~vaddr:buf ~len:1)
                 done;
                 0));
          let wfd = Libc.openf c "/tmp/fifo1" ~flags:1 ~mode:0 in
          let rfd = Libc.openf c "/tmp/fifo2" ~flags:0 ~mode:0 in
          let buf = Libc.ualloc c 16 in
          ignore (Libc.write c ~fd:wfd ~vaddr:buf ~len:1);
          ignore (Libc.read c ~fd:rfd ~vaddr:buf ~len:1);
          let us =
            Runner.time_us (fun () ->
                for _ = 1 to lat_iters do
                  ignore (Libc.write c ~fd:wfd ~vaddr:buf ~len:1);
                  ignore (Libc.read c ~fd:rfd ~vaddr:buf ~len:1)
                done)
          in
          out := us /. float_of_int lat_iters;
          ignore (Libc.close c wfd);
          ignore (Libc.waitpid c);
          0))

let lat_unix profile =
  measure profile (fun out ->
      Runner.spawn ~name:"lat_unix" (fun c ->
          let sa = Libc.socket c ~domain:1 ~typ:1 in
          ignore (Libc.bind_unix c ~fd:sa ~path:"/tmp/lat_unix");
          ignore (Libc.listen c ~fd:sa ~backlog:2);
          ignore
            (Libc.fork c (fun uapi ->
                 let cc = Libc.make uapi in
                 let fd = Libc.socket cc ~domain:1 ~typ:1 in
                 ignore (Libc.connect_unix cc ~fd ~path:"/tmp/lat_unix");
                 let buf = Libc.ualloc cc 16 in
                 let continue = ref true in
                 while !continue do
                   let n = Libc.read cc ~fd ~vaddr:buf ~len:1 in
                   if n <= 0 then continue := false
                   else ignore (Libc.write cc ~fd ~vaddr:buf ~len:1)
                 done;
                 0));
          let conn = Libc.accept c ~fd:sa in
          let buf = Libc.ualloc c 16 in
          ignore (Libc.write c ~fd:conn ~vaddr:buf ~len:1);
          ignore (Libc.read c ~fd:conn ~vaddr:buf ~len:1);
          let us =
            Runner.time_us (fun () ->
                for _ = 1 to lat_iters do
                  ignore (Libc.write c ~fd:conn ~vaddr:buf ~len:1);
                  ignore (Libc.read c ~fd:conn ~vaddr:buf ~len:1)
                done)
          in
          out := us /. float_of_int lat_iters;
          ignore (Libc.shutdown c ~fd:conn);
          ignore (Libc.waitpid c);
          0))

let bw_unix profile =
  let total = 8 * 1024 * 1024 in
  let chunk = 65536 in
  measure profile (fun out ->
      Runner.spawn ~name:"bw_unix" (fun c ->
          let sa = Libc.socket c ~domain:1 ~typ:1 in
          ignore (Libc.bind_unix c ~fd:sa ~path:"/tmp/bw_unix");
          ignore (Libc.listen c ~fd:sa ~backlog:2);
          ignore
            (Libc.fork c (fun uapi ->
                 let cc = Libc.make uapi in
                 let fd = Libc.socket cc ~domain:1 ~typ:1 in
                 ignore (Libc.connect_unix cc ~fd ~path:"/tmp/bw_unix");
                 let buf = Libc.ualloc cc chunk in
                 let sent = ref 0 in
                 while !sent < total do
                   let n = Libc.write cc ~fd ~vaddr:buf ~len:chunk in
                   if n <= 0 then sent := total else sent := !sent + n
                 done;
                 ignore (Libc.shutdown cc ~fd);
                 0));
          let conn = Libc.accept c ~fd:sa in
          let buf = Libc.ualloc c chunk in
          let got = ref 0 in
          let us =
            Runner.time_us (fun () ->
                let continue = ref true in
                while !continue do
                  let n = Libc.read c ~fd:conn ~vaddr:buf ~len:chunk in
                  if n <= 0 then continue := false else got := !got + n
                done)
          in
          out := Runner.mb_per_s ~bytes_moved:!got ~us;
          ignore (Libc.waitpid c);
          0))

(* --- FS --- *)

let with_test_file c =
  ignore (Libc.mkdir c "/tmp/lmbench");
  let fd = Libc.openf c "/tmp/lmbench/f00" ~flags:0o101 ~mode:0o644 in
  ignore (Libc.write_str c ~fd "x");
  ignore (Libc.close c fd)

let lat_syscall_open profile =
  (* lmbench opens /dev/null. *)
  measure profile (fun out ->
      Runner.spawn ~name:"lat_open" (fun c ->
          let fd0 = Libc.openf c "/dev/null" ~flags:0 ~mode:0 in
          ignore (Libc.close c fd0);
          let us =
            Runner.time_us (fun () ->
                for _ = 1 to lat_iters do
                  let fd = Libc.openf c "/dev/null" ~flags:0 ~mode:0 in
                  ignore (Libc.close c fd)
                done)
          in
          out := us /. float_of_int lat_iters;
          0))

let lat_syscall_read profile =
  measure profile (fun out ->
      Runner.spawn ~name:"lat_read" (fun c ->
          let fd = Libc.openf c "/dev/zero" ~flags:0 ~mode:0 in
          let buf = Libc.ualloc c 16 in
          ignore (Libc.read c ~fd ~vaddr:buf ~len:1);
          let us =
            Runner.time_us (fun () ->
                for _ = 1 to lat_iters do
                  ignore (Libc.read c ~fd ~vaddr:buf ~len:1)
                done)
          in
          out := us /. float_of_int lat_iters;
          0))

let lat_syscall_write profile =
  measure profile (fun out ->
      Runner.spawn ~name:"lat_write" (fun c ->
          let fd = Libc.openf c "/dev/null" ~flags:1 ~mode:0 in
          let buf = Libc.ualloc c 16 in
          ignore (Libc.write c ~fd ~vaddr:buf ~len:1);
          let us =
            Runner.time_us (fun () ->
                for _ = 1 to lat_iters do
                  ignore (Libc.write c ~fd ~vaddr:buf ~len:1)
                done)
          in
          out := us /. float_of_int lat_iters;
          0))

let lat_syscall_stat profile =
  measure profile (fun out ->
      Runner.spawn ~name:"lat_stat" (fun c ->
          ignore (Libc.stat c "/dev/null");
          let us =
            Runner.time_us (fun () ->
                for _ = 1 to lat_iters do
                  ignore (Libc.stat c "/dev/null")
                done)
          in
          out := us /. float_of_int lat_iters;
          0))

let lat_syscall_fstat profile =
  measure profile (fun out ->
      Runner.spawn ~name:"lat_fstat" (fun c ->
          with_test_file c;
          let fd = Libc.openf c "/tmp/lmbench/f00" ~flags:0 ~mode:0 in
          ignore (Libc.fstat c fd);
          let us =
            Runner.time_us (fun () ->
                for _ = 1 to lat_iters do
                  ignore (Libc.fstat c fd)
                done)
          in
          out := us /. float_of_int lat_iters;
          0))

let bw_file_rd profile =
  let size = 8 * 1024 * 1024 in
  let chunk = 65536 in
  measure profile (fun out ->
      Runner.spawn ~name:"bw_file_rd" (fun c ->
          let fd = Libc.openf c "/tmp/big" ~flags:0o101 ~mode:0o644 in
          let buf = Libc.ualloc c chunk in
          let written = ref 0 in
          while !written < size do
            written := !written + Libc.write c ~fd ~vaddr:buf ~len:chunk
          done;
          ignore (Libc.close c fd);
          let fd = Libc.openf c "/tmp/big" ~flags:0 ~mode:0 in
          let got = ref 0 in
          let us =
            Runner.time_us (fun () ->
                let continue = ref true in
                while !continue do
                  let n = Libc.read c ~fd ~vaddr:buf ~len:chunk in
                  if n <= 0 then continue := false else got := !got + n
                done)
          in
          out := Runner.mb_per_s ~bytes_moved:!got ~us;
          0))

let lmdd ~src ~dst profile =
  let size = 4 * 1024 * 1024 in
  let chunk = 65536 in
  measure profile (fun out ->
      Runner.spawn ~name:"lmdd" (fun c ->
          let sf = Libc.openf c src ~flags:0o101 ~mode:0o644 in
          let buf = Libc.ualloc c chunk in
          let written = ref 0 in
          while !written < size do
            written := !written + Libc.write c ~fd:sf ~vaddr:buf ~len:chunk
          done;
          ignore (Libc.close c sf);
          let sf = Libc.openf c src ~flags:0 ~mode:0 in
          let df = Libc.openf c dst ~flags:0o101 ~mode:0o644 in
          let moved = ref 0 in
          let us =
            Runner.time_us (fun () ->
                let continue = ref true in
                while !continue do
                  let n = Libc.read c ~fd:sf ~vaddr:buf ~len:chunk in
                  if n <= 0 then continue := false
                  else begin
                    ignore (Libc.write c ~fd:df ~vaddr:buf ~len:n);
                    moved := !moved + n
                  end
                done)
          in
          out := Runner.mb_per_s ~bytes_moved:!moved ~us;
          0))

(* --- Net --- *)

let lat_udp_loopback profile =
  measure profile (fun out ->
      Runner.spawn ~name:"udp-srv" (fun c ->
          let fd = Libc.socket c ~domain:2 ~typ:2 in
          ignore (Libc.bind_inet c ~fd ~port:5001);
          let buf = Libc.ualloc c 64 in
          for _ = 1 to lat_iters + 1 do
            let n = Libc.recvfrom c ~fd ~vaddr:buf ~len:64 in
            ignore (Libc.sendto_inet c ~fd ~ip:lo_ip ~port:5002 ~vaddr:buf ~len:n)
          done;
          0);
      Runner.spawn ~name:"udp-cli" (fun c ->
          let fd = Libc.socket c ~domain:2 ~typ:2 in
          ignore (Libc.bind_inet c ~fd ~port:5002);
          let buf = Libc.ualloc c 64 in
          ignore (Libc.nanosleep_us c 100.);
          let round () =
            ignore (Libc.sendto_inet c ~fd ~ip:lo_ip ~port:5001 ~vaddr:buf ~len:4);
            ignore (Libc.recvfrom c ~fd ~vaddr:buf ~len:64)
          in
          round ();
          let us = Runner.time_us (fun () -> for _ = 1 to lat_iters do round () done) in
          out := us /. float_of_int lat_iters;
          0))

let lat_tcp_loopback profile =
  measure profile (fun out ->
      Runner.spawn ~name:"tcp-srv" (fun c ->
          let fd = Libc.socket c ~domain:2 ~typ:1 in
          ignore (Libc.bind_inet c ~fd ~port:5003);
          ignore (Libc.listen c ~fd ~backlog:2);
          let conn = Libc.accept c ~fd in
          let buf = Libc.ualloc c 64 in
          let continue = ref true in
          while !continue do
            let n = Libc.read c ~fd:conn ~vaddr:buf ~len:1 in
            if n <= 0 then continue := false
            else ignore (Libc.write c ~fd:conn ~vaddr:buf ~len:1)
          done;
          0);
      Runner.spawn ~name:"tcp-cli" (fun c ->
          let fd = Libc.socket c ~domain:2 ~typ:1 in
          let rec wait_connect tries =
            if Libc.connect_inet c ~fd ~ip:lo_ip ~port:5003 >= 0 then ()
            else if tries > 0 then begin
              ignore (Libc.nanosleep_us c 100.);
              wait_connect (tries - 1)
            end
          in
          wait_connect 50;
          let buf = Libc.ualloc c 64 in
          let round () =
            ignore (Libc.write c ~fd ~vaddr:buf ~len:1);
            ignore (Libc.read c ~fd ~vaddr:buf ~len:1)
          in
          round ();
          let us = Runner.time_us (fun () -> for _ = 1 to lat_iters do round () done) in
          out := us /. float_of_int lat_iters;
          ignore (Libc.shutdown c ~fd);
          0))

let bw_tcp_loopback ~msg profile =
  let total = 8 * 1024 * 1024 in
  measure profile (fun out ->
      Runner.spawn ~name:"bw-srv" (fun c ->
          let fd = Libc.socket c ~domain:2 ~typ:1 in
          ignore (Libc.bind_inet c ~fd ~port:5004);
          ignore (Libc.listen c ~fd ~backlog:2);
          let conn = Libc.accept c ~fd in
          let buf = Libc.ualloc c 65536 in
          let got = ref 0 in
          let us =
            Runner.time_us (fun () ->
                let continue = ref true in
                while !continue do
                  let n = Libc.read c ~fd:conn ~vaddr:buf ~len:65536 in
                  if n <= 0 then continue := false else got := !got + n
                done)
          in
          out := Runner.mb_per_s ~bytes_moved:!got ~us;
          0);
      Runner.spawn ~name:"bw-cli" (fun c ->
          let fd = Libc.socket c ~domain:2 ~typ:1 in
          let rec wait_connect tries =
            if Libc.connect_inet c ~fd ~ip:lo_ip ~port:5004 >= 0 then ()
            else if tries > 0 then begin
              ignore (Libc.nanosleep_us c 100.);
              wait_connect (tries - 1)
            end
          in
          wait_connect 50;
          let buf = Libc.ualloc c msg in
          let sent = ref 0 in
          while !sent < total do
            let n = Libc.write c ~fd ~vaddr:buf ~len:msg in
            if n <= 0 then sent := total else sent := !sent + n
          done;
          ignore (Libc.shutdown c ~fd);
          0))

(* Virtio rows: the peer lives on the host side of the tap. *)

let with_host profile setup =
  let k = Runner.boot ~profile in
  let host = Aster.Kernel.attach_host k in
  let out = ref nan in
  setup host out;
  Runner.run ();
  !out

let lat_udp_virtio profile =
  with_host profile (fun host out ->
      (* Host echo. *)
      let hsock = Aster.Udp.socket host.Aster.Kernel.hudp in
      ignore (Aster.Udp.bind hsock ~port:5001);
      ignore
        (Ostd.Task.spawn ~name:"host-udp-echo" (fun () ->
             let buf = Bytes.create 64 in
             for _ = 1 to lat_iters + 1 do
               match Aster.Udp.recvfrom hsock ~buf ~pos:0 ~len:64 with
               | Ok (n, ip, port) ->
                 ignore
                   (Aster.Udp.sendto hsock ~dst_ip:ip ~dst_port:port ~buf ~pos:0 ~len:n)
               | Error _ -> ()
             done));
      Runner.spawn ~name:"udp-cli" (fun c ->
          let fd = Libc.socket c ~domain:2 ~typ:2 in
          ignore (Libc.bind_inet c ~fd ~port:5002);
          let buf = Libc.ualloc c 64 in
          ignore (Libc.nanosleep_us c 200.);
          let round () =
            ignore
              (Libc.sendto_inet c ~fd ~ip:Aster.Kernel.host_ip ~port:5001 ~vaddr:buf ~len:4);
            ignore (Libc.recvfrom c ~fd ~vaddr:buf ~len:64)
          in
          round ();
          let us = Runner.time_us (fun () -> for _ = 1 to lat_iters do round () done) in
          out := us /. float_of_int lat_iters;
          0))

let lat_tcp_virtio profile =
  with_host profile (fun host out ->
      (match Aster.Tcp.listen host.Aster.Kernel.htcp ~port:5003 with
      | Error _ -> ()
      | Ok l ->
        ignore
          (Ostd.Task.spawn ~name:"host-tcp-echo" (fun () ->
               let conn = Aster.Tcp.accept l in
               let buf = Bytes.create 64 in
               let continue = ref true in
               while !continue do
                 match Aster.Tcp.recv conn ~buf ~pos:0 ~len:1 with
                 | Ok 0 | Error _ -> continue := false
                 | Ok n -> ignore (Aster.Tcp.send conn ~buf ~pos:0 ~len:n)
               done)));
      Runner.spawn ~name:"tcp-cli" (fun c ->
          let fd = Libc.socket c ~domain:2 ~typ:1 in
          ignore (Libc.connect_inet c ~fd ~ip:Aster.Kernel.host_ip ~port:5003);
          let buf = Libc.ualloc c 64 in
          let round () =
            ignore (Libc.write c ~fd ~vaddr:buf ~len:1);
            ignore (Libc.read c ~fd ~vaddr:buf ~len:1)
          in
          round ();
          let n = 150 in
          let us = Runner.time_us (fun () -> for _ = 1 to n do round () done) in
          out := us /. float_of_int n;
          ignore (Libc.shutdown c ~fd);
          0))

let bw_tcp_virtio ~msg profile =
  let total = 4 * 1024 * 1024 in
  with_host profile (fun host out ->
      (match Aster.Tcp.listen host.Aster.Kernel.htcp ~port:5004 with
      | Error _ -> ()
      | Ok l ->
        ignore
          (Ostd.Task.spawn ~name:"host-tcp-sink" (fun () ->
               let conn = Aster.Tcp.accept l in
               let buf = Bytes.create 65536 in
               let got = ref 0 in
               let t0 = Sim.Clock.now () in
               let continue = ref true in
               while !continue do
                 match Aster.Tcp.recv conn ~buf ~pos:0 ~len:65536 with
                 | Ok 0 | Error _ -> continue := false
                 | Ok n -> got := !got + n
               done;
               let us = Sim.Clock.to_us (Int64.sub (Sim.Clock.now ()) t0) in
               out := Runner.mb_per_s ~bytes_moved:!got ~us)));
      Runner.spawn ~name:"bw-cli" (fun c ->
          let fd = Libc.socket c ~domain:2 ~typ:1 in
          ignore (Libc.connect_inet c ~fd ~ip:Aster.Kernel.host_ip ~port:5004);
          let buf = Libc.ualloc c msg in
          let sent = ref 0 in
          while !sent < total do
            let n = Libc.write c ~fd ~vaddr:buf ~len:msg in
            if n <= 0 then sent := total else sent := !sent + n
          done;
          ignore (Libc.shutdown c ~fd);
          0))

(* Host -> guest bulk stream: the guest is the RECEIVER, so this is the
   row that exercises the GRO reap path (bw_tcp_virtio above measures
   guest TX). Not an lmbench table row — the offload ablations and the
   smoke gate drive it directly. *)
let bw_tcp_rx_virtio ~msg profile =
  let total = 4 * 1024 * 1024 in
  with_host profile (fun host out ->
      let ready = ref false in
      Runner.spawn ~name:"bw-rx-sink" (fun c ->
          let sfd = Libc.socket c ~domain:2 ~typ:1 in
          ignore (Libc.bind_inet c ~fd:sfd ~port:5005);
          ignore (Libc.listen c ~fd:sfd ~backlog:1);
          ready := true;
          let conn = Libc.accept c ~fd:sfd in
          if conn < 0 then 1
          else begin
            let buf = Libc.ualloc c 65536 in
            let got = ref 0 in
            let t0 = Sim.Clock.now () in
            let continue = ref true in
            while !continue do
              let n = Libc.read c ~fd:conn ~vaddr:buf ~len:65536 in
              if n <= 0 then continue := false else got := !got + n
            done;
            let us = Sim.Clock.to_us (Int64.sub (Sim.Clock.now ()) t0) in
            out := Runner.mb_per_s ~bytes_moved:!got ~us;
            ignore (Libc.close c conn);
            0
          end);
      ignore
        (Ostd.Task.spawn ~name:"host-tcp-src" (fun () ->
             while not !ready do
               Ostd.Task.yield_now ()
             done;
             match
               Aster.Tcp.connect host.Aster.Kernel.htcp ~dst_ip:Aster.Kernel.guest_ip
                 ~dst_port:5005
             with
             | Error _ -> ()
             | Ok conn ->
               let buf = Bytes.create msg in
               let sent = ref 0 in
               while !sent < total do
                 match Aster.Tcp.send conn ~buf ~pos:0 ~len:(min msg (total - !sent)) with
                 | Ok n -> sent := !sent + n
                 | Error _ -> sent := total
               done;
               Aster.Tcp.close conn)))

let us_row name category run = { name; category; unit_ = "us"; higher_better = false; run }

let bw_row name category run = { name; category; unit_ = "MB/s"; higher_better = true; run }

let rows =
  [
    us_row "lat_syscall null" "Proc" lat_syscall_null;
    us_row "lat_ctx 18" "Proc" lat_ctx;
    us_row "lat_proc fork" "Proc" lat_proc_fork;
    us_row "lat_proc exec" "Proc" lat_proc_exec;
    us_row "lat_proc shell" "Proc" lat_proc_shell;
    us_row "lat_pagefault" "Mem" lat_pagefault;
    us_row "lat_mmap 4m" "Mem" lat_mmap;
    bw_row "bw_mmap 256m" "Mem" bw_mmap;
    us_row "lat_pipe" "IPC" pingpong_pipe;
    bw_row "bw_pipe" "IPC" bw_pipe;
    us_row "lat_fifo" "IPC" lat_fifo;
    us_row "lat_unix" "IPC" lat_unix;
    bw_row "bw_unix" "IPC" bw_unix;
    us_row "lat_syscall open" "FS" lat_syscall_open;
    us_row "lat_syscall read" "FS" lat_syscall_read;
    us_row "lat_syscall write" "FS" lat_syscall_write;
    us_row "lat_syscall stat" "FS" lat_syscall_stat;
    us_row "lat_syscall fstat" "FS" lat_syscall_fstat;
    bw_row "bw_file_rd 512m" "FS" bw_file_rd;
    bw_row "lmdd(Ramfs->Ramfs)" "FS" (lmdd ~src:"/tmp/src" ~dst:"/tmp/dst");
    bw_row "lmdd(Ramfs->Ext2)" "FS" (lmdd ~src:"/tmp/src" ~dst:"/ext2/dst");
    bw_row "lmdd(Ext2->Ramfs)" "FS" (lmdd ~src:"/ext2/src" ~dst:"/tmp/dst");
    bw_row "lmdd(Ext2->Ext2)" "FS" (lmdd ~src:"/ext2/src" ~dst:"/ext2/dst");
    us_row "lat_udp (loopback)" "Net:Loopback" lat_udp_loopback;
    us_row "lat_tcp (loopback)" "Net:Loopback" lat_tcp_loopback;
    bw_row "bw_tcp 128 (loopback)" "Net:Loopback" (bw_tcp_loopback ~msg:128);
    bw_row "bw_tcp 64k (loopback)" "Net:Loopback" (bw_tcp_loopback ~msg:65536);
    us_row "lat_udp (virtio)" "Net:VirtIO" lat_udp_virtio;
    us_row "lat_tcp (virtio)" "Net:VirtIO" lat_tcp_virtio;
    bw_row "bw_tcp 128 (virtio)" "Net:VirtIO" (bw_tcp_virtio ~msg:128);
    bw_row "bw_tcp 64k (virtio)" "Net:VirtIO" (bw_tcp_virtio ~msg:65536);
  ]

let find name = List.find (fun r -> r.name = name) rows
