(** A miniature SQLite-like storage engine: page-based B+trees over a
    database file, a user-space page cache, and a rollback journal with
    the same durability protocol shape as SQLite's "delete" journal mode
    — including the 4-byte journal-header pwrites the paper's strace
    analysis blames for the VACUUM gap (§6.1.2).

    All I/O goes through the simulated Linux ABI (open/pread/pwrite/
    fsync/unlink); the engine itself burns user cycles per operation. *)

type db

type key = K_int of int | K_text of string

val open_db : Libc.t -> string -> db
val close_db : db -> unit

(** {2 Transactions (rollback-journal protocol)} *)

val begin_txn : db -> unit
val commit : db -> unit

val commit_durable : db -> bool
(** [commit], reporting whether every durability barrier (journal
    fsync, database fsync, journal unlink + directory fsync) succeeded.
    [false] means the transaction may be rolled back at the next open. *)

(** {2 Tables and indexes} *)

val create_table : db -> string -> unit
val create_index : db -> table:string -> name:string -> unit
(** Builds the index from existing rows (full scan + N inserts). *)

val insert : db -> table:string -> key -> string -> unit
(** Within a transaction; maintains any indexes (indexed by row text). *)

val replace : db -> table:string -> key -> string -> unit

val lookup : db -> table:string -> key -> string option

val range_count : db -> table:string -> lo:key -> hi:key -> int
(** Index/PK range scan: touches only the pages in range. *)

val full_scan : db -> table:string -> f:(key -> string -> unit) -> int
(** Unindexed scan: touches every leaf page; returns rows visited. *)

val update_range : db -> table:string -> lo:key -> hi:key -> f:(string -> string) -> int
val delete_range : db -> table:string -> lo:key -> hi:key -> int
val delete_key : db -> table:string -> key -> bool

val row_count : db -> table:string -> int

val vacuum : db -> unit
(** Rebuild the database file by copying every row into a fresh file,
    with the journal-header update pattern of real VACUUM. *)

val integrity_check : db -> int
(** Walk every page of every tree; returns pages visited. *)

val analyze : db -> unit

val pages_in_file : db -> int
