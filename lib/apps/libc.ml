module N = Aster.Syscall_nr

type t = {
  u : Ostd.User.uapi;
  mutable scratch_base : int;
  mutable scratch_pos : int;
  scratch_size : int;
}

let i64 = Int64.of_int

let syscall t nr args = Int64.to_int (t.u.Ostd.User.sys nr args)

let mmap_raw u len =
  Int64.to_int (u.Ostd.User.sys N.mmap [| 0L; i64 len; 3L; 0x22L; -1L; 0L |])

let make u =
  let scratch_size = 256 * 1024 in
  let scratch_base = mmap_raw u scratch_size in
  { u; scratch_base; scratch_pos = 0; scratch_size }

let raw t = t.u

(* --- Fork tokens --- *)

let fork_tokens : (int64, Ostd.User.uapi -> int) Hashtbl.t = Hashtbl.create 32

let next_token = ref 0L

let resolver_installed = ref false

let install_child_resolver () =
  if not !resolver_installed then begin
    resolver_installed := true;
    Aster.Process.set_child_resolver (fun tok ->
        match Hashtbl.find_opt fork_tokens tok with
        | Some body ->
          Hashtbl.remove fork_tokens tok;
          Some body
        | None -> None)
  end

(* --- User memory helpers --- *)

let ualloc t len = mmap_raw t.u len

let scratch_alloc t len =
  let len = (len + 15) land lnot 15 in
  if len > t.scratch_size then invalid_arg "Libc: scratch allocation too large";
  if t.scratch_pos + len > t.scratch_size then t.scratch_pos <- 0;
  let addr = t.scratch_base + t.scratch_pos in
  t.scratch_pos <- t.scratch_pos + len;
  addr

let put_bytes t b =
  let addr = scratch_alloc t (Bytes.length b) in
  t.u.Ostd.User.mem_write addr b;
  addr

let put_string t s = put_bytes t (Bytes.of_string (s ^ "\000"))

let get_bytes t vaddr len =
  let b = Bytes.create len in
  t.u.Ostd.User.mem_read vaddr b;
  b

(* --- Wrappers --- *)

let openf t path ~flags ~mode =
  syscall t N.open_ [| i64 (put_string t path); i64 flags; i64 mode |]

let close t fd = syscall t N.close [| i64 fd |]

let read t ~fd ~vaddr ~len = syscall t N.read [| i64 fd; i64 vaddr; i64 len |]

let write t ~fd ~vaddr ~len = syscall t N.write [| i64 fd; i64 vaddr; i64 len |]

let read_str t ~fd ~len =
  let vaddr = scratch_alloc t len in
  let n = read t ~fd ~vaddr ~len in
  if n <= 0 then "" else Bytes.to_string (get_bytes t vaddr n)

let write_str t ~fd s =
  let vaddr = put_bytes t (Bytes.of_string s) in
  write t ~fd ~vaddr ~len:(String.length s)

let pread t ~fd ~vaddr ~len ~off = syscall t N.pread64 [| i64 fd; i64 vaddr; i64 len; i64 off |]

let pwrite t ~fd ~vaddr ~len ~off =
  syscall t N.pwrite64 [| i64 fd; i64 vaddr; i64 len; i64 off |]

let lseek t ~fd ~off ~whence = syscall t N.lseek [| i64 fd; i64 off; i64 whence |]

let stat t path =
  let sb = scratch_alloc t Aster.Abi.stat_size in
  let r = syscall t N.stat [| i64 (put_string t path); i64 sb |] in
  if r < 0 then Error (-r) else Ok (Aster.Abi.decode_stat (get_bytes t sb Aster.Abi.stat_size))

let fstat t fd =
  let sb = scratch_alloc t Aster.Abi.stat_size in
  let r = syscall t N.fstat [| i64 fd; i64 sb |] in
  if r < 0 then Error (-r) else Ok (Aster.Abi.decode_stat (get_bytes t sb Aster.Abi.stat_size))

let unlink t path = syscall t N.unlink [| i64 (put_string t path) |]

let mkdir t path = syscall t N.mkdir [| i64 (put_string t path); 0o755L |]

let rmdir t path = syscall t N.rmdir [| i64 (put_string t path) |]

let rename t a b = syscall t N.rename [| i64 (put_string t a); i64 (put_string t b) |]

let fsync t fd = syscall t N.fsync [| i64 fd |]

let ftruncate t ~fd ~len = syscall t N.ftruncate [| i64 fd; i64 len |]

let chdir t path = syscall t N.chdir [| i64 (put_string t path) |]

let getcwd t =
  let buf = scratch_alloc t 256 in
  let n = syscall t N.getcwd [| i64 buf; 256L |] in
  if n <= 0 then "/" else Bytes.to_string (get_bytes t buf (n - 1))

let getdents t ~fd =
  let cap = 16384 in
  let buf = scratch_alloc t cap in
  let n = syscall t N.getdents64 [| i64 fd; i64 buf; i64 cap |] in
  if n <= 0 then [] else Aster.Abi.decode_dirents (get_bytes t buf n)

let pipe t =
  let fds = scratch_alloc t 8 in
  let r = syscall t N.pipe [| i64 fds |] in
  if r < 0 then Error (-r)
  else begin
    let b = get_bytes t fds 8 in
    Ok (Int32.to_int (Bytes.get_int32_le b 0), Int32.to_int (Bytes.get_int32_le b 4))
  end

let dup2 t oldfd newfd = syscall t N.dup2 [| i64 oldfd; i64 newfd |]

let access t path = syscall t N.access [| i64 (put_string t path); 0L |]

let symlink t ~target ~linkpath =
  syscall t N.symlink [| i64 (put_string t target); i64 (put_string t linkpath) |]

let readlink t path =
  let buf = scratch_alloc t 256 in
  let n = syscall t N.readlink [| i64 (put_string t path); i64 buf; 256L |] in
  if n < 0 then Error (-n) else Ok (Bytes.to_string (get_bytes t buf n))

let mmap t ~len = mmap_raw t.u len

let munmap t ~addr ~len = syscall t N.munmap [| i64 addr; i64 len |]

let brk t v = syscall t N.brk [| i64 v |]

let getpid t = syscall t N.getpid [||]

let getppid t = syscall t N.getppid [||]

let sched_yield t = syscall t N.sched_yield [||]

let nanosleep_us t us =
  let sec = Int64.of_float (us /. 1e6) in
  let nsec = Int64.of_float ((us -. (Int64.to_float sec *. 1e6)) *. 1e3) in
  let ts = put_bytes t (Aster.Abi.encode_timespec ~sec ~nsec) in
  syscall t N.nanosleep [| i64 ts; 0L |]

let clock_monotonic_ns t =
  let ts = scratch_alloc t 16 in
  ignore (syscall t N.clock_gettime [| 1L; i64 ts |]);
  let sec, nsec = Aster.Abi.decode_timespec (get_bytes t ts 16) in
  Int64.add (Int64.mul sec 1_000_000_000L) nsec

(* CLOCK_PROCESS_CPUTIME_ID: CPU time consumed, in nanoseconds. *)
let clock_process_cputime_ns t =
  let ts = scratch_alloc t 16 in
  ignore (syscall t N.clock_gettime [| 2L; i64 ts |]);
  let sec, nsec = Aster.Abi.decode_timespec (get_bytes t ts 16) in
  Int64.add (Int64.mul sec 1_000_000_000L) nsec

type rusage = {
  ru_utime_us : int64;
  ru_stime_us : int64;
  ru_nvcsw : int64;
  ru_nivcsw : int64;
}

let getrusage ?(who = 0) t =
  let buf = scratch_alloc t 144 in
  let r = syscall t N.getrusage [| i64 who; i64 buf |] in
  if r < 0 then None
  else begin
    let b = get_bytes t buf 144 in
    let timeval off =
      Int64.add
        (Int64.mul (Bytes.get_int64_le b off) 1_000_000L)
        (Bytes.get_int64_le b (off + 8))
    in
    Some
      {
        ru_utime_us = timeval 0;
        ru_stime_us = timeval 16;
        ru_nvcsw = Bytes.get_int64_le b 128;
        ru_nivcsw = Bytes.get_int64_le b 136;
      }
  end

type tms = { tms_utime : int64; tms_stime : int64; tms_uptime : int64 (* return value *) }

let times t =
  let buf = scratch_alloc t 32 in
  let r = syscall t N.times [| i64 buf |] in
  let b = get_bytes t buf 32 in
  {
    tms_utime = Bytes.get_int64_le b 0;
    tms_stime = Bytes.get_int64_le b 8;
    tms_uptime = Int64.of_int r;
  }

let uname t =
  let buf = scratch_alloc t 128 in
  ignore (syscall t N.uname [| i64 buf |]);
  let b = get_bytes t buf 128 in
  match Bytes.index_opt b '\000' with
  | Some i -> Bytes.sub_string b 0 i
  | None -> Bytes.to_string b

let fork t child =
  next_token := Int64.add !next_token 1L;
  let tok = !next_token in
  Hashtbl.replace fork_tokens tok child;
  syscall t N.fork [| tok |]

let clone_thread t body =
  next_token := Int64.add !next_token 1L;
  let tok = !next_token in
  Hashtbl.replace fork_tokens tok body;
  syscall t 56 [| tok |]

let execve t path argv =
  let path_ptr = put_string t path in
  let ptrs = List.map (fun a -> put_string t a) argv in
  let arr = Bytes.create (8 * (List.length ptrs + 1)) in
  List.iteri (fun idx p -> Bytes.set_int64_le arr (8 * idx) (i64 p)) ptrs;
  Bytes.set_int64_le arr (8 * List.length ptrs) 0L;
  let argv_ptr = put_bytes t arr in
  syscall t N.execve [| i64 path_ptr; i64 argv_ptr |]

let exit t code =
  ignore (syscall t N.exit [| i64 code |]);
  assert false

let waitpid t =
  let status = scratch_alloc t 4 in
  let r = syscall t N.wait4 [| -1L; i64 status; 0L; 0L |] in
  if r < 0 then Error (-r)
  else begin
    let b = get_bytes t status 4 in
    Ok (r, (Int32.to_int (Bytes.get_int32_le b 0) lsr 8) land 0xff)
  end

let socket t ~domain ~typ = syscall t N.socket [| i64 domain; i64 typ; 0L |]

let bind_inet t ~fd ~port =
  let sa = put_bytes t (Aster.Abi.encode_sockaddr_in ~port ~ip:0) in
  syscall t N.bind [| i64 fd; i64 sa; 8L |]

let bind_unix t ~fd ~path =
  let b = Aster.Abi.encode_sockaddr_un path in
  let sa = put_bytes t b in
  syscall t N.bind [| i64 fd; i64 sa; i64 (Bytes.length b) |]

let listen t ~fd ~backlog = syscall t N.listen [| i64 fd; i64 backlog |]

let accept t ~fd = syscall t N.accept [| i64 fd; 0L; 0L |]

let accept4 t ~fd ~flags = syscall t N.accept4 [| i64 fd; 0L; 0L; i64 flags |]

let fcntl_getfl t ~fd = syscall t N.fcntl [| i64 fd; 3L; 0L |]

let fcntl_setfl t ~fd ~flags = syscall t N.fcntl [| i64 fd; 4L; i64 flags |]

let o_nonblock = 0o4000

let set_nonblock t ~fd =
  let fl = fcntl_getfl t ~fd in
  if fl < 0 then fl else fcntl_setfl t ~fd ~flags:(fl lor o_nonblock)

(* --- poll / epoll --- *)

let pollin = 0x001
let pollout = 0x004
let pollerr = 0x008
let pollhup = 0x010
let pollnval = 0x020
let pollrdhup = 0x2000

(* poll(2): [fds] is (fd, events) pairs; returns ready count and the
   per-fd revents, in order. *)
let poll t fds ~timeout_ms =
  let n = List.length fds in
  let arr = Bytes.make (8 * n) '\000' in
  List.iteri
    (fun i (fd, events) ->
      Bytes.set_int32_le arr (8 * i) (Int32.of_int fd);
      Bytes.set_uint16_le arr ((8 * i) + 4) events)
    fds;
  let ptr = put_bytes t arr in
  let r = syscall t N.poll [| i64 ptr; i64 n; i64 timeout_ms |] in
  if r < 0 then Error (-r)
  else begin
    let b = get_bytes t ptr (8 * n) in
    let revs = List.mapi (fun i (fd, _) -> (fd, Bytes.get_uint16_le b ((8 * i) + 6))) fds in
    Ok (r, revs)
  end

let epollin = pollin
let epollout = pollout
let epollerr = pollerr
let epollhup = pollhup
let epollrdhup = pollrdhup
let epolloneshot = 1 lsl 30
let epollet = 1 lsl 31
let epoll_ctl_add = 1
let epoll_ctl_del = 2
let epoll_ctl_mod = 3

let epoll_create1 t = syscall t N.epoll_create1 [| 0L |]

(* struct epoll_event: packed u32 events + u64 data. *)
let epoll_ctl t ~epfd ~op ~fd ~events ~data =
  let ev = Bytes.make 12 '\000' in
  Bytes.set_int32_le ev 0 (Int32.of_int events);
  Bytes.set_int64_le ev 4 data;
  let ptr = put_bytes t ev in
  syscall t N.epoll_ctl [| i64 epfd; i64 op; i64 fd; i64 ptr |]

(* Returns ready count and (data, events) pairs. *)
let epoll_wait t ~epfd ~maxevents ~timeout_ms =
  let ptr = scratch_alloc t (12 * maxevents) in
  let r = syscall t N.epoll_wait [| i64 epfd; i64 ptr; i64 maxevents; i64 timeout_ms |] in
  if r < 0 then Error (-r)
  else begin
    let b = get_bytes t ptr (12 * r) in
    let evs =
      List.init r (fun i ->
          let events = Int32.to_int (Bytes.get_int32_le b (12 * i)) land 0xffffffff in
          let data = Bytes.get_int64_le b ((12 * i) + 4) in
          (data, events))
    in
    Ok (r, evs)
  end

let connect_inet t ~fd ~ip ~port =
  let sa = put_bytes t (Aster.Abi.encode_sockaddr_in ~port ~ip) in
  syscall t N.connect [| i64 fd; i64 sa; 8L |]

let connect_unix t ~fd ~path =
  let b = Aster.Abi.encode_sockaddr_un path in
  let sa = put_bytes t b in
  syscall t N.connect [| i64 fd; i64 sa; i64 (Bytes.length b) |]

let sendto_inet t ~fd ~ip ~port ~vaddr ~len =
  let sa = put_bytes t (Aster.Abi.encode_sockaddr_in ~port ~ip) in
  syscall t N.sendto [| i64 fd; i64 vaddr; i64 len; 0L; i64 sa; 8L |]

let recvfrom t ~fd ~vaddr ~len = syscall t N.recvfrom [| i64 fd; i64 vaddr; i64 len; 0L; 0L; 0L |]

let sendfile t ~out_fd ~in_fd ~count =
  syscall t N.sendfile [| i64 out_fd; i64 in_fd; 0L; i64 count |]

let shutdown t ~fd = syscall t N.shutdown [| i64 fd; 2L |]

let set_nodelay t ~fd = syscall t N.setsockopt [| i64 fd; 6L; 1L; 0L; 0L |]

let mkfifo t path =
  syscall t N.mknod [| i64 (put_string t path); i64 (0o010000 lor 0o644) |]

let kill t ~pid ~signal = syscall t N.kill [| i64 pid; i64 signal |]

let sigaction_raw t signal v =
  let act = scratch_alloc t 8 in
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  t.u.Ostd.User.mem_write act b;
  syscall t N.rt_sigaction [| i64 signal; i64 act; 0L |]

let signal_ignore t signal = sigaction_raw t signal 1L

let signal_default t signal = sigaction_raw t signal 0L

let sigmask_raw t how signal =
  let set = scratch_alloc t 8 in
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int (1 lsl (signal - 1)));
  t.u.Ostd.User.mem_write set b;
  syscall t N.rt_sigprocmask [| i64 how; i64 set; 0L |]

let sigblock t signal = sigmask_raw t 0 signal

let sigunblock t signal = sigmask_raw t 1 signal

let sigpending t =
  let set = scratch_alloc t 8 in
  ignore (syscall t N.rt_sigpending [| i64 set |]);
  Int64.to_int (Bytes.get_int64_le (get_bytes t set 8) 0)

(* --- kprobe probe surface --- *)

let probe_load t text =
  let vaddr = put_bytes t (Bytes.of_string text) in
  syscall t N.probe_load [| i64 vaddr; i64 (String.length text) |]

let probe_read t name =
  let cap = 4096 in
  let buf = Buffer.create 256 in
  let rec loop off =
    (* re-stage the name each round: scratch wraps on long reads *)
    let namep = put_string t name in
    let vaddr = scratch_alloc t cap in
    let n = syscall t N.probe_read [| i64 namep; i64 vaddr; i64 cap; i64 off |] in
    if n < 0 then Error (-n)
    else if n = 0 then Ok (Buffer.contents buf)
    else begin
      Buffer.add_bytes buf (get_bytes t vaddr n);
      if n < cap then Ok (Buffer.contents buf) else loop (off + n)
    end
  in
  loop 0

(* --- kspan request boundaries --- *)

let span_begin t ~cls ~name =
  let clsp = put_string t cls in
  let namep = put_string t name in
  syscall t N.span_begin [| i64 clsp; i64 namep |]

let span_end t id = syscall t N.span_end [| i64 id |]
