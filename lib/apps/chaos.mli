(** Chaos soak: mini-app workloads under a deterministic fault schedule.

    Boots a kernel, arms {!Sim.Fault} with the given seed and schedule,
    runs file-system writers (write / fsync / read-back-verify) alongside
    a redis-style network workload, then disarms the plane and audits the
    wreckage: every workload must have completed or failed with a proper
    errno (liveness), a final sync must leave the buffer cache
    byte-identical to the device (durability), and no [Kernel_panic] may
    escape (containment). Shared by the [chaos] CLI subcommand and the
    [@chaos] test alias. *)

type outcome = {
  seed : int64;
  completed : int;  (** workloads that ran to the end successfully *)
  failed_errno : int;  (** workloads that failed with a sane errno — graceful *)
  hung : int;  (** workloads that never finished: a liveness violation *)
  corrupt : int;  (** read-back verification mismatches seen by user code *)
  panics : int;  (** [Kernel_panic] escapes — must be zero *)
  sync_ok : bool;  (** the final sync reported success *)
  blocks_checked : int;
  mismatches : int;  (** cache-vs-device diffs; must be 0 when [sync_ok] *)
  fault_log : string list;  (** deterministic: same seed, same schedule => same log *)
  report : (string * int) list;  (** {!Sim.Stats.fault_report} quartet *)
}

val default_schedule : (string * float) list
(** Every fault site armed at soak-tuned probabilities. *)

val nfiles : int
(** Number of file-system writer workloads the soak spawns (the network
    bench adds one more tracked workload). *)

val run :
  ?profile:Sim.Profile.t -> ?schedule:(string * float) list -> seed:int64 -> unit -> outcome

(** Batched-TX network chaos: two concurrent guest→host streams with the
    TX fault plane (tx_fail / tx_drop) hot for the whole run. Mid-burst
    failures must split descriptor chains onto the retry ladder, dropped
    completions must quarantine buffers, and every soft error must be
    claimed by the socket that owned the frame ([unclaimed] stays 0).
    App-level oracle: each sink byte-identical to its own pattern. *)
type net_outcome = {
  nseed : int64;
  rcs : int * int;  (** client exit codes; 0 = wrote everything *)
  sinks : string * string;  (** bytes each host sink application received *)
  eofs : bool * bool;  (** each sink saw a clean FIN *)
  npanics : int;
  splits : int;  (** net.burst_split: mid-burst errors that split a chain *)
  quarantined : int;  (** buffers leaked to the deadline quarantine *)
  gave_up : int;  (** frames abandoned after the retry ladder *)
  soft_err : int;  (** tcp.tx_soft_err: errors claimed by the owning socket *)
  unclaimed : int;  (** net.tx_err_unclaimed: must stay 0 — no misattribution *)
  injected : int;  (** tx_fail + tx_drop rolls that fired *)
  nfault_log : string list;
}

val net_schedule : (string * float) list
(** tx_fail / tx_drop probabilities tuned so both degradation paths fire
    while TCP still repairs every loss. *)

val net_pattern : stream:int -> int -> Bytes.t
(** The per-stream payload pattern (distinct per stream id). *)

val net_batch_run :
  ?profile:Sim.Profile.t ->
  ?schedule:(string * float) list ->
  seed:int64 ->
  unit ->
  net_outcome

type hang_outcome = {
  victim_rc : int;  (** 0 = the victim still completed once rescued *)
  hog_ms : int;
  wd_fired : int;  (** watchdog.hung_task.fired after the run *)
  wd_maps : string;  (** rendered maps of the watchdog program *)
}

val hang_run : ?profile:Sim.Profile.t -> ?hog_ms:int -> unit -> hang_outcome
(** Starve a Ready victim under a non-yielding CPU hog and report
    whether the always-on hung-task watchdog caught it. *)
