(** Chaos soak: mini-app workloads under a deterministic fault schedule.

    Boots a kernel, arms {!Sim.Fault} with the given seed and schedule,
    runs file-system writers (write / fsync / read-back-verify) alongside
    a redis-style network workload, then disarms the plane and audits the
    wreckage: every workload must have completed or failed with a proper
    errno (liveness), a final sync must leave the buffer cache
    byte-identical to the device (durability), and no [Kernel_panic] may
    escape (containment). Shared by the [chaos] CLI subcommand and the
    [@chaos] test alias. *)

type outcome = {
  seed : int64;
  completed : int;  (** workloads that ran to the end successfully *)
  failed_errno : int;  (** workloads that failed with a sane errno — graceful *)
  hung : int;  (** workloads that never finished: a liveness violation *)
  corrupt : int;  (** read-back verification mismatches seen by user code *)
  panics : int;  (** [Kernel_panic] escapes — must be zero *)
  sync_ok : bool;  (** the final sync reported success *)
  blocks_checked : int;
  mismatches : int;  (** cache-vs-device diffs; must be 0 when [sync_ok] *)
  fault_log : string list;  (** deterministic: same seed, same schedule => same log *)
  report : (string * int) list;  (** {!Sim.Stats.fault_report} quartet *)
}

val default_schedule : (string * float) list
(** Every fault site armed at soak-tuned probabilities. *)

val nfiles : int
(** Number of file-system writer workloads the soak spawns (the network
    bench adds one more tracked workload). *)

val run :
  ?profile:Sim.Profile.t -> ?schedule:(string * float) list -> seed:int64 -> unit -> outcome
