(* c10k: event-driven echo service at connection scale.

   The guest runs a single-task epoll echo server in edge-triggered
   mode: accept4(SOCK_NONBLOCK) conns, drain-until-EAGAIN per event.
   The host holds a pool of mostly-idle connections against it and, per
   round, retires and replaces a few (churn) then pings a small batch,
   timing each echo. Because epoll_wait sweeps only the ready queue,
   the per-wait work (the epoll.scan_work counter) and the echo tail
   must stay flat as the idle pool grows — O(ready), not O(registered).
   The @bench-smoke gate pins exactly that. *)

let port = 7000

let spawn_server () =
  Runner.spawn ~name:"c10k-srv" (fun c ->
      let sfd = Libc.socket c ~domain:2 ~typ:1 in
      ignore (Libc.bind_inet c ~fd:sfd ~port);
      ignore (Libc.listen c ~fd:sfd ~backlog:4096);
      ignore (Libc.set_nonblock c ~fd:sfd);
      let ep = Libc.epoll_create1 c in
      ignore
        (Libc.epoll_ctl c ~epfd:ep ~op:Libc.epoll_ctl_add ~fd:sfd
           ~events:(Libc.epollin lor Libc.epollet)
           ~data:(Int64.of_int sfd));
      let buf = Libc.ualloc c 65536 in
      (* close(2) removes the fd from the interest list (EPOLLFREE),
         so teardown is one syscall even at churn rate. *)
      let drop fd = ignore (Libc.close c fd) in
      let accept_burst () =
        let continue = ref true in
        while !continue do
          let conn = Libc.accept4 c ~fd:sfd ~flags:Libc.o_nonblock in
          if conn < 0 then continue := false
          else
            ignore
              (Libc.epoll_ctl c ~epfd:ep ~op:Libc.epoll_ctl_add ~fd:conn
                 ~events:(Libc.epollin lor Libc.epollet lor Libc.epollrdhup)
                 ~data:(Int64.of_int conn))
        done
      in
      (* ET contract: a reported conn must be drained to EAGAIN or the
         edge is lost. Echo every chunk straight back. *)
      let serve_conn fd =
        let continue = ref true in
        while !continue do
          let n = Libc.read c ~fd ~vaddr:buf ~len:4096 in
          if n > 0 then ignore (Libc.write c ~fd ~vaddr:buf ~len:n)
          else begin
            continue := false;
            if n = 0 then drop fd (* peer closed *)
          end
        done
      in
      let continue = ref true in
      while !continue do
        match Libc.epoll_wait c ~epfd:ep ~maxevents:256 ~timeout_ms:(-1) with
        | Error _ -> continue := false
        | Ok (_, evs) ->
          List.iter
            (fun (data, events) ->
              let fd = Int64.to_int data in
              if fd = sfd then accept_burst ()
              else if events land (Libc.epollhup lor Libc.epollerr) <> 0 then drop fd
              else serve_conn fd)
            evs
      done;
      0)

type result = {
  conns : int;
  pings : int;
  churned : int;
  p50_us : float;
  p99_us : float;
  max_us : float;
  scan_per_wait : float;
  wait_calls : int;
}

let run ~host ~conns ~rounds ~batch ~churn ~on_done =
  ignore
    (Ostd.Task.spawn ~name:"c10k-driver" (fun () ->
         let htcp = host.Aster.Kernel.htcp in
         let connect_retry () =
           let rec go n =
             match Aster.Tcp.connect htcp ~dst_ip:Aster.Kernel.guest_ip ~dst_port:port with
             | Ok c -> c
             | Error _ ->
               if n = 0 then failwith "c10k: server unreachable"
               else begin
                 Ostd.Task.sleep_us 200.;
                 go (n - 1)
               end
           in
           go 100
         in
         let pool = Array.init conns (fun _ -> connect_retry ()) in
         (* Let the server drain its accept backlog before measuring. *)
         Ostd.Task.sleep_us 2000.;
         let h = Sim.Hist.named "c10k.wakeup_us" in
         let scan0 = Sim.Stats.get "epoll.scan_work" in
         let wait0 = Sim.Stats.get "epoll.wait_calls" in
         let ping = Bytes.make 16 'p' in
         let rbuf = Bytes.create 64 in
         let pings = ref 0 and churned = ref 0 in
         let victim = ref 0 in
         for round = 0 to rounds - 1 do
           (* Connection churn: close a few idle conns and replace them,
              mid-measurement — registration/teardown rides the same
              readiness path the pings are timed on. *)
           for _ = 1 to churn do
             let i = !victim in
             victim := (i + 37) mod conns;
             Aster.Tcp.close pool.(i);
             pool.(i) <- connect_retry ();
             incr churned
           done;
           (* A burst of pings spread across the pool: several fds turn
              ready per epoll_wait, so the sweep is exercised with
              ready-set > 1 while the idle crowd stays registered. *)
           let t0 = Sim.Clock.now () in
           let step = max 1 (conns / max 1 batch) in
           let sent = ref [] in
           for j = 0 to batch - 1 do
             let i = ((j * step) + round) mod conns in
             ignore (Aster.Tcp.send pool.(i) ~buf:ping ~pos:0 ~len:16);
             sent := i :: !sent
           done;
           List.iter
             (fun i ->
               let got = ref 0 in
               while !got < 16 do
                 match Aster.Tcp.recv pool.(i) ~buf:rbuf ~pos:0 ~len:16 with
                 | Ok 0 | Error _ -> got := 16
                 | Ok n -> got := !got + n
               done;
               Sim.Hist.record h (Sim.Clock.to_us (Int64.sub (Sim.Clock.now ()) t0));
               incr pings)
             (List.rev !sent)
         done;
         let waits = Sim.Stats.get "epoll.wait_calls" - wait0 in
         let scans = Sim.Stats.get "epoll.scan_work" - scan0 in
         on_done
           {
             conns;
             pings = !pings;
             churned = !churned;
             p50_us = Option.value ~default:nan (Sim.Hist.percentile h 50.);
             p99_us = Option.value ~default:nan (Sim.Hist.percentile h 99.);
             max_us = Sim.Hist.max_value h;
             scan_per_wait =
               (if waits > 0 then float_of_int scans /. float_of_int waits else nan);
             wait_calls = waits;
           }))
