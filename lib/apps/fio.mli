(** FIO-style block-device bandwidth workload (Fig. 6): sequential writes
    with periodic fsync so every byte crosses the virtio-blk driver, then
    a cold sequential read (buffer cache evicted first — exercises the
    batched submission + readahead pipeline) and a warm cached read.
    Used to compare pooled vs dynamic DMA mapping and the
    batching/readahead ablations. *)

type result = { write_mb_s : float; read_cold_mb_s : float; read_mb_s : float }

val run : Libc.t -> file:string -> mbytes:int -> result

val run_fsync : Libc.t -> file:string -> mbytes:int -> float * int
(** fsync-per-4KiB-write variant (fio --fsync=1): the commit-latency
    shape of a database WAL, pricing one journal commit (two barriers +
    FUA commit record) per write. Returns (MB/s, fsyncs performed). *)
