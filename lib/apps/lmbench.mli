(** LMbench-style microbenchmarks (paper Table 7).

    Every row boots a fresh kernel under the given profile and measures
    in virtual time; the run is deterministic, so a single pass suffices.
    Latencies are microseconds (lower better), bandwidths MB/s (higher
    better). *)

type row = {
  name : string;
  category : string;
  unit_ : string;
  higher_better : bool;
  run : Sim.Profile.t -> float;
}

val rows : row list

val find : string -> row
(** Raises [Not_found] for an unknown row name. *)

val bw_tcp_rx_virtio : msg:int -> Sim.Profile.t -> float
(** Host -> guest bulk TCP stream (4 MiB), guest receiving through
    read(2): the direction that exercises the GRO reap path. MB/s at
    the guest sink. Not part of [rows] — driven by the offload
    ablations and the bench smoke gate. *)
