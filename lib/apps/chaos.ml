type outcome = {
  seed : int64;
  completed : int;
  failed_errno : int;
  hung : int;
  corrupt : int;
  panics : int;
  sync_ok : bool;
  blocks_checked : int;
  mismatches : int;
  fault_log : string list;
  report : (string * int) list;
}

(* Soak-tuned: high enough that every degradation path fires in a short
   run, low enough that bounded retry (5 bio attempts, 4 alloc attempts)
   makes an unrecoverable failure vanishingly rare — the soak asserts
   graceful handling, not behaviour under guaranteed data loss. *)
let default_schedule =
  [
    ("blk.io_error", 0.02);
    ("blk.drop", 0.01);
    ("blk.delay", 0.05);
    ("net.drop", 0.03);
    ("net.corrupt", 0.02);
    ("net.dup", 0.02);
    ("iommu.fault", 0.002);
    ("irq.spurious", 0.01);
    ("irq.storm", 0.002);
    ("alloc.fail", 0.01);
  ]

let nfiles = 4

let chunk = 1024

let file_size = 8 * chunk

let pattern_byte ~file ~off = Char.chr (((file * 37) + (off * 11) + 5) land 0xff)

let errno_ok rc = rc < 0 && -rc >= 1 && -rc <= 133

(* Write a patterned file, fsync it, read it back and verify. Returns
   0 on success, the first negative errno otherwise; read-back
   mismatches bump [corrupt] but still count as completion (the
   interesting signal is silent corruption, tracked separately). *)
let fs_workload c ~i ~corrupt =
  let path = Printf.sprintf "/ext2/chaos%d.dat" i in
  let fd = Libc.openf c path ~flags:0o102 ~mode:0o644 in
  if fd < 0 then fd
  else begin
    let rc = ref 0 in
    let off = ref 0 in
    while !rc = 0 && !off < file_size do
      let b = Bytes.init chunk (fun j -> pattern_byte ~file:i ~off:(!off + j)) in
      let w = Libc.pwrite c ~fd ~vaddr:(Libc.put_bytes c b) ~len:chunk ~off:!off in
      if w < 0 then rc := w
      else if w <> chunk then rc := -Aster.Errno.eio
      else off := !off + chunk
    done;
    if !rc = 0 then begin
      let f = Libc.fsync c fd in
      if f < 0 then rc := f
    end;
    if !rc = 0 then begin
      let off = ref 0 in
      while !rc = 0 && !off < file_size do
        let vaddr = Libc.put_bytes c (Bytes.create chunk) in
        let r = Libc.pread c ~fd ~vaddr ~len:chunk ~off:!off in
        if r < 0 then rc := r
        else if r <> chunk then rc := -Aster.Errno.eio
        else begin
          let got = Libc.get_bytes c vaddr chunk in
          let bad = ref false in
          for j = 0 to chunk - 1 do
            if Bytes.get got j <> pattern_byte ~file:i ~off:(!off + j) then bad := true
          done;
          if !bad then incr corrupt;
          off := !off + chunk
        end
      done
    end;
    ignore (Libc.close c fd);
    !rc
  end

let run ?(profile = Sim.Profile.asterinas) ?(schedule = default_schedule) ~seed () =
  let k = Runner.boot ~profile in
  let host = Aster.Kernel.attach_host k in
  (* Arm the plane only once the kernel is up: boot is common to every
     seed, and mkfs failures are not the degradation story under test. *)
  Sim.Fault.configure ~seed schedule;
  let fs_res = Array.make nfiles None in
  let corrupt = ref 0 in
  for i = 0 to nfiles - 1 do
    Runner.spawn
      ~name:(Printf.sprintf "chaos-fs%d" i)
      (fun c ->
        let rc = fs_workload c ~i ~corrupt in
        fs_res.(i) <- Some rc;
        if rc = 0 then 0 else 1)
  done;
  let net_done = ref None in
  Mini_redis.spawn ();
  Redis_bench.run_op ~host ~op:"SET" ~clients:4 ~requests:120 ~on_done:(fun r ->
      net_done := Some r);
  let panics = ref 0 in
  (try Runner.run ()
   with Ostd.Panic.Kernel_panic msg ->
     incr panics;
     Logs.err (fun m -> m "chaos: kernel panic escaped: %s" msg));
  (* Disarm before the audit: the final sync and the cache-vs-device
     crosscheck are the oracle, not part of the experiment. *)
  Sim.Fault.disable ();
  let sync_ok = match Aster.Block.sync () with Ok () -> true | Error _ -> false in
  let blocks_checked, mismatches = Aster.Block.verify_cache_against_device () in
  let completed = ref 0 and failed_errno = ref 0 and hung = ref 0 in
  Array.iter
    (function
      | Some 0 -> incr completed
      | Some rc when errno_ok rc -> incr failed_errno
      | Some _ | None -> incr hung)
    fs_res;
  (match !net_done with Some _ -> incr completed | None -> incr hung);
  {
    seed;
    completed = !completed;
    failed_errno = !failed_errno;
    hung = !hung;
    corrupt = !corrupt;
    panics = !panics;
    sync_ok;
    blocks_checked;
    mismatches;
    fault_log = Sim.Fault.log ();
    report = Sim.Stats.fault_report ();
  }

(* --- Batched-TX network chaos ---

   Two concurrent guest->host streams while the TX fault plane is hot:
   injected mid-burst failures must split bursts and ride the retry
   ladder, injected drops must quarantine buffers, and every resulting
   soft error must be attributed to the connection that owned the frame
   — never a neighbour sharing the descriptor chain, never dropped on
   the floor. The app-level oracle is each sink being byte-identical to
   its own pattern. *)

type net_outcome = {
  nseed : int64;
  rcs : int * int;  (** client exit codes; 0 = wrote everything *)
  sinks : string * string;  (** bytes each host sink application received *)
  eofs : bool * bool;  (** each sink saw a clean FIN *)
  npanics : int;
  splits : int;  (** net.burst_split: mid-burst errors that split a chain *)
  quarantined : int;  (** buffers leaked to the deadline quarantine *)
  gave_up : int;  (** frames abandoned after the retry ladder *)
  soft_err : int;  (** tcp.tx_soft_err: errors claimed by the owning socket *)
  unclaimed : int;  (** net.tx_err_unclaimed: must stay 0 — no misattribution *)
  injected : int;  (** tx_fail + tx_drop rolls that fired *)
  nfault_log : string list;
}

(* Hot enough that both degradation paths (burst split + quarantine)
   fire within two 96 KiB streams; cold enough that TCP's RTO repairs
   every loss and both streams complete. *)
let net_schedule = [ ("net.tx_fail", 0.06); ("net.tx_drop", 0.03) ]

let net_size = 96 * 1024

let net_chunk = 8192

let net_pattern ~stream len =
  Bytes.init len (fun i -> Char.chr (((stream * 53) + (i * 17) + 11) land 0xff))

(* Offload-free by default: the suite pins the software-segmentation
   baseline's mid-burst mechanics (descriptor == wire frame, so the
   fault plane's roll sequence lands per segment); the offloaded path
   has its own fault-conformance coverage in test_net. *)
let net_batch_run ?(profile = Sim.Profile.with_all_offloads false Sim.Profile.asterinas)
    ?(schedule = net_schedule) ~seed () =
  let k = Runner.boot ~profile in
  let host = Aster.Kernel.attach_host k in
  (* Arm only once the kernel is up (boot resets the plane); the armed
     window then covers both handshakes and both full streams. *)
  Sim.Fault.configure ~seed schedule;
  let sinks = [| Buffer.create net_size; Buffer.create net_size |] in
  let eofs = [| false; false |] in
  let rcs = [| -1; -1 |] in
  let start_sink i ~port =
    match Aster.Tcp.listen host.Aster.Kernel.htcp ~port with
    | Error _ -> ()
    | Ok l ->
      ignore
        (Ostd.Task.spawn
           ~name:(Printf.sprintf "chaos-sink%d" i)
           (fun () ->
             let conn = Aster.Tcp.accept l in
             let buf = Bytes.create 16384 in
             let continue = ref true in
             while !continue do
               match Aster.Tcp.recv conn ~buf ~pos:0 ~len:16384 with
               | Ok 0 ->
                 eofs.(i) <- true;
                 continue := false
               | Ok n -> Buffer.add_subbytes sinks.(i) buf 0 n
               | Error _ -> continue := false
             done;
             Aster.Tcp.close conn))
  in
  let start_client i ~port =
    Runner.spawn
      ~name:(Printf.sprintf "chaos-net%d" i)
      (fun c ->
        let fd = Libc.socket c ~domain:2 ~typ:1 in
        if Libc.connect_inet c ~fd ~ip:Aster.Kernel.host_ip ~port < 0 then begin
          rcs.(i) <- 1;
          1
        end
        else begin
          let data = net_pattern ~stream:i net_size in
          let sent = ref 0 in
          let ok = ref true in
          while !ok && !sent < net_size do
            let len = min net_chunk (net_size - !sent) in
            let b = Bytes.sub data !sent len in
            let n = Libc.write c ~fd ~vaddr:(Libc.put_bytes c b) ~len in
            if n <= 0 then ok := false else sent := !sent + n
          done;
          ignore (Libc.close c fd);
          rcs.(i) <- (if !ok then 0 else 2);
          rcs.(i)
        end)
  in
  start_sink 0 ~port:6001;
  start_sink 1 ~port:6002;
  start_client 0 ~port:6001;
  start_client 1 ~port:6002;
  let npanics = ref 0 in
  (try Runner.run () with Ostd.Panic.Kernel_panic _ -> incr npanics);
  Sim.Fault.disable ();
  {
    nseed = seed;
    rcs = (rcs.(0), rcs.(1));
    sinks = (Buffer.contents sinks.(0), Buffer.contents sinks.(1));
    eofs = (eofs.(0), eofs.(1));
    npanics = !npanics;
    splits = Sim.Stats.get "net.burst_split";
    quarantined = Sim.Stats.get "virtio_net.quarantined";
    gave_up = Sim.Stats.get "degrade.gave_up.net_tx";
    soft_err = Sim.Stats.get "tcp.tx_soft_err";
    unclaimed = Sim.Stats.get "net.tx_err_unclaimed";
    injected =
      Sim.Stats.get "fault.injected.net.tx_fail" + Sim.Stats.get "fault.injected.net.tx_drop";
    nfault_log = Sim.Fault.log ();
  }

(* --- Hung-task injection ---

   A kernel task that charges a long stretch of virtual CPU without
   yielding starves a Ready victim. The always-on hung-task watchdog
   (probe program [watchdog.hung_task] on sched_switch/sched_wakeup)
   must see the victim's runnable wait cross its threshold and fire —
   this is the end-to-end proof that the probe plane observes scheduler
   anomalies no explicit instrumentation was written for. *)

type hang_outcome = {
  victim_rc : int;  (** 0 = the victim still completed once rescued *)
  hog_ms : int;
  wd_fired : int;  (** watchdog.hung_task.fired after the run *)
  wd_maps : string;  (** rendered maps of the watchdog program *)
}

let hang_run ?(profile = Sim.Profile.asterinas) ?(hog_ms = 100) () =
  ignore (Runner.boot ~profile);
  let victim_rc = ref (-1) in
  Runner.spawn ~name:"hang-victim" (fun c ->
      (* yield repeatedly so the victim sits Ready under the hog *)
      for _ = 1 to 50 do
        ignore (Libc.sched_yield c)
      done;
      victim_rc := 0;
      0);
  ignore
    (Ostd.Task.spawn ~name:"chaos-hog" (fun () ->
         (* one long non-yielding stretch of virtual CPU *)
         Sim.Clock.charge (hog_ms * 1000 * Sim.Clock.cycles_per_us)));
  Runner.run ();
  {
    victim_rc = !victim_rc;
    hog_ms;
    wd_fired = Sim.Stats.get "watchdog.hung_task.fired";
    wd_maps =
      (match Kprobe.Registry.render_maps "watchdog.hung_task" with
      | Some s -> s
      | None -> "");
  }
