(** A static-file HTTP/1.0 server in the spirit of the paper's Nginx
    workload: accept, parse the request line, respond with headers and
    sendfile(2) of the requested document, close.

    The paper's diagnosis lives in this path: with
    [sendfile_zero_copy = false] (Asterinas) every response pays an extra
    bounce-buffer copy, which is why its advantage shrinks as the file
    grows (Fig. 5a). *)

val port : int

val setup_docroot : Libc.t -> sizes:(string * int) list -> unit
(** Create /tmp/www and one file per (name, bytes). *)

val server : ?mode:[ `Epoll | `Threads ] -> requests:int -> Libc.t -> int
(** Serve exactly [requests] connections, then exit. Charges a small
    per-request user-space cost (parsing, logging). [`Epoll] (default):
    each worker runs its own epoll loop over the shared non-blocking
    listener; [`Threads]: workers block in accept(2). *)

val spawn : ?mode:[ `Epoll | `Threads ] -> requests:int -> sizes:(string * int) list -> unit -> unit
(** Boot-side helper: spawn the server process with its docroot. *)
