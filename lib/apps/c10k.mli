(** c10k: an edge-triggered epoll echo server under a mostly-idle
    connection pool with churn, for the O(ready)-not-O(registered)
    readiness gate. The host driver holds [conns] connections, retires
    and replaces [churn] per round, pings [batch] per round, and records
    echo latency into the ["c10k.wakeup_us"] histogram. *)

val port : int

val spawn_server : unit -> unit
(** Spawn the guest echo server (single task, epoll ET,
    accept4(SOCK_NONBLOCK), drain-until-EAGAIN). Call before
    {!Runner.run}. *)

type result = {
  conns : int;
  pings : int;
  churned : int;
  p50_us : float;
  p99_us : float;
  max_us : float;
  scan_per_wait : float;  (** ready-queue entries examined per epoll_wait *)
  wait_calls : int;  (** epoll_wait invocations during measurement *)
}

val run :
  host:Aster.Kernel.host ->
  conns:int ->
  rounds:int ->
  batch:int ->
  churn:int ->
  on_done:(result -> unit) ->
  unit
(** Spawn the host driver; [on_done] fires after the last round. Call
    before {!Runner.run}. *)
