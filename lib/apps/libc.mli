(** A tiny libc for simulated user programs.

    Programs receive a raw {!Ostd.User.uapi} (syscalls + their own memory
    and nothing else); this shim layers buffer marshalling and friendly
    wrappers on top, like glibc does over the real ABI. All data still
    crosses the user/kernel boundary through user memory and integer
    registers.

    Fork/exec note (documented in DESIGN.md): OCaml continuations cannot
    be duplicated, so [fork] ships the child's body as a closure through
    a token table that stands in for "the program text after fork"; the
    kernel still performs the real work (COW address-space duplication,
    process creation). *)

type t

val make : Ostd.User.uapi -> t
(** Sets up a scratch arena via mmap. *)

val install_child_resolver : unit -> unit
(** Register the fork-token resolver with the kernel. Idempotent; called
    by workloads' mains. *)

val raw : t -> Ostd.User.uapi

(** {2 User memory} *)

val ualloc : t -> int -> int
(** Persistent user buffer (mmap-backed); returns its vaddr. *)

val put_bytes : t -> bytes -> int
(** Copy into short-lived scratch; valid until a few more libc calls. *)

val put_string : t -> string -> int
(** NUL-terminated scratch string. *)

val get_bytes : t -> int -> int -> bytes

(** {2 Syscall wrappers (return negative errno on failure)} *)

val syscall : t -> int -> int64 array -> int

val openf : t -> string -> flags:int -> mode:int -> int
val close : t -> int -> int
val read : t -> fd:int -> vaddr:int -> len:int -> int
val write : t -> fd:int -> vaddr:int -> len:int -> int
val read_str : t -> fd:int -> len:int -> string
(** Convenience: read via scratch; empty string on EOF/error. *)

val write_str : t -> fd:int -> string -> int
val pread : t -> fd:int -> vaddr:int -> len:int -> off:int -> int
val pwrite : t -> fd:int -> vaddr:int -> len:int -> off:int -> int
val lseek : t -> fd:int -> off:int -> whence:int -> int
val stat : t -> string -> (Aster.Abi.stat, int) result
val fstat : t -> int -> (Aster.Abi.stat, int) result
val unlink : t -> string -> int
val mkdir : t -> string -> int
val rmdir : t -> string -> int
val rename : t -> string -> string -> int
val fsync : t -> int -> int
val ftruncate : t -> fd:int -> len:int -> int
val chdir : t -> string -> int
val getcwd : t -> string
val getdents : t -> fd:int -> (int * int * string) list
val pipe : t -> (int * int, int) result
val dup2 : t -> int -> int -> int
val access : t -> string -> int
val symlink : t -> target:string -> linkpath:string -> int
val readlink : t -> string -> (string, int) result
val mmap : t -> len:int -> int
val munmap : t -> addr:int -> len:int -> int
val brk : t -> int -> int

val getpid : t -> int
val getppid : t -> int
val sched_yield : t -> int
val nanosleep_us : t -> float -> int
val clock_monotonic_ns : t -> int64

val clock_process_cputime_ns : t -> int64
(** clock_gettime(CLOCK_PROCESS_CPUTIME_ID): CPU time consumed, ns. *)

type rusage = {
  ru_utime_us : int64;
  ru_stime_us : int64;
  ru_nvcsw : int64;
  ru_nivcsw : int64;
}

val getrusage : ?who:int -> t -> rusage option
(** getrusage(2); [who] defaults to RUSAGE_SELF. *)

type tms = { tms_utime : int64; tms_stime : int64; tms_uptime : int64 }

val times : t -> tms
(** times(2): utime/stime and uptime in CLK_TCK (100Hz) ticks. *)

val uname : t -> string

val fork : t -> (Ostd.User.uapi -> int) -> int
(** Returns the child pid (the child runs the closure). *)

val clone_thread : t -> (Ostd.User.uapi -> int) -> int
val execve : t -> string -> string list -> int
val exit : t -> int -> 'a
val waitpid : t -> (int * int, int) result

val socket : t -> domain:int -> typ:int -> int
val bind_inet : t -> fd:int -> port:int -> int
val bind_unix : t -> fd:int -> path:string -> int
val listen : t -> fd:int -> backlog:int -> int
val accept : t -> fd:int -> int

val accept4 : t -> fd:int -> flags:int -> int
(** accept4(2); pass [o_nonblock] (SOCK_NONBLOCK) to get a non-blocking
    connection fd in one call. *)

val fcntl_getfl : t -> fd:int -> int
val fcntl_setfl : t -> fd:int -> flags:int -> int

val o_nonblock : int

val set_nonblock : t -> fd:int -> int
(** F_GETFL/F_SETFL round trip adding O_NONBLOCK. *)

(** {2 Readiness: poll(2) and epoll(7)} *)

val pollin : int
val pollout : int
val pollerr : int
val pollhup : int
val pollnval : int
val pollrdhup : int

val poll : t -> (int * int) list -> timeout_ms:int -> (int * (int * int) list, int) result
(** poll(2) over (fd, events) pairs; returns the ready count and every
    fd's revents in input order. *)

val epollin : int
val epollout : int
val epollerr : int
val epollhup : int
val epollrdhup : int
val epolloneshot : int
val epollet : int
val epoll_ctl_add : int
val epoll_ctl_del : int
val epoll_ctl_mod : int

val epoll_create1 : t -> int

val epoll_ctl : t -> epfd:int -> op:int -> fd:int -> events:int -> data:int64 -> int
(** Stages a packed 12-byte epoll_event in scratch. *)

val epoll_wait :
  t -> epfd:int -> maxevents:int -> timeout_ms:int -> (int * (int64 * int) list, int) result
(** Returns the ready count and (data, events) pairs. [timeout_ms < 0]
    blocks indefinitely; [0] is a non-blocking probe. *)

val connect_inet : t -> fd:int -> ip:int -> port:int -> int
val connect_unix : t -> fd:int -> path:string -> int
val sendto_inet : t -> fd:int -> ip:int -> port:int -> vaddr:int -> len:int -> int
val recvfrom : t -> fd:int -> vaddr:int -> len:int -> int
val sendfile : t -> out_fd:int -> in_fd:int -> count:int -> int
val shutdown : t -> fd:int -> int
val set_nodelay : t -> fd:int -> int
val mkfifo : t -> string -> int
val kill : t -> pid:int -> signal:int -> int

val signal_ignore : t -> int -> int
(** sigaction(sig, SIG_IGN). *)

val signal_default : t -> int -> int

val sigblock : t -> int -> int
(** Block one signal number. *)

val sigunblock : t -> int -> int
val sigpending : t -> int

val probe_load : t -> string -> int
(** probe_load(2): load a probe program from its text form; returns its
    load-order id, or -EINVAL if the parser/verifier rejects it (the
    reason is readable from /proc/kprobe/programs). *)

val probe_read : t -> string -> (string, int) result
(** probe_read(2) looped to EOF: the program's rendered map tables. *)

val span_begin : t -> cls:string -> name:string -> int
(** span_begin(2): open a kspan request span on the calling task;
    returns its id (0 when tracking is disabled or a span is already
    active — spans do not nest). *)

val span_end : t -> int -> int
(** span_end(2): seal the span. [span_end t 0] is a no-op. *)
