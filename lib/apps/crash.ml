(* Deterministic crash-point replay harness.

   A crash point is a write boundary: the k-th sector the virtio-blk
   device would persist after the workload starts. [run ~cut_after:(Some
   k)] arms the one-shot [blk.power_cut] trigger so the device dies with
   exactly [k] sectors on stable storage, runs a seeded workload to
   completion (post-cut syscalls degrade to EIO), and captures the
   surviving disk image plus the host-side oracle: exactly which bytes
   each fsync that returned 0 promised to keep.

   [recover] boots a fresh kernel against a clone of that image — mount
   replays the journal — then runs fsck and byte-compares every file
   against the oracle. [sweep] enumerates every boundary for a seed and
   recovers each twice, asserting the recovery logs are byte-identical
   (same seed, same crash point, same replay — always).

   Everything here is deterministic: same seed in, same boundary count,
   same verdicts out. *)

type workload = Fs | Sqlite

let workload_name = function Fs -> "fs" | Sqlite -> "sqlite"

let profile ~journal = Sim.Profile.with_ext2_journal journal Sim.Profile.asterinas

(* --- Oracle state, kept on the host side of the simulation --- *)

type fs_file = {
  path : string;
  written : Buffer.t;  (* everything a successful pwrite covered *)
  mutable durable : string;  (* prefix promised by the last fsync that returned 0 *)
}

type sq_txn = {
  txn_id : int;
  rows : (int * string) list;
  mutable txn_durable : bool;  (* every commit barrier succeeded *)
}

type crashed = {
  seed : int64;
  journal : bool;
  workload : workload;
  mutable disk : Machine.Virtio_blk.disk;  (* pristine post-crash image *)
  mutable boundaries : int;  (* sectors persisted between arming and idle *)
  mutable cut : bool;
  mutable run_panics : int;
  files : fs_file array;
  mutable cfg_written : int list;  (* generations renamed into place, newest first *)
  mutable cfg_durable : int;  (* newest generation a later successful fsync covered *)
  mutable txns : sq_txn list;  (* commit order *)
}

(* --- The fs workload: patterned appends, periodic fsync, and an
   atomic-replace config file (write tmp, fsync, rename) --- *)

let record = 512
let fs_steps = 12
let fsync_every = 3
let cfg_every = 5
let nfiles = 2
let cfg_len = 256

let rec_byte ~seed ~file ~off =
  let s = Int64.to_int (Int64.rem seed 251L) in
  Char.chr ((s + (file * 97) + (off * 7) + 13) land 0xff)

let cfg_content ~seed g =
  let hdr = Printf.sprintf "gen:%06d:%Ld:" g seed in
  Bytes.init cfg_len (fun i ->
      if i < String.length hdr then hdr.[i]
      else Char.chr (((g * 29) + (i * 3)) land 0xff))

let fs_task st c =
  let fds =
    Array.map (fun f -> Libc.openf c f.path ~flags:0o102 ~mode:0o644) st.files
  in
  if Array.exists (fun fd -> fd < 0) fds then 1
  else begin
    (* Generation renamed into place but not yet covered by a fsync. *)
    let pending_gen = ref 0 in
    let note_fsync_ok () =
      (* With the journal on, any commit also commits the rename's
         dirent transaction (the journal is file-system-global). *)
      if st.journal && !pending_gen > st.cfg_durable then
        st.cfg_durable <- !pending_gen
    in
    for step = 1 to fs_steps do
      let f = step mod nfiles in
      let file = st.files.(f) in
      let off = Buffer.length file.written in
      let b = Bytes.init record (fun j -> rec_byte ~seed:st.seed ~file:f ~off:(off + j)) in
      let w = Libc.pwrite c ~fd:fds.(f) ~vaddr:(Libc.put_bytes c b) ~len:record ~off in
      if w > 0 then Buffer.add_subbytes file.written b 0 w;
      if step mod fsync_every = 0 && Libc.fsync c fds.(f) = 0 then begin
        file.durable <- Buffer.contents file.written;
        note_fsync_ok ()
      end;
      if step mod cfg_every = 0 then begin
        let g = step / cfg_every in
        let tmp = Libc.openf c "/ext2/cfg.tmp" ~flags:0o1102 ~mode:0o644 in
        if tmp >= 0 then begin
          let content = cfg_content ~seed:st.seed g in
          let w = Libc.pwrite c ~fd:tmp ~vaddr:(Libc.put_bytes c content) ~len:cfg_len ~off:0 in
          let synced = if w = cfg_len then Libc.fsync c tmp else -1 in
          ignore (Libc.close c tmp);
          if synced = 0 && Libc.rename c "/ext2/cfg.tmp" "/ext2/cfg" = 0 then begin
            st.cfg_written <- g :: st.cfg_written;
            pending_gen := g
          end
        end
      end
    done;
    Array.iteri
      (fun i fd ->
        if Libc.fsync c fd = 0 then begin
          st.files.(i).durable <- Buffer.contents st.files.(i).written;
          note_fsync_ok ()
        end;
        ignore (Libc.close c fd))
      fds;
    0
  end

(* --- The sqlite workload: transactions through the rollback-journal
   protocol, with a VACUUM (temp-file rebuild + rename) mid-stream --- *)

let sq_ntxns = 5
let sq_rows = 8
let sq_vacuum_after = 2

let sq_value ~seed id = Printf.sprintf "v%d:%Ld:%s" id seed (String.make (8 + (id mod 7)) 'x')

let sq_task st c =
  let db = Mini_sqlite.open_db c "/ext2/cr.db" in
  for t = 0 to sq_ntxns - 1 do
    Mini_sqlite.begin_txn db;
    if t = 0 then Mini_sqlite.create_table db "t";
    let rows =
      List.init sq_rows (fun r ->
          let id = (t * sq_rows) + r in
          (id, sq_value ~seed:st.seed id))
    in
    List.iter
      (fun (id, v) -> Mini_sqlite.insert db ~table:"t" (Mini_sqlite.K_int id) v)
      rows;
    let durable = Mini_sqlite.commit_durable db in
    st.txns <- st.txns @ [ { txn_id = t; rows; txn_durable = durable } ];
    if t = sq_vacuum_after then Mini_sqlite.vacuum db
  done;
  Mini_sqlite.close_db db;
  0

(* --- Running a (possibly cut) workload --- *)

let run ~seed ~journal ~workload ~cut_after =
  let k = Aster.Kernel.boot ~profile:(profile ~journal) () in
  Libc.install_child_resolver ();
  let dev = k.Aster.Kernel.devices.Machine.Board.blk in
  let p0 = Machine.Virtio_blk.persist_count dev in
  (* Board reset during boot clears all triggers; arm only now, so the
     crash-point count excludes mkfs and is the same for every k. *)
  (match cut_after with
  | Some n -> Sim.Fault.set_trigger "blk.power_cut" ~after:n
  | None -> ());
  let st =
    {
      seed;
      journal;
      workload;
      disk = Machine.Virtio_blk.disk_image dev;
      boundaries = 0;
      cut = false;
      run_panics = 0;
      files =
        [|
          { path = "/ext2/cr0.dat"; written = Buffer.create 4096; durable = "" };
          { path = "/ext2/cr1.dat"; written = Buffer.create 4096; durable = "" };
        |];
      cfg_written = [];
      cfg_durable = 0;
      txns = [];
    }
  in
  Runner.spawn ~name:"crash-wl" (fun c ->
      match workload with Fs -> fs_task st c | Sqlite -> sq_task st c);
  (try Aster.Kernel.run ()
   with _ -> st.run_panics <- st.run_panics + 1);
  Sim.Fault.clear_trigger "blk.power_cut";
  st.boundaries <- Machine.Virtio_blk.persist_count dev - p0;
  st.cut <- Machine.Virtio_blk.is_dead dev;
  (* Clone so repeated recoveries each start from the same image. *)
  st.disk <- Machine.Virtio_blk.clone_disk (Machine.Virtio_blk.disk_image dev);
  st

(* --- Recovery + verification --- *)

type verdict = {
  fsck : string list;
  violations : string list;
  recovery_log : string list;
  panicked : bool;
}

let read_whole c fd size =
  let buf = Bytes.create size in
  let off = ref 0 in
  let short = ref false in
  while (not !short) && !off < size do
    let want = min 4096 (size - !off) in
    let vaddr = Libc.put_bytes c (Bytes.create want) in
    let n = Libc.pread c ~fd ~vaddr ~len:want ~off:!off in
    if n <= 0 then short := true
    else begin
      Bytes.blit (Libc.get_bytes c vaddr n) 0 buf !off n;
      off := !off + n
    end
  done;
  if !short then None else Some buf

let fs_verify st c add =
  Array.iter
    (fun f ->
      let dlen = String.length f.durable in
      let wlen = Buffer.length f.written in
      let wbytes = Buffer.contents f.written in
      let fd = Libc.openf c f.path ~flags:0 ~mode:0 in
      if fd < 0 then begin
        if dlen > 0 then
          add (Printf.sprintf "%s: missing, but %d bytes were fsync'd" f.path dlen)
      end
      else begin
        (match Libc.stat c f.path with
        | Error e -> add (Printf.sprintf "%s: stat failed (%d)" f.path e)
        | Ok s ->
          let size = s.Aster.Abi.size in
          if size < dlen then
            add (Printf.sprintf "%s: size %d < fsync'd %d bytes" f.path size dlen);
          if size > wlen then
            add (Printf.sprintf "%s: size %d beyond the %d bytes ever written" f.path size wlen);
          match read_whole c fd (min size wlen) with
          | None -> add (Printf.sprintf "%s: short read during verify" f.path)
          | Some got ->
            let n = Bytes.length got in
            let bad_durable = ref (-1) and bad_tail = ref (-1) in
            for i = 0 to n - 1 do
              let g = Bytes.get got i in
              if i < dlen then begin
                if g <> f.durable.[i] && !bad_durable < 0 then bad_durable := i
              end
              else if g <> wbytes.[i] && g <> '\000' && !bad_tail < 0 then bad_tail := i
            done;
            if !bad_durable >= 0 then
              add (Printf.sprintf "%s: fsync'd byte %d lost" f.path !bad_durable);
            if !bad_tail >= 0 then
              add (Printf.sprintf "%s: foreign data at byte %d" f.path !bad_tail));
        ignore (Libc.close c fd)
      end)
    st.files;
  (* The config file: any surviving version must be one complete
     generation, and at least [cfg_durable] once a commit covered it. *)
  let cfg_fd = Libc.openf c "/ext2/cfg" ~flags:0 ~mode:0 in
  if cfg_fd < 0 then begin
    if st.cfg_durable > 0 then
      add (Printf.sprintf "cfg: missing, but generation %d was committed" st.cfg_durable)
  end
  else begin
    (match Libc.stat c "/ext2/cfg" with
    | Error e -> add (Printf.sprintf "cfg: stat failed (%d)" e)
    | Ok s ->
      let size = s.Aster.Abi.size in
      let matches g =
        size = cfg_len
        &&
        match read_whole c cfg_fd cfg_len with
        | None -> false
        | Some got -> Bytes.equal got (cfg_content ~seed:st.seed g)
      in
      (match List.find_opt matches st.cfg_written with
      | None -> add (Printf.sprintf "cfg: torn (size %d matches no complete generation)" size)
      | Some g ->
        if st.cfg_durable > 0 && g < st.cfg_durable then
          add
            (Printf.sprintf "cfg: rolled back to generation %d (< committed %d)" g
               st.cfg_durable)));
    ignore (Libc.close c cfg_fd)
  end

let sq_verify st c add =
  try
    let db = Mini_sqlite.open_db c "/ext2/cr.db" in
    ignore (Mini_sqlite.integrity_check db);
    let status t =
      let found =
        List.filter
          (fun (id, v) ->
            Mini_sqlite.lookup db ~table:"t" (Mini_sqlite.K_int id) = Some v)
          t.rows
      in
      if List.length found = List.length t.rows then `Full
      else if found = [] then `None
      else `Partial
    in
    let seen_gap = ref false in
    List.iter
      (fun t ->
        match status t with
        | `Partial -> add (Printf.sprintf "sqlite: transaction %d torn" t.txn_id)
        | `Full ->
          if !seen_gap then
            add (Printf.sprintf "sqlite: transaction %d visible after a gap" t.txn_id)
        | `None ->
          seen_gap := true;
          if t.txn_durable then
            add (Printf.sprintf "sqlite: durable transaction %d lost" t.txn_id))
      st.txns;
    Mini_sqlite.close_db db
  with e ->
    (* The catalog page itself may be garbage after an unjournaled
       crash: opening the database then fails structurally. That is a
       corruption verdict unless nothing was ever durable. *)
    if List.exists (fun t -> t.txn_durable) st.txns then
      add (Printf.sprintf "sqlite: unreadable after crash (%s)" (Printexc.to_string e))

let recover (st : crashed) : verdict =
  Sim.Fault.clear_trigger "blk.power_cut";
  let disk = Machine.Virtio_blk.clone_disk st.disk in
  match
    try Some (Aster.Kernel.boot ~profile:(profile ~journal:st.journal) ~disk ~format_disk:false ())
    with Ostd.Panic.Kernel_panic _ -> None
  with
  | None ->
    {
      fsck = [];
      violations = [ "recovery: kernel panic during mount/replay" ];
      recovery_log = [];
      panicked = true;
    }
  | Some _k ->
    Libc.install_child_resolver ();
    let recovery_log = Aster.Jbd.recovery_log () in
    let fsck = Aster.Fsck.check () in
    let violations = ref [] in
    let add msg = violations := msg :: !violations in
    Runner.spawn ~name:"crash-verify" (fun c ->
        (match st.workload with Fs -> fs_verify st c add | Sqlite -> sq_verify st c add);
        0);
    let panicked = ref false in
    (* A sufficiently corrupt unjournaled image can blow up kernel code
       on structurally impossible metadata (a dirent pointing past its
       block, an inode size beyond any mapping). That is a detected
       corruption, not a harness failure: record it and keep sweeping. *)
    (try Aster.Kernel.run ()
     with
    | Ostd.Panic.Kernel_panic msg ->
      panicked := true;
      add (Printf.sprintf "recovery: kernel panic (%s)" msg)
    | e -> add (Printf.sprintf "recovery: exception (%s)" (Printexc.to_string e)));
    {
      fsck;
      violations = List.rev !violations;
      recovery_log;
      panicked = !panicked;
    }

(* --- The sweep --- *)

type sweep_result = {
  sseed : int64;
  sjournal : bool;
  sworkload : workload;
  total_boundaries : int;
  swept : int;
  bad_points : (int * string list) list;  (* crash point -> fsck + oracle violations *)
  nondet_points : int list;  (* recovery logs differed across identical recoveries *)
  spanics : int;
}

let boundaries ~seed ~journal ~workload =
  (run ~seed ~journal ~workload ~cut_after:None).boundaries

let sweep ?(progress = fun _ _ -> ()) ?(stride = 1) ~seed ~journal ~workload () =
  let clean = run ~seed ~journal ~workload ~cut_after:None in
  let n = clean.boundaries in
  let bad = ref [] in
  let nondet = ref [] in
  let panics = ref clean.run_panics in
  let swept = ref 0 in
  let k = ref 0 in
  while !k < n do
    let st = run ~seed ~journal ~workload ~cut_after:(Some !k) in
    let v1 = recover st in
    let v2 = recover st in
    if v1.recovery_log <> v2.recovery_log then nondet := !k :: !nondet;
    if st.run_panics > 0 || v1.panicked then incr panics;
    let msgs =
      (if st.cut then [] else [ "power cut never fired" ])
      @ List.map (fun m -> "fsck: " ^ m) v1.fsck
      @ v1.violations
    in
    if msgs <> [] then bad := (!k, msgs) :: !bad;
    incr swept;
    progress !k n;
    k := !k + stride
  done;
  {
    sseed = seed;
    sjournal = journal;
    sworkload = workload;
    total_boundaries = n;
    swept = !swept;
    bad_points = List.rev !bad;
    nondet_points = List.rev !nondet;
    spanics = !panics;
  }
