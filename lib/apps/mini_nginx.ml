let port = 80

let setup_docroot c ~sizes =
  ignore (Libc.mkdir c "/tmp/www");
  List.iter
    (fun (name, bytes) ->
      let fd = Libc.openf c ("/tmp/www/" ^ name) ~flags:0o101 ~mode:0o644 in
      let chunk = Bytes.make (min bytes 65536) 'w' in
      let vaddr = Libc.ualloc c (Bytes.length chunk) in
      (Libc.raw c).Ostd.User.mem_write vaddr chunk;
      let written = ref 0 in
      while !written < bytes do
        let n = Libc.write c ~fd ~vaddr ~len:(min (Bytes.length chunk) (bytes - !written)) in
        if n <= 0 then written := bytes else written := !written + n
      done;
      ignore (Libc.close c fd))
    sizes

(* Request-line parsing plus access-log bookkeeping, in user cycles. *)
let per_request_user_work = 60000

let handle_conn c conn =
  ignore (Libc.set_nodelay c ~fd:conn);
  let req = Libc.read_str c ~fd:conn ~len:512 in
  Sim.Clock.charge per_request_user_work;
  let path =
    match String.split_on_char ' ' req with
    | "GET" :: p :: _ -> "/tmp/www" ^ p
    | _ -> ""
  in
  (* kspan request boundary: one span per HTTP request, from parse to
     the last sendfile. Host-level annotation — no syscall, no cycles. *)
  Sim.Span.annotate_begin ~cls:"http" ~name:(if path = "" then "bad" else path);
  (* open + fstat rather than stat-then-open: one path walk per request
     instead of two, and the size read is against the descriptor that
     sendfile will serve. *)
  let file = if path = "" then -1 else Libc.openf c path ~flags:0 ~mode:0 in
  (if file < 0 then
     ignore (Libc.write_str c ~fd:conn "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n\r\n")
   else
     match Libc.fstat c file with
     | Error _ ->
       ignore (Libc.write_str c ~fd:conn "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n\r\n");
       ignore (Libc.close c file)
     | Ok st ->
       let hdr =
         Printf.sprintf "HTTP/1.0 200 OK\r\nServer: mini-nginx\r\nContent-Length: %d\r\n\r\n"
           st.Aster.Abi.size
       in
       ignore (Libc.write_str c ~fd:conn hdr);
       let sent = ref 0 in
       while !sent < st.Aster.Abi.size do
         let n = Libc.sendfile c ~out_fd:conn ~in_fd:file ~count:(st.Aster.Abi.size - !sent) in
         if n <= 0 then sent := st.Aster.Abi.size else sent := !sent + n
       done;
       ignore (Libc.close c file));
  Sim.Span.annotate_end ();
  ignore (Libc.shutdown c ~fd:conn);
  ignore (Libc.close c conn)

(* Worker-pool size: like nginx's pre-forked workers, a fixed set of
   threads all blocked in accept(2) on the shared listening socket. A
   serial accept-then-serve loop head-of-line blocks every queued
   connection behind one read(2) round trip; a thread per connection
   pays a clone per request. The pool does neither. *)
let workers = 8

(* Event-driven worker: each worker runs its own epoll instance over
   the shared non-blocking listener (nginx's architecture). A listener
   event is drained to EAGAIN with accept4; each accepted conn is
   registered EPOLLIN and, once its request line has arrived, served to
   completion — the blocking reads in [handle_conn] return immediately
   because readiness was already reported, and the close(2) inside
   unhooks the registration (EPOLLFREE). A shared self-pipe raises the
   stop flag in every worker once siblings exhaust the request quota. *)
let serve_epoll ~remaining ~stop_r ~stop_w sfd w =
  let ep = Libc.epoll_create1 w in
  ignore
    (Libc.epoll_ctl w ~epfd:ep ~op:Libc.epoll_ctl_add ~fd:sfd ~events:Libc.epollin
       ~data:(Int64.of_int sfd));
  (* Self-pipe shutdown: the read end is level-triggered and never
     drained, so once the quota sinks to zero every worker's next
     epoll_wait reports it — no periodic timeout polling needed and
     workers block with timeout -1 in between. *)
  ignore
    (Libc.epoll_ctl w ~epfd:ep ~op:Libc.epoll_ctl_add ~fd:stop_r ~events:Libc.epollin
       ~data:(Int64.of_int stop_r));
  let pending = ref 0 in
  let stopping = ref false in
  let continue = ref true in
  while !continue do
    if !stopping && !pending = 0 then continue := false
    else begin
      match Libc.epoll_wait w ~epfd:ep ~maxevents:32 ~timeout_ms:(-1) with
      | Error _ -> continue := false
      | Ok (_, evs) ->
        List.iter
          (fun (data, events) ->
            let fd = Int64.to_int data in
            if fd = stop_r then begin
              stopping := true;
              (* Drop the stop fd from this instance once seen: it is
                 level-ready forever (never drained), so keeping it
                 registered would make every further wait return
                 instantly — a busy spin that starves the very clients
                 whose data events the remaining conns are waiting on. *)
              ignore
                (Libc.epoll_ctl w ~epfd:ep ~op:Libc.epoll_ctl_del ~fd:stop_r ~events:0 ~data:0L)
            end
            else if fd = sfd then begin
              let more = ref true in
              while !more && !remaining > 0 do
                let conn = Libc.accept4 w ~fd:sfd ~flags:0 in
                if conn < 0 then more := false
                else begin
                  decr remaining;
                  incr pending;
                  if !remaining = 0 then ignore (Libc.write_str w ~fd:stop_w "q");
                  ignore
                    (Libc.epoll_ctl w ~epfd:ep ~op:Libc.epoll_ctl_add ~fd:conn
                       ~events:Libc.epollin ~data:(Int64.of_int conn))
                end
              done
            end
            else if events land (Libc.epollin lor Libc.epollhup lor Libc.epollerr) <> 0
            then begin
              decr pending;
              (* [handle_conn] closes the conn, and close(2) removes it
                 from the interest list (EPOLLFREE) — no DEL syscall. *)
              handle_conn w fd
            end)
          evs
    end
  done;
  ignore (Libc.close w ep)

let server ?(mode = `Epoll) ~requests c =
  let sfd = Libc.socket c ~domain:2 ~typ:1 in
  ignore (Libc.bind_inet c ~fd:sfd ~port);
  ignore (Libc.listen c ~fd:sfd ~backlog:128);
  let stop_r, stop_w =
    match mode with
    | `Threads -> (-1, -1)
    | `Epoll ->
      ignore (Libc.set_nonblock c ~fd:sfd);
      let r, w = Result.get_ok (Libc.pipe c) in
      (* Degenerate quota: raise the stop flag before anyone waits. *)
      if requests <= 0 then ignore (Libc.write_str c ~fd:w "q");
      (r, w)
  in
  let remaining = ref requests in
  let live = ref (workers - 1) in
  let serve_threads w =
    let continue = ref true in
    while !continue do
      if !remaining <= 0 then continue := false
      else begin
        decr remaining;
        let conn = Libc.accept w ~fd:sfd in
        if conn >= 0 then handle_conn w conn else continue := false
      end
    done
  in
  let serve w =
    match mode with
    | `Epoll -> serve_epoll ~remaining ~stop_r ~stop_w sfd w
    | `Threads -> serve_threads w
  in
  for _ = 2 to workers do
    ignore
      (Libc.clone_thread c (fun uapi ->
           let w = Libc.make uapi in
           serve w;
           decr live;
           0))
  done;
  serve c;
  (* The process exits only after every worker has drained: exiting
     while siblings still stream responses would tear the sockets down
     under them. *)
  while !live > 0 do
    ignore (Libc.nanosleep_us c 50.)
  done;
  0

let spawn ?(mode = `Epoll) ~requests ~sizes () =
  Runner.spawn ~name:"mini-nginx" (fun c ->
      setup_docroot c ~sizes;
      server ~mode ~requests c)
