type result = { write_mb_s : float; read_cold_mb_s : float; read_mb_s : float }

let chunk = 64 * 1024

let run c ~file ~mbytes =
  let total = mbytes * 1024 * 1024 in
  let buf = Libc.ualloc c chunk in
  (* Sequential write + fsync per 1 MiB: every block reaches the device. *)
  let fd = Libc.openf c file ~flags:0o102 ~mode:0o644 in
  let t0 = Sim.Clock.now () in
  let written = ref 0 in
  while !written < total do
    let n = Libc.write c ~fd ~vaddr:buf ~len:chunk in
    if n <= 0 then written := total
    else begin
      written := !written + n;
      if !written mod (1024 * 1024) = 0 then ignore (Libc.fsync c fd)
    end
  done;
  ignore (Libc.fsync c fd);
  let write_us = Sim.Clock.to_us (Int64.sub (Sim.Clock.now ()) t0) in
  ignore (Libc.close c fd);
  let seq_read () =
    let fd = Libc.openf c file ~flags:0 ~mode:0 in
    let t = Sim.Clock.now () in
    let got = ref 0 in
    let continue = ref true in
    while !continue do
      let n = Libc.read c ~fd ~vaddr:buf ~len:chunk in
      if n <= 0 then continue := false else got := !got + n
    done;
    let us = Sim.Clock.to_us (Int64.sub (Sim.Clock.now ()) t) in
    ignore (Libc.close c fd);
    Runner.mb_per_s ~bytes_moved:!got ~us
  in
  (* Cold sequential read: evict the buffer cache first so every byte
     crosses the virtio-blk path — the phase batching and readahead are
     supposed to speed up. *)
  ignore (Aster.Block.drop_clean ());
  let read_cold_mb_s = seq_read () in
  (* Warm read back: the cache now holds the file, so this measures the
     cached path like fio on a warm page cache. *)
  let read_mb_s = seq_read () in
  { write_mb_s = Runner.mb_per_s ~bytes_moved:total ~us:write_us; read_cold_mb_s; read_mb_s }

(* fsync-heavy variant (fio --fsync=1): one fsync per chunk, the
   commit-latency shape a database WAL generates. With the ext2 journal
   on, every fsync is a full transaction commit — two barriers and an
   FUA commit record — so this is the worst case for journaling
   overhead, where the 4 KiB-granularity [write_mb_s] throughput prices
   each barrier. *)
let run_fsync c ~file ~mbytes =
  let fchunk = 4096 in
  let total = mbytes * 1024 * 1024 in
  let buf = Libc.ualloc c fchunk in
  let fd = Libc.openf c file ~flags:0o102 ~mode:0o644 in
  let t0 = Sim.Clock.now () in
  let written = ref 0 in
  let fsyncs = ref 0 in
  while !written < total do
    let n = Libc.write c ~fd ~vaddr:buf ~len:fchunk in
    if n <= 0 then written := total
    else begin
      written := !written + n;
      if Libc.fsync c fd = 0 then incr fsyncs
    end
  done;
  let us = Sim.Clock.to_us (Int64.sub (Sim.Clock.now ()) t0) in
  ignore (Libc.close c fd);
  (Runner.mb_per_s ~bytes_moved:total ~us, !fsyncs)
