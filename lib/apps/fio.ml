type result = { write_mb_s : float; read_cold_mb_s : float; read_mb_s : float }

let chunk = 64 * 1024

let run c ~file ~mbytes =
  let total = mbytes * 1024 * 1024 in
  let buf = Libc.ualloc c chunk in
  (* Sequential write + fsync per 1 MiB: every block reaches the device. *)
  let fd = Libc.openf c file ~flags:0o102 ~mode:0o644 in
  let t0 = Sim.Clock.now () in
  let written = ref 0 in
  while !written < total do
    let n = Libc.write c ~fd ~vaddr:buf ~len:chunk in
    if n <= 0 then written := total
    else begin
      written := !written + n;
      if !written mod (1024 * 1024) = 0 then ignore (Libc.fsync c fd)
    end
  done;
  ignore (Libc.fsync c fd);
  let write_us = Sim.Clock.to_us (Int64.sub (Sim.Clock.now ()) t0) in
  ignore (Libc.close c fd);
  let seq_read () =
    let fd = Libc.openf c file ~flags:0 ~mode:0 in
    let t = Sim.Clock.now () in
    let got = ref 0 in
    let continue = ref true in
    while !continue do
      let n = Libc.read c ~fd ~vaddr:buf ~len:chunk in
      if n <= 0 then continue := false else got := !got + n
    done;
    let us = Sim.Clock.to_us (Int64.sub (Sim.Clock.now ()) t) in
    ignore (Libc.close c fd);
    Runner.mb_per_s ~bytes_moved:!got ~us
  in
  (* Cold sequential read: evict the buffer cache first so every byte
     crosses the virtio-blk path — the phase batching and readahead are
     supposed to speed up. *)
  ignore (Aster.Block.drop_clean ());
  let read_cold_mb_s = seq_read () in
  (* Warm read back: the cache now holds the file, so this measures the
     cached path like fio on a warm page cache. *)
  let read_mb_s = seq_read () in
  { write_mb_s = Runner.mb_per_s ~bytes_moved:total ~us:write_us; read_cold_mb_s; read_mb_s }
