(** Deterministic crash-point replay harness.

    A crash point is a write boundary: the k-th sector the device
    persists after the workload starts. The harness runs a seeded
    workload with the one-shot [blk.power_cut] trigger armed at k,
    captures the surviving disk image together with a host-side oracle
    of exactly what each successful fsync promised, then remounts a
    clone (journal replay), runs fsck, and byte-compares reality
    against the oracle. Same seed in, same verdicts out. *)

type workload =
  | Fs  (** patterned appends + periodic fsync + atomic-replace config file *)
  | Sqlite  (** mini_sqlite transactions with a mid-stream VACUUM *)

val workload_name : workload -> string

type crashed = {
  seed : int64;
  journal : bool;
  workload : workload;
  mutable disk : Machine.Virtio_blk.disk;
  mutable boundaries : int;
  mutable cut : bool;
  mutable run_panics : int;
  files : fs_file array;
  mutable cfg_written : int list;
  mutable cfg_durable : int;
  mutable txns : sq_txn list;
}

and fs_file = { path : string; written : Buffer.t; mutable durable : string }
and sq_txn = { txn_id : int; rows : (int * string) list; mutable txn_durable : bool }

val run :
  seed:int64 -> journal:bool -> workload:workload -> cut_after:int option -> crashed
(** Boot fresh, arm the trigger (if any), run the workload to
    completion — post-cut syscalls degrade to EIO — and capture the
    post-crash disk image (cloned: safe to recover repeatedly). *)

type verdict = {
  fsck : string list;  (** invariant violations found by {!Aster.Fsck.check} *)
  violations : string list;  (** oracle violations: lost fsync'd data, torn files… *)
  recovery_log : string list;  (** {!Aster.Jbd.recovery_log} of the replay *)
  panicked : bool;
}

val recover : crashed -> verdict
(** Remount a clone of the crashed image (replaying the journal), fsck,
    and verify every durability promise the oracle recorded. *)

type sweep_result = {
  sseed : int64;
  sjournal : bool;
  sworkload : workload;
  total_boundaries : int;  (** write boundaries in the clean run *)
  swept : int;  (** crash points actually exercised *)
  bad_points : (int * string list) list;
  nondet_points : int list;
      (** points whose two recoveries produced different logs: must be [] *)
  spanics : int;
}

val boundaries : seed:int64 -> journal:bool -> workload:workload -> int
(** Boundary count of a clean (uncut) run. *)

val sweep :
  ?progress:(int -> int -> unit) ->
  ?stride:int ->
  seed:int64 ->
  journal:bool ->
  workload:workload ->
  unit ->
  sweep_result
(** Crash at every [stride]-th boundary, recover each image twice
    (recovery logs must be byte-identical), and collect every fsck or
    oracle violation. With the journal on, [bad_points] must be empty;
    with it off, a non-empty list is the sensitivity proof that the
    sweep detects real corruption. *)
