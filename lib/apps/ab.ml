type result = { requests : int; elapsed_us : float; rps : float }

let run ~host ~path ~concurrency ~requests ~on_done =
  let remaining = ref requests in
  let active = ref concurrency in
  let started = ref None in
  let htcp = host.Aster.Kernel.htcp in
  let request () =
    match Aster.Tcp.connect htcp ~dst_ip:Aster.Kernel.guest_ip ~dst_port:Mini_nginx.port with
    | Error _ -> false
    | Ok conn ->
      (* The clock starts at the first *successful* connect: before that
         the server is still booting and the workers are in their
         200 us refusal-retry loop — ab benchmarks serving, not server
         startup (which the 200 us quantisation would otherwise charge
         to whichever profile boots slower). *)
      if !started = None then started := Some (Sim.Clock.now ());
      Aster.Tcp.set_nodelay conn;
      let req = Bytes.of_string (Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path) in
      ignore (Aster.Tcp.send conn ~buf:req ~pos:0 ~len:(Bytes.length req));
      let buf = Bytes.create 65536 in
      let continue = ref true in
      while !continue do
        match Aster.Tcp.recv conn ~buf ~pos:0 ~len:(Bytes.length buf) with
        | Ok 0 | Error _ -> continue := false
        | Ok _ -> ()
      done;
      Aster.Tcp.close conn;
      true
  in
  let finish () =
    decr active;
    if !active = 0 then begin
      let t0 = Option.value ~default:0L !started in
      let elapsed_us = Sim.Clock.to_us (Int64.sub (Sim.Clock.now ()) t0) in
      let done_reqs = requests - !remaining in
      on_done
        {
          requests = done_reqs;
          elapsed_us;
          rps = (if elapsed_us > 0. then float_of_int done_reqs /. elapsed_us *. 1e6 else 0.);
        }
    end
  in
  for i = 1 to concurrency do
    ignore
      (Ostd.Task.spawn
         ~name:(Printf.sprintf "ab-%d" i)
         (fun () ->
           let continue = ref true in
           while !continue do
             if !remaining <= 0 then continue := false
             else begin
               decr remaining;
               if not (request ()) then begin
                 (* Connection refused: server not up yet; retry shortly. *)
                 incr remaining;
                 Ostd.Task.sleep_us 200.
               end
             end
           done;
           finish ()))
  done
