let port = 6379

let command_names =
  [
    "PING_INLINE"; "PING_MBULK"; "SET"; "GET"; "INCR"; "LPUSH"; "RPUSH"; "LPOP"; "RPOP";
    "SADD"; "HSET"; "SPOP"; "ZADD"; "ZPOPMIN"; "LRANGE_100"; "LRANGE_300"; "LRANGE_500";
    "LRANGE_600"; "MSET";
  ]

type value =
  | Str of string
  | List of string list * string list (* front, rev back: O(1) deque *)
  | Set of (string, unit) Hashtbl.t
  | Hash of (string, string) Hashtbl.t
  | Zset of (float * string) list (* kept sorted by score *)

(* Command execution cost in user cycles: hash lookup, allocation,
   serialization — roughly what redis-server burns per command. *)
let base_cmd_work = 1700

let per_element_work = 170

let exec store cmd args =
  Sim.Clock.charge base_cmd_work;
  let get k = Hashtbl.find_opt store k in
  let reply_int n = Printf.sprintf ":%d\n" n in
  let as_list k =
    match get k with Some (List (f, b)) -> (f, b) | _ -> ([], [])
  in
  match (cmd, args) with
  | "PING", _ -> "+PONG\n"
  | "ECHO", v :: _ -> Printf.sprintf "$%s\n" v
  | "DEL", keys ->
    let n = List.length (List.filter (fun k -> Hashtbl.mem store k) keys) in
    List.iter (Hashtbl.remove store) keys;
    reply_int n
  | "EXISTS", k :: _ -> reply_int (if Hashtbl.mem store k then 1 else 0)
  | "APPEND", k :: v :: _ ->
    let prev = match get k with Some (Str s) -> s | _ -> "" in
    Hashtbl.replace store k (Str (prev ^ v));
    reply_int (String.length prev + String.length v)
  | "STRLEN", k :: _ ->
    reply_int (match get k with Some (Str s) -> String.length s | _ -> 0)
  | "SETNX", k :: v :: _ ->
    if Hashtbl.mem store k then reply_int 0
    else begin
      Hashtbl.replace store k (Str v);
      reply_int 1
    end
  | "GETSET", k :: v :: _ ->
    let prev = match get k with Some (Str s) -> Printf.sprintf "$%s\n" s | _ -> "$-1\n" in
    Hashtbl.replace store k (Str v);
    prev
  | "LLEN", k :: _ ->
    let f, b = as_list k in
    reply_int (List.length f + List.length b)
  | "SCARD", k :: _ ->
    reply_int (match get k with Some (Set s) -> Hashtbl.length s | _ -> 0)
  | "SISMEMBER", k :: v :: _ ->
    reply_int (match get k with Some (Set s) when Hashtbl.mem s v -> 1 | _ -> 0)
  | "HGET", k :: field :: _ -> (
    match get k with
    | Some (Hash h) -> (
      match Hashtbl.find_opt h field with
      | Some v -> Printf.sprintf "$%s\n" v
      | None -> "$-1\n")
    | _ -> "$-1\n")
  | "HDEL", k :: field :: _ -> (
    match get k with
    | Some (Hash h) when Hashtbl.mem h field ->
      Hashtbl.remove h field;
      reply_int 1
    | _ -> reply_int 0)
  | "HLEN", k :: _ ->
    reply_int (match get k with Some (Hash h) -> Hashtbl.length h | _ -> 0)
  | "ZCARD", k :: _ ->
    reply_int (match get k with Some (Zset z) -> List.length z | _ -> 0)
  | "FLUSHALL", _ ->
    Hashtbl.reset store;
    "+OK\n"
  | "SET", k :: v :: _ ->
    Hashtbl.replace store k (Str v);
    "+OK\n"
  | "GET", k :: _ -> (
    match get k with
    | Some (Str v) -> Printf.sprintf "$%s\n" v
    | _ -> "$-1\n")
  | "INCR", k :: _ ->
    let v = match get k with Some (Str s) -> (try int_of_string s with _ -> 0) | _ -> 0 in
    Hashtbl.replace store k (Str (string_of_int (v + 1)));
    reply_int (v + 1)
  | "LPUSH", k :: v :: _ ->
    let f, b = as_list k in
    Hashtbl.replace store k (List (v :: f, b));
    reply_int (List.length f + List.length b + 1)
  | "RPUSH", k :: v :: _ ->
    let f, b = as_list k in
    Hashtbl.replace store k (List (f, v :: b));
    reply_int (List.length f + List.length b + 1)
  | "LPOP", k :: _ -> (
    match as_list k with
    | v :: f, b ->
      Hashtbl.replace store k (List (f, b));
      Printf.sprintf "$%s\n" v
    | [], b -> (
      match List.rev b with
      | v :: f ->
        Hashtbl.replace store k (List (f, []));
        Printf.sprintf "$%s\n" v
      | [] -> "$-1\n"))
  | "RPOP", k :: _ -> (
    match as_list k with
    | f, v :: b ->
      Hashtbl.replace store k (List (f, b));
      Printf.sprintf "$%s\n" v
    | f, [] -> (
      match List.rev f with
      | v :: b ->
        Hashtbl.replace store k (List ([], b));
        Printf.sprintf "$%s\n" v
      | [] -> "$-1\n"))
  | "SADD", k :: v :: _ ->
    let s =
      match get k with
      | Some (Set s) -> s
      | _ ->
        let s = Hashtbl.create 16 in
        Hashtbl.replace store k (Set s);
        s
    in
    let fresh = not (Hashtbl.mem s v) in
    Hashtbl.replace s v ();
    reply_int (if fresh then 1 else 0)
  | "SPOP", k :: _ -> (
    match get k with
    | Some (Set s) when Hashtbl.length s > 0 ->
      let v = Hashtbl.fold (fun k () _ -> Some k) s None in
      (match v with
      | Some v ->
        Hashtbl.remove s v;
        Printf.sprintf "$%s\n" v
      | None -> "$-1\n")
    | _ -> "$-1\n")
  | "HSET", k :: field :: v :: _ ->
    let h =
      match get k with
      | Some (Hash h) -> h
      | _ ->
        let h = Hashtbl.create 16 in
        Hashtbl.replace store k (Hash h);
        h
    in
    let fresh = not (Hashtbl.mem h field) in
    Hashtbl.replace h field v;
    reply_int (if fresh then 1 else 0)
  | "ZADD", k :: score :: v :: _ ->
    let z = match get k with Some (Zset z) -> z | _ -> [] in
    let sc = try float_of_string score with _ -> 0. in
    let z = List.merge compare [ (sc, v) ] (List.filter (fun (_, m) -> m <> v) z) in
    Sim.Clock.charge (per_element_work * List.length z / 4);
    Hashtbl.replace store k (Zset z);
    reply_int 1
  | "ZPOPMIN", k :: _ -> (
    match get k with
    | Some (Zset ((sc, v) :: rest)) ->
      Hashtbl.replace store k (Zset rest);
      Printf.sprintf "*2\n$%s\n$%g\n" v sc
    | _ -> "*0\n")
  | "LRANGE", k :: first :: last :: _ ->
    let f, b = as_list k in
    let all = f @ List.rev b in
    let first = int_of_string first and last = int_of_string last in
    let selected =
      List.filteri (fun i _ -> i >= first && i <= last) all
    in
    Sim.Clock.charge (per_element_work * List.length selected);
    Printf.sprintf "*%d\n%s" (List.length selected)
      (String.concat "" (List.map (fun v -> Printf.sprintf "$%s\n" v) selected))
  | "MSET", kvs ->
    let rec pairs = function
      | k :: v :: rest ->
        Hashtbl.replace store k (Str v);
        pairs rest
      | _ -> ()
    in
    pairs kvs;
    Sim.Clock.charge (per_element_work * (List.length kvs / 2));
    "+OK\n"
  | _ -> "-ERR unknown command\n"

let handle_connection store c conn =
  let pending = Buffer.create 256 in
  let continue = ref true in
  while !continue do
    (* Pull complete lines out of the stream. *)
    (match String.index_opt (Buffer.contents pending) '\n' with
    | None ->
      let chunk = Libc.read_str c ~fd:conn ~len:4096 in
      if chunk = "" then continue := false else Buffer.add_string pending chunk
    | Some _ -> ());
    (* Drain every complete line already buffered and answer the batch
       with one write: a coalesced burst of pipelined commands (GRO
       hands them to the socket in one chunk) costs one reply segment
       instead of one write syscall per command. Ping-pong clients see
       exactly the old one-line/one-write behaviour. *)
    let replies = Buffer.create 64 in
    let rec drain () =
      match String.index_opt (Buffer.contents pending) '\n' with
      | None -> ()
      | Some i ->
        let all = Buffer.contents pending in
        let line = String.sub all 0 i in
        Buffer.clear pending;
        Buffer.add_string pending (String.sub all (i + 1) (String.length all - i - 1));
        (match String.split_on_char ' ' (String.trim line) with
        | [] | [ "" ] -> ()
        | cmd :: args ->
          let cmd = String.uppercase_ascii cmd in
          (* kspan request boundary: one span per client command, parse
             to serialized reply. Host-level annotation — no syscall,
             no virtual cycles. *)
          Sim.Span.annotate_begin ~cls:"redis" ~name:cmd;
          Buffer.add_string replies (exec store cmd args);
          Sim.Span.annotate_end ());
        drain ()
    in
    drain ();
    if Buffer.length replies > 0 then
      if Libc.write_str c ~fd:conn (Buffer.contents replies) < 0 then continue := false
  done;
  ignore (Libc.close c conn);
  0

(* Event-driven server: one task, one epoll instance, level-triggered
   conn fds. The listener is non-blocking and drained to EAGAIN per
   readiness event (accept4); conn fds stay blocking — LT guarantees
   data is present when EPOLLIN is reported, so a single read per event
   never blocks, and LT re-reports until the socket is drained. *)
let serve_epoll store c =
  let sfd = Libc.socket c ~domain:2 ~typ:1 in
  ignore (Libc.bind_inet c ~fd:sfd ~port);
  ignore (Libc.listen c ~fd:sfd ~backlog:64);
  ignore (Libc.set_nonblock c ~fd:sfd);
  let ep = Libc.epoll_create1 c in
  ignore
    (Libc.epoll_ctl c ~epfd:ep ~op:Libc.epoll_ctl_add ~fd:sfd ~events:Libc.epollin
       ~data:(Int64.of_int sfd));
  let pending : (int, Buffer.t) Hashtbl.t = Hashtbl.create 64 in
  (* close(2) drops the epoll registration (EPOLLFREE) — no DEL owed. *)
  let drop fd =
    Hashtbl.remove pending fd;
    ignore (Libc.close c fd)
  in
  let accept_burst () =
    let continue = ref true in
    while !continue do
      let conn = Libc.accept4 c ~fd:sfd ~flags:0 in
      if conn < 0 then continue := false
      else begin
        ignore (Libc.set_nodelay c ~fd:conn);
        Hashtbl.replace pending conn (Buffer.create 256);
        ignore
          (Libc.epoll_ctl c ~epfd:ep ~op:Libc.epoll_ctl_add ~fd:conn ~events:Libc.epollin
             ~data:(Int64.of_int conn))
      end
    done
  in
  let serve_conn fd events =
    match Hashtbl.find_opt pending fd with
    | None -> ()
    | Some buf ->
      let eof =
        if events land Libc.epollin <> 0 then begin
          let chunk = Libc.read_str c ~fd ~len:4096 in
          Buffer.add_string buf chunk;
          chunk = ""
        end
        else events land (Libc.epollhup lor Libc.epollerr) <> 0
      in
      let replies = Buffer.create 64 in
      let rec drain () =
        match String.index_opt (Buffer.contents buf) '\n' with
        | None -> ()
        | Some i ->
          let all = Buffer.contents buf in
          let line = String.sub all 0 i in
          Buffer.clear buf;
          Buffer.add_string buf (String.sub all (i + 1) (String.length all - i - 1));
          (match String.split_on_char ' ' (String.trim line) with
          | [] | [ "" ] -> ()
          | cmd :: args ->
            let cmd = String.uppercase_ascii cmd in
            Sim.Span.annotate_begin ~cls:"redis" ~name:cmd;
            Buffer.add_string replies (exec store cmd args);
            Sim.Span.annotate_end ());
          drain ()
      in
      drain ();
      let write_failed =
        Buffer.length replies > 0 && Libc.write_str c ~fd (Buffer.contents replies) < 0
      in
      if eof || write_failed then drop fd
  in
  let continue = ref true in
  while !continue do
    match Libc.epoll_wait c ~epfd:ep ~maxevents:64 ~timeout_ms:(-1) with
    | Error _ -> continue := false
    | Ok (_, evs) ->
      List.iter
        (fun (data, events) ->
          let fd = Int64.to_int data in
          if fd = sfd then accept_burst () else serve_conn fd events)
        evs
  done;
  0

let spawn ?(mode = `Epoll) () =
  Runner.spawn ~name:"mini-redis" (fun c ->
      let store : (string, value) Hashtbl.t = Hashtbl.create 4096 in
      match mode with
      | `Epoll -> serve_epoll store c
      | `Threads ->
        let sfd = Libc.socket c ~domain:2 ~typ:1 in
        ignore (Libc.bind_inet c ~fd:sfd ~port);
        ignore (Libc.listen c ~fd:sfd ~backlog:64);
        let continue = ref true in
        while !continue do
          let conn = Libc.accept c ~fd:sfd in
          if conn < 0 then continue := false
          else begin
            ignore (Libc.set_nodelay c ~fd:conn);
            ignore
              (Libc.clone_thread c (fun uapi ->
                   handle_connection store (Libc.make uapi) conn))
          end
        done;
        0)
