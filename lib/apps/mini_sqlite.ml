let page_size = 4096

(* User-space CPU costs (cycles): parsing/VM, B-tree comparisons, codec. *)
let op_overhead = 1100
let per_row_touch = 130
let per_page_codec = 350

type key = K_int of int | K_text of string

let key_compare a b =
  match (a, b) with
  | K_int x, K_int y -> compare x y
  | K_text x, K_text y -> compare x y
  | K_int _, K_text _ -> -1
  | K_text _, K_int _ -> 1

type node =
  | Leaf of (key * string) array
  | Internal of key array * int array (* separators, child page numbers *)

(* Marshalled nodes must fit a page; these fanouts keep them under it. *)
let leaf_max = 28
let internal_max = 48

type tree = { mutable root : int; mutable nrows : int }

type db = {
  c : Libc.t;
  path : string;
  mutable db_fd : int;
  (* user-space page cache *)
  cache : (int, node) Hashtbl.t;
  mutable lru : int list;
  cache_cap : int;
  mutable next_page : int;
  mutable free_pages : int list;
  tables : (string, tree) Hashtbl.t;
  indexes : (string, (string * tree) list) Hashtbl.t; (* table -> named index trees *)
  (* transaction state *)
  mutable in_txn : bool;
  mutable journal_fd : int;
  mutable journal_count : int;
  mutable journaled : (int, unit) Hashtbl.t;
  mutable dirty : (int, unit) Hashtbl.t;
  io_buf : int; (* user buffer vaddr, one page *)
}

let charge = Sim.Clock.charge

(* --- Raw page I/O through the ABI --- *)

let write_page_raw db page (node : node) =
  let b = Marshal.to_bytes node [] in
  if Bytes.length b > page_size then Ostd.Panic.panic "mini_sqlite: node exceeds page";
  let padded = Bytes.make page_size '\000' in
  Bytes.blit b 0 padded 0 (Bytes.length b);
  (Libc.raw db.c).Ostd.User.mem_write db.io_buf padded;
  ignore (Libc.pwrite db.c ~fd:db.db_fd ~vaddr:db.io_buf ~len:page_size ~off:(page * page_size))

let read_page_raw db page : node =
  let n = Libc.pread db.c ~fd:db.db_fd ~vaddr:db.io_buf ~len:page_size ~off:(page * page_size) in
  if n <= 0 then Leaf [||]
  else begin
    let b = Libc.get_bytes db.c db.io_buf page_size in
    (Marshal.from_bytes b 0 : node)
  end

(* --- Page cache --- *)

let cache_touch db page =
  db.lru <- page :: List.filter (fun p -> p <> page) db.lru

let cache_evict db =
  if Hashtbl.length db.cache > db.cache_cap then begin
    match List.rev db.lru with
    | victim :: _ when not (Hashtbl.mem db.dirty victim) ->
      Hashtbl.remove db.cache victim;
      db.lru <- List.filter (fun p -> p <> victim) db.lru
    | _ -> ()
  end

let get_node db page =
  charge per_page_codec;
  match Hashtbl.find_opt db.cache page with
  | Some n ->
    cache_touch db page;
    n
  | None ->
    let n = read_page_raw db page in
    Hashtbl.replace db.cache page n;
    cache_touch db page;
    cache_evict db;
    n

(* --- Journal protocol (SQLite "delete" mode) ---

   Rollback journal: before a page is first modified inside a
   transaction its ORIGINAL content is appended to [path]-journal as
   [page u32][content].  A journal found at open time means the last
   transaction never reached its commit point (journal deletion), so
   replaying it rolls the database back to the pre-transaction state. *)

let journal_path db = db.path ^ "-journal"

let journal_magic = 0x4D53_514A (* "MSQJ" *)

let entry_size = 4 + page_size

let journal_header db =
  (* The 12-byte header: magic plus the page count — updated with a tiny
     pwrite every time a page is added, exactly the pattern the paper's
     strace found dominating VACUUM. *)
  let b = Bytes.create 12 in
  Bytes.set_int32_le b 0 (Int32.of_int journal_magic);
  Bytes.set_int32_le b 8 (Int32.of_int db.journal_count);
  (Libc.raw db.c).Ostd.User.mem_write db.io_buf b;
  ignore (Libc.pwrite db.c ~fd:db.journal_fd ~vaddr:db.io_buf ~len:12 ~off:0)

(* Append one [page u32][original bytes] record and bump the count. *)
let journal_raw db page original =
  let entry = Bytes.make entry_size '\000' in
  Bytes.set_int32_le entry 0 (Int32.of_int page);
  Bytes.blit original 0 entry 4 (min (Bytes.length original) page_size);
  (Libc.raw db.c).Ostd.User.mem_write db.io_buf entry;
  ignore
    (Libc.pwrite db.c ~fd:db.journal_fd ~vaddr:db.io_buf ~len:entry_size
       ~off:(12 + (db.journal_count * entry_size)));
  db.journal_count <- db.journal_count + 1;
  journal_header db

let read_page_bytes db page =
  let n = Libc.pread db.c ~fd:db.db_fd ~vaddr:db.io_buf ~len:page_size ~off:(page * page_size) in
  if n <= 0 then Bytes.make page_size '\000'
  else Libc.get_bytes db.c db.io_buf page_size

let journal_page db page =
  if db.in_txn && not (Hashtbl.mem db.journaled page) then begin
    Hashtbl.replace db.journaled page ();
    let original = Marshal.to_bytes (get_node db page) [] in
    journal_raw db page original
  end

(* fsync the directory holding [path]: a file creation, deletion, or
   rename is only durable once its parent directory is. Returns a
   negative errno if the directory could not be made durable. *)
let fsync_dir db path =
  let dir = Filename.dirname path in
  let dfd = Libc.openf db.c dir ~flags:0o200000 (* O_DIRECTORY *) ~mode:0 in
  if dfd < 0 then dfd
  else begin
    let rc = Libc.fsync db.c dfd in
    ignore (Libc.close db.c dfd);
    rc
  end

let put_node db page node =
  journal_page db page;
  Hashtbl.replace db.cache page node;
  Hashtbl.replace db.dirty page ();
  cache_touch db page

let alloc_page db =
  match db.free_pages with
  | p :: rest ->
    db.free_pages <- rest;
    p
  | [] ->
    let p = db.next_page in
    db.next_page <- p + 1;
    p

(* --- Catalog (page 0) ---

   Table and index roots live in a marshalled catalog on page 0,
   rewritten at every commit, so a database survives closing the handle
   — or losing power — and reopening it. *)

type catalog = {
  cat_tables : (string * int * int) list; (* name, root, nrows *)
  cat_indexes : (string * (string * int * int) list) list;
  cat_next_page : int;
  cat_free_pages : int list;
}

let catalog_of db =
  {
    cat_tables =
      Hashtbl.fold (fun name t acc -> (name, t.root, t.nrows) :: acc) db.tables [];
    cat_indexes =
      Hashtbl.fold
        (fun name its acc ->
          (name, List.map (fun (n, (it : tree)) -> (n, it.root, it.nrows)) its) :: acc)
        db.indexes [];
    cat_next_page = db.next_page;
    cat_free_pages = db.free_pages;
  }

let write_catalog db =
  let b = Marshal.to_bytes (catalog_of db) [] in
  if Bytes.length b > page_size then Ostd.Panic.panic "mini_sqlite: catalog exceeds page";
  let padded = Bytes.make page_size '\000' in
  Bytes.blit b 0 padded 0 (Bytes.length b);
  (Libc.raw db.c).Ostd.User.mem_write db.io_buf padded;
  ignore (Libc.pwrite db.c ~fd:db.db_fd ~vaddr:db.io_buf ~len:page_size ~off:0)

let load_catalog db =
  let n = Libc.pread db.c ~fd:db.db_fd ~vaddr:db.io_buf ~len:page_size ~off:0 in
  if n > 0 then begin
    let b = Libc.get_bytes db.c db.io_buf page_size in
    match (try Some (Marshal.from_bytes b 0 : catalog) with _ -> None) with
    | None -> ()
    | Some cat ->
      List.iter
        (fun (name, root, nrows) -> Hashtbl.replace db.tables name { root; nrows })
        cat.cat_tables;
      List.iter
        (fun (name, its) ->
          Hashtbl.replace db.indexes name
            (List.map (fun (n, root, nrows) -> (n, { root; nrows })) its))
        cat.cat_indexes;
      db.next_page <- cat.cat_next_page;
      db.free_pages <- cat.cat_free_pages
  end

let begin_txn db =
  if not db.in_txn then begin
    db.in_txn <- true;
    db.journal_fd <- Libc.openf db.c (journal_path db) ~flags:0o102 (* O_CREAT|O_RDWR *) ~mode:0o644;
    db.journal_count <- 0;
    journal_header db;
    (* The catalog changes with every transaction; journal its
       pre-transaction image so rollback restores the old roots. *)
    Hashtbl.replace db.journaled 0 ();
    journal_raw db 0 (read_page_bytes db 0)
  end

let commit_durable db =
  if not db.in_txn then true
  else begin
    (* 1. Make the journal durable, 2. write dirty pages + catalog,
       3. sync the db, 4. delete the journal (the commit point),
       5. make the deletion itself durable. The transaction is durable
       only if every barrier succeeded: a failed journal fsync means a
       crash replays a stale journal; a failed directory fsync means the
       commit point (the deletion) may not survive — either way the
       rollback at next open undoes the transaction. *)
    let ok = ref true in
    let chk rc = if rc < 0 then ok := false in
    chk (Libc.fsync db.c db.journal_fd);
    Hashtbl.iter (fun page () -> write_page_raw db page (Hashtbl.find db.cache page)) db.dirty;
    write_catalog db;
    chk (Libc.fsync db.c db.db_fd);
    ignore (Libc.close db.c db.journal_fd);
    chk (Libc.unlink db.c (journal_path db));
    chk (fsync_dir db db.path);
    db.in_txn <- false;
    db.journal_fd <- -1;
    Hashtbl.reset db.journaled;
    Hashtbl.reset db.dirty;
    !ok
  end

let commit db = ignore (commit_durable db)

(* Roll back a half-committed transaction left behind by a crash: copy
   every journalled original back into the database, then delete the
   journal.  A torn journal (shorter than its header claims) marks a
   transaction that never reached its first barrier — the database
   pages were never touched, so it is simply discarded. *)
let rollback_journal c path ~db_fd ~io_buf =
  let jpath = path ^ "-journal" in
  match Libc.stat c jpath with
  | Error _ -> ()
  | Ok st ->
    let jfd = Libc.openf c jpath ~flags:0o2 ~mode:0o644 in
    let hdr_n = Libc.pread c ~fd:jfd ~vaddr:io_buf ~len:12 ~off:0 in
    (if hdr_n = 12 then begin
       let hdr = Libc.get_bytes c io_buf 12 in
       let magic = Int32.to_int (Bytes.get_int32_le hdr 0) land 0xffffffff in
       let count = Int32.to_int (Bytes.get_int32_le hdr 8) in
       if
         magic = journal_magic && count >= 0
         && st.Aster.Abi.size >= 12 + (count * entry_size)
       then begin
         for i = 0 to count - 1 do
           let off = 12 + (i * entry_size) in
           ignore (Libc.pread c ~fd:jfd ~vaddr:io_buf ~len:entry_size ~off);
           let entry = Libc.get_bytes c io_buf entry_size in
           let page = Int32.to_int (Bytes.get_int32_le entry 0) in
           if page >= 0 && page < 1_000_000 then begin
             let content = Bytes.sub entry 4 page_size in
             (Libc.raw c).Ostd.User.mem_write io_buf content;
             ignore (Libc.pwrite c ~fd:db_fd ~vaddr:io_buf ~len:page_size ~off:(page * page_size))
           end
         done;
         ignore (Libc.fsync c db_fd)
       end
     end);
    ignore (Libc.close c jfd);
    ignore (Libc.unlink c jpath)

let open_db c path =
  let db_fd = Libc.openf c path ~flags:0o102 ~mode:0o644 in
  (* Sized for a whole journal entry, the largest single transfer. *)
  let io_buf = Libc.ualloc c entry_size in
  rollback_journal c path ~db_fd ~io_buf;
  let db =
    {
      c;
      path;
      db_fd;
      cache = Hashtbl.create 512;
      lru = [];
      cache_cap = 48;
      next_page = 1;
      free_pages = [];
      tables = Hashtbl.create 8;
      indexes = Hashtbl.create 8;
      in_txn = false;
      journal_fd = -1;
      journal_count = 0;
      journaled = Hashtbl.create 64;
      dirty = Hashtbl.create 64;
      io_buf;
    }
  in
  load_catalog db;
  db

let close_db db =
  commit db;
  ignore (Libc.close db.c db.db_fd)

(* --- B+tree --- *)

let the_table db name =
  match Hashtbl.find_opt db.tables name with
  | Some t -> t
  | None -> Ostd.Panic.panicf "mini_sqlite: no table %s" name

let create_table db name =
  let root = alloc_page db in
  put_node db root (Leaf [||]);
  Hashtbl.replace db.tables name { root; nrows = 0 };
  Hashtbl.replace db.indexes name []

let row_count db ~table = (the_table db table).nrows

(* Find the child index for a key in an internal node. *)
let child_slot seps k =
  let n = Array.length seps in
  let rec go i = if i >= n || key_compare k seps.(i) < 0 then i else go (i + 1) in
  go 0

let rec tree_insert db page k v ~replace_only : (key * int) option * bool =
  (* Returns (split info, was_new_row). *)
  charge per_row_touch;
  match get_node db page with
  | Leaf entries ->
    let pos = ref 0 in
    while !pos < Array.length entries && key_compare (fst entries.(!pos)) k < 0 do
      incr pos
    done;
    let exists = !pos < Array.length entries && key_compare (fst entries.(!pos)) k = 0 in
    let entries =
      if exists then begin
        let e = Array.copy entries in
        e.(!pos) <- (k, v);
        e
      end
      else begin
        let n = Array.length entries in
        let e = Array.make (n + 1) (k, v) in
        Array.blit entries 0 e 0 !pos;
        e.(!pos) <- (k, v);
        Array.blit entries !pos e (!pos + 1) (n - !pos);
        e
      end
    in
    ignore replace_only;
    if Array.length entries <= leaf_max then begin
      put_node db page (Leaf entries);
      (None, not exists)
    end
    else begin
      (* Split: left half stays, right half to a new page. *)
      let mid = Array.length entries / 2 in
      let left = Array.sub entries 0 mid in
      let right = Array.sub entries mid (Array.length entries - mid) in
      let right_page = alloc_page db in
      put_node db page (Leaf left);
      put_node db right_page (Leaf right);
      (Some (fst right.(0), right_page), not exists)
    end
  | Internal (seps, children) ->
    let slot = child_slot seps k in
    let split, fresh = tree_insert db children.(slot) k v ~replace_only in
    (match split with
    | None -> (None, fresh)
    | Some (sep, right_page) ->
      let nseps = Array.length seps in
      let seps' = Array.make (nseps + 1) sep in
      Array.blit seps 0 seps' 0 slot;
      seps'.(slot) <- sep;
      Array.blit seps slot seps' (slot + 1) (nseps - slot);
      let children' = Array.make (nseps + 2) right_page in
      Array.blit children 0 children' 0 (slot + 1);
      children'.(slot + 1) <- right_page;
      Array.blit children (slot + 1) children' (slot + 2) (nseps - slot);
      if Array.length seps' <= internal_max then begin
        put_node db page (Internal (seps', children'));
        (None, fresh)
      end
      else begin
        let mid = Array.length seps' / 2 in
        let promote = seps'.(mid) in
        let lseps = Array.sub seps' 0 mid in
        let rseps = Array.sub seps' (mid + 1) (Array.length seps' - mid - 1) in
        let lch = Array.sub children' 0 (mid + 1) in
        let rch = Array.sub children' (mid + 1) (Array.length children' - mid - 1) in
        let right = alloc_page db in
        put_node db page (Internal (lseps, lch));
        put_node db right (Internal (rseps, rch));
        (Some (promote, right), fresh)
      end)

let root_insert db (t : tree) k v =
  charge op_overhead;
  match tree_insert db t.root k v ~replace_only:false with
  | None, fresh -> if fresh then t.nrows <- t.nrows + 1
  | Some (sep, right), fresh ->
    let new_root = alloc_page db in
    put_node db new_root (Internal ([| sep |], [| t.root; right |]));
    t.root <- new_root;
    if fresh then t.nrows <- t.nrows + 1

let index_trees db table = try Hashtbl.find db.indexes table with Not_found -> []

let insert db ~table k v =
  let t = the_table db table in
  root_insert db t k v;
  List.iter (fun (_, it) -> root_insert db it (K_text v) "1") (index_trees db table)

let replace = insert

let rec tree_lookup db page k =
  charge per_row_touch;
  match get_node db page with
  | Leaf entries ->
    Array.fold_left
      (fun acc (ek, ev) -> if key_compare ek k = 0 then Some ev else acc)
      None entries
  | Internal (seps, children) -> tree_lookup db children.(child_slot seps k) k

let lookup db ~table k =
  charge op_overhead;
  tree_lookup db (the_table db table).root k

let rec tree_range db page lo hi f =
  match get_node db page with
  | Leaf entries ->
    Array.iter
      (fun (k, v) ->
        if key_compare k lo >= 0 && key_compare k hi <= 0 then begin
          charge per_row_touch;
          f k v
        end)
      entries
  | Internal (seps, children) ->
    let first = child_slot seps lo and last = child_slot seps hi in
    for i = first to last do
      tree_range db children.(i) lo hi f
    done

let range_count db ~table ~lo ~hi =
  charge op_overhead;
  let n = ref 0 in
  tree_range db (the_table db table).root lo hi (fun _ _ -> incr n);
  !n

let rec tree_iter db page f =
  match get_node db page with
  | Leaf entries ->
    Array.iter
      (fun (k, v) ->
        charge per_row_touch;
        f k v)
      entries
  | Internal (_, children) -> Array.iter (fun c -> tree_iter db c f) children

let full_scan db ~table ~f =
  charge op_overhead;
  let n = ref 0 in
  tree_iter db (the_table db table).root (fun k v ->
      incr n;
      f k v);
  !n

let update_range db ~table ~lo ~hi ~f =
  charge op_overhead;
  let t = the_table db table in
  let hits = ref [] in
  tree_range db t.root lo hi (fun k v -> hits := (k, v) :: !hits);
  List.iter (fun (k, v) -> root_insert db t k (f v)) !hits;
  List.length !hits

(* Deletion leaves leaves in place (no merge), like many engines. *)
let rec tree_delete db page k =
  charge per_row_touch;
  match get_node db page with
  | Leaf entries ->
    let n = Array.length entries in
    let kept = Array.of_list (List.filter (fun (ek, _) -> key_compare ek k <> 0) (Array.to_list entries)) in
    if Array.length kept < n then begin
      put_node db page (Leaf kept);
      true
    end
    else false
  | Internal (seps, children) -> tree_delete db children.(child_slot seps k) k

let delete_key db ~table k =
  charge op_overhead;
  let t = the_table db table in
  let gone = tree_delete db t.root k in
  if gone then t.nrows <- t.nrows - 1;
  gone

let delete_range db ~table ~lo ~hi =
  charge op_overhead;
  let t = the_table db table in
  let hits = ref [] in
  tree_range db t.root lo hi (fun k _ -> hits := k :: !hits);
  List.iter (fun k -> ignore (tree_delete db t.root k)) !hits;
  t.nrows <- t.nrows - List.length !hits;
  List.length !hits

let create_index db ~table ~name =
  charge op_overhead;
  let root = alloc_page db in
  put_node db root (Leaf [||]);
  let it = { root; nrows = 0 } in
  Hashtbl.replace db.indexes table ((name, it) :: index_trees db table);
  (* Build from existing rows. *)
  ignore (full_scan db ~table ~f:(fun _ v -> root_insert db it (K_text v) "1"))

let pages_in_file db = db.next_page

let vacuum db =
  (* Rebuild every table — and every index — compactly into a fresh
     temp file, then atomically rename it over the database.  A crash
     at any point leaves either the complete old file (rename not yet
     durable) or the complete new one; never a half-rebuilt hybrid.
     Still dominated by header pwrites and fsyncs, as in the paper. *)
  charge op_overhead;
  let rows = ref [] in
  Hashtbl.iter
    (fun name t ->
      let acc = ref [] in
      tree_iter db t.root (fun k v -> acc := (k, v) :: !acc);
      rows := (name, List.rev !acc) :: !rows)
    db.tables;
  let index_names =
    Hashtbl.fold (fun tbl its acc -> (tbl, List.map fst its) :: acc) db.indexes []
  in
  commit db;
  let tmp_path = db.path ^ "-vacuum" in
  let old_fd = db.db_fd in
  db.db_fd <- Libc.openf db.c tmp_path ~flags:0o1102 (* O_CREAT|O_RDWR|O_TRUNC *) ~mode:0o644;
  Hashtbl.reset db.cache;
  db.lru <- [];
  db.next_page <- 1;
  db.free_pages <- [];
  Hashtbl.reset db.tables;
  Hashtbl.reset db.indexes;
  (* The temp file needs no journal: until the rename lands it is
     invisible, and a crash simply discards it. *)
  List.iter
    (fun (name, entries) ->
      let root = alloc_page db in
      put_node db root (Leaf [||]);
      let t = { root; nrows = 0 } in
      Hashtbl.replace db.tables name t;
      Hashtbl.replace db.indexes name [];
      List.iter (fun (k, v) -> root_insert db t k v) entries)
    !rows;
  List.iter
    (fun (tbl, names) ->
      List.iter
        (fun iname ->
          let root = alloc_page db in
          put_node db root (Leaf [||]);
          let it = { root; nrows = 0 } in
          Hashtbl.replace db.indexes tbl ((iname, it) :: index_trees db tbl);
          List.iter
            (fun (k, v) -> ignore k; root_insert db it (K_text v) "1")
            (List.assoc tbl !rows))
        names)
    index_names;
  Hashtbl.iter (fun page () -> write_page_raw db page (Hashtbl.find db.cache page)) db.dirty;
  Hashtbl.reset db.dirty;
  write_catalog db;
  ignore (Libc.fsync db.c db.db_fd);
  ignore (Libc.rename db.c tmp_path db.path);
  ignore (fsync_dir db db.path);
  ignore (Libc.close db.c old_fd)

let integrity_check db =
  charge op_overhead;
  let pages = ref 0 in
  let rec walk page =
    incr pages;
    charge per_page_codec;
    match get_node db page with
    | Leaf _ -> ()
    | Internal (_, children) -> Array.iter walk children
  in
  Hashtbl.iter (fun _ t -> walk t.root) db.tables;
  !pages

let analyze db =
  charge op_overhead;
  Hashtbl.iter (fun _ (t : tree) -> tree_iter db t.root (fun _ _ -> ())) db.tables
