(** An in-memory key-value server speaking a compact RESP-like protocol,
    standing in for the paper's Redis workload. The default server is a
    single-task epoll event loop (level-triggered conns, non-blocking
    accept4-drained listener); [`Threads] keeps the legacy one kernel
    thread per client connection (clone(2) with shared address space).
    The data structures cover every command redis-benchmark exercises in
    Table 11: strings, counters, lists, sets, hashes, sorted sets.

    Protocol: one request per line, space separated; replies are
    "+str", ":int", "$<payload>", or "*n" followed by n "$" lines. *)

val port : int

val spawn : ?mode:[ `Epoll | `Threads ] -> unit -> unit
(** Spawn the server process. [`Epoll] (default): one-task event loop;
    [`Threads]: accept loop + per-connection threads. *)

val command_names : string list
(** The Table 11 operations, in paper order. *)
