let lapic_base = 0xFEE0_0000

let iommu_reg_base = 0xFED9_0000

let pci_hole_base = 0xC000_0000

let register_core_windows () =
  let ro _v = () in
  Mmio.register
    {
      base = lapic_base;
      size = 0x1000;
      name = "lapic";
      sensitive = true;
      read = (fun ~off:_ ~len:_ -> 0L);
      write = (fun ~off:_ ~len:_ v -> ro v);
    };
  Mmio.register
    {
      base = iommu_reg_base;
      size = 0x1000;
      name = "iommu-regs";
      sensitive = true;
      read = (fun ~off:_ ~len:_ -> 0L);
      write = (fun ~off:_ ~len:_ v -> ro v);
    };
  (* Serial console: writes are collected for the kernel log; the PIC
     command ports are sensitive. *)
  Pio.register
    {
      first = 0x3F8;
      count = 8;
      name = "serial";
      sensitive = false;
      read = (fun ~port:_ -> 0);
      write = (fun ~port:_ _ -> ());
    };
  Pio.register
    {
      first = 0x20;
      count = 2;
      name = "pic";
      sensitive = true;
      read = (fun ~port:_ -> 0);
      write = (fun ~port:_ _ -> ());
    }

let reset ?(frames = 16384) () =
  Sim.Clock.reset ();
  Sim.Events.clear ();
  Sim.Stats.reset ();
  Sim.Hist.reset ();
  (* Attribution restarts with the clock (conservation is anchored at
     the boot instant), but the enabled flag survives like the trace
     mask: it is configuration, not run state. *)
  Sim.Prof.clear ();
  (* The ring empties with the machine, but the enable mask survives:
     it is configuration, like the fault schedule, not run state. *)
  Sim.Trace.clear ();
  (* Spans reset with the clock; the enabled/auto flags survive like
     the trace mask: configuration, not run state. *)
  Sim.Span.clear ();
  Sim.Fault.reset ();
  Phys.init ~frames;
  Mmio.reset ();
  Pio.reset ();
  Irq_chip.reset ();
  Iommu.reset ();
  Bus.reset ();
  register_core_windows ()

type devices = {
  blk : Virtio_blk.t;
  net : Virtio_net.t;
  host_endpoint : Wire.endpoint;
}

let attach_default_devices ?disk ?(disk_mb = 64) () =
  let c = Sim.Cost.c () in
  let blk =
    Virtio_blk.create ?disk
      ~capacity_sectors:(disk_mb * 1024 * 1024 / Virtio_blk.sector_size)
      ~mmio_base:pci_hole_base ~dev_id:1 ~vector:40 ()
  in
  let guest_ep, host_ep =
    Wire.create_pair ~latency_us:c.Sim.Profile.net_us_per_pkt
      ~bytes_per_cycle:c.Sim.Profile.net_dev_bpc
  in
  let net =
    Virtio_net.create ~mmio_base:(pci_hole_base + 0x1000) ~dev_id:2 ~vector:41
      ~endpoint:guest_ep
  in
  { blk; net; host_endpoint = host_ep }
