(* On-wire packet format shared by the guest stack and the device
   model. The device needs it for the two offloads it implements in
   "hardware": TSO (splitting a super-segment descriptor into MSS-sized
   wire frames at ring time) and RX checksum verification (computing the
   verdict the driver trusts instead of paying a software pass). Keeping
   the byte layout here — below the kernel — is what makes those honest:
   the device manipulates raw frames, never kernel objects. *)

let header_size = 36

let cksum_off = 32

let mss = 1448

(* Flag bits (offset 9). Only the ones the splitter must strip from
   non-final sub-frames live here; the full set is in Aster.Packet. *)
let fin = 4

let psh = 16

(* FNV-1a over the whole datagram with the checksum field skipped.
   Catches any single flipped byte — which is exactly what a noisy link
   (or the fault plane's [net.corrupt]) produces. *)
let cksum b =
  let h = ref 0x811c9dc5 in
  for i = 0 to Bytes.length b - 1 do
    if i < cksum_off || i >= cksum_off + 4 then begin
      h := !h lxor Char.code (Bytes.unsafe_get b i);
      h := !h * 0x01000193 land 0xffffffff
    end
  done;
  !h

let u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xffffffff

(* Device-side checksum verification over a raw frame, mirroring what
   the receiving stack's decode would conclude. *)
let cksum_ok raw =
  Bytes.length raw >= header_size
  &&
  let len = u32 raw 28 in
  Bytes.length raw >= header_size + len
  && u32 raw cksum_off = cksum (Bytes.sub raw 0 (header_size + len))

(* TSO: split one encoded super-segment into wire frames of at most
   [gso_size] payload bytes. Each sub-frame gets the advanced sequence
   number, its own length and a recomputed checksum; FIN and PSH travel
   only on the final sub-frame, the way a real NIC segments. *)
let tso_split ~gso_size raw =
  let plen = Bytes.length raw - header_size in
  if gso_size <= 0 || plen <= gso_size then [ raw ]
  else begin
    let seq0 = u32 raw 16 in
    let flags0 = Char.code (Bytes.get raw 9) in
    let rec go off acc =
      if off >= plen then List.rev acc
      else begin
        let c = min gso_size (plen - off) in
        let b = Bytes.create (header_size + c) in
        Bytes.blit raw 0 b 0 header_size;
        Bytes.blit raw (header_size + off) b header_size c;
        Bytes.set_int32_le b 16 (Int32.of_int (seq0 + off));
        Bytes.set_int32_le b 28 (Int32.of_int c);
        let last = off + c >= plen in
        let flags = if last then flags0 else flags0 land lnot (fin lor psh) in
        Bytes.set b 9 (Char.chr flags);
        Bytes.set_int32_le b cksum_off (Int32.of_int (cksum b));
        go (off + c) (b :: acc)
      end
    in
    go 0 []
  end
