let page_size = Phys.page_size

let enabled_flag = ref false

(* Device domain: set of mapped page numbers. *)
let domains : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 8

(* IOTLB: (dev, page) -> generation, evicted in FIFO order by a bounded
   queue. Capacity is small enough that streaming DMA with dynamic
   mappings thrashes it, as in the paper. *)
let iotlb_capacity = 512

let iotlb : (int * int, unit) Hashtbl.t = Hashtbl.create 64

let iotlb_queue : (int * int) Queue.t = Queue.create ()

let hit_count = ref 0

let miss_count = ref 0

let reset () =
  enabled_flag := false;
  Hashtbl.reset domains;
  Hashtbl.reset iotlb;
  Queue.clear iotlb_queue;
  hit_count := 0;
  miss_count := 0

let set_enabled b = enabled_flag := b

let enabled () = !enabled_flag

let domain dev =
  match Hashtbl.find_opt domains dev with
  | Some d -> d
  | None ->
    let d = Hashtbl.create 64 in
    Hashtbl.add domains dev d;
    d

let pages_of ~paddr ~len =
  if len <= 0 then []
  else begin
    let first = paddr / page_size and last = (paddr + len - 1) / page_size in
    List.init (last - first + 1) (fun i -> first + i)
  end

let map ~dev ~paddr ~len =
  let d = domain dev in
  List.iter (fun p -> Hashtbl.replace d p ()) (pages_of ~paddr ~len)

let iotlb_invalidate key =
  if Hashtbl.mem iotlb key then Hashtbl.remove iotlb key

let unmap ~dev ~paddr ~len =
  let d = domain dev in
  List.iter
    (fun p ->
      Hashtbl.remove d p;
      iotlb_invalidate (dev, p))
    (pages_of ~paddr ~len)

let mapped_pages ~dev = Hashtbl.length (domain dev)

let iotlb_insert key =
  if not (Hashtbl.mem iotlb key) then begin
    if Queue.length iotlb_queue >= iotlb_capacity then begin
      let victim = Queue.pop iotlb_queue in
      Hashtbl.remove iotlb victim
    end;
    Hashtbl.add iotlb key ();
    Queue.push key iotlb_queue
  end

let translate_page dev page =
  let key = (dev, page) in
  if Hashtbl.mem iotlb key then begin
    incr hit_count;
    Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.iotlb_hit;
    Sim.Trace.emit Sim.Trace.Dma "iotlb_hit" (fun () ->
        Printf.sprintf "dev=%d page=%#x" dev page);
    Ok ()
  end
  else begin
    incr miss_count;
    Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.iotlb_miss;
    Sim.Trace.emit Sim.Trace.Dma "iotlb_miss" (fun () ->
        Printf.sprintf "dev=%d page=%#x" dev page);
    if Hashtbl.mem (domain dev) page then begin
      iotlb_insert key;
      Ok ()
    end
    else Error (Printf.sprintf "iommu: dev %d faulted on page %#x" dev page)
  end

let access ~dev ~paddr ~len =
  if not !enabled_flag then Ok ()
  else if Sim.Fault.roll "iommu.fault" then begin
    (* Injected translation fault: the walk spuriously fails even for a
       mapped page, as after a lost invalidation or a table corruption.
       The device sees the same dropped-DMA behaviour as a real fault. *)
    Sim.Stats.incr "iommu.fault";
    Sim.Stats.incr "iommu.injected_fault";
    Sim.Trace.emit Sim.Trace.Dma "fault" (fun () ->
        Printf.sprintf "dev=%d paddr=%#x injected" dev paddr);
    Error (Printf.sprintf "iommu: injected fault for dev %d at %#x" dev paddr)
  end
  else begin
    let rec check = function
      | [] -> Ok ()
      | p :: rest -> (
        match translate_page dev p with
        | Ok () -> check rest
        | Error _ as e ->
          Sim.Stats.incr "iommu.fault";
          e)
    in
    check (pages_of ~paddr ~len)
  end

let hits () = !hit_count

let misses () = !miss_count
