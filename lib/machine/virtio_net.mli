(** Virtio network device model, attached to one end of a {!Wire}.

    Transmit descriptor (24 bytes):
    {v
      off 0   u32  len
      off 4   u32  status   written by the device: 0 sent, 1 dma fault / tx error
      off 8   u64  data paddr
      off 16  u64  next descriptor paddr (0 = end of chain)
    v}

    Receive descriptor (16 bytes):
    {v
      off 0  u32  capacity
      off 4  u32  used len  written by the device (0xffff until used)
      off 8  u64  data paddr
    v}

    A TX notify names the head of a descriptor chain; the device walks
    the [next] links (bounded), pays one per-kick latency plus a smaller
    per-descriptor latency, puts every frame on the wire, and raises ONE
    completion interrupt for the whole chain. The driver posts receive
    buffers ahead of time; inbound packets that find no posted buffer
    are dropped and counted, like a NIC with an empty RX ring. All data
    movement goes through the {!Iommu}. One interrupt vector signals
    both TX completions and RX arrivals; with the [net_irq_coalesce]
    profile knob the line stays asserted until the driver acks it
    ([reg_irq_ack]), NAPI-style, so arrivals landing before the bottom
    half runs fold into one interrupt. *)

type t

val create :
  mmio_base:int -> dev_id:int -> vector:int -> endpoint:Wire.endpoint -> t

val reg_queue_tx : int
val reg_queue_rx : int
val reg_irq_ack : int

val rx_dropped : t -> int
val tx_count : t -> int
val chains_processed : t -> int
val irqs_raised : t -> int
