(** Virtio network device model, attached to one end of a {!Wire}.

    Transmit descriptor (40 bytes):
    {v
      off 0   u32  len
      off 4   u32  status   written by the device: 0 sent, 1 dma fault / tx error
      off 8   u64  data paddr
      off 16  u64  next descriptor paddr (0 = end of chain)
      off 24  u64  completion timestamp (cycles), device-written
      off 32  u32  gso_size  virtio-net-hdr-style TSO record (0 = none)
    v}

    Receive descriptor (16 bytes):
    {v
      off 0   u32  capacity
      off 4   u32  used len  written by the device (0xffff until used)
      off 8   u64  data paddr
      off 12  u32  checksum verdict, device-written (1 = ok, 2 = bad)
    v}

    A TX notify names the head of a descriptor chain; the device walks
    the [next] links (bounded), pays one per-kick latency plus a smaller
    per-wire-frame latency, puts every frame on the wire, and raises ONE
    completion interrupt for the whole chain. A descriptor whose GSO
    record is non-zero (and whose profile models [tcp_gso]) is split into
    MSS-sized wire frames at ring time — the device, not the kernel, pays
    the per-frame work, which is the entire point of TSO. The driver posts receive
    buffers ahead of time; inbound packets that find no posted buffer
    are dropped and counted, like a NIC with an empty RX ring. All data
    movement goes through the {!Iommu}. One interrupt vector signals
    both TX completions and RX arrivals; with the [net_irq_coalesce]
    profile knob the line stays asserted until the driver acks it
    ([reg_irq_ack]), NAPI-style, so arrivals landing before the bottom
    half runs fold into one interrupt. *)

type t

val create :
  mmio_base:int -> dev_id:int -> vector:int -> endpoint:Wire.endpoint -> t

val reg_queue_tx : int
val reg_queue_rx : int
val reg_irq_ack : int

val desc_gso : int
(** Offset of the TX descriptor's GSO record. *)

val rx_desc_csum : int
(** Offset of the RX descriptor's checksum verdict. *)

val csum_verdict_ok : int
val csum_verdict_bad : int

val rx_dropped : t -> int
val tx_count : t -> int
val chains_processed : t -> int
val irqs_raised : t -> int
