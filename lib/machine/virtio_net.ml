let reg_queue_tx = 0x10
let reg_queue_rx = 0x18

type t = {
  dev_id : int;
  vector : int;
  endpoint : Wire.endpoint;
  rx_ring : int Queue.t; (* posted rx descriptor paddrs *)
  backlog : bytes Queue.t; (* packets that arrived before a buffer was posted *)
  mutable dropped : int;
  mutable sent : int;
  mutable irq_pending : bool;
  mutable irq_missed : bool;
}

let rx_dropped t = t.dropped

let tx_count t = t.sent

(* Fault plane for a lossy/hostile link: a frame may be dropped, have a
   byte flipped (caught by the packet checksum upstack), or be
   duplicated (TCP must treat the copy as a stale segment). Returns the
   list of frames that actually travel on. *)
let mangle pkt =
  if Sim.Fault.roll "net.drop" then begin
    Sim.Stats.incr "virtio_net.injected_drop";
    []
  end
  else begin
    let pkt =
      if Bytes.length pkt > 0 && Sim.Fault.roll "net.corrupt" then begin
        Sim.Stats.incr "virtio_net.injected_corrupt";
        let p = Bytes.copy pkt in
        let i = Bytes.length p / 2 in
        Bytes.set p i (Char.chr (Char.code (Bytes.get p i) lxor 0x55));
        p
      end
      else pkt
    in
    if Sim.Fault.roll "net.dup" then begin
      Sim.Stats.incr "virtio_net.injected_dup";
      [ pkt; Bytes.copy pkt ]
    end
    else [ pkt ]
  end

(* Interrupt mitigation with a missed-work flag: completions landing
   while an interrupt is still pending re-raise once it has been taken,
   so no completion is ever silently lost. *)
let rec irq t =
  if t.irq_pending then t.irq_missed <- true
  else begin
    t.irq_pending <- true;
    Irq_chip.raise_irq (Irq_chip.Device t.dev_id) ~vector:t.vector;
    ignore
      (Sim.Events.schedule_after 1 (fun () ->
           t.irq_pending <- false;
           if t.irq_missed then begin
             t.irq_missed <- false;
             irq t
           end))
  end

let transmit t desc_paddr =
  match Iommu.access ~dev:t.dev_id ~paddr:desc_paddr ~len:16 with
  | Error _ -> Sim.Stats.incr "virtio_net.dma_fault"
  | Ok () ->
    let len = Phys.read_u32 desc_paddr in
    let data_paddr = Int64.to_int (Phys.read_u64 (desc_paddr + 8)) in
    (match Iommu.access ~dev:t.dev_id ~paddr:data_paddr ~len with
    | Error _ ->
      Sim.Stats.incr "virtio_net.dma_fault";
      Phys.write_u32 (desc_paddr + 4) 1
    | Ok () ->
      let pkt = Bytes.create len in
      Phys.read ~paddr:data_paddr pkt ~off:0 ~len;
      t.sent <- t.sent + 1;
      (* The descriptor still completes with success: the guest cannot
         tell a frame lost on the wire from one that made it. *)
      List.iter (Wire.send t.endpoint) (mangle pkt);
      Phys.write_u32 (desc_paddr + 4) 0);
    irq t

let deliver_into t desc_paddr pkt =
  match Iommu.access ~dev:t.dev_id ~paddr:desc_paddr ~len:16 with
  | Error _ -> Sim.Stats.incr "virtio_net.dma_fault"
  | Ok () ->
    let cap = Phys.read_u32 desc_paddr in
    let data_paddr = Int64.to_int (Phys.read_u64 (desc_paddr + 8)) in
    let len = min cap (Bytes.length pkt) in
    (match Iommu.access ~dev:t.dev_id ~paddr:data_paddr ~len with
    | Error _ ->
      Sim.Stats.incr "virtio_net.dma_fault";
      Phys.write_u32 (desc_paddr + 4) 0
    | Ok () ->
      Phys.write ~paddr:data_paddr pkt ~off:0 ~len;
      Phys.write_u32 (desc_paddr + 4) len);
    irq t

let pump_rx t =
  while (not (Queue.is_empty t.backlog)) && not (Queue.is_empty t.rx_ring) do
    let pkt = Queue.pop t.backlog in
    let desc = Queue.pop t.rx_ring in
    deliver_into t desc pkt
  done

let on_wire_packet t pkt =
  List.iter
    (fun pkt ->
      if Queue.length t.backlog >= 1024 then begin
        t.dropped <- t.dropped + 1;
        Sim.Stats.incr "virtio_net.rx_dropped"
      end
      else begin
        Queue.push pkt t.backlog;
        pump_rx t
      end)
    (mangle pkt)

let create ~mmio_base ~dev_id ~vector ~endpoint =
  let t =
    {
      dev_id;
      vector;
      endpoint;
      rx_ring = Queue.create ();
      backlog = Queue.create ();
      dropped = 0;
      sent = 0;
      irq_pending = false;
      irq_missed = false;
    }
  in
  Wire.on_receive endpoint (on_wire_packet t);
  let read ~off ~len:_ =
    if off = 0x00 then 0x74726976L else if off = 0x04 then 1L else 0L
  in
  let write ~off ~len:_ v =
    if off = reg_queue_tx then transmit t (Int64.to_int v)
    else if off = reg_queue_rx then begin
      Queue.push (Int64.to_int v) t.rx_ring;
      pump_rx t
    end
  in
  Mmio.register
    { base = mmio_base; size = 0x100; name = "virtio-net"; sensitive = false; read; write };
  Bus.register { Bus.dev_id; kind = Bus.Net; mmio_base; mmio_size = 0x100; vector };
  t
