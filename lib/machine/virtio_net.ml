let reg_queue_tx = 0x10
let reg_queue_rx = 0x18
let reg_irq_ack = 0x20

(* Bytes of one TX descriptor, including the chain link at off 16, the
   device-written completion timestamp at off 24 and the virtio-net-hdr
   style GSO record at off 32 (gso_size; 0 = no offload). A TX notify
   may name the head of a chain: the device walks [next] pointers
   (bounded, loop-safe) and services the whole chain with one completion
   interrupt — the per-burst doorbell/IRQ economy the batched TX
   pipeline banks on. RX descriptors keep the 16-byte layout, with the
   checksum-offload verdict at off 12 (1 = ok, 2 = bad). *)
let desc_size = 40

let desc_gso = 32

let rx_desc_csum = 12

let csum_verdict_ok = 1

let csum_verdict_bad = 2

let max_chain = 128

type t = {
  dev_id : int;
  vector : int;
  endpoint : Wire.endpoint;
  rx_ring : int Queue.t; (* posted rx descriptor paddrs *)
  backlog : bytes Queue.t; (* packets that arrived before a buffer was posted *)
  mutable dropped : int;
  mutable sent : int;
  mutable chains : int;
  mutable irqs_raised : int;
  mutable irq_pending : bool;
  mutable irq_missed : bool;
}

let rx_dropped t = t.dropped

let tx_count t = t.sent

let chains_processed t = t.chains

let irqs_raised t = t.irqs_raised

(* Fault plane for a lossy/hostile link: a frame may be dropped, have a
   byte flipped (caught by the packet checksum upstack), or be
   duplicated (TCP must treat the copy as a stale segment). Returns the
   list of frames that actually travel on. *)
let mangle pkt =
  if Sim.Fault.roll "net.drop" then begin
    Sim.Stats.incr "virtio_net.injected_drop";
    []
  end
  else begin
    let pkt =
      if Bytes.length pkt > 0 && Sim.Fault.roll "net.corrupt" then begin
        Sim.Stats.incr "virtio_net.injected_corrupt";
        let p = Bytes.copy pkt in
        let i = Bytes.length p / 2 in
        Bytes.set p i (Char.chr (Char.code (Bytes.get p i) lxor 0x55));
        p
      end
      else pkt
    in
    if Sim.Fault.roll "net.dup" then begin
      Sim.Stats.incr "virtio_net.injected_dup";
      [ pkt; Bytes.copy pkt ]
    end
    else [ pkt ]
  end

(* With [net_irq_coalesce] the line is NAPI-style: it stays asserted
   until the driver acks it (reg_irq_ack), so everything completing
   before the bottom half re-enables interrupts folds into one
   interrupt, and a missed-work flag re-raises after the ack so no
   completion is ever silently lost.

   Without the knob the device is the naive NIC: every completion
   event is delivered as its own interrupt — the per-packet interrupt
   tax the coalescing ablation measures. *)
let raise_irq t =
  if (Sim.Profile.get ()).Sim.Profile.net_irq_coalesce then begin
    if t.irq_pending then t.irq_missed <- true
    else begin
      t.irq_pending <- true;
      t.irqs_raised <- t.irqs_raised + 1;
      Irq_chip.raise_irq (Irq_chip.Device t.dev_id) ~vector:t.vector
    end
  end
  else begin
    t.irqs_raised <- t.irqs_raised + 1;
    Irq_chip.raise_irq (Irq_chip.Device t.dev_id) ~vector:t.vector
  end

(* RX arrivals folding into an already-asserted line are the NAPI win;
   count them so /proc/kstat shows the moderation working. *)
let raise_rx_irq t =
  if t.irq_pending then Sim.Stats.incr "net.coalesced_rx";
  raise_irq t

let irq_ack t =
  if t.irq_pending then begin
    t.irq_pending <- false;
    if t.irq_missed then begin
      t.irq_missed <- false;
      raise_irq t
    end
  end

(* Service one TX descriptor: DMA the descriptor, read the frame, split
   it into wire frames if the GSO record asks for segmentation, put them
   on the wire, write status. Runs as a device event, not kernel code.
   Returns [(completed, wire_frames)]: [completed] when the status word
   was written (the completion deserves an interrupt) — the caller
   raises one interrupt per chain, not per descriptor — and
   [wire_frames] is how many frames the descriptor became on the wire,
   each of which costs the device per-frame processing. *)
let execute_tx_one t desc_paddr =
  match Iommu.access ~dev:t.dev_id ~paddr:desc_paddr ~len:desc_size with
  | Error _ ->
    Sim.Stats.incr "virtio_net.dma_fault";
    (false, 1)
  | Ok () ->
    let len = Phys.read_u32 desc_paddr in
    let data_paddr = Int64.to_int (Phys.read_u64 (desc_paddr + 8)) in
    (* The GSO record is only honoured when the profile models the
       offload; the software-segmentation baseline leaves it zero and
       the device treats every descriptor as one wire frame. *)
    let gso =
      if (Sim.Profile.get ()).Sim.Profile.tcp_gso then Phys.read_u32 (desc_paddr + desc_gso)
      else 0
    in
    (* Fault plane: a hostile/flaky NIC. An injected tx_drop never writes
       the status word — the driver's burst deadline must notice and
       quarantine the buffer. An injected tx_fail completes with status 1
       mid-chain; its neighbours complete. Both act on the whole
       descriptor: a super-segment fails as a unit and the retry ladder
       resubmits every wire frame it would have produced. *)
    if Sim.Fault.roll "net.tx_drop" then begin
      Sim.Stats.incr "virtio_net.dropped_completion";
      (false, 1)
    end
    else begin
      (* Completion stamp at off 24, written unconditionally alongside
         every status write so enabling kspan changes nothing the
         device does: the driver splits service time from IRQ-delivery
         delay with it. *)
      let stamp () = Phys.write_u64 (desc_paddr + 24) (Sim.Clock.now ()) in
      if Sim.Fault.roll "net.tx_fail" then begin
        Sim.Stats.incr "virtio_net.injected_tx_fail";
        stamp ();
        Phys.write_u32 (desc_paddr + 4) 1;
        (true, 1)
      end
      else begin
        match Iommu.access ~dev:t.dev_id ~paddr:data_paddr ~len with
        | Error _ ->
          Sim.Stats.incr "virtio_net.dma_fault";
          stamp ();
          Phys.write_u32 (desc_paddr + 4) 1;
          (true, 1)
        | Ok () ->
          let pkt = Bytes.create len in
          Phys.read ~paddr:data_paddr pkt ~off:0 ~len;
          let frames = if gso > 0 then Pktfmt.tso_split ~gso_size:gso pkt else [ pkt ] in
          let nframes = List.length frames in
          if nframes > 1 then Sim.Stats.add "virtio_net.tso_frames" (nframes - 1);
          (* Each wire frame is mangled independently: a noisy link
             corrupts MSS-sized frames, not the super-segment the guest
             handed over. The descriptor still completes with success:
             the guest cannot tell a frame lost on the wire from one
             that made it. *)
          List.iter
            (fun f ->
              t.sent <- t.sent + 1;
              List.iter (Wire.send t.endpoint) (mangle f))
            frames;
          stamp ();
          Phys.write_u32 (desc_paddr + 4) 0;
          (true, nframes)
      end
    end

(* Walk the [next] pointers from a chain head. Bounded at [max_chain]
   and tolerant of garbage pointers (a hostile kernel can link the chain
   anywhere; the walk just ends). Security-relevant accesses — the
   descriptor body and the frame data — still go through the IOMMU in
   [execute_tx_one]. *)
let chain_of head =
  let rec go acc paddr n =
    if paddr = 0 || n >= max_chain then List.rev acc
    else begin
      let next =
        if Phys.valid ~paddr ~len:desc_size then Int64.to_int (Phys.read_u64 (paddr + 16))
        else 0
      in
      go (paddr :: acc) next (n + 1)
    end
  in
  go [] head 0

(* Latency model: the first descriptor of a chain pays the per-kick
   queue-processing latency; each further *wire frame* adds only the
   smaller per-frame cost — a TSO super-segment costs the device per
   MSS frame it emits, so the offload amortises kernel work, never
   device work. Wire serialization (the per-byte part) is modelled by
   {!Wire} — batching amortises overheads, not the link. *)
let chain_latency n =
  let c = Sim.Cost.c () in
  if n <= 0 then 0
  else
    Sim.Clock.us c.Sim.Profile.net_us_per_kick
    + ((n - 1) * Sim.Clock.us c.Sim.Profile.net_us_per_desc)

(* A notify consumes the whole chain synchronously: frames enter the
   wire at ring-update time, so serialization (modelled by {!Wire})
   overlaps guest CPU instead of queueing behind it. What the chain
   latency buys is the *completion* side: one interrupt for the whole
   chain, delivered after the per-kick cost plus the (much smaller)
   per-wire-frame increments. *)
let notify_tx t desc_paddr =
  let descs = chain_of desc_paddr in
  if List.length descs > 1 then t.chains <- t.chains + 1;
  let any, total_frames =
    List.fold_left
      (fun (any, total) d ->
        let completed, frames = execute_tx_one t d in
        ((if completed then true else any), total + frames))
      (false, 0) descs
  in
  if any then
    ignore (Sim.Events.schedule_after (chain_latency total_frames) (fun () -> raise_irq t))

(* Returns [true] when the used length was written (the arrival deserves
   an interrupt). *)
let deliver_into t desc_paddr pkt =
  match Iommu.access ~dev:t.dev_id ~paddr:desc_paddr ~len:16 with
  | Error _ ->
    Sim.Stats.incr "virtio_net.dma_fault";
    false
  | Ok () ->
    let cap = Phys.read_u32 desc_paddr in
    let data_paddr = Int64.to_int (Phys.read_u64 (desc_paddr + 8)) in
    let len = min cap (Bytes.length pkt) in
    (match Iommu.access ~dev:t.dev_id ~paddr:data_paddr ~len with
    | Error _ ->
      Sim.Stats.incr "virtio_net.dma_fault";
      Phys.write_u32 (desc_paddr + 4) 0
    | Ok () ->
      Phys.write ~paddr:data_paddr pkt ~off:0 ~len;
      (* Checksum offload: the device verifies every delivered frame and
         writes its verdict before the status word, so a driver that
         trusts the mark never pays the software pass. Written
         unconditionally (device behaviour does not depend on what the
         guest kernel will read); the knob gates only the driver side. *)
      Phys.write_u32 (desc_paddr + rx_desc_csum)
        (if Pktfmt.cksum_ok pkt then csum_verdict_ok else csum_verdict_bad);
      Phys.write_u32 (desc_paddr + 4) len);
    true

let pump_rx t =
  while (not (Queue.is_empty t.backlog)) && not (Queue.is_empty t.rx_ring) do
    let pkt = Queue.pop t.backlog in
    let desc = Queue.pop t.rx_ring in
    if deliver_into t desc pkt then raise_rx_irq t
  done

let on_wire_packet t pkt =
  List.iter
    (fun pkt ->
      if Queue.length t.backlog >= 1024 then begin
        t.dropped <- t.dropped + 1;
        Sim.Stats.incr "virtio_net.rx_dropped"
      end
      else begin
        Queue.push pkt t.backlog;
        pump_rx t
      end)
    (mangle pkt)

let create ~mmio_base ~dev_id ~vector ~endpoint =
  let t =
    {
      dev_id;
      vector;
      endpoint;
      rx_ring = Queue.create ();
      backlog = Queue.create ();
      dropped = 0;
      sent = 0;
      chains = 0;
      irqs_raised = 0;
      irq_pending = false;
      irq_missed = false;
    }
  in
  Wire.on_receive endpoint (on_wire_packet t);
  let read ~off ~len:_ =
    if off = 0x00 then 0x74726976L else if off = 0x04 then 1L else 0L
  in
  let write ~off ~len:_ v =
    if off = reg_queue_tx then notify_tx t (Int64.to_int v)
    else if off = reg_queue_rx then begin
      Queue.push (Int64.to_int v) t.rx_ring;
      pump_rx t
    end
    else if off = reg_irq_ack then irq_ack t
  in
  Mmio.register
    { base = mmio_base; size = 0x100; name = "virtio-net"; sensitive = false; read; write };
  Bus.register { Bus.dev_id; kind = Bus.Net; mmio_base; mmio_size = 0x100; vector };
  t
