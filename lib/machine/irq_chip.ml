type source = Core | Device of int

let dispatcher : (int -> unit) ref = ref (fun _ -> ())

let remapping = ref false

let grants : (int * int, unit) Hashtbl.t = Hashtbl.create 16

let spoofs = ref 0

let reset () =
  dispatcher := (fun _ -> ());
  remapping := false;
  Hashtbl.reset grants;
  spoofs := 0

let set_dispatcher f = dispatcher := f

let enable_remapping () = remapping := true

let remapping_enabled () = !remapping

let remap_allow ~dev ~vector = Hashtbl.replace grants (dev, vector) ()

let remap_revoke ~dev ~vector = Hashtbl.remove grants (dev, vector)

let permitted source vector =
  match source with
  | Core -> true
  | Device dev -> (not !remapping) || Hashtbl.mem grants (dev, vector)

(* An unclaimed vector well above the device range; delivering it models
   a spurious LAPIC/chipset interrupt. *)
let spurious_vector = 0xDD

let raise_irq source ~vector =
  if permitted source vector then begin
    ignore (Sim.Events.schedule_after 0 (fun () -> !dispatcher vector));
    (* Fault plane (device-originated interrupts only, so the timer tick
       stays clean): a misbehaving device can fire a burst of duplicate
       interrupts — an IRQ storm the kernel must throttle — or trigger a
       spurious vector nobody claimed. *)
    match source with
    | Core -> ()
    | Device _ ->
      let storm = Sim.Fault.burst "irq.storm" ~max:256 in
      if storm > 0 then begin
        Sim.Stats.add "irq.injected_storm" storm;
        for _ = 1 to storm do
          ignore (Sim.Events.schedule_after 0 (fun () -> !dispatcher vector))
        done
      end;
      if Sim.Fault.roll "irq.spurious" then begin
        Sim.Stats.incr "irq.injected_spurious";
        ignore (Sim.Events.schedule_after 0 (fun () -> !dispatcher spurious_vector))
      end
  end
  else begin
    incr spoofs;
    Sim.Stats.incr "irq.spoof_blocked"
  end

let blocked_spoofs () = !spoofs
