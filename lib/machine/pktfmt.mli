(** On-wire packet byte layout, shared by {!Aster.Packet} (the kernel's
    view) and {!Virtio_net} (the device model's view). The device model
    needs it to implement TSO splitting and RX checksum verification on
    raw frames without reaching into kernel objects. *)

val header_size : int

val cksum_off : int

val mss : int
(** Wire maximum segment payload, bytes. *)

val fin : int
val psh : int
(** The flag bits (offset 9) a TSO splitter strips from non-final
    sub-frames. *)

val cksum : bytes -> int
(** FNV-1a over the datagram with the checksum field skipped. *)

val cksum_ok : bytes -> bool
(** Device-side verification: [true] iff the frame is well-formed and
    its stored checksum matches — the verdict a checksum-offloading NIC
    hands the driver. *)

val tso_split : gso_size:int -> bytes -> bytes list
(** Split one encoded super-segment into wire frames of at most
    [gso_size] payload bytes each: sequence numbers advance per chunk,
    lengths and checksums are rewritten, FIN/PSH ride only on the final
    sub-frame. A frame already within [gso_size] passes through
    unchanged (single-element list). *)
