(** Interrupt controller with optional interrupt remapping.

    Devices raise vectors tagged with their source id. With remapping
    enabled (which OSTD does at boot — Inv. 3), a device may only deliver
    vectors it has been granted; anything else is a spoof attempt and is
    blocked and counted, modelling the attack of Zhou et al. that the
    paper cites. Core-originated interrupts (timer, IPI) bypass the
    remapping table, as on real hardware. *)

type source = Core | Device of int

val reset : unit -> unit

val set_dispatcher : (int -> unit) -> unit
(** Install the kernel's low-level interrupt entry point; it receives the
    vector number. OSTD installs this once at boot. *)

val enable_remapping : unit -> unit
val remapping_enabled : unit -> bool

val remap_allow : dev:int -> vector:int -> unit
(** Grant a device the right to signal a vector. *)

val remap_revoke : dev:int -> vector:int -> unit

val raise_irq : source -> vector:int -> unit
(** Deliver an interrupt: schedules the kernel dispatcher as an immediate
    event (interrupts are asynchronous with respect to the running task).
    Spoofed device vectors are dropped when remapping is on. *)

val blocked_spoofs : unit -> int
(** Number of device interrupts dropped by the remapping table. *)

val spurious_vector : int
(** The unclaimed vector the fault plane delivers for ["irq.spurious"]
    injections. *)
