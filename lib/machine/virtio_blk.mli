(** Virtio block device model (single queue, like the paper's VM config).

    The driver communicates through a 40-byte request descriptor placed in
    DMA-visible physical memory:

    {v
      off  0  u32  type      0 = read, 1 = write, 2 = flush, 3 = FUA write
      off  4  u32  len       bytes (multiple of 512)
      off  8  u64  sector
      off 16  u64  data paddr
      off 24  u32  status    written by the device: 0 ok, 1 io error
      off 32  u64  next      paddr of the next chained descriptor, 0 = end
    v}

    Writing a descriptor's physical address to the QUEUE_NOTIFY register
    enqueues that descriptor — or, when its [next] field links further
    descriptors, the whole chain: the device walks the chain (bounded,
    loop-safe) and services every request with a single completion
    interrupt, which is where batched submission earns its doorbell/IRQ
    economy. The device DMAs through the {!Iommu}; a translation fault
    aborts the request (and, if the status word itself is unreachable,
    drops it silently — exactly the hostile-device behaviour Inv. 6
    defends the rest of memory against). Completion raises the device's
    interrupt vector. *)

type t

type disk
(** The persistent disk image: the only device state that survives a
    power cut. Distinct from the volatile write cache and ring state —
    ordinary writes land in the cache and become durable only via a
    flush (type 2) or FUA write (type 3). Carry a [disk] across a board
    reset into a fresh {!create} to model remount-after-crash. *)

val create_disk : capacity_sectors:int -> disk

val clone_disk : disk -> disk
(** Deep copy, for running the same recovery twice deterministically. *)

val create :
  ?disk:disk -> capacity_sectors:int -> mmio_base:int -> dev_id:int -> vector:int -> unit -> t
(** Registers the MMIO window, backing store, and {!Bus} entry. When
    [disk] is given the device is created around that (possibly
    crash-survived) image; otherwise a fresh zeroed image is made. *)

val disk_image : t -> disk

val persist_count : t -> int
(** Sectors made durable so far — each increment is one enumerable
    crash boundary for the ["blk.power_cut"] trigger. *)

val is_dead : t -> bool
(** The power cut fired: the device no longer answers. *)

val flushes : t -> int
val fua_writes : t -> int

val sector_size : int

(* Register offsets within the MMIO window. *)
val reg_magic : int
val reg_device_id : int
val reg_capacity : int
val reg_queue_notify : int

val capacity_sectors : t -> int

val write_backing : t -> sector:int -> bytes -> unit
(** Host-side backdoor used by tests and mkfs to seed disk contents.
    Writes go straight to the persistent image (no crash boundaries). *)

val read_backing : t -> sector:int -> len:int -> bytes

val requests_completed : t -> int
val requests_failed : t -> int

val chains_processed : t -> int
(** Number of multi-descriptor chains serviced (length > 1). *)

val irqs_raised : t -> int
(** Completion interrupts actually raised (after coalescing). *)
