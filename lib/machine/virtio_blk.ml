let sector_size = 512

let reg_magic = 0x00
let reg_device_id = 0x04
let reg_capacity = 0x08
let reg_queue_notify = 0x10

(* Bytes of one request descriptor, including the chain link at off 32
   and the device-written completion timestamp at off 40. A notify may
   name the head of a chain: the device walks [next] pointers (bounded,
   loop-safe) and services the whole chain with one completion
   interrupt — the per-batch doorbell/IRQ economy the batched block
   pipeline banks on. *)
let desc_size = 48

let max_chain = 128

(* The persistent disk image, distinct from everything volatile on the
   device (write cache, ring state). It is the only thing that survives
   a power cut, and can be carried across [Board.reset] into a fresh
   boot to model remount-after-crash. [persists] counts sectors made
   durable — every increment is an enumerable crash boundary. *)
type disk = {
  dcap : int;
  sectors : (int, Bytes.t) Hashtbl.t; (* sector -> 512 bytes, sparse *)
  mutable persists : int;
}

let create_disk ~capacity_sectors =
  { dcap = capacity_sectors; sectors = Hashtbl.create 4096; persists = 0 }

let clone_disk d =
  let sectors = Hashtbl.create (Hashtbl.length d.sectors) in
  Hashtbl.iter (fun s b -> Hashtbl.add sectors s (Bytes.copy b)) d.sectors;
  { dcap = d.dcap; sectors; persists = d.persists }

type t = {
  dev_id : int;
  vector : int;
  capacity : int;
  disk : disk;
  cache : (int, Bytes.t) Hashtbl.t; (* volatile write cache: sector -> bytes *)
  queue : int Queue.t; (* pending descriptor (chain head) paddrs *)
  mutable busy : bool;
  mutable dead : bool; (* power has been cut; device is gone *)
  mutable completed : int;
  mutable failed : int;
  mutable chains : int;
  mutable flushes : int;
  mutable fua_writes : int;
  mutable irqs_raised : int;
  mutable irq_pending : bool;
  mutable irq_missed : bool;
}

let capacity_sectors t = t.capacity

let disk_image t = t.disk

let persist_count t = t.disk.persists

let is_dead t = t.dead

let flushes t = t.flushes

let fua_writes t = t.fua_writes

let disk_sector d s =
  match Hashtbl.find_opt d.sectors s with
  | Some b -> b
  | None ->
    let b = Bytes.make sector_size '\000' in
    Hashtbl.add d.sectors s b;
    b

(* What a read observes: the write cache shadows the disk image —
   the device's RAM is coherent even before a flush makes it durable. *)
let sector_bytes t s =
  match Hashtbl.find_opt t.cache s with Some b -> b | None -> disk_sector t.disk s

(* Power cut: everything volatile is gone. The in-flight ring is
   dropped (no status writes, no interrupts — outstanding bios hit the
   kernel's deadline and surface as EIO), the write cache evaporates,
   and the device stops responding until the next boot re-creates it
   around the same disk image. *)
let power_cut t =
  t.dead <- true;
  Hashtbl.reset t.cache;
  Queue.clear t.queue;
  Sim.Stats.incr "virtio_blk.power_cut";
  Logs.debug (fun m ->
      m "virtio-blk: power cut after %d persisted sectors" t.disk.persists)

(* Persist one cached sector to the disk image. Each call is a crash
   boundary: the [blk.power_cut] trigger fires *before* the copy, so
   crash point k means exactly k sectors hit stable storage. Returns
   [false] when the power cut fired. *)
let persist_sector t s =
  if Sim.Fault.countdown "blk.power_cut" then begin
    power_cut t;
    false
  end
  else begin
    (match Hashtbl.find_opt t.cache s with
    | Some b ->
      Bytes.blit b 0 (disk_sector t.disk s) 0 sector_size;
      Hashtbl.remove t.cache s
    | None -> ());
    t.disk.persists <- t.disk.persists + 1;
    true
  end

(* Drain the write cache to the disk image, lowest sector first. The
   deterministic order is deliberate: it enumerates crash points
   stably for a given workload, and sorting (rather than insertion
   order) models the reordering freedom a real drive has between
   barriers. *)
let flush_cache t =
  let dirty = Hashtbl.fold (fun s _ acc -> s :: acc) t.cache [] in
  let dirty = List.sort compare dirty in
  t.flushes <- t.flushes + 1;
  List.for_all (fun s -> persist_sector t s) dirty

(* Out-of-band host access used by tests and mkfs-style tooling:
   writes go straight to the disk image (no crash boundaries counted),
   reads observe cache-then-disk like the device itself would. *)
let write_backing t ~sector data =
  let len = Bytes.length data in
  assert (len mod sector_size = 0);
  for i = 0 to (len / sector_size) - 1 do
    Hashtbl.remove t.cache (sector + i);
    Bytes.blit data (i * sector_size) (disk_sector t.disk (sector + i)) 0 sector_size
  done

let read_backing t ~sector ~len =
  assert (len mod sector_size = 0);
  let out = Bytes.create len in
  for i = 0 to (len / sector_size) - 1 do
    Bytes.blit (sector_bytes t (sector + i)) 0 out (i * sector_size) sector_size
  done;
  out

let requests_completed t = t.completed

let requests_failed t = t.failed

let chains_processed t = t.chains

let irqs_raised t = t.irqs_raised

let dma_fault t what e =
  t.failed <- t.failed + 1;
  Sim.Stats.incr "virtio_blk.dma_fault";
  Logs.debug (fun m -> m "virtio-blk: DMA fault on %s: %s" what e)

(* Interrupt mitigation with a missed-work flag: completions landing
   while an interrupt is still pending re-raise once it has been taken,
   so no completion is ever silently lost. *)
let rec raise_coalesced t =
  if t.irq_pending then t.irq_missed <- true
  else begin
    t.irq_pending <- true;
    t.irqs_raised <- t.irqs_raised + 1;
    Irq_chip.raise_irq (Irq_chip.Device t.dev_id) ~vector:t.vector;
    ignore
      (Sim.Events.schedule_after 1 (fun () ->
           t.irq_pending <- false;
           if t.irq_missed then begin
             t.irq_missed <- false;
             raise_coalesced t
           end))
  end

(* Service one descriptor: DMA the descriptor, move the data, write
   status. Runs as a device event, not kernel code. Returns [true] when
   the status word was written (the request deserves an interrupt) —
   the caller raises one interrupt per chain, not per descriptor.

   Request types: 0 read, 1 write (into the volatile cache), 2 flush
   (drain cache to the disk image), 3 FUA write (write-through: the
   sectors are durable before the completion fires). *)
let execute_one t desc_paddr =
  if t.dead then false
  else begin
    let hdr = Bytes.create 24 in
    match Iommu.access ~dev:t.dev_id ~paddr:desc_paddr ~len:desc_size with
    | Error e ->
      dma_fault t "descriptor" e;
      false
    | Ok () ->
      Phys.read ~paddr:desc_paddr hdr ~off:0 ~len:24;
      let typ = Int32.to_int (Bytes.get_int32_le hdr 0) in
      let len = Int32.to_int (Bytes.get_int32_le hdr 4) in
      let sector = Int64.to_int (Bytes.get_int64_le hdr 8) in
      let data_paddr = Int64.to_int (Bytes.get_int64_le hdr 16) in
      let finish status =
        (* Fault plane: a hostile/flaky disk. An injected error completes
           with status 1; an injected drop never writes the status word —
           the kernel's per-bio deadline must notice. Mid-chain, a drop or
           error hits only this descriptor; its neighbours complete. *)
        if t.dead then false
        else if Sim.Fault.roll "blk.drop" then begin
          t.failed <- t.failed + 1;
          Sim.Stats.incr "virtio_blk.dropped_completion";
          false
        end
        else begin
          let status = if status = 0 && Sim.Fault.roll "blk.io_error" then 1 else status in
          (* Completion stamp, written unconditionally alongside the
             status word so enabling kspan changes nothing the device
             does: the driver splits service time from IRQ-delivery
             delay with it. *)
          Phys.write_u64 (desc_paddr + 40) (Sim.Clock.now ());
          Phys.write_u32 (desc_paddr + 24) status;
          if status = 0 then t.completed <- t.completed + 1 else t.failed <- t.failed + 1;
          true
        end
      in
      let nsect = len / sector_size in
      let in_range = sector >= 0 && nsect >= 0 && sector + nsect <= t.capacity in
      if (not in_range) || len mod sector_size <> 0 then finish 1
      else begin
        match typ with
        | 2 (* flush: the only ordinary path to durability *) ->
          if flush_cache t then finish 0 else false
        | 0 (* read: device writes into memory *) -> (
          match Iommu.access ~dev:t.dev_id ~paddr:data_paddr ~len with
          | Error e ->
            dma_fault t "data (read)" e;
            finish 1
          | Ok () ->
            for i = 0 to nsect - 1 do
              Phys.write
                ~paddr:(data_paddr + (i * sector_size))
                (sector_bytes t (sector + i))
                ~off:0 ~len:sector_size
            done;
            finish 0)
        | 1 | 3 (* write: device reads from memory; 3 = FUA *) -> (
          match Iommu.access ~dev:t.dev_id ~paddr:data_paddr ~len with
          | Error e ->
            dma_fault t "data (write)" e;
            finish 1
          | Ok () ->
            let ok = ref true in
            for i = 0 to nsect - 1 do
              if !ok then begin
                let s = sector + i in
                let buf =
                  match Hashtbl.find_opt t.cache s with
                  | Some b -> b
                  | None ->
                    let b = Bytes.create sector_size in
                    Hashtbl.add t.cache s b;
                    b
                in
                Phys.read ~paddr:(data_paddr + (i * sector_size)) buf ~off:0 ~len:sector_size;
                if typ = 3 then ok := persist_sector t s
              end
            done;
            if typ = 3 then t.fua_writes <- t.fua_writes + 1;
            if !ok then finish 0 else false)
        | _ -> finish 1
      end
  end

(* Walk the [next] pointers from a chain head. Bounded at [max_chain]
   and tolerant of garbage pointers (a hostile kernel can link the chain
   anywhere; the walk just ends). Security-relevant accesses — the
   descriptor body and the data buffer — still go through the IOMMU in
   [execute_one]. *)
let chain_of head =
  let rec go acc paddr n =
    if paddr = 0 || n >= max_chain then List.rev acc
    else begin
      let next =
        if Phys.valid ~paddr ~len:desc_size then Int64.to_int (Phys.read_u64 (paddr + 32))
        else 0
      in
      go (paddr :: acc) next (n + 1)
    end
  in
  go [] head 0

(* Latency model: the first request of a chain pays the full per-op
   device latency; each chained descriptor adds only the smaller
   per-descriptor cost. The per-byte (bandwidth) part is paid in full
   either way — batching amortises overheads, not the media. *)
let chain_latency descs =
  let c = Sim.Cost.c () in
  let byte_cycles len = int_of_float (float_of_int len /. max 0.001 c.Sim.Profile.blk_dev_bpc) in
  List.fold_left
    (fun (i, acc) paddr ->
      let len = try Phys.read_u32 (paddr + 4) with Invalid_argument _ -> 0 in
      let base =
        if i = 0 then Sim.Clock.us c.Sim.Profile.blk_us_per_op
        else Sim.Clock.us c.Sim.Profile.blk_us_per_desc
      in
      (i + 1, acc + base + byte_cycles len))
    (0, 0) descs
  |> snd

let rec pump t =
  if t.dead then begin
    Queue.clear t.queue;
    t.busy <- false
  end
  else
    match Queue.take_opt t.queue with
    | None -> t.busy <- false
    | Some head ->
      t.busy <- true;
      let descs = chain_of head in
      if List.length descs > 1 then t.chains <- t.chains + 1;
      (* Injected service-time jitter: up to ~2 ms of extra latency, enough
         to trip a first-attempt bio deadline but not a retried one.
         Charged once per chain, like the real head-of-line blocking it
         models. *)
      let jitter = Sim.Fault.delay_cycles "blk.delay" ~max_cycles:(Sim.Clock.us 2000.) in
      ignore
        (Sim.Events.schedule_after
           (chain_latency descs + jitter)
           (fun () ->
             let any =
               List.fold_left (fun acc d -> if execute_one t d then true else acc) false descs
             in
             (* One completion interrupt for the whole chain. *)
             if any then raise_coalesced t;
             pump t))

let notify t desc_paddr =
  if not t.dead then begin
    Queue.push desc_paddr t.queue;
    if not t.busy then pump t
  end

let create ?disk ~capacity_sectors ~mmio_base ~dev_id ~vector () =
  let disk =
    match disk with
    | Some d ->
      assert (d.dcap = capacity_sectors);
      d
    | None -> create_disk ~capacity_sectors
  in
  let t =
    {
      dev_id;
      vector;
      capacity = capacity_sectors;
      disk;
      cache = Hashtbl.create 256;
      queue = Queue.create ();
      busy = false;
      dead = false;
      completed = 0;
      failed = 0;
      chains = 0;
      flushes = 0;
      fua_writes = 0;
      irqs_raised = 0;
      irq_pending = false;
      irq_missed = false;
    }
  in
  let read ~off ~len:_ =
    if off = reg_magic then 0x74726976L
    else if off = reg_device_id then 2L
    else if off = reg_capacity then Int64.of_int t.capacity
    else 0L
  in
  let write ~off ~len:_ v = if off = reg_queue_notify then notify t (Int64.to_int v) in
  Mmio.register
    { base = mmio_base; size = 0x100; name = "virtio-blk"; sensitive = false; read; write };
  Bus.register
    { Bus.dev_id; kind = Bus.Blk; mmio_base; mmio_size = 0x100; vector };
  t
