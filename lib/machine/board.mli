(** Whole-machine assembly and reset.

    [reset] wipes every hardware model and registers the core-device
    windows (local APIC, IOMMU registers) that firmware labels sensitive;
    those windows exist so that Inv. 7's refusal to hand them out can be
    exercised. Peripherals are attached afterwards by the boot code. *)

val lapic_base : int
(** MMIO base of the (sensitive) local APIC window. *)

val iommu_reg_base : int
(** MMIO base of the (sensitive) IOMMU register window. *)

val pci_hole_base : int
(** Start of the address range where peripheral windows are placed. *)

val reset : ?frames:int -> unit -> unit
(** Reset clock, events, stats, memory (default 16384 frames = 64 MiB),
    MMIO/PIO spaces, interrupt controller, IOMMU, and the device bus. *)

type devices = {
  blk : Virtio_blk.t;
  net : Virtio_net.t;
  host_endpoint : Wire.endpoint;
}

val attach_default_devices : ?disk:Virtio_blk.disk -> ?disk_mb:int -> unit -> devices
(** Attach a virtio-blk disk (default 64 MiB) and a virtio-net NIC wired
    to a host endpoint, mirroring the paper's VM configuration. Passing
    [disk] boots against an existing (e.g. crash-survived) disk image. *)
