(** Kernel panic vs. contained service failure.

    The framekernel split, applied to failure handling. {!Kernel_panic}
    is for OSTD safety-invariant violations (Inv. 1-10): the kernel must
    abort rather than run on with memory safety in doubt, and nothing may
    catch it. {!Service_failure} is for everything above the TCB line —
    an I/O request that exhausted its retries, a driver that lost a
    device — where the architecture promises *containment*: the failure
    is translated to an errno at the nearest syscall boundary, or kills
    only the offending task, and the kernel keeps running. *)

exception Kernel_panic of string

exception Service_failure of { msg : string; errno : int }

val panic : string -> 'a
val panicf : ('a, Format.formatter, unit, 'b) format4 -> 'a

val check : bool -> string -> unit
(** [check cond msg] panics with [msg] when [cond] is false. *)

val fail : ?errno:int -> string -> 'a
(** Raise a contained {!Service_failure}. [errno] defaults to 5 (EIO);
    the numeric value is used because errno names live above OSTD. *)

val failf : ?errno:int -> ('a, Format.formatter, unit, 'b) format4 -> 'a

val contain : (unit -> 'a) -> ('a, int) result
(** Run [f], translating {!Service_failure} to [Error errno]. A
    {!Kernel_panic} still propagates — containment never masks an
    invariant violation. *)
