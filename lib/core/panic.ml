exception Kernel_panic of string

exception Service_failure of { msg : string; errno : int }

let panic msg =
  Sim.Stats.incr "kernel.panic";
  raise (Kernel_panic msg)

let panicf fmt = Format.kasprintf panic fmt

let check cond msg = if not cond then panic msg

let fail ?(errno = 5) msg =
  Sim.Stats.incr "service.failure";
  raise (Service_failure { msg; errno })

let failf ?errno fmt = Format.kasprintf (fail ?errno) fmt

let contain f =
  try Ok (f ())
  with Service_failure { msg; errno } ->
    Sim.Stats.incr "service.contained";
    Logs.debug (fun m -> m "contained service failure (errno %d): %s" errno msg);
    Error errno
