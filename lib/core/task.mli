(** Kernel tasks and the scheduler-injection API (paper §4.4.1, Table 4).

    Tasks are cooperative coroutines implemented with OCaml 5 effect
    handlers; one runs at a time (the paper evaluates SMP = 1). OSTD owns
    the mechanism — spawn, suspend, resume, the Inv. 8 [is_running] check
    at every context switch — while the policy (which task next) is a
    client-injected {!SCHEDULER}. When no task is runnable, the dispatch
    loop advances the virtual clock to the next device or timer event. *)

type t

type custom = ..
(** Scheduler-attached per-task data (the paper's [Box<dyn Any>]). *)

val tid : t -> int
val name : t -> string
val is_running : t -> bool
val is_dead : t -> bool
val custom : t -> custom option
val set_custom : t -> custom -> unit

val nice : t -> int
val set_nice : t -> int -> unit
(** Scheduling weight hint carried by OSTD so schedulers need no side
    tables for the common attribute. *)

module type SCHEDULER = sig
  val enqueue : t -> unit
  (** Hand a runnable task to the policy (spawn or wake-up). *)

  val pick_next : unit -> t option
  (** Choose and remove the next task to run. *)

  val update_curr : unit -> unit
  (** Scheduling event notification (tick, yield, sleep). *)

  val dequeue_curr : unit -> unit
  (** The current task became unrunnable. *)
end

val inject_scheduler : (module SCHEDULER) -> unit
(** Register once, before any task exists; re-injection panics. *)

val inject_fifo_scheduler : unit -> unit
(** Convenience bootstrap policy for OSTD's own tests and examples. *)

val reset : unit -> unit
(** Forget scheduler and tasks (new boot). *)

val spawn : ?name:string -> (unit -> unit) -> t
(** Create a task (allocating its kernel stack with a guard page —
    Inv. 4) and enqueue it. *)

val current : unit -> t
(** Panics outside task context. *)

val current_opt : unit -> t option

val yield_now : unit -> unit
(** Re-enqueue the current task and switch away. *)

val block : unit -> unit
(** Suspend without re-enqueueing; the caller must have arranged a
    wake-up (wait queue, timer). Panics in atomic mode. *)

val wake : t -> unit
(** Make a task runnable; idempotent for already-runnable tasks. *)

val exit : unit -> 'a
(** Terminate the current task. *)

val kill : t -> unit
(** Mark another task dead; it will not run again. *)

val sleep_cycles : int -> unit
val sleep_us : float -> unit

val on_idle : (unit -> unit) -> unit
(** Hook run each time the dispatcher finds no runnable task, before
    consulting the event queue (Asterinas drains softirqs here). *)

val run : unit -> unit
(** Dispatch until no task is runnable and no event is pending. *)

val run_until : (unit -> bool) -> unit
(** Dispatch until the predicate holds (checked between switches). *)

val live_tasks : unit -> int

(** {2 CPU accounting} (kprof; observability only — never charges)

    Cycles are split into utime/stime by a per-task mode flag that the
    user-return loop flips at the user/kernel boundary. All readings are
    virtual cycles. *)

val cpu_times : t -> int64 * int64
(** [(utime, stime)], including the live span of a running task. *)

val ctx_switches : t -> int * int
(** [(nvcsw, nivcsw)]: voluntary (blocked) vs involuntary (yielded). *)

val sched_delay : t -> int * int64 * int64
(** [(dispatches, total_wait_cycles, max_wait_cycles)] — runqueue wait
    from wake-up/enqueue to dispatch; also fed to the ["sched.delay"]
    histogram in microseconds. *)

val aggregate_cpu_times : unit -> int64 * int64
(** Whole-system [(utime, stime)] including dead tasks. *)

val context_switches : unit -> int
(** Dispatches since boot (the /proc/stat [ctxt] line). *)

val account_user_entry : unit -> unit
(** Called by the user-return loop when control is about to enter user
    mode: flushes the elapsed span into stime, then accrues utime. *)

val account_kernel_entry : unit -> unit
(** The reverse boundary: flushes into utime, then accrues stime. *)
