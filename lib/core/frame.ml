type state = Unused | Typed | Untyped

type meta = ..

type fmeta = { mutable refcount : int; mutable st : state; mutable meta : meta option }

type t = { first : int; npages : int; untyped : bool; mutable live : bool }

let page_size = Machine.Phys.page_size

(* The static per-frame metadata array, allocated at early boot. *)
let metadata : fmeta array ref = ref [||]

let handles = ref 0

let () =
  List.iter
    (fun (u, n) -> Probe.declare ~submodule:"frame" ~unsafe_:u n)
    [
      (true, "frame.metadata_init");
      (true, "frame.cas_claim");
      (true, "frame.refcount_inc");
      (true, "frame.refcount_dec");
      (true, "frame.release_to_allocator");
      (false, "frame.alloc");
      (false, "frame.from_unused_reject");
      (false, "frame.set_meta");
    ]

let init_metadata ~reserved_pages =
  Probe.hit "frame.metadata_init";
  let n = Machine.Phys.nframes () in
  metadata := Array.init n (fun _ -> { refcount = 0; st = Unused; meta = None });
  handles := 0;
  for i = 0 to min reserved_pages n - 1 do
    !metadata.(i).st <- Typed;
    !metadata.(i).refcount <- 1
  done

let total_frames () = Array.length !metadata

let fmeta_of idx =
  if idx < 0 || idx >= Array.length !metadata then
    Panic.panicf "Frame: frame index %d outside physical memory" idx;
  !metadata.(idx)

let refcount ~paddr = (fmeta_of (paddr / page_size)).refcount

let state_of ~paddr = (fmeta_of (paddr / page_size)).st

(* Inv. 1: claim a span only if every frame is currently unused. The
   check-and-set on each frame's metadata entry models the CAS in the
   paper's from_unused (Fig. 9a shows why ordering there matters; the
   KernMiri case study exercises a deliberately broken variant). *)
let from_unused ~paddr ~pages ~untyped =
  Sim.Cost.charge_safety (fun s -> s.Sim.Profile.ownership_check);
  if paddr mod page_size <> 0 then Error "from_unused: unaligned physical address"
  else if pages <= 0 then Error "from_unused: empty span"
  else begin
    let first = paddr / page_size in
    if first + pages > Array.length !metadata then Error "from_unused: beyond physical memory"
    else begin
      let all_unused = ref true in
      for i = first to first + pages - 1 do
        if (fmeta_of i).st <> Unused then all_unused := false
      done;
      if not !all_unused then begin
        Probe.hit "frame.from_unused_reject";
        Error "from_unused: span overlaps in-use memory (Inv. 1)"
      end
      else begin
        Probe.hit "frame.cas_claim";
        for i = first to first + pages - 1 do
          let m = fmeta_of i in
          m.st <- (if untyped then Untyped else Typed);
          m.refcount <- 1;
          m.meta <- None
        done;
        incr handles;
        Ok { first; npages = pages; untyped; live = true }
      end
    end
  end

(* Transient failures (fault plane) and momentary exhaustion get a
   bounded retry before we declare real OOM; a recovered attempt is the
   graceful-degradation path, a persistent one still panics. *)
let alloc_max_attempts = 4

let alloc ?(pages = 1) ~untyped () =
  Probe.hit "frame.alloc";
  Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.alloc_frame;
  let (module A) = Falloc.injected () in
  let attempt () = if Sim.Fault.roll "alloc.fail" then None else A.alloc ~pages in
  let rec go n =
    match attempt () with
    | Some paddr -> (
      if n > 0 then Sim.Stats.incr "degrade.recovered.alloc";
      match from_unused ~paddr ~pages ~untyped with
      | Ok f -> f
      | Error e -> Panic.panicf "Frame.alloc: injected allocator violated Inv. 1: %s" e)
    | None when n + 1 < alloc_max_attempts ->
      Sim.Stats.incr "degrade.retried.alloc";
      go (n + 1)
    | None -> Panic.panicf "Frame.alloc: out of memory (%d pages requested)" pages
  in
  go 0

let ensure_live t op = if not t.live then Panic.panicf "Frame.%s: use of dropped handle" op

let clone t =
  ensure_live t "clone";
  Probe.hit "frame.refcount_inc";
  for i = t.first to t.first + t.npages - 1 do
    let m = fmeta_of i in
    m.refcount <- m.refcount + 1
  done;
  incr handles;
  { t with live = true }

let drop t =
  ensure_live t "drop";
  Probe.hit "frame.refcount_dec";
  t.live <- false;
  decr handles;
  let all_free = ref true in
  for i = t.first to t.first + t.npages - 1 do
    let m = fmeta_of i in
    if m.refcount <= 0 then Panic.panic "Frame.drop: refcount underflow";
    m.refcount <- m.refcount - 1;
    if m.refcount = 0 then begin
      m.st <- Unused;
      m.meta <- None
    end
    else all_free := false
  done;
  if !all_free then begin
    Probe.hit "frame.release_to_allocator";
    let (module A) = Falloc.injected () in
    A.dealloc ~paddr:(t.first * page_size) ~pages:t.npages
  end

let paddr t =
  ensure_live t "paddr";
  t.first * page_size

(* Device-perspective read: what a DMA engine scatter-gathering this
   frame would see. No CPU cycles are charged — the point of a zero-copy
   path is exactly that the processor never touches the bytes; the
   honest costs (mapping, wire serialization) are charged where the DMA
   is set up and where the frames travel. Untyped frames only: pinned
   payload views must never expose typed (sensitive) memory. *)
let peek t ~off ~buf ~pos ~len =
  ensure_live t "peek";
  if not t.untyped then Panic.panic "Frame.peek: handle covers typed (sensitive) memory";
  if off < 0 || len < 0 || off + len > t.npages * page_size then
    Panic.panicf "Frame.peek: range [%d, %d) outside frame of %d bytes" off (off + len)
      (t.npages * page_size);
  Machine.Phys.read ~paddr:((t.first * page_size) + off) buf ~off:pos ~len

let pages t = t.npages

let size t = t.npages * page_size

let is_untyped t = t.untyped

let is_live t = t.live

let set_meta t ~page m =
  ensure_live t "set_meta";
  Probe.hit "frame.set_meta";
  if page < 0 || page >= t.npages then Panic.panic "Frame.set_meta: page index out of span";
  (fmeta_of (t.first + page)).meta <- Some m

let get_meta t ~page =
  ensure_live t "get_meta";
  if page < 0 || page >= t.npages then Panic.panic "Frame.get_meta: page index out of span";
  (fmeta_of (t.first + page)).meta

let live_handles () = !handles
