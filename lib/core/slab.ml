let () =
  List.iter
    (fun (u, n) -> Probe.declare ~submodule:"slab" ~unsafe_:u n)
    [
      (true, "slab.carve_pages");
      (true, "slab.slot_to_object");
      (false, "slab.fit_check");
      (false, "slab.active_check");
      (false, "slab.foreign_slot_reject");
    ]

type slab = {
  sid : int;
  segment : Frame.t;
  ssize : int;
  nslots : int;
  free : int Queue.t;
  taken : bool array;
  mutable active_count : int;
  mutable live : bool;
}

module Heap_slot = struct
  type t = { owner : slab; index : int; mutable in_use : bool }

  let addr t = Frame.paddr t.owner.segment + (t.index * t.owner.ssize)

  let size t = t.owner.ssize
end

type t = slab

let next_sid = ref 0

let create ~slot_size ~pages =
  if slot_size <= 0 then Panic.panic "Slab.create: slot size must be positive";
  Probe.hit "slab.carve_pages";
  let segment = Frame.alloc ~pages ~untyped:false () in
  let nslots = Frame.size segment / slot_size in
  if nslots = 0 then Panic.panic "Slab.create: slot larger than the slab";
  incr next_sid;
  let free = Queue.create () in
  for i = 0 to nslots - 1 do
    Queue.push i free
  done;
  {
    sid = !next_sid;
    segment;
    ssize = slot_size;
    nslots;
    free;
    taken = Array.make nslots false;
    active_count = 0;
    live = true;
  }

let slot_size t = t.ssize

let capacity t = t.nslots

let free_slots t = Queue.length t.free

let active t = t.active_count

let alive t op = if not t.live then Panic.panicf "Slab.%s: destroyed slab" op

let alloc t =
  alive t "alloc";
  match Queue.take_opt t.free with
  | None -> None
  | Some index ->
    t.taken.(index) <- true;
    t.active_count <- t.active_count + 1;
    Some { Heap_slot.owner = t; index; in_use = true }

let dealloc t (slot : Heap_slot.t) =
  alive t "dealloc";
  if slot.Heap_slot.owner.sid <> t.sid then begin
    Probe.hit "slab.foreign_slot_reject";
    Panic.panic "Slab.dealloc: slot belongs to a different slab"
  end;
  if not slot.Heap_slot.in_use then Panic.panic "Slab.dealloc: double free";
  slot.Heap_slot.in_use <- false;
  t.taken.(slot.Heap_slot.index) <- false;
  t.active_count <- t.active_count - 1;
  Queue.push slot.Heap_slot.index t.free

let destroy t =
  alive t "destroy";
  Probe.hit "slab.active_check";
  if t.active_count > 0 then
    Panic.panicf "Inv. 9 violated: destroying a slab with %d active slots" t.active_count;
  t.live <- false;
  Frame.drop t.segment

type 'a boxed = { slot : Heap_slot.t; value : 'a }

let into_box slot ~size ~align v =
  Probe.hit "slab.fit_check";
  Sim.Cost.charge_safety (fun s -> s.Sim.Profile.slab_fit_check);
  if size > Heap_slot.size slot then
    Panic.panicf "Inv. 10 violated: object of %d bytes in a %d-byte slot" size
      (Heap_slot.size slot);
  if align <= 0 || Heap_slot.addr slot mod align <> 0 then
    Panic.panicf "Inv. 10 violated: slot at %#x breaks %d-byte alignment" (Heap_slot.addr slot)
      align;
  Probe.hit "slab.slot_to_object";
  { slot; value = v }

let box_value b = b.value

let box_slot b = b.slot

module type GLOBAL_HEAP = sig
  val alloc : size:int -> Heap_slot.t
  val dealloc : Heap_slot.t -> unit
end

let heap : (module GLOBAL_HEAP) option ref = ref None

let inject_heap m =
  match !heap with
  | Some _ -> Panic.panic "Slab.inject_heap: a global heap is already registered"
  | None -> heap := Some m

let reset_heap () = heap := None

let heap_injected () = !heap <> None

let kmalloc ~size v =
  match !heap with
  | None -> Panic.panic "Slab.kmalloc: no global heap injected"
  | Some (module H) ->
    Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.kmalloc;
    (* Fault plane: a transient heap failure costs a retry (second
       kmalloc charge models the slow path re-entry), then succeeds. *)
    if Sim.Fault.roll "alloc.fail" then begin
      Sim.Stats.incr "degrade.retried.alloc";
      Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.kmalloc;
      Sim.Stats.incr "degrade.recovered.alloc"
    end;
    into_box (H.alloc ~size) ~size ~align:8 v

let kfree b =
  match !heap with
  | None -> Panic.panic "Slab.kfree: no global heap injected"
  | Some (module H) -> H.dealloc b.slot
