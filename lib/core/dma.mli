(** DMA mappings over untyped memory only (Inv. 6), plus the pooling
    optimisation the paper credits for its IOMMU performance (§5, Fig. 6).

    A mapping grants one device DMA access to the frames of an untyped
    handle. Mapping typed memory panics, so kernel stacks/page tables
    are unreachable by peripherals even with the IOMMU disabled — and
    with it enabled, the IOMMU enforces the same boundary against a
    hostile device. Streams own their frame; [unmap] drops it and
    invalidates IOTLB entries (the cost dynamic mapping pays per I/O and
    pooling pays once). *)

module Stream : sig
  type t

  val map : Frame.t -> dev:int -> t
  (** Takes ownership of the (untyped) handle. Charges dma_map and
      updates the device's IOMMU domain. *)

  val paddr : t -> int
  (** Bus address for the driver to place in descriptors. *)

  val size : t -> int
  val frame : t -> Frame.t

  val fill : t -> off:int -> buf:bytes -> pos:int -> len:int -> unit
  (** Device-visible placement of bytes sourced from externally-pinned
      frames (zero-copy TX). No per-byte CPU cycles are charged — the
      caller pays {!charge_zc_map} and whatever header copy it still
      performs. Panics on out-of-range spans. *)

  val sync_to_device : t -> off:int -> len:int -> unit
  (** Streaming-DMA cache sync before device reads (cost only). *)

  val sync_from_device : t -> off:int -> len:int -> unit

  val unmap : t -> unit
  (** Revoke and drop the frame. *)
end

val charge_zc_map : unit -> unit
(** Charge making one zero-copy pinned payload visible to a device:
    the same per-mapping cost {!Stream.map} pays (IOMMU domain update,
    or cheap bookkeeping without translation). *)

val charge_zc_unmap : unit -> unit
(** Charge revoking a zero-copy payload mapping at TX completion,
    mirroring {!Stream.unmap} (includes IOTLB invalidation with the
    IOMMU on). *)

module Coherent : sig
  type t

  val alloc : pages:int -> dev:int -> t
  (** Allocate fresh untyped frames already mapped for the device. *)

  val paddr : t -> int
  val frame : t -> Frame.t
  val free : t -> unit
end

module Pool : sig
  (** Persistent-mapping pool: buffers are mapped once at initialisation
      and recycled, so steady-state I/O performs no IOMMU map/unmap and
      keeps its IOTLB entries warm. *)

  type t

  val create : dev:int -> buf_pages:int -> count:int -> t

  val buffers : t -> int

  val alloc : t -> Stream.t option
  (** A pre-mapped buffer, or [None] if the pool is exhausted. *)

  val release : t -> Stream.t -> unit
  (** Return a buffer to the pool (no unmap). *)

  val destroy : t -> unit
end
