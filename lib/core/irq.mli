(** Interrupt lines (Inv. 3).

    Handlers run in atomic mode (no sleeping). Binding a line to a device
    programs the interrupt-remapping table, so only granted devices can
    signal the vector; OSTD enables remapping at boot when the profile
    runs with the IOMMU. A post-IRQ hook lets the kernel services drain
    bottom halves (softirq) outside the handler proper. *)

type t

val install_dispatcher : unit -> unit
(** Wire OSTD into the machine's interrupt controller. Called by boot. *)

val alloc : ?name:string -> unit -> t
(** Reserve a free vector. *)

val claim : vector:int -> ?name:string -> unit -> t
(** Claim the specific vector firmware assigned to a device (from
    {!Bus_probe}). Claiming a vector twice panics. *)

val vector : t -> int

val set_handler : t -> (unit -> unit) -> unit

val bind_device : t -> dev:int -> unit
(** Grant the device the right to raise this vector (remapping entry). *)

val unbind_device : t -> dev:int -> unit

val set_post_hook : (unit -> unit) -> unit
(** Run after each interrupt handler returns, outside atomic mode —
    Asterinas registers its softirq runner here. *)

val reset : unit -> unit

val delivered : unit -> int
(** Interrupts dispatched since boot. *)

(** {2 Storm throttling}

    Vectors delivering faster than a threshold inside a sliding window
    are masked and serviced by a polled fallback: a timer event runs the
    handler once, unmasks, and resets the window. Counters:
    ["irq.storm_masked"], ["irq.masked_dropped"],
    ["degrade.recovered.irq_poll"], ["irq.handler_contained"]. *)

val is_masked : vector:int -> bool

val masked_count : unit -> int
(** Vectors currently masked by the storm throttle. *)
