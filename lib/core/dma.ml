let () =
  List.iter
    (fun (u, n) -> Probe.declare ~submodule:"dma" ~unsafe_:u n)
    [
      (true, "dma.iommu_map");
      (true, "dma.iommu_unmap");
      (false, "dma.untyped_only_check");
      (false, "dma.pool_recycle");
    ]

module Stream = struct
  type t = { fr : Frame.t; dev : int; mutable live : bool }

  let map frame ~dev =
    Probe.hit "dma.untyped_only_check";
    if not (Frame.is_untyped frame) then
      Panic.panic "Inv. 6 violated: DMA mapping over typed (sensitive) memory";
    Probe.hit "dma.iommu_map";
    (* Without an IOMMU a streaming map is just bookkeeping; the domain
       update and its cost exist only when translation is on. *)
    if Machine.Iommu.enabled () then begin
      Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.dma_map;
      Machine.Iommu.map ~dev ~paddr:(Frame.paddr frame) ~len:(Frame.size frame)
    end
    else Sim.Cost.charge 120;
    Sim.Trace.emit Sim.Trace.Dma "map" (fun () ->
        Printf.sprintf "dev=%d paddr=0x%x len=%d" dev (Frame.paddr frame) (Frame.size frame));
    { fr = frame; dev; live = true }

  let alive t op = if not t.live then Panic.panicf "Dma.Stream.%s: unmapped stream" op

  let paddr t =
    alive t "paddr";
    Frame.paddr t.fr

  let size t = Frame.size t.fr

  let frame t =
    alive t "frame";
    t.fr

  (* Device-visible placement of bytes sourced from externally-pinned
     frames (zero-copy TX): the simulator must materialise what the
     device's scatter-gather would present, but no CPU copy happens, so
     no per-byte cycles are charged. The caller charges the honest costs
     instead: {!charge_zc_map} for the payload mapping and the header
     memcpy it still performs. *)
  let fill t ~off ~buf ~pos ~len =
    alive t "fill";
    if off < 0 || len < 0 || off + len > Frame.size t.fr then
      Panic.panicf "Dma.Stream.fill: range [%d, %d) outside buffer of %d bytes" off (off + len)
        (Frame.size t.fr);
    Machine.Phys.write ~paddr:(Frame.paddr t.fr + off) buf ~off:pos ~len

  let sync_to_device t ~off:_ ~len =
    alive t "sync_to_device";
    Sim.Cost.charge (len / 64)

  let sync_from_device t ~off:_ ~len =
    alive t "sync_from_device";
    Sim.Cost.charge (len / 64)

  let unmap t =
    alive t "unmap";
    Probe.hit "dma.iommu_unmap";
    if Machine.Iommu.enabled () then begin
      Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.dma_unmap;
      Machine.Iommu.unmap ~dev:t.dev ~paddr:(Frame.paddr t.fr) ~len:(Frame.size t.fr)
    end
    else Sim.Cost.charge 100;
    Sim.Trace.emit Sim.Trace.Dma "unmap" (fun () ->
        Printf.sprintf "dev=%d paddr=0x%x len=%d" t.dev (Frame.paddr t.fr) (Frame.size t.fr));
    t.live <- false;
    Frame.drop t.fr
end

(* Zero-copy TX charges: a pinned payload is not copied into the DMA
   buffer, but its pages must still be made visible to the device — a
   per-packet domain update (and later invalidation) with the IOMMU on,
   cheap bookkeeping without. Mirrors exactly what {!Stream.map} and
   {!Stream.unmap} charge for their own mappings. *)
let charge_zc_map () =
  if Machine.Iommu.enabled () then Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.dma_map
  else Sim.Cost.charge 120

let charge_zc_unmap () =
  if Machine.Iommu.enabled () then Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.dma_unmap
  else Sim.Cost.charge 100

module Coherent = struct
  type t = { stream : Stream.t }

  let alloc ~pages ~dev =
    let fr = Frame.alloc ~pages ~untyped:true () in
    { stream = Stream.map fr ~dev }

  let paddr t = Stream.paddr t.stream

  let frame t = Stream.frame t.stream

  let free t = Stream.unmap t.stream
end

module Pool = struct
  (* LIFO recycling keeps the working set of buffers small and their
     IOTLB entries hot -- the point of the pooling optimisation. *)
  type t = { mutable free : Stream.t list; mutable total : int; mutable destroyed : bool }

  let create ~dev ~buf_pages ~count =
    let free =
      List.init count (fun _ -> Stream.map (Frame.alloc ~pages:buf_pages ~untyped:true ()) ~dev)
    in
    { free; total = count; destroyed = false }

  let buffers t = t.total

  let alloc t =
    if t.destroyed then Panic.panic "Dma.Pool.alloc: destroyed pool";
    match t.free with
    | [] -> None
    | s :: rest ->
      t.free <- rest;
      Some s

  let release t s =
    Probe.hit "dma.pool_recycle";
    if t.destroyed then Stream.unmap s else t.free <- s :: t.free

  let destroy t =
    t.destroyed <- true;
    List.iter Stream.unmap t.free;
    t.free <- [];
    t.total <- 0
end
