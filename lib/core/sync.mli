(** Synchronisation primitives exposed by OSTD for safe kernel logic:
    SpinLock, Mutex, RwLock, RCU, and CpuLocal (paper §4.1).

    The simulated machine is single-CPU and cooperative, so these enforce
    the *disciplines* rather than arbitrate real races: spinlock sections
    run in atomic mode (sleeping inside panics — the Linux
    sleep-in-atomic unsoundness the paper contrasts against), re-entrant
    acquisition panics as the self-deadlock it is, and RCU tracks read
    sections and grace periods. *)

module Lock_stat : sig
  val set_hold_watchdog_us : float -> unit
  (** Threshold (virtual µs) above which releasing a lock emits a
      [lock:long_hold] tracepoint and bumps
      ["lock.watchdog.long_hold"]. Default 1000µs.

      Every lock reports under its [create] name: acquisition and
      contention counts as [lock.<name>.acquire] /
      [lock.<name>.contended] in {!Sim.Stats}, hold/wait µs histograms
      as [lock.<name>.hold] / [lock.<name>.wait] in {!Sim.Hist}. *)
end

module Spin_lock : sig
  type t

  val create : string -> t
  val with_lock : t -> (unit -> 'a) -> 'a
  val held : t -> bool
end

module Mutex : sig
  type t

  val create : string -> t

  val with_lock : t -> (unit -> 'a) -> 'a
  (** Sleeps while another task holds the mutex. *)

  val held : t -> bool
end

module Rw_lock : sig
  type t

  val create : string -> t
  val with_read : t -> (unit -> 'a) -> 'a
  val with_write : t -> (unit -> 'a) -> 'a
end

module Rcu : sig
  type 'a t

  val create : 'a -> 'a t

  val read : 'a t -> ('a -> 'b) -> 'b
  (** Read-side critical section: atomic mode, no sleeping. *)

  val update : 'a t -> 'a -> unit
  (** Publish a new value. *)

  val synchronize : unit -> unit
  (** Wait for a grace period: every read section that was live when
      this was called has finished. *)

  val reset_global : unit -> unit
  (** New boot: clear grace-period bookkeeping. *)
end

module Cpu_local : sig
  type 'a t

  val create : (unit -> 'a) -> 'a t
  val get : 'a t -> 'a
end
