type custom = ..

type state = Ready | Running | Blocked | Dead

type t = {
  tid : int;
  tname : string;
  mutable st : state;
  mutable running_flag : bool; (* Inv. 8 *)
  mutable cust : custom option;
  mutable nice_val : int;
  kstack : Kstack.t;
  mutable resume : resume option;
  (* --- kprof CPU accounting (observability only: never charges) --- *)
  mutable utime : int64; (* cycles accounted to user mode *)
  mutable stime : int64; (* cycles accounted to kernel mode *)
  mutable user_mode : bool; (* which bucket accrues right now *)
  mutable acct_mark : int64; (* clock at last accounting flush *)
  mutable nvcsw : int; (* voluntary context switches (blocked) *)
  mutable nivcsw : int; (* involuntary context switches (yielded) *)
  mutable runnable_at : int64; (* enqueue instant, -1 once dispatched *)
  mutable sdelay_sum : int64; (* total runqueue-wait cycles *)
  mutable sdelay_cnt : int; (* dispatches with a measured wait *)
  mutable sdelay_max : int64;
}

and resume = Start of (unit -> unit) | Cont of (unit, unit) Effect.Deep.continuation

exception Task_exit

type _ Effect.t += Suspend : unit Effect.t

let tid t = t.tid

let name t = t.tname

let is_running t = t.running_flag

let is_dead t = t.st = Dead

let custom t = t.cust

let set_custom t c = t.cust <- Some c

let nice t = t.nice_val

let set_nice t n = t.nice_val <- n

module type SCHEDULER = sig
  val enqueue : t -> unit
  val pick_next : unit -> t option
  val update_curr : unit -> unit
  val dequeue_curr : unit -> unit
end

let sched : (module SCHEDULER) option ref = ref None

let cur : t option ref = ref None

(* ktrace names the task that emitted each record; outside task context
   records attribute to the idle loop. *)
let () =
  Sim.Trace.set_task_provider (fun () ->
      match !cur with Some t -> Printf.sprintf "%s/%d" t.tname t.tid | None -> "idle/0")

let last_ran : int ref = ref (-1)

let next_tid = ref 0

let live = ref 0

(* All live tasks, for observability scans (never for scheduling). The
   hung-task watchdog's ctx field is the longest time any Ready task
   has been waiting on the runqueue, computed on demand at sched
   tracepoints. *)
let all_tasks : (int, t) Hashtbl.t = Hashtbl.create 64

let ns_of_cycles c = Int64.of_float (Sim.Clock.to_us c *. 1000.)

let max_runnable_wait_ns () =
  let now = Sim.Clock.now () in
  Hashtbl.fold
    (fun _ t acc ->
      if t.st = Ready && Int64.compare t.runnable_at 0L >= 0 then begin
        let d = Int64.sub now t.runnable_at in
        let d = if Int64.compare d 0L > 0 then d else 0L in
        let d = ns_of_cycles d in
        if Int64.compare d acc > 0 then d else acc
      end
      else acc)
    all_tasks 0L

(* --- CPU accounting ---

   Virtual time only moves through [Sim.Cost] charges and event jumps,
   so accounting is a matter of marks: while a task runs, the cycles
   between its dispatch mark and the next flush belong to it, split
   into utime/stime by the [user_mode] flag the user-return boundary
   flips. Whole-system totals accumulate alongside so /proc/stat can
   report user/system/idle without walking dead tasks. *)

let total_utime = ref 0L

let total_stime = ref 0L

let switch_count = ref 0

let acct_flush t =
  let now = Sim.Clock.now () in
  let d = Int64.sub now t.acct_mark in
  if Int64.compare d 0L > 0 then
    if t.user_mode then begin
      t.utime <- Int64.add t.utime d;
      total_utime := Int64.add !total_utime d
    end
    else begin
      t.stime <- Int64.add t.stime d;
      total_stime := Int64.add !total_stime d
    end;
  t.acct_mark <- now

(* utime/stime including the live span of a currently-running task. *)
let cpu_times t =
  if t.running_flag then begin
    let d = Int64.sub (Sim.Clock.now ()) t.acct_mark in
    let d = if Int64.compare d 0L > 0 then d else 0L in
    if t.user_mode then (Int64.add t.utime d, t.stime) else (t.utime, Int64.add t.stime d)
  end
  else (t.utime, t.stime)

let ctx_switches t = (t.nvcsw, t.nivcsw)

let sched_delay t = (t.sdelay_cnt, t.sdelay_sum, t.sdelay_max)

let aggregate_cpu_times () = (!total_utime, !total_stime)

let context_switches () = !switch_count

(* The user/kernel boundary, called by the user-return loop: flush the
   elapsed span into the old bucket, then flip. *)
let account_user_entry () =
  match !cur with
  | Some t ->
    acct_flush t;
    t.user_mode <- true
  | None -> ()

let account_kernel_entry () =
  match !cur with
  | Some t ->
    acct_flush t;
    t.user_mode <- false
  | None -> ()

let idle_hook : (unit -> unit) ref = ref (fun () -> ())

let inject_scheduler m =
  match !sched with
  | Some _ -> Panic.panic "Task.inject_scheduler: a scheduler is already registered"
  | None -> sched := Some m

let scheduler () =
  match !sched with
  | Some m -> m
  | None -> Panic.panic "Task: no scheduler injected"

let inject_fifo_scheduler () =
  let q : t Queue.t = Queue.create () in
  let module Fifo = struct
    let enqueue t = Queue.push t q

    let pick_next () = Queue.take_opt q

    let update_curr () = ()

    let dequeue_curr () = ()
  end in
  inject_scheduler (module Fifo)

let reset () =
  sched := None;
  cur := None;
  last_ran := -1;
  next_tid := 0;
  live := 0;
  Hashtbl.reset all_tasks;
  total_utime := 0L;
  total_stime := 0L;
  switch_count := 0;
  idle_hook := (fun () -> ());
  Atomic_mode.reset ()

let current_opt () = !cur

let current () =
  match !cur with
  | Some t -> t
  | None -> Panic.panic "Task.current: not in task context"

let enqueue_ready t =
  let (module S) = scheduler () in
  t.st <- Ready;
  (* Runqueue-wait starts now; dispatch measures the delta. *)
  t.runnable_at <- Sim.Clock.now ();
  S.enqueue t

let spawn ?(name = "task") body =
  incr next_tid;
  incr live;
  let t =
    {
      tid = !next_tid;
      tname = name;
      st = Ready;
      running_flag = false;
      cust = None;
      nice_val = 0;
      kstack = Kstack.create ();
      resume = Some (Start body);
      utime = 0L;
      stime = 0L;
      user_mode = false;
      acct_mark = 0L;
      nvcsw = 0;
      nivcsw = 0;
      runnable_at = -1L;
      sdelay_sum = 0L;
      sdelay_cnt = 0;
      sdelay_max = 0L;
    }
  in
  Hashtbl.replace all_tasks t.tid t;
  enqueue_ready t;
  t

let wake t =
  match t.st with
  | Blocked ->
    Sim.Trace.emit Sim.Trace.Sched "wakeup" (fun () ->
        Printf.sprintf "task=%s/%d" t.tname t.tid);
    enqueue_ready t;
    (* The wakeup edge hands a completion's span back to the sleeping
       task: if this wake happens under an IRQ/softirq wake context,
       the delivery leg is recorded on the woken task's span. *)
    Sim.Span.on_wake ~tid:t.tid;
    Sim.Trace.fire Sim.Trace.P_sched_wakeup (fun () ->
        [| Int64.of_int t.tid; ns_of_cycles (Sim.Clock.now ()); max_runnable_wait_ns () |])
  | Ready | Running | Dead -> ()

let exit () = raise Task_exit

let kill t =
  if t.st <> Dead then begin
    t.st <- Dead;
    decr live;
    Hashtbl.remove all_tasks t.tid;
    Kstack.destroy t.kstack
  end

(* Marks the dispatched task finished; runs inside the handler when the
   task body returns or raises. *)
let on_death t =
  acct_flush t;
  if t.st <> Dead then begin
    t.st <- Dead;
    decr live;
    Hashtbl.remove all_tasks t.tid;
    Kstack.destroy t.kstack
  end;
  t.running_flag <- false;
  cur := None;
  Sim.Span.on_task_exit t.tid;
  Sim.Prof.switch_idle ()

let handler (t : t) : (unit, unit) Effect.Deep.handler =
  {
    retc = (fun () -> on_death t);
    exnc =
      (fun e ->
        on_death t;
        match e with
        | Task_exit -> ()
        | Panic.Service_failure { msg; errno } ->
          (* Containment backstop: a service failure that nobody above
             translated kills only this task. Invariant violations
             (Kernel_panic) still unwind the whole simulation. *)
          Sim.Stats.incr "task.contained_failure";
          Logs.debug (fun m ->
              m "task %s (tid %d) died of contained failure (errno %d): %s" t.tname t.tid
                errno msg)
        | e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Suspend ->
          Some
            (fun (k : (a, unit) Effect.Deep.continuation) ->
              (* The task suspends: record where to resume, hand control
                 back to the dispatch loop. *)
              acct_flush t;
              t.resume <- Some (Cont k);
              t.running_flag <- false;
              cur := None;
              Sim.Span.on_deschedule ();
              Sim.Prof.switch_idle ())
        | _ -> None);
  }

let dispatch t =
  Sim.Cost.charge_safety (fun s -> s.Sim.Profile.running_flag);
  if t.running_flag then Panic.panic "Inv. 8 violated: task is already running on another CPU";
  if t.st <> Dead then begin
    (* Profile attribution follows the incoming task from here on: the
       switch cost below is charged to the task being switched in, as
       is its accounting mark. *)
    Sim.Prof.switch_to (Printf.sprintf "%s/%d" t.tname t.tid);
    t.acct_mark <- Sim.Clock.now ();
    (* Runqueue wait: from the enqueue that made the task runnable to
       this dispatch. Fed to the sched.delay histogram (microseconds)
       and the per-task schedstat totals; costs nothing in virtual
       time. *)
    let own_wait_ns = ref 0L in
    let span_waited = ref 0L in
    if Int64.compare t.runnable_at 0L >= 0 then begin
      let d = Int64.sub (Sim.Clock.now ()) t.runnable_at in
      let d = if Int64.compare d 0L > 0 then d else 0L in
      t.runnable_at <- -1L;
      t.sdelay_sum <- Int64.add t.sdelay_sum d;
      t.sdelay_cnt <- t.sdelay_cnt + 1;
      if Int64.compare d t.sdelay_max > 0 then t.sdelay_max <- d;
      own_wait_ns := ns_of_cycles d;
      span_waited := d;
      Sim.Hist.observe "sched.delay" (Sim.Clock.to_us d)
    end;
    (* Span bookkeeping before the switch cost below, so those cycles
       attribute on-CPU to the incoming task's span. *)
    Sim.Span.on_dispatch ~tid:t.tid ~waited:!span_waited;
    incr switch_count;
    (* Re-dispatching the task that just ran (a solo yield) skips the
       register save/restore and cache refill of a real switch. *)
    if !last_ran = t.tid then Sim.Cost.charge 40
    else Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.context_switch;
    Sim.Trace.emit Sim.Trace.Sched "switch" (fun () ->
        Printf.sprintf "prev=%d next=%s/%d" !last_ran t.tname t.tid);
    (* max_wait_ns covers the task being switched in (it just finished
       waiting) as well as everything still on the runqueue, so a
       starved task is visible at the very switch that rescues it. *)
    Sim.Trace.fire Sim.Trace.P_sched_switch (fun () ->
        let queued = max_runnable_wait_ns () in
        let w = if Int64.compare !own_wait_ns queued > 0 then !own_wait_ns else queued in
        [| Int64.of_int !last_ran; Int64.of_int t.tid; ns_of_cycles (Sim.Clock.now ()); w |]);
    last_ran := t.tid;
    t.st <- Running;
    t.running_flag <- true;
    cur := Some t;
    match t.resume with
    | Some (Start body) ->
      t.resume <- None;
      Effect.Deep.match_with body () (handler t)
    | Some (Cont k) ->
      t.resume <- None;
      Effect.Deep.continue k ()
    | None ->
      Panic.panic "Task.dispatch: task has no continuation"
  end

let suspend () = Effect.perform Suspend

let yield_now () =
  let t = current () in
  (* In the cooperative simulator a yield is the preemption point, so
     it counts as the involuntary switch (Linux: nivcsw). *)
  t.nivcsw <- t.nivcsw + 1;
  let (module S) = scheduler () in
  S.update_curr ();
  enqueue_ready t;
  suspend ()

let block () =
  Atomic_mode.assert_sleepable "Task.block";
  let t = current () in
  t.nvcsw <- t.nvcsw + 1;
  let (module S) = scheduler () in
  S.update_curr ();
  S.dequeue_curr ();
  t.st <- Blocked;
  suspend ();
  if (current ()).st = Dead then raise Task_exit

let sleep_cycles n =
  Atomic_mode.assert_sleepable "Task.sleep";
  let t = current () in
  Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.timer_program;
  ignore (Sim.Events.schedule_after n (fun () -> wake t));
  block ()

let sleep_us x = sleep_cycles (Sim.Clock.us x)

let on_idle f = idle_hook := f

let rec loop stop =
  if not (stop ()) then begin
    ignore (Sim.Events.run_due ());
    let (module S) = scheduler () in
    Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.sched_pick;
    match S.pick_next () with
    | Some t ->
      if t.st = Dead then loop stop
      else begin
        dispatch t;
        loop stop
      end
    | None ->
      !idle_hook ();
      (* Nothing runnable: let the machine make progress. *)
      if Sim.Events.run_next () then loop stop else ()
  end

let run () = loop (fun () -> false)

let run_until p = loop p

let live_tasks () = !live
