type custom = ..

type state = Ready | Running | Blocked | Dead

type t = {
  tid : int;
  tname : string;
  mutable st : state;
  mutable running_flag : bool; (* Inv. 8 *)
  mutable cust : custom option;
  mutable nice_val : int;
  kstack : Kstack.t;
  mutable resume : resume option;
}

and resume = Start of (unit -> unit) | Cont of (unit, unit) Effect.Deep.continuation

exception Task_exit

type _ Effect.t += Suspend : unit Effect.t

let tid t = t.tid

let name t = t.tname

let is_running t = t.running_flag

let is_dead t = t.st = Dead

let custom t = t.cust

let set_custom t c = t.cust <- Some c

let nice t = t.nice_val

let set_nice t n = t.nice_val <- n

module type SCHEDULER = sig
  val enqueue : t -> unit
  val pick_next : unit -> t option
  val update_curr : unit -> unit
  val dequeue_curr : unit -> unit
end

let sched : (module SCHEDULER) option ref = ref None

let cur : t option ref = ref None

(* ktrace names the task that emitted each record; outside task context
   records attribute to the idle loop. *)
let () =
  Sim.Trace.set_task_provider (fun () ->
      match !cur with Some t -> Printf.sprintf "%s/%d" t.tname t.tid | None -> "idle/0")

let last_ran : int ref = ref (-1)

let next_tid = ref 0

let live = ref 0

let idle_hook : (unit -> unit) ref = ref (fun () -> ())

let inject_scheduler m =
  match !sched with
  | Some _ -> Panic.panic "Task.inject_scheduler: a scheduler is already registered"
  | None -> sched := Some m

let scheduler () =
  match !sched with
  | Some m -> m
  | None -> Panic.panic "Task: no scheduler injected"

let inject_fifo_scheduler () =
  let q : t Queue.t = Queue.create () in
  let module Fifo = struct
    let enqueue t = Queue.push t q

    let pick_next () = Queue.take_opt q

    let update_curr () = ()

    let dequeue_curr () = ()
  end in
  inject_scheduler (module Fifo)

let reset () =
  sched := None;
  cur := None;
  last_ran := -1;
  next_tid := 0;
  live := 0;
  idle_hook := (fun () -> ());
  Atomic_mode.reset ()

let current_opt () = !cur

let current () =
  match !cur with
  | Some t -> t
  | None -> Panic.panic "Task.current: not in task context"

let enqueue_ready t =
  let (module S) = scheduler () in
  t.st <- Ready;
  S.enqueue t

let spawn ?(name = "task") body =
  incr next_tid;
  incr live;
  let t =
    {
      tid = !next_tid;
      tname = name;
      st = Ready;
      running_flag = false;
      cust = None;
      nice_val = 0;
      kstack = Kstack.create ();
      resume = Some (Start body);
    }
  in
  enqueue_ready t;
  t

let wake t =
  match t.st with
  | Blocked ->
    Sim.Trace.emit Sim.Trace.Sched "wakeup" (fun () ->
        Printf.sprintf "task=%s/%d" t.tname t.tid);
    enqueue_ready t
  | Ready | Running | Dead -> ()

let exit () = raise Task_exit

let kill t =
  if t.st <> Dead then begin
    t.st <- Dead;
    decr live;
    Kstack.destroy t.kstack
  end

(* Marks the dispatched task finished; runs inside the handler when the
   task body returns or raises. *)
let on_death t =
  if t.st <> Dead then begin
    t.st <- Dead;
    decr live;
    Kstack.destroy t.kstack
  end;
  t.running_flag <- false;
  cur := None

let handler (t : t) : (unit, unit) Effect.Deep.handler =
  {
    retc = (fun () -> on_death t);
    exnc =
      (fun e ->
        on_death t;
        match e with
        | Task_exit -> ()
        | Panic.Service_failure { msg; errno } ->
          (* Containment backstop: a service failure that nobody above
             translated kills only this task. Invariant violations
             (Kernel_panic) still unwind the whole simulation. *)
          Sim.Stats.incr "task.contained_failure";
          Logs.debug (fun m ->
              m "task %s (tid %d) died of contained failure (errno %d): %s" t.tname t.tid
                errno msg)
        | e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Suspend ->
          Some
            (fun (k : (a, unit) Effect.Deep.continuation) ->
              (* The task suspends: record where to resume, hand control
                 back to the dispatch loop. *)
              t.resume <- Some (Cont k);
              t.running_flag <- false;
              cur := None)
        | _ -> None);
  }

let dispatch t =
  Sim.Cost.charge_safety (fun s -> s.Sim.Profile.running_flag);
  if t.running_flag then Panic.panic "Inv. 8 violated: task is already running on another CPU";
  if t.st <> Dead then begin
    (* Re-dispatching the task that just ran (a solo yield) skips the
       register save/restore and cache refill of a real switch. *)
    if !last_ran = t.tid then Sim.Cost.charge 40
    else Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.context_switch;
    Sim.Trace.emit Sim.Trace.Sched "switch" (fun () ->
        Printf.sprintf "prev=%d next=%s/%d" !last_ran t.tname t.tid);
    last_ran := t.tid;
    t.st <- Running;
    t.running_flag <- true;
    cur := Some t;
    match t.resume with
    | Some (Start body) ->
      t.resume <- None;
      Effect.Deep.match_with body () (handler t)
    | Some (Cont k) ->
      t.resume <- None;
      Effect.Deep.continue k ()
    | None ->
      Panic.panic "Task.dispatch: task has no continuation"
  end

let suspend () = Effect.perform Suspend

let yield_now () =
  let t = current () in
  let (module S) = scheduler () in
  S.update_curr ();
  enqueue_ready t;
  suspend ()

let block () =
  Atomic_mode.assert_sleepable "Task.block";
  let t = current () in
  let (module S) = scheduler () in
  S.update_curr ();
  S.dequeue_curr ();
  t.st <- Blocked;
  suspend ();
  if (current ()).st = Dead then raise Task_exit

let sleep_cycles n =
  Atomic_mode.assert_sleepable "Task.sleep";
  let t = current () in
  Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.timer_program;
  ignore (Sim.Events.schedule_after n (fun () -> wake t));
  block ()

let sleep_us x = sleep_cycles (Sim.Clock.us x)

let on_idle f = idle_hook := f

let rec loop stop =
  if not (stop ()) then begin
    ignore (Sim.Events.run_due ());
    let (module S) = scheduler () in
    Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.sched_pick;
    match S.pick_next () with
    | Some t ->
      if t.st = Dead then loop stop
      else begin
        dispatch t;
        loop stop
      end
    | None ->
      !idle_hook ();
      (* Nothing runnable: let the machine make progress. *)
      if Sim.Events.run_next () then loop stop else ()
  end

let run () = loop (fun () -> false)

let run_until p = loop p

let live_tasks () = !live
