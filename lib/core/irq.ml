type t = { vec : int; mutable name : string }

let handlers : (int, unit -> unit) Hashtbl.t = Hashtbl.create 16

let next_vector = ref 48

let post_hook : (unit -> unit) ref = ref (fun () -> ())

let count = ref 0

let claimed : (int, unit) Hashtbl.t = Hashtbl.create 8

(* --- Storm throttling (graceful degradation, Inv. 3) ---

   A flaky or hostile device can fire interrupts faster than the kernel
   can usefully service them. Per vector we count deliveries inside a
   sliding window; past the threshold the vector is masked and serviced
   by a polled fallback instead: a timer event runs the handler once,
   unmasks, and lets the window restart. Work is never lost — handlers
   are reap-style and idempotent, and the poll services whatever
   accumulated while masked — but a storm can no longer monopolise the
   CPU. *)

let storm_threshold = 64

let storm_window_us = 200.

let poll_delay_us = 300.

type vstat = { mutable wstart : int64; mutable n : int; mutable masked : bool }

let vstats : (int, vstat) Hashtbl.t = Hashtbl.create 8

let masked_vectors = ref 0

let reset () =
  Hashtbl.reset handlers;
  Hashtbl.reset claimed;
  Hashtbl.reset vstats;
  next_vector := 48;
  post_hook := (fun () -> ());
  count := 0;
  masked_vectors := 0

(* kprof scope per vector, memoized so the hot path never formats. *)
let scope_names : (int, string) Hashtbl.t = Hashtbl.create 8

let irq_scope vector =
  match Hashtbl.find_opt scope_names vector with
  | Some s -> s
  | None ->
    let s = "irq" ^ string_of_int vector in
    Hashtbl.add scope_names vector s;
    s

let vstat_of vector =
  match Hashtbl.find_opt vstats vector with
  | Some v -> v
  | None ->
    let v = { wstart = Sim.Clock.now (); n = 0; masked = false } in
    Hashtbl.add vstats vector v;
    v

let run_handler vector =
  match Hashtbl.find_opt handlers vector with
  | Some h ->
    (* Top half runs in atomic mode: sleeping here is the class of bug
       OSTD's atomic-mode enforcement exists to catch. A service-level
       failure inside a handler is contained — the device loses this
       delivery, the kernel does not go down with it. *)
    Atomic_mode.enter ();
    (match Fun.protect ~finally:Atomic_mode.exit (fun () -> Panic.contain h) with
    | Ok () -> ()
    | Error _ -> Sim.Stats.incr "irq.handler_contained")
  | None -> Sim.Stats.incr "irq.unhandled"

let polled_service vector =
  let vs = vstat_of vector in
  (* Degradation path: the storm was survived by polling, so this
     counts toward the recovered leg of the chaos quartet. *)
  Sim.Stats.incr "degrade.recovered.irq_poll";
  Sim.Trace.emit Sim.Trace.Irq "poll" (fun () -> Printf.sprintf "vector=%d" vector);
  Sim.Span.enter_wake_ctx (irq_scope vector);
  Fun.protect ~finally:Sim.Span.exit_wake_ctx (fun () ->
      Sim.Prof.scope (irq_scope vector) (fun () -> run_handler vector);
      vs.masked <- false;
      decr masked_vectors;
      vs.wstart <- Sim.Clock.now ();
      vs.n <- 0;
      !post_hook ())

let dispatch vector =
  incr count;
  let vs = vstat_of vector in
  if vs.masked then
    (* Deliveries while masked are dropped on the floor; the pending
       poll will reap whatever they signalled. *)
    Sim.Stats.incr "irq.masked_dropped"
  else begin
    (* Implicit kprof scope: everything spent servicing the delivery —
       entry cost included — attributes to irq<vector>. The span
       wake-context covers the same region (handler and the post-hook
       softirq drain), so any task woken from here gets the
       IRQ-delivery leg recorded on its span. *)
    Sim.Span.enter_wake_ctx (irq_scope vector);
    Fun.protect ~finally:Sim.Span.exit_wake_ctx @@ fun () ->
    Sim.Prof.scope (irq_scope vector) (fun () ->
        Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.irq_entry;
        Sim.Trace.emit Sim.Trace.Irq "entry" (fun () -> Printf.sprintf "vector=%d" vector);
        Sim.Trace.fire Sim.Trace.P_irq_entry (fun () ->
            [|
              Int64.of_int vector;
              Int64.of_float (Sim.Clock.to_us (Sim.Clock.now ()) *. 1000.);
            |]);
        let now = Sim.Clock.now () in
        let window = Int64.of_int (Sim.Clock.us storm_window_us) in
        if Int64.compare (Int64.sub now vs.wstart) window > 0 then begin
          vs.wstart <- now;
          vs.n <- 0
        end;
        vs.n <- vs.n + 1;
        if vs.n > storm_threshold then begin
          vs.masked <- true;
          incr masked_vectors;
          Sim.Stats.incr "irq.storm_masked";
          Logs.debug (fun m -> m "irq: vector %d storming, masked + polling" vector);
          ignore
            (Sim.Events.schedule_after (Sim.Clock.us poll_delay_us) (fun () ->
                 polled_service vector))
        end
        else run_handler vector;
        Sim.Trace.emit Sim.Trace.Irq "exit" (fun () -> Printf.sprintf "vector=%d" vector);
        !post_hook ())
  end

let install_dispatcher () = Machine.Irq_chip.set_dispatcher dispatch

let alloc ?(name = "irq") () =
  let vec = !next_vector in
  incr next_vector;
  if vec > 255 then Panic.panic "Irq.alloc: vector space exhausted";
  { vec; name }

let claim ~vector ?(name = "irq") () =
  if Hashtbl.mem claimed vector then Panic.panicf "Irq.claim: vector %d already claimed" vector;
  Hashtbl.add claimed vector ();
  { vec = vector; name }

let vector t = t.vec

let set_handler t h = Hashtbl.replace handlers t.vec h

let bind_device t ~dev = Machine.Irq_chip.remap_allow ~dev ~vector:t.vec

let unbind_device t ~dev = Machine.Irq_chip.remap_revoke ~dev ~vector:t.vec

let set_post_hook f = post_hook := f

let delivered () = !count

let is_masked ~vector =
  match Hashtbl.find_opt vstats vector with Some v -> v.masked | None -> false

let masked_count () = !masked_vectors
