(** Frames and segments with the paper's frame metadata system (§4.2).

    Every physical frame has an entry in a static metadata array holding
    its reference count, its typed/untyped state, and an optional
    client-attached metadata value (the [Frame<M>] type parameter of the
    paper, here an extensible variant). A handle ([t]) covers one frame
    (Frame) or several contiguous frames (Segment); handles are cloned
    and dropped explicitly — OCaml has no deterministic destructors, so
    dropping is part of the API contract and tests verify balance.

    Inv. 1: a handle can only be created over currently-unused frames;
    {!from_unused} checks and flips the metadata state, so a buggy
    injected allocator cannot produce aliased frames. *)

type state = Unused | Typed | Untyped

type meta = ..
(** Client-defined per-frame metadata (page-cache status, slab headers…). *)

type t
(** A live handle on a span of frames. Using a dropped handle panics. *)

val init_metadata : reserved_pages:int -> unit
(** Build the metadata array over all of physical memory and mark the
    first [reserved_pages] frames Typed (kernel image, boot structures). *)

val total_frames : unit -> int

val alloc : ?pages:int -> untyped:bool -> unit -> t
(** Allocate through the injected allocator (default 1 page). Panics with
    OOM if the allocator returns no memory, and panics if the allocator
    proposes frames that are not unused (Inv. 1). Charges the
    frame-allocation cost plus the ownership safety check. *)

val from_unused : paddr:int -> pages:int -> untyped:bool -> (t, string) result
(** Validate and claim a span proposed by the allocator. *)

val clone : t -> t
(** Share: increments every covered frame's reference count. *)

val drop : t -> unit
(** Release: decrements reference counts; frames reaching zero return to
    the injected allocator as unused. Double-drop panics. *)

val paddr : t -> int

val peek : t -> off:int -> buf:bytes -> pos:int -> len:int -> unit
(** Device-perspective read of an untyped frame's contents — what a DMA
    engine scatter-gathering the frame would see. Charges no CPU cycles:
    zero-copy TX pins frames precisely so the processor never touches
    the payload; mapping and wire costs are charged at the DMA setup and
    on the link. Panics on typed frames or out-of-range spans. *)

val pages : t -> int
val size : t -> int
val is_untyped : t -> bool
val is_live : t -> bool

val refcount : paddr:int -> int
val state_of : paddr:int -> state

val set_meta : t -> page:int -> meta -> unit
(** Attach metadata to the [page]-th frame of the span. *)

val get_meta : t -> page:int -> meta option

val live_handles : unit -> int
(** Number of undropped handles — leak checking in tests. *)
