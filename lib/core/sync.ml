(* --- Lock observability (kprof) ---

   Every lock reports under its [create] name: acquisition and
   contention counts land in [Sim.Stats] as lock.<name>.acquire /
   lock.<name>.contended (kstat picks them up with no new plumbing),
   and hold/wait durations feed lock.<name>.hold / lock.<name>.wait
   microsecond histograms in [Sim.Hist]. A hold outliving the watchdog
   threshold emits a lock:long_hold tracepoint. Observability only: no
   virtual cycles are charged beyond what the locks always charged, so
   instrumented runs time identically to the seed.

   The stat-key strings are built once per lock at [create]; each
   operation then looks the registries up by those cached keys, which
   stays correct across the Stats/Hist reset a reboot performs (locks
   created at module init outlive boots). *)

module Lock_stat = struct
  type t = {
    lname : string;
    acquire_key : string;
    contended_key : string;
    hold_key : string;
    wait_key : string;
  }

  let make lname =
    {
      lname;
      acquire_key = "lock." ^ lname ^ ".acquire";
      contended_key = "lock." ^ lname ^ ".contended";
      hold_key = "lock." ^ lname ^ ".hold";
      wait_key = "lock." ^ lname ^ ".wait";
    }

  (* Holds longer than this (virtual µs) trip the watchdog tracepoint.
     Virtual time is deterministic, so the tracepoint fires identically
     across same-seed runs. *)
  let hold_watchdog_us = ref 1000.

  let set_hold_watchdog_us x = hold_watchdog_us := x

  let acquired s ~contended ~wait_cycles =
    Sim.Stats.incr s.acquire_key;
    if contended then begin
      Sim.Stats.incr s.contended_key;
      Sim.Hist.observe s.wait_key (Sim.Clock.to_us wait_cycles)
    end

  let released s ~hold_cycles =
    let us = Sim.Clock.to_us hold_cycles in
    Sim.Hist.observe s.hold_key us;
    if us > !hold_watchdog_us then begin
      Sim.Stats.incr "lock.watchdog.long_hold";
      Sim.Trace.emit Sim.Trace.Lock "long_hold" (fun () ->
          Printf.sprintf "lock=%s hold_us=%.3f" s.lname us)
    end
end

module Spin_lock = struct
  type t = { name : string; mutable holder : int option; st : Lock_stat.t }

  let create name = { name; holder = None; st = Lock_stat.make name }

  let with_lock t f =
    (match t.holder with
    | Some tid when Some tid = Option.map Task.tid (Task.current_opt ()) ->
      Panic.panicf "SpinLock %s: re-entrant acquisition (self-deadlock)" t.name
    | Some _ -> Panic.panicf "SpinLock %s: contended on a single CPU (missed release?)" t.name
    | None -> ());
    t.holder <- Some (match Task.current_opt () with Some c -> Task.tid c | None -> -1);
    (* A single-CPU spin lock cannot wait (contention panics above), so
       only acquisitions and hold times report. *)
    Lock_stat.acquired t.st ~contended:false ~wait_cycles:0L;
    Atomic_mode.enter ();
    Sim.Cost.charge 20;
    let h0 = Sim.Clock.now () in
    Fun.protect
      ~finally:(fun () ->
        Lock_stat.released t.st ~hold_cycles:(Int64.sub (Sim.Clock.now ()) h0);
        t.holder <- None;
        Atomic_mode.exit ())
      f

  let held t = t.holder <> None
end

module Mutex = struct
  type t = {
    name : string;
    mutable holder : int option;
    wq : Wait_queue.t;
    st : Lock_stat.t;
  }

  let create name =
    { name; holder = None; wq = Wait_queue.create (); st = Lock_stat.make name }

  let with_lock t f =
    let me = Task.tid (Task.current ()) in
    if t.holder = Some me then Panic.panicf "Mutex %s: re-entrant acquisition" t.name;
    let contended = t.holder <> None in
    let w0 = Sim.Clock.now () in
    Wait_queue.sleep_until t.wq (fun () -> t.holder = None);
    Lock_stat.acquired t.st ~contended ~wait_cycles:(Int64.sub (Sim.Clock.now ()) w0);
    t.holder <- Some me;
    Sim.Cost.charge 30;
    let h0 = Sim.Clock.now () in
    Fun.protect
      ~finally:(fun () ->
        Lock_stat.released t.st ~hold_cycles:(Int64.sub (Sim.Clock.now ()) h0);
        t.holder <- None;
        ignore (Wait_queue.wake_one t.wq))
      f

  let held t = t.holder <> None
end

module Rw_lock = struct
  type t = {
    name : string;
    mutable readers : int;
    mutable writer : bool;
    wq : Wait_queue.t;
    st : Lock_stat.t;
  }

  let create name =
    { name; readers = 0; writer = false; wq = Wait_queue.create (); st = Lock_stat.make name }

  let with_read t f =
    let contended = t.writer in
    let w0 = Sim.Clock.now () in
    Wait_queue.sleep_until t.wq (fun () -> not t.writer);
    Lock_stat.acquired t.st ~contended ~wait_cycles:(Int64.sub (Sim.Clock.now ()) w0);
    t.readers <- t.readers + 1;
    let h0 = Sim.Clock.now () in
    Fun.protect
      ~finally:(fun () ->
        Lock_stat.released t.st ~hold_cycles:(Int64.sub (Sim.Clock.now ()) h0);
        t.readers <- t.readers - 1;
        if t.readers = 0 then ignore (Wait_queue.wake_all t.wq))
      f

  let with_write t f =
    let contended = t.writer || t.readers > 0 in
    let w0 = Sim.Clock.now () in
    Wait_queue.sleep_until t.wq (fun () -> (not t.writer) && t.readers = 0);
    Lock_stat.acquired t.st ~contended ~wait_cycles:(Int64.sub (Sim.Clock.now ()) w0);
    t.writer <- true;
    let h0 = Sim.Clock.now () in
    Fun.protect
      ~finally:(fun () ->
        Lock_stat.released t.st ~hold_cycles:(Int64.sub (Sim.Clock.now ()) h0);
        t.writer <- false;
        ignore (Wait_queue.wake_all t.wq))
      f
end

module Rcu = struct
  (* Single global grace-period bookkeeping: a counter of live read
     sections and a generation number. *)
  let live_readers = ref 0

  let generation = ref 0

  let gp_wq = ref (Wait_queue.create ())

  (* Called at boot: grace-period state must not leak across reboots. *)
  let reset_global () =
    live_readers := 0;
    generation := 0;
    gp_wq := Wait_queue.create ()

  type 'a t = { mutable value : 'a }

  let create v = { value = v }

  let read t f =
    Atomic_mode.enter ();
    incr live_readers;
    Fun.protect
      ~finally:(fun () ->
        decr live_readers;
        Atomic_mode.exit ();
        if !live_readers = 0 then begin
          incr generation;
          ignore (Wait_queue.wake_all !gp_wq)
        end)
      (fun () -> f t.value)

  let update t v = t.value <- v

  let synchronize () =
    Atomic_mode.assert_sleepable "Rcu.synchronize";
    if !live_readers > 0 then begin
      let target = !generation + 1 in
      Wait_queue.sleep_until !gp_wq (fun () -> !generation >= target)
    end
end

module Cpu_local = struct
  (* SMP = 1: one slot per "CPU". *)
  type 'a t = { value : 'a }

  let create init = { value = init () }

  let get t = t.value
end
