(* The probe VM. Runs only verified code, so execution is a straight
   loop with no runtime checks beyond the arithmetic total-functions
   (div-by-zero and oversized shifts yield 0, like eBPF). The VM
   charges no virtual cycles and consults no randomness, so an
   attached program never perturbs the simulation and same-seed runs
   produce byte-identical map contents. *)

open Insn

(* Ldctx slots are pre-resolved per attach point at load time (the
   verifier proved every name/index legal at every hooked point), so
   execution never sees a name. *)
let resolve_ctx (prog : prog) ap =
  let fields = Sim.Trace.attach_fields ap in
  let slot = function
    | Cidx i -> i
    | Cname n ->
      let rec find i = if fields.(i) = n then i else find (i + 1) in
      find 0
  in
  Array.map (function Ldctx (r, c) -> Ldctx (r, Cidx (slot c)) | insn -> insn) prog.code

let alu_eval op a b =
  match op with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Mul -> Int64.mul a b
  | Div -> if b = 0L then 0L else Int64.div a b
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Lsl ->
    let s = Int64.to_int b in
    if s < 0 || s > 63 then 0L else Int64.shift_left a s
  | Lsr ->
    let s = Int64.to_int b in
    if s < 0 || s > 63 then 0L else Int64.shift_right_logical a s

let cmp_eval c a b =
  let r = Int64.compare a b in
  match c with Eq -> r = 0 | Ne -> r <> 0 | Lt -> r < 0 | Le -> r <= 0 | Gt -> r > 0 | Ge -> r >= 0

let exec ~(prog : prog) ~(store : Maps.store) ~(code : insn array) ~(ctx : int64 array) =
  let regs = Array.make nregs 0L in
  let len = Array.length code in
  let operand = function Reg r -> regs.(r) | Imm v -> v in
  let pc = ref 0 in
  (* The verifier proved all jumps strictly forward, so [pc] strictly
     increases and this loop executes at most [len] instructions. *)
  while !pc < len do
    let next = !pc + 1 in
    (match code.(!pc) with
    | Ld (r, o) ->
      regs.(r) <- operand o;
      pc := next
    | Ldctx (r, Cidx i) ->
      regs.(r) <- ctx.(i);
      pc := next
    | Ldctx (_, Cname _) -> assert false (* resolved at load time *)
    | Alu (op, r, o) ->
      regs.(r) <- alu_eval op regs.(r) (operand o);
      pc := next
    | Jmp n -> pc := next + n
    | Jcond (c, r, o, n) -> if cmp_eval c regs.(r) (operand o) then pc := next + n else pc := next
    | Count (m, o) ->
      Maps.bump store m (operand o);
      pc := next
    | Upd (m, k, o) ->
      Maps.upd store m regs.(k) (operand o);
      pc := next
    | Setk (m, k, o) ->
      Maps.setk store m regs.(k) (operand o);
      pc := next
    | Get (r, m, k) ->
      regs.(r) <- Maps.get store m regs.(k);
      pc := next
    | Hist (m, r) ->
      Maps.hist_rec store m regs.(r);
      pc := next
    | Histk (m, k, r) ->
      Maps.khist_rec store m regs.(k) regs.(r);
      pc := next
    | Ringp (m, k, r) ->
      Maps.ring_push store m regs.(k) regs.(r);
      pc := next
    | Emit (label, o) ->
      let v = operand o in
      let key = prog.pname ^ "." ^ label in
      Sim.Stats.incr key;
      Sim.Trace.emit Sim.Trace.Probe key (fun () -> Printf.sprintf "v=%Ld" v);
      pc := next
    | Ret -> pc := len)
  done
